// Module memex reproduces "Memex: A Browsing Assistant for Collaborative
// Archiving and Mining of Surf Trails" (VLDB 2000) as a production-style
// Go system. No external dependencies: everything is stdlib.
//
// The `go` directive below is load-bearing, not cosmetic: internal/server
// registers method-qualified ServeMux patterns ("POST /api/user",
// "GET /api/search", ...). Those patterns are only parsed as
// method+path by the enhanced net/http ServeMux introduced in Go 1.22.
// Under a pre-1.22 directive the whole string is treated as a literal
// path, every route silently 404s, and all of the internal/client e2e
// tests fail. Keep this at 1.22 or newer.
module memex

go 1.22
