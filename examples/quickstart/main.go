// Quickstart: open an embedded Memex, archive a few page visits and
// bookmarks for one user, and ask the three everyday questions the paper
// opens with — full-text recall ("what was that URL about X?"), folder
// classification, and server status.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"memex"
)

func main() {
	dir, err := os.MkdirTemp("", "memex-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A deterministic synthetic Web stands in for the live one.
	world := memex.GenerateWorld(memex.WorldConfig{Seed: 42})
	m, err := memex.Open(memex.Config{Dir: dir, Source: world.Source()})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	m.RegisterUser(1, "alice")
	fmt.Println("== Memex quickstart ==")

	// Surf: visit the first content pages of one topic, community-public.
	leaf := world.Corpus.Leaves()[0]
	start := time.Date(2000, 5, 22, 9, 0, 0, 0, time.UTC)
	visited := 0
	for _, pid := range world.Corpus.LeafPages[leaf.ID] {
		p := world.Corpus.Page(pid)
		if p.Front {
			continue
		}
		if err := m.RecordVisit(1, p.URL, "", start.Add(time.Duration(visited)*time.Minute), memex.Community); err != nil {
			log.Fatal(err)
		}
		// Bookmark every third page into a topic folder.
		if visited%3 == 0 {
			m.AddBookmark(1, p.URL, "/"+leaf.Name, start)
		}
		visited++
		if visited == 9 {
			break
		}
	}
	m.DrainBackground() // let the fetch/index demons catch up

	// Full-text recall over everything visited.
	top := world.Corpus.Topics[leaf.Parent]
	query := fmt.Sprintf("%s_%s01 %s_%s02", top.Name, leaf.Name, top.Name, leaf.Name)
	fmt.Printf("\nsearch %q:\n", query)
	for i, h := range m.Search(1, query, 5) {
		fmt.Printf("  %d. %-40s %.3f\n", i+1, h.Title, h.Score)
	}

	st := m.Status()
	fmt.Printf("\nstatus: %d visits archived, %d pages indexed, %d bookmarks filed\n",
		st.Visits, st.PagesIndexed, st.Bookmarks)
	fmt.Println("\nquickstart OK")
}
