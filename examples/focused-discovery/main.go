// Focused discovery: the resource-discovery demon of §4. A user trains a
// folder, then Memex crawls outward from the folder's pages with a
// classifier-gated frontier and reports fresh authoritative resources for
// the topic — compared side by side against an unfocused breadth-first
// crawl from the same seeds ("are there any popular sites, related to my
// experience, that have appeared recently?").
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"memex"
	"memex/internal/crawler"
	"memex/internal/webcorpus"
)

func main() {
	dir, err := os.MkdirTemp("", "memex-discovery")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A bigger, less link-local Web: the crawl budget must stay well below
	// the on-topic pool or both strategies saturate at pool/budget.
	world := memex.GenerateWorld(memex.WorldConfig{
		Seed: 31,
		Web: webcorpus.Config{
			Seed: 31, PagesPerLeaf: 100,
			IntraLeafProb: 0.35, IntraTopProb: 0.25,
		},
	})
	m, err := memex.Open(memex.Config{Dir: dir, Source: world.Source()})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	m.RegisterUser(1, "mitul")
	corpus := world.Corpus
	leaves := corpus.Leaves()
	focus, other := leaves[0], leaves[10]
	t0 := time.Date(2000, 5, 26, 9, 0, 0, 0, time.UTC)

	train := func(leafID int, folder string) {
		n := 0
		for _, pid := range corpus.LeafPages[leafID] {
			p := corpus.Page(pid)
			if p.Front {
				continue
			}
			m.AddBookmark(1, p.URL, folder, t0)
			n++
			if n == 6 {
				return
			}
		}
	}
	train(focus.ID, "/Cycling")
	train(other.ID, "/Work")
	m.DrainBackground()
	m.RetrainClassifiers()

	fmt.Println("== Focused resource discovery for /Cycling ==")
	found := m.Discover(1, "/Cycling", 400, 8)
	onTopic := 0
	for i, p := range found {
		mark := " "
		if id, ok := corpus.ByURL[p.URL]; ok && corpus.Page(id).Topic == focus.ID {
			mark = "✓"
			onTopic++
		}
		fmt.Printf("  %d. %s %-44s score=%.2f\n", i+1, mark, trunc(p.Title, 44), p.Score)
	}
	fmt.Printf("on-topic: %d/%d\n", onTopic, len(found))

	// Baseline comparison on raw harvest rate, outside the engine, using
	// the same world: focused vs BFS frontier.
	fmt.Println("\n== Harvest-rate comparison (150-page budget) ==")
	rel := func(fr crawler.FetchResult) float64 {
		top := corpus.Topics[focus.Parent]
		prefix := top.Name + "_" + focus.Name
		words := strings.Fields(fr.Text)
		if len(words) == 0 {
			return 0
		}
		hits := 0
		for _, w := range words {
			if strings.HasPrefix(w, prefix) {
				hits++
			}
		}
		s := 2.5 * float64(hits) / float64(len(words))
		if s > 1 {
			s = 1
		}
		return s
	}
	seeds := corpus.LeafPages[focus.ID][:3]
	fetcher := worldFetcher{corpus: world}
	focused := crawler.Crawl(fetcher, rel, seeds, crawler.Options{Budget: 150, Focused: true})
	bfs := crawler.Crawl(fetcher, rel, seeds, crawler.Options{Budget: 150, Focused: false})
	fmt.Printf("  focused harvest rate: %.3f\n", focused.HarvestRate())
	fmt.Printf("  BFS harvest rate:     %.3f\n", bfs.HarvestRate())
	fc, bc := focused.HarvestCurve(), bfs.HarvestCurve()
	fmt.Println("  pages fetched | focused | bfs")
	for _, at := range []int{25, 50, 100, 149} {
		if at < len(fc) && at < len(bc) {
			fmt.Printf("  %13d | %7.3f | %5.3f\n", at+1, fc[at], bc[at])
		}
	}
}

type worldFetcher struct {
	corpus *memex.World
}

func (f worldFetcher) Fetch(page int64) (crawler.FetchResult, bool) {
	p := f.corpus.Corpus.Page(page)
	if p == nil {
		return crawler.FetchResult{}, false
	}
	return crawler.FetchResult{Page: page, Text: p.Text, Links: p.Links}, true
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
