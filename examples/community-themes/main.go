// Community themes (Figure 4): replay a whole simulated community into
// Memex, consolidate everyone's idiosyncratic folder trees into a
// community theme taxonomy, and print the discovered themes with their
// signatures, contributor counts, and each user's theme profile.
//
// Watch for the two behaviours the paper promises: folders from different
// users about the same topic MERGE into one theme (coarsening), and hot
// themes with many documents SPLIT into sub-themes (refinement).
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"memex"
)

func main() {
	dir, err := os.MkdirTemp("", "memex-themes")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A community of 50 users skewed toward a few hot topics, surfing for
	// a simulated month.
	world := memex.GenerateWorld(memex.WorldConfig{Seed: 11})

	m, err := memex.Open(memex.Config{Dir: dir, Source: world.Source()})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	fmt.Println("== Community theme discovery ==")
	n, err := m.ReplayTrace(world, 4000)
	if err != nil {
		log.Fatal(err)
	}
	m.DrainBackground()
	fmt.Printf("replayed %d visits and %d bookmarks from %d users\n",
		n, len(world.Trace.Bookmarks), len(world.Trace.Users))

	st := m.RebuildThemes()
	fmt.Printf("\ntaxonomy: %d themes (%d roots, %d leaves, %d refined; %d folders consolidated)\n",
		st.Themes, st.Roots, st.Leaves, st.Refined, st.MergedIn)

	themes := m.Themes()
	sort.Slice(themes, func(i, j int) bool { return themes[i].Docs > themes[j].Docs })
	fmt.Println("\ntop themes:")
	shown := 0
	for _, th := range themes {
		if th.Parent >= 0 {
			continue // roots first
		}
		fmt.Printf("  [%2d] %-24s docs=%-4d users=%-3d sig=%v\n",
			th.ID, th.Label, th.Docs, th.Users, head(th.Signature, 4))
		for _, child := range themes {
			if child.Parent == th.ID {
				fmt.Printf("       └─ [%2d] %-18s docs=%-4d sig=%v\n",
					child.ID, child.Label, child.Docs, head(child.Signature, 4))
			}
		}
		shown++
		if shown == 6 {
			break
		}
	}

	fmt.Println("\nuser profiles over the taxonomy (top 3 themes each):")
	for u := int64(1); u <= 5; u++ {
		p := m.Profile(u)
		if p == nil {
			continue
		}
		top := p.TopThemes(3)
		fmt.Printf("  user%-3d →", u)
		for _, th := range top {
			fmt.Printf(" theme%d(%.2f)", th, p.Weights[th])
		}
		fmt.Println()
	}
}

func head(s []string, n int) []string {
	if len(s) > n {
		return s[:n]
	}
	return s
}
