// Trail replay (Figure 2): one user trains Memex on two topic folders,
// surfs both topics across several sessions (with an off-topic detour),
// and then selects a folder in the trail tab — Memex replays the recent
// hypertext context for just that topic, plus the popular pages near the
// community's trail graph.
//
// This answers the paper's motivating question: "What was the Web
// neighborhood I was surfing the last time I was looking for resources on
// classical music?"
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"memex"
)

func main() {
	dir, err := os.MkdirTemp("", "memex-trails")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	world := memex.GenerateWorld(memex.WorldConfig{Seed: 23})
	// Anchor the engine clock in the simulated era so recency weighting is
	// meaningful.
	now := time.Date(2000, 6, 2, 9, 0, 0, 0, time.UTC)
	m, err := memex.Open(memex.Config{
		Dir:    dir,
		Source: world.Source(),
		Now:    func() time.Time { return now },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	m.RegisterUser(1, "soumen")
	corpus := world.Corpus
	leaves := corpus.Leaves()
	music, travel := leaves[0], leaves[8]
	t0 := time.Date(2000, 5, 25, 19, 0, 0, 0, time.UTC)

	// Train two folders with bookmarked content pages.
	train := func(leafID int, folder string) {
		n := 0
		for _, pid := range corpus.LeafPages[leafID] {
			p := corpus.Page(pid)
			if p.Front {
				continue
			}
			m.AddBookmark(1, p.URL, folder, t0)
			n++
			if n == 6 {
				return
			}
		}
	}
	train(music.ID, "/Music/Western Classical")
	train(travel.ID, "/Travel")
	m.DrainBackground()
	m.RetrainClassifiers()

	// Session 1 (a week ago): surf music following links.
	surf := func(leafID int, start time.Time, hops int) {
		ids := corpus.LeafPages[leafID]
		var prev string
		for i := 0; i < hops; i++ {
			p := corpus.Page(ids[i])
			m.RecordVisit(1, p.URL, prev, start.Add(time.Duration(i)*90*time.Second), memex.Community)
			prev = p.URL
		}
	}
	surf(music.ID, t0.Add(24*time.Hour), 7)
	// Session 2 (later): travel planning.
	surf(travel.ID, t0.Add(48*time.Hour), 6)
	// Session 3 (yesterday): more music.
	surf(music.ID, t0.Add(6*24*time.Hour), 5)
	m.DrainBackground()

	// The trail tab: select the music folder.
	fmt.Println("== Trail tab: /Music/Western Classical ==")
	ctx := m.Trails(1, "/Music/Western Classical", 10)
	fmt.Printf("replayed context: %d pages, %d transitions\n", len(ctx.Pages), len(ctx.Edges))
	for _, p := range ctx.Pages {
		fmt.Printf("  %.3f  %s\n", p.Score, p.Title)
	}
	if len(ctx.Popular) > 0 {
		fmt.Println("popular in/near this community trail graph:")
		for i, p := range ctx.Popular {
			fmt.Printf("  %d. %s\n", i+1, label(p))
			if i == 4 {
				break
			}
		}
	}

	fmt.Println("\n== Trail tab: /Travel ==")
	ctx = m.Trails(1, "/Travel", 10)
	fmt.Printf("replayed context: %d pages, %d transitions\n", len(ctx.Pages), len(ctx.Edges))
	for _, p := range ctx.Pages {
		fmt.Printf("  %.3f  %s\n", p.Score, p.Title)
	}
}

// label prefers the title, falling back to the URL for link-stub pages the
// demons have not fetched yet.
func label(p memex.PageInfo) string {
	if p.Title != "" {
		return p.Title
	}
	return p.URL
}
