// Package memex is a reproduction of "Memex: A browsing assistant for
// collaborative archiving and mining of surf trails" (Chakrabarti,
// Srivastava, Subramanyam, Tiwari; VLDB 2000): a server that archives a
// community's Web browsing, blurs the line between history and bookmarks,
// and mines the combined stream — full-text search over everything
// visited, per-user folder classification with link and co-placement
// evidence, topical trail replay, community theme discovery, focused
// resource discovery, and profile-based collaborative recommendation.
//
// The package is a thin facade: open an embedded engine with Open, or
// serve it over HTTP with Serve and talk to it with NewClient. Everything
// underneath (storage engines, mining algorithms, the synthetic Web used
// for experiments) lives in internal/ packages and is documented in
// DESIGN.md.
//
// The repo enforces its own cross-cutting invariants — pins released,
// no iteration under locks, deterministic codecs, atomic derived-record
// publishes — with a static-analysis suite run in CI; see
// internal/analysis and `go run ./cmd/memexvet ./...`.
//
// Quickstart:
//
//	world := memex.GenerateWorld(memex.WorldConfig{Seed: 1})
//	m, _ := memex.Open(memex.Config{Dir: dir, Source: world.Source()})
//	defer m.Close()
//	m.RegisterUser(1, "alice")
//	m.RecordVisit(1, url, "", time.Now(), memex.Community)
//	hits := m.Search(1, "classical music", 10)
package memex

import (
	"time"

	"memex/internal/core"
	"memex/internal/events"
	"memex/internal/kvstore"
	"memex/internal/sim"
	"memex/internal/webcorpus"
)

// Privacy re-exports the archiving modes of the client (§2: "the user can
// choose not to archive surfing actions, archive for private use, or
// archive for use by the community").
type Privacy = events.Privacy

// Privacy modes.
const (
	Off       = events.Off
	Private   = events.Private
	Community = events.Community
)

// Config configures an embedded Memex engine.
type Config struct {
	// Dir is the persistent storage directory.
	Dir string
	// Source resolves URLs to page content (use World.Source() for the
	// synthetic Web, or any implementation for live use).
	Source PageSource
	// Durable selects fsync-per-commit WAL durability (default: group
	// commit, which is what the benchmarks use).
	Durable bool
	// Workers is the number of background analyzer demons (default 2).
	Workers int
	// ThemeInterval / TrainInterval run the periodic mining demons
	// (0 = on demand only).
	ThemeInterval time.Duration
	TrainInterval time.Duration
	// GCInterval runs the version-store GC demon, which compacts
	// superseded derived-data layers and folds cold ones to disk
	// (0 = engine default of 2s; negative disables the demon).
	GCInterval time.Duration
	// CacheBytes bounds the shared decoded-record cache that keeps the
	// cost of repeated mining passes (themes, HITS, recommendation) from
	// scaling with the number of passes (0 = engine default of 32 MiB;
	// negative disables caching).
	CacheBytes int64
	// Now injects the engine clock — set it when replaying historical
	// traces so recency decay is computed against the trace era, not the
	// wall clock (default time.Now).
	Now func() time.Time
}

// PageSource resolves URLs to content (alias of the engine interface).
type PageSource = core.PageSource

// Content is a resolved page (alias of the engine type).
type Content = core.Content

// PageInfo, TrailContext and ThemeInfo are query result types.
type (
	PageInfo     = core.PageInfo
	TrailContext = core.TrailContext
	ThemeInfo    = core.ThemeInfo
	Stats        = core.Stats
)

// Memex is an embedded engine instance.
type Memex struct {
	*core.Engine
}

// Open starts an embedded Memex over the given directory.
func Open(cfg Config) (*Memex, error) {
	sync := kvstore.SyncGroup
	if cfg.Durable {
		sync = kvstore.SyncAlways
	}
	e, err := core.Open(core.Config{
		Dir:               cfg.Dir,
		Source:            cfg.Source,
		KV:                kvstore.Options{Sync: sync},
		Workers:           cfg.Workers,
		ThemeInterval:     cfg.ThemeInterval,
		TrainInterval:     cfg.TrainInterval,
		VersionGCInterval: cfg.GCInterval,
		DecodedCacheBytes: cfg.CacheBytes,
		Now:               cfg.Now,
	})
	if err != nil {
		return nil, err
	}
	return &Memex{Engine: e}, nil
}

// WorldConfig configures the synthetic Web + surfer population used by the
// examples and experiments (the substitution for the paper's volunteers;
// see DESIGN.md).
type WorldConfig struct {
	Seed int64
	// Web tunes the synthetic corpus (zero values take defaults).
	Web webcorpus.Config
	// Surf tunes the simulated community (zero values take defaults).
	Surf sim.Config
}

// World bundles the synthetic Web with its simulated surfer trace.
type World struct {
	Corpus *webcorpus.Corpus
	Trace  *sim.Trace
}

// GenerateWorld builds a deterministic world from the seed.
func GenerateWorld(cfg WorldConfig) *World {
	if cfg.Web.Seed == 0 {
		cfg.Web.Seed = cfg.Seed
	}
	if cfg.Surf.Seed == 0 {
		cfg.Surf.Seed = cfg.Seed + 1
	}
	corpus := webcorpus.Generate(cfg.Web)
	trace := sim.Simulate(corpus, cfg.Surf)
	return &World{Corpus: corpus, Trace: trace}
}

// Source exposes the world's Web as a PageSource for the engine.
func (w *World) Source() PageSource {
	return worldSource{w.Corpus}
}

type worldSource struct {
	c *webcorpus.Corpus
}

// Lookup implements PageSource over the synthetic corpus.
func (s worldSource) Lookup(url string) (Content, bool) {
	id, ok := s.c.ByURL[url]
	if !ok {
		return Content{}, false
	}
	p := s.c.Page(id)
	links := make([]string, 0, len(p.Links))
	for _, l := range p.Links {
		links = append(links, s.c.Page(l).URL)
	}
	return Content{URL: p.URL, Title: p.Title, Text: p.Text, Links: links}, true
}

// ReplayTrace feeds a simulated community trace into the engine: visits as
// community-public events and bookmarks into each user's folders. It
// returns the number of visits replayed. Heavy analysis happens in the
// background; call DrainBackground to wait for it.
func (m *Memex) ReplayTrace(w *World, maxVisits int) (int, error) {
	for _, u := range w.Trace.Users {
		if err := m.RegisterUser(u.ID, u.Name); err != nil {
			return 0, err
		}
	}
	n := 0
	for _, v := range w.Trace.Visits {
		if maxVisits > 0 && n >= maxVisits {
			break
		}
		var ref string
		if v.Referrer != 0 {
			ref = w.Corpus.Page(v.Referrer).URL
		}
		if err := m.RecordVisit(v.User, w.Corpus.Page(v.Page).URL, ref, v.Time, Community); err != nil {
			return n, err
		}
		n++
	}
	for _, b := range w.Trace.Bookmarks {
		if err := m.AddBookmark(b.User, w.Corpus.Page(b.Page).URL, b.Folder, b.Time); err != nil {
			return n, err
		}
	}
	return n, nil
}
