package folders

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The Netscape bookmark file format is the de-facto interchange format of
// the era (also read by Internet Explorer's import): a NETSCAPE-Bookmark-
// file-1 HTML document with nested <DL> lists, <H3> folder headings, and
// <A HREF=... ADD_DATE=...> bookmark anchors. Memex imports existing
// browser bookmarks through this format and can export its folder tree back.

// ExportNetscape writes the tree in Netscape bookmark-file format.
func ExportNetscape(t *Tree, w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "<!DOCTYPE NETSCAPE-Bookmark-file-1>")
	fmt.Fprintln(bw, "<!-- This is an automatically generated file. -->")
	fmt.Fprintln(bw, "<TITLE>Bookmarks</TITLE>")
	fmt.Fprintln(bw, "<H1>Bookmarks</H1>")
	exportFolder(bw, t.Root, 0)
	return bw.Flush()
}

func exportFolder(w *bufio.Writer, f *Folder, depth int) {
	ind := strings.Repeat("    ", depth)
	fmt.Fprintf(w, "%s<DL><p>\n", ind)
	for _, e := range f.Entries {
		fmt.Fprintf(w, "%s    <DT><A HREF=\"%s\" ADD_DATE=\"%d\">%s</A>\n",
			ind, escapeHTML(e.URL), e.Added.Unix(), escapeHTML(e.Title))
	}
	for _, ch := range f.Children {
		fmt.Fprintf(w, "%s    <DT><H3>%s</H3>\n", ind, escapeHTML(ch.Name))
		exportFolder(w, ch, depth+1)
	}
	fmt.Fprintf(w, "%s</DL><p>\n", ind)
}

// ImportNetscape parses a Netscape bookmark file into a fresh tree.
// Page ids are not present in the format; imported entries get Page 0 and
// are identified by URL until the server resolves them.
func ImportNetscape(r io.Reader) (*Tree, error) {
	t := NewTree()
	cur := t.Root
	var stack []*Folder
	var pendingFolder string
	sawHeader := false

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "<!DOCTYPE NETSCAPE-BOOKMARK"):
			sawHeader = true
		case strings.Contains(upper, "<H3"):
			pendingFolder = stripTags(line)
		case strings.Contains(upper, "<DL"):
			if pendingFolder != "" {
				child := &Folder{Name: pendingFolder, Parent: cur}
				cur.Children = append(cur.Children, child)
				stack = append(stack, cur)
				cur = child
				pendingFolder = ""
			} else if cur == t.Root && len(stack) == 0 && !rootOpened(t) {
				// The outermost <DL> corresponds to the root itself.
				stack = append(stack, nil)
			} else {
				stack = append(stack, cur)
			}
		case strings.Contains(upper, "</DL"):
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if top != nil {
					cur = top
				}
			}
		case strings.Contains(upper, "<A HREF="):
			url := attrValue(line, "HREF")
			title := stripTags(line)
			added := time.Unix(0, 0).UTC()
			if ts := attrValue(line, "ADD_DATE"); ts != "" {
				if sec, err := strconv.ParseInt(ts, 10, 64); err == nil {
					added = time.Unix(sec, 0).UTC()
				}
			}
			cur.Entries = append(cur.Entries, Entry{
				URL: url, Title: title, Added: added,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("folders: import: %w", err)
	}
	if !sawHeader && t.Count() == 0 && len(t.Root.Children) == 0 {
		return nil, fmt.Errorf("folders: not a Netscape bookmark file")
	}
	return t, nil
}

// rootOpened reports whether the root's DL was already consumed; the root
// carries no marker, so we track it via a sentinel in the stack instead.
// (The root DL is only ever the first one.)
func rootOpened(*Tree) bool { return false }

// attrValue extracts the value of attr="..." (case-insensitive) from line.
func attrValue(line, attr string) string {
	upper := strings.ToUpper(line)
	key := strings.ToUpper(attr) + "=\""
	i := strings.Index(upper, key)
	if i < 0 {
		return ""
	}
	rest := line[i+len(key):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return unescapeEntities(rest[:j])
}

func unescapeEntities(s string) string {
	s = strings.ReplaceAll(s, "&lt;", "<")
	s = strings.ReplaceAll(s, "&gt;", ">")
	s = strings.ReplaceAll(s, "&quot;", "\"")
	s = strings.ReplaceAll(s, "&amp;", "&")
	return s
}

// stripTags removes HTML tags and unescapes basic entities.
func stripTags(line string) string {
	var b strings.Builder
	in := false
	for _, r := range line {
		switch {
		case r == '<':
			in = true
		case r == '>':
			in = false
		case !in:
			b.WriteRune(r)
		}
	}
	s := strings.TrimSpace(b.String())
	s = strings.ReplaceAll(s, "&amp;", "&")
	s = strings.ReplaceAll(s, "&lt;", "<")
	s = strings.ReplaceAll(s, "&gt;", ">")
	s = strings.ReplaceAll(s, "&quot;", "\"")
	return s
}

func escapeHTML(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	s = strings.ReplaceAll(s, "\"", "&quot;")
	return s
}
