package folders

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func entry(page int64, url string) Entry {
	return Entry{Page: page, URL: url, Title: "t" + url, Added: time.Unix(958383000, 0).UTC()}
}

func TestEnsureFindPath(t *testing.T) {
	tr := NewTree()
	f := tr.Ensure("/Music/Western Classical")
	if f.Path() != "/Music/Western Classical" {
		t.Fatalf("Path = %q", f.Path())
	}
	if tr.Find("/Music") == nil || tr.Find("/Music/Western Classical") != f {
		t.Fatal("Find broken")
	}
	if tr.Find("/Jazz") != nil {
		t.Fatal("Find invented a folder")
	}
	if tr.Find("/") != tr.Root || tr.Root.Path() != "/" {
		t.Fatal("root path wrong")
	}
	// Ensure is idempotent.
	if tr.Ensure("/Music/Western Classical") != f {
		t.Fatal("Ensure duplicated a folder")
	}
}

func TestAddAndGuessSemantics(t *testing.T) {
	tr := NewTree()
	tr.Add("/Music", entry(1, "http://a"))
	// A classifier guess for an already-filed page is ignored.
	g := entry(1, "http://a")
	g.Guessed = true
	tr.Add("/Travel", g)
	if f := tr.FolderOfPage(1); f == nil || f.Path() != "/Music" {
		t.Fatalf("guess overrode user placement: %v", f)
	}
	// A user placement replaces an existing guess.
	g2 := entry(2, "http://b")
	g2.Guessed = true
	tr.Add("/Travel", g2)
	tr.Add("/Music", entry(2, "http://b"))
	if f := tr.FolderOfPage(2); f.Path() != "/Music" {
		t.Fatalf("user placement did not win: %v", f.Path())
	}
	if tr.Count() != 2 {
		t.Fatalf("Count = %d", tr.Count())
	}
}

func TestMoveFolder(t *testing.T) {
	tr := NewTree()
	tr.Ensure("/A/B")
	tr.Add("/A/B", entry(1, "http://x"))
	if err := tr.Move("/A/B", "/C"); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if tr.Find("/A/B") != nil {
		t.Fatal("source still present")
	}
	f := tr.Find("/C/B")
	if f == nil || len(f.Entries) != 1 {
		t.Fatal("moved folder lost its entries")
	}
	// Moving into one's own subtree must fail.
	tr.Ensure("/X/Y")
	if err := tr.Move("/X", "/X/Y"); err == nil {
		t.Fatal("move into own subtree accepted")
	}
	if err := tr.Move("/missing", "/C"); err == nil {
		t.Fatal("move of missing folder accepted")
	}
	// Name collision.
	tr.Ensure("/D/B")
	if err := tr.Move("/D/B", "/C"); err == nil {
		t.Fatal("colliding move accepted")
	}
}

func TestMovePageCutPaste(t *testing.T) {
	tr := NewTree()
	g := entry(5, "http://g")
	g.Guessed = true
	tr.Add("/Music", g)
	if err := tr.MovePage(5, "/Music/Opera"); err != nil {
		t.Fatalf("MovePage: %v", err)
	}
	f := tr.FolderOfPage(5)
	if f.Path() != "/Music/Opera" {
		t.Fatalf("page in %q", f.Path())
	}
	// Cut/paste confirms the entry (clears Guessed) — the paper's
	// reinforcement signal.
	if f.Entries[0].Guessed {
		t.Fatal("moved entry still marked as guess")
	}
	if err := tr.MovePage(99, "/Anywhere"); err == nil {
		t.Fatal("MovePage of unfiled page accepted")
	}
}

func TestConfirm(t *testing.T) {
	tr := NewTree()
	g := entry(7, "http://g")
	g.Guessed = true
	tr.Add("/Music", g)
	if !tr.Confirm(7) {
		t.Fatal("Confirm failed")
	}
	if tr.Confirm(7) {
		t.Fatal("Confirm of already-confirmed entry reported true")
	}
	if tr.FolderOfPage(7).Entries[0].Guessed {
		t.Fatal("entry still guessed")
	}
}

func TestFoldersAndEntries(t *testing.T) {
	tr := NewTree()
	tr.Add("/Music/Classical", entry(1, "http://a"))
	tr.Add("/Music/Jazz", entry(2, "http://b"))
	tr.Add("/Travel", entry(3, "http://c"))
	paths := tr.Folders()
	want := []string{"/Music", "/Music/Classical", "/Music/Jazz", "/Travel"}
	if strings.Join(paths, ",") != strings.Join(want, ",") {
		t.Fatalf("Folders = %v", paths)
	}
	// Subtree entries include nested folders.
	es := tr.Entries("/Music")
	if len(es) != 2 {
		t.Fatalf("Entries(/Music) = %d", len(es))
	}
	if tr.Entries("/missing") != nil {
		t.Fatal("Entries of missing folder not nil")
	}
}

func TestRemovePage(t *testing.T) {
	tr := NewTree()
	tr.Add("/A", entry(1, "http://a"))
	if n := tr.RemovePage(1); n != 1 {
		t.Fatalf("RemovePage = %d", n)
	}
	if tr.Count() != 0 {
		t.Fatal("entry survived removal")
	}
	if n := tr.RemovePage(1); n != 0 {
		t.Fatal("second removal found something")
	}
}

func TestNetscapeRoundTrip(t *testing.T) {
	tr := NewTree()
	tr.Add("/Music/Western Classical", entry(1, "http://classical.example.org/"))
	tr.Add("/Music", entry(2, "http://music.example.org/?a=b&c=d"))
	tr.Add("/Travel", entry(3, "http://travel.example.org/"))
	tr.Ensure("/Empty")

	var buf bytes.Buffer
	if err := ExportNetscape(tr, &buf); err != nil {
		t.Fatalf("Export: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "NETSCAPE-Bookmark-file-1") {
		t.Fatal("missing doctype")
	}
	if !strings.Contains(out, "&amp;c=d") {
		t.Fatal("URL not escaped")
	}

	got, err := ImportNetscape(&buf)
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	wantFolders := tr.Folders()
	gotFolders := got.Folders()
	if strings.Join(wantFolders, ",") != strings.Join(gotFolders, ",") {
		t.Fatalf("folders: %v vs %v", wantFolders, gotFolders)
	}
	if got.Count() != 3 {
		t.Fatalf("Count = %d", got.Count())
	}
	es := got.Entries("/Music")
	urls := map[string]bool{}
	for _, e := range es {
		urls[e.URL] = true
	}
	if !urls["http://classical.example.org/"] || !urls["http://music.example.org/?a=b&c=d"] {
		t.Fatalf("imported URLs wrong: %v", urls)
	}
	// Timestamps survive.
	for _, e := range es {
		if e.Added.Unix() != 958383000 {
			t.Fatalf("ADD_DATE lost: %v", e.Added)
		}
	}
}

func TestImportRealWorldFragment(t *testing.T) {
	src := `<!DOCTYPE NETSCAPE-Bookmark-file-1>
<TITLE>Bookmarks</TITLE>
<H1>Bookmarks for Soumen</H1>
<DL><p>
    <DT><H3 ADD_DATE="958300000">Research</H3>
    <DL><p>
        <DT><A HREF="http://www.vldb.org/" ADD_DATE="958300100">VLDB</A>
        <DT><H3>Mining</H3>
        <DL><p>
            <DT><A HREF="http://www.kdnuggets.com/">KD Nuggets</A>
        </DL><p>
    </DL><p>
    <DT><A HREF="http://slashdot.org/" ADD_DATE="958300200">News for nerds</A>
</DL><p>`
	tr, err := ImportNetscape(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	if tr.Find("/Research/Mining") == nil {
		t.Fatalf("nested folder lost; folders = %v", tr.Folders())
	}
	if len(tr.Find("/Research").Entries) != 1 {
		t.Fatal("folder entry count wrong")
	}
	if len(tr.Root.Entries) != 1 || tr.Root.Entries[0].Title != "News for nerds" {
		t.Fatalf("root entries: %+v", tr.Root.Entries)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := ImportNetscape(strings.NewReader("not a bookmark file at all")); err == nil {
		t.Fatal("garbage accepted")
	}
}
