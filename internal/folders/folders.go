// Package folders implements the editable folder/topic space behind
// Memex's folder tab (Figure 1): per-user folder trees holding bookmarks,
// cut/paste reorganization, classifier-guess marking with reinforce/correct
// feedback, and import/export of the Netscape bookmark-file HTML format so
// existing browser bookmarks flow in and out of Memex.
package folders

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Entry is one bookmark or classified page inside a folder.
type Entry struct {
	Page  int64
	URL   string
	Title string
	Added time.Time
	// Guessed marks entries placed by the classifier (shown with '?' in the
	// paper's UI) rather than by the user.
	Guessed bool
}

// Folder is one node of a user's topic tree.
type Folder struct {
	Name     string
	Parent   *Folder
	Children []*Folder
	Entries  []Entry
}

// Tree is a user's folder space. The root folder is unnamed.
type Tree struct {
	Root *Folder
}

// NewTree returns a tree with an empty root.
func NewTree() *Tree {
	return &Tree{Root: &Folder{}}
}

// Path returns the folder's /-separated path from the root.
func (f *Folder) Path() string {
	if f.Parent == nil {
		return "/"
	}
	parts := []string{}
	for cur := f; cur.Parent != nil; cur = cur.Parent {
		parts = append(parts, cur.Name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return "/" + strings.Join(parts, "/")
}

// Ensure returns the folder at path, creating missing components.
// Paths are /-separated; "/" is the root.
func (t *Tree) Ensure(path string) *Folder {
	cur := t.Root
	for _, part := range splitPath(path) {
		var next *Folder
		for _, ch := range cur.Children {
			if ch.Name == part {
				next = ch
				break
			}
		}
		if next == nil {
			next = &Folder{Name: part, Parent: cur}
			cur.Children = append(cur.Children, next)
			sort.Slice(cur.Children, func(i, j int) bool {
				return cur.Children[i].Name < cur.Children[j].Name
			})
		}
		cur = next
	}
	return cur
}

// Find returns the folder at path, or nil.
func (t *Tree) Find(path string) *Folder {
	cur := t.Root
	for _, part := range splitPath(path) {
		var next *Folder
		for _, ch := range cur.Children {
			if ch.Name == part {
				next = ch
				break
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

func splitPath(path string) []string {
	var parts []string
	for _, p := range strings.Split(path, "/") {
		if p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

// Add places an entry in the folder at path (created if needed). Guessed
// entries come from the classifier demon; user entries are authoritative.
func (t *Tree) Add(path string, e Entry) {
	f := t.Ensure(path)
	// A user placement replaces a guess for the same page anywhere.
	if !e.Guessed {
		t.RemovePage(e.Page)
	} else {
		// Don't let a guess duplicate or override an existing placement.
		if t.FolderOfPage(e.Page) != nil {
			return
		}
	}
	f.Entries = append(f.Entries, e)
}

// RemovePage removes every entry for page from the whole tree, returning
// the number removed.
func (t *Tree) RemovePage(page int64) int {
	removed := 0
	t.Walk(func(f *Folder) {
		out := f.Entries[:0]
		for _, e := range f.Entries {
			if e.Page == page {
				removed++
				continue
			}
			out = append(out, e)
		}
		f.Entries = out
	})
	return removed
}

// Move relocates the folder at src (and its subtree) under dst.
// It fails when src is missing, dst is inside src, or a sibling name
// collides.
func (t *Tree) Move(src, dst string) error {
	sf := t.Find(src)
	if sf == nil || sf.Parent == nil {
		return fmt.Errorf("folders: no such folder %q", src)
	}
	if dst == src || strings.HasPrefix(dst+"/", src+"/") {
		return fmt.Errorf("folders: cannot move %q into itself", src)
	}
	df := t.Ensure(dst)
	for _, ch := range df.Children {
		if ch.Name == sf.Name {
			return fmt.Errorf("folders: %q already has a child %q", dst, sf.Name)
		}
	}
	// Detach.
	sib := sf.Parent.Children
	for i, ch := range sib {
		if ch == sf {
			sf.Parent.Children = append(sib[:i], sib[i+1:]...)
			break
		}
	}
	sf.Parent = df
	df.Children = append(df.Children, sf)
	sort.Slice(df.Children, func(i, j int) bool { return df.Children[i].Name < df.Children[j].Name })
	return nil
}

// MovePage is the cut/paste operation on a single bookmark: it reassigns
// page to the folder at dst and clears its Guessed flag (the user has now
// confirmed the placement) — this is the reinforcement signal the paper's
// classifier learns from.
func (t *Tree) MovePage(page int64, dst string) error {
	var found *Entry
	t.Walk(func(f *Folder) {
		for i := range f.Entries {
			if f.Entries[i].Page == page {
				found = &f.Entries[i]
			}
		}
	})
	if found == nil {
		return fmt.Errorf("folders: page %d not filed anywhere", page)
	}
	e := *found
	e.Guessed = false
	t.RemovePage(page)
	t.Ensure(dst).Entries = append(t.Ensure(dst).Entries, e)
	return nil
}

// Confirm marks a guessed entry as user-approved in place.
func (t *Tree) Confirm(page int64) bool {
	ok := false
	t.Walk(func(f *Folder) {
		for i := range f.Entries {
			if f.Entries[i].Page == page && f.Entries[i].Guessed {
				f.Entries[i].Guessed = false
				ok = true
			}
		}
	})
	return ok
}

// FolderOfPage returns the folder currently holding page, or nil.
func (t *Tree) FolderOfPage(page int64) *Folder {
	var out *Folder
	t.Walk(func(f *Folder) {
		for _, e := range f.Entries {
			if e.Page == page {
				out = f
			}
		}
	})
	return out
}

// Walk visits every folder in depth-first order (root first).
func (t *Tree) Walk(fn func(*Folder)) {
	var rec func(*Folder)
	rec = func(f *Folder) {
		fn(f)
		for _, ch := range f.Children {
			rec(ch)
		}
	}
	rec(t.Root)
}

// Folders returns all folder paths except the root, sorted.
func (t *Tree) Folders() []string {
	var out []string
	t.Walk(func(f *Folder) {
		if f.Parent != nil {
			out = append(out, f.Path())
		}
	})
	sort.Strings(out)
	return out
}

// Entries returns all entries in the subtree rooted at path (including
// nested folders). Unknown paths return nil.
func (t *Tree) Entries(path string) []Entry {
	f := t.Find(path)
	if f == nil {
		return nil
	}
	var out []Entry
	var rec func(*Folder)
	rec = func(f *Folder) {
		out = append(out, f.Entries...)
		for _, ch := range f.Children {
			rec(ch)
		}
	}
	rec(f)
	return out
}

// Count returns the total number of entries in the tree.
func (t *Tree) Count() int {
	n := 0
	t.Walk(func(f *Folder) { n += len(f.Entries) })
	return n
}
