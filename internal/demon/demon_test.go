package demon

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolStartStop(t *testing.T) {
	p := NewPool()
	p.Logger = func(string, ...any) {}
	var ticks atomic.Int64
	p.Add(&Periodic{TaskName: "ticker", Interval: 5 * time.Millisecond, Tick: func() {
		ticks.Add(1)
	}})
	p.Start()
	time.Sleep(60 * time.Millisecond)
	p.Stop()
	n := ticks.Load()
	if n < 3 {
		t.Fatalf("ticks = %d, want several", n)
	}
	time.Sleep(20 * time.Millisecond)
	if ticks.Load() != n {
		t.Fatal("demon still ticking after Stop")
	}
}

func TestPoolRestartsPanickedDemon(t *testing.T) {
	p := NewPool()
	p.Logger = func(string, ...any) {}
	var runs atomic.Int64
	p.Add(&Func{TaskName: "flaky", Body: func(stop <-chan struct{}) {
		if runs.Add(1) < 3 {
			panic("synthetic crash")
		}
		<-stop
	}})
	p.Start()
	deadline := time.Now().Add(2 * time.Second)
	for runs.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	p.Stop()
	if runs.Load() < 3 {
		t.Fatalf("demon restarted %d times, want >= 3", runs.Load())
	}
	if p.Restarts()["flaky"] < 2 {
		t.Fatalf("Restarts = %v", p.Restarts())
	}
}

func TestLateAddStartsImmediately(t *testing.T) {
	p := NewPool()
	p.Logger = func(string, ...any) {}
	p.Start()
	var ran atomic.Bool
	p.Add(&Func{TaskName: "late", Body: func(stop <-chan struct{}) {
		ran.Store(true)
		<-stop
	}})
	deadline := time.Now().Add(time.Second)
	for !ran.Load() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	p.Stop()
	if !ran.Load() {
		t.Fatal("late-added demon never ran")
	}
}

func TestDoubleStartStopSafe(t *testing.T) {
	p := NewPool()
	p.Logger = func(string, ...any) {}
	p.Start()
	p.Start()
	p.Stop()
	p.Stop()
}
