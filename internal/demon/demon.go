// Package demon is the background-worker framework of Figure 3: the
// crawler/fetcher, indexer, classifier and theme demons run continually,
// decoupled from the foreground servlet path, coordinated through the
// loosely-consistent version store. A Pool supervises demons, restarting
// any that panic (§3: "the server recovers from network and programming
// errors quickly").
package demon

import (
	"fmt"
	"log"
	"sync"
	"time"
)

// Demon is a unit of background work. Run should block until Stop's
// channel closes; Tick-style demons can use RunPeriodic.
type Demon interface {
	Name() string
	Run(stop <-chan struct{})
}

// Pool supervises a set of demons.
type Pool struct {
	mu       sync.Mutex
	demons   []Demon
	stop     chan struct{}
	wg       sync.WaitGroup
	running  bool
	restarts map[string]int
	// Logger receives supervision messages (defaults to log.Printf).
	Logger func(format string, args ...any)
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{
		restarts: map[string]int{},
		Logger:   log.Printf,
	}
}

// Add registers a demon (before or after Start; late adds start at once if
// the pool is running).
func (p *Pool) Add(d Demon) {
	p.mu.Lock()
	p.demons = append(p.demons, d)
	running := p.running
	stop := p.stop
	p.mu.Unlock()
	if running {
		p.launch(d, stop)
	}
}

// Start launches every registered demon.
func (p *Pool) Start() {
	p.mu.Lock()
	if p.running {
		p.mu.Unlock()
		return
	}
	p.running = true
	p.stop = make(chan struct{})
	demons := append([]Demon(nil), p.demons...)
	stop := p.stop
	p.mu.Unlock()
	for _, d := range demons {
		p.launch(d, stop)
	}
}

func (p *Pool) launch(d Demon, stop <-chan struct{}) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			if done := p.runOnce(d, stop); done {
				return
			}
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
				// brief backoff, then restart the panicked demon
			}
		}
	}()
}

// runOnce executes d.Run, absorbing panics. Returns true when the demon
// exited cleanly (stop closed), false when it should be restarted.
func (p *Pool) runOnce(d Demon, stop <-chan struct{}) (done bool) {
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			p.restarts[d.Name()]++
			p.mu.Unlock()
			p.Logger("demon %s panicked: %v (restarting)", d.Name(), r)
			done = false
		}
	}()
	d.Run(stop)
	return true
}

// Stop signals all demons and waits for them to exit.
func (p *Pool) Stop() {
	p.mu.Lock()
	if !p.running {
		p.mu.Unlock()
		return
	}
	p.running = false
	close(p.stop)
	p.mu.Unlock()
	p.wg.Wait()
}

// Restarts reports panic-restart counts per demon name.
func (p *Pool) Restarts() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.restarts))
	for k, v := range p.restarts {
		out[k] = v
	}
	return out
}

// Periodic adapts a tick function into a Demon running every interval.
type Periodic struct {
	TaskName string
	Interval time.Duration
	Tick     func()
}

// Name implements Demon.
func (p *Periodic) Name() string { return p.TaskName }

// Run implements Demon.
func (p *Periodic) Run(stop <-chan struct{}) {
	interval := p.Interval
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p.Tick()
		}
	}
}

// Func adapts a plain function into a Demon.
type Func struct {
	TaskName string
	Body     func(stop <-chan struct{})
}

// Name implements Demon.
func (f *Func) Name() string { return f.TaskName }

// Run implements Demon.
func (f *Func) Run(stop <-chan struct{}) { f.Body(stop) }

// String aids debugging.
func (p *Pool) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("pool{demons=%d running=%v}", len(p.demons), p.running)
}
