package version

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memex/internal/kvstore"
)

// This file is the ISSUE 3 property suite for the hot→cold fallthrough:
// under arbitrary interleavings of Publish / Acquire / GC / Fold (and
// out-of-order, aborted, multi-batch publishes), a pinned snapshot must
// always return the newest record at or below its epoch — whether that
// record lives in an in-memory chain or on disk — and the same must hold
// after a close/reopen. A history model (per key, every published version
// with its epoch) is the oracle.

// modelVer is one published version in the oracle.
type modelVer struct {
	epoch   uint64
	val     []byte
	deleted bool
}

type oracle map[string][]modelVer

// lookup returns the newest version at or below epoch. Ties (one batch
// staging the same key twice) resolve to the later-appended entry,
// matching Batch semantics: the last staged write wins.
func (o oracle) lookup(key string, epoch uint64) ([]byte, bool) {
	var best *modelVer
	vs := o[key]
	for i := range vs {
		if vs[i].epoch <= epoch && (best == nil || vs[i].epoch >= best.epoch) {
			best = &vs[i]
		}
	}
	if best == nil || best.deleted {
		return nil, false
	}
	return best.val, true
}

// liveKeys returns the sorted live key set at epoch.
func (o oracle) liveKeys(epoch uint64) []string {
	var keys []string
	for k := range o {
		if _, ok := o.lookup(k, epoch); ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// verifySnapshot checks every model key (hot or cold) plus the full Keys
// enumeration against the oracle at the snapshot's epoch.
func verifySnapshot(t *testing.T, sn *Snapshot, o oracle, when string) {
	t.Helper()
	e := sn.Epoch()
	for k := range o {
		want, wantOK := o.lookup(k, e)
		got, ok := sn.Get(k)
		if ok != wantOK || !bytes.Equal(got, want) {
			t.Fatalf("%s: Get(%q) at epoch %d = %q,%v; oracle says %q,%v", when, k, e, got, ok, want, wantOK)
		}
		got2, ok2 := sn.Get(k)
		if ok2 != ok || !bytes.Equal(got2, got) {
			t.Fatalf("%s: non-repeatable read of %q at epoch %d", when, k, e)
		}
	}
	if want, got := o.liveKeys(e), sn.Keys(); fmt.Sprint(want) != fmt.Sprint(got) {
		t.Fatalf("%s: Keys at epoch %d = %v, oracle says %v", when, e, got, want)
	}
}

// FuzzHotColdFallthrough drives the store through an op-coded script of
// staged writes, out-of-order publishes, aborts, folds, GCs and pinned
// verifications, then restarts it and verifies the recovered keyspace.
// Run the checked-in seeds under -race via plain `go test`; CI adds a
// `-fuzz` smoke on top.
func FuzzHotColdFallthrough(f *testing.F) {
	// Ops are (opcode, arg) byte pairs; opcode%8 selects put / delete /
	// open-batch / publish / abort / fold / gc / verify.
	f.Add([]byte{0, 1, 0, 2, 3, 0, 7, 0, 5, 0, 7, 0})                               // put put publish verify fold verify
	f.Add([]byte{0, 5, 1, 5, 3, 0, 5, 0, 0, 5, 3, 0, 6, 0, 7, 0})                   // tombstone over cold, republish, gc
	f.Add([]byte{2, 0, 0, 3, 2, 0, 0, 7, 3, 1, 7, 0, 3, 0, 5, 0, 7, 0})             // out-of-order publish across the fold
	f.Add([]byte{2, 0, 0, 4, 2, 0, 0, 8, 4, 0, 3, 0, 5, 0, 7, 0, 6, 0})             // abort leaves a watermark gap, then fold
	f.Add([]byte{0, 9, 3, 0, 5, 0, 1, 9, 3, 0, 7, 0, 5, 0, 7, 0, 0, 9, 3, 0, 7, 0}) // delete-refill churn on one key
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			t.Skip("script cap: beyond this length adds interleavings, not coverage")
		}
		kv, err := kvstore.Open(filepath.Join(t.TempDir(), "kv"), kvstore.Options{Sync: kvstore.SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer kv.Close()
		s, err := Open(kv, "vc/", Options{Shards: 4, FoldMinEntries: 1})
		if err != nil {
			t.Fatal(err)
		}

		o := oracle{}
		type openBatch struct {
			b       *Batch
			pending []modelVer
			keys    []string
		}
		var open []*openBatch
		key := func(arg byte) string { return fmt.Sprintf("k%02d", arg%16) }
		ensure := func() *openBatch {
			if len(open) == 0 {
				open = append(open, &openBatch{b: s.Begin()})
			}
			return open[len(open)-1]
		}
		publish := func(i int) {
			ob := open[i]
			open = append(open[:i], open[i+1:]...)
			// Record to the oracle before Publish: visibility is governed
			// by snapshot epochs, and nothing pins this epoch until the
			// watermark covers it — after Publish returns.
			for j, k := range ob.keys {
				o[k] = append(o[k], ob.pending[j])
			}
			if err := ob.b.Publish(); err != nil {
				t.Fatalf("Publish: %v", err)
			}
		}

		for pc := 0; pc+1 < len(ops); pc += 2 {
			op, arg := ops[pc]%8, ops[pc+1]
			switch op {
			case 0: // stage a put in the newest open batch
				ob := ensure()
				k := key(arg)
				v := []byte(fmt.Sprintf("%s@%d.%d", k, ob.b.Epoch(), arg))
				ob.b.Put(k, v) //memexvet:ignore epochbatch the fuzz driver interleaves ops on whatever batch ensure() hands back; the model oracle checks the outcome
				ob.keys = append(ob.keys, k)
				ob.pending = append(ob.pending, modelVer{epoch: ob.b.Epoch(), val: v})
			case 1: // stage a delete
				ob := ensure()
				k := key(arg)
				ob.b.Delete(k) //memexvet:ignore epochbatch same driver shape: ensure() only returns still-open batches
				ob.keys = append(ob.keys, k)
				ob.pending = append(ob.pending, modelVer{epoch: ob.b.Epoch(), deleted: true})
			case 2: // open another concurrent batch
				if len(open) < 3 {
					open = append(open, &openBatch{b: s.Begin()})
				}
			case 3: // publish some open batch (arg picks it → out of order)
				if len(open) > 0 {
					publish(int(arg) % len(open))
				}
			case 4: // abort some open batch
				if len(open) > 0 {
					i := int(arg) % len(open)
					open[i].b.Abort()
					open = append(open[:i], open[i+1:]...)
				}
			case 5: // fold to disk
				if _, err := s.Fold(); err != nil {
					t.Fatalf("Fold: %v", err)
				}
			case 6: // GC (folds or compacts, depending on volume)
				s.GC()
			case 7: // pin and verify against the oracle
				sn := s.Acquire()
				verifySnapshot(t, sn, o, "mid-script")
				sn.Release()
			}
		}

		// Drain: abort stragglers (publishing them would be fine too; an
		// abort exercises the watermark-gap path more), verify, restart,
		// verify again at the recovered watermark.
		for _, ob := range open {
			ob.b.Abort()
		}
		sn := s.Acquire()
		verifySnapshot(t, sn, o, "final")
		sn.Release()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(kv, "vc/", Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := s2.Watermark(), s.Watermark(); got != want {
			t.Fatalf("restart watermark = %d, want %d", got, want)
		}
		sn2 := s2.Acquire()
		verifySnapshot(t, sn2, o, "after restart")
		sn2.Release()
	})
}

// TestPropertyConcurrentHotColdInterleavings runs real concurrency over
// the same oracle: two publishers (racing epochs), a fold/GC loop, and
// pinned readers verifying newest-at-or-below-epoch for every sampled
// key, hot or cold. CI runs this under -race.
func TestPropertyConcurrentHotColdInterleavings(t *testing.T) {
	kv, err := kvstore.Open(filepath.Join(t.TempDir(), "kv"), kvstore.Options{Sync: kvstore.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	s, err := Open(kv, "vc/", Options{Shards: 4, FoldMinEntries: 64})
	if err != nil {
		t.Fatal(err)
	}

	const keys = 32
	const rounds = 400
	var mu sync.Mutex // guards the oracle and orders model-record vs Publish
	o := oracle{}

	var wg sync.WaitGroup
	var failed atomic.Bool
	errCh := make(chan error, 8)
	report := func(err error) {
		failed.Store(true)
		select {
		case errCh <- err:
		default:
		}
	}
	done := make(chan struct{})

	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + p)))
			for i := 0; i < rounds; i++ {
				b := s.Begin()
				n := 1 + rng.Intn(4)
				var pend []modelVer
				var pkeys []string
				for j := 0; j < n; j++ {
					k := fmt.Sprintf("pk%02d", rng.Intn(keys))
					if rng.Intn(8) == 0 {
						b.Delete(k)
						pend = append(pend, modelVer{epoch: b.Epoch(), deleted: true})
					} else {
						v := []byte(fmt.Sprintf("%s@%d", k, b.Epoch()))
						b.Put(k, v)
						pend = append(pend, modelVer{epoch: b.Epoch(), val: v})
					}
					pkeys = append(pkeys, k)
				}
				mu.Lock()
				for j, k := range pkeys {
					o[k] = append(o[k], pend[j])
				}
				err := b.Publish()
				mu.Unlock()
				if err != nil {
					report(fmt.Errorf("publish: %w", err))
					return
				}
			}
		}(p)
	}

	wg.Add(1)
	go func() { // fold/GC churn
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%2 == 0 {
				if _, err := s.Fold(); err != nil {
					report(fmt.Errorf("fold: %w", err))
					return
				}
			} else {
				s.GC()
			}
		}
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				sn := s.Acquire()
				e := sn.Epoch()
				for probe := 0; probe < 8; probe++ {
					k := fmt.Sprintf("pk%02d", rng.Intn(keys))
					mu.Lock()
					want, wantOK := o.lookup(k, e)
					mu.Unlock()
					got, ok := sn.Get(k)
					if ok != wantOK || !bytes.Equal(got, want) {
						report(fmt.Errorf("Get(%q) at epoch %d = %q,%v; oracle says %q,%v", k, e, got, ok, want, wantOK))
						sn.Release()
						return
					}
					got2, ok2 := sn.Get(k)
					if ok2 != ok || !bytes.Equal(got2, got) {
						report(fmt.Errorf("non-repeatable read of %q at epoch %d", k, e))
						sn.Release()
						return
					}
				}
				sn.Release()
			}
		}(r)
	}

	// Publishers allocate exactly 2*rounds epochs and publish them all, so
	// the watermark reaching that count means they are done; then stop the
	// churn and readers.
	for s.Watermark() < uint64(2*rounds) && !failed.Load() {
		time.Sleep(time.Millisecond)
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Quiesce, fold everything, restart, and verify the whole keyspace.
	if _, err := s.Fold(); err != nil {
		t.Fatal(err)
	}
	sn := s.Acquire()
	verifySnapshot(t, sn, o, "quiesced")
	sn.Release()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(kv, "vc/", Options{})
	if err != nil {
		t.Fatal(err)
	}
	sn2 := s2.Acquire()
	verifySnapshot(t, sn2, o, "after restart")
	sn2.Release()
}
