package version

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"memex/internal/kvstore"
)

// openKV opens the test kvstore for dir (SyncNever: the crash model under
// test is the version layer's watermark contract, not fsync behaviour —
// kvstore's own WAL tests cover torn files).
func openKV(t *testing.T, dir string) *kvstore.Store {
	t.Helper()
	kv, err := kvstore.Open(filepath.Join(dir, "kv"), kvstore.Options{Sync: kvstore.SyncNever})
	if err != nil {
		t.Fatalf("kvstore.Open: %v", err)
	}
	return kv
}

func openCold(t *testing.T, kv *kvstore.Store, o Options) *Store {
	t.Helper()
	s, err := Open(kv, "vc/", o)
	if err != nil {
		t.Fatalf("version.Open: %v", err)
	}
	return s
}

// publishKV publishes one batch of key→value pairs and returns its epoch.
func publishKV(t *testing.T, s *Store, kvs map[string]string) uint64 {
	t.Helper()
	b := s.Begin()
	for k, v := range kvs {
		b.Put(k, []byte(v))
	}
	e := b.Epoch()
	if err := b.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	return e
}

func TestColdFoldAndFallthrough(t *testing.T) {
	dir := t.TempDir()
	kv := openKV(t, dir)
	defer kv.Close()
	s := openCold(t, kv, Options{Shards: 4})

	for i := 0; i < 100; i++ {
		publishKV(t, s, map[string]string{fmt.Sprintf("k%03d", i): fmt.Sprintf("v%03d", i)})
	}
	// Overwrite a few and tombstone a few before folding.
	publishKV(t, s, map[string]string{"k007": "v007-new"})
	b := s.Begin()
	b.Delete("k009")
	if err := b.Publish(); err != nil {
		t.Fatal(err)
	}

	n, err := s.Fold()
	if err != nil {
		t.Fatalf("Fold: %v", err)
	}
	if n == 0 {
		t.Fatal("Fold moved nothing")
	}
	if got := s.VersionCount(); got != 0 {
		t.Fatalf("in-memory versions after full fold = %d, want 0", got)
	}
	if s.ColdRecords() == 0 {
		t.Fatal("no cold records after fold")
	}

	sn := s.Acquire()
	defer sn.Release()
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%03d", i)
		want := fmt.Sprintf("v%03d", i)
		if i == 7 {
			want = "v007-new"
		}
		v, ok := sn.Get(key)
		if i == 9 {
			if ok {
				t.Fatalf("tombstoned %s resurfaced from cold tier", key)
			}
			continue
		}
		if !ok || string(v) != want {
			t.Fatalf("Get(%s) = %q,%v after fold, want %q", key, v, ok, want)
		}
	}
	// Superseded version and dead tombstone reclaimed on disk: 100 keys
	// minus the tombstoned one.
	if got := s.ColdRecords(); got != 99 {
		t.Fatalf("cold records after cleanup = %d, want 99", got)
	}
}

// TestColdHotShadowsCold: an in-memory write (including a tombstone) for
// a key that already lives on disk must win for every new snapshot.
func TestColdHotShadowsCold(t *testing.T) {
	dir := t.TempDir()
	kv := openKV(t, dir)
	defer kv.Close()
	s := openCold(t, kv, Options{Shards: 2})

	publishKV(t, s, map[string]string{"a": "old", "b": "keep"})
	if _, err := s.Fold(); err != nil {
		t.Fatal(err)
	}
	publishKV(t, s, map[string]string{"a": "new"})
	b := s.Begin()
	b.Delete("b")
	if err := b.Publish(); err != nil {
		t.Fatal(err)
	}

	sn := s.Acquire()
	if v, ok := sn.Get("a"); !ok || string(v) != "new" {
		t.Fatalf("Get(a) = %q,%v, want fresh in-memory value", v, ok)
	}
	if _, ok := sn.Get("b"); ok {
		t.Fatal("in-memory tombstone failed to shadow cold record")
	}
	keys := sn.Keys()
	if fmt.Sprint(keys) != "[a]" {
		t.Fatalf("Keys = %v, want [a]", keys)
	}
	sn.Release()

	// And the shadowing must survive the next fold + a restart.
	if _, err := s.Fold(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openCold(t, kv, Options{})
	sn2 := s2.Acquire()
	defer sn2.Release()
	if v, ok := sn2.Get("a"); !ok || string(v) != "new" {
		t.Fatalf("after restart Get(a) = %q,%v", v, ok)
	}
	if _, ok := sn2.Get("b"); ok {
		t.Fatal("tombstoned key resurrected by restart")
	}
}

// TestCrashRecoveryMidFold is the ISSUE 3 crash test: kill the store
// mid-fold at each failpoint, reopen, and assert that every published
// epoch at or below the recovered watermark is readable and that no epoch
// above the watermark leaks.
func TestCrashRecoveryMidFold(t *testing.T) {
	errCrash := errors.New("injected crash")
	for _, point := range []FoldPoint{FoldAfterWrite, FoldAfterWatermark} {
		t.Run(fmt.Sprintf("point=%d", point), func(t *testing.T) {
			dir := t.TempDir()
			kv := openKV(t, dir)
			defer kv.Close()
			s := openCold(t, kv, Options{Shards: 4})

			// Round 1: establish a durable base, including a key the
			// crashed fold will later overwrite — the overwrite's partial
			// records must not destroy the durable old version.
			model := map[string]string{}
			for i := 0; i < 40; i++ {
				k, v := fmt.Sprintf("k%02d", i), fmt.Sprintf("r1-%02d", i)
				publishKV(t, s, map[string]string{k: v})
				model[k] = v
			}
			if _, err := s.Fold(); err != nil {
				t.Fatal(err)
			}
			wm1 := s.Watermark()

			// Round 2: more publishes (overwrites and news), then a fold
			// that dies at the injected point.
			round2 := map[string]string{}
			for i := 0; i < 40; i++ {
				k, v := fmt.Sprintf("k%02d", i*2), fmt.Sprintf("r2-%02d", i*2)
				publishKV(t, s, map[string]string{k: v})
				round2[k] = v
			}
			wm2 := s.Watermark()
			s.SetFoldHook(func(p FoldPoint) error {
				if p == point {
					return errCrash
				}
				return nil
			})
			if _, err := s.Fold(); !errors.Is(err, errCrash) {
				t.Fatalf("Fold error = %v, want injected crash", err)
			}
			// The process dies here: drop s on the floor, reopen the
			// keyspace. (kv survives — the kvstore's own WAL-replay tests
			// cover torn files; this test pins the version layer's
			// watermark contract over whatever subset of writes survived.)
			s2 := openCold(t, kv, Options{})

			wantWM := wm1
			if point == FoldAfterWatermark {
				wantWM = wm2
				// The watermark committed, so round 2 is durable.
				for k, v := range round2 {
					model[k] = v
				}
			}
			if got := s2.Watermark(); got != wantWM {
				t.Fatalf("recovered watermark = %d, want %d", got, wantWM)
			}

			sn := s2.Acquire()
			for k, v := range model {
				got, ok := sn.Get(k)
				if !ok || string(got) != v {
					t.Fatalf("epoch ≤ watermark lost: Get(%s) = %q,%v, want %q", k, got, ok, v)
				}
			}
			if point == FoldAfterWrite {
				// No epoch above the watermark may leak: the torn fold's
				// records were purged, so every key reads as round 1.
				for k := range round2 {
					got, ok := sn.Get(k)
					if want, existed := model[k]; existed {
						if !ok || string(got) != want {
							t.Fatalf("Get(%s) = %q,%v, want durable %q", k, got, ok, want)
						}
					} else if ok {
						t.Fatalf("epoch > watermark leaked: Get(%s) = %q", k, got)
					}
				}
				// And nothing above the watermark survives on disk either.
				kv.ScanPrefix([]byte("vc/r/"), func(k, _ []byte) bool {
					_, key, epoch, _, ok := s2.cold.parseRecordKey(k)
					if ok && epoch > wantWM {
						t.Errorf("stale record %q at epoch %d > watermark %d", key, epoch, wantWM)
					}
					return true
				})
			}

			// Release the verification pin — a pinned snapshot would
			// (correctly) hold the next fold's floor at the old watermark.
			sn.Release()

			// Life goes on: epochs resume above the watermark, publish and
			// fold work, and a clean restart sees everything.
			b := s2.Begin()
			if b.Epoch() != wantWM+1 {
				t.Fatalf("resumed epoch = %d, want %d", b.Epoch(), wantWM+1)
			}
			b.Put("post", []byte("crash"))
			if err := b.Publish(); err != nil {
				t.Fatal(err)
			}
			if _, err := s2.Fold(); err != nil {
				t.Fatalf("Fold after recovery: %v", err)
			}
			s3 := openCold(t, kv, Options{})
			sn3 := s3.Acquire()
			defer sn3.Release()
			if v, ok := sn3.Get("post"); !ok || string(v) != "crash" {
				t.Fatalf("post-recovery publish lost: %q,%v", v, ok)
			}
		})
	}
}

// TestColdRecordsSurviveAbandonedSplice: when an in-memory compaction
// replaces a shard's sub-chain while a fold is writing (the
// abandon-on-conflict path), the layers stay in memory and the next fold
// re-writes records it already wrote — some at identical epochs. Reads
// must stay correct and the Records stat must match the physical record
// count on disk, not drift upward with every re-fold.
func TestColdRecordsSurviveAbandonedSplice(t *testing.T) {
	dir := t.TempDir()
	kv := openKV(t, dir)
	defer kv.Close()
	s := openCold(t, kv, Options{Shards: 2})

	model := map[string]string{}
	for i := 0; i < 20; i++ {
		k, v := fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i)
		publishKV(t, s, map[string]string{k: v})
		model[k] = v
	}
	// Last batch carries several keys, so after the conflicting merge
	// those entries keep their epoch — the exact-overwrite case.
	last := map[string]string{}
	for i := 20; i < 25; i++ {
		last[fmt.Sprintf("k%02d", i)] = fmt.Sprintf("v%02d", i)
	}
	publishKV(t, s, last)
	for k, v := range last {
		model[k] = v
	}

	// While the fold is mid-flight (records written, watermark durable,
	// splice not yet attempted), compact every shard in memory: the
	// sub-chains change under the fold, so its splice is abandoned and
	// every layer stays resident for the next round.
	s.SetFoldHook(func(p FoldPoint) error {
		if p == FoldAfterWatermark {
			for i := 0; i < s.Shards(); i++ {
				s.GCShard(i)
			}
		}
		return nil
	})
	if _, err := s.Fold(); err != nil {
		t.Fatal(err)
	}
	s.SetFoldHook(nil)

	// The abandoned shards' layers are durable but still resident. With
	// ingest idle the floor cannot advance, yet the very next fold must
	// retry the splice and reclaim the memory — not no-op forever.
	if s.VersionCount() == 0 {
		t.Fatal("test setup: splice was not abandoned")
	}
	if _, err := s.Fold(); err != nil {
		t.Fatal(err)
	}
	if got := s.VersionCount(); got != 0 {
		t.Fatalf("%d entries still resident after idle-floor retry fold", got)
	}

	// Publish once more (the fold floor advances) and re-fold twice.
	publishKV(t, s, map[string]string{"extra": "x"})
	model["extra"] = "x"
	if _, err := s.Fold(); err != nil {
		t.Fatal(err)
	}
	publishKV(t, s, map[string]string{"extra2": "y"})
	model["extra2"] = "y"
	if _, err := s.Fold(); err != nil {
		t.Fatal(err)
	}

	sn := s.Acquire()
	defer sn.Release()
	for k, v := range model {
		if got, ok := sn.Get(k); !ok || string(got) != v {
			t.Fatalf("Get(%s) = %q,%v after abandoned-splice churn, want %q", k, got, ok, v)
		}
	}
	// The stat must agree with a physical recount of part-0 records.
	physical := int64(0)
	kv.ScanPrefix([]byte("vc/r/"), func(k, _ []byte) bool {
		if _, _, _, part, ok := s.cold.parseRecordKey(k); ok && part == 0 {
			physical++
		}
		return true
	})
	if got := s.ColdRecords(); got != physical {
		t.Fatalf("ColdRecords = %d, physical part-0 records = %d: stat drifted", got, physical)
	}
}

// TestColdPinBlocksFold: the fold floor respects pinned snapshots, so a
// pinned epoch's view can never be folded out from under it half-way.
func TestColdPinBlocksFold(t *testing.T) {
	dir := t.TempDir()
	kv := openKV(t, dir)
	defer kv.Close()
	s := openCold(t, kv, Options{Shards: 2})

	publishKV(t, s, map[string]string{"x": "1"})
	sn := s.Acquire()
	publishKV(t, s, map[string]string{"x": "2"})
	if _, err := s.Fold(); err != nil {
		t.Fatal(err)
	}
	if wm := s.StoreStats().Cold.Watermark; wm != sn.Epoch() {
		t.Fatalf("fold watermark = %d, want pin floor %d", wm, sn.Epoch())
	}
	if v, _ := sn.Get("x"); string(v) != "1" {
		t.Fatalf("pinned snapshot read %q mid-fold, want 1", v)
	}
	sn.Release()
	if _, err := s.Fold(); err != nil {
		t.Fatal(err)
	}
	if wm := s.StoreStats().Cold.Watermark; wm != s.Watermark() {
		t.Fatalf("post-release fold watermark = %d, want %d", wm, s.Watermark())
	}
	sn2 := s.Acquire()
	defer sn2.Release()
	if v, _ := sn2.Get("x"); string(v) != "2" {
		t.Fatalf("Get(x) = %q after folds, want 2", v)
	}
}

// TestColdMultiPartValues: values beyond one kvstore entry round-trip
// through fold, fallthrough reads, cleanup, and restart.
func TestColdMultiPartValues(t *testing.T) {
	dir := t.TempDir()
	kv := openKV(t, dir)
	defer kv.Close()
	s := openCold(t, kv, Options{Shards: 2})

	sizes := []int{0, 1, 100, 900, 1024, 5000, 40000}
	want := map[string][]byte{}
	for _, n := range sizes {
		val := bytes.Repeat([]byte{byte(n % 251)}, n)
		for i := range val {
			val[i] = byte(i * 31)
		}
		key := fmt.Sprintf("blob-%d", n)
		b := s.Begin()
		b.Put(key, val)
		if err := b.Publish(); err != nil {
			t.Fatal(err)
		}
		want[key] = val
	}
	if _, err := s.Fold(); err != nil {
		t.Fatal(err)
	}
	check := func(s *Store, when string) {
		sn := s.Acquire()
		defer sn.Release()
		for k, v := range want {
			got, ok := sn.Get(k)
			if !ok || !bytes.Equal(got, v) {
				t.Fatalf("%s: Get(%s) lost a %d-byte value (ok=%v got %d bytes)", when, k, len(v), ok, len(got))
			}
		}
	}
	check(s, "after fold")

	// Overwrite the big ones and fold again: cleanup must drop every old
	// part without corrupting the new version.
	for _, n := range []int{5000, 40000} {
		key := fmt.Sprintf("blob-%d", n)
		val := bytes.Repeat([]byte("New"), n/3+1)[:n]
		b := s.Begin()
		b.Put(key, val)
		if err := b.Publish(); err != nil {
			t.Fatal(err)
		}
		want[key] = val
	}
	if _, err := s.Fold(); err != nil {
		t.Fatal(err)
	}
	check(s, "after overwrite fold")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openCold(t, kv, Options{})
	check(s2, "after restart")
	if got, want := s2.ColdRecords(), int64(len(sizes)); got != want {
		t.Fatalf("cold records = %d, want %d (one logical version per key)", got, want)
	}
}

// TestColdShardCountPinnedByKeyspace: the on-disk keyspace remembers its
// shard routing; a reopen asking for a different count keeps the
// persisted one (otherwise key→shard hashes would miss every record).
func TestColdShardCountPinnedByKeyspace(t *testing.T) {
	dir := t.TempDir()
	kv := openKV(t, dir)
	defer kv.Close()
	s := openCold(t, kv, Options{Shards: 8})
	publishKV(t, s, map[string]string{"a": "1", "b": "2", "c": "3"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openCold(t, kv, Options{Shards: 2})
	if got := s2.Shards(); got != 8 {
		t.Fatalf("reopened shard count = %d, want persisted 8", got)
	}
	sn := s2.Acquire()
	defer sn.Release()
	for k, v := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		if got, ok := sn.Get(k); !ok || string(got) != v {
			t.Fatalf("Get(%s) = %q,%v after reopen", k, got, ok)
		}
	}
}

// TestColdRangeUnion: Range yields each live key exactly once across both
// tiers, newest version winning, stopping early on demand.
func TestColdRangeUnion(t *testing.T) {
	dir := t.TempDir()
	kv := openKV(t, dir)
	defer kv.Close()
	s := openCold(t, kv, Options{Shards: 4})

	publishKV(t, s, map[string]string{"cold-only": "c", "both": "old", "dead": "x"})
	if _, err := s.Fold(); err != nil {
		t.Fatal(err)
	}
	publishKV(t, s, map[string]string{"both": "new", "hot-only": "h"})
	b := s.Begin()
	b.Delete("dead")
	if err := b.Publish(); err != nil {
		t.Fatal(err)
	}

	sn := s.Acquire()
	defer sn.Release()
	got := map[string]string{}
	sn.Range(func(k string, v []byte) bool {
		if _, dup := got[k]; dup {
			t.Fatalf("Range yielded %q twice", k)
		}
		got[k] = string(v)
		return true
	})
	want := map[string]string{"cold-only": "c", "both": "new", "hot-only": "h"}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%q] = %q, want %q", k, got[k], v)
		}
	}
	n := 0
	sn.Range(func(string, []byte) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stopped Range visited %d keys, want 1", n)
	}
}

// TestFoldBoundsMemory is the deterministic half of the ISSUE 3
// acceptance: ingesting 10× the fold threshold with periodic GC keeps the
// in-memory tier bounded near the threshold while every record stays
// readable, and a restart recovers the full keyspace with zero lost
// epochs.
func TestFoldBoundsMemory(t *testing.T) {
	const threshold = 512
	dir := t.TempDir()
	kv := openKV(t, dir)
	defer kv.Close()
	s := openCold(t, kv, Options{Shards: 4, FoldMinEntries: threshold})

	total := 10 * threshold
	high := 0
	for i := 0; i < total; i++ {
		publishKV(t, s, map[string]string{fmt.Sprintf("page-%05d", i): fmt.Sprintf("derived-%05d", i)})
		if i%64 == 0 {
			s.GC()
			if n := s.VersionCount(); n > high {
				high = n
			}
		}
	}
	s.GC()
	if n := s.VersionCount(); n > high {
		high = n
	}
	// The in-memory tier's high-water must track the fold threshold, not
	// the total ingested (2× covers the between-GC accumulation window).
	if high > 2*threshold {
		t.Fatalf("in-memory high-water = %d entries for threshold %d (total %d): fold is not bounding memory", high, threshold, total)
	}
	if s.ColdRecords() == 0 {
		t.Fatal("nothing reached the cold tier")
	}

	verify := func(s *Store, when string) {
		sn := s.Acquire()
		defer sn.Release()
		for i := 0; i < total; i++ {
			k := fmt.Sprintf("page-%05d", i)
			v, ok := sn.Get(k)
			if !ok || string(v) != fmt.Sprintf("derived-%05d", i) {
				t.Fatalf("%s: record %s lost (%q,%v)", when, k, v, ok)
			}
		}
	}
	verify(s, "pre-restart")
	wm := s.Watermark()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openCold(t, kv, Options{})
	if got := s2.Watermark(); got != wm {
		t.Fatalf("restart lost epochs: watermark %d, want %d", got, wm)
	}
	if got := int(s2.ColdRecords()); got != total {
		t.Fatalf("restart recovered %d records, want %d", got, total)
	}
	verify(s2, "post-restart")
}

// TestGCFallsBackToInMemoryBelowThreshold: with little foldable data the
// periodic GC compacts in memory instead of churning the disk.
func TestGCFallsBackToInMemoryBelowThreshold(t *testing.T) {
	dir := t.TempDir()
	kv := openKV(t, dir)
	defer kv.Close()
	s := openCold(t, kv, Options{Shards: 2, FoldMinEntries: 1 << 20})

	for i := 0; i < 50; i++ {
		publishKV(t, s, map[string]string{"k": fmt.Sprintf("v%d", i)})
	}
	s.GC()
	if s.ColdRecords() != 0 {
		t.Fatal("GC folded to disk below the threshold")
	}
	st := s.StoreStats()
	if st.Layers != 1 {
		t.Fatalf("in-memory GC did not compact: %d layers", st.Layers)
	}
	sn := s.Acquire()
	defer sn.Release()
	if v, _ := sn.Get("k"); string(v) != "v49" {
		t.Fatalf("Get(k) = %q, want v49", v)
	}
}

// TestColdKeyTooLongPanics: cold-backed stores reject keys the disk
// codec cannot frame, at Put time.
func TestColdKeyTooLongPanics(t *testing.T) {
	dir := t.TempDir()
	kv := openKV(t, dir)
	defer kv.Close()
	s := openCold(t, kv, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("oversized key accepted into a disk-backed store")
		}
	}()
	b := s.Begin()
	b.Put(strings.Repeat("x", MaxColdKeyLen+1), []byte("v"))
}
