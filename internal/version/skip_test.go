package version

import (
	"fmt"
	"math/bits"
	"testing"
)

// stallChain builds a single-shard store whose shard chain is depth
// layers deep above the watermark: epoch 1 publishes the probe key, an
// incomplete epoch 2 stalls the watermark there, and depth completed
// epochs pile up on top. Every snapshot read must descend past all of
// them to reach epoch 1 — the deep out-of-order chain walk the skip
// index exists for. The returned batch keeps the stall alive; the
// caller may Abort it to release the store.
func stallChain(t testing.TB, depth int) (*Store, *Batch) {
	s := NewStoreSharded(1)
	b := s.Begin()
	b.Put("k", []byte("v1"))
	if err := b.Publish(); err != nil {
		t.Fatal(err)
	}
	stall := s.Begin() // epoch 2, never completed: watermark pins at 1
	for i := 0; i < depth; i++ {
		b := s.Begin()
		b.Put(fmt.Sprintf("x%06d", i), []byte("x"))
		if err := b.Publish(); err != nil {
			t.Fatal(err)
		}
	}
	return s, stall
}

// TestDeepChainGetLogProbes is the skip index's complexity contract: a
// Get under a watermark buried beneath n out-of-order layers descends
// in O(log n) probes, not n.
func TestDeepChainGetLogProbes(t *testing.T) {
	for _, depth := range []int{64, 256, 1024} {
		s, stall := stallChain(t, depth)
		st := s.current.Load()
		head := st.shards[0].head
		if head == nil || head.epoch <= st.watermark {
			t.Fatalf("depth %d: chain did not stall above the watermark", depth)
		}
		l, probes := descendTo(head, st.watermark)
		if l == nil || l.epoch != 1 {
			t.Fatalf("depth %d: descendTo landed on %v, want epoch 1", depth, l)
		}
		// The greedy binary-lifting descent advances through at most a
		// handful of nodes per level; 4·log2(n)+4 is a loose static bound
		// that a linear walk (depth probes) blows through immediately.
		bound := 4*bits.Len(uint(depth)) + 4
		if probes > bound {
			t.Fatalf("depth %d: descent took %d probes, want ≤ %d (O(log n))", depth, probes, bound)
		}
		// And the read itself is correct: the stalled snapshot sees epoch
		// 1's value and none of the above-watermark writes.
		sn := s.Acquire()
		if v, ok := sn.Get("k"); !ok || string(v) != "v1" {
			t.Fatalf("depth %d: deep-chain Get = %q ok=%v", depth, v, ok)
		}
		if _, ok := sn.Get("x000000"); ok {
			t.Fatalf("depth %d: snapshot saw an above-watermark write", depth)
		}
		sn.Release()
		stall.Abort()
	}
}

// TestSkipLadderShape checks the binary-lifting invariant on a live
// chain: skips[0] is next, and skips[i] is skips[i-1]'s skips[i-1] — so
// level i jumps exactly 2^i layers on a fully linked chain.
func TestSkipLadderShape(t *testing.T) {
	s, stall := stallChain(t, 128)
	defer stall.Abort()
	st := s.current.Load()
	for l := st.shards[0].head; l != nil; l = l.next {
		if l.next == nil {
			if len(l.skips) != 0 {
				t.Fatalf("epoch %d: tail layer has %d skips", l.epoch, len(l.skips))
			}
			continue
		}
		if len(l.skips) == 0 || l.skips[0] != l.next {
			t.Fatalf("epoch %d: skips[0] is not next", l.epoch)
		}
		for i := 1; i < len(l.skips); i++ {
			hop := l.skips[i-1]
			if i-1 >= len(hop.skips) || hop.skips[i-1] != l.skips[i] {
				t.Fatalf("epoch %d: skips[%d] is not skips[%d].skips[%d]", l.epoch, i, i-1, i-1)
			}
		}
	}
}

// BenchmarkDeepChainGet measures Snapshot.Get with the watermark buried
// under out-of-order layers — the serving-path cost the skip index
// collapses from O(depth) to O(log depth).
func BenchmarkDeepChainGet(b *testing.B) {
	for _, depth := range []int{64, 256} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			s, stall := stallChain(b, depth)
			defer stall.Abort()
			sn := s.Acquire()
			defer sn.Release()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := sn.Get("k"); !ok {
					b.Fatal("lost the key")
				}
			}
		})
	}
}
