package version

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The microbenchmarks below pin down the three costs the epoch-layer
// redesign targets: publish throughput (O(batch), independent of store
// size), snapshot read throughput as reader count grows (lock-free, so
// per-op cost must stay flat instead of collapsing on a store mutex —
// on multicore hardware aggregate throughput then scales linearly), and
// the GC pause (compaction happens off the read path; only the producer
// side ever waits for it).

func benchStore(keys int) (*Store, []string) {
	s := NewStore()
	names := make([]string, keys)
	b := s.BeginSized(keys)
	for i := range names {
		names[i] = fmt.Sprintf("key%04d", i)
		b.Put(names[i], []byte("value"))
	}
	b.Publish()
	return s, names
}

// BenchmarkPublish128 measures producer throughput at the E9 batch shape
// (128 keys per epoch) with periodic compaction.
func BenchmarkPublish128(b *testing.B) {
	s, names := benchStore(128)
	val := []byte("v")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := s.BeginSized(len(names))
		for _, k := range names {
			batch.Put(k, val)
		}
		batch.Publish()
		if i%256 == 255 {
			s.GC()
		}
	}
}

// BenchmarkSnapshotReadScaling splits b.N Gets over 1, 4, and 16 reader
// goroutines against a shared snapshot-per-reader. Lock-free reads keep
// ns/op flat as readers grow; a store-mutex design degrades instead.
func BenchmarkSnapshotReadScaling(b *testing.B) {
	for _, readers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			s, names := benchStore(1024)
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					snap := s.Acquire()
					defer snap.Release()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						snap.Get(names[i%int64(len(names))])
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkSnapshotReadUnderPublish is the contended variant: readers
// drain b.N Gets while one producer publishes continuously. With layered
// snapshots the producer adds no reader-side serialization.
func BenchmarkSnapshotReadUnderPublish(b *testing.B) {
	for _, readers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			s, names := benchStore(1024)
			stop := make(chan struct{})
			var prodWG sync.WaitGroup
			prodWG.Add(1)
			go func() {
				defer prodWG.Done()
				published := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					batch := s.BeginSized(8)
					for k := 0; k < 8; k++ {
						batch.Put(names[(published+k)%len(names)], []byte("new"))
					}
					batch.Publish()
					published++
					if published%256 == 0 {
						s.GC()
					}
				}
			}()
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						// Re-pin periodically like a real analyzer pass.
						snap := s.Acquire()
						for j := 0; j < 64 && i < int64(b.N); j++ {
							snap.Get(names[i%int64(len(names))])
							i = next.Add(1) - 1
						}
						snap.Release()
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			close(stop)
			prodWG.Wait()
		})
	}
}

// BenchmarkAcquireRelease measures the snapshot pin cost: one atomic
// load plus two atomic adds.
func BenchmarkAcquireRelease(b *testing.B) {
	s, _ := benchStore(128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Acquire().Release()
	}
}

// BenchmarkGCPause reports the wall-clock cost of one compaction after
// 256 published epochs of 64 keys — the pause the version-gc demon (not
// any reader) absorbs.
func BenchmarkGCPause(b *testing.B) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, names := benchStore(64)
		for e := 0; e < 256; e++ {
			batch := s.BeginSized(len(names))
			for _, k := range names {
				batch.Put(k, []byte("v"))
			}
			batch.Publish()
		}
		b.StartTimer()
		t0 := time.Now()
		s.GC()
		total += time.Since(t0)
	}
	b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "ns/gc")
}

// --- shard scaling ---
//
// The benchmarks below pin the sharding claims: publish throughput under
// concurrent batch builders, GC wall-clock shrinking as shards compact in
// parallel, and single-reader Get latency staying flat from 1 shard (the
// PR 1 layout) to many.

func shardCounts() []int {
	return []int{1, 2, 4, 8}
}

// benchShardedStore seeds a store with the given shard count and keys.
func benchShardedStore(shards, keys int) (*Store, []string) {
	s := NewStoreSharded(shards)
	names := make([]string, keys)
	b := s.BeginSized(keys)
	for i := range names {
		names[i] = fmt.Sprintf("key%05d", i)
		b.Put(names[i], []byte("value"))
	}
	b.Publish()
	return s, names
}

// BenchmarkPublishShardScaling measures producer throughput at the E9
// batch shape across shard counts: staging routes keys to shards, and
// the install's critical section is O(touched shards) pointer work.
func BenchmarkPublishShardScaling(b *testing.B) {
	for _, shards := range shardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, names := benchShardedStore(shards, 128)
			val := []byte("v")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := s.BeginSized(len(names))
				for _, k := range names {
					batch.Put(k, val)
				}
				batch.Publish()
				if i%256 == 255 {
					s.GC()
				}
			}
		})
	}
}

// BenchmarkGetShardScaling is the regression guard for single-reader Get
// latency: routing through the shard hash must not cost measurably more
// at 1 shard than the unsharded PR 1 chain walk did (~22ns), and deeper
// shard counts must not regress it either.
func BenchmarkGetShardScaling(b *testing.B) {
	for _, shards := range shardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, names := benchShardedStore(shards, 1024)
			snap := s.Acquire()
			defer snap.Release()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap.Get(names[i%len(names)])
			}
		})
	}
}

// BenchmarkGCShardScaling measures one full-store compaction of a large
// archive (8192 keys × 24 superseded epochs), across shard counts: the
// merge work is fixed, each shard's slice of it runs on its own
// goroutine outside the store mutex, so on multicore hardware wall-clock
// drops as shards compact in parallel. On a single-CPU box the numbers
// degenerate to the serial merge cost (flat across shard counts) — the
// concurrency itself is exercised by TestParallelShardGCUnderPublish.
func BenchmarkGCShardScaling(b *testing.B) {
	for _, shards := range shardCounts() {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, names := benchShardedStore(shards, 8192)
				for e := 0; e < 24; e++ {
					batch := s.BeginSized(len(names))
					for _, k := range names {
						batch.Put(k, []byte("v"))
					}
					batch.Publish()
				}
				b.StartTimer()
				t0 := time.Now()
				s.GC()
				total += time.Since(t0)
			}
			b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "ns/gc")
		})
	}
}

// BenchmarkParallelPublishers measures aggregate publish throughput with
// several concurrent producers (the paper's many-collection ingest mix):
// per-shard staging happens outside the store mutex, so producers overlap
// everything but the O(shards) install.
func BenchmarkParallelPublishers(b *testing.B) {
	for _, producers := range []int{1, 4} {
		b.Run(fmt.Sprintf("producers=%d", producers), func(b *testing.B) {
			s, names := benchShardedStore(8, 128)
			var next atomic.Int64
			var wg sync.WaitGroup
			val := []byte("v")
			b.ResetTimer()
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						batch := s.BeginSized(len(names))
						for _, k := range names {
							batch.Put(k, val)
						}
						batch.Publish()
						if i%256 == 255 {
							s.GC()
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
