package version

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The microbenchmarks below pin down the three costs the epoch-layer
// redesign targets: publish throughput (O(batch), independent of store
// size), snapshot read throughput as reader count grows (lock-free, so
// per-op cost must stay flat instead of collapsing on a store mutex —
// on multicore hardware aggregate throughput then scales linearly), and
// the GC pause (compaction happens off the read path; only the producer
// side ever waits for it).

func benchStore(keys int) (*Store, []string) {
	s := NewStore()
	names := make([]string, keys)
	b := s.BeginSized(keys)
	for i := range names {
		names[i] = fmt.Sprintf("key%04d", i)
		b.Put(names[i], []byte("value"))
	}
	b.Publish()
	return s, names
}

// BenchmarkPublish128 measures producer throughput at the E9 batch shape
// (128 keys per epoch) with periodic compaction.
func BenchmarkPublish128(b *testing.B) {
	s, names := benchStore(128)
	val := []byte("v")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := s.BeginSized(len(names))
		for _, k := range names {
			batch.Put(k, val)
		}
		batch.Publish()
		if i%256 == 255 {
			s.GC()
		}
	}
}

// BenchmarkSnapshotReadScaling splits b.N Gets over 1, 4, and 16 reader
// goroutines against a shared snapshot-per-reader. Lock-free reads keep
// ns/op flat as readers grow; a store-mutex design degrades instead.
func BenchmarkSnapshotReadScaling(b *testing.B) {
	for _, readers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			s, names := benchStore(1024)
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					snap := s.Acquire()
					defer snap.Release()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						snap.Get(names[i%int64(len(names))])
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkSnapshotReadUnderPublish is the contended variant: readers
// drain b.N Gets while one producer publishes continuously. With layered
// snapshots the producer adds no reader-side serialization.
func BenchmarkSnapshotReadUnderPublish(b *testing.B) {
	for _, readers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			s, names := benchStore(1024)
			stop := make(chan struct{})
			var prodWG sync.WaitGroup
			prodWG.Add(1)
			go func() {
				defer prodWG.Done()
				published := 0
				for {
					select {
					case <-stop:
						return
					default:
					}
					batch := s.BeginSized(8)
					for k := 0; k < 8; k++ {
						batch.Put(names[(published+k)%len(names)], []byte("new"))
					}
					batch.Publish()
					published++
					if published%256 == 0 {
						s.GC()
					}
				}
			}()
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						// Re-pin periodically like a real analyzer pass.
						snap := s.Acquire()
						for j := 0; j < 64 && i < int64(b.N); j++ {
							snap.Get(names[i%int64(len(names))])
							i = next.Add(1) - 1
						}
						snap.Release()
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			close(stop)
			prodWG.Wait()
		})
	}
}

// BenchmarkAcquireRelease measures the snapshot pin cost: one atomic
// load plus two atomic adds.
func BenchmarkAcquireRelease(b *testing.B) {
	s, _ := benchStore(128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Acquire().Release()
	}
}

// BenchmarkGCPause reports the wall-clock cost of one compaction after
// 256 published epochs of 64 keys — the pause the version-gc demon (not
// any reader) absorbs.
func BenchmarkGCPause(b *testing.B) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, names := benchStore(64)
		for e := 0; e < 256; e++ {
			batch := s.BeginSized(len(names))
			for _, k := range names {
				batch.Put(k, []byte("v"))
			}
			batch.Publish()
		}
		b.StartTimer()
		t0 := time.Now()
		s.GC()
		total += time.Since(t0)
	}
	b.ReportMetric(float64(total.Nanoseconds())/float64(b.N), "ns/gc")
}
