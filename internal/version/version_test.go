package version

import (
	"fmt"
	"sync"
	"testing"
)

func TestPublishVisibility(t *testing.T) {
	s := NewStore()
	snap0 := s.Acquire()
	defer snap0.Release()

	b := s.Begin()
	b.Put("k", []byte("v1"))
	if err := b.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	// Old snapshot must not see the new write.
	if _, ok := snap0.Get("k"); ok {
		t.Fatal("stale snapshot observed a later publish")
	}
	// New snapshot must.
	snap1 := s.Acquire()
	defer snap1.Release()
	v, ok := snap1.Get("k")
	if !ok || string(v) != "v1" {
		t.Fatalf("new snapshot: %q ok=%v", v, ok)
	}
}

func TestUnpublishedInvisible(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("k", []byte("v"))
	snap := s.Acquire()
	defer snap.Release()
	if _, ok := snap.Get("k"); ok {
		t.Fatal("snapshot observed unpublished batch")
	}
	b.Publish()
	if _, ok := snap.Get("k"); ok {
		t.Fatal("pinned snapshot observed publish after acquire")
	}
}

func TestDoublePublishFails(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("k", []byte("v"))
	if err := b.Publish(); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(); err == nil {
		t.Fatal("double publish accepted")
	}
}

func TestTombstone(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("k", []byte("v"))
	b.Publish()

	b2 := s.Begin()
	b2.Delete("k")
	b2.Publish()

	snap := s.Acquire()
	defer snap.Release()
	if _, ok := snap.Get("k"); ok {
		t.Fatal("deleted key visible")
	}
	if keys := snap.Keys(); len(keys) != 0 {
		t.Fatalf("Keys = %v, want empty", keys)
	}
}

func TestSnapshotRepeatableReads(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		b := s.Begin()
		b.Put("k", []byte(fmt.Sprintf("v%d", i)))
		b.Publish()
	}
	snap := s.Acquire()
	defer snap.Release()
	first, _ := snap.Get("k")
	for i := 5; i < 10; i++ {
		b := s.Begin()
		b.Put("k", []byte(fmt.Sprintf("v%d", i)))
		b.Publish()
	}
	second, _ := snap.Get("k")
	if string(first) != string(second) {
		t.Fatalf("snapshot read changed: %q then %q", first, second)
	}
}

func TestAbort(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("k", []byte("v"))
	b.Abort()
	snap := s.Acquire()
	defer snap.Release()
	if _, ok := snap.Get("k"); ok {
		t.Fatal("aborted batch visible")
	}
}

func TestGCReclaimsSupersededVersions(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		b := s.Begin()
		b.Put("k", []byte(fmt.Sprintf("v%d", i)))
		b.Publish()
	}
	if got := s.VersionCount(); got != 10 {
		t.Fatalf("VersionCount = %d, want 10", got)
	}
	n := s.GC()
	if n != 9 {
		t.Fatalf("GC reclaimed %d, want 9", n)
	}
	snap := s.Acquire()
	defer snap.Release()
	v, ok := snap.Get("k")
	if !ok || string(v) != "v9" {
		t.Fatalf("after GC: %q ok=%v", v, ok)
	}
}

func TestGCRespectsPinnedSnapshots(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("k", []byte("old"))
	b.Publish()
	snapOld := s.Acquire()

	b2 := s.Begin()
	b2.Put("k", []byte("new"))
	b2.Publish()

	s.GC()
	v, ok := snapOld.Get("k")
	if !ok || string(v) != "old" {
		t.Fatalf("pinned snapshot lost its version: %q ok=%v", v, ok)
	}
	snapOld.Release()
	s.GC()
	if got := s.VersionCount(); got != 1 {
		t.Fatalf("VersionCount after release+GC = %d, want 1", got)
	}
}

func TestGCDropsTombstonedKeys(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("k", []byte("v"))
	b.Publish()
	b2 := s.Begin()
	b2.Delete("k")
	b2.Publish()
	s.GC()
	if got := s.VersionCount(); got != 0 {
		t.Fatalf("VersionCount = %d, want 0 (tombstone collected)", got)
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("zebra", []byte("1"))
	b.Put("apple", []byte("2"))
	b.Put("mango", []byte("3"))
	b.Publish()
	snap := s.Acquire()
	defer snap.Release()
	keys := snap.Keys()
	want := []string{"apple", "mango", "zebra"}
	if len(keys) != 3 {
		t.Fatalf("Keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

// TestConcurrentProducerConsumers is the E9 consistency check in miniature:
// one producer publishes batches where all values in batch i equal i; every
// consumer snapshot must read a consistent batch (all keys agree).
func TestConcurrentProducerConsumers(t *testing.T) {
	s := NewStore()
	const keys = 8
	const rounds = 200

	// Seed epoch 0 state.
	b := s.Begin()
	for k := 0; k < keys; k++ {
		b.Put(fmt.Sprintf("key%d", k), []byte("0"))
	}
	b.Publish()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Acquire()
				var first string
				consistent := true
				for k := 0; k < keys; k++ {
					v, ok := snap.Get(fmt.Sprintf("key%d", k))
					if !ok {
						consistent = false
						break
					}
					if k == 0 {
						first = string(v)
					} else if string(v) != first {
						consistent = false
						break
					}
				}
				snap.Release()
				if !consistent {
					select {
					case errCh <- fmt.Errorf("inconsistent snapshot observed"):
					default:
					}
					return
				}
			}
		}()
	}
	for r := 1; r <= rounds; r++ {
		b := s.Begin()
		val := []byte(fmt.Sprintf("%d", r))
		for k := 0; k < keys; k++ {
			b.Put(fmt.Sprintf("key%d", k), val)
		}
		b.Publish()
		if r%50 == 0 {
			s.GC()
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func BenchmarkPublish(b *testing.B) {
	s := NewStore()
	for i := 0; i < b.N; i++ {
		batch := s.Begin()
		batch.Put("k1", []byte("v"))
		batch.Put("k2", []byte("v"))
		batch.Publish()
		if i%1024 == 0 {
			s.GC()
		}
	}
}

func BenchmarkSnapshotGet(b *testing.B) {
	s := NewStore()
	batch := s.Begin()
	for i := 0; i < 1000; i++ {
		batch.Put(fmt.Sprintf("key%d", i), []byte("v"))
	}
	batch.Publish()
	snap := s.Acquire()
	defer snap.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Get(fmt.Sprintf("key%d", i%1000))
	}
}
