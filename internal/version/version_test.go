package version

import (
	"fmt"
	"sync"
	"testing"
)

func TestPublishVisibility(t *testing.T) {
	s := NewStore()
	snap0 := s.Acquire()
	defer snap0.Release()

	b := s.Begin()
	b.Put("k", []byte("v1"))
	if err := b.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	// Old snapshot must not see the new write.
	if _, ok := snap0.Get("k"); ok {
		t.Fatal("stale snapshot observed a later publish")
	}
	// New snapshot must.
	snap1 := s.Acquire()
	defer snap1.Release()
	v, ok := snap1.Get("k")
	if !ok || string(v) != "v1" {
		t.Fatalf("new snapshot: %q ok=%v", v, ok)
	}
}

func TestUnpublishedInvisible(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("k", []byte("v"))
	snap := s.Acquire()
	defer snap.Release()
	if _, ok := snap.Get("k"); ok {
		t.Fatal("snapshot observed unpublished batch")
	}
	b.Publish()
	if _, ok := snap.Get("k"); ok {
		t.Fatal("pinned snapshot observed publish after acquire")
	}
}

func TestDoublePublishFails(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("k", []byte("v"))
	if err := b.Publish(); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(); err == nil {
		t.Fatal("double publish accepted")
	}
}

func TestTombstone(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("k", []byte("v"))
	b.Publish()

	b2 := s.Begin()
	b2.Delete("k")
	b2.Publish()

	snap := s.Acquire()
	defer snap.Release()
	if _, ok := snap.Get("k"); ok {
		t.Fatal("deleted key visible")
	}
	if keys := snap.Keys(); len(keys) != 0 {
		t.Fatalf("Keys = %v, want empty", keys)
	}
}

func TestSnapshotRepeatableReads(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		b := s.Begin()
		b.Put("k", []byte(fmt.Sprintf("v%d", i)))
		b.Publish()
	}
	snap := s.Acquire()
	defer snap.Release()
	first, _ := snap.Get("k")
	for i := 5; i < 10; i++ {
		b := s.Begin()
		b.Put("k", []byte(fmt.Sprintf("v%d", i)))
		b.Publish()
	}
	second, _ := snap.Get("k")
	if string(first) != string(second) {
		t.Fatalf("snapshot read changed: %q then %q", first, second)
	}
}

func TestAbort(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("k", []byte("v"))
	b.Abort()
	snap := s.Acquire()
	defer snap.Release()
	if _, ok := snap.Get("k"); ok {
		t.Fatal("aborted batch visible")
	}
}

func TestGCReclaimsSupersededVersions(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		b := s.Begin()
		b.Put("k", []byte(fmt.Sprintf("v%d", i)))
		b.Publish()
	}
	if got := s.VersionCount(); got != 10 {
		t.Fatalf("VersionCount = %d, want 10", got)
	}
	n := s.GC()
	if n != 9 {
		t.Fatalf("GC reclaimed %d, want 9", n)
	}
	snap := s.Acquire()
	defer snap.Release()
	v, ok := snap.Get("k")
	if !ok || string(v) != "v9" {
		t.Fatalf("after GC: %q ok=%v", v, ok)
	}
}

func TestGCRespectsPinnedSnapshots(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("k", []byte("old"))
	b.Publish()
	snapOld := s.Acquire()

	b2 := s.Begin()
	b2.Put("k", []byte("new"))
	b2.Publish()

	s.GC()
	v, ok := snapOld.Get("k")
	if !ok || string(v) != "old" {
		t.Fatalf("pinned snapshot lost its version: %q ok=%v", v, ok)
	}
	snapOld.Release()
	s.GC()
	if got := s.VersionCount(); got != 1 {
		t.Fatalf("VersionCount after release+GC = %d, want 1", got)
	}
}

func TestGCDropsTombstonedKeys(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("k", []byte("v"))
	b.Publish()
	b2 := s.Begin()
	b2.Delete("k")
	b2.Publish()
	s.GC()
	if got := s.VersionCount(); got != 0 {
		t.Fatalf("VersionCount = %d, want 0 (tombstone collected)", got)
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("zebra", []byte("1"))
	b.Put("apple", []byte("2"))
	b.Put("mango", []byte("3"))
	b.Publish()
	snap := s.Acquire()
	defer snap.Release()
	keys := snap.Keys()
	want := []string{"apple", "mango", "zebra"}
	if len(keys) != 3 {
		t.Fatalf("Keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

// TestConcurrentProducerConsumers is the E9 consistency check in miniature:
// one producer publishes batches where all values in batch i equal i; every
// consumer snapshot must read a consistent batch (all keys agree).
func TestConcurrentProducerConsumers(t *testing.T) {
	s := NewStore()
	const keys = 8
	const rounds = 200

	// Seed epoch 0 state.
	b := s.Begin()
	for k := 0; k < keys; k++ {
		b.Put(fmt.Sprintf("key%d", k), []byte("0"))
	}
	b.Publish()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Acquire()
				var first string
				consistent := true
				for k := 0; k < keys; k++ {
					v, ok := snap.Get(fmt.Sprintf("key%d", k))
					if !ok {
						consistent = false
						break
					}
					if k == 0 {
						first = string(v)
					} else if string(v) != first {
						consistent = false
						break
					}
				}
				snap.Release()
				if !consistent {
					select {
					case errCh <- fmt.Errorf("inconsistent snapshot observed"):
					default:
					}
					return
				}
			}
		}()
	}
	for r := 1; r <= rounds; r++ {
		b := s.Begin()
		val := []byte(fmt.Sprintf("%d", r))
		for k := 0; k < keys; k++ {
			b.Put(fmt.Sprintf("key%d", k), val)
		}
		b.Publish()
		if r%50 == 0 {
			s.GC()
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestOutOfOrderPublishWatermark is the regression test for the watermark
// contiguity hole: when a higher epoch publishes while a lower one is
// still unpublished, the watermark must NOT advance past the gap — the
// old implementation advanced it to the max epoch, so the late low-epoch
// publish inserted entries below an already-pinned snapshot epoch and
// mutated a live snapshot.
func TestOutOfOrderPublishWatermark(t *testing.T) {
	s := NewStore()
	b1 := s.Begin() // epoch 1, published last
	b2 := s.Begin() // epoch 2, published first
	b2.Put("k", []byte("v2"))
	if err := b2.Publish(); err != nil {
		t.Fatal(err)
	}
	if wm := s.Watermark(); wm != 0 {
		t.Fatalf("watermark %d advanced over unpublished epoch 1", wm)
	}

	// Snapshot acquired between the two out-of-order publishes.
	snap := s.Acquire()
	defer snap.Release()
	if _, ok := snap.Get("k"); ok {
		t.Fatal("snapshot below the gap observed epoch 2")
	}

	b1.Put("k", []byte("v1"))
	b1.Put("other", []byte("o"))
	if err := b1.Publish(); err != nil {
		t.Fatal(err)
	}
	if wm := s.Watermark(); wm != 2 {
		t.Fatalf("watermark %d after gap closed, want 2", wm)
	}
	// The pinned snapshot must stay immutable: the late publish must not
	// leak into it.
	if _, ok := snap.Get("k"); ok {
		t.Fatal("late low-epoch publish mutated a pinned snapshot")
	}
	if _, ok := snap.Get("other"); ok {
		t.Fatal("late low-epoch publish leaked a new key into a pinned snapshot")
	}
	if keys := snap.Keys(); len(keys) != 0 {
		t.Fatalf("pinned snapshot Keys = %v, want empty", keys)
	}
	// A fresh snapshot sees the newest value for k and the late key.
	snap2 := s.Acquire()
	defer snap2.Release()
	if v, ok := snap2.Get("k"); !ok || string(v) != "v2" {
		t.Fatalf("fresh snapshot Get(k) = %q ok=%v, want v2", v, ok)
	}
	if v, ok := snap2.Get("other"); !ok || string(v) != "o" {
		t.Fatalf("fresh snapshot Get(other) = %q ok=%v, want o", v, ok)
	}
}

// TestAbortUnblocksWatermark: an abandoned batch must not stall the
// watermark forever — Abort counts as completing its epoch.
func TestAbortUnblocksWatermark(t *testing.T) {
	s := NewStore()
	b1 := s.Begin()
	b2 := s.Begin()
	b2.Put("k", []byte("v2"))
	b2.Publish()
	if wm := s.Watermark(); wm != 0 {
		t.Fatalf("watermark %d, want 0 while epoch 1 open", wm)
	}
	b1.Abort()
	if wm := s.Watermark(); wm != 2 {
		t.Fatalf("watermark %d after abort closed the gap, want 2", wm)
	}
	snap := s.Acquire()
	defer snap.Release()
	if v, ok := snap.Get("k"); !ok || string(v) != "v2" {
		t.Fatalf("Get(k) = %q ok=%v after abort unblocked epoch 2", v, ok)
	}
}

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want %q", want)
		}
		if msg, ok := r.(string); !ok || msg != want {
			t.Fatalf("panic %v, want %q", r, want)
		}
	}()
	fn()
}

// TestBatchMisusePanics: staging into a finished batch used to be either
// a bare nil-map panic (after Abort) or a silent no-op whose writes never
// landed (after Publish). Both are now loud, consistent diagnostics.
func TestBatchMisusePanics(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("k", []byte("v"))
	if err := b.Publish(); err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "version: Put on already-published batch", func() { b.Put("k2", []byte("v2")) })    //memexvet:ignore epochbatch deliberately exercises the misuse diagnostic
	mustPanic(t, "version: Delete on already-published batch", func() { b.Delete("k") })            //memexvet:ignore epochbatch deliberately exercises the misuse diagnostic

	ab := s.Begin()
	ab.Abort()
	mustPanic(t, "version: Put on aborted batch", func() { ab.Put("k", []byte("v")) })              //memexvet:ignore epochbatch deliberately exercises the misuse diagnostic
	mustPanic(t, "version: Delete on aborted batch", func() { ab.Delete("k") })                     //memexvet:ignore epochbatch deliberately exercises the misuse diagnostic
	if err := ab.Publish(); err == nil {
		t.Fatal("Publish after Abort accepted")
	}

	// The silent-no-op hole: writes staged after Publish must never land.
	snap := s.Acquire()
	defer snap.Release()
	if _, ok := snap.Get("k2"); ok {
		t.Fatal("write staged after Publish landed")
	}
}

// TestAbortAfterPublishIsNoop supports the `defer b.Abort()` cleanup
// pattern: Abort on a published batch must not disturb it.
func TestAbortAfterPublishIsNoop(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("k", []byte("v"))
	if err := b.Publish(); err != nil {
		t.Fatal(err)
	}
	b.Abort()
	snap := s.Acquire()
	defer snap.Release()
	if _, ok := snap.Get("k"); !ok {
		t.Fatal("Abort after Publish dropped the published batch")
	}
}

// TestSnapshotUseAfterRelease: a released snapshot used to silently read
// whatever state GC had left; now it fails loudly.
func TestSnapshotUseAfterRelease(t *testing.T) {
	s := NewStore()
	b := s.Begin()
	b.Put("k", []byte("v"))
	b.Publish()
	snap := s.Acquire()
	epoch := snap.Epoch()
	snap.Release()
	snap.Release() // idempotent
	if snap.Epoch() != epoch {
		t.Fatal("Epoch changed after Release")
	}
	mustPanic(t, "version: Get on released snapshot", func() { snap.Get("k") })
	mustPanic(t, "version: Keys on released snapshot", func() { snap.Keys() })
}

// TestConcurrentOutOfOrderPublishersWithGC exercises the full producer
// surface under the race detector: several concurrently-publishing
// batches (which acquire epochs in order but publish out of order),
// consumers verifying per-batch atomicity, and GC running throughout.
func TestConcurrentOutOfOrderPublishersWithGC(t *testing.T) {
	s := NewStore()
	const keys = 4
	const rounds = 100
	seed := s.Begin()
	for k := 0; k < keys; k++ {
		seed.Put(fmt.Sprintf("key%d", k), []byte("seed"))
	}
	seed.Publish()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 8)
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Acquire()
				var first string
				for k := 0; k < keys; k++ {
					v, ok := snap.Get(fmt.Sprintf("key%d", k))
					if !ok {
						select {
						case errCh <- fmt.Errorf("missing key%d at epoch %d", k, snap.Epoch()):
						default:
						}
						break
					}
					if k == 0 {
						first = string(v)
					} else if string(v) != first {
						select {
						case errCh <- fmt.Errorf("torn snapshot at epoch %d: %q vs %q", snap.Epoch(), first, v):
						default:
						}
						break
					}
				}
				snap.Release()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s.GC()
		}
	}()
	// Publish pairs out of order: the higher epoch goes first.
	for r := 0; r < rounds; r++ {
		lo := s.Begin()
		hi := s.Begin()
		val := []byte(fmt.Sprintf("r%d-hi", r))
		for k := 0; k < keys; k++ {
			hi.Put(fmt.Sprintf("key%d", k), val)
		}
		loVal := []byte(fmt.Sprintf("r%d-lo", r))
		for k := 0; k < keys; k++ {
			lo.Put(fmt.Sprintf("key%d", k), loVal)
		}
		if err := hi.Publish(); err != nil {
			t.Fatal(err)
		}
		if err := lo.Publish(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	// After all gaps close, the watermark covers every epoch and a fresh
	// snapshot sees the final hi value (the higher epoch of the last pair).
	if wm := s.Watermark(); wm != uint64(1+2*rounds) {
		t.Fatalf("watermark %d, want %d", wm, 1+2*rounds)
	}
	snap := s.Acquire()
	defer snap.Release()
	want := fmt.Sprintf("r%d-hi", rounds-1)
	if v, ok := snap.Get("key0"); !ok || string(v) != want {
		t.Fatalf("final Get = %q ok=%v, want %q", v, ok, want)
	}
}

// TestPublishAutoCompacts: a store whose owner never calls GC must still
// bound its chain depth (and therefore read cost) via the Publish-side
// compaction backstop.
func TestPublishAutoCompacts(t *testing.T) {
	s := NewStore()
	n := autoCompactDepth + 10
	for i := 0; i < n; i++ {
		b := s.Begin()
		b.Put("k", []byte{byte(i)})
		b.Publish()
	}
	if st := s.StoreStats(); st.Layers > autoCompactDepth {
		t.Fatalf("chain depth %d not bounded by auto-compaction", st.Layers)
	}
	snap := s.Acquire()
	defer snap.Release()
	if v, ok := snap.Get("k"); !ok || v[0] != byte(n-1) {
		t.Fatalf("Get after auto-compact = %v ok=%v, want [%d]", v, ok, byte(n-1))
	}
}

// TestStoreStats sanity-checks the introspection surface.
func TestStoreStats(t *testing.T) {
	s := NewStore()
	for i := 0; i < 3; i++ {
		b := s.Begin()
		b.Put("k", []byte{byte(i)})
		b.Publish()
	}
	snap := s.Acquire()
	st := s.StoreStats()
	if st.Watermark != 3 || st.Layers != 3 || st.Entries != 3 || st.Pinned != 1 {
		t.Fatalf("StoreStats = %+v", st)
	}
	snap.Release()
	s.GC()
	st = s.StoreStats()
	if st.Layers != 1 || st.Entries != 1 || st.Pinned != 0 || st.GCReclaimed != 2 {
		t.Fatalf("StoreStats after GC = %+v", st)
	}
	if st.PendingEpochs != 0 {
		t.Fatalf("PendingEpochs = %d, want 0", st.PendingEpochs)
	}
}

func BenchmarkPublish(b *testing.B) {
	s := NewStore()
	for i := 0; i < b.N; i++ {
		batch := s.Begin()
		batch.Put("k1", []byte("v"))
		batch.Put("k2", []byte("v"))
		batch.Publish()
		if i%1024 == 0 {
			s.GC()
		}
	}
}

func BenchmarkSnapshotGet(b *testing.B) {
	s := NewStore()
	batch := s.Begin()
	for i := 0; i < 1000; i++ {
		batch.Put(fmt.Sprintf("key%d", i), []byte("v"))
	}
	batch.Publish()
	snap := s.Acquire()
	defer snap.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.Get(fmt.Sprintf("key%d", i%1000))
	}
}

// --- sharding ---

// TestShardedRounding: shard counts round up to a power of two; zero and
// negative mean the default.
func TestShardedRounding(t *testing.T) {
	cases := map[int]int{-1: DefaultShards, 0: DefaultShards, 1: 1, 2: 2, 3: 4, 8: 8, 9: 16}
	for n, want := range cases {
		if got := NewStoreSharded(n).Shards(); got != want {
			t.Fatalf("NewStoreSharded(%d).Shards() = %d, want %d", n, got, want)
		}
	}
	if got := NewStore().Shards(); got != DefaultShards {
		t.Fatalf("NewStore().Shards() = %d, want %d", got, DefaultShards)
	}
}

// TestShardSpread: a wide batch lands in more than one shard, and the
// per-shard stats account for every entry exactly once.
func TestShardSpread(t *testing.T) {
	s := NewStoreSharded(8)
	b := s.Begin()
	for i := 0; i < 256; i++ {
		b.Put(fmt.Sprintf("key%04d", i), []byte("v"))
	}
	if b.Len() != 256 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Publish()
	st := s.StoreStats()
	if len(st.Shards) != 8 {
		t.Fatalf("Shards len = %d", len(st.Shards))
	}
	nonEmpty, sum := 0, 0
	for _, sh := range st.Shards {
		if sh.Entries > 0 {
			nonEmpty++
		}
		sum += sh.Entries
	}
	if nonEmpty < 2 {
		t.Fatalf("256 keys landed in %d shard(s); hash routing broken", nonEmpty)
	}
	if sum != st.Entries || st.Entries != 256 {
		t.Fatalf("per-shard entries sum %d, Entries %d, want 256", sum, st.Entries)
	}
}

// TestCrossShardPublishAtomicity: one batch spanning every shard becomes
// visible all-or-nothing — a snapshot acquired at any time sees either
// none or all of the batch's keys, never a shard subset.
func TestCrossShardPublishAtomicity(t *testing.T) {
	s := NewStoreSharded(8)
	const keys = 64
	names := make([]string, keys)
	seed := s.Begin()
	for i := range names {
		names[i] = fmt.Sprintf("key%04d", i)
		seed.Put(names[i], []byte("0"))
	}
	seed.Publish()

	stop := make(chan struct{})
	errCh := make(chan error, 4)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Acquire()
				var first string
				for i, k := range names {
					v, ok := snap.Get(k)
					if !ok {
						select {
						case errCh <- fmt.Errorf("missing %s at epoch %d", k, snap.Epoch()):
						default:
						}
						break
					}
					if i == 0 {
						first = string(v)
					} else if string(v) != first {
						select {
						case errCh <- fmt.Errorf("shard-torn snapshot at epoch %d: %q vs %q", snap.Epoch(), first, v):
						default:
						}
						break
					}
				}
				snap.Release()
			}
		}()
	}
	for r := 1; r <= 300; r++ {
		b := s.BeginSized(keys)
		val := []byte(fmt.Sprint(r))
		for _, k := range names {
			b.Put(k, val)
		}
		b.Publish()
		if r%64 == 0 {
			s.GC()
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestGCShardIsolated: compacting one shard reclaims only that shard's
// superseded versions and leaves every other chain untouched.
func TestGCShardIsolated(t *testing.T) {
	s := NewStoreSharded(4)
	const rounds = 6
	names := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	for r := 0; r < rounds; r++ {
		b := s.Begin()
		for _, k := range names {
			b.Put(k, []byte(fmt.Sprint(r)))
		}
		b.Publish()
	}
	before := s.StoreStats()
	target := -1
	for i, sh := range before.Shards {
		if sh.Entries > 0 {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("no shard holds data")
	}
	reclaimed := s.GCShard(target)
	if reclaimed == 0 {
		t.Fatalf("GCShard(%d) reclaimed nothing", target)
	}
	after := s.StoreStats()
	for i := range after.Shards {
		if i == target {
			if after.Shards[i].Layers >= before.Shards[i].Layers {
				t.Fatalf("shard %d not compacted: %d -> %d layers", i, before.Shards[i].Layers, after.Shards[i].Layers)
			}
			continue
		}
		if after.Shards[i] != before.Shards[i] {
			t.Fatalf("shard %d changed by GCShard(%d): %+v -> %+v", i, target, before.Shards[i], after.Shards[i])
		}
	}
	// Data is still all readable at the newest values.
	snap := s.Acquire()
	defer snap.Release()
	for _, k := range names {
		if v, ok := snap.Get(k); !ok || string(v) != fmt.Sprint(rounds-1) {
			t.Fatalf("Get(%s) = %q ok=%v after shard GC", k, v, ok)
		}
	}
}

// TestParallelShardGCUnderPublish drives concurrent per-shard compactions
// against a live producer and live readers (run with -race): the merge
// work happens outside the store mutex, so this exercises the optimistic
// splice including its abandon-on-conflict path via the Publish backstop.
func TestParallelShardGCUnderPublish(t *testing.T) {
	s := NewStoreSharded(8)
	const keys = 64
	names := make([]string, keys)
	seed := s.Begin()
	for i := range names {
		names[i] = fmt.Sprintf("key%04d", i)
		seed.Put(names[i], []byte("0"))
	}
	seed.Publish()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < s.Shards(); g++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.GCShard(shard)
			}
		}(g)
	}
	errCh := make(chan error, 2)
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Acquire()
				var first string
				for i, k := range names {
					v, ok := snap.Get(k)
					if !ok {
						select {
						case errCh <- fmt.Errorf("missing %s", k):
						default:
						}
						break
					}
					if i == 0 {
						first = string(v)
					} else if string(v) != first {
						select {
						case errCh <- fmt.Errorf("torn read under parallel GC: %q vs %q", first, v):
						default:
						}
						break
					}
				}
				snap.Release()
			}
		}()
	}
	for r := 1; r <= 400; r++ {
		b := s.BeginSized(keys)
		val := []byte(fmt.Sprint(r))
		for _, k := range names {
			b.Put(k, val)
		}
		b.Publish()
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	// Once quiescent, a full GC leaves at most one layer per shard and the
	// newest values visible.
	s.GC()
	st := s.StoreStats()
	if st.Layers > 2 {
		t.Fatalf("max shard depth %d after quiescent GC", st.Layers)
	}
	snap := s.Acquire()
	defer snap.Release()
	if v, ok := snap.Get(names[0]); !ok || string(v) != "400" {
		t.Fatalf("final Get = %q ok=%v", v, ok)
	}
}

// TestSingleShardStore: NewStoreSharded(1) reproduces the unsharded
// layout — all keys in one chain, stats matching the classic shape.
func TestSingleShardStore(t *testing.T) {
	s := NewStoreSharded(1)
	for i := 0; i < 5; i++ {
		b := s.Begin()
		b.Put("a", []byte{byte(i)})
		b.Put("b", []byte{byte(i)})
		b.Publish()
	}
	st := s.StoreStats()
	if len(st.Shards) != 1 || st.Layers != 5 || st.Entries != 10 {
		t.Fatalf("single-shard stats = %+v", st)
	}
	if n := s.GC(); n != 8 {
		t.Fatalf("GC reclaimed %d, want 8", n)
	}
	snap := s.Acquire()
	defer snap.Release()
	if v, ok := snap.Get("b"); !ok || v[0] != 4 {
		t.Fatalf("Get(b) = %v ok=%v", v, ok)
	}
}
