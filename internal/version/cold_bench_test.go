package version

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"

	"memex/internal/kvstore"
)

// openBenchCold builds a disk-backed store in a fresh temp dir.
func openBenchCold(b *testing.B, o Options) (*kvstore.Store, *Store) {
	b.Helper()
	kv, err := kvstore.Open(filepath.Join(b.TempDir(), "kv"), kvstore.Options{Sync: kvstore.SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	s, err := Open(kv, "vc/", o)
	if err != nil {
		b.Fatal(err)
	}
	return kv, s
}

// BenchmarkFoldBoundedMemory is the ISSUE 3 acceptance benchmark: ingest
// 10× the fold threshold with periodic GC and report the heap high-water
// and the in-memory entry high-water. With the cold tier the heap curve
// stays flat at roughly the threshold's working set no matter how much is
// ingested; TestFoldBoundsMemory asserts the deterministic half (entry
// count bounded, zero lost epochs across restart).
func BenchmarkFoldBoundedMemory(b *testing.B) {
	const threshold = 4096
	val := make([]byte, 256)
	for i := range val {
		val[i] = byte(i)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		kv, s := openBenchCold(b, Options{Shards: 8, FoldMinEntries: threshold})
		runtime.GC()
		var base runtime.MemStats
		runtime.ReadMemStats(&base)
		b.StartTimer()

		total := 10 * threshold
		heapHigh, memHigh := uint64(0), 0
		for j := 0; j < total; j++ {
			bt := s.BeginSized(1)
			bt.Put(fmt.Sprintf("page-%07d", j), val)
			if err := bt.Publish(); err != nil {
				b.Fatal(err)
			}
			if j%threshold == threshold-1 {
				if n := s.VersionCount(); n > memHigh {
					memHigh = n
				}
				s.GC()
				runtime.GC()
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > heapHigh {
					heapHigh = ms.HeapAlloc
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(heapHigh-base.HeapAlloc)/(1<<20), "heapMB-high")
		b.ReportMetric(float64(memHigh), "hot-entries-high")
		b.ReportMetric(float64(s.ColdRecords()), "cold-records")
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		kv.Close()
		b.StartTimer()
	}
}

// BenchmarkSnapshotGetHotDuringFold guards the hot read path against the
// cold tier's bulk writes: in-memory chain hits never touch the kvstore,
// so their ~20ns latency must hold while folds run in the background.
func BenchmarkSnapshotGetHotDuringFold(b *testing.B) {
	kv, s := openBenchCold(b, Options{Shards: 8, FoldMinEntries: 1})
	defer kv.Close()
	// A cold base (folded) plus a hot working set that keeps re-folding.
	for i := 0; i < 4096; i++ {
		bt := s.BeginSized(1)
		bt.Put(fmt.Sprintf("cold-%05d", i), []byte("x"))
		bt.Publish()
	}
	if _, err := s.Fold(); err != nil {
		b.Fatal(err)
	}
	hot := make([]string, 512)
	for i := range hot {
		hot[i] = fmt.Sprintf("hot-%04d", i)
		bt := s.BeginSized(1)
		bt.Put(hot[i], []byte("y"))
		bt.Publish()
	}

	stop := make(chan struct{})
	foldDone := make(chan struct{})
	var folds atomic.Int64
	go func() {
		defer close(foldDone)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Keep churning: republish the hot set and fold it down.
			bt := s.BeginSized(len(hot))
			for _, k := range hot {
				bt.Put(k, []byte("y"))
			}
			bt.Publish()
			if _, err := s.Fold(); err == nil {
				folds.Add(1)
			}
			i++
		}
	}()

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			sn := s.Acquire()
			if _, ok := sn.Get(hot[i%len(hot)]); !ok {
				b.Fatal("hot key missing")
			}
			sn.Release()
			i++
		}
	})
	b.StopTimer()
	close(stop)
	<-foldDone
	b.ReportMetric(float64(folds.Load()), "folds")
}

// BenchmarkSnapshotGetColdMiss prices the fallthrough itself: a chain
// miss that resolves from the cold tier (one short B+tree prefix scan).
func BenchmarkSnapshotGetColdMiss(b *testing.B) {
	kv, s := openBenchCold(b, Options{Shards: 8})
	defer kv.Close()
	const n = 8192
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("cold-%05d", i)
		bt := s.BeginSized(1)
		bt.Put(keys[i], []byte("value-bytes-here"))
		bt.Publish()
	}
	if _, err := s.Fold(); err != nil {
		b.Fatal(err)
	}
	sn := s.Acquire()
	defer sn.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := sn.Get(keys[i%n]); !ok {
			b.Fatal("cold key missing")
		}
	}
}
