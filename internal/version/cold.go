package version

// This file is the store's persistent cold tier: the disk half of the
// fresh → mid → cold tiering described in the package doc. GC folds every
// layer at or below the pin floor into the owning kvstore B+tree (one
// keyspace per shard) and splices the folded layers out of the in-memory
// chains, so RAM holds only the data published since the last fold while
// the archive's full history lives on disk. Snapshot.Get falls through a
// missed in-memory chain walk to a read-only kvstore handle.
//
// # On-disk layout
//
// Everything lives under the prefix the owner passed to Open (so the
// cold tier coexists with other keyspaces — the engine's RDBMS tables,
// the text index — in one kvstore):
//
//	<prefix>r/<shard:2B><esc(key)>\x00\x00<^epoch:8B><part:2B> → flags ‖ [nparts] ‖ payload
//	<prefix>m/wm                                              → watermark (8B BE)
//	<prefix>m/shards                                          → shard count (4B BE)
//	<prefix>m/gen                                             → fold generation (8B BE), written before a round's records
//	<prefix>m/done                                            → closed generation (8B BE) ‖ per-shard record counts (uvarints), written after a round completes
//
// Keys escape 0x00 as 0x00 0xff and terminate with 0x00 0x00, so a
// prefix scan of one key's "version run" can never bleed into a
// neighbouring key. ^epoch (bit-complemented, big-endian) makes a run
// sort newest-first: a reader takes the first version at or below its
// snapshot epoch and stops. Records larger than one tree entry
// (kvstore.MaxKV) are split into parts; part 0 carries the part count.
//
// # Crash contract
//
// A fold writes all of a round's records (chunked, so concurrent readers
// interleave), then persists the watermark, then splices memory, then
// deletes superseded versions. The kvstore WAL replays in write order, so
// a durable watermark implies every record at or below it is durable too.
// Open purges any record above the persisted watermark — a torn fold
// leaves a prefix of its records on disk, invisible and reclaimed — and
// resumes epoch allocation at watermark+1, so a recovered epoch number is
// never reused. Superseded-version cleanup runs only after the watermark
// covering the superseding version is durable, and deletes a tombstone
// only after everything it shadows, so a torn cleanup can never resurrect
// an old value.
//
// The purge scan is bounded by per-fold generation records: a round
// writes m/gen before its first record and m/done (with authoritative
// per-shard record counts) as its last step, so a reopen that finds the
// two in agreement knows no round was torn, trusts the counts, and skips
// the O(cold tier) scan entirely. Only an archive whose last round died
// mid-flight — or one predating the meta — pays the full scan-and-purge.

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"memex/internal/kvstore"
)

// MaxColdKeyLen caps key length for stores with a cold tier: the escaped
// key plus framing must leave room in one kvstore entry for a useful
// payload part. Batch.Put panics beyond it (loudly, like other Batch
// misuse) so an oversized key surfaces at publish time, not as a fold
// error every GC tick forever after.
const MaxColdKeyLen = 256

const (
	coldFlagTomb = 1 << 0 // record is a tombstone (no payload)

	// defaultFoldMin is the foldable-entry count below which a periodic
	// GC leaves data in memory (tiny folds would churn the WAL for no
	// memory win). Fold and Close always fold everything.
	defaultFoldMin = 4096
)

// coldTier is the store's handle on its disk keyspace.
type coldTier struct {
	kv     *kvstore.Store    // write side: folds, watermark, cleanup
	rd     *kvstore.ReadView // read side: snapshot fallthrough
	prefix []byte

	// wm is the durable fold watermark: every record at or below it is on
	// disk; nothing above it is visible after recovery.
	wm atomic.Uint64

	// records counts live part-0 records per shard (logical versions on
	// disk, superseded versions included until cleanup catches up).
	records []atomic.Int64

	// gen is the fold-round generation: m/gen is persisted before a
	// round's record writes and m/done (same gen + per-shard counts) after
	// the round fully completes, so Open can tell a cleanly-finished
	// archive (gen == done: trust the counts, skip the purge scan) from a
	// torn one (scan and purge as before). Guarded by foldMu on the write
	// side; atomic so stats can read it.
	gen atomic.Uint64

	readErrs   atomic.Uint64 // cold reads that failed at the kvstore layer
	reads      atomic.Uint64 // cold fallthrough gets (chain misses that hit disk)
	readMisses atomic.Uint64 // fallthrough gets that found nothing
	folds      atomic.Uint64 // completed fold rounds
	foldedN    atomic.Uint64 // in-memory entries folded to disk, cumulative

	// recoveryScanned is the number of record keys Open's purge scan
	// examined (0 after a clean open, which skips the scan entirely).
	recoveryScanned int64
	cleanOpen       bool

	// reprobe marks shards whose last fold's splice was abandoned: their
	// layers stayed in memory, so the next fold re-writes the same
	// (key, epoch) records — overwrites, not new disk records — and must
	// probe before counting, or Records would drift upward. Fold-only
	// state, guarded by foldMu.
	reprobe []bool
}

// FoldPoint names a crash-injection point inside a fold, in execution
// order. Tests install a hook with SetFoldHook to simulate a process
// killed mid-fold; returning an error aborts the fold exactly there.
type FoldPoint int

const (
	// FoldAfterWrite fires after the round's records are written to the
	// kvstore but before the watermark is persisted (and before the
	// in-memory splice): a crash here must leave every new record
	// invisible after recovery.
	FoldAfterWrite FoldPoint = iota + 1
	// FoldAfterWatermark fires after the watermark is durable but before
	// the in-memory splice and superseded-version cleanup: a crash here
	// must leave every folded record readable after recovery.
	FoldAfterWatermark
)

// SetFoldHook installs a failpoint for crash/recovery tests. A nil hook
// removes it.
func (s *Store) SetFoldHook(h func(FoldPoint) error) {
	s.foldMu.Lock()
	s.foldHook = h
	s.foldMu.Unlock()
}

func (s *Store) foldPoint(p FoldPoint) error {
	if s.foldHook != nil {
		return s.foldHook(p)
	}
	return nil
}

// Options configures a store opened over a kvstore cold tier.
type Options struct {
	// Shards is the shard count for a fresh keyspace (rounded up to a
	// power of two; <= 0 means DefaultShards). A keyspace that has folded
	// before remembers its count — key→shard routing must match the keys
	// already on disk — and overrides this value.
	Shards int
	// FoldMinEntries is the foldable-entry count below which periodic GC
	// keeps data in memory (default 4096). Fold and Close ignore it.
	FoldMinEntries int
	// FoldChunk is the number of kvstore records per bulk-write chunk
	// during a fold (default kvstore.DefaultWriteChunk). Smaller chunks
	// bound how long concurrent kvstore readers wait on the write lock.
	FoldChunk int
}

// Open builds a store whose cold tier lives under prefix in kv, and
// recovers it: the watermark and shard count are read back, every record
// above the watermark (a torn fold's leftovers) is purged, and the store
// resumes publishing at watermark+1. The caller keeps ownership of kv and
// must close it after the store (Close folds through it).
func Open(kv *kvstore.Store, prefix string, o Options) (*Store, error) {
	c := &coldTier{kv: kv, rd: kv.ReadView(), prefix: []byte(prefix)}

	shards := o.Shards
	if raw, ok, err := kv.Get(c.metaKey("shards")); err != nil {
		return nil, fmt.Errorf("version: read shard meta: %w", err)
	} else if ok && len(raw) == 4 {
		shards = int(binary.BigEndian.Uint32(raw))
	}
	s := NewStoreSharded(shards)
	wm := uint64(0)
	if raw, ok, err := kv.Get(c.metaKey("wm")); err != nil {
		return nil, fmt.Errorf("version: read watermark meta: %w", err)
	} else if ok && len(raw) == 8 {
		wm = binary.BigEndian.Uint64(raw)
	}
	c.wm.Store(wm)
	c.records = make([]atomic.Int64, s.Shards())
	c.reprobe = make([]bool, s.Shards())

	// Fast path: a cleanly-finished archive carries matching m/gen and
	// m/done generation records (the fold writes gen before a round's
	// records and done — with per-shard record counts — only after the
	// round fully completed). When they match, no fold round was in
	// flight at shutdown, so no record above the watermark can exist and
	// the persisted counts are authoritative: reopen is O(meta), not
	// O(cold tier).
	gen, hasGen, err := c.readGenMeta(kv, "gen")
	if err != nil {
		return nil, err
	}
	done, counts, hasDone, err := c.readDoneMeta(kv)
	if err != nil {
		return nil, err
	}
	if gen > done {
		c.gen.Store(gen)
	} else {
		c.gen.Store(done)
	}
	if hasGen && hasDone && gen == done && len(counts) == s.Shards() {
		for i, cnt := range counts {
			c.records[i].Store(cnt)
		}
		c.cleanOpen = true
	} else {
		// Torn fold round or pre-generation-meta archive: purge
		// above-watermark leftovers and count what survives. A record
		// above the watermark can only come from a fold that died before
		// its watermark write; serving it would leak an epoch the
		// contract says was lost, and colliding with a reissued epoch
		// number would be worse.
		var stale [][]byte
		err := kv.ScanPrefix(c.recPrefix(), func(k, v []byte) bool {
			c.recoveryScanned++
			shard, _, epoch, part, ok := c.parseRecordKey(k)
			if !ok {
				return true // foreign or corrupt key: leave it alone
			}
			if epoch > wm {
				stale = append(stale, append([]byte(nil), k...))
				return true
			}
			if part == 0 && int(shard) < len(c.records) {
				c.records[shard].Add(1)
			}
			return true
		})
		if err != nil {
			return nil, fmt.Errorf("version: recover cold tier: %w", err)
		}
		if len(stale) > 0 {
			if err := kv.DeleteBatchChunked(stale, o.FoldChunk); err != nil {
				return nil, fmt.Errorf("version: purge torn fold: %w", err)
			}
		}
	}

	s.cold = c
	s.foldMin = o.FoldMinEntries
	if s.foldMin <= 0 {
		s.foldMin = defaultFoldMin
	}
	s.foldChunk = o.FoldChunk

	// Resume: new snapshots pin the recovered watermark, and epoch
	// allocation restarts above it so no recovered record's epoch is ever
	// reissued to a new batch.
	s.mu.Lock()
	st := &state{watermark: wm, shards: make([]shard, s.Shards())}
	s.current.Store(st)
	s.history = []*state{st}
	s.nextEpoch = wm + 1
	s.mu.Unlock()
	return s, nil
}

// Close folds everything at or below the pin floor to the cold tier so a
// graceful shutdown loses nothing (a crash loses only what was published
// after the last fold). The kvstore stays open — the owner closes it.
// No-op for purely in-memory stores.
func (s *Store) Close() error {
	if s.cold == nil {
		return nil
	}
	_, err := s.Fold()
	return err
}

// --- key codec ---

func (c *coldTier) metaKey(name string) []byte {
	k := make([]byte, 0, len(c.prefix)+2+len(name))
	k = append(k, c.prefix...)
	k = append(k, "m/"...)
	return append(k, name...)
}

// readGenMeta reads an 8-byte big-endian generation meta record.
func (c *coldTier) readGenMeta(kv *kvstore.Store, name string) (uint64, bool, error) {
	raw, ok, err := kv.Get(c.metaKey(name))
	if err != nil {
		return 0, false, fmt.Errorf("version: read %s meta: %w", name, err)
	}
	if !ok || len(raw) != 8 {
		return 0, false, nil
	}
	return binary.BigEndian.Uint64(raw), true, nil
}

// readDoneMeta reads the fold-completion record: generation (8B BE)
// followed by one uvarint live-record count per shard. A malformed record
// reads as absent, degrading the reopen to the full purge scan.
func (c *coldTier) readDoneMeta(kv *kvstore.Store) (gen uint64, counts []int64, ok bool, err error) {
	raw, found, err := kv.Get(c.metaKey("done"))
	if err != nil {
		return 0, nil, false, fmt.Errorf("version: read done meta: %w", err)
	}
	if !found || len(raw) < 8 {
		return 0, nil, false, nil
	}
	gen = binary.BigEndian.Uint64(raw)
	rest := raw[8:]
	for len(rest) > 0 {
		n, w := binary.Uvarint(rest)
		if w <= 0 {
			return 0, nil, false, nil
		}
		counts = append(counts, int64(n))
		rest = rest[w:]
	}
	return gen, counts, true, nil
}

// encodeDoneMeta builds the m/done payload from the live record counts.
func (c *coldTier) encodeDoneMeta(gen uint64) []byte {
	buf := make([]byte, 8, 8+len(c.records)*binary.MaxVarintLen64)
	binary.BigEndian.PutUint64(buf, gen)
	for i := range c.records {
		n := c.records[i].Load()
		if n < 0 {
			n = 0
		}
		buf = binary.AppendUvarint(buf, uint64(n))
	}
	return buf
}

// recPrefix is the prefix of every record key.
func (c *coldTier) recPrefix() []byte {
	k := make([]byte, 0, len(c.prefix)+2)
	k = append(k, c.prefix...)
	return append(k, "r/"...)
}

// shardPrefix is the prefix of one shard's keyspace.
func (c *coldTier) shardPrefix(shard uint32) []byte {
	k := c.recPrefix()
	return binary.BigEndian.AppendUint16(k, uint16(shard))
}

// runPrefix is the prefix of one key's version run inside its shard.
func (c *coldTier) runPrefix(shard uint32, key string) []byte {
	k := c.shardPrefix(shard)
	k = appendEscaped(k, key)
	return append(k, 0x00, 0x00)
}

// recordKey is one part's full key.
func (c *coldTier) recordKey(shard uint32, key string, epoch uint64, part uint16) []byte {
	k := c.runPrefix(shard, key)
	k = binary.BigEndian.AppendUint64(k, ^epoch)
	return binary.BigEndian.AppendUint16(k, part)
}

// appendEscaped appends key with 0x00 escaped as 0x00 0xff, so the
// 0x00 0x00 run terminator can never occur inside an escaped key.
func appendEscaped(dst []byte, key string) []byte {
	for i := 0; i < len(key); i++ {
		if key[i] == 0x00 {
			dst = append(dst, 0x00, 0xff)
		} else {
			dst = append(dst, key[i])
		}
	}
	return dst
}

// parseRecordKey decodes a full record key back into its parts.
func (c *coldTier) parseRecordKey(k []byte) (shard uint32, key string, epoch uint64, part uint16, ok bool) {
	rest := k[len(c.recPrefix()):]
	if len(rest) < 2+2+8+2 {
		return 0, "", 0, 0, false
	}
	shard = uint32(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	// Find the 0x00 0x00 terminator; 0x00 inside the key is always
	// followed by 0xff.
	term := -1
	for i := 0; i+1 < len(rest); i++ {
		if rest[i] == 0x00 {
			if rest[i+1] == 0x00 {
				term = i
				break
			}
			i++ // skip the 0xff escape byte
		}
	}
	if term < 0 || len(rest)-(term+2) != 8+2 {
		return 0, "", 0, 0, false
	}
	raw := rest[:term]
	buf := make([]byte, 0, len(raw))
	for i := 0; i < len(raw); i++ {
		if raw[i] == 0x00 {
			buf = append(buf, 0x00)
			i++ // consume the 0xff
		} else {
			buf = append(buf, raw[i])
		}
	}
	epoch = ^binary.BigEndian.Uint64(rest[term+2:])
	part = binary.BigEndian.Uint16(rest[term+2+8:])
	return shard, string(buf), epoch, part, true
}

// partPayload returns how many payload bytes fit in one part of this
// key's records (the kvstore caps key+value per entry).
func (c *coldTier) partPayload(key string) int {
	// Worst-case escaped key doubles; framing = prefix + shard + term +
	// ^epoch + part; value head = flags + max uvarint part count.
	overhead := len(c.prefix) + 2 + 2 + 2*len(key) + 2 + 8 + 2 + 1 + binary.MaxVarintLen32
	return kvstore.MaxKV - overhead
}

// appendRecord encodes one logical record (possibly multi-part) onto dst.
func (c *coldTier) appendRecord(dst []kvstore.KV, shard uint32, key string, epoch uint64, e entry) ([]kvstore.KV, error) {
	if e.deleted {
		return append(dst, kvstore.KV{
			Key:   c.recordKey(shard, key, epoch, 0),
			Value: []byte{coldFlagTomb, 1},
		}), nil
	}
	per := c.partPayload(key)
	if per <= 0 {
		return dst, fmt.Errorf("version: key %q too long for cold tier", key)
	}
	nparts := (len(e.value) + per - 1) / per
	if nparts == 0 {
		nparts = 1
	}
	if nparts > 1<<16-1 {
		return dst, fmt.Errorf("version: value for %q too large for cold tier (%d bytes)", key, len(e.value))
	}
	head := make([]byte, 0, 1+binary.MaxVarintLen32)
	head = append(head, 0)
	head = binary.AppendUvarint(head, uint64(nparts))
	for p := 0; p < nparts; p++ {
		lo, hi := p*per, (p+1)*per
		if hi > len(e.value) {
			hi = len(e.value)
		}
		var val []byte
		if p == 0 {
			val = append(append([]byte(nil), head...), e.value[lo:hi]...)
		} else {
			val = append([]byte(nil), e.value[lo:hi]...)
		}
		dst = append(dst, kvstore.KV{Key: c.recordKey(shard, key, epoch, uint16(p)), Value: val})
	}
	return dst, nil
}

// --- read path ---

// get returns the newest cold value for key with epoch <= max. It runs on
// the snapshot read path: one short prefix scan of the key's version run,
// through the read-only kvstore handle. kvstore-level failures count as a
// miss (and are surfaced in Stats.Cold.ReadErrors) — the versioning layer
// has no error channel on Get, and a miss degrades to a refetch upstream.
func (c *coldTier) get(shard uint32, key string, max uint64) ([]byte, bool) {
	c.reads.Add(1)
	var (
		val      []byte
		found    bool
		done     bool
		tomb     bool
		want     uint64
		need     int
		lastPart = -1
	)
	err := c.rd.ScanPrefix(c.runPrefix(shard, key), func(k, v []byte) bool {
		_, _, epoch, part, ok := c.parseRecordKey(k)
		if !ok {
			return true
		}
		if found && (epoch != want || int(part) != lastPart+1) {
			// Torn multi-part record (cannot happen for a version at or
			// below the durable watermark — see the crash contract — but
			// degrade to the next older version rather than a false miss).
			val, found = nil, false
		}
		if !found {
			if epoch > max || part != 0 || len(v) < 1 {
				return true // above the snapshot, or a torn run's stray part
			}
			if v[0]&coldFlagTomb != 0 {
				tomb, done = true, true
				return false
			}
			n, w := binary.Uvarint(v[1:])
			if w <= 0 {
				return true
			}
			found, want, need, lastPart = true, epoch, int(n), 0
			val = append(val, v[1+w:]...)
			done = need == 1
			return !done
		}
		// Collect this version's remaining parts (adjacent in the run).
		lastPart = int(part)
		val = append(val, v...)
		done = lastPart+1 == need
		return !done
	})
	if err != nil {
		c.readErrs.Add(1)
		c.readMisses.Add(1)
		return nil, false
	}
	if tomb || !found || !done {
		c.readMisses.Add(1)
		return nil, false
	}
	return val, true
}

// scanShard walks one shard's keyspace yielding each key's newest live
// record at or below max (tombstoned and above-max versions are skipped,
// multi-part values reassembled). fn returning false stops the scan.
func (c *coldTier) scanShard(shard uint32, max uint64, fn func(key string, value []byte) bool) error {
	var (
		curKey   string
		started  bool
		done     bool // emitted (or tombstoned) the current key already
		val      []byte
		have     bool
		need     int
		want     uint64
		lastPart int
	)
	emit := func() bool {
		if !have || lastPart+1 != need {
			have = false
			return true
		}
		have = false
		return fn(curKey, val)
	}
	err := c.rd.ScanPrefix(c.shardPrefix(shard), func(k, v []byte) bool {
		_, key, epoch, part, ok := c.parseRecordKey(k)
		if !ok {
			return true
		}
		if !started || key != curKey {
			if started && have {
				if !emit() {
					return false
				}
			}
			curKey, started, done, have = key, true, false, false
		}
		if done {
			return true
		}
		if have && (epoch != want || int(part) != lastPart+1) {
			have = false // torn record: fall through to older versions
		}
		if !have {
			if epoch > max || part != 0 || len(v) < 1 {
				return true
			}
			if v[0]&coldFlagTomb != 0 {
				done = true
				return true
			}
			n, w := binary.Uvarint(v[1:])
			if w <= 0 {
				return true
			}
			have, want, need, lastPart = true, epoch, int(n), 0
			val = append([]byte(nil), v[1+w:]...)
			if need == 1 {
				done = true
				return emit()
			}
			return true
		}
		lastPart = int(part)
		val = append(val, v...)
		if lastPart+1 == need {
			done = true
			return emit()
		}
		return true
	})
	if err != nil {
		c.readErrs.Add(1)
		return err
	}
	if started && have {
		emit()
	}
	return nil
}

// --- fold ---

// Fold folds every shard's layers at or below the pin floor into the cold
// tier and splices them out of the in-memory chains, returning the number
// of in-memory entries moved to disk. It is the cold-tier analogue of GC:
// safe to run concurrently with Publish and snapshot reads (pinned
// snapshots keep their captured chains, and everything folded is at or
// below every pin by construction). Concurrent folds serialise.
func (s *Store) Fold() (int, error) {
	if s.cold == nil {
		return 0, fmt.Errorf("version: store has no cold tier")
	}
	return s.fold()
}

// foldableEntries counts the in-memory entries a fold at the current pin
// floor would move to disk (GC's "is a fold worthwhile yet" check).
func (s *Store) foldableEntries() int {
	s.mu.Lock()
	cur := s.current.Load()
	floor := s.pinFloorLocked(cur)
	s.mu.Unlock()
	n := 0
	for i := range cur.shards {
		for l := splitAt(cur.shards[i].head, floor); l != nil; l = l.next {
			n += len(l.entries)
		}
	}
	return n
}

// coldRec is one merged record bound for disk.
type coldRec struct {
	e     entry
	epoch uint64
}

func (s *Store) fold() (int, error) {
	c := s.cold
	s.foldMu.Lock()
	defer s.foldMu.Unlock()

	s.mu.Lock()
	cur := s.current.Load()
	floor := s.pinFloorLocked(cur)
	s.mu.Unlock()
	wm := c.wm.Load()
	// Nothing new below the floor since the last fold — unless a prior
	// round's splice was abandoned: those shards' layers are durable but
	// still resident, and with idle ingest the floor never advances, so
	// without a retry here they would stay in RAM forever.
	retry := false
	for i := range c.reprobe {
		if c.reprobe[i] {
			retry = true
			break
		}
	}
	if floor <= wm && !retry {
		return 0, nil
	}

	// Open the fold round's generation before any record lands: while
	// m/gen is ahead of m/done the archive is "possibly torn" and a
	// reopen falls back to the full purge scan. m/done (written as the
	// round's final step) closes the generation again, which is what lets
	// a clean reopen skip the scan entirely.
	gen := c.gen.Load() + 1
	var genBuf [8]byte
	binary.BigEndian.PutUint64(genBuf[:], gen)
	if err := c.kv.PutBatch([]kvstore.KV{{Key: c.metaKey("gen"), Value: genBuf[:]}}); err != nil {
		return 0, err
	}
	c.gen.Store(gen)

	// Merge each shard's foldable sub-chain newest-first (first write
	// wins), entirely outside any lock — the sub-chain at or below the
	// floor is immutable, and no new layer can appear below the floor
	// (epochs still publishing are all above the watermark ≥ floor).
	n := s.Shards()
	heads := make([]*layer, n)
	merged := make([]map[string]coldRec, n)
	resident := make([]int, n) // in-memory entry count of each folded sub-chain
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		heads[i] = splitAt(cur.shards[i].head, floor)
		if heads[i] == nil {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := make(map[string]coldRec)
			for l := heads[i]; l != nil; l = l.next {
				resident[i] += len(l.entries)
				for k, e := range l.entries {
					if _, ok := m[k]; !ok {
						m[k] = coldRec{e: e, epoch: l.epoch}
					}
				}
			}
			merged[i] = m
		}(i)
	}
	wg.Wait()

	// Write the round's records, chunked so concurrent kvstore readers
	// (cold fallthroughs, the engine's RDBMS) interleave between chunks.
	// A record only counts toward the shard's disk total when it is new:
	// after an abandoned splice the same (key, epoch) records fold again
	// as pure overwrites, so those shards probe before counting.
	var pairs []kvstore.KV
	written := make([]int64, n)
	//memexvet:ignore lockiter foldMu only serialises background folds; no reader or publisher path ever waits on it
	for i, m := range merged {
		for k, r := range m {
			var err error
			pairs, err = c.appendRecord(pairs, uint32(i), k, r.epoch, r.e)
			if err != nil {
				return 0, err
			}
			if !c.reprobe[i] || !c.recordExists(uint32(i), k, r.epoch) {
				written[i]++
			}
		}
	}
	if err := c.kv.PutBatchChunked(pairs, s.foldChunk); err != nil {
		return 0, err
	}
	if err := s.foldPoint(FoldAfterWrite); err != nil {
		return 0, err
	}

	// Persist shard count (idempotent) and the new watermark. The
	// watermark write is the fold's commit point: it follows every record
	// in WAL order, so "watermark durable" implies "records durable". A
	// retry round at an unchanged floor re-wrote only already-durable
	// records, so it has nothing to commit.
	if floor > wm {
		var meta [8]byte
		binary.BigEndian.PutUint64(meta[:], floor)
		var shardsMeta [4]byte
		binary.BigEndian.PutUint32(shardsMeta[:], uint32(n))
		if err := c.kv.PutBatch([]kvstore.KV{
			{Key: c.metaKey("shards"), Value: shardsMeta[:]},
			{Key: c.metaKey("wm"), Value: meta[:]},
		}); err != nil {
			return 0, err
		}
		c.wm.Store(floor)
		if err := s.foldPoint(FoldAfterWatermark); err != nil {
			return 0, err
		}
	}

	// Splice the folded layers out of each chain. Per-shard
	// abandon-on-conflict, exactly like GC: if the Publish backstop
	// replaced a sub-chain while we folded, that shard keeps its memory
	// until the next round — its records are on disk either way, and the
	// in-memory chain shadows them, so dropping the splice is always safe.
	// Only spliced shards count toward the reclaimed/folded totals: an
	// abandoned shard's entries are still resident and will be counted by
	// the round that finally reclaims them.
	reclaimed := 0
	s.mu.Lock()
	cur2 := s.current.Load()
	shards := make([]shard, len(cur2.shards))
	copy(shards, cur2.shards)
	for i := range shards {
		if heads[i] == nil {
			continue
		}
		if splitAt(cur2.shards[i].head, floor) != heads[i] {
			c.reprobe[i] = true // layers stay in memory; next fold re-writes them
			continue
		}
		head, spine := spliceAbove(cur2.shards[i].head, heads[i], nil)
		shards[i] = shard{head: head, depth: spine}
		c.reprobe[i] = false
		reclaimed += resident[i]
	}
	if reclaimed > 0 {
		next := &state{watermark: cur2.watermark, shards: shards}
		s.current.Store(next)
		s.history = append(s.history, next)
		s.gcReclaimed += uint64(reclaimed)
	}
	s.mu.Unlock()

	for i := range written {
		c.records[i].Add(written[i])
	}
	c.folds.Add(1)
	c.foldedN.Add(uint64(reclaimed))

	// Reclaim superseded disk versions. Safe only now: the watermark
	// covering the new versions is durable, so deleting what they shadow
	// can never lose the newest-at-or-below-watermark value, even torn.
	s.cleanupSuperseded(merged)

	// Close the generation: the round is fully complete, so persist the
	// final per-shard record counts alongside the gen. Failure is
	// tolerated — the only cost is one scan-mode reopen.
	_ = c.kv.PutBatch([]kvstore.KV{{Key: c.metaKey("done"), Value: c.encodeDoneMeta(gen)}})
	return reclaimed, nil
}

// recordExists reports whether the (key, epoch) record's first part is
// already on disk (used only on the abandoned-splice re-fold path).
func (c *coldTier) recordExists(shard uint32, key string, epoch uint64) bool {
	_, ok, err := c.rd.Get(c.recordKey(shard, key, epoch, 0))
	return err == nil && ok
}

// cleanupSuperseded deletes, for every key a fold just rewrote, all older
// disk versions — and, when the newest surviving version is a tombstone,
// the tombstone itself (nothing is left for it to shadow). Failures are
// ignored: leftover versions are invisible behind newer ones and the next
// fold of the key retries.
func (s *Store) cleanupSuperseded(merged []map[string]coldRec) {
	c := s.cold
	var dead [][]byte
	freed := make([]int64, len(merged))
	for i, m := range merged {
		for k, r := range m {
			var tombRun [][]byte
			c.rd.ScanPrefix(c.runPrefix(uint32(i), k), func(key, _ []byte) bool {
				_, _, epoch, part, ok := c.parseRecordKey(key)
				if !ok {
					return true
				}
				switch {
				case epoch < r.epoch:
					dead = append(dead, append([]byte(nil), key...))
					if part == 0 {
						freed[i]++
					}
				case epoch == r.epoch && r.e.deleted:
					// The key's entire surviving run is this tombstone;
					// delete it last so a torn batch still shadows.
					tombRun = append(tombRun, append([]byte(nil), key...))
					if part == 0 {
						freed[i]++
					}
				}
				return true
			})
			dead = append(dead, tombRun...)
		}
	}
	if len(dead) == 0 {
		return
	}
	if err := c.kv.DeleteBatchChunked(dead, s.foldChunk); err != nil {
		return
	}
	for i := range freed {
		c.records[i].Add(-freed[i])
	}
}

// ColdStats summarises the disk tier.
type ColdStats struct {
	// Watermark is the durable fold watermark: every epoch at or below it
	// survives a crash.
	Watermark uint64
	// Records is the number of record versions on disk (superseded
	// versions included until cleanup reclaims them).
	Records int64
	// Shards is the per-shard record count.
	Shards []int64
	// Folds counts completed fold rounds; FoldedEntries is the cumulative
	// number of in-memory entries moved to disk.
	Folds         uint64
	FoldedEntries uint64
	// Reads counts snapshot gets that fell through the in-memory chains
	// to disk; ReadMisses is the subset that found nothing there (the
	// cost the rin/ chunk-window hint exists to eliminate — see
	// internal/core). ReadErrors counts cold reads that failed at the
	// kvstore layer (each degraded to a miss).
	Reads      uint64
	ReadMisses uint64
	ReadErrors uint64
	// FoldGen is the current fold-round generation. CleanOpen reports
	// whether the last Open matched m/gen against m/done and skipped the
	// recovery scan; RecoveryScanned is how many record keys that scan
	// examined when it did run (0 on a clean open).
	FoldGen         uint64
	CleanOpen       bool
	RecoveryScanned int64
}

func (c *coldTier) stats() *ColdStats {
	st := &ColdStats{
		Watermark:       c.wm.Load(),
		Folds:           c.folds.Load(),
		FoldedEntries:   c.foldedN.Load(),
		Reads:           c.reads.Load(),
		ReadMisses:      c.readMisses.Load(),
		ReadErrors:      c.readErrs.Load(),
		FoldGen:         c.gen.Load(),
		CleanOpen:       c.cleanOpen,
		RecoveryScanned: c.recoveryScanned,
		Shards:          make([]int64, len(c.records)),
	}
	for i := range c.records {
		n := c.records[i].Load()
		st.Shards[i] = n
		st.Records += n
	}
	return st
}

// ColdRecords reports the number of live record versions on disk (0 for a
// purely in-memory store).
func (s *Store) ColdRecords() int64 {
	if s.cold == nil {
		return 0
	}
	var n int64
	for i := range s.cold.records {
		n += s.cold.records[i].Load()
	}
	return n
}

// ColdWatermark reports the durable fold watermark — the highest epoch
// whose records are safely on disk — lock-free, for callers that poll it
// on a hot path (admission control compares it against Watermark to
// measure how far the fold has fallen behind publishes). 0 for purely
// in-memory stores.
func (s *Store) ColdWatermark() uint64 {
	if s.cold == nil {
		return 0
	}
	return s.cold.wm.Load()
}

// Range calls fn for every live key visible in the snapshot with its
// value, in-memory or cold, in unspecified order; each key is yielded
// exactly once (the newest version at or below the snapshot epoch wins).
// fn returning false stops the walk. It panics if the snapshot was
// released.
func (sn *Snapshot) Range(fn func(key string, value []byte) bool) {
	st := sn.view("Range")
	for i := range st.shards {
		seen := make(map[string]bool)
		stopped := false
		l, _ := descendTo(st.shards[i].head, st.watermark)
		for ; l != nil; l = l.next {
			for k, e := range l.entries {
				if seen[k] {
					continue
				}
				seen[k] = true
				if !e.deleted {
					if !fn(k, e.value) {
						return
					}
				}
			}
		}
		if c := sn.s.cold; c != nil {
			c.scanShard(uint32(i), sn.epoch, func(k string, v []byte) bool {
				if seen[k] {
					return true
				}
				if !fn(k, v) {
					stopped = true
					return false
				}
				return true
			})
			if stopped {
				return
			}
		}
	}
}

// coldKeys appends the shard's live cold keys not shadowed by seen.
func (sn *Snapshot) coldKeys(shard uint32, seen map[string]bool, keys []string) []string {
	sn.s.cold.scanShard(shard, sn.epoch, func(k string, _ []byte) bool {
		if !seen[k] {
			keys = append(keys, k)
		}
		return true
	})
	return keys
}
