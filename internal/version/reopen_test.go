package version

import (
	"fmt"
	"testing"
)

// TestCleanReopenSkipsRecoveryScan pins the bounded-recovery contract:
// when the last fold round ran to completion (m/gen == m/done), reopen
// trusts the fold-completion record — no O(cold tier) purge scan, exact
// per-shard record counts — and still serves every record.
func TestCleanReopenSkipsRecoveryScan(t *testing.T) {
	dir := t.TempDir()
	kv := openKV(t, dir)
	defer kv.Close()
	s := openCold(t, kv, Options{Shards: 4})
	for i := 0; i < 60; i++ {
		publishKV(t, s, map[string]string{fmt.Sprintf("k%03d", i): fmt.Sprintf("v%03d", i)})
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openCold(t, kv, Options{Shards: 4})
	defer s2.Close()
	cs := s2.StoreStats().Cold
	if cs == nil {
		t.Fatal("no cold stats")
	}
	if !cs.CleanOpen {
		t.Fatal("reopen after a completed fold did not take the clean path")
	}
	if cs.RecoveryScanned != 0 {
		t.Fatalf("clean reopen scanned %d keys, want 0", cs.RecoveryScanned)
	}
	if cs.FoldGen == 0 {
		t.Fatal("fold generation not recovered")
	}
	if cs.Records != 60 {
		t.Fatalf("clean reopen counted %d records, want 60", cs.Records)
	}
	sn := s2.Acquire()
	defer sn.Release()
	for i := 0; i < 60; i++ {
		v, ok := sn.Get(fmt.Sprintf("k%03d", i))
		if !ok || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("k%03d = %q ok=%v after clean reopen", i, v, ok)
		}
	}
}

// TestTornReopenRunsRecoveryScan is the other half: without a matching
// fold-completion record (a crash between a fold's start and its
// cleanup), reopen must fall back to the full purge scan — and recover
// the same data.
func TestTornReopenRunsRecoveryScan(t *testing.T) {
	dir := t.TempDir()
	kv := openKV(t, dir)
	defer kv.Close()
	s := openCold(t, kv, Options{Shards: 4})
	for i := 0; i < 40; i++ {
		publishKV(t, s, map[string]string{fmt.Sprintf("k%03d", i): fmt.Sprintf("v%03d", i)})
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate the torn fold: the round bumped m/gen but died before
	// writing m/done.
	tier := &coldTier{prefix: []byte("vc/")}
	if err := kv.Delete(tier.metaKey("done")); err != nil {
		t.Fatalf("delete done meta: %v", err)
	}

	s2 := openCold(t, kv, Options{Shards: 4})
	defer s2.Close()
	cs := s2.StoreStats().Cold
	if cs == nil {
		t.Fatal("no cold stats")
	}
	if cs.CleanOpen {
		t.Fatal("reopen without a fold-completion record claimed the clean path")
	}
	if cs.RecoveryScanned == 0 {
		t.Fatal("torn reopen did not scan the cold tier")
	}
	if cs.Records != 40 {
		t.Fatalf("torn reopen counted %d records, want 40", cs.Records)
	}
	sn := s2.Acquire()
	defer sn.Release()
	for i := 0; i < 40; i++ {
		v, ok := sn.Get(fmt.Sprintf("k%03d", i))
		if !ok || string(v) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("k%03d = %q ok=%v after torn reopen", i, v, ok)
		}
	}
}

// TestCorruptDoneMetaForcesScan guards the clean path's last
// precondition: a completion record whose per-shard counts don't match
// the shard count (truncated or corrupt) cannot be trusted, so reopen
// must fall back to the scan — never serve made-up record counts.
func TestCorruptDoneMetaForcesScan(t *testing.T) {
	dir := t.TempDir()
	kv := openKV(t, dir)
	defer kv.Close()
	s := openCold(t, kv, Options{Shards: 4})
	for i := 0; i < 20; i++ {
		publishKV(t, s, map[string]string{fmt.Sprintf("k%03d", i): fmt.Sprintf("v%03d", i)})
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Truncate m/done to its generation header: gen still matches m/gen,
	// but the per-shard counts are gone.
	tier := &coldTier{prefix: []byte("vc/")}
	raw, ok, err := kv.Get(tier.metaKey("done"))
	if err != nil || !ok || len(raw) < 8 {
		t.Fatalf("read done meta: %v ok=%v len=%d", err, ok, len(raw))
	}
	if err := kv.Put(tier.metaKey("done"), raw[:8]); err != nil {
		t.Fatalf("truncate done meta: %v", err)
	}

	s2 := openCold(t, kv, Options{Shards: 4})
	defer s2.Close()
	cs := s2.StoreStats().Cold
	if cs.CleanOpen {
		t.Fatal("truncated completion record took the clean path")
	}
	if cs.Records != 20 {
		t.Fatalf("rescan counted %d records, want 20", cs.Records)
	}
}
