// Package version implements the loosely-consistent versioning system the
// Memex paper layers between its RDBMS metadata and its Berkeley-DB-style
// term stores: a single producer (the crawler) publishes batches of derived
// data; several consumers (the indexer and statistical analyzers) read
// immutable snapshots without ever blocking the producer or each other.
//
// # Architecture: sharded copy-on-write epoch layers
//
// The store's published history is partitioned by key hash into N
// independent shard chains. Each chain is an immutable linked list of
// layers, newest first. All N chain heads live together in one immutable
// state reachable from a single atomic.Pointer:
//
//	current ──> state{watermark, shards[0..N)} ──┬─> layer(e=9) ──> layer(e=7) ──> …   (shard 0)
//	                                             └─> layer(e=8) ──> layer(e=5) ──> …   (shard 3)
//
// Each Publish freezes the batch's writes into at most one immutable
// layer per shard (keys are routed by hash at staging time), links them
// into a copy of the shard-head array (the chains and their maps are
// shared, never copied), and installs the new state with one atomic
// store. Publish therefore stays a single atomic cross-shard commit —
// O(batch + N) work, independent of how much data the store holds — and
// a snapshot can never observe half of a batch's shards.
//
// Because nothing reachable from an installed state is ever mutated,
// readers need no locks at all:
//
//   - Acquire is a single atomic load of the current state plus one atomic
//     pin increment. The snapshot owns that state — every shard head —
//     forever after.
//   - Snapshot.Get hashes the key to its shard and walks that shard's
//     captured chain, skipping layers above the snapshot epoch. It never
//     touches a store mutex, so reads scale linearly with reader count,
//     and sharding keeps each walk short: a chain only grows when its own
//     shard is written. Each layer additionally carries binary-lifting
//     skip pointers (layer.skips), so the not-yet-visible prefix a
//     stalled low epoch piles up — hundreds of published-but-invisible
//     layers above the watermark — is crossed in O(log prefix) hops
//     rather than walked layer by layer; GC's split at the compaction
//     floor rides the same ladder.
//
// Published epochs are immutable: no publish, GC round, or fold ever
// rewrites a record under an installed state. Layers above the store
// (the engine's shared decoded-record cache in internal/core) lean on
// that — an entry cached under its (epoch, key) can only ever be dropped
// (memory pressure, or its epoch falling below PinFloor), never
// invalidated in place.
//   - The producer-side mutex serialises Begin/Publish/Abort and state
//     installs against each other only; consumers never observe it.
//
// # Watermark contiguity
//
// Epochs are allocated by Begin and may complete out of order. The
// watermark — the epoch new snapshots pin — is store-wide and only
// advances over *contiguously* completed epochs (published or aborted).
// A higher epoch that publishes while a lower one is still open is linked
// into its shards' chains but stays invisible (snapshots skip layers
// above their epoch) until the gap closes. This closes the consistency
// hole where a late low-epoch publish would otherwise insert entries
// below an already-pinned snapshot epoch and mutate a live snapshot: a
// pinned snapshot's chains are frozen, and the watermark never ran ahead
// of the gap in the first place.
//
// # Tiering: fresh → mid → cold (disk)
//
// A store opened with Open (as opposed to NewStore) has three tiers:
//
//	fresh   per-shard chains of just-published immutable layers (RAM)
//	mid     per-shard merged layers built by in-memory compaction (RAM)
//	cold    the kvstore B+tree keyspace the fold writes (disk)
//
//	Publish ──> fresh layer ──GC merge──> mid layer ──fold──> cold tier
//	                │                        │                  │
//	Snapshot.Get ───┴── chain walk ──────────┴── miss ──────────┴─> kvstore read
//
// GC folds everything at or below the pin floor to disk and splices it
// out of the chains, so RAM holds only the data published since the last
// fold — the archive grows on disk, not in the heap. Reads fall through a
// missed chain walk to a read-only kvstore handle; because the fold floor
// never exceeds the minimum pinned epoch, every cold record is at or
// below every live snapshot's epoch, and the in-memory chains (which a
// pinned snapshot captured immutably) shadow the cold tier for every key
// they contain — so the fallthrough needs no coordination with folds. On
// reopen the store recovers the durable fold watermark, purges any record
// a torn fold left above it, and resumes publishing at watermark+1 (see
// cold.go for the crash contract).
//
// # GC policy and shard parallelism
//
// GC (run off the hot path, e.g. by a periodic demon) compacts each
// shard's layers at or below the minimum pinned epoch into a tiered
// bottom, dropping superseded versions and dangling tombstones. The
// expensive part — merging layer maps — runs *outside* the store mutex,
// one goroutine per shard, so compaction cost no longer serialises
// behind one chain: GC wall-clock shrinks with shard count. Each shard's
// merge then installs under the mutex by splicing the untouched spine
// above the compaction floor onto the merged bottom; if another actor
// (the Publish depth backstop) replaced that shard's sub-chain in the
// meantime, the merge is simply abandoned — compaction is advisory, so
// dropping a round is always safe. Snapshots pinned on older states keep
// their captured chains — compaction can never invalidate them — so GC
// is pure compaction, never a data hazard.
//
// Consistency guarantee (verified by experiment E9): a snapshot never
// observes a partially published batch — across shards too — and two
// reads of the same key from one snapshot always agree.
package version

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// entry is one staged or published value. A zero-length chain position
// never exists: absence of the key in every layer means "never written".
type entry struct {
	value   []byte
	deleted bool
}

// layer is one shard's slice of a published batch frozen as an immutable
// map. next points at the next-older layer in the same shard (strictly
// smaller epoch). No field is ever written after the layer is linked
// into an installed state.
type layer struct {
	epoch   uint64
	entries map[string]entry
	// tombs counts deleted entries, so compaction can tell an idle
	// tombstone-free chain apart without rescanning every entry.
	tombs int
	next  *layer
	// skips are binary-lifting pointers into the same chain: skips[0] is
	// next, and skips[i] is skips[i-1].skips[i-1] — the layer 2^i links
	// down. Because chains are strictly epoch-descending, descendTo can
	// binary-search an epoch boundary in O(log chain) hops instead of
	// walking every layer, which is what keeps deep out-of-order chains
	// (a stalled low epoch holding the watermark back while hundreds of
	// higher epochs publish) readable. Built by linkLayer at construction
	// time, immutable afterwards like every other field.
	skips []*layer
}

// linkLayer points l at next and derives its skip ladder from next's.
// Must be called before l is linked into an installed state (layers are
// immutable once published).
func linkLayer(l, next *layer) {
	l.next = next
	if next == nil {
		l.skips = nil
		return
	}
	skips := make([]*layer, 1, len(next.skips)+1)
	skips[0] = next
	for i := 0; ; i++ {
		hop := skips[i]
		if i >= len(hop.skips) {
			break
		}
		skips = append(skips, hop.skips[i])
	}
	l.skips = skips
}

// descendTo returns the first layer of the chain with epoch <= target,
// hopping the skip ladder so the walk is O(log prefix) instead of
// O(prefix). probes counts layers examined (the scaling tests assert the
// logarithmic bound); production callers ignore it.
func descendTo(head *layer, target uint64) (*layer, int) {
	l := head
	if l == nil || l.epoch <= target {
		return l, 0
	}
	// Invariant: l.epoch > target. Take the longest skip that stays above
	// the target; when even next lands at or below it, next is the answer.
	probes := 1
	for i := len(l.skips) - 1; i >= 0; {
		if i >= len(l.skips) {
			i = len(l.skips) - 1
			continue
		}
		if s := l.skips[i]; s.epoch > target {
			l = s
			probes++
		} else {
			i--
		}
	}
	return l.next, probes
}

// shard is one key-hash partition's chain inside a state: its head layer
// and chain depth (maintained so Publish can trigger amortized
// auto-compaction when reads would otherwise degrade).
type shard struct {
	head  *layer
	depth int
}

// state is one immutable published view of the store: the watermark plus
// every shard's chain head. pins counts the snapshots currently holding
// it (used only as the GC compaction floor — correctness of pinned reads
// never depends on it).
type state struct {
	watermark uint64
	shards    []shard
	pins      atomic.Int64
}

// maxDepth returns the deepest shard chain (the worst-case read walk).
func (st *state) maxDepth() int {
	d := 0
	for i := range st.shards {
		if st.shards[i].depth > d {
			d = st.shards[i].depth
		}
	}
	return d
}

// Store is an in-memory multi-version key-value map with watermark
// publication, sharded by key hash. The Memex demons keep derived
// statistics here; bulk data lives in kvstore, keyed by epoch, with
// Store coordinating visibility.
type Store struct {
	current atomic.Pointer[state]
	// mask is nshards-1 (shard count is a power of two), applied to the
	// key hash. Immutable after NewStore.
	mask uint32

	// mu guards the producer/install side only: epoch allocation, the
	// completed-epoch set, the pinned-state history, and state installs.
	// Snapshot reads never acquire it, and shard compaction holds it only
	// for the final splice, not the merge.
	mu        sync.Mutex
	nextEpoch uint64
	// completed holds published/aborted epochs above the watermark,
	// waiting for the gap below them to close.
	completed map[uint64]bool
	// history lists states that may still be pinned (plus the current
	// one). Publish appends; Publish and GC prune unpinned entries.
	history     []*state
	gcReclaimed uint64
	// compactAt is the max shard-chain depth at which Publish triggers
	// inline compaction of the offending shard — the backstop for stores
	// whose owner never calls GC. Raised past the post-compaction depth
	// so a long-pinned snapshot (which caps how much compaction can
	// reclaim) cannot make every Publish retry a futile O(depth) merge.
	compactAt int

	// gcMu serialises compactions of the same shard against each other
	// (different shards compact in parallel). Lock order: gcMu[i] before
	// mu; the Publish backstop, which already holds mu, therefore never
	// touches gcMu and relies on the splice-time conflict check instead.
	gcMu []sync.Mutex

	// cold is the disk tier (nil for purely in-memory stores). foldMu
	// serialises fold rounds; foldHook is the crash-injection point for
	// recovery tests; foldMin/foldChunk are Options knobs. Lock order:
	// foldMu before mu.
	cold      *coldTier
	foldMu    sync.Mutex
	foldHook  func(FoldPoint) error
	foldMin   int
	foldChunk int
}

// DefaultShards is the shard count NewStore uses: enough for parallel
// compaction and short chains without bloating tiny stores' states.
const DefaultShards = 8

// maxHistory bounds how many superseded states Publish tolerates before
// pruning unpinned ones inline (GC prunes too; this is the backstop for
// stores that publish heavily between GCs).
const maxHistory = 1024

// autoCompactDepth is the default per-shard chain depth that triggers
// inline compaction during Publish.
const autoCompactDepth = 1024

// NewStore returns an empty versioned store at watermark 0 with
// DefaultShards shards.
func NewStore() *Store {
	return NewStoreSharded(DefaultShards)
}

// NewStoreSharded returns an empty store partitioned into the given
// number of shards (rounded up to a power of two; n <= 0 means
// DefaultShards). More shards shorten chains and parallelise compaction;
// a single shard reproduces the unsharded PR 1 layout exactly.
func NewStoreSharded(n int) *Store {
	if n <= 0 {
		n = DefaultShards
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	s := &Store{
		mask:      uint32(pow - 1),
		nextEpoch: 1,
		completed: make(map[uint64]bool),
		compactAt: autoCompactDepth,
		gcMu:      make([]sync.Mutex, pow),
	}
	st := &state{shards: make([]shard, pow)}
	s.current.Store(st)
	s.history = append(s.history, st)
	return s
}

// Shards returns the store's shard count.
func (s *Store) Shards() int { return int(s.mask) + 1 }

// shardOf routes a key to its shard (FNV-1a, masked). Inlined into the
// read path, so it must stay allocation-free.
func (s *Store) shardOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h & s.mask
}

type batchStage uint8

const (
	batchActive batchStage = iota
	batchPublished
	batchAborted
)

// Batch stages writes for one epoch, already routed to their shards.
// Batches are created by the single producer; creating a batch does not
// block consumers. A Batch is not safe for concurrent use; distinct
// batches are.
type Batch struct {
	s     *Store
	epoch uint64
	// writes[i] holds the staged entries bound for shard i (nil when the
	// batch never touched that shard).
	writes []map[string]entry
	n      int
	hint   int
	stage  batchStage
}

// Begin opens a new batch at the next epoch. Only one producer may be
// active; Begin enforces nothing about callers, matching the paper's
// single-producer design, but concurrent batches are safe — they simply
// publish in epoch order acquired here, and the watermark waits for the
// slowest of them (see the contiguity rule in the package doc).
func (s *Store) Begin() *Batch {
	return s.BeginSized(0)
}

// BeginSized is Begin with a capacity hint for the number of staged
// writes, sparing the producer incremental map growth on hot batches.
// The hint is spread across the shards the batch actually touches.
func (s *Store) BeginSized(hint int) *Batch {
	s.mu.Lock()
	epoch := s.nextEpoch
	s.nextEpoch++
	s.mu.Unlock()
	return &Batch{s: s, epoch: epoch, writes: make([]map[string]entry, s.mask+1), hint: hint}
}

// mustActive panics when the batch has already been published or aborted.
// Staging into a finished batch was previously either a nil-map panic
// (after Abort) or a silent no-op whose writes never landed (after
// Publish); both are programming errors and now fail loudly the same way.
func (b *Batch) mustActive(op string) {
	switch b.stage {
	case batchPublished:
		panic("version: " + op + " on already-published batch")
	case batchAborted:
		panic("version: " + op + " on aborted batch")
	}
}

// stage records one write in its shard's staging map.
func (b *Batch) put(key string, e entry) {
	if b.s.cold != nil && len(key) > MaxColdKeyLen {
		// Fail at publish time, loudly, like other Batch misuse: an
		// oversized key would otherwise poison every future fold.
		panic(fmt.Sprintf("version: key %d bytes long exceeds MaxColdKeyLen=%d for a disk-backed store", len(key), MaxColdKeyLen))
	}
	i := b.s.shardOf(key)
	m := b.writes[i]
	if m == nil {
		// Size for the optimistic case that the whole hint lands in few
		// shards; Go maps over-allocated this way just waste a bucket.
		per := b.hint / (int(b.s.mask) + 1)
		if per < 4 {
			per = 4
		}
		m = make(map[string]entry, per)
		b.writes[i] = m
	}
	if _, seen := m[key]; !seen {
		b.n++
	}
	m[key] = e
}

// Put stages key→value in the batch. It panics if the batch was already
// published or aborted.
func (b *Batch) Put(key string, value []byte) {
	b.mustActive("Put")
	b.put(key, entry{value: value})
}

// Delete stages a tombstone for key. It panics if the batch was already
// published or aborted.
func (b *Batch) Delete(key string) {
	b.mustActive("Delete")
	b.put(key, entry{deleted: true})
}

// Len returns the number of staged writes.
func (b *Batch) Len() int { return b.n }

// Epoch returns the epoch this batch will publish at.
func (b *Batch) Epoch() uint64 { return b.epoch }

// Publish freezes the batch into at most one immutable layer per touched
// shard, links them into a copy of the shard-head array, and — when every
// lower epoch has completed — atomically advances the watermark so new
// snapshots observe it. The install is one atomic store, so the commit is
// all-or-nothing across shards, and Publish never blocks or invalidates
// concurrent snapshot reads.
func (b *Batch) Publish() error {
	switch b.stage {
	case batchPublished:
		return fmt.Errorf("version: batch already published")
	case batchAborted:
		return fmt.Errorf("version: batch already aborted")
	}
	b.stage = batchPublished
	writes := b.writes
	b.writes = nil // the layers own the maps now; Put would panic anyway

	// Freeze the per-shard layers outside the lock: the batch owns its
	// staging maps, so this is safe, and it keeps the critical section at
	// O(touched shards) pointer work.
	layers := make([]*layer, len(writes))
	touched := false
	for i, m := range writes {
		if len(m) == 0 {
			continue
		}
		tombs := 0
		for _, e := range m {
			if e.deleted {
				tombs++
			}
		}
		layers[i] = &layer{epoch: b.epoch, entries: m, tombs: tombs}
		touched = true
	}

	s := b.s
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.current.Load()
	shards := cur.shards
	if touched {
		shards = make([]shard, len(cur.shards))
		copy(shards, cur.shards)
		for i, l := range layers {
			if l == nil {
				continue
			}
			shards[i].head = insertLayer(shards[i].head, l)
			shards[i].depth++
		}
	}
	s.completed[b.epoch] = true
	s.installLocked(shards, cur.watermark)
	// Amortized backstop for stores whose owner never calls GC: once some
	// shard's chain is deep enough to hurt reads, compact that shard
	// inline and move the trigger past whatever depth pinned snapshots
	// forced us to keep.
	if d := s.current.Load().maxDepth(); d >= s.compactAt {
		s.compactAllLocked()
		s.compactAt = s.current.Load().maxDepth() + autoCompactDepth
	}
	return nil
}

// Abort discards the batch. The epoch still counts as completed so an
// abandoned batch cannot stall the watermark forever. Abort after Publish
// is a no-op (supporting `defer b.Abort()` cleanup patterns).
func (b *Batch) Abort() {
	if b.stage != batchActive {
		return
	}
	b.stage = batchAborted
	b.writes = nil
	s := b.s
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.current.Load()
	s.completed[b.epoch] = true
	s.installLocked(cur.shards, cur.watermark)
}

// installLocked advances the watermark over contiguously completed epochs
// and installs a new state when anything changed. shards may be the
// current state's own slice (meaning "unchanged"). Caller holds mu.
func (s *Store) installLocked(shards []shard, watermark uint64) {
	advanced := false
	for s.completed[watermark+1] {
		delete(s.completed, watermark+1)
		watermark++
		advanced = true
	}
	cur := s.current.Load()
	if !advanced && &shards[0] == &cur.shards[0] {
		return
	}
	next := &state{watermark: watermark, shards: shards}
	s.current.Store(next)
	s.history = append(s.history, next)
	if len(s.history) > maxHistory {
		s.pruneHistoryLocked(next)
	}
}

// pruneHistoryLocked drops superseded states no snapshot is pinning.
// Caller holds mu.
func (s *Store) pruneHistoryLocked(cur *state) {
	live := s.history[:0]
	for _, st := range s.history {
		if st == cur || st.pins.Load() > 0 {
			live = append(live, st)
		}
	}
	for i := len(live); i < len(s.history); i++ {
		s.history[i] = nil
	}
	s.history = live
}

// insertLayer links l into the newest-first chain, path-copying only the
// spine nodes above it (their entry maps are shared). In the common
// in-order case l becomes the new head in O(1); an out-of-order publish
// copies one node per already-published higher epoch in l's shard.
func insertLayer(head *layer, l *layer) *layer {
	if head == nil || l.epoch > head.epoch {
		linkLayer(l, head)
		return l
	}
	var above []*layer
	cur := head
	for cur != nil && cur.epoch > l.epoch {
		above = append(above, cur)
		cur = cur.next
	}
	linkLayer(l, cur)
	newHead := l
	for i := len(above) - 1; i >= 0; i-- {
		cp := &layer{epoch: above[i].epoch, entries: above[i].entries, tombs: above[i].tombs}
		linkLayer(cp, newHead)
		newHead = cp
	}
	return newHead
}

// Snapshot is a consistent read view pinned at one epoch. Get and Keys
// are lock-free: they walk the snapshot's own captured shard chains,
// which no publish or GC ever mutates.
type Snapshot struct {
	s     *Store
	st    *state
	epoch uint64
}

// Acquire pins a snapshot at the current watermark: one atomic load plus
// one atomic pin increment, never a lock. The captured state holds every
// shard's chain head, so the view is cross-shard consistent by
// construction.
func (s *Store) Acquire() *Snapshot {
	st := s.current.Load()
	st.pins.Add(1)
	return &Snapshot{s: s, st: st, epoch: st.watermark}
}

// Epoch returns the snapshot's pinned epoch (valid even after Release).
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// view returns the pinned state or fails loudly on use-after-Release.
// Before this check a released snapshot would silently read whatever the
// store had GC'd under it; now misuse is an immediate diagnostic.
func (sn *Snapshot) view(op string) *state {
	st := sn.st
	if st == nil {
		panic("version: " + op + " on released snapshot")
	}
	return st
}

// Get returns the newest value for key with epoch <= the snapshot epoch.
// It hashes the key to its shard and walks only that chain; on a miss it
// falls through to the cold tier (when one is attached), whose records
// are all at or below every live snapshot's epoch by the fold-floor rule.
// The hot path stays lock-free; only a genuine chain miss pays the disk
// read. It panics if the snapshot was released.
func (sn *Snapshot) Get(key string) ([]byte, bool) {
	st := sn.view("Get")
	shard := sn.s.shardOf(key)
	l := st.shards[shard].head
	if l != nil && l.epoch > st.watermark {
		// Skip the not-yet-visible prefix (epochs published above a still
		// open lower epoch) in O(log prefix); the chain below is strictly
		// epoch-descending, so no per-layer epoch check is needed after.
		l, _ = descendTo(l, st.watermark)
	}
	for ; l != nil; l = l.next {
		if e, ok := l.entries[key]; ok {
			if e.deleted {
				return nil, false
			}
			return e.value, true
		}
	}
	if c := sn.s.cold; c != nil {
		return c.get(shard, key, sn.epoch)
	}
	return nil, false
}

// Keys returns all live keys visible in the snapshot, sorted, across all
// shards and both tiers (a chain entry — live or tombstone — shadows any
// cold version of its key). It panics if the snapshot was released.
func (sn *Snapshot) Keys() []string {
	st := sn.view("Keys")
	var keys []string
	for i := range st.shards {
		seen := make(map[string]bool)
		l, _ := descendTo(st.shards[i].head, st.watermark)
		for ; l != nil; l = l.next {
			for k, e := range l.entries {
				if seen[k] {
					continue
				}
				seen[k] = true
				if !e.deleted {
					keys = append(keys, k)
				}
			}
		}
		if sn.s.cold != nil {
			keys = sn.coldKeys(uint32(i), seen, keys)
		}
	}
	sort.Strings(keys)
	return keys
}

// Release unpins the snapshot, letting GC compact past its epoch and the
// runtime reclaim its layers. Release is idempotent; Get/Keys after
// Release panic.
func (sn *Snapshot) Release() {
	if sn.st == nil {
		return
	}
	sn.st.pins.Add(-1)
	sn.st = nil
}

// Watermark returns the current published epoch (lock-free).
func (s *Store) Watermark() uint64 {
	return s.current.Load().watermark
}

// PinFloor returns the minimum epoch any pinned snapshot may still be
// reading — the same floor GC compaction and the cold fold respect.
// Cache layers above the store (e.g. the engine's decoded-record cache)
// use it to drop entries no live view can reference anymore; published
// epochs are immutable, so that eviction is the only invalidation they
// ever need.
func (s *Store) PinFloor() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pinFloorLocked(s.current.Load())
}

// pinFloorLocked computes the compaction floor: the minimum epoch any
// pinned snapshot may still be reading. Caller holds mu.
func (s *Store) pinFloorLocked(cur *state) uint64 {
	s.pruneHistoryLocked(cur)
	floor := cur.watermark
	for _, st := range s.history {
		if st.pins.Load() > 0 && st.watermark < floor {
			floor = st.watermark
		}
	}
	return floor
}

// GC compacts every shard's layers at or below the minimum pinned epoch,
// dropping superseded versions and tombstones with nothing left to
// shadow. The merge work runs one goroutine per shard, entirely off the
// read path and outside the store mutex, so shards compact in parallel
// and only each result's O(spine) splice serialises. Returns the total
// number of versions reclaimed.
//
// With a cold tier attached, GC folds to disk instead once enough
// entries have accumulated below the pin floor (Options.FoldMinEntries);
// below that it falls back to in-memory compaction, which in cold mode
// preserves tombstones (they shadow disk records until folded).
func (s *Store) GC() int {
	if s.cold != nil && s.foldableEntries() >= s.foldMin {
		if n, err := s.fold(); err == nil {
			return n
		}
		// Fold failed (kvstore closed or write error): keep the data in
		// memory and let in-memory compaction at least bound chain depth.
	}
	n := s.Shards()
	if n == 1 {
		return s.GCShard(0)
	}
	var wg sync.WaitGroup
	var total atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			total.Add(int64(s.GCShard(i)))
		}(i)
	}
	wg.Wait()
	return int(total.Load())
}

// GCShard compacts a single shard (see GC). Concurrent GCShard calls on
// the same shard serialise; different shards proceed in parallel.
func (s *Store) GCShard(i int) int {
	if i < 0 || i > int(s.mask) {
		return 0
	}
	s.gcMu[i].Lock()
	defer s.gcMu[i].Unlock()

	s.mu.Lock()
	cur := s.current.Load()
	floor := s.pinFloorLocked(cur)
	s.mu.Unlock()

	// The expensive merge runs lock-free against the captured chain: the
	// sub-chain at or below the floor is immutable and — because epochs
	// above the watermark are the only ones still publishing and the
	// floor never exceeds the watermark — no new layer at or below the
	// floor can appear while we merge. Only the same shard's backstop
	// compaction could replace it, which the splice detects below.
	mergeHead := splitAt(cur.shards[i].head, floor)
	bottom, _, reclaimed, changed := compactChain(mergeHead, s.cold == nil)
	if !changed {
		return 0
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	cur2 := s.current.Load()
	if splitAt(cur2.shards[i].head, floor) != mergeHead {
		// The Publish backstop compacted this shard while we merged.
		// Compaction is advisory: abandon this round, the next tick
		// starts from the new chain.
		return 0
	}
	shards := make([]shard, len(cur2.shards))
	copy(shards, cur2.shards)
	head, spine := spliceAbove(cur2.shards[i].head, mergeHead, bottom)
	shards[i] = shard{head: head, depth: spine + chainLen(bottom)}
	next := &state{watermark: cur2.watermark, shards: shards}
	s.current.Store(next)
	s.history = append(s.history, next)
	s.gcReclaimed += uint64(reclaimed)
	return reclaimed
}

// splitAt returns the first layer of the chain with epoch <= floor (the
// immutable merge region), or nil. The descent rides the skip ladder, so
// GC's pre-merge split is O(log spine) even on deep chains.
func splitAt(head *layer, floor uint64) *layer {
	l, _ := descendTo(head, floor)
	return l
}

// spliceAbove rebuilds the spine of layers strictly above oldBottom
// (path-copied, maps shared) on top of newBottom, returning the new head
// and the spine length. Layers above the compaction floor are only ever
// prepended, so the spine is exactly the chain's prefix before oldBottom.
func spliceAbove(head, oldBottom, newBottom *layer) (*layer, int) {
	var above []*layer
	for cur := head; cur != oldBottom; cur = cur.next {
		above = append(above, cur)
	}
	newHead := newBottom
	for i := len(above) - 1; i >= 0; i-- {
		cp := &layer{epoch: above[i].epoch, entries: above[i].entries, tombs: above[i].tombs}
		linkLayer(cp, newHead)
		newHead = cp
	}
	return newHead, len(above)
}

func chainLen(l *layer) int {
	n := 0
	for ; l != nil; l = l.next {
		n++
	}
	return n
}

// compactChain merges one shard's sub-chain (everything from mergeHead
// down) into a tiered bottom. It only reads the immutable chain — safe
// to run without any lock — and returns the replacement bottom chain,
// its entry count, the number of versions reclaimed, and whether
// anything changed.
//
// dropTombs says the merged bottom is the true bottom of the store, so
// tombstones with nothing left to shadow can vanish. A disk-backed store
// passes false: the cold tier sits below every chain, and an in-memory
// tombstone must survive compaction to keep shadowing the disk version
// of its key until a fold writes the tombstone through.
//
// Compaction is tiered so a periodic GC tick costs O(data published
// since the last tick), not O(store): every non-base layer first merges
// into one mid layer; the mid layer folds into the (potentially huge)
// base only when that pays — it shadows or deletes base keys, or has
// grown to a fair fraction of the base. Until a fold, the base map is
// shared untouched across compactions.
func compactChain(mergeHead *layer, dropTombs bool) (bottom *layer, post, reclaimed int, changed bool) {
	if mergeHead == nil {
		return nil, 0, 0, false
	}
	var uppers []*layer
	base := mergeHead
	for base.next != nil {
		uppers = append(uppers, base)
		base = base.next
	}
	if len(uppers) == 0 && (base.tombs == 0 || !dropTombs) {
		return mergeHead, len(base.entries), 0, false // single already-compact base
	}
	pre := len(base.entries)
	for _, l := range uppers {
		pre += len(l.entries)
	}

	// Tier 1: collapse the non-base layers into one mid layer
	// (newest-first, first write wins). A single upper needs no copy.
	var mid *layer
	switch {
	case len(uppers) == 1:
		mid = uppers[0]
	case len(uppers) > 1:
		entries := make(map[string]entry, len(uppers[len(uppers)-1].entries))
		tombs := 0
		for _, l := range uppers {
			for k, e := range l.entries {
				if _, ok := entries[k]; !ok {
					entries[k] = e
					if e.deleted {
						tombs++
					}
				}
			}
		}
		mid = &layer{epoch: uppers[0].epoch, entries: entries, tombs: tombs}
	}

	// Tier 2: fold mid into the base when it reclaims something
	// (tombstones, or keys shadowing base versions) or when mid has
	// grown to ≥1/4 of the base (bounding read depth and amortizing the
	// base copy).
	fold := dropTombs && base.tombs > 0
	if mid != nil && !fold {
		fold = mid.tombs > 0 || len(mid.entries)*4 >= len(base.entries)
		if !fold {
			for k := range mid.entries {
				if _, ok := base.entries[k]; ok {
					fold = true
					break
				}
			}
		}
	}

	if fold {
		merged := make(map[string]entry, len(base.entries)+8)
		for k, e := range base.entries {
			merged[k] = e
		}
		epoch := base.epoch
		if mid != nil {
			for k, e := range mid.entries {
				merged[k] = e
			}
			epoch = mid.epoch
		}
		tombs := 0
		if dropTombs {
			// The folded layer is the true bottom: tombstones shadow
			// nothing.
			for k, e := range merged {
				if e.deleted {
					delete(merged, k)
				}
			}
		} else {
			for _, e := range merged {
				if e.deleted {
					tombs++
				}
			}
		}
		if len(merged) == 0 {
			return nil, 0, pre, true
		}
		return &layer{epoch: epoch, entries: merged, tombs: tombs}, len(merged), pre - len(merged), true
	}
	if len(uppers) == 1 {
		return mergeHead, pre, 0, false // already in [single-upper, base] shape
	}
	// mid is freshly built above; base is shared, untouched.
	linkLayer(mid, base)
	return mid, len(mid.entries) + len(base.entries), pre - (len(mid.entries) + len(base.entries)), true
}

// compactAllLocked compacts every shard inline under mu — the Publish
// depth backstop. It cannot run the parallel path (that path takes gcMu
// then mu; we already hold mu), so it pays the serial cost, which is
// acceptable for a rare amortized backstop.
func (s *Store) compactAllLocked() {
	cur := s.current.Load()
	floor := s.pinFloorLocked(cur)
	shards := make([]shard, len(cur.shards))
	copy(shards, cur.shards)
	total := 0
	dirty := false
	for i := range shards {
		mergeHead := splitAt(shards[i].head, floor)
		bottom, _, reclaimed, changed := compactChain(mergeHead, s.cold == nil)
		if !changed {
			continue
		}
		head, spine := spliceAbove(shards[i].head, mergeHead, bottom)
		shards[i] = shard{head: head, depth: spine + chainLen(bottom)}
		total += reclaimed
		dirty = true
	}
	if !dirty {
		return
	}
	next := &state{watermark: cur.watermark, shards: shards}
	s.current.Store(next)
	s.history = append(s.history, next)
	s.gcReclaimed += uint64(total)
}

// VersionCount reports the total number of stored versions across every
// shard of the current state (for E9 and GC tests). Lock-free.
func (s *Store) VersionCount() int {
	st := s.current.Load()
	n := 0
	for i := range st.shards {
		for l := st.shards[i].head; l != nil; l = l.next {
			n += len(l.entries)
		}
	}
	return n
}

// ShardStats summarises one shard's chain.
type ShardStats struct {
	// Layers is the shard's chain length (publishes touching it since
	// its last compaction).
	Layers int
	// Entries is the shard's total version count.
	Entries int
}

// Stats is a point-in-time summary of the store's shape.
type Stats struct {
	// Watermark is the highest contiguously published epoch.
	Watermark uint64
	// Layers is the deepest shard chain — the worst-case read walk.
	Layers int
	// Entries is the total version count across all shards.
	Entries int
	// Pinned is the number of snapshots currently holding a state.
	Pinned int
	// PendingEpochs counts published/aborted epochs still waiting for a
	// lower epoch to complete before the watermark can cover them.
	PendingEpochs int
	// GCReclaimed is the cumulative number of versions compacted away.
	GCReclaimed uint64
	// Shards is the per-shard breakdown (length = shard count).
	Shards []ShardStats
	// Cold summarises the disk tier (nil for purely in-memory stores).
	Cold *ColdStats
}

// StoreStats returns current store statistics.
func (s *Store) StoreStats() Stats {
	// Only the producer-side bookkeeping needs s.mu. The shard-chain walk
	// below is O(shards × layers) and runs against an installed state,
	// which is immutable — holding the producer lock across it would
	// stall every publisher behind a stats poll, so it happens off-lock.
	// The two halves may straddle a concurrent publish; Stats is a
	// point-in-time summary, not a consistent cut.
	s.mu.Lock()
	st := Stats{
		PendingEpochs: len(s.completed),
		GCReclaimed:   s.gcReclaimed,
	}
	for _, h := range s.history {
		st.Pinned += int(h.pins.Load())
	}
	s.mu.Unlock()

	cur := s.current.Load()
	st.Watermark = cur.watermark
	st.Shards = make([]ShardStats, len(cur.shards))
	for i := range cur.shards {
		sh := &st.Shards[i]
		for l := cur.shards[i].head; l != nil; l = l.next {
			sh.Layers++
			sh.Entries += len(l.entries)
		}
		st.Entries += sh.Entries
		if sh.Layers > st.Layers {
			st.Layers = sh.Layers
		}
	}
	if s.cold != nil {
		st.Cold = s.cold.stats()
	}
	return st
}
