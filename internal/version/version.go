// Package version implements the loosely-consistent versioning system the
// Memex paper layers between its RDBMS metadata and its Berkeley-DB-style
// term stores: a single producer (the crawler) publishes batches of derived
// data; several consumers (the indexer and statistical analyzers) read
// immutable snapshots without ever blocking the producer or each other.
//
// The model is epoch/watermark based:
//
//   - The producer opens a Batch, stages writes, and Publishes it. Publish
//     atomically advances the store's watermark to the batch epoch.
//   - Consumers Acquire a Snapshot pinned at the current watermark. A
//     snapshot sees, for each key, the newest value whose epoch is <= the
//     snapshot epoch — regardless of later publishes.
//   - Releasing snapshots lets the garbage collector drop superseded
//     versions older than the minimum pinned epoch.
//
// Consistency guarantee (verified by experiment E9): a snapshot never
// observes a partially published batch, and two reads of the same key from
// one snapshot always agree.
package version

import (
	"fmt"
	"sort"
	"sync"
)

// Store is an in-memory multi-version key-value map with watermark
// publication. The Memex demons keep derived statistics here; bulk data
// lives in kvstore, keyed by epoch, with Store coordinating visibility.
type Store struct {
	mu        sync.RWMutex
	versions  map[string][]entry // ascending by epoch
	watermark uint64
	nextEpoch uint64
	pinned    map[uint64]int // epoch -> pin count
	// gcDeleted counts versions reclaimed (stats for E9).
	gcDeleted uint64
}

type entry struct {
	epoch   uint64
	value   []byte
	deleted bool
}

// NewStore returns an empty versioned store at watermark 0.
func NewStore() *Store {
	return &Store{
		versions:  make(map[string][]entry),
		pinned:    make(map[uint64]int),
		nextEpoch: 1,
	}
}

// Batch stages writes for one epoch. Batches are created by the single
// producer; creating a batch does not block consumers.
type Batch struct {
	s      *Store
	epoch  uint64
	writes map[string]entry
	done   bool
}

// Begin opens a new batch at the next epoch. Only one producer may be
// active; Begin enforces nothing about callers, matching the paper's
// single-producer design, but concurrent batches are safe — they simply
// publish in epoch order acquired here.
func (s *Store) Begin() *Batch {
	s.mu.Lock()
	epoch := s.nextEpoch
	s.nextEpoch++
	s.mu.Unlock()
	return &Batch{s: s, epoch: epoch, writes: make(map[string]entry)}
}

// Put stages key→value in the batch.
func (b *Batch) Put(key string, value []byte) {
	b.writes[key] = entry{epoch: b.epoch, value: value}
}

// Delete stages a tombstone for key.
func (b *Batch) Delete(key string) {
	b.writes[key] = entry{epoch: b.epoch, deleted: true}
}

// Len returns the number of staged writes.
func (b *Batch) Len() int { return len(b.writes) }

// Publish atomically installs the batch and advances the watermark.
// After Publish returns, new snapshots observe every write in the batch.
func (b *Batch) Publish() error {
	if b.done {
		return fmt.Errorf("version: batch already published")
	}
	b.done = true
	s := b.s
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, e := range b.writes {
		vs := s.versions[k]
		// Insert keeping epoch order (batches may publish out of order).
		i := sort.Search(len(vs), func(i int) bool { return vs[i].epoch >= e.epoch })
		vs = append(vs, entry{})
		copy(vs[i+1:], vs[i:])
		vs[i] = e
		s.versions[k] = vs
	}
	if b.epoch > s.watermark {
		s.watermark = b.epoch
	}
	return nil
}

// Abort discards the batch.
func (b *Batch) Abort() { b.done = true; b.writes = nil }

// Snapshot is a consistent read view pinned at one epoch.
type Snapshot struct {
	s        *Store
	epoch    uint64
	released bool
}

// Acquire pins a snapshot at the current watermark.
func (s *Store) Acquire() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pinned[s.watermark]++
	return &Snapshot{s: s, epoch: s.watermark}
}

// Epoch returns the snapshot's pinned epoch.
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// Get returns the newest value for key with epoch <= the snapshot epoch.
func (sn *Snapshot) Get(key string) ([]byte, bool) {
	s := sn.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.versions[key]
	// Find last entry with epoch <= sn.epoch.
	i := sort.Search(len(vs), func(i int) bool { return vs[i].epoch > sn.epoch })
	if i == 0 {
		return nil, false
	}
	e := vs[i-1]
	if e.deleted {
		return nil, false
	}
	return e.value, true
}

// Keys returns all live keys visible in the snapshot, sorted.
func (sn *Snapshot) Keys() []string {
	s := sn.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k, vs := range s.versions {
		i := sort.Search(len(vs), func(i int) bool { return vs[i].epoch > sn.epoch })
		if i > 0 && !vs[i-1].deleted {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Release unpins the snapshot, enabling GC of versions it was holding.
func (sn *Snapshot) Release() {
	if sn.released {
		return
	}
	sn.released = true
	s := sn.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.pinned[sn.epoch]; c > 1 {
		s.pinned[sn.epoch] = c - 1
	} else {
		delete(s.pinned, sn.epoch)
	}
}

// Watermark returns the current published epoch.
func (s *Store) Watermark() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.watermark
}

// minPinned returns the lowest pinned epoch, or the watermark when no
// snapshot is held. Caller holds mu.
func (s *Store) minPinnedLocked() uint64 {
	min := s.watermark
	for e := range s.pinned {
		if e < min {
			min = e
		}
	}
	return min
}

// GC drops versions superseded before the minimum pinned epoch. For each
// key, every version except the newest one with epoch <= min is deletable.
// Returns the number of versions reclaimed.
func (s *Store) GC() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	min := s.minPinnedLocked()
	reclaimed := 0
	for k, vs := range s.versions {
		// Index of newest entry with epoch <= min.
		i := sort.Search(len(vs), func(i int) bool { return vs[i].epoch > min })
		if i <= 1 {
			// Nothing before the floor version.
			if i == 1 && vs[0].deleted && len(vs) == 1 {
				// Sole version is an old tombstone: drop the key entirely.
				delete(s.versions, k)
				reclaimed++
			}
			continue
		}
		keepFrom := i - 1
		reclaimed += keepFrom
		rest := append([]entry(nil), vs[keepFrom:]...)
		if len(rest) == 1 && rest[0].deleted && rest[0].epoch <= min {
			delete(s.versions, k)
		} else {
			s.versions[k] = rest
		}
	}
	s.gcDeleted += uint64(reclaimed)
	return reclaimed
}

// VersionCount reports the total number of stored versions (for E9 and GC
// tests).
func (s *Store) VersionCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, vs := range s.versions {
		n += len(vs)
	}
	return n
}
