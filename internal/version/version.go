// Package version implements the loosely-consistent versioning system the
// Memex paper layers between its RDBMS metadata and its Berkeley-DB-style
// term stores: a single producer (the crawler) publishes batches of derived
// data; several consumers (the indexer and statistical analyzers) read
// immutable snapshots without ever blocking the producer or each other.
//
// # Architecture: copy-on-write epoch layers
//
// The store's published history is an immutable linked chain of layers,
// newest first, reachable from a single atomic.Pointer:
//
//	current ──> state{watermark, head} ──> layer(e=9) ──> layer(e=8) ──> …
//
// Each Publish freezes the batch's writes into one immutable layer, links
// it into a copy of the chain spine (the maps are shared, never copied),
// and installs the new state with one atomic store — O(batch) work,
// independent of how much data the store holds. Because nothing reachable
// from an installed state is ever mutated, readers need no locks at all:
//
//   - Acquire is a single atomic load of the current state plus one atomic
//     pin increment. The snapshot owns that state forever after.
//   - Snapshot.Get walks the snapshot's own captured chain, skipping
//     layers above its epoch, and returns the first hit. It never touches
//     a store mutex, so reads scale linearly with reader count.
//   - The producer-side mutex serialises Begin/Publish/Abort/GC against
//     each other only; consumers never observe it.
//
// # Watermark contiguity
//
// Epochs are allocated by Begin and may complete out of order. The
// watermark — the epoch new snapshots pin — only advances over
// *contiguously* completed epochs (published or aborted). A higher epoch
// that publishes while a lower one is still open is linked into the chain
// but stays invisible (snapshots skip layers above their epoch) until the
// gap closes. This closes the consistency hole where a late low-epoch
// publish would otherwise insert entries below an already-pinned snapshot
// epoch and mutate a live snapshot: here a pinned snapshot's chain is
// frozen, and the watermark never ran ahead of the gap in the first place.
//
// # GC policy
//
// GC (run off the hot path, e.g. by a periodic demon) compacts every
// layer at or below the minimum pinned epoch into one base layer,
// dropping superseded versions and dangling tombstones, then installs the
// compacted chain atomically. Snapshots pinned on older states keep their
// captured chains — compaction can never invalidate them — so GC is pure
// compaction, never a data hazard. Memory for superseded states is
// reclaimed by the Go runtime once the last pinning snapshot releases.
//
// Consistency guarantee (verified by experiment E9): a snapshot never
// observes a partially published batch, and two reads of the same key
// from one snapshot always agree.
package version

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// entry is one staged or published value. A zero-length chain position
// never exists: absence of the key in every layer means "never written".
type entry struct {
	value   []byte
	deleted bool
}

// layer is one published batch frozen as an immutable map. next points at
// the next-older layer (strictly smaller epoch). Neither field is ever
// written after the layer is linked into an installed state.
type layer struct {
	epoch   uint64
	entries map[string]entry
	// tombs counts deleted entries, so compaction can tell an idle
	// tombstone-free chain apart without rescanning every entry.
	tombs int
	next  *layer
}

// state is one immutable published view of the store. pins counts the
// snapshots currently holding it (used only as the GC compaction floor —
// correctness of pinned reads never depends on it).
type state struct {
	watermark uint64
	head      *layer
	// depth is the chain length, maintained so Publish can trigger
	// amortized auto-compaction when reads would otherwise degrade.
	depth int
	pins  atomic.Int64
}

// Store is an in-memory multi-version key-value map with watermark
// publication. The Memex demons keep derived statistics here; bulk data
// lives in kvstore, keyed by epoch, with Store coordinating visibility.
type Store struct {
	current atomic.Pointer[state]

	// mu guards the producer/GC side only: epoch allocation, the
	// completed-epoch set, and the pinned-state history. Snapshot reads
	// never acquire it.
	mu        sync.Mutex
	nextEpoch uint64
	// completed holds published/aborted epochs above the watermark,
	// waiting for the gap below them to close.
	completed map[uint64]bool
	// history lists states that may still be pinned (plus the current
	// one). Publish appends; Publish and GC prune unpinned entries.
	history     []*state
	gcReclaimed uint64
	// compactAt is the chain depth at which Publish triggers inline
	// compaction — the backstop for stores whose owner never calls GC.
	// Raised past the post-compaction depth so a long-pinned snapshot
	// (which caps how much compaction can reclaim) cannot make every
	// Publish retry a futile O(depth) merge.
	compactAt int
}

// maxHistory bounds how many superseded states Publish tolerates before
// pruning unpinned ones inline (GC prunes too; this is the backstop for
// stores that publish heavily between GCs).
const maxHistory = 1024

// autoCompactDepth is the default chain depth that triggers inline
// compaction during Publish.
const autoCompactDepth = 1024

// NewStore returns an empty versioned store at watermark 0.
func NewStore() *Store {
	s := &Store{
		nextEpoch: 1,
		completed: make(map[uint64]bool),
		compactAt: autoCompactDepth,
	}
	st := &state{}
	s.current.Store(st)
	s.history = append(s.history, st)
	return s
}

type batchStage uint8

const (
	batchActive batchStage = iota
	batchPublished
	batchAborted
)

// Batch stages writes for one epoch. Batches are created by the single
// producer; creating a batch does not block consumers. A Batch is not
// safe for concurrent use; distinct batches are.
type Batch struct {
	s      *Store
	epoch  uint64
	writes map[string]entry
	stage  batchStage
}

// Begin opens a new batch at the next epoch. Only one producer may be
// active; Begin enforces nothing about callers, matching the paper's
// single-producer design, but concurrent batches are safe — they simply
// publish in epoch order acquired here, and the watermark waits for the
// slowest of them (see the contiguity rule in the package doc).
func (s *Store) Begin() *Batch {
	return s.BeginSized(0)
}

// BeginSized is Begin with a capacity hint for the number of staged
// writes, sparing the producer incremental map growth on hot batches.
func (s *Store) BeginSized(hint int) *Batch {
	s.mu.Lock()
	epoch := s.nextEpoch
	s.nextEpoch++
	s.mu.Unlock()
	return &Batch{s: s, epoch: epoch, writes: make(map[string]entry, hint)}
}

// mustActive panics when the batch has already been published or aborted.
// Staging into a finished batch was previously either a nil-map panic
// (after Abort) or a silent no-op whose writes never landed (after
// Publish); both are programming errors and now fail loudly the same way.
func (b *Batch) mustActive(op string) {
	switch b.stage {
	case batchPublished:
		panic("version: " + op + " on already-published batch")
	case batchAborted:
		panic("version: " + op + " on aborted batch")
	}
}

// Put stages key→value in the batch. It panics if the batch was already
// published or aborted.
func (b *Batch) Put(key string, value []byte) {
	b.mustActive("Put")
	b.writes[key] = entry{value: value}
}

// Delete stages a tombstone for key. It panics if the batch was already
// published or aborted.
func (b *Batch) Delete(key string) {
	b.mustActive("Delete")
	b.writes[key] = entry{deleted: true}
}

// Len returns the number of staged writes.
func (b *Batch) Len() int { return len(b.writes) }

// Epoch returns the epoch this batch will publish at.
func (b *Batch) Epoch() uint64 { return b.epoch }

// Publish freezes the batch into an immutable layer, links it into the
// chain, and — when every lower epoch has completed — atomically advances
// the watermark so new snapshots observe it. Publish never blocks or
// invalidates concurrent snapshot reads.
func (b *Batch) Publish() error {
	switch b.stage {
	case batchPublished:
		return fmt.Errorf("version: batch already published")
	case batchAborted:
		return fmt.Errorf("version: batch already aborted")
	}
	b.stage = batchPublished
	writes := b.writes
	b.writes = nil // the layer owns the map now; Put would panic anyway

	s := b.s
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.current.Load()
	head, depth := cur.head, cur.depth
	if len(writes) > 0 {
		tombs := 0
		for _, e := range writes {
			if e.deleted {
				tombs++
			}
		}
		head = insertLayer(head, &layer{epoch: b.epoch, entries: writes, tombs: tombs})
		depth++
	}
	s.completed[b.epoch] = true
	s.installLocked(head, depth, cur.watermark)
	// Amortized backstop for stores whose owner never calls GC: once the
	// chain is deep enough to hurt reads, compact inline and move the
	// trigger past whatever depth pinned snapshots forced us to keep.
	if depth >= s.compactAt {
		s.compactLocked()
		s.compactAt = s.current.Load().depth + autoCompactDepth
	}
	return nil
}

// Abort discards the batch. The epoch still counts as completed so an
// abandoned batch cannot stall the watermark forever. Abort after Publish
// is a no-op (supporting `defer b.Abort()` cleanup patterns).
func (b *Batch) Abort() {
	if b.stage != batchActive {
		return
	}
	b.stage = batchAborted
	b.writes = nil
	s := b.s
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.current.Load()
	s.completed[b.epoch] = true
	s.installLocked(cur.head, cur.depth, cur.watermark)
}

// installLocked advances the watermark over contiguously completed epochs
// and installs a new state when anything changed. Caller holds mu.
func (s *Store) installLocked(head *layer, depth int, watermark uint64) {
	advanced := false
	for s.completed[watermark+1] {
		delete(s.completed, watermark+1)
		watermark++
		advanced = true
	}
	cur := s.current.Load()
	if !advanced && head == cur.head {
		return
	}
	next := &state{watermark: watermark, head: head, depth: depth}
	s.current.Store(next)
	s.history = append(s.history, next)
	if len(s.history) > maxHistory {
		s.pruneHistoryLocked(next)
	}
}

// pruneHistoryLocked drops superseded states no snapshot is pinning.
// Caller holds mu.
func (s *Store) pruneHistoryLocked(cur *state) {
	live := s.history[:0]
	for _, st := range s.history {
		if st == cur || st.pins.Load() > 0 {
			live = append(live, st)
		}
	}
	for i := len(live); i < len(s.history); i++ {
		s.history[i] = nil
	}
	s.history = live
}

// insertLayer links l into the newest-first chain, path-copying only the
// spine nodes above it (their entry maps are shared). In the common
// in-order case l becomes the new head in O(1); an out-of-order publish
// copies one node per already-published higher epoch.
func insertLayer(head *layer, l *layer) *layer {
	if head == nil || l.epoch > head.epoch {
		l.next = head
		return l
	}
	var above []*layer
	cur := head
	for cur != nil && cur.epoch > l.epoch {
		above = append(above, cur)
		cur = cur.next
	}
	l.next = cur
	newHead := l
	for i := len(above) - 1; i >= 0; i-- {
		newHead = &layer{epoch: above[i].epoch, entries: above[i].entries, tombs: above[i].tombs, next: newHead}
	}
	return newHead
}

// Snapshot is a consistent read view pinned at one epoch. Get and Keys
// are lock-free: they walk the snapshot's own captured layer chain, which
// no publish or GC ever mutates.
type Snapshot struct {
	st    *state
	epoch uint64
}

// Acquire pins a snapshot at the current watermark: one atomic load plus
// one atomic pin increment, never a lock.
func (s *Store) Acquire() *Snapshot {
	st := s.current.Load()
	st.pins.Add(1)
	return &Snapshot{st: st, epoch: st.watermark}
}

// Epoch returns the snapshot's pinned epoch (valid even after Release).
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// view returns the pinned state or fails loudly on use-after-Release.
// Before this check a released snapshot would silently read whatever the
// store had GC'd under it; now misuse is an immediate diagnostic.
func (sn *Snapshot) view(op string) *state {
	st := sn.st
	if st == nil {
		panic("version: " + op + " on released snapshot")
	}
	return st
}

// Get returns the newest value for key with epoch <= the snapshot epoch.
// It panics if the snapshot was released.
func (sn *Snapshot) Get(key string) ([]byte, bool) {
	st := sn.view("Get")
	for l := st.head; l != nil; l = l.next {
		if l.epoch > st.watermark {
			continue
		}
		if e, ok := l.entries[key]; ok {
			if e.deleted {
				return nil, false
			}
			return e.value, true
		}
	}
	return nil, false
}

// Keys returns all live keys visible in the snapshot, sorted. It panics
// if the snapshot was released.
func (sn *Snapshot) Keys() []string {
	st := sn.view("Keys")
	seen := make(map[string]bool)
	var keys []string
	for l := st.head; l != nil; l = l.next {
		if l.epoch > st.watermark {
			continue
		}
		for k, e := range l.entries {
			if seen[k] {
				continue
			}
			seen[k] = true
			if !e.deleted {
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// Release unpins the snapshot, letting GC compact past its epoch and the
// runtime reclaim its layers. Release is idempotent; Get/Keys after
// Release panic.
func (sn *Snapshot) Release() {
	if sn.st == nil {
		return
	}
	sn.st.pins.Add(-1)
	sn.st = nil
}

// Watermark returns the current published epoch (lock-free).
func (s *Store) Watermark() uint64 {
	return s.current.Load().watermark
}

// GC compacts layers at or below the minimum pinned epoch, dropping
// superseded versions and tombstones with nothing left to shadow. It
// runs entirely off the read path: snapshots keep their captured chains,
// and the compacted chain is installed with one atomic store. Returns
// the number of versions reclaimed.
func (s *Store) GC() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// compactLocked is the compaction body, shared by GC and the Publish
// depth backstop. Caller holds mu.
//
// Compaction is tiered so a periodic GC tick costs O(data published
// since the last tick), not O(store): every non-base layer at or below
// the pin floor first merges into one mid layer; the mid layer folds
// into the (potentially huge) base only when that pays — it shadows or
// deletes base keys, or has grown to a fair fraction of the base.
// Until a fold, the base map is shared untouched across compactions.
func (s *Store) compactLocked() int {
	cur := s.current.Load()
	s.pruneHistoryLocked(cur)
	floor := cur.watermark
	for _, st := range s.history {
		if st.pins.Load() > 0 && st.watermark < floor {
			floor = st.watermark
		}
	}

	// Split the chain at the floor: the spine above stays untouched.
	var above []*layer
	mergeHead := cur.head
	for mergeHead != nil && mergeHead.epoch > floor {
		above = append(above, mergeHead)
		mergeHead = mergeHead.next
	}
	if mergeHead == nil {
		return 0
	}
	var uppers []*layer
	base := mergeHead
	for base.next != nil {
		uppers = append(uppers, base)
		base = base.next
	}
	if len(uppers) == 0 && base.tombs == 0 {
		return 0 // single tombstone-free base: nothing to do
	}
	pre := len(base.entries)
	for _, l := range uppers {
		pre += len(l.entries)
	}

	// Tier 1: collapse the non-base layers into one mid layer
	// (newest-first, first write wins). A single upper needs no copy.
	var mid *layer
	switch {
	case len(uppers) == 1:
		mid = uppers[0]
	case len(uppers) > 1:
		entries := make(map[string]entry, len(uppers[len(uppers)-1].entries))
		tombs := 0
		for _, l := range uppers {
			for k, e := range l.entries {
				if _, ok := entries[k]; !ok {
					entries[k] = e
					if e.deleted {
						tombs++
					}
				}
			}
		}
		mid = &layer{epoch: uppers[0].epoch, entries: entries, tombs: tombs}
	}

	// Tier 2: fold mid into the base when it reclaims something
	// (tombstones, or keys shadowing base versions) or when mid has
	// grown to ≥1/4 of the base (bounding read depth and amortizing the
	// base copy).
	fold := base.tombs > 0
	if mid != nil && !fold {
		fold = mid.tombs > 0 || len(mid.entries)*4 >= len(base.entries)
		if !fold {
			for k := range mid.entries {
				if _, ok := base.entries[k]; ok {
					fold = true
					break
				}
			}
		}
	}

	// Assemble the new bottom of the chain. Shared layers (the base, or
	// a single upper already in place) are never written — only freshly
	// built layers get linked.
	var newHead *layer
	post := 0
	depth := len(above)
	if fold {
		merged := make(map[string]entry, len(base.entries)+8)
		for k, e := range base.entries {
			merged[k] = e
		}
		epoch := base.epoch
		if mid != nil {
			for k, e := range mid.entries {
				merged[k] = e
			}
			epoch = mid.epoch
		}
		// The folded layer is the true bottom: tombstones shadow nothing.
		for k, e := range merged {
			if e.deleted {
				delete(merged, k)
			}
		}
		if len(merged) > 0 {
			newHead = &layer{epoch: epoch, entries: merged}
			post = len(merged)
			depth++
		}
	} else {
		if len(uppers) == 1 {
			return 0 // chain already has the [single-upper, base] shape
		}
		mid.next = base // mid is freshly built above; base is shared, untouched
		newHead = mid
		post = len(mid.entries) + len(base.entries)
		depth += 2
	}
	for i := len(above) - 1; i >= 0; i-- {
		newHead = &layer{epoch: above[i].epoch, entries: above[i].entries, tombs: above[i].tombs, next: newHead}
	}
	reclaimed := pre - post
	next := &state{watermark: cur.watermark, head: newHead, depth: depth}
	s.current.Store(next)
	s.history = append(s.history, next)
	s.gcReclaimed += uint64(reclaimed)
	return reclaimed
}

// VersionCount reports the total number of stored versions across the
// current chain (for E9 and GC tests). Lock-free.
func (s *Store) VersionCount() int {
	n := 0
	for l := s.current.Load().head; l != nil; l = l.next {
		n += len(l.entries)
	}
	return n
}

// Stats is a point-in-time summary of the store's shape.
type Stats struct {
	// Watermark is the highest contiguously published epoch.
	Watermark uint64
	// Layers is the current chain length (publishes since compaction).
	Layers int
	// Entries is the total version count across the chain.
	Entries int
	// Pinned is the number of snapshots currently holding a state.
	Pinned int
	// PendingEpochs counts published/aborted epochs still waiting for a
	// lower epoch to complete before the watermark can cover them.
	PendingEpochs int
	// GCReclaimed is the cumulative number of versions compacted away.
	GCReclaimed uint64
}

// StoreStats returns current store statistics.
func (s *Store) StoreStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.current.Load()
	st := Stats{
		Watermark:     cur.watermark,
		PendingEpochs: len(s.completed),
		GCReclaimed:   s.gcReclaimed,
	}
	for l := cur.head; l != nil; l = l.next {
		st.Layers++
		st.Entries += len(l.entries)
	}
	for _, h := range s.history {
		st.Pinned += int(h.pins.Load())
	}
	return st
}
