package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// EpochBatch enforces the torn-publish invariant: all derived records for
// one page — term counts (tf/), out-links (lnk/), in-link records (rin/,
// rin chunks) — must be staged into a single version-store Batch, so one
// atomic Publish installs them in one epoch. Split across batches, a
// snapshot taken between the publishes observes a page's text without its
// place in the link graph (or vice versa), the exact hole PR 2's
// out-of-order-publish fix and PR 4's same-batch adjacency publish closed.
//
// Two shapes are flagged: derived records for the same page staged into
// two different batch variables within one function, and staging into a
// batch after its Publish or Abort.
var EpochBatch = &Analyzer{
	Name: "epochbatch",
	Doc: "check that a page's derived records (tf/, lnk/, rin*) are staged into one Batch " +
		"and that no batch is used after Publish/Abort",
	Run: runEpochBatch,
}

func runEpochBatch(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDerivedSplit(pass, fn.Body)
			checkUseAfterFinish(pass, fn.Body)
		}
	}
	return nil
}

// derivedPut is one b.Put(...) of a derived record.
type derivedPut struct {
	batch  string // textual batch expression
	family string // "tf", "lnk", "rin"
	page   string // textual page expression
	call   *ast.CallExpr
}

// checkDerivedSplit flags derived records for one page staged into more
// than one batch in the same function.
func checkDerivedSplit(pass *Pass, body *ast.BlockStmt) {
	var puts []derivedPut
	ast.Inspect(body, func(n ast.Node) bool {
		recv, name, call, ok := methodCall(n)
		if !ok || name != "Put" || len(call.Args) < 1 || !isBatchExpr(pass, recv) {
			return true
		}
		family, page, ok := derivedKey(call.Args[0])
		if !ok {
			return true
		}
		puts = append(puts, derivedPut{
			batch:  types.ExprString(recv),
			family: family,
			page:   page,
			call:   call,
		})
		return true
	})

	firstBatch := make(map[string]derivedPut) // page → first staging
	for _, p := range puts {
		prev, seen := firstBatch[p.page]
		if !seen {
			firstBatch[p.page] = p
			continue
		}
		if prev.batch != p.batch {
			pass.Reportf(p.call.Pos(),
				"derived %s/ record for page %s staged into %s, but its %s/ record went into %s: all derived records for one page must publish in a single batch",
				p.family, p.page, p.batch, prev.family, prev.batch)
		}
	}
}

// checkUseAfterFinish flags staging into a batch after Publish/Abort in
// the same statement list. Deferred calls are excluded (defer b.Abort()
// as a panic guard is the publish path's own idiom), as are goroutine
// bodies; rebinding the variable to a fresh batch clears its state.
func checkUseAfterFinish(pass *Pass, body *ast.BlockStmt) {
	for _, list := range stmtLists(body) {
		finished := make(map[string]string) // batch expr → "Publish"/"Abort"
		for _, stmt := range list {
			// A statement that rebinds the variable (b := s.Begin() inside
			// a loop body) holds a fresh batch: forget the old fate first.
			inspectLive(stmt, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok {
					for _, lhs := range as.Lhs {
						delete(finished, types.ExprString(lhs))
					}
				}
				return true
			})
			// Staging checked before finishing so `b.Put(..); b.Publish()`
			// in one statement list stays legal even via compound stmts.
			inspectLive(stmt, func(n ast.Node) bool {
				recv, name, call, ok := methodCall(n)
				if !ok || !isBatchExpr(pass, recv) {
					return true
				}
				key := types.ExprString(recv)
				switch name {
				case "Put", "Delete":
					if how, done := finished[key]; done {
						pass.Reportf(call.Pos(), "%s.%s after %s.%s: a finished batch must not be reused; begin a new batch",
							key, name, key, how)
					}
				}
				return true
			})
			inspectLive(stmt, func(n ast.Node) bool {
				recv, name, _, ok := methodCall(n)
				if !ok || !isBatchExpr(pass, recv) {
					return true
				}
				if name == "Publish" || name == "Abort" {
					finished[types.ExprString(recv)] = name
				}
				return true
			})
		}
	}
}

// inspectLive walks the subtree like ast.Inspect but skips deferred calls
// and goroutine bodies, which do not execute at their syntactic position.
func inspectLive(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return false
		}
		return f(m)
	})
}

// isBatchExpr reports whether e is a version-store batch: its type carries
// both Put and Publish methods.
func isBatchExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	return hasMethod(pass.Pkg, tv.Type, "Put") && hasMethod(pass.Pkg, tv.Type, "Publish")
}

// derivedKey classifies a Put key argument as one of the derived-record
// families, returning the family and a textual identity for the page.
func derivedKey(arg ast.Expr) (family, page string, ok bool) {
	switch a := arg.(type) {
	case *ast.CallExpr:
		var name string
		switch fun := a.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		default:
			return "", "", false
		}
		fam, known := keyHelperFamily(name)
		if !known || len(a.Args) == 0 {
			return "", "", false
		}
		return fam, types.ExprString(a.Args[0]), true

	case *ast.BasicLit:
		if a.Kind.String() != "STRING" {
			return "", "", false
		}
		return literalFamily(a.Value)

	case *ast.BinaryExpr:
		// "tf/" + strconv.FormatInt(page, 10)
		lit, isLit := a.X.(*ast.BasicLit)
		if !isLit {
			return "", "", false
		}
		fam, _, known := literalFamily(lit.Value)
		if !known {
			return "", "", false
		}
		return fam, types.ExprString(a.Y), true
	}
	return "", "", false
}

func keyHelperFamily(name string) (string, bool) {
	switch name {
	case "tfKey":
		return "tf", true
	case "lnkKey":
		return "lnk", true
	case "rinKey", "rinChunkKey":
		return "rin", true
	}
	return "", false
}

func literalFamily(quoted string) (family, page string, ok bool) {
	s := strings.Trim(quoted, "`\"")
	for _, fam := range []string{"tf", "lnk", "rin"} {
		if strings.HasPrefix(s, fam+"/") {
			return fam, strings.TrimPrefix(s, fam+"/"), true
		}
	}
	return "", "", false
}
