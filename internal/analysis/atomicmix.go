package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// AtomicMix enforces all-or-nothing atomicity on struct fields: a field
// that is accessed through sync/atomic functions (atomic.AddUint64,
// atomic.LoadInt64, …) anywhere in the package must never be read or
// written plainly anywhere else. Mixed access is a silent torn-read bug:
// the plain read compiles to an ordinary load that can observe a half
// of a concurrent atomic update (or be hoisted out of a loop entirely),
// and the race detector only reports it if a run actually interleaves —
// the exact class the internal/server metrics counters are built to
// avoid, and the reason they use the typed atomic.Uint64 wrappers, which
// make plain access a compile error instead of a latent race.
//
// The typed sync/atomic wrapper types need no analyzer; this one exists
// for the legacy function-based API, where nothing stops `s.n++` next to
// `atomic.AddUint64(&s.n, 1)`.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "check that a struct field accessed via sync/atomic functions is never " +
		"read or written plainly elsewhere (use the typed atomic wrappers)",
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: collect every field object that appears as &x.f in a
	// sync/atomic function call, with one representative position.
	atomicFields := map[types.Object]ast.Node{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(pass.TypesInfo, call) {
				return true
			}
			for _, arg := range call.Args {
				if fld := addrOfField(pass.TypesInfo, arg); fld != nil {
					if _, seen := atomicFields[fld]; !seen {
						atomicFields[fld] = call
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other selector resolving to one of those fields is a
	// plain access unless it sits inside a sync/atomic call's argument
	// (the &x.f of the atomic op itself).
	type finding struct {
		sel *ast.SelectorExpr
		fld types.Object
	}
	var finds []finding
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := selectedField(pass.TypesInfo, sel)
			if fld == nil {
				return true
			}
			if _, tracked := atomicFields[fld]; !tracked {
				return true
			}
			if underAtomicCall(pass.TypesInfo, stack) {
				return true
			}
			finds = append(finds, finding{sel, fld})
			return true
		})
	}

	// Deterministic order regardless of file walk interleavings.
	sort.Slice(finds, func(i, j int) bool { return finds[i].sel.Pos() < finds[j].sel.Pos() })
	for _, fd := range finds {
		atPos := pass.Fset.Position(atomicFields[fd.fld].Pos())
		pass.Reportf(fd.sel.Pos(),
			"plain access to %s.%s, which is updated via sync/atomic at %s:%d: mixed access tears reads; use atomic ops (or the typed atomic wrappers) everywhere",
			fieldOwnerName(fd.fld), fd.fld.Name(), atPos.Filename, atPos.Line)
	}
	return nil
}

// isAtomicFuncCall reports whether call invokes a package-level function
// of sync/atomic (not a method of the typed wrappers).
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := usedObject(info, sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	// Wrapper methods (atomic.Uint64.Add, …) have a receiver; the legacy
	// functions do not.
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addrOfField unpacks &x.f (possibly parenthesized) to the field object.
func addrOfField(info *types.Info, arg ast.Expr) types.Object {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op.String() != "&" {
		return nil
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return selectedField(info, sel)
}

// selectedField resolves sel to a struct field object, or nil.
func selectedField(info *types.Info, sel *ast.SelectorExpr) types.Object {
	if s := info.Selections[sel]; s != nil {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	if v, ok := usedObject(info, sel.Sel).(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// underAtomicCall reports whether the node whose ancestor stack is given
// sits inside the arguments of a sync/atomic function call.
func underAtomicCall(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		if isAtomicFuncCall(info, call) {
			return true
		}
	}
	return false
}

// fieldOwnerName names the struct type declaring the field, best-effort,
// for the diagnostic.
func fieldOwnerName(fld types.Object) string {
	if pkg := fld.Pkg(); pkg != nil {
		// Field objects do not point back at their struct; search the
		// package scope for a named type that declares this field.
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == fld {
					return tn.Name()
				}
			}
		}
	}
	return "struct"
}
