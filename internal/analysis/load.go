package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Loading. The module has no dependency on golang.org/x/tools/go/packages,
// so type information comes from the toolchain itself: `go list -deps
// -export` compiles (or reuses from the build cache) export data for every
// package in the dependency closure, and the gc importer reads it back.
// Target packages — the ones actually analyzed — are re-parsed and
// type-checked from source so analyzers see full syntax with comments.

// A Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info

	// TypeErrors holds soft type-checking errors. Analysis proceeds with
	// partial information; callers decide whether these are fatal.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (as the go tool would, from dir) and returns the
// matched packages, parsed and type-checked. Dependencies are imported
// from export data; only matched packages get syntax. Test files are not
// included (`go list`'s GoFiles excludes them), matching `go vet`'s
// compilation-unit view of a package's library sources.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var filenames []string
		for _, f := range lp.GoFiles {
			filenames = append(filenames, filepath.Join(lp.Dir, f))
		}
		pkg, err := TypeCheck(fset, lp.ImportPath, filenames, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = lp.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := []string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var listed []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// exportImporter returns a types.Importer that resolves imports through the
// export files produced by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return unsafeImporter{gc}
}

// unsafeImporter handles package unsafe, which has no export data.
type unsafeImporter struct{ inner types.Importer }

func (i unsafeImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.inner.Import(path)
}

// TypeCheck parses filenames and type-checks them as one package, using
// imp to resolve imports. Type errors are collected into
// Package.TypeErrors rather than aborting, so analysis can proceed on
// partially broken code.
func TypeCheck(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", fn, err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		ImportPath: path,
		Fset:       fset,
		Files:      files,
		TypesInfo: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, fset, files, pkg.TypesInfo)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
