package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"
)

// Golden-test harness in the style of x/tools' analysistest: fixture
// packages under testdata/ carry `// want "regexp"` comments on the lines
// an analyzer must flag; the harness runs the analyzer through the full
// suppression layer and diffs findings against expectations, so fixtures
// exercise true positives, sanctioned patterns, and //memexvet:ignore in
// one place.

// wantRE extracts the quoted regexps of a `// want "a"` or a backquoted
// `// want ...` comment (strconv.Unquote handles both forms).
var wantRE = regexp.MustCompile("//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")

var wantArgRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// RunGolden type-checks the one-package fixture directory and verifies
// that analyzer (plus the suppression meta-checks) produces exactly the
// diagnostics its `// want` comments promise.
func RunGolden(t *testing.T, analyzer *Analyzer, dir string) {
	t.Helper()

	filenames, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(filenames) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(filenames)

	pkg, err := loadFixture(dir, filenames)
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture does not type-check: %v", terr)
	}
	if t.Failed() {
		t.FailNow()
	}

	diags, err := RunPackage(pkg, []*Analyzer{analyzer})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, q := range wantArgRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		found := false
		for _, re := range wants[k] {
			if !matched[re] && re.MatchString(d.Message) {
				matched[re] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// loadFixture type-checks fixture files, resolving their (stdlib-only)
// imports through `go list -export` like the real loader.
func loadFixture(dir string, filenames []string) (*Package, error) {
	fset := token.NewFileSet()
	imports := make(map[string]bool)
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			if path != "unsafe" {
				imports[path] = true
			}
		}
	}

	exports := make(map[string]string)
	if len(imports) > 0 {
		patterns := make([]string, 0, len(imports))
		for p := range imports {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := goList(dir, patterns)
		if err != nil {
			return nil, fmt.Errorf("resolving fixture imports: %w", err)
		}
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}

	fset = token.NewFileSet()
	return TypeCheck(fset, "fixture", filenames, exportImporter(fset, exports))
}
