package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PinLeak enforces the version store's pin lifecycle: every call that pins
// a snapshot (Store.Acquire, Engine.DerivedSnapshot — recognized as any
// method of those names whose result has a Release method) must release it
// on all paths. A leaked pin silently freezes the GC fold floor: layers
// behind the pinned epoch can never be compacted or folded to the cold
// tier for the life of the process.
//
// Acquisition sites are classified syntactically (discarded result,
// chained call, blank assignment, ownership escape); the "released on all
// paths" question itself runs as a forward may-analysis over the
// function's CFG, so branch-structured releases, loops that re-acquire,
// and early returns are all answered by path reachability instead of the
// old single-statement-list approximation.
var PinLeak = &Analyzer{
	Name: "pinleak",
	Doc: "check that every Acquire/DerivedSnapshot pin is released on all paths " +
		"(defer, a dominating explicit Release, or ownership transfer)",
	Run: runPinLeak,
}

// acquireMethods are the method names that create a pin.
var acquireMethods = map[string]bool{
	"Acquire":         true,
	"DerivedSnapshot": true,
}

// Pin states for the dataflow. Higher is worse: a merge point keeps the
// pinned state if any incoming path still holds the pin.
const (
	pinBottom   = 0 // not acquired on this path
	pinReleased = 1 // released, or ownership handed off
	pinPinned   = 2 // held and unreleased
)

func runPinLeak(pass *Pass) error {
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			_, name, call, ok := methodCall(n)
			if !ok || !acquireMethods[name] {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call]
			if !ok || !hasMethod(pass.Pkg, tv.Type, "Release") {
				return true
			}
			checkAcquisition(pass, name, call, stack)
			return true
		})
	}
	return nil
}

// checkAcquisition classifies one pin-creating call by how its result is
// consumed and reports it if the pin can leak.
func checkAcquisition(pass *Pass, name string, call *ast.CallExpr, stack []ast.Node) {
	parent := ast.Node(nil)
	for i := len(stack) - 1; i >= 0; i-- {
		if _, isParen := stack[i].(*ast.ParenExpr); isParen {
			continue
		}
		parent = stack[i]
		break
	}

	switch p := parent.(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "result of %s() is discarded: the pin is never released and freezes the GC floor", name)

	case *ast.SelectorExpr:
		if p.Sel.Name == "Release" {
			// s.Acquire().Release(): the pin dies in the same expression
			// that created it (the acquire/release micro-benchmark shape).
			return
		}
		// s.Acquire().Get(k): the temporary pin has no name, so nothing
		// can ever release it.
		pass.Reportf(call.Pos(), "%s() result is consumed without being stored: the pin can never be released", name)

	case *ast.AssignStmt:
		if len(p.Lhs) != 1 || len(p.Rhs) != 1 {
			return
		}
		id, isIdent := p.Lhs[0].(*ast.Ident)
		if !isIdent {
			return // stored into a field or index: ownership transfers
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "result of %s() is assigned to _: the pin is never released", name)
			return
		}
		checkPinnedVar(pass, call, id, stack)

	default:
		// Return value, composite literal, call argument, channel send…
		// — ownership escapes this function; the consumer is responsible.
	}
}

// checkPinnedVar verifies that the variable holding a pin is released on
// all paths within its enclosing function, by running the pin dataflow
// over the function's CFG.
func checkPinnedVar(pass *Pass, call *ast.CallExpr, id *ast.Ident, stack []ast.Node) {
	obj := usedObject(pass.TypesInfo, id)
	if obj == nil {
		return
	}
	body := enclosingFuncBody(stack)
	if body == nil {
		return
	}

	// Deferred releases cover every path by construction, and an
	// escaping use (returned, passed on, stored away) transfers
	// ownership: both end the analysis before any path question arises.
	if deferReleases(pass.TypesInfo, body, obj) || escapes(pass.TypesInfo, body, obj, id) {
		return
	}

	cfg := buildCFG(body)
	res := run(cfg, flowProblem{
		join: joinMax,
		transfer: func(n ast.Node, f facts) {
			// Order matters inside one node: `snap := s.Acquire()` both
			// mentions the call and (re)binds the variable — acquisition
			// wins. A node that releases after acquiring in the same
			// statement does not exist in practice (Release returns
			// nothing), so release is checked first, acquisition last.
			if nodeReleases(pass.TypesInfo, n, obj) {
				f[obj] = pinReleased
			}
			if nodeAcquires(n, call) {
				f[obj] = pinPinned
			}
		},
	})

	releasePos := anyReleasePos(pass.TypesInfo, body, obj)
	for _, exit := range cfg.exits() {
		out := res.out[exit]
		if out == nil || out[obj] != pinPinned {
			continue
		}
		if releasePos == token.NoPos {
			pass.Reportf(call.Pos(), "%s pins a snapshot here but is never released; add defer %s.Release()", id.Name, id.Name)
		} else if ret := exit.Return(); ret != nil {
			pass.Reportf(call.Pos(), "%s is released at line %d, but the return at line %d leaks the pin; use defer %s.Release()",
				id.Name, pass.Fset.Position(releasePos).Line, pass.Fset.Position(ret.Pos()).Line, id.Name)
		} else {
			pass.Reportf(call.Pos(), "%s is released at line %d, but a path reaching the end of the function leaks the pin; use defer %s.Release()",
				id.Name, pass.Fset.Position(releasePos).Line, id.Name)
		}
		return // one report per acquisition
	}
}

// nodeAcquires reports whether n is (or contains, outside closures) the
// acquisition call being checked.
func nodeAcquires(n ast.Node, call *ast.CallExpr) bool {
	found := false
	walkNode(n, func(m ast.Node) bool {
		if m == call {
			found = true
			return false
		}
		return !found
	})
	return found
}

// nodeReleases reports whether executing n runs obj.Release(). Closure
// bodies are included: a helper like walk(func(){ … v.Release() … })
// invoked inline releases just as surely as a direct call, and the old
// syntactic checker accepted those shapes.
func nodeReleases(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if isReleaseCall(info, m, obj) {
			found = true
		}
		return !found
	})
	return found
}

func isReleaseCall(info *types.Info, n ast.Node, obj types.Object) bool {
	recv, name, _, ok := methodCall(n)
	if !ok || name != "Release" {
		return false
	}
	id, isIdent := recv.(*ast.Ident)
	return isIdent && usedObject(info, id) == obj
}

// anyReleasePos returns the position of the first non-deferred
// obj.Release() call in the body, or NoPos.
func anyReleasePos(info *types.Info, body *ast.BlockStmt, obj types.Object) token.Pos {
	pos := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return false
		}
		if isReleaseCall(info, n, obj) {
			pos = n.Pos()
			return false
		}
		return true
	})
	return pos
}

// deferReleases reports whether the function body defers obj.Release(),
// directly or inside a deferred closure.
func deferReleases(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return !found
		}
		if isReleaseCall(info, d.Call, obj) {
			found = true
			return false
		}
		if lit, isLit := d.Call.Fun.(*ast.FuncLit); isLit {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if isReleaseCall(info, m, obj) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// escapes reports whether obj is used in a way that transfers ownership of
// the pin out of this function: returned, passed as an argument, stored
// into a composite literal or another variable. Uses as a method-call or
// field-access receiver do not count.
func escapes(info *types.Info, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	esc := false
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		if esc {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == def || usedObject(info, id) != obj {
			return true
		}
		if len(stack) == 0 {
			return true
		}
		switch p := stack[len(stack)-1].(type) {
		case *ast.SelectorExpr:
			if p.X == id {
				return true // receiver or field access
			}
			esc = true
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == id {
					return true // reassignment target
				}
			}
			esc = true
		case *ast.ValueSpec:
			for _, nm := range p.Names {
				if nm == id {
					return true
				}
			}
			esc = true
		default:
			esc = true
		}
		return true
	})
	return esc
}
