package analysis

import (
	"go/ast"
	"go/types"
)

// PinLeak enforces the version store's pin lifecycle: every call that pins
// a snapshot (Store.Acquire, Engine.DerivedSnapshot — recognized as any
// method of those names whose result has a Release method) must release it
// on all paths. A leaked pin silently freezes the GC fold floor: layers
// behind the pinned epoch can never be compacted or folded to the cold
// tier for the life of the process.
var PinLeak = &Analyzer{
	Name: "pinleak",
	Doc: "check that every Acquire/DerivedSnapshot pin is released on all paths " +
		"(defer, a dominating explicit Release, or ownership transfer)",
	Run: runPinLeak,
}

// acquireMethods are the method names that create a pin.
var acquireMethods = map[string]bool{
	"Acquire":         true,
	"DerivedSnapshot": true,
}

func runPinLeak(pass *Pass) error {
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			_, name, call, ok := methodCall(n)
			if !ok || !acquireMethods[name] {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call]
			if !ok || !hasMethod(pass.Pkg, tv.Type, "Release") {
				return true
			}
			checkAcquisition(pass, name, call, stack)
			return true
		})
	}
	return nil
}

// checkAcquisition classifies one pin-creating call by how its result is
// consumed and reports it if the pin can leak.
func checkAcquisition(pass *Pass, name string, call *ast.CallExpr, stack []ast.Node) {
	parent := ast.Node(nil)
	for i := len(stack) - 1; i >= 0; i-- {
		if _, isParen := stack[i].(*ast.ParenExpr); isParen {
			continue
		}
		parent = stack[i]
		break
	}

	switch p := parent.(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "result of %s() is discarded: the pin is never released and freezes the GC floor", name)

	case *ast.SelectorExpr:
		if p.Sel.Name == "Release" {
			// s.Acquire().Release(): the pin dies in the same expression
			// that created it (the acquire/release micro-benchmark shape).
			return
		}
		// s.Acquire().Get(k): the temporary pin has no name, so nothing
		// can ever release it.
		pass.Reportf(call.Pos(), "%s() result is consumed without being stored: the pin can never be released", name)

	case *ast.AssignStmt:
		if len(p.Lhs) != 1 || len(p.Rhs) != 1 {
			return
		}
		id, isIdent := p.Lhs[0].(*ast.Ident)
		if !isIdent {
			return // stored into a field or index: ownership transfers
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "result of %s() is assigned to _: the pin is never released", name)
			return
		}
		checkPinnedVar(pass, name, call, id, stack)

	default:
		// Return value, composite literal, call argument, channel send…
		// — ownership escapes this function; the consumer is responsible.
	}
}

// checkPinnedVar verifies that the variable holding a pin is released on
// all paths within its enclosing function.
func checkPinnedVar(pass *Pass, name string, call *ast.CallExpr, id *ast.Ident, stack []ast.Node) {
	obj := usedObject(pass.TypesInfo, id)
	if obj == nil {
		return
	}
	body := enclosingFuncBody(stack)
	if body == nil {
		return
	}

	if deferReleases(pass.TypesInfo, body, obj) || escapes(pass.TypesInfo, body, obj, id) {
		return
	}

	// No defer and no escape: demand a dominating explicit Release in the
	// acquisition's own statement list.
	list, idx, _ := enclosingStmtList(stack)
	relIdx := -1
	for j := idx + 1; j < len(list); j++ {
		if isReleaseStmt(pass.TypesInfo, list[j], obj) {
			relIdx = j
			break
		}
	}

	if relIdx < 0 {
		// Tolerate branch-structured releases (an explicit Release on
		// every path of an if/switch) rather than reproducing a dominator
		// analysis: any non-deferred Release in the function counts.
		if anyRelease(pass.TypesInfo, body, obj) {
			return
		}
		pass.Reportf(call.Pos(), "%s pins a snapshot here but is never released; add defer %s.Release()", id.Name, id.Name)
		return
	}

	// Release found downstream in the same list: a return between the
	// acquisition and the Release leaks the pin on that path (unless that
	// branch released first itself).
	for j := idx + 1; j < relIdx; j++ {
		if ret := leakingReturn(pass.TypesInfo, list[j], obj); ret != nil {
			pass.Reportf(call.Pos(), "%s is released at line %d, but the return at line %d leaks the pin; use defer %s.Release()",
				id.Name, pass.Fset.Position(list[relIdx].Pos()).Line, pass.Fset.Position(ret.Pos()).Line, id.Name)
			return
		}
	}
}

// isReleaseStmt reports whether stmt is exactly `obj.Release()`.
func isReleaseStmt(info *types.Info, stmt ast.Stmt, obj types.Object) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	return isReleaseCall(info, es.X, obj)
}

func isReleaseCall(info *types.Info, n ast.Node, obj types.Object) bool {
	recv, name, _, ok := methodCall(n)
	if !ok || name != "Release" {
		return false
	}
	id, isIdent := recv.(*ast.Ident)
	return isIdent && usedObject(info, id) == obj
}

// deferReleases reports whether the function body defers obj.Release(),
// directly or inside a deferred closure.
func deferReleases(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return !found
		}
		if isReleaseCall(info, d.Call, obj) {
			found = true
			return false
		}
		if lit, isLit := d.Call.Fun.(*ast.FuncLit); isLit {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if isReleaseCall(info, m, obj) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// anyRelease reports whether any non-deferred obj.Release() call exists in
// the body.
func anyRelease(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if isReleaseCall(info, n, obj) {
			found = true
		}
		return !found
	})
	return found
}

// escapes reports whether obj is used in a way that transfers ownership of
// the pin out of this function: returned, passed as an argument, stored
// into a composite literal or another variable. Uses as a method-call or
// field-access receiver do not count.
func escapes(info *types.Info, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	esc := false
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		if esc {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == def || usedObject(info, id) != obj {
			return true
		}
		if len(stack) == 0 {
			return true
		}
		switch p := stack[len(stack)-1].(type) {
		case *ast.SelectorExpr:
			if p.X == id {
				return true // receiver or field access
			}
			esc = true
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == id {
					return true // reassignment target
				}
			}
			esc = true
		case *ast.ValueSpec:
			for _, nm := range p.Names {
				if nm == id {
					return true
				}
			}
			esc = true
		default:
			esc = true
		}
		return true
	})
	return esc
}

// leakingReturn finds a return statement inside stmt that is not preceded,
// in its own statement list, by an explicit obj.Release(). Function
// literals are not descended into: their returns exit the closure, not
// the function holding the pin.
func leakingReturn(info *types.Info, stmt ast.Stmt, obj types.Object) *ast.ReturnStmt {
	var leak *ast.ReturnStmt
	if ret, ok := stmt.(*ast.ReturnStmt); ok {
		return ret
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		released := false
		for _, s := range list {
			if isReleaseStmt(info, s, obj) {
				released = true
			}
			if ret, ok := s.(*ast.ReturnStmt); ok && !released && leak == nil {
				leak = ret
			}
		}
		return true
	})
	return leak
}
