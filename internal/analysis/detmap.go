package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// DetMap enforces byte-deterministic codecs: inside encode/marshal
// functions (and any file whose name contains "codec"), iterating a map
// must not influence the encoded output. The version store's restart
// contract compares records byte-for-byte — PR 5's encodeCounts ranged a
// map straight into the output buffer, so equal term maps encoded to
// different bytes across runs and the cold tier rewrote unchanged records
// on every fold.
//
// Two shapes are flagged: writing output bytes inside a map-range body,
// and collecting map keys into a slice that is never sorted afterwards.
// The sanctioned pattern is collect → sort → encode.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc: "check that encode*/marshal*/codec functions never let map iteration order " +
		"reach the encoded bytes (collect keys, sort, then encode)",
	Run: runDetMap,
}

func runDetMap(pass *Pass) error {
	for _, f := range pass.Files {
		file := pass.Fset.Position(f.Pos()).Filename
		codecFile := strings.Contains(strings.ToLower(filepath.Base(file)), "codec")
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !codecFile && !isEncoderName(fn.Name.Name) {
				continue
			}
			checkEncoder(pass, fn)
		}
	}
	return nil
}

func isEncoderName(name string) bool {
	l := strings.ToLower(name)
	return strings.HasPrefix(l, "encode") || strings.HasPrefix(l, "marshal")
}

func checkEncoder(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}

		if writesOutput(pass.TypesInfo, rng.Body) {
			pass.Reportf(rng.Pos(), "%s iterates a map and writes output inside the loop: encoded bytes depend on map order; collect the keys, sort them, then encode",
				fn.Name.Name)
			return true
		}
		for _, obj := range collectedSlices(pass.TypesInfo, rng.Body) {
			if !sortedInFunc(pass.TypesInfo, fn.Body, obj) {
				pass.Reportf(rng.Pos(), "%s collects map keys into %s but never sorts it: whatever consumes %s inherits map iteration order",
					fn.Name.Name, obj.Name(), obj.Name())
			}
		}
		return true
	})
}

// writesOutput reports whether the loop body emits bytes: append to a
// []byte, binary/strconv Append* helpers, Write* methods, or Fprint*.
func writesOutput(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" && len(call.Args) > 0 && isByteSlice(info, call.Args[0]) {
				found = true
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if strings.HasPrefix(name, "Append") || strings.HasPrefix(name, "Fprint") ||
				name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune" {
				found = true
			}
		}
		return !found
	})
	return found
}

func isByteSlice(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// collectedSlices returns the objects of non-byte slices appended to
// inside the loop body (the collect-keys half of collect/sort/encode).
func collectedSlices(info *types.Info, body *ast.BlockStmt) []types.Object {
	var out []types.Object
	seen := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "append" || len(call.Args) == 0 {
			return true
		}
		id, ok := call.Args[0].(*ast.Ident)
		if !ok || isByteSlice(info, id) {
			return true
		}
		if obj := usedObject(info, id); obj != nil && !seen[obj] {
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}

// sortedInFunc reports whether obj appears in the arguments of any
// sort.*/slices.* call in the function body.
func sortedInFunc(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		fn, ok := usedObject(info, sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return !found
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return !found
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, isIdent := m.(*ast.Ident); isIdent && usedObject(info, id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
