package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetSched enforces the load harness's schedule-determinism contract:
// Schedule(seed) must be a pure function of (scenario, seed), so the same
// pair replays byte-identically on any host — the property the CI gate
// checks by diffing `memexload -print-schedule` twice, and the workload
// premise of the robots-vs-humans traffic model. Three impurity sources
// are flagged in schedule-path code (functions whose name contains
// "Schedule", plus every method of a Scenario receiver):
//
//   - wall-clock reads (time.Now/Since/Until);
//   - draws from the global math/rand source, which is shared,
//     lock-protected and seeded per process — per-client generators must
//     come from rand.New(rand.NewSource(derivedSeed));
//   - map iteration reaching the schedule's output, directly or through
//     an unsorted collected slice (the detmap rule, applied to schedule
//     emission rather than codecs).
var DetSched = &Analyzer{
	Name: "detsched",
	Doc: "check that schedule-path code (Schedule* functions, Scenario methods) stays " +
		"a pure function of (scenario, seed): no wall clock, no global math/rand, " +
		"no map-iteration-ordered output",
	Run: runDetSched,
}

func runDetSched(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !schedulePath(fn) {
				continue
			}
			checkSchedulePurity(pass, fn)
		}
	}
	return nil
}

// schedulePath decides whether fn is schedule code: its name mentions
// Schedule, or it is a method on a Scenario.
func schedulePath(fn *ast.FuncDecl) bool {
	if strings.Contains(fn.Name.Name, "Schedule") {
		return true
	}
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return false
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "Scenario"
}

func checkSchedulePurity(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callee := calleeFunc(pass.TypesInfo, n)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			sig, _ := callee.Type().(*types.Signature)
			pkgLevel := sig != nil && sig.Recv() == nil
			switch callee.Pkg().Path() {
			case "time":
				if pkgLevel && (callee.Name() == "Now" || callee.Name() == "Since" || callee.Name() == "Until") {
					pass.Reportf(n.Pos(),
						"%s calls time.%s: a schedule must be a pure function of (scenario, seed), not the wall clock",
						fn.Name.Name, callee.Name())
				}
			case "math/rand", "math/rand/v2":
				// Constructors (New, NewSource, NewZipf, …) build the
				// seeded per-client generators and are the sanctioned
				// pattern; every other package-level call draws from (or
				// reseeds) the shared global source.
				if pkgLevel && !strings.HasPrefix(callee.Name(), "New") {
					pass.Reportf(n.Pos(),
						"%s draws from the global math/rand source via rand.%s: derive a local generator with rand.New(rand.NewSource(seed)) so the schedule replays byte-identically",
						fn.Name.Name, callee.Name())
				}
			}

		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if writesOutput(pass.TypesInfo, n.Body) {
				pass.Reportf(n.Pos(),
					"%s iterates a map while emitting schedule output: iteration order varies per process; collect the keys, sort them, then emit",
					fn.Name.Name)
				return true
			}
			for _, obj := range collectedSlices(pass.TypesInfo, n.Body) {
				if !sortedInFunc(pass.TypesInfo, fn.Body, obj) {
					pass.Reportf(n.Pos(),
						"%s collects map keys into %s but never sorts it: the schedule inherits map iteration order",
						fn.Name.Name, obj.Name())
				}
			}
		}
		return true
	})
}
