package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Intra-procedural control-flow graph construction. The first generation
// of analyzers walked statement lists directly, which made "released on
// all paths" and "committed before this write" questions approximate at
// best: a release inside both arms of an if, a loop that re-acquires, an
// early return threaded through a switch all demand real path knowledge.
// buildCFG turns one function body into basic blocks and successor edges;
// dataflow.go runs fixpoint analyses over the result.
//
// The construction mirrors the shape of golang.org/x/tools/go/cfg but is
// stdlib-only like the rest of the package. Function literals are *not*
// inlined: a closure is its own function with its own CFG (its returns
// exit the closure, its defers run at the closure's exit), so analyzers
// build one CFG per FuncDecl and per FuncLit.

// A CFG is the control-flow graph of one function body. Blocks[0] is the
// entry block. A block with no successors ends the function: either its
// last node is a ReturnStmt, or control falls off the end of the body.
type CFG struct {
	Blocks []*Block

	// Defers lists every defer statement in the body, in syntactic
	// order, including those inside branches. Deferred calls run at
	// function exit, not at their syntactic position, so they are kept
	// out of the block node lists; path-sensitive analyses decide how to
	// interpret a conditional defer.
	Defers []*ast.DeferStmt
}

// A Block is one straight-line run of nodes. Nodes holds statements and
// the control expressions of the branch that ends the block (an if/for
// condition, a switch tag), in execution order. Compound statements are
// never stored whole: their bodies live in other blocks, so a node's
// subtree can be walked without double-visiting nested statements —
// except function literals, which analyses skip or recurse into
// deliberately.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	// kind labels the block's origin for debug dumps and tests.
	kind string
}

// Return returns the ReturnStmt ending the block, or nil.
func (b *Block) Return() *ast.ReturnStmt {
	if len(b.Nodes) == 0 {
		return nil
	}
	ret, _ := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt)
	return ret
}

// builder carries the under-construction graph.
type builder struct {
	cfg *CFG
	cur *Block

	// breakTo / continueTo are the innermost targets for unlabeled
	// break/continue; labels maps a label name to its targets.
	breakTo    *Block
	continueTo *Block
	labels     map[string]*labelTargets

	// gotos are resolved after the walk: the jump block and label name.
	gotos []pendingGoto
	// labelBlocks maps a label to the block its statement starts.
	labelBlocks map[string]*Block

	// pendingLbl is set by the LabeledStmt case just before it descends,
	// so the loop or switch being labeled can register `break L` /
	// `continue L` targets under its own label.
	pendingLbl string
}

type labelTargets struct {
	breakTo    *Block
	continueTo *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// buildCFG constructs the control-flow graph of a function body.
func buildCFG(body *ast.BlockStmt) *CFG {
	b := &builder{
		cfg:         &CFG{},
		labels:      map[string]*labelTargets{},
		labelBlocks: map[string]*Block{},
	}
	b.cur = b.newBlock("entry")
	b.stmtList(body.List)
	for _, g := range b.gotos {
		if target, ok := b.labelBlocks[g.label]; ok {
			b.edge(g.from, target)
		}
	}
	return b.cfg
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// add appends a node to the current block. After a terminator (return,
// break, …) b.cur is nil; a following statement is unreachable and gets
// a fresh, predecessor-less block, matching go/cfg's behavior.
func (b *builder) add(n ast.Node) {
	b.pendingLbl = "" // a label on a plain statement only matters to goto
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		after := b.newBlock("if.after")

		thenBlk := b.newBlock("if.then")
		b.edge(cond, thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)

		if s.Else != nil {
			elseBlk := b.newBlock("if.else")
			b.edge(cond, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock("for.after")
		if s.Cond != nil {
			b.edge(head, after)
		}
		// `for { … }` with no condition only exits via break/return.

		bodyBlk := b.newBlock("for.body")
		b.edge(head, bodyBlk)

		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.pushLoop(label, after, post, func() {
			b.cur = bodyBlk
			b.stmtList(s.Body.List)
			b.edge(b.cur, post)
		})
		if s.Post != nil {
			b.cur = post
			b.add(s.Post)
			b.edge(post, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock("range.head")
		b.edge(b.cur, head)
		after := b.newBlock("range.after")
		b.edge(head, after)
		bodyBlk := b.newBlock("range.body")
		b.edge(head, bodyBlk)
		b.pushLoop(label, after, head, func() {
			b.cur = bodyBlk
			b.stmtList(s.Body.List)
			b.edge(b.cur, head)
		})
		b.cur = after

	case *ast.SwitchStmt:
		b.switchLike(s, s.Init, s.Tag, s.Body, b.takeLabel())

	case *ast.TypeSwitchStmt:
		b.switchLike(s, s.Init, nil, s.Body, b.takeLabel())

	case *ast.SelectStmt:
		b.takeLabel()
		sel := b.cur
		if sel == nil {
			sel = b.newBlock("unreachable")
			b.cur = sel
		}
		after := b.newBlock("select.after")
		prevBreak := b.breakTo
		b.breakTo = after
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock("select.case")
			b.edge(sel, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.breakTo = prevBreak
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.add(s)
			b.edge(b.cur, b.branchTarget(s, true))
			b.cur = nil
		case token.CONTINUE:
			b.add(s)
			b.edge(b.cur, b.branchTarget(s, false))
			b.cur = nil
		case token.GOTO:
			b.add(s)
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// switchLike wires fallthrough edges; nothing to do here.
			b.add(s)
		}

	case *ast.LabeledStmt:
		blk := b.newBlock("label." + s.Label.Name)
		b.edge(b.cur, blk)
		b.cur = blk
		b.labelBlocks[s.Label.Name] = blk
		b.pendingLbl = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.GoStmt:
		// The spawned goroutine runs elsewhere; the statement itself is a
		// node so analyses can see the spawn site.
		b.add(s)

	default:
		// Assignments, declarations, expression statements, sends,
		// inc/dec, empty statements: straight-line nodes.
		b.add(s)
	}
}

// switchLike builds switch and type-switch graphs: every case is a
// successor of the dispatch block; a missing default adds a direct edge
// to the after block; fallthrough chains case bodies.
func (b *builder) switchLike(s ast.Stmt, init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, label string) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if ts, ok := s.(*ast.TypeSwitchStmt); ok && ts.Assign != nil {
		b.add(ts.Assign)
	}
	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.newBlock("unreachable")
		b.cur = dispatch
	}
	after := b.newBlock("switch.after")

	prevBreak := b.breakTo
	b.breakTo = after
	if label != "" {
		b.labels[label] = &labelTargets{breakTo: after}
	}

	type caseBlk struct {
		blk  *Block
		body []ast.Stmt
	}
	var cases []caseBlk
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock("switch.case")
		b.edge(dispatch, blk)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		cases = append(cases, caseBlk{blk, cc.Body})
	}
	if !hasDefault {
		b.edge(dispatch, after)
	}
	for i, c := range cases {
		b.cur = c.blk
		b.stmtList(c.body)
		// fallthrough, if present, is the last statement of the body.
		if n := len(c.body); n > 0 {
			if br, ok := c.body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(cases) {
				b.edge(b.cur, cases[i+1].blk)
				b.cur = nil
			}
		}
		b.edge(b.cur, after)
	}
	b.breakTo = prevBreak
	b.cur = after
}

// pushLoop runs fn with break/continue targets installed (both the
// unlabeled slots and, when the loop is labeled, the label's slots).
func (b *builder) pushLoop(label string, breakTo, continueTo *Block, fn func()) {
	prevBreak, prevCont := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = breakTo, continueTo
	if label != "" {
		b.labels[label] = &labelTargets{breakTo: breakTo, continueTo: continueTo}
	}
	fn()
	b.breakTo, b.continueTo = prevBreak, prevCont
}

// branchTarget resolves a break/continue to its destination block.
func (b *builder) branchTarget(s *ast.BranchStmt, isBreak bool) *Block {
	if s.Label != nil {
		if lt := b.labels[s.Label.Name]; lt != nil {
			if isBreak {
				return lt.breakTo
			}
			return lt.continueTo
		}
	}
	if isBreak {
		return b.breakTo
	}
	return b.continueTo
}

// takeLabel consumes the label installed by an enclosing LabeledStmt
// (empty when the statement is unlabeled). Every control statement must
// consume it so a label never leaks onto an inner statement.
func (b *builder) takeLabel() string {
	l := b.pendingLbl
	b.pendingLbl = ""
	return l
}

// exits returns the blocks that leave the function: explicit returns and
// fall-off-the-end blocks (no successors). Unreachable blocks with no
// predecessors and no nodes are skipped.
func (c *CFG) exits() []*Block {
	var out []*Block
	for _, blk := range c.Blocks {
		if len(blk.Succs) == 0 {
			out = append(out, blk)
		}
	}
	return out
}

// String renders the graph for tests and debugging: one line per block
// with its kind, node count and successor indices.
func (c *CFG) String() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		succs := make([]int, 0, len(blk.Succs))
		for _, s := range blk.Succs {
			succs = append(succs, s.Index)
		}
		sort.Ints(succs)
		fmt.Fprintf(&sb, "b%d(%s) nodes=%d -> %v\n", blk.Index, blk.kind, len(blk.Nodes), succs)
	}
	return sb.String()
}
