package analysis

import "go/ast"

// Forward iterative dataflow over a CFG. The framework is deliberately
// small: facts are integer abstract values keyed by an arbitrary
// comparable identity (in practice a types.Object — a pinned variable, a
// ResponseWriter parameter), blocks transfer facts node by node, and
// join folds predecessor outputs. May-analyses join with max (any path
// reaching a state keeps it), must-analyses with min (every path has to
// agree); absence of a key means "bottom / nothing known yet".
//
// The fixpoint is the standard optimistic worklist: only predecessors
// that have produced an output participate in a join, so unreachable
// blocks never contribute and must-analyses are not poisoned by
// uninitialized paths.

// facts maps an analysis key to its abstract value. The zero value of
// the map (nil) carries no facts.
type facts map[any]int

func (f facts) clone() facts {
	cp := make(facts, len(f))
	for k, v := range f {
		cp[k] = v
	}
	return cp
}

// flowProblem configures one forward analysis.
type flowProblem struct {
	// entry seeds the entry block's input facts (may be nil).
	entry facts
	// join combines two values for the same key at a merge point.
	join func(a, b int) int
	// transfer applies one block node to the fact set in place.
	transfer func(n ast.Node, f facts)
}

// flowResult holds the fixpoint: facts at block entry and exit.
type flowResult struct {
	in  map[*Block]facts
	out map[*Block]facts
}

// run iterates prob to a fixpoint over cfg.
func run(cfg *CFG, prob flowProblem) *flowResult {
	res := &flowResult{
		in:  make(map[*Block]facts, len(cfg.Blocks)),
		out: make(map[*Block]facts, len(cfg.Blocks)),
	}
	if len(cfg.Blocks) == 0 {
		return res
	}

	preds := make(map[*Block][]*Block, len(cfg.Blocks))
	for _, blk := range cfg.Blocks {
		for _, s := range blk.Succs {
			preds[s] = append(preds[s], blk)
		}
	}

	// Worklist seeded with the entry block only; unreachable blocks are
	// processed if and when an edge delivers facts to them (never, by
	// construction).
	work := []*Block{cfg.Blocks[0]}
	queued := map[*Block]bool{cfg.Blocks[0]: true}

	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		var in facts
		if blk == cfg.Blocks[0] {
			in = prob.entry.clone()
		} else {
			for _, p := range preds[blk] {
				pOut, ok := res.out[p]
				if !ok {
					continue
				}
				if in == nil {
					in = pOut.clone()
					continue
				}
				in = joinFacts(in, pOut, prob.join)
			}
			if in == nil {
				in = facts{}
			}
		}
		res.in[blk] = in

		out := in.clone()
		for _, n := range blk.Nodes {
			prob.transfer(n, out)
		}

		if factsEqual(res.out[blk], out) {
			continue
		}
		res.out[blk] = out
		for _, s := range blk.Succs {
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return res
}

// joinFacts merges b into a with join, key-wise. A key present on one
// side only joins against the implicit bottom 0.
func joinFacts(a, b facts, join func(x, y int) int) facts {
	for k, bv := range b {
		a[k] = join(a[k], bv)
	}
	for k, av := range a {
		if _, ok := b[k]; !ok {
			a[k] = join(av, 0)
		}
	}
	return a
}

func factsEqual(a, b facts) bool {
	if a == nil {
		return false // never computed yet
	}
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// joinMax is the may-analysis join: the highest (worst) state on any
// path survives the merge.
func joinMax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// joinMin is the must-analysis join: a state holds after a merge only
// if every path established it.
func joinMin(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// visitWithFacts replays a solved problem block by block, calling visit
// with the facts in force immediately before each node executes — the
// per-node granularity analyzers need to report "state X already holds
// here". Unreachable blocks (no computed input) are skipped.
func visitWithFacts(cfg *CFG, res *flowResult, prob flowProblem, visit func(n ast.Node, before facts)) {
	for _, blk := range cfg.Blocks {
		in, ok := res.in[blk]
		if !ok {
			continue
		}
		f := in.clone()
		for _, n := range blk.Nodes {
			visit(n, f)
			prob.transfer(n, f)
		}
	}
}

// walkNode visits n's subtree like ast.Inspect but does not descend into
// function literals: a closure's statements execute when the closure is
// called, not at its syntactic position, so transfer functions must not
// interpret them as happening inline.
func walkNode(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			// ast.Inspect's pop event; never forwarded, so callbacks can
			// hand m to another walker without a nil check.
			return true
		}
		if _, isLit := m.(*ast.FuncLit); isLit && m != n {
			return false
		}
		return f(m)
	})
}

// funcBodies yields every function body in the file — declarations and
// literals — paired with its body, so analyzers build one CFG per
// function uniformly.
func funcBodies(f *ast.File, visit func(body *ast.BlockStmt, fn *ast.FuncDecl)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Body, fn)
			}
		case *ast.FuncLit:
			visit(fn.Body, nil)
		}
		return true
	})
}
