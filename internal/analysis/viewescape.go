package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ViewEscape enforces the other half of the pin lifecycle: pinleak proves
// a pin is released, ViewEscape proves nothing still holds the view when
// that happens. A pinned DerivedView/Snapshot stored to a struct field,
// global, channel, or spawned goroutine outlives the function — if the
// same function also releases the pin, the stored reference is a dead
// view: its epoch floor is gone, and the layers it reads can be folded or
// GC'd out from under it at any moment. The failure is silent (reads
// return stale or missing data, no panic), which is why it needs a static
// gate.
//
// Ownership transfer is the sanctioned pattern: either the reference
// escapes and the *consumer* releases (no Release here), or the function
// releases and nothing escapes. The analysis is path-sensitive on the
// CFG: an escape on one branch paired with a Release on a disjoint branch
// is the hand-off idiom and stays clean; only a path carrying both events
// — in either order — is flagged. A goroutine that releases the view
// itself took ownership and is not an escape; a deferred Release always
// outlives every escape and is always flagged.
var ViewEscape = &Analyzer{
	Name: "viewescape",
	Doc: "check that a pinned DerivedView/Snapshot never escapes to a field, global, " +
		"channel, or goroutine on a path that also releases it",
	Run: runViewEscape,
}

// An escapeSite is one place a pinned view leaves the function's control.
type escapeSite struct {
	node ast.Node
	kind string // "a struct field", "a global", …
}

func runViewEscape(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			for obj := range pinnedVars(pass, body) {
				checkViewEscape(pass, body, obj)
			}
			return true
		})
	}
	return nil
}

// pinnedVars finds `v := x.Acquire()` / `v := x.DerivedSnapshot(...)`
// bindings in body (not in nested closures, which get their own walk).
func pinnedVars(pass *Pass, body *ast.BlockStmt) map[types.Object]*ast.CallExpr {
	out := map[types.Object]*ast.CallExpr{}
	walkNode(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		_, name, call, ok := methodCall(as.Rhs[0])
		if !ok || !acquireMethods[name] {
			return true
		}
		tv, ok := pass.TypesInfo.Types[call]
		if !ok || !hasMethod(pass.Pkg, tv.Type, "Release") {
			return true
		}
		if obj := usedObject(pass.TypesInfo, id); obj != nil {
			out[obj] = call
		}
		return true
	})
	return out
}

// Event bits for the path analysis.
const (
	veEscaped  = 1
	veReleased = 2
)

func joinOr(a, b int) int { return a | b }

func checkViewEscape(pass *Pass, body *ast.BlockStmt, obj types.Object) {
	escapes := map[ast.Node]escapeSite{}
	walkNode(body, func(n ast.Node) bool {
		for _, e := range escapesIn(pass, n, obj) {
			escapes[e.node] = e
		}
		return true
	})
	if len(escapes) == 0 {
		return
	}

	// A deferred Release runs at function exit, strictly after every
	// escape on every path: all escapes are use-after-release hazards.
	if deferReleases(pass.TypesInfo, body, obj) {
		for _, e := range escapes {
			pass.Reportf(e.node.Pos(),
				"pinned %s escapes to %s but its Release is deferred: the stored reference outlives the pin; transfer ownership (drop the defer) or copy the data out first",
				obj.Name(), e.kind)
		}
		return
	}

	cfg := buildCFG(body)
	prob := flowProblem{
		join: joinOr,
		transfer: func(n ast.Node, f facts) {
			if len(escapesIn(pass, n, obj)) > 0 {
				f[obj] |= veEscaped
			}
			if releasesOutsideGo(pass.TypesInfo, n, obj) {
				f[obj] |= veReleased
			}
		},
	}
	res := run(cfg, prob)

	reported := map[ast.Node]bool{}
	visitWithFacts(cfg, res, prob, func(n ast.Node, before facts) {
		// Release reached with a live escape on this path: the escaped
		// reference outlives the pin.
		if before[obj]&veEscaped != 0 && releasesOutsideGo(pass.TypesInfo, n, obj) {
			first := firstEscape(escapes)
			pass.Reportf(n.Pos(),
				"%s is released here but escaped to %s at line %d on this path: the stored reference outlives the pin; hand ownership to the consumer instead of releasing",
				obj.Name(), first.kind, pass.Fset.Position(first.node.Pos()).Line)
		}
		// Escape after a Release on this path: the consumer receives a
		// dead view.
		for _, e := range escapesIn(pass, n, obj) {
			if before[obj]&veReleased != 0 && !reported[e.node] {
				reported[e.node] = true
				pass.Reportf(e.node.Pos(),
					"pinned %s escapes to %s after being released on a path reaching this line: the consumer receives a dead view",
					obj.Name(), e.kind)
			}
		}
	})
}

// firstEscape picks the syntactically earliest escape for the diagnostic.
func firstEscape(escapes map[ast.Node]escapeSite) escapeSite {
	var best escapeSite
	var bestPos token.Pos = -1
	for _, e := range escapes {
		if bestPos < 0 || e.node.Pos() < bestPos {
			best, bestPos = e, e.node.Pos()
		}
	}
	return best
}

// escapesIn lists the escape events executing n performs on obj: stores
// to fields, globals or indexed elements, channel sends, and goroutine
// captures. Function literal subtrees are not entered except via the
// GoStmt case — a closure that merely mentions the view runs under this
// function's control, but a spawned goroutine does not.
func escapesIn(pass *Pass, n ast.Node, obj types.Object) []escapeSite {
	var out []escapeSite
	walkNode(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			if len(m.Lhs) != len(m.Rhs) {
				return true
			}
			for i, rhs := range m.Rhs {
				if !isObjUse(pass.TypesInfo, rhs, obj) {
					continue
				}
				if kind := storeKind(pass, m.Lhs[i]); kind != "" {
					out = append(out, escapeSite{m, kind})
				}
			}
		case *ast.SendStmt:
			if isObjUse(pass.TypesInfo, m.Value, obj) {
				out = append(out, escapeSite{m, "a channel"})
			}
		case *ast.GoStmt:
			if goCaptures(pass.TypesInfo, m, obj) {
				out = append(out, escapeSite{m, "a goroutine"})
			}
		}
		return true
	})
	return out
}

// isObjUse reports whether e is obj itself (possibly parenthesized or
// address-taken).
func isObjUse(info *types.Info, e ast.Expr, obj types.Object) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	return ok && usedObject(info, id) == obj
}

// storeKind classifies an assignment target that outlives the function:
// "" means a local (no escape).
func storeKind(pass *Pass, lhs ast.Expr) string {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return "a struct field"
	case *ast.IndexExpr:
		return "a map or slice element"
	case *ast.StarExpr:
		return "a shared pointer target"
	case *ast.Ident:
		if v, ok := usedObject(pass.TypesInfo, l).(*types.Var); ok && pass.Pkg != nil && v.Parent() == pass.Pkg.Scope() {
			return "a global"
		}
	}
	return ""
}

// goCaptures reports whether the spawned goroutine receives obj — as a
// call argument or captured by its closure — without releasing it itself
// (a goroutine that releases the view took ownership: sanctioned).
func goCaptures(info *types.Info, g *ast.GoStmt, obj types.Object) bool {
	uses := false
	ast.Inspect(g.Call, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && usedObject(info, id) == obj {
			uses = true
		}
		return !uses
	})
	if !uses {
		return false
	}
	releases := false
	ast.Inspect(g.Call, func(m ast.Node) bool {
		if isReleaseCall(info, m, obj) {
			releases = true
		}
		return !releases
	})
	return !releases
}

// releasesOutsideGo reports whether executing n calls obj.Release() under
// this function's control — including inside plain or deferred closures,
// but not inside a spawned goroutine, whose Release is its own.
func releasesOutsideGo(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, isGo := m.(*ast.GoStmt); isGo {
			return false
		}
		if isReleaseCall(info, m, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}
