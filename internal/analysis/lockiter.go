package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockIter enforces the snapshot-then-work discipline on every sync.Mutex
// and sync.RWMutex in the tree (e.mu, Graph.mu, the store's producer and
// shard locks, …): while a lock is held, a function must not run nested
// bulk iteration and must not call into blocking APIs (net, net/http,
// os/exec, time.Sleep, io.ReadAll/Copy). This is the PageRank bug class
// from PR 5 — a power loop under Graph.mu.RLock stalled every ingest
// publish behind a mining pass. Copy what you need under the lock, release
// it, then iterate.
//
// The analysis is intraprocedural and syntactic about loops: a helper
// function called under the lock is not descended into. Single-level loops
// under a lock (hash-map rebuilds, sort.Slice) are allowed; it is the
// quadratic shape — a loop within a loop — that turns a critical section
// into a stall.
var LockIter = &Analyzer{
	Name: "lockiter",
	Doc: "check that no nested iteration or blocking call (net/http/exec/sleep/io bulk reads) " +
		"runs while a sync mutex is held",
	Run: runLockIter,
}

var unlockNames = map[string]bool{"Unlock": true, "RUnlock": true}
var lockNames = map[string]bool{"Lock": true, "RLock": true}

func runLockIter(pass *Pass) error {
	for _, f := range pass.Files {
		// Every function — declared or literal — is analyzed as its own
		// scope: a closure's locks are its own business, not its
		// definer's.
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					walkHeld(pass, fn.Body.List, map[string]token.Pos{}, false)
				}
			case *ast.FuncLit:
				walkHeld(pass, fn.Body.List, map[string]token.Pos{}, false)
			}
			return true
		})
	}
	return nil
}

// walkHeld walks one statement list tracking which mutexes are held.
// Branch recursion takes a copy of the held set: an unlock inside a branch
// (typically before an early return) does not clear the lock for the
// statements after the branch.
func walkHeld(pass *Pass, list []ast.Stmt, held map[string]token.Pos, inFlaggedLoop bool) {
	for _, stmt := range list {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if key, name, ok := mutexOp(pass.TypesInfo, s.X); ok {
				if lockNames[name] {
					held[key] = s.Pos()
				} else {
					delete(held, key)
				}
				continue
			}
			if len(held) > 0 {
				checkBlockingCalls(pass, s, held)
			}

		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to the end of the
			// function, which is exactly what leaving it in the set
			// models. Deferred work itself runs after our region of
			// interest, so it is not scanned for blocking calls.
			continue

		case *ast.GoStmt:
			// The spawned goroutine does not inherit the caller's locks.
			continue

		case *ast.ForStmt:
			checkLoop(pass, s, s.Body, held, inFlaggedLoop)

		case *ast.RangeStmt:
			checkLoop(pass, s, s.Body, held, inFlaggedLoop)

		case *ast.IfStmt:
			if len(held) > 0 {
				if s.Init != nil {
					checkBlockingCalls(pass, s.Init, held)
				}
				checkBlockingCalls(pass, s.Cond, held)
			}
			walkHeld(pass, s.Body.List, copyHeld(held), inFlaggedLoop)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				walkHeld(pass, e.List, copyHeld(held), inFlaggedLoop)
			case *ast.IfStmt:
				walkHeld(pass, []ast.Stmt{e}, copyHeld(held), inFlaggedLoop)
			}

		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			for _, l := range clauseBodies(s) {
				walkHeld(pass, l, copyHeld(held), inFlaggedLoop)
			}

		case *ast.BlockStmt:
			walkHeld(pass, s.List, held, inFlaggedLoop)

		case *ast.LabeledStmt:
			walkHeld(pass, []ast.Stmt{s.Stmt}, held, inFlaggedLoop)

		default:
			if len(held) > 0 {
				checkBlockingCalls(pass, stmt, held)
			}
		}
	}
}

// checkLoop handles a for/range statement encountered while locks may be
// held: flags loop-in-loop under a lock, then descends.
func checkLoop(pass *Pass, loop ast.Stmt, body *ast.BlockStmt, held map[string]token.Pos, inFlaggedLoop bool) {
	flagged := inFlaggedLoop
	if len(held) > 0 && !inFlaggedLoop && containsLoop(body) && !unlocksAny(pass.TypesInfo, body, held) {
		key, pos := oneHeld(held)
		pass.Reportf(loop.Pos(), "nested iteration while holding %s (locked at line %d): snapshot the data under the lock, release it, then iterate",
			key, pass.Fset.Position(pos).Line)
		flagged = true
	}
	walkHeld(pass, body.List, copyHeld(held), flagged)
}

// checkBlockingCalls scans a statement's expressions (including closures,
// which typically run inline under the lock) for calls into blocking APIs.
func checkBlockingCalls(pass *Pass, n ast.Node, held map[string]token.Pos) {
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := usedObject(pass.TypesInfo, sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if why := blockingCall(fn.Pkg().Path(), fn.Name()); why != "" {
			key, pos := oneHeld(held)
			pass.Reportf(call.Pos(), "%s while holding %s (locked at line %d): blocking under a mutex stalls every other holder",
				why, key, pass.Fset.Position(pos).Line)
		}
		return true
	})
}

// blockingCall classifies a callee as blocking; the returned string is the
// diagnostic phrase ("" if not blocking).
func blockingCall(pkgPath, name string) string {
	switch pkgPath {
	case "net", "net/http", "net/rpc", "os/exec":
		return "call to " + pkgPath + "." + name
	case "time":
		if name == "Sleep" {
			return "call to time.Sleep"
		}
	case "io":
		switch name {
		case "ReadAll", "Copy", "CopyN", "CopyBuffer":
			return "call to io." + name
		}
	}
	return ""
}

// mutexOp recognizes lock/unlock calls on sync.Mutex / sync.RWMutex
// (including promoted methods of embedded mutexes) and returns a stable
// textual key for the lock expression.
func mutexOp(info *types.Info, n ast.Node) (key, name string, ok bool) {
	recv, name, call, ok := methodCall(n)
	if !ok || (!lockNames[name] && !unlockNames[name]) {
		return "", "", false
	}
	sel := call.Fun.(*ast.SelectorExpr)
	if s := info.Selections[sel]; s != nil {
		fn, isFn := s.Obj().(*types.Func)
		if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return "", "", false
		}
		return types.ExprString(recv), name, true
	}
	// No selection (e.g. qualified or untypeable): fall back to the
	// receiver's type.
	tv, found := info.Types[recv]
	if !found {
		return "", "", false
	}
	named, isNamed := deref(tv.Type).(*types.Named)
	if !isNamed {
		return "", "", false
	}
	o := named.Obj()
	if o.Pkg() == nil || o.Pkg().Path() != "sync" || (o.Name() != "Mutex" && o.Name() != "RWMutex") {
		return "", "", false
	}
	return types.ExprString(recv), name, true
}

// containsLoop reports whether the subtree holds any for/range statement
// that would run inline. Goroutine bodies are skipped: a spawned goroutine
// does not iterate under the caller's lock.
func containsLoop(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.GoStmt:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// unlocksAny reports whether the subtree releases one of the held locks.
func unlocksAny(info *types.Info, n ast.Node, held map[string]token.Pos) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if key, name, ok := mutexOp(info, m); ok && unlockNames[name] {
			if _, h := held[key]; h {
				found = true
			}
		}
		return !found
	})
	return found
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	cp := make(map[string]token.Pos, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

// oneHeld picks the deterministically-first held lock for the diagnostic.
func oneHeld(held map[string]token.Pos) (string, token.Pos) {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	k := keys[0]
	return k, held[k]
}

func clauseBodies(s ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	var body *ast.BlockStmt
	switch sw := s.(type) {
	case *ast.SwitchStmt:
		body = sw.Body
	case *ast.TypeSwitchStmt:
		body = sw.Body
	case *ast.SelectStmt:
		body = sw.Body
	}
	if body == nil {
		return nil
	}
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			out = append(out, cc.Body)
		case *ast.CommClause:
			out = append(out, cc.Body)
		}
	}
	return out
}
