// Package analysis is memexvet: a static-analysis suite that enforces,
// at build time, the repo-specific invariants this codebase has broken —
// and re-fixed — once per subsystem. Every analyzer encodes a bug class
// that shipped in an earlier PR and that no off-the-shelf linter checks;
// the suite runs in CI (the memexvet job and the Go 1.24 test leg) and
// via `go run ./cmd/memexvet ./...`, so the next regression of one of
// these contracts fails a merge instead of a production pass.
//
// # The invariants, and the bugs that motivated them
//
// pinleak — every version-store pin is released.
//
//	A version.Snapshot (Store.Acquire) or core.DerivedView
//	(Engine.DerivedSnapshot) pins an entire immutable state of the
//	store. GC's fold floor never exceeds the minimum pinned epoch, so
//	one leaked pin freezes compaction and the cold-tier fold for the
//	life of the process: the heap grows with every publish and the
//	archive stops moving to disk. The analyzer requires every
//	acquisition to be released on all paths — `defer v.Release()` or a
//	dominating explicit call — and flags discarded or chained
//	acquisitions (`s.Acquire().Get(k)`) whose pin can never be
//	released. (Motivated by the pin-floor design of PRs 1–3, where a
//	single leaked snapshot disables GC silently.)
//
// lockiter — no bulk iteration or blocking calls while holding a mutex.
//
//	PR 5 found Graph.PageRank holding g.mu.RLock across a ~30-iteration
//	power loop over the whole graph, stalling every ingest publish
//	behind a mining pass. The analyzer flags (a) syntactically nested
//	loops and (b) calls into blocking APIs (net, net/http, os/exec,
//	time.Sleep, io.ReadAll/Copy) executed while a sync.Mutex or
//	sync.RWMutex is held. The sanctioned shape is snapshot-then-work:
//	copy what you need under the lock, release it, then iterate
//	(PageRank, StoreStats and Graph.Subgraph all do this now).
//
// detmap — codec output must not depend on map iteration order.
//
//	PR 5 fixed encodeCounts ranging a map straight into the output
//	buffer: equal count maps encoded to different bytes across runs,
//	which broke the restart tests' record-determinism contract and
//	churned the cold tier with spurious rewrites of unchanged records.
//	In encode*/marshal* functions (and files named *codec*), the
//	analyzer flags ranging over a map while bytes are written to the
//	output, and map-key collection loops whose collected slice is never
//	sorted before use. The sanctioned shape is collect → sort → encode.
//
// epochbatch — one page's derived records publish in one batch.
//
//	A page's derived state — tf/ term counts, lnk/ out-links, rin*/
//	in-link records — must land in a single version-store Batch so a
//	snapshot can never observe a page's text without its place in the
//	link graph (the torn-publish hole the PR 2 out-of-order-publish fix
//	and PR 4's same-batch adjacency publish closed). The analyzer flags
//	derived records for one page split across two batches in a
//	function, and staging into a batch after its Publish/Abort.
//
// # Suppressions
//
// A finding that is a true exception — audited, with a reason — is
// silenced in place:
//
//	//memexvet:ignore <analyzer> <reason…>
//
// written either as a trailing comment on the flagged line or as a
// standalone comment on the line immediately above it; each directive
// governs exactly one line. The analyzer name must be one of pinleak,
// lockiter, detmap, epochbatch; the reason is mandatory. Suppressions are
// themselves checked: a malformed directive (unknown analyzer, missing
// reason) and a stale one (its line no longer triggers the named
// analyzer) are both errors, so dead suppressions cannot accumulate and
// hide future regressions.
//
// # Running it
//
// Standalone (what CI runs; analyzes non-test sources of the named
// packages):
//
//	go run ./cmd/memexvet ./...
//
// As a vet tool (drives the same analyzers through `go vet`'s
// unitchecker protocol, which includes _test.go files):
//
//	go build -o /tmp/memexvet ./cmd/memexvet
//	go vet -vettool=/tmp/memexvet ./...
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// analysistest-style golden tests) but is built on the standard library
// only — this module is dependency-free by policy — loading type
// information from the build cache's export data via `go list -export`.
// If the repo ever takes on x/tools, each Analyzer.Run ports across
// nearly verbatim.
package analysis
