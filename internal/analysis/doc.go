// Package analysis is memexvet: a static-analysis suite that enforces,
// at build time, the repo-specific invariants this codebase has broken —
// and re-fixed — once per subsystem. Every analyzer encodes a bug class
// that shipped in an earlier PR and that no off-the-shelf linter checks;
// the suite runs in CI (the memexvet job and the Go 1.24 test leg) and
// via `go run ./cmd/memexvet ./...`, so the next regression of one of
// these contracts fails a merge instead of a production pass.
//
// # The invariants, and the bugs that motivated them
//
// pinleak — every version-store pin is released.
//
//	A version.Snapshot (Store.Acquire) or core.DerivedView
//	(Engine.DerivedSnapshot) pins an entire immutable state of the
//	store. GC's fold floor never exceeds the minimum pinned epoch, so
//	one leaked pin freezes compaction and the cold-tier fold for the
//	life of the process: the heap grows with every publish and the
//	archive stops moving to disk. The analyzer requires every
//	acquisition to be released on all paths — `defer v.Release()` or a
//	dominating explicit call — and flags discarded or chained
//	acquisitions (`s.Acquire().Get(k)`) whose pin can never be
//	released. (Motivated by the pin-floor design of PRs 1–3, where a
//	single leaked snapshot disables GC silently.)
//
// lockiter — no bulk iteration or blocking calls while holding a mutex.
//
//	PR 5 found Graph.PageRank holding g.mu.RLock across a ~30-iteration
//	power loop over the whole graph, stalling every ingest publish
//	behind a mining pass. The analyzer flags (a) syntactically nested
//	loops and (b) calls into blocking APIs (net, net/http, os/exec,
//	time.Sleep, io.ReadAll/Copy) executed while a sync.Mutex or
//	sync.RWMutex is held. The sanctioned shape is snapshot-then-work:
//	copy what you need under the lock, release it, then iterate
//	(PageRank, StoreStats and Graph.Subgraph all do this now).
//
// detmap — codec output must not depend on map iteration order.
//
//	PR 5 fixed encodeCounts ranging a map straight into the output
//	buffer: equal count maps encoded to different bytes across runs,
//	which broke the restart tests' record-determinism contract and
//	churned the cold tier with spurious rewrites of unchanged records.
//	In encode*/marshal* functions (and files named *codec*), the
//	analyzer flags ranging over a map while bytes are written to the
//	output, and map-key collection loops whose collected slice is never
//	sorted before use. The sanctioned shape is collect → sort → encode.
//
// epochbatch — one page's derived records publish in one batch.
//
//	A page's derived state — tf/ term counts, lnk/ out-links, rin*/
//	in-link records — must land in a single version-store Batch so a
//	snapshot can never observe a page's text without its place in the
//	link graph (the torn-publish hole the PR 2 out-of-order-publish fix
//	and PR 4's same-batch adjacency publish closed). The analyzer flags
//	derived records for one page split across two batches in a
//	function, and staging into a batch after its Publish/Abort.
//
// atomicmix — a field updated via sync/atomic is never accessed plainly.
//
//	PR 8's first metrics draft bumped per-endpoint counters with plain
//	`m.requests++` on the hot path while the scrape path read them with
//	atomic.LoadUint64: the increment is a read-modify-write race and the
//	mixed access tears on 32-bit or under the race detector. The
//	analyzer records every field whose address reaches a sync/atomic
//	package-level function (`atomic.AddUint64(&m.requests, 1)`) and
//	flags any other access to that field that is not itself under an
//	atomic call. The sanctioned shape is all-atomic access — or better,
//	the typed atomic.Uint64/Int64 wrappers internal/server now uses,
//	which make plain access unrepresentable and which this analyzer
//	therefore never flags.
//
// replyorder — HTTP replies commit once, buffered, and shed politely.
//
//	Three shipped bug shapes, one ordering contract. (1) handleExport
//	streamed the bookmark tree straight into the ResponseWriter; the
//	first byte committed a 200, so a mid-walk failure truncated the
//	body under a success status. Flagged: passing the writer to a
//	fallible producer (a callee that both takes w and returns error) —
//	render to a buffer, check, then write. The fmt.Fprint*/io.WriteString
//	families are exempt: streaming infallible formatting is the
//	/metrics idiom, not the bug. (2) WriteHeader or a Header() mutation
//	on a path where the response is already committed (the
//	missing-return fallthrough); headers set after the first write are
//	silently dropped. (3) A 429/503 rejection without Retry-After on
//	some path (must-analysis: every path has to set it, or call an
//	intra-package helper that does) — PR 8's bare 503 made a shed robot
//	fleet retry in lockstep one RTT later.
//
// detsched — a load schedule is a pure function of (scenario, seed).
//
//	The synthetic harness's whole contract is replayability: same
//	scenario, same seed, byte-identical schedule (CI diffs two
//	expansions on every run). In schedule-path code — methods on
//	Scenario and functions whose name contains "Schedule" — the
//	analyzer flags time.Now/Since/Until (wall-clock leak), draws from
//	the global math/rand source (process-seeded state; rand.New,
//	rand.NewSource, rand.NewZipf constructors and method draws on a
//	local generator are the sanctioned pattern), and map iteration that
//	reaches the emitted schedule without a sort in between.
//
// viewescape — a pinned view's reference never outlives its pin.
//
//	pinleak proves every Acquire has a Release; viewescape proves the
//	Release is not a lie. Storing a pinned Snapshot/DerivedView into a
//	struct field, global, channel, or goroutine and then releasing it
//	on the same path leaves the consumer a reference whose epoch GC is
//	now free to fold away — reads go stale or the record vanishes
//	mid-use. Flagged: an escape followed by Release on one path, a
//	Release followed by an escape (handing out a dead view), and any
//	escape when the Release is deferred. The sanctioned shape is
//	ownership transfer: the goroutine or branch that keeps the
//	reference becomes responsible for the Release and the original path
//	never calls it (escape and Release on disjoint paths is clean).
//
// # Suppressions
//
// A finding that is a true exception — audited, with a reason — is
// silenced in place:
//
//	//memexvet:ignore <analyzer> <reason…>
//
// written either as a trailing comment on the flagged line or as a
// standalone comment on the line immediately above it; each directive
// governs exactly one line. The analyzer name must be one of pinleak,
// lockiter, detmap, epochbatch, atomicmix, replyorder, detsched,
// viewescape; the reason is mandatory. Suppressions are
// themselves checked: a malformed directive (unknown analyzer, missing
// reason) and a stale one (its line no longer triggers the named
// analyzer) are both errors, so dead suppressions cannot accumulate and
// hide future regressions.
//
// # Running it
//
// Standalone (what CI runs; analyzes non-test sources of the named
// packages; -json emits findings as a JSON array, -github as GitHub
// Actions ::error annotations):
//
//	go run ./cmd/memexvet ./...
//
// As a vet tool (drives the same analyzers through `go vet`'s
// unitchecker protocol, which includes _test.go files):
//
//	go build -o /tmp/memexvet ./cmd/memexvet
//	go vet -vettool=/tmp/memexvet ./...
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// analysistest-style golden tests) but is built on the standard library
// only — this module is dependency-free by policy — loading type
// information from the build cache's export data via `go list -export`.
// Path-sensitive analyzers (pinleak, replyorder, viewescape) share an
// intra-procedural CFG builder (cfg.go) and a forward iterative dataflow
// framework (dataflow.go) that likewise mirror x/tools/go/cfg in shape.
// If the repo ever takes on x/tools, each Analyzer.Run ports across
// nearly verbatim.
package analysis
