package analysis

import "testing"

func TestPinLeak(t *testing.T)    { RunGolden(t, PinLeak, "testdata/src/pinleak") }
func TestLockIter(t *testing.T)   { RunGolden(t, LockIter, "testdata/src/lockiter") }
func TestDetMap(t *testing.T)     { RunGolden(t, DetMap, "testdata/src/detmap") }
func TestEpochBatch(t *testing.T) { RunGolden(t, EpochBatch, "testdata/src/epochbatch") }
func TestAtomicMix(t *testing.T)  { RunGolden(t, AtomicMix, "testdata/src/atomicmix") }
func TestReplyOrder(t *testing.T) { RunGolden(t, ReplyOrder, "testdata/src/replyorder") }
func TestDetSched(t *testing.T)   { RunGolden(t, DetSched, "testdata/src/detsched") }
func TestViewEscape(t *testing.T) { RunGolden(t, ViewEscape, "testdata/src/viewescape") }

// TestTreeClean is the merge gate in test form: the suite run over the
// whole repository must come back empty. Reintroducing a PageRank-style
// lock-hold, an unsorted encodeCounts, a leaked pin, or a torn batch
// fails this test (and the memexvet CI job) immediately.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list -export over the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.ImportPath, terr)
		}
		diags, err := RunPackage(pkg, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
