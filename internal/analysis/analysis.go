package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// The framework below mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, positional diagnostics) so the checkers port across if the
// module ever takes on x/tools, but is implemented on the standard library
// only: this repo is dependency-free by policy.

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //memexvet:ignore directives. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Run applies the check to a package, reporting findings via
	// pass.Reportf. It returns an error only for internal failures,
	// never for findings.
	Run func(pass *Pass) error
}

// A Pass carries one package's syntax and type information to an
// Analyzer.Run and collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full memexvet suite in stable order: the four original
// AST-level checkers, then the CFG/dataflow generation.
func All() []*Analyzer {
	return []*Analyzer{PinLeak, LockIter, DetMap, EpochBatch, AtomicMix, ReplyOrder, DetSched, ViewEscape}
}

// metaName is the pseudo-analyzer that owns diagnostics about the
// suppression mechanism itself (malformed or stale directives). It is not
// a valid target for //memexvet:ignore: problems with suppressions cannot
// themselves be suppressed.
const metaName = "memexvet"

// ignorePrefix introduces a suppression directive comment.
const ignorePrefix = "memexvet:ignore"

// A suppression is one parsed //memexvet:ignore directive.
type suppression struct {
	pos      token.Position // position of the comment
	target   int            // the line the directive governs
	analyzer string         // analyzer it silences ("" if malformed)
	reason   string
	problem  string // non-empty if malformed; becomes a metaName diagnostic
	used     bool
}

// RunPackage applies analyzers to pkg and returns the surviving
// diagnostics: findings not matched by a //memexvet:ignore directive, plus
// one metaName diagnostic for every malformed or stale directive. The
// result is sorted by position.
//
// A directive written as a trailing comment silences findings of the
// named analyzer on its own line; a standalone directive comment silences
// findings on the line directly below it. Each directive governs exactly
// one line — it cannot blanket a region.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	valid := make(map[string]bool, len(analyzers))
	for _, a := range All() {
		// Validate directives against the full suite, not just the
		// analyzers being run, so a partial run never reports a
		// legitimate directive as naming an unknown analyzer.
		valid[a.Name] = true
	}

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	sups := scanSuppressions(pkg.Fset, pkg.Files, valid)

	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	var out []Diagnostic
	for _, d := range diags {
		if s := matchSuppression(sups, d); s != nil {
			s.used = true
			continue
		}
		out = append(out, d)
	}
	for _, s := range sups {
		switch {
		case s.problem != "":
			out = append(out, Diagnostic{Pos: s.pos, Analyzer: metaName, Message: s.problem})
		case !s.used && ran[s.analyzer]:
			// Only declare a directive stale when its analyzer actually
			// ran; a partial run proves nothing about the others.
			out = append(out, Diagnostic{
				Pos:      s.pos,
				Analyzer: metaName,
				Message: fmt.Sprintf("stale //memexvet:ignore: no %s finding on this or the next line; delete the directive",
					s.analyzer),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// scanSuppressions extracts every //memexvet:ignore directive (well-formed
// or not) from the package's comments.
func scanSuppressions(fset *token.FileSet, files []*ast.File, valid map[string]bool) []*suppression {
	var sups []*suppression
	srcs := make(map[string][]byte)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				trimmed := strings.TrimSpace(text)
				if !strings.HasPrefix(trimmed, ignorePrefix) {
					continue
				}
				s := &suppression{pos: fset.Position(c.Pos())}
				s.target = s.pos.Line
				if standaloneComment(srcs, s.pos) {
					s.target = s.pos.Line + 1
				}
				rest := strings.TrimSpace(strings.TrimPrefix(trimmed, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					s.problem = "malformed //memexvet:ignore: missing analyzer name (want //memexvet:ignore <analyzer> <reason>)"
				case !valid[name]:
					s.problem = fmt.Sprintf("malformed //memexvet:ignore: unknown analyzer %q (want one of %s)",
						name, strings.Join(validNames(valid), ", "))
				case reason == "":
					s.problem = fmt.Sprintf("malformed //memexvet:ignore %s: missing reason; every suppression must say why the finding is safe", name)
				default:
					s.analyzer = name
					s.reason = reason
				}
				sups = append(sups, s)
			}
		}
	}
	return sups
}

func validNames(valid map[string]bool) []string {
	names := make([]string, 0, len(valid))
	for n := range valid {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// standaloneComment reports whether only whitespace precedes the comment
// on its line (i.e. it is not trailing a statement). On any read failure
// the comment is treated as trailing.
func standaloneComment(srcs map[string][]byte, pos token.Position) bool {
	src, ok := srcs[pos.Filename]
	if !ok {
		src, _ = os.ReadFile(pos.Filename)
		srcs[pos.Filename] = src
	}
	if pos.Offset > len(src) {
		return false
	}
	for i := pos.Offset - 1; i >= 0 && src[i] != '\n'; i-- {
		if src[i] != ' ' && src[i] != '\t' {
			return false
		}
	}
	return true
}

// matchSuppression returns the first well-formed directive that silences d,
// or nil.
func matchSuppression(sups []*suppression, d Diagnostic) *suppression {
	for _, s := range sups {
		if s.problem != "" || s.analyzer != d.Analyzer {
			continue
		}
		if s.pos.Filename == d.Pos.Filename && d.Pos.Line == s.target {
			return s
		}
	}
	return nil
}
