package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// CFG and dataflow unit tests on hand-built functions: the structural
// promises the analyzers lean on (branch edges, loop back edges, defer
// collection, early-return exits, unreachable code) asserted directly,
// without type information — the builder is purely syntactic.

// parseFunc parses src (one file containing one function) and returns
// the function's body.
func parseFunc(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			return fn.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// reachable returns the number of blocks reachable from entry.
func reachable(c *CFG) int {
	if len(c.Blocks) == 0 {
		return 0
	}
	seen := map[*Block]bool{c.Blocks[0]: true}
	work := []*Block{c.Blocks[0]}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return len(seen)
}

func TestCFGStraightLine(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f() { x := 1; x++; _ = x }`))
	if len(c.exits()) != 1 {
		t.Fatalf("want 1 exit, got %d\n%s", len(c.exits()), c)
	}
	if got := len(c.Blocks[0].Nodes); got != 3 {
		t.Fatalf("entry block should hold all 3 statements, got %d\n%s", got, c)
	}
}

func TestCFGIfElse(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(b bool) int {
		x := 0
		if b {
			x = 1
		} else {
			x = 2
		}
		return x
	}`))
	// entry(+cond) -> then|else -> after(return): 4 reachable blocks.
	if got := reachable(c); got != 4 {
		t.Fatalf("want 4 reachable blocks, got %d\n%s", got, c)
	}
	if exits := c.exits(); len(exits) != 1 || exits[0].Return() == nil {
		t.Fatalf("want single return exit\n%s", c)
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(b bool) int {
		if b {
			return 1
		}
		return 2
	}`))
	exits := c.exits()
	if len(exits) != 2 {
		t.Fatalf("want 2 return exits, got %d\n%s", len(exits), c)
	}
	for _, e := range exits {
		if e.Return() == nil {
			t.Fatalf("exit block without return\n%s", c)
		}
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(n int) int {
		s := 0
		for i := 0; i < n; i++ {
			s += i
		}
		return s
	}`))
	// A back edge exists: some reachable block has a successor with a
	// smaller index that is not the entry's fall-through.
	hasBack := false
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatalf("for loop should produce a back edge\n%s", c)
	}
	if len(c.exits()) != 1 {
		t.Fatalf("want 1 exit\n%s", c)
	}
}

func TestCFGInfiniteLoopBreak(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(ch chan int) int {
		for {
			v := <-ch
			if v > 0 {
				break
			}
		}
		return 1
	}`))
	exits := c.exits()
	if len(exits) != 1 || exits[0].Return() == nil {
		t.Fatalf("break must be the only way to the return exit\n%s", c)
	}
}

func TestCFGRangeContinue(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(xs []int) int {
		s := 0
		for _, x := range xs {
			if x < 0 {
				continue
			}
			s += x
		}
		return s
	}`))
	if got := len(c.exits()); got != 1 {
		t.Fatalf("want 1 exit, got %d\n%s", got, c)
	}
}

func TestCFGSwitchEdges(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(x int) string {
		switch x {
		case 1:
			return "one"
		case 2:
			return "two"
		}
		return "many"
	}`))
	// Two case returns plus the fall-through return: 3 exits.
	if got := len(c.exits()); got != 3 {
		t.Fatalf("want 3 exits, got %d\n%s", got, c)
	}
}

func TestCFGDefersCollected(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(b bool) {
		defer done()
		if b {
			defer cleanup()
		}
	}`))
	if got := len(c.Defers); got != 2 {
		t.Fatalf("want 2 defers collected, got %d\n%s", got, c)
	}
	// Deferred statements must not appear as block nodes.
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				t.Fatalf("defer leaked into block nodes\n%s", c)
			}
		}
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f() int {
		return 1
		x := 2
		_ = x
		return x
	}`))
	// The trailing statements form a block no edge reaches.
	if got, want := reachable(c), len(c.Blocks); got >= want {
		t.Fatalf("dead code should be unreachable: %d reachable of %d\n%s", got, want, c)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(m [][]int) int {
	outer:
		for _, row := range m {
			for _, v := range row {
				if v == 0 {
					break outer
				}
			}
		}
		return 1
	}`))
	if got := len(c.exits()); got != 1 {
		t.Fatalf("want 1 exit, got %d\n%s", got, c)
	}
	// The labeled break must reach the return: the return block is
	// reachable and the graph has no stuck blocks on the break path.
	if reachable(c) < 5 {
		t.Fatalf("labeled-break graph suspiciously small\n%s", c)
	}
}

// --- dataflow ---

// markerProblem is a tiny analysis used to probe the framework: the fact
// for key "state" is set by calls to mark(k) with integer literal k, and
// joined per problem configuration.
func markerProblem(join func(a, b int) int) flowProblem {
	return flowProblem{
		join: join,
		transfer: func(n ast.Node, f facts) {
			walkNode(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "mark" || len(call.Args) != 1 {
					return true
				}
				if lit, ok := call.Args[0].(*ast.BasicLit); ok {
					v := 0
					for _, ch := range lit.Value {
						v = v*10 + int(ch-'0')
					}
					f["state"] = v
				}
				return true
			})
		},
	}
}

// exitFacts joins the fact value at every exit block with join.
func exitFacts(c *CFG, res *flowResult, join func(a, b int) int) (int, bool) {
	have := false
	v := 0
	for _, e := range c.exits() {
		out := res.out[e]
		if out == nil {
			continue
		}
		if !have {
			v, have = out["state"], true
		} else {
			v = join(v, out["state"])
		}
	}
	return v, have
}

func TestDataflowMayJoin(t *testing.T) {
	body := parseFunc(t, `func f(b bool) {
		mark(1)
		if b {
			mark(2)
		}
	}`)
	c := buildCFG(body)
	res := run(c, markerProblem(joinMax))
	v, ok := exitFacts(c, res, joinMax)
	if !ok || v != 2 {
		t.Fatalf("may-analysis: want state 2 at exit (some path marked 2), got %d ok=%v", v, ok)
	}
}

func TestDataflowMustJoin(t *testing.T) {
	body := parseFunc(t, `func f(b bool) {
		mark(2)
		if b {
			mark(1)
		}
	}`)
	c := buildCFG(body)
	res := run(c, markerProblem(joinMin))
	v, ok := exitFacts(c, res, joinMin)
	if !ok || v != 1 {
		t.Fatalf("must-analysis: want state 1 at exit (one path lowered it), got %d ok=%v", v, ok)
	}
}

func TestDataflowMustBothBranches(t *testing.T) {
	body := parseFunc(t, `func f(b bool) {
		if b {
			mark(3)
		} else {
			mark(3)
		}
	}`)
	c := buildCFG(body)
	res := run(c, markerProblem(joinMin))
	v, ok := exitFacts(c, res, joinMin)
	if !ok || v != 3 {
		t.Fatalf("must-analysis: both branches marked 3, want 3 at exit, got %d ok=%v", v, ok)
	}
}

func TestDataflowLoopFixpoint(t *testing.T) {
	body := parseFunc(t, `func f(n int) {
		for i := 0; i < n; i++ {
			mark(5)
		}
	}`)
	c := buildCFG(body)
	res := run(c, markerProblem(joinMax))
	v, ok := exitFacts(c, res, joinMax)
	// Zero-iteration path exists, so may-analysis keeps max(0, 5) = 5;
	// the point is the fixpoint terminates and the loop body's fact
	// reaches the exit through the back edge.
	if !ok || v != 5 {
		t.Fatalf("loop fixpoint: want 5 at exit, got %d ok=%v", v, ok)
	}
	resMust := run(c, markerProblem(joinMin))
	vm, okm := exitFacts(c, resMust, joinMin)
	if !okm || vm != 0 {
		t.Fatalf("must through a maybe-zero-iteration loop must drop to 0, got %d ok=%v", vm, okm)
	}
}

func TestDataflowEarlyReturnPath(t *testing.T) {
	body := parseFunc(t, `func f(b bool) int {
		if b {
			return 1
		}
		mark(7)
		return 2
	}`)
	c := buildCFG(body)
	res := run(c, markerProblem(joinMax))
	// The early-return exit never saw mark(7); the fall-through exit did.
	var states []int
	for _, e := range c.exits() {
		if out := res.out[e]; out != nil {
			states = append(states, out["state"])
		}
	}
	if len(states) != 2 {
		t.Fatalf("want facts at 2 exits, got %d\n%s", len(states), c)
	}
	if !(states[0] == 0 && states[1] == 7) && !(states[0] == 7 && states[1] == 0) {
		t.Fatalf("want one exit at 0 and one at 7, got %v", states)
	}
}

func TestDataflowClosureNotInline(t *testing.T) {
	body := parseFunc(t, `func f(walk func(func())) {
		walk(func() {
			mark(9)
		})
	}`)
	c := buildCFG(body)
	res := run(c, markerProblem(joinMax))
	v, _ := exitFacts(c, res, joinMax)
	if v != 0 {
		t.Fatalf("closure body must not transfer inline, got state %d", v)
	}
}

func TestCFGStringSmoke(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(b bool) { if b { _ = 1 } }`))
	s := c.String()
	if !strings.Contains(s, "b0(entry)") {
		t.Fatalf("String() should name the entry block:\n%s", s)
	}
}
