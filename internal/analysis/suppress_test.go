package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The suppression layer has its own failure modes — a typo'd analyzer
// name, a reason-less directive, a directive outliving the finding it
// silenced — and each must fail loud, as a metaName diagnostic that is
// itself unsuppressible. These tests drive RunPackage over tiny in-memory
// packages with a stub analyzer standing in for pinleak.

// stubPinLeak flags every call to a function literally named "leak".
var stubPinLeak = &Analyzer{
	Name: "pinleak",
	Doc:  "test stub: flags leak() calls",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "leak" {
					pass.Reportf(call.Pos(), "stub finding")
				}
				return true
			})
		}
		return nil
	},
}

// checkSource runs stubPinLeak over src and returns the diagnostics.
func checkSource(t *testing.T, src string) []Diagnostic {
	t.Helper()
	dir := t.TempDir()
	fn := filepath.Join(dir, "p.go")
	if err := os.WriteFile(fn, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg, err := TypeCheck(fset, "p", []string{fn}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("test source does not type-check: %v", terr)
	}
	diags, err := RunPackage(pkg, []*Analyzer{stubPinLeak})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func wantOne(t *testing.T, diags []Diagnostic, analyzer, substr string) {
	t.Helper()
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != analyzer {
		t.Errorf("diagnostic from %q, want %q", d.Analyzer, analyzer)
	}
	if !strings.Contains(d.Message, substr) {
		t.Errorf("message %q does not contain %q", d.Message, substr)
	}
}

const prologue = "package p\n\nfunc leak() {}\nfunc fine() {}\n\n"

func TestSuppressTrailing(t *testing.T) {
	diags := checkSource(t, prologue+`func f() {
	leak() //memexvet:ignore pinleak audited: stub case
}
`)
	if len(diags) != 0 {
		t.Fatalf("trailing directive did not suppress: %v", diags)
	}
}

func TestSuppressLineAbove(t *testing.T) {
	diags := checkSource(t, prologue+`func f() {
	//memexvet:ignore pinleak audited: stub case
	leak()
}
`)
	if len(diags) != 0 {
		t.Fatalf("line-above directive did not suppress: %v", diags)
	}
}

func TestSuppressionDoesNotReachFurther(t *testing.T) {
	// Two lines below the directive is out of range: the finding survives
	// and the directive is stale — both must surface.
	diags := checkSource(t, prologue+`func f() {
	//memexvet:ignore pinleak audited: stub case

	leak()
}
`)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want finding + stale directive: %v", len(diags), diags)
	}
}

func TestUnknownAnalyzerFailsLoud(t *testing.T) {
	diags := checkSource(t, prologue+`func f() {
	fine() //memexvet:ignore pinlek typo in the analyzer name
}
`)
	wantOne(t, diags, metaName, `unknown analyzer "pinlek"`)
}

func TestMissingReasonFailsLoud(t *testing.T) {
	diags := checkSource(t, prologue+`func f() {
	leak() //memexvet:ignore pinleak
}
`)
	// The malformed directive suppresses nothing: the finding survives
	// alongside the meta diagnostic.
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want finding + malformed directive: %v", len(diags), diags)
	}
	var sawMeta, sawFinding bool
	for _, d := range diags {
		switch d.Analyzer {
		case metaName:
			sawMeta = true
			if !strings.Contains(d.Message, "missing reason") {
				t.Errorf("meta message %q does not mention the missing reason", d.Message)
			}
		case "pinleak":
			sawFinding = true
		}
	}
	if !sawMeta || !sawFinding {
		t.Errorf("want one meta and one pinleak diagnostic, got %v", diags)
	}
}

func TestMissingNameFailsLoud(t *testing.T) {
	diags := checkSource(t, prologue+`func f() {
	fine() //memexvet:ignore
}
`)
	wantOne(t, diags, metaName, "missing analyzer name")
}

func TestStaleSuppressionFailsLoud(t *testing.T) {
	diags := checkSource(t, prologue+`func f() {
	fine() //memexvet:ignore pinleak line no longer triggers
}
`)
	wantOne(t, diags, metaName, "stale //memexvet:ignore")
}

func TestStaleNotReportedWhenAnalyzerDidNotRun(t *testing.T) {
	// A detmap directive cannot be judged stale by a run that only
	// included pinleak.
	diags := checkSource(t, prologue+`func f() {
	fine() //memexvet:ignore detmap sorted upstream by the caller
}
`)
	if len(diags) != 0 {
		t.Fatalf("directive for an analyzer that did not run was reported: %v", diags)
	}
}

func TestOneDirectivePerFinding(t *testing.T) {
	// A single directive must not blanket two findings on different lines.
	diags := checkSource(t, prologue+`func f() {
	leak() //memexvet:ignore pinleak audited: stub case
	leak()
}
`)
	wantOne(t, diags, "pinleak", "stub finding")
}
