package analysis

import (
	"go/ast"
	"go/types"
)

// Small AST helpers shared by the analyzers.

// inspectWithStack walks root in depth-first order like ast.Inspect, but
// passes each node's ancestor stack (outermost first, immediate parent
// last). Returning false skips the node's children.
func inspectWithStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !visit(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// methodCall unpacks a call of the form recv.Name(...).
func methodCall(n ast.Node) (recv ast.Expr, name string, call *ast.CallExpr, ok bool) {
	c, isCall := n.(*ast.CallExpr)
	if !isCall {
		return nil, "", nil, false
	}
	sel, isSel := c.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", nil, false
	}
	return sel.X, sel.Sel.Name, c, true
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// hasMethod reports whether t (or *t) has a method called name.
func hasMethod(pkg *types.Package, t types.Type, name string) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, pkg, name)
	_, isFunc := obj.(*types.Func)
	return isFunc
}

// enclosingFuncBody returns the body of the innermost enclosing function
// (declaration or literal) on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// enclosingStmtList locates the statement list holding the statement that
// contains the current node, returning the list, the statement's index in
// it, and the statement itself. Works for blocks and switch/select clauses.
func enclosingStmtList(stack []ast.Node) (list []ast.Stmt, idx int, stmt ast.Stmt) {
	for i := len(stack) - 1; i >= 0; i-- {
		var l []ast.Stmt
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			l = b.List
		case *ast.CaseClause:
			l = b.Body
		case *ast.CommClause:
			l = b.Body
		default:
			continue
		}
		if i+1 >= len(stack) {
			continue
		}
		s, isStmt := stack[i+1].(ast.Stmt)
		if !isStmt {
			continue
		}
		for j, x := range l {
			if x == s {
				return l, j, s
			}
		}
	}
	return nil, -1, nil
}

// stmtLists collects every statement list in the subtree rooted at n.
func stmtLists(n ast.Node) [][]ast.Stmt {
	var out [][]ast.Stmt
	ast.Inspect(n, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.BlockStmt:
			out = append(out, b.List)
		case *ast.CaseClause:
			out = append(out, b.Body)
		case *ast.CommClause:
			out = append(out, b.Body)
		}
		return true
	})
	return out
}

// usedObject resolves an identifier to its object via Uses or Defs.
func usedObject(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
