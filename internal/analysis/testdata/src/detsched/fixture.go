package detsched

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// Request mirrors the load harness's schedule entry.
type Request struct {
	At     time.Duration
	Client string
}

// Scenario mirrors the load harness's client population; all of its
// methods are schedule-path code.
type Scenario struct {
	Humans int
	Pages  int
}

// True positive: the wall clock makes every expansion different.
func (sc Scenario) ScheduleClock(seed int64) []Request {
	start := time.Now()                       // want `ScheduleClock calls time\.Now: a schedule must be a pure function`
	return []Request{{At: time.Since(start)}} // want `ScheduleClock calls time\.Since`
}

// True positive: the global source is shared, per-process seeded state.
func (sc Scenario) ScheduleGlobalRand(seed int64) []Request {
	var reqs []Request
	for i := 0; i < sc.Humans; i++ {
		if rand.Float64() < 0.5 { // want `ScheduleGlobalRand draws from the global math/rand source via rand\.Float64`
			reqs = append(reqs, Request{Client: "h"})
		}
	}
	return reqs
}

// Sanctioned: every draw comes from a generator derived from the seed —
// the rand.New(rand.NewSource(...)) constructors are the pattern, not a
// violation.
func (sc Scenario) Schedule(seed int64) []Request {
	var reqs []Request
	for i := 0; i < sc.Humans; i++ {
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(i)))
		zipf := rand.NewZipf(rng, 1.2, 1.0, uint64(sc.Pages-1))
		reqs = append(reqs, Request{
			At:     time.Duration(rng.Int63n(1000)),
			Client: fmt.Sprintf("h-%d-%d", i, zipf.Uint64()),
		})
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].At < reqs[j].At })
	return reqs
}

// True positive: map iteration order reaches the rendered schedule.
func FormatSchedulePerClient(w io.Writer, perClient map[string][]Request) {
	for client, reqs := range perClient { // want `FormatSchedulePerClient iterates a map while emitting schedule output`
		fmt.Fprintf(w, "%s %d\n", client, len(reqs))
	}
}

// True positive: the collected keys are never sorted, so the consumer
// inherits map order anyway.
func ScheduleClients(perClient map[string]int) []string {
	var clients []string
	for c := range perClient { // want `ScheduleClients collects map keys into clients but never sorts it`
		clients = append(clients, c)
	}
	return clients
}

// Sanctioned: collect, sort, then emit.
func FormatScheduleSorted(w io.Writer, perClient map[string][]Request) {
	var clients []string
	for c := range perClient {
		clients = append(clients, c)
	}
	sort.Strings(clients)
	for _, c := range clients {
		fmt.Fprintf(w, "%s %d\n", c, len(perClient[c]))
	}
}

// Not schedule path: runners measure real wall-clock latency by design.
func measure(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// Suppressed: an audited helper whose clock read feeds a log line, not
// the schedule bytes.
func ScheduleStamp() int64 {
	return time.Now().UnixNano() //memexvet:ignore detsched feeds the run log banner, not the schedule output
}
