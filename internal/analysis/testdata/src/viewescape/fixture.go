package viewescape

// Store/View mirror the version store's pin API: Acquire pins an epoch,
// Release unpins it. ViewEscape's question is whether a reference
// outlives its pin.

type Store struct{}

type View struct{}

func (s *Store) Acquire() *View { return &View{} }

func (v *View) Release() {}

func (v *View) Get(k string) string { return "" }

var globalView *View

var views = make(chan *View, 1)

type holder struct{ v *View }

// True positive: the global keeps the reference after the pin dies.
func leakGlobal(s *Store) {
	v := s.Acquire()
	globalView = v
	v.Release() // want `v is released here but escaped to a global at line \d+`
}

// True positive: deferred Release runs at exit, strictly after the field
// store on every path.
func leakField(s *Store, h *holder) {
	v := s.Acquire()
	defer v.Release()
	h.v = v // want `pinned v escapes to a struct field but its Release is deferred`
}

// True positive: the channel consumer receives a reference whose pin this
// function kills.
func leakChan(s *Store) {
	v := s.Acquire()
	views <- v
	v.Release() // want `v is released here but escaped to a channel at line \d+`
}

// True positive: the goroutine may still be reading when the pin dies.
func leakGoroutine(s *Store) {
	v := s.Acquire()
	go func() {
		_ = v.Get("k")
	}()
	v.Release() // want `v is released here but escaped to a goroutine at line \d+`
}

// True positive: storing after Release hands the consumer a dead view.
func leakDeadView(s *Store, h *holder) {
	v := s.Acquire()
	v.Release()
	h.v = v // want `pinned v escapes to a struct field after being released`
}

// Sanctioned: ownership moves into the goroutine, which releases it.
func goodHandoff(s *Store) {
	v := s.Acquire()
	go func() {
		defer v.Release()
		_ = v.Get("k")
	}()
}

// Sanctioned: escape and Release on disjoint paths is the hand-off idiom
// — the branch that stores transfers ownership and returns; the other
// releases. Only a path carrying both events is a bug.
func goodBranchHandoff(s *Store, keep bool) {
	v := s.Acquire()
	if keep {
		globalView = v
		return
	}
	v.Release()
}

// Sanctioned: plain scoped use.
func goodLinear(s *Store) {
	v := s.Acquire()
	defer v.Release()
	_ = v.Get("k")
}

// Suppressed: audited test-fixture stash.
func auditedStash(s *Store) {
	v := s.Acquire()
	globalView = v
	v.Release() //memexvet:ignore viewescape process-lifetime stash in a test binary, released only at exit
}
