package atomicmix

import "sync/atomic"

// Regression: the metrics-counter class. The server's first per-endpoint
// counter draft bumped request totals with a plain ++ on the handler path
// while /metrics rendered them through atomic loads — a silent torn read
// the race detector only reports if a run happens to interleave.

type endpointMetrics struct {
	requests uint64
	err5xx   uint64
}

// The shipped bug shape: plain increment of an atomically-read field.
func (em *endpointMetrics) record(code int) {
	em.requests++ // want `plain access to endpointMetrics\.requests`
	if code >= 500 {
		em.err5xx++ // want `plain access to endpointMetrics\.err5xx`
	}
}

func (em *endpointMetrics) render() (uint64, uint64) {
	return atomic.LoadUint64(&em.requests), atomic.LoadUint64(&em.err5xx)
}

// The fix: typed atomics make the mixed-mode access a compile error, so
// the fixed struct has nothing for this analyzer to see. Reverting
// recordFixed to a plain field and ++ re-fires the diagnostics above.
type endpointMetricsFixed struct {
	requests atomic.Uint64
	err5xx   atomic.Uint64
}

func (em *endpointMetricsFixed) record(code int) {
	em.requests.Add(1)
	if code >= 500 {
		em.err5xx.Add(1)
	}
}

func (em *endpointMetricsFixed) render() (uint64, uint64) {
	return em.requests.Load(), em.err5xx.Load()
}
