package atomicmix

import "sync/atomic"

// counters mixes access styles: hits is touched via sync/atomic in
// bump(), so every other access to it must be atomic too.
type counters struct {
	hits  uint64
	miss  uint64
	other uint64
}

func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&c.miss, 1)
}

// True positive: a plain read of an atomically-updated field tears.
func (c *counters) read() uint64 {
	return c.hits // want `plain access to counters\.hits, which is updated via sync/atomic`
}

// True positive: a plain write is worse — it can lose concurrent adds.
func (c *counters) mixWrite() {
	c.hits++ // want `plain access to counters\.hits`
}

// Sanctioned: atomic access everywhere.
func (c *counters) loadOK() (uint64, uint64) {
	return atomic.LoadUint64(&c.hits), atomic.LoadUint64(&c.miss)
}

// Sanctioned: other is never touched atomically, so plain access to it
// carries no mixed-mode hazard (it may still need a lock — not this
// analyzer's question).
func (c *counters) plainOther() uint64 {
	c.other++
	return c.other
}

// Suppressed: construction-time access before any goroutine can exist.
func newCounters() *counters {
	c := &counters{}
	c.hits = 0 //memexvet:ignore atomicmix zeroing at construction, no concurrent access yet
	return c
}
