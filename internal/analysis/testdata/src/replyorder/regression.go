package replyorder

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
)

// Regressions: the two reply-ordering bugs this repo shipped, in their
// original shapes. Deleting either fix below re-fires its analyzer line.

type exportEngine struct{}

func (exportEngine) ExportBookmarks(user int64, w io.Writer) error { return nil }

// The handleExport bug: the engine streamed the bookmark tree straight
// into the ResponseWriter, committing a 200 on the first byte; a failure
// mid-walk left the client a truncated file with a success status.
func handleExportBug(w http.ResponseWriter, r *http.Request) {
	var e exportEngine
	if err := e.ExportBookmarks(1, w); err != nil { // want `ExportBookmarks streams into w and returns an error`
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// The fix: buffer, check, then commit — an engine failure is now a 500.
func handleExportFixed(w http.ResponseWriter, r *http.Request) {
	var e exportEngine
	var buf bytes.Buffer
	if err := e.ExportBookmarks(1, &buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(buf.Bytes())
}

func writeErrJSON(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write([]byte(`{"error":` + strconv.Quote(msg) + `}`))
}

// The bare-503 bug: the first shed path answered with a plain 503 and no
// Retry-After, so a shed robot fleet retried in lockstep one RTT later.
func shedBug(w http.ResponseWriter, r *http.Request) {
	writeErrJSON(w, http.StatusServiceUnavailable, "overloaded") // want `503 rejection without Retry-After`
}

// The fix: every rejection sets the back-off hint before committing.
func shedFixed(w http.ResponseWriter, r *http.Request, retrySec int) {
	w.Header().Set("Retry-After", strconv.Itoa(retrySec))
	writeErrJSON(w, http.StatusServiceUnavailable, "overloaded")
}
