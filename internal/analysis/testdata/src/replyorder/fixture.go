package replyorder

import (
	"bytes"
	"net/http"
)

// --- rule 1: commit exactly once ---

// True positive: the 400 arm falls through without a return, so the OK
// commit below is superfluous on that path.
func doubleCommit(w http.ResponseWriter, r *http.Request, bad bool) {
	if bad {
		w.WriteHeader(http.StatusBadRequest)
	}
	w.WriteHeader(http.StatusOK) // want `superfluous w\.WriteHeader: the response is already committed on a path`
}

// True positive: headers mutated after the commit are silently dropped.
func lateHeader(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.Header().Set("Content-Type", "text/plain") // want `w\.Header\(\) is mutated after the response is already committed`
}

// Sanctioned: headers, then status, then body.
func goodOrder(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("{}"))
}

// Sanctioned: the error arm returns, so exactly one commit runs on every
// path — the CFG separates what a line-order scan cannot.
func goodEarlyReturn(w http.ResponseWriter, r *http.Request, fail bool) {
	if fail {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// --- rule 2: no fallible producer streaming into the writer ---

func render(w http.ResponseWriter) error { return nil }

func renderTo(buf *bytes.Buffer) error { return nil }

// True positive: render's first byte commits a 200; its error arrives too
// late to change the status.
func leakyStream(w http.ResponseWriter, r *http.Request) {
	if err := render(w); err != nil { // want `render streams into w and returns an error`
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Sanctioned: render to a buffer, check the error, then write.
func goodBuffered(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := renderTo(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(buf.Bytes())
}

// --- rule 3: 429/503 must carry Retry-After ---

// True positive: a bare shed teaches every client to retry immediately.
func bareShed(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusServiceUnavailable) // want `503 rejection without Retry-After`
}

// True positive: the helper commits the constant 429 and neither it nor
// any path into it sets the header.
func bareHelper(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "slow down", http.StatusTooManyRequests) // want `429 rejection without Retry-After`
}

// True positive: Retry-After on only one path is a bare 503 on the other
// — the must-analysis catches the half-covered merge.
func halfSet(w http.ResponseWriter, r *http.Request, hinted bool) {
	if hinted {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(http.StatusServiceUnavailable) // want `503 rejection without Retry-After`
}

// Sanctioned: header first, then the status.
func goodShed(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
}

// Sanctioned: a local reject helper that sets Retry-After itself covers
// its call sites (the middleware reject() shape).
func reject(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, msg, code)
}

func goodHelperShed(w http.ResponseWriter, r *http.Request) {
	reject(w, http.StatusServiceUnavailable, "overloaded")
}

// Suppressed: an audited internal probe endpoint.
func auditedShed(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusServiceUnavailable) //memexvet:ignore replyorder internal liveness probe, the only client never retries
}
