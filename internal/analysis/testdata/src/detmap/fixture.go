// Fixture for the detmap analyzer: encode paths must not let map
// iteration order reach the output bytes.
package detmap

import (
	"encoding/binary"
	"sort"
)

// The PR 5 encodeCounts bug: ranging a map straight into the buffer.
func encodeBad(counts map[string]int) []byte {
	var buf []byte
	for term, n := range counts { // want `encodeBad iterates a map and writes output inside the loop`
		buf = append(buf, term...)
		buf = binary.AppendUvarint(buf, uint64(n))
	}
	return buf
}

// Collecting the keys but forgetting the sort is the same bug one step
// removed: the consumer inherits map order.
func encodeUnsorted(counts map[string]int) []byte {
	var terms []string
	for term := range counts { // want `collects map keys into terms but never sorts it`
		terms = append(terms, term)
	}
	var buf []byte
	for _, term := range terms {
		buf = append(buf, term...)
		buf = binary.AppendUvarint(buf, uint64(counts[term]))
	}
	return buf
}

// The sanctioned collect → sort → encode shape (post-fix encodeCounts),
// including size accumulation inside the collection loop.
func encodeGood(counts map[string]int) []byte {
	terms := make([]string, 0, len(counts))
	size := 0
	for term := range counts {
		terms = append(terms, term)
		size += len(term) + binary.MaxVarintLen64
	}
	sort.Strings(terms)
	buf := make([]byte, 0, size)
	for _, term := range terms {
		buf = append(buf, term...)
		buf = binary.AppendUvarint(buf, uint64(counts[term]))
	}
	return buf
}

// Not an encode/marshal function and not in a codec file: out of scope,
// the caller owns ordering.
func keysOf(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func encodeSuppressed(flags map[string]bool) []byte {
	var buf []byte
	//memexvet:ignore detmap fixture: output is order-independent (single XOR accumulator)
	for k := range flags {
		buf = append(buf, k[0])
	}
	return buf
}
