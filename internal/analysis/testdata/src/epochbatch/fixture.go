// Fixture for the epochbatch analyzer: one page's derived records publish
// in one batch, and a finished batch is never reused.
package epochbatch

import "strconv"

type Batch struct{}

func (b *Batch) Put(k string, v []byte) {}
func (b *Batch) Delete(k string)        {}
func (b *Batch) Publish() error         { return nil }
func (b *Batch) Abort()                 {}

type Store struct{}

func (s *Store) Begin() *Batch { return &Batch{} }

func tfKey(page int64) string  { return "tf/" + strconv.FormatInt(page, 10) }
func lnkKey(page int64) string { return "lnk/" + strconv.FormatInt(page, 10) }
func rinKey(page int64) string { return "rin/" + strconv.FormatInt(page, 10) }

// The torn-publish bug: a snapshot between the two publishes sees the
// page's text without its adjacency.
func torn(s *Store, page int64, tf, lnk []byte) {
	b1 := s.Begin()
	b1.Put(tfKey(page), tf)
	b1.Publish()
	b2 := s.Begin()
	b2.Put(lnkKey(page), lnk) // want `derived lnk/ record for page page staged into b2`
	b2.Publish()
}

func reuseAfterPublish(s *Store, k string, v []byte) {
	b := s.Begin()
	b.Put(k, v)
	b.Publish()
	b.Put(k, v) // want `b\.Put after b\.Publish`
}

// The sanctioned shape (links.go publish): everything for the page in one
// batch, with a deferred Abort as the panic guard.
func good(s *Store, page int64, tf, lnk, rin []byte) {
	b := s.Begin()
	defer b.Abort()
	b.Put(tfKey(page), tf)
	b.Put(lnkKey(page), lnk)
	b.Put(rinKey(page), rin)
	b.Publish()
}

// Re-beginning into the same variable starts a fresh batch.
func goodLoop(s *Store, pages []int64, blob []byte) {
	for _, p := range pages {
		b := s.Begin()
		b.Put(tfKey(p), blob)
		b.Put(lnkKey(p), blob)
		b.Publish()
	}
}

// Different pages may use different batches.
func goodTwoPages(s *Store, p1, p2 int64, blob []byte) {
	b1 := s.Begin()
	b1.Put(tfKey(p1), blob)
	b1.Put(lnkKey(p1), blob)
	b1.Publish()
	b2 := s.Begin()
	b2.Put(tfKey(p2), blob)
	b2.Put(lnkKey(p2), blob)
	b2.Publish()
}

func suppressed(s *Store, page int64, tf, lnk []byte) {
	b1 := s.Begin()
	b1.Put(tfKey(page), tf)
	b1.Publish()
	b2 := s.Begin()
	//memexvet:ignore epochbatch fixture: backfill path repairs records already torn on disk
	b2.Put(lnkKey(page), lnk)
	b2.Publish()
}
