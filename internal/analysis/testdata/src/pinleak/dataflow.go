package pinleak

// Path-sensitive cases the old statement-list walk could not express:
// these are answered by the CFG dataflow (released-on-all-paths as a
// forward may-analysis), not by "is there a Release somewhere".

// Released only on one arm of the if: the fall-through path leaks. The
// pre-CFG checker accepted this shape because *some* Release existed.
func leakElsePath(s *Store, c bool) {
	snap := s.Acquire() // want `snap is released at line \d+, but a path reaching the end of the function leaks the pin`
	if c {
		snap.Release()
	}
}

// Released on both arms: clean, no single dominating Release needed.
func goodBothArms(s *Store, c bool) {
	snap := s.Acquire()
	if c {
		snap.Release()
	} else {
		snap.Release()
	}
}

// A switch that releases in every case, with a default, covers all
// paths.
func goodSwitchAllPaths(s *Store, x int) {
	snap := s.Acquire()
	switch x {
	case 1:
		snap.Release()
	default:
		snap.Release()
	}
}

// Without a default, the no-case-matched path leaves the switch still
// pinned.
func leakSwitchNoDefault(s *Store, x int) {
	snap := s.Acquire() // want `a path reaching the end of the function leaks the pin`
	switch x {
	case 1:
		snap.Release()
	}
}

// Acquire/release fully inside a loop body is clean on every iteration.
func goodLoopReacquire(s *Store) {
	for i := 0; i < 3; i++ {
		snap := s.Acquire()
		snap.Get("k")
		snap.Release()
	}
}

// A break that jumps over the in-loop Release leaks that iteration's
// pin.
func leakBreakPath(s *Store, keys []string) {
	for _, k := range keys {
		snap := s.Acquire() // want `a path reaching the end of the function leaks the pin`
		if k == "" {
			break
		}
		snap.Release()
	}
}

// Release after the loop covers the break path too: break lands on the
// statement after the loop, which releases.
func goodBreakThenRelease(s *Store, keys []string) {
	snap := s.Acquire()
	for _, k := range keys {
		if k == "" {
			break
		}
		snap.Get(k)
	}
	snap.Release()
}
