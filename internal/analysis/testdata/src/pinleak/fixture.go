// Fixture for the pinleak analyzer: pins must be released on all paths.
package pinleak

// Mini re-creation of the version store's pin surface: any method named
// Acquire/DerivedSnapshot whose result has a Release method is a pin.

type Snapshot struct{ epoch uint64 }

func (s *Snapshot) Release()          {}
func (s *Snapshot) Epoch() uint64     { return s.epoch }
func (s *Snapshot) Get(k string) bool { return false }

type Store struct{}

func (s *Store) Acquire() *Snapshot { return &Snapshot{} }

type View struct{ sn *Snapshot }

func (v *View) Release() {}

type Engine struct{ vs *Store }

func (e *Engine) DerivedSnapshot() *View { return &View{sn: e.vs.Acquire()} }

func discarded(s *Store) {
	s.Acquire() // want `result of Acquire\(\) is discarded`
}

func chained(s *Store) bool {
	return s.Acquire().Get("k") // want `Acquire\(\) result is consumed without being stored`
}

func blank(s *Store) {
	_ = s.Acquire() // want `assigned to _`
}

func neverReleased(s *Store) uint64 {
	snap := s.Acquire() // want `snap pins a snapshot here but is never released`
	return snap.Epoch()
}

func leakOnEarlyReturn(s *Store, fail bool) bool {
	snap := s.Acquire() // want `the return at line \d+ leaks the pin`
	if fail {
		return false
	}
	ok := snap.Get("k")
	snap.Release()
	return ok
}

func goodDefer(e *Engine) uint64 {
	view := e.DerivedSnapshot()
	defer view.Release()
	return 7
}

func goodSameBlock(s *Store) bool {
	snap := s.Acquire()
	ok := snap.Get("k")
	snap.Release()
	return ok
}

func goodReleasedBranchBeforeReturn(s *Store, fail bool) bool {
	snap := s.Acquire()
	if fail {
		snap.Release()
		return false
	}
	ok := snap.Get("k")
	snap.Release()
	return ok
}

// Ownership transfer: the pin escapes inside a composite literal (the
// DerivedSnapshot pattern itself) or to another function.
func goodEscapes(s *Store) *View {
	return &View{sn: s.Acquire()}
}

func consume(sn *Snapshot) { sn.Release() }

func goodHandedOff(s *Store) {
	snap := s.Acquire()
	consume(snap)
}

func goodDeferredClosure(s *Store) {
	snap := s.Acquire()
	defer func() {
		snap.Release()
	}()
	snap.Get("k")
}

func suppressed(s *Store) {
	s.Acquire() //memexvet:ignore pinleak fixture: pin intentionally held for process lifetime
}

// The pin dies in the expression that created it: the acquire/release
// micro-benchmark shape.
func goodImmediateChainedRelease(s *Store) {
	s.Acquire().Release()
}

// A return inside a closure exits the closure, not the function holding
// the pin; the explicit Release below still dominates.
func goodClosureReturnBeforeRelease(s *Store, walk func(func(string) bool)) {
	sn := s.Acquire()
	walk(func(k string) bool {
		if k == "" {
			return false
		}
		return true
	})
	sn.Release()
}
