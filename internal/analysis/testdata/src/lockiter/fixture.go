// Fixture for the lockiter analyzer: no nested iteration or blocking
// calls while a sync mutex is held.
package lockiter

import (
	"net/http"
	"sync"
	"time"
)

type Graph struct {
	mu  sync.RWMutex
	out map[int64][]int64
}

// The PR 5 PageRank shape: a power loop over the whole graph under the
// read lock.
func (g *Graph) bad() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, vs := range g.out { // want `nested iteration while holding g\.mu`
		for range vs {
			n++
		}
	}
	return n
}

func (g *Graph) badSleep() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `call to time\.Sleep while holding g\.mu`
	g.mu.Unlock()
}

func (g *Graph) badFetch(c *http.Client) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	c.Get("http://example.invalid") // want `call to net/http\.Get while holding g\.mu`
}

// The sanctioned shape: snapshot under the lock, release, then iterate.
func (g *Graph) goodSnapshotThenWork(nodes []int64) int {
	outs := make([][]int64, len(nodes))
	g.mu.RLock()
	for i, u := range nodes {
		outs[i] = g.out[u]
	}
	g.mu.RUnlock()
	n := 0
	for _, vs := range outs {
		for range vs {
			n++
		}
	}
	return n
}

// A single-level walk under the lock is allowed.
func (g *Graph) goodFlatLoop() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for range g.out {
		n++
	}
	return n
}

// Unlocking inside the loop means the hold is not loop-long.
func (g *Graph) goodUnlocksInside(nodes []int64) {
	g.mu.RLock()
	for _, u := range nodes {
		if u == 0 {
			g.mu.RUnlock()
			return
		}
		for range g.out[u] {
		}
	}
	g.mu.RUnlock()
}

// Goroutines spawned under the lock iterate on their own stack, not under
// the caller's lock.
func (g *Graph) goodGoroutine(wg *sync.WaitGroup) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for id := range g.out {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for range g.out[id] {
			}
		}(id)
	}
}

func (g *Graph) suppressed() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	//memexvet:ignore lockiter fixture: bounded two-level walk audited as cheap
	for _, vs := range g.out {
		for range vs {
			n++
		}
	}
	return n
}
