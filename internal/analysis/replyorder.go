package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ReplyOrder enforces the server's HTTP reply discipline, three rules the
// repo has shipped violations of:
//
//  1. Once a response is committed (WriteHeader, or a body write, which
//     commits an implicit 200), calling WriteHeader again or mutating
//     headers is a silent no-op — net/http logs "superfluous WriteHeader"
//     and drops the mutation. On some path reaching such a call an error
//     reply has usually fallen through a missing return.
//  2. A handler must not stream a fallible producer straight into the
//     ResponseWriter: the first byte commits a 200, and an error arriving
//     mid-stream leaves the client a truncated body with a success status
//     (the handleExport class). Render to a buffer, check the error, then
//     write.
//  3. Every 429/503 rejection must carry Retry-After, so shed clients
//     back off instead of retrying in lockstep (the bare-503 class the
//     slo CI job can only catch at runtime).
//
// Rules 1 and 3 are path questions and run on the CFG: rule 1 as a
// forward may-analysis (committed on *some* path reaching the call), rule
// 3 as a must-analysis (Retry-After set on *every* path reaching the
// rejection).
var ReplyOrder = &Analyzer{
	Name: "replyorder",
	Doc: "check HTTP handlers commit a response exactly once: no WriteHeader/header " +
		"mutation after commit, no fallible call streaming into the ResponseWriter, " +
		"and Retry-After on every 429/503 rejection",
	Run: runReplyOrder,
}

// Response-commit states for the may-analysis.
const (
	rwUntouched = 0
	rwCommitted = 1
)

// Retry-After states for the must-analysis.
const (
	raUnset = 0
	raSet   = 1
)

func runReplyOrder(pass *Pass) error {
	decls := funcDeclsByObj(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ft, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ft, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			for _, w := range writerParams(pass.TypesInfo, ft) {
				checkReplyOrder(pass, decls, body, w)
			}
			return true
		})
	}
	return nil
}

// checkReplyOrder runs the three rules for one ResponseWriter parameter.
func checkReplyOrder(pass *Pass, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt, w types.Object) {
	cfg := buildCFG(body)

	commitProb := flowProblem{
		join: joinMax,
		transfer: func(n ast.Node, f facts) {
			walkNode(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && commitsResponse(pass.TypesInfo, call, w) {
					f[w] = rwCommitted
				}
				return true
			})
		},
	}
	retryProb := flowProblem{
		join: joinMin,
		transfer: func(n ast.Node, f facts) {
			walkNode(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isRA, ok := headerMutation(pass.TypesInfo, call, w); ok && isRA {
					f[w] = raSet
				}
				// A helper that sets Retry-After itself (the reject()
				// shape) establishes the fact for the caller too.
				if fn := calleeFunc(pass.TypesInfo, call); fn != nil &&
					callPassesWriter(pass.TypesInfo, call, w) && calleeSetsRetryAfter(decls, fn) {
					f[w] = raSet
				}
				return true
			})
		},
	}
	commitRes := run(cfg, commitProb)
	retryRes := run(cfg, retryProb)

	// Rule 1: no WriteHeader or header mutation once committed on a path.
	visitWithFacts(cfg, commitRes, commitProb, func(n ast.Node, before facts) {
		committed := before[w] == rwCommitted
		walkNode(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if committed {
				if name, ok := writerMethod(pass.TypesInfo, call, w); ok && name == "WriteHeader" {
					pass.Reportf(call.Pos(),
						"superfluous %s.WriteHeader: the response is already committed on a path reaching this call (did an error reply fall through a missing return?)",
						w.Name())
				}
				if _, ok := headerMutation(pass.TypesInfo, call, w); ok {
					pass.Reportf(call.Pos(),
						"%s.Header() is mutated after the response is already committed on a path reaching this line; headers set after the first write are silently dropped",
						w.Name())
				}
			}
			// Rule 2 needs no facts: streaming a fallible producer into
			// the writer is wrong wherever it happens.
			if fn := calleeFunc(pass.TypesInfo, call); fn != nil &&
				callPassesWriter(pass.TypesInfo, call, w) &&
				returnsError(fn) && !printFamily(fn) {
				pass.Reportf(call.Pos(),
					"%s streams into %s and returns an error: a mid-stream failure truncates a committed 200; render to a buffer, check the error, then write",
					fn.Name(), w.Name())
			}
			return true
		})
	})

	// Rule 3: Retry-After must be set before any 429/503 commit.
	visitWithFacts(cfg, retryRes, retryProb, func(n ast.Node, before facts) {
		walkNode(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			code, isReject := rejectionSite(pass.TypesInfo, call, w)
			if !isReject || before[w] == raSet {
				return true
			}
			if fn := calleeFunc(pass.TypesInfo, call); fn != nil && calleeSetsRetryAfter(decls, fn) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%d rejection without Retry-After: set the header before committing the status so shed clients back off instead of retrying in lockstep",
				code)
			return true
		})
	})
}

// writerParams returns the parameter objects of ft whose type is an
// http.ResponseWriter (by name, or any interface carrying WriteHeader —
// which lets fixtures use a local stand-in without importing net/http).
func writerParams(info *types.Info, ft *ast.FuncType) []types.Object {
	var out []types.Object
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && isResponseWriter(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

func isResponseWriter(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter" {
			return true
		}
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	hasWH, hasHdr := false, false
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "WriteHeader":
			hasWH = true
		case "Header":
			hasHdr = true
		}
	}
	return hasWH && hasHdr
}

// writerMethod reports a direct method call on the writer object (w.Write,
// w.WriteHeader, w.Header) and returns the method name.
func writerMethod(info *types.Info, call *ast.CallExpr, w types.Object) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || usedObject(info, id) != w {
		return "", false
	}
	return sel.Sel.Name, true
}

// headerMutation matches w.Header().Set/Add/Del(...) and reports whether
// the mutated header is Retry-After.
func headerMutation(info *types.Info, call *ast.CallExpr, w types.Object) (retryAfter, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return false, false
	}
	switch sel.Sel.Name {
	case "Set", "Add", "Del":
	default:
		return false, false
	}
	inner, isCall := ast.Unparen(sel.X).(*ast.CallExpr)
	if !isCall {
		return false, false
	}
	if name, isW := writerMethod(info, inner, w); !isW || name != "Header" {
		return false, false
	}
	if sel.Sel.Name != "Del" && len(call.Args) > 0 {
		if tv, found := info.Types[call.Args[0]]; found && tv.Value != nil && tv.Value.Kind() == constant.String {
			if strings.EqualFold(constant.StringVal(tv.Value), "Retry-After") {
				return true, true
			}
		}
	}
	return false, true
}

// commitsResponse reports whether call commits the response on w: a direct
// WriteHeader/Write, or w handed to a print/stream helper that emits body
// bytes.
func commitsResponse(info *types.Info, call *ast.CallExpr, w types.Object) bool {
	if name, ok := writerMethod(info, call, w); ok {
		return name == "WriteHeader" || name == "Write"
	}
	if !callPassesWriter(info, call, w) {
		return false
	}
	fn := calleeFunc(info, call)
	return fn != nil && (printFamily(fn) || returnsError(fn))
}

// callPassesWriter reports whether w appears as a direct argument of call.
func callPassesWriter(info *types.Info, call *ast.CallExpr, w types.Object) bool {
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && usedObject(info, id) == w {
			return true
		}
	}
	return false
}

// calleeFunc resolves the called function or method object, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := usedObject(info, id).(*types.Func)
	return fn
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// printFamily is the sanctioned streaming set: fmt.Fprint* and
// io.WriteString emit formatted in-memory values, the /metrics idiom; an
// error from them means the connection is gone, which no buffering fixes.
func printFamily(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		return strings.HasPrefix(fn.Name(), "Fprint")
	case "io":
		return fn.Name() == "WriteString"
	}
	return false
}

// rejectionSite reports whether call commits a 429/503 on w: either a
// direct w.WriteHeader with a constant rejection status, or a helper call
// given both w and the constant status.
func rejectionSite(info *types.Info, call *ast.CallExpr, w types.Object) (int, bool) {
	if name, ok := writerMethod(info, call, w); ok {
		if name != "WriteHeader" || len(call.Args) != 1 {
			return 0, false
		}
		if code, ok := rejectionStatus(info, call.Args[0]); ok {
			return code, true
		}
		return 0, false
	}
	if !callPassesWriter(info, call, w) {
		return 0, false
	}
	for _, arg := range call.Args {
		if code, ok := rejectionStatus(info, arg); ok {
			return code, true
		}
	}
	return 0, false
}

func rejectionStatus(info *types.Info, e ast.Expr) (int, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok || (v != 429 && v != 503) {
		return 0, false
	}
	return int(v), true
}

// funcDeclsByObj indexes the package's function declarations by their
// type object, for cheap intra-package callee lookups.
func funcDeclsByObj(pass *Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// calleeSetsRetryAfter reports whether fn is a package-local function
// whose body sets the Retry-After header on its own writer (the reject()
// shape): calling such a helper with a constant 429/503 is sanctioned.
func calleeSetsRetryAfter(decls map[*types.Func]*ast.FuncDecl, fn *types.Func) bool {
	fd, ok := decls[fn]
	if !ok || fd.Body == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Set" && sel.Sel.Name != "Add") || len(call.Args) == 0 {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		innerSel, ok := inner.Fun.(*ast.SelectorExpr)
		if !ok || innerSel.Sel.Name != "Header" {
			return true
		}
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok &&
			strings.EqualFold(strings.Trim(lit.Value, `"`), "Retry-After") {
			found = true
		}
		return !found
	})
	return found
}
