// Package textindex implements Memex's full-text search over all pages a
// community has visited: an in-memory inverted index with incremental
// updates, deletions, boolean filtering, and ranked retrieval under both
// classic TF-IDF cosine and BM25 scoring. Postings can be persisted into a
// kvstore keyspace and reloaded (the paper keeps term-level indices in its
// Berkeley DB layer).
package textindex

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"memex/internal/kvstore"
	"memex/internal/text"
)

// Posting is one document entry in a term's posting list.
type Posting struct {
	Doc int64
	TF  int32
}

// Index is the inverted index. Safe for concurrent use.
type Index struct {
	mu       sync.RWMutex
	dict     *text.Dict
	postings map[int32][]Posting // term id → postings sorted by Doc
	docLen   map[int64]int       // doc → token count
	docTerms map[int64][]int32   // doc → term ids (for precise removal)
	totalLen int64
	deleted  map[int64]bool
}

// New returns an empty index sharing the given dictionary (pass nil to
// create a private one).
func New(dict *text.Dict) *Index {
	if dict == nil {
		dict = text.NewDict()
	}
	return &Index{
		dict:     dict,
		postings: make(map[int32][]Posting),
		docLen:   make(map[int64]int),
		docTerms: make(map[int64][]int32),
		deleted:  make(map[int64]bool),
	}
}

// Dict returns the index's term dictionary.
func (ix *Index) Dict() *text.Dict { return ix.dict }

// Add indexes document content under id doc. Re-adding an id replaces the
// previous version (via tombstone + fresh postings).
func (ix *Index) Add(doc int64, content string) {
	tf := text.TermCounts(content)
	ix.AddCounts(doc, tf)
}

// AddCounts indexes a precomputed term-count map.
func (ix *Index) AddCounts(doc int64, tf map[string]int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, exists := ix.docLen[doc]; exists {
		ix.removePostingsLocked(doc)
		ix.deleteLocked(doc)
	}
	delete(ix.deleted, doc)
	total := 0
	terms := make([]int32, 0, len(tf))
	for term, n := range tf {
		id := ix.dict.ID(term)
		pl := ix.postings[id]
		i := sort.Search(len(pl), func(i int) bool { return pl[i].Doc >= doc })
		if i < len(pl) && pl[i].Doc == doc {
			pl[i].TF = int32(n)
		} else {
			pl = append(pl, Posting{})
			copy(pl[i+1:], pl[i:])
			pl[i] = Posting{Doc: doc, TF: int32(n)}
		}
		ix.postings[id] = pl
		terms = append(terms, id)
		total += n
	}
	ix.docTerms[doc] = terms
	ix.docLen[doc] = total
	ix.totalLen += int64(total)
}

// Delete removes doc from the index (lazy: postings are filtered at query
// time and compacted by Vacuum).
func (ix *Index) Delete(doc int64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.deleteLocked(doc)
}

func (ix *Index) deleteLocked(doc int64) {
	if n, ok := ix.docLen[doc]; ok {
		ix.totalLen -= int64(n)
		delete(ix.docLen, doc)
		ix.deleted[doc] = true
	}
}

// removePostingsLocked physically removes doc's postings (used on re-add so
// the fresh postings are authoritative immediately).
func (ix *Index) removePostingsLocked(doc int64) {
	for _, id := range ix.docTerms[doc] {
		pl := ix.postings[id]
		i := sort.Search(len(pl), func(i int) bool { return pl[i].Doc >= doc })
		if i < len(pl) && pl[i].Doc == doc {
			pl = append(pl[:i], pl[i+1:]...)
			if len(pl) == 0 {
				delete(ix.postings, id)
			} else {
				ix.postings[id] = pl
			}
		}
	}
	delete(ix.docTerms, doc)
}

// Vacuum rewrites posting lists dropping deleted documents.
func (ix *Index) Vacuum() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.deleted) == 0 {
		return
	}
	//memexvet:ignore lockiter Vacuum rewrites the shared posting lists in place; the write lock is the operation, not incidental to it
	for id, pl := range ix.postings {
		out := pl[:0]
		for _, p := range pl {
			if !ix.deleted[p.Doc] {
				out = append(out, p)
			}
		}
		if len(out) == 0 {
			delete(ix.postings, id)
		} else {
			ix.postings[id] = out
		}
	}
	for doc := range ix.deleted {
		delete(ix.docTerms, doc)
	}
	ix.deleted = make(map[int64]bool)
}

// Docs returns the number of live documents.
func (ix *Index) Docs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docLen)
}

// Terms returns the number of distinct indexed terms.
func (ix *Index) Terms() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings)
}

// DF returns the document frequency of a raw (unstemmed) query term.
func (ix *Index) DF(term string) int {
	stems := text.Terms(term)
	if len(stems) == 0 {
		return 0
	}
	id, ok := ix.dict.Lookup(stems[0])
	if !ok {
		return 0
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, p := range ix.postings[id] {
		if !ix.deleted[p.Doc] {
			n++
		}
	}
	return n
}

// Scoring selects the ranking function.
type Scoring int

const (
	// TFIDF ranks by cosine of tf-idf weights (the 1993 scatter/gather era
	// weighting Memex started from).
	TFIDF Scoring = iota
	// BM25 ranks by Okapi BM25 (k1=1.2, b=0.75).
	BM25
)

// Hit is one ranked search result.
type Hit struct {
	Doc   int64
	Score float64
}

// Search returns the top-k documents matching the free-text query, ranked
// by the selected scoring function. Multi-term queries are disjunctive
// (any term matches) as in the classic vector model.
func (ix *Index) Search(query string, k int, scoring Scoring) []Hit {
	terms := text.Terms(query)
	if len(terms) == 0 || k <= 0 {
		return nil
	}
	qtf := map[string]int{}
	for _, t := range terms {
		qtf[t]++
	}

	ix.mu.RLock()
	defer ix.mu.RUnlock()

	nDocs := len(ix.docLen)
	if nDocs == 0 {
		return nil
	}
	avgLen := float64(ix.totalLen) / float64(nDocs)
	scores := make(map[int64]float64)

	//memexvet:ignore lockiter scoring needs one consistent posting set; the index mutates in place, and the walk is bounded by the query's terms, not the archive
	for term, qn := range qtf {
		id, ok := ix.dict.Lookup(term)
		if !ok {
			continue
		}
		pl := ix.postings[id]
		df := 0
		for _, p := range pl {
			if !ix.deleted[p.Doc] {
				df++
			}
		}
		if df == 0 {
			continue
		}
		switch scoring {
		case BM25:
			idf := math.Log(1 + (float64(nDocs)-float64(df)+0.5)/(float64(df)+0.5))
			const k1, b = 1.2, 0.75
			for _, p := range pl {
				if ix.deleted[p.Doc] {
					continue
				}
				tf := float64(p.TF)
				dl := float64(ix.docLen[p.Doc])
				norm := tf * (k1 + 1) / (tf + k1*(1-b+b*dl/avgLen))
				scores[p.Doc] += float64(qn) * idf * norm
			}
		default: // TFIDF
			idf := math.Log(float64(1+nDocs) / float64(1+df))
			qw := (1 + math.Log(float64(qn))) * idf
			for _, p := range pl {
				if ix.deleted[p.Doc] {
					continue
				}
				dw := (1 + math.Log(float64(p.TF))) * idf
				dl := float64(ix.docLen[p.Doc])
				if dl > 0 {
					dw /= math.Sqrt(dl)
				}
				scores[p.Doc] += qw * dw
			}
		}
	}
	return topK(scores, k)
}

// SearchAll returns top-k documents containing every query term (boolean
// AND), ranked by the selected scoring.
func (ix *Index) SearchAll(query string, k int, scoring Scoring) []Hit {
	terms := text.Terms(query)
	if len(terms) == 0 {
		return nil
	}
	required := make(map[int64]int)
	distinct := map[string]bool{}
	for _, t := range terms {
		distinct[t] = true
	}

	ix.mu.RLock()
	for t := range distinct {
		id, ok := ix.dict.Lookup(t)
		if !ok {
			ix.mu.RUnlock()
			return nil
		}
		for _, p := range ix.postings[id] {
			if !ix.deleted[p.Doc] {
				required[p.Doc]++
			}
		}
	}
	ix.mu.RUnlock()

	hits := ix.Search(query, len(required)+k, scoring)
	out := hits[:0]
	for _, h := range hits {
		if required[h.Doc] == len(distinct) {
			out = append(out, h)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

// topK selects the k highest-scoring docs using a min-heap.
func topK(scores map[int64]float64, k int) []Hit {
	h := &hitHeap{}
	heap.Init(h)
	for doc, s := range scores {
		if h.Len() < k {
			heap.Push(h, Hit{doc, s})
		} else if s > (*h)[0].Score || (s == (*h)[0].Score && doc < (*h)[0].Doc) {
			(*h)[0] = Hit{doc, s}
			heap.Fix(h, 0)
		}
	}
	out := make([]Hit, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Hit)
	}
	return out
}

type hitHeap []Hit

func (h hitHeap) Len() int { return len(h) }
func (h hitHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Doc > h[j].Doc // stable: lower doc id wins ties
}
func (h hitHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *hitHeap) Push(x any)   { *h = append(*h, x.(Hit)) }
func (h *hitHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// --- persistence into a kvstore keyspace ---

// Save writes the index into store under prefix. Layout:
//
//	<prefix>/t/<term>  → packed postings (varint doc deltas + tf)
//	<prefix>/d/<doc>   → doc length (varint)
func (ix *Index) Save(store *kvstore.Store, prefix string) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var batch []kvstore.KV
	//memexvet:ignore lockiter Save needs one consistent cut of an in-place index; copying every posting list to shorten the hold would double memory for a checkpoint-rate call
	for id, pl := range ix.postings {
		term := ix.dict.Term(id)
		var buf []byte
		var prev int64
		for _, p := range pl {
			if ix.deleted[p.Doc] {
				continue
			}
			buf = binary.AppendUvarint(buf, uint64(p.Doc-prev))
			buf = binary.AppendUvarint(buf, uint64(p.TF))
			prev = p.Doc
		}
		if len(buf) == 0 {
			continue
		}
		batch = append(batch, kvstore.KV{
			Key:   []byte(fmt.Sprintf("%s/t/%s", prefix, term)),
			Value: buf,
		})
	}
	for doc, n := range ix.docLen {
		var buf []byte
		buf = binary.AppendUvarint(buf, uint64(n))
		batch = append(batch, kvstore.KV{
			Key:   []byte(fmt.Sprintf("%s/d/%016x", prefix, uint64(doc))),
			Value: buf,
		})
	}
	return store.PutBatch(batch)
}

// Load reads an index previously written by Save.
func Load(store *kvstore.Store, prefix string, dict *text.Dict) (*Index, error) {
	ix := New(dict)
	err := store.ScanPrefix([]byte(prefix+"/t/"), func(k, v []byte) bool {
		term := string(k[len(prefix)+3:])
		id := ix.dict.ID(term)
		var pl []Posting
		var prev int64
		for len(v) > 0 {
			delta, n := binary.Uvarint(v)
			if n <= 0 {
				break
			}
			v = v[n:]
			tf, n2 := binary.Uvarint(v)
			if n2 <= 0 {
				break
			}
			v = v[n2:]
			prev += int64(delta)
			pl = append(pl, Posting{Doc: prev, TF: int32(tf)})
		}
		ix.postings[id] = pl
		for _, p := range pl {
			ix.docTerms[p.Doc] = append(ix.docTerms[p.Doc], id)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	err = store.ScanPrefix([]byte(prefix+"/d/"), func(k, v []byte) bool {
		var doc uint64
		fmt.Sscanf(string(k[len(prefix)+3:]), "%016x", &doc)
		n, _ := binary.Uvarint(v)
		ix.docLen[int64(doc)] = int(n)
		ix.totalLen += int64(n)
		return true
	})
	if err != nil {
		return nil, err
	}
	return ix, nil
}
