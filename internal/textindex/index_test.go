package textindex

import (
	"fmt"
	"math/rand"
	"testing"

	"memex/internal/kvstore"
)

func seedIndex() *Index {
	ix := New(nil)
	ix.Add(1, "classical music symphonies by Beethoven and Mozart")
	ix.Add(2, "jazz music improvisation saxophone")
	ix.Add(3, "compiler optimization register allocation at Rice University")
	ix.Add(4, "classical guitar music lessons")
	ix.Add(5, "database systems storage manager transactions")
	return ix
}

func docsOf(hits []Hit) []int64 {
	out := make([]int64, len(hits))
	for i, h := range hits {
		out[i] = h.Doc
	}
	return out
}

func contains(hits []Hit, doc int64) bool {
	for _, h := range hits {
		if h.Doc == doc {
			return true
		}
	}
	return false
}

func TestBasicSearch(t *testing.T) {
	ix := seedIndex()
	for _, scoring := range []Scoring{TFIDF, BM25} {
		hits := ix.Search("classical music", 10, scoring)
		if len(hits) == 0 {
			t.Fatalf("scoring %v: no hits", scoring)
		}
		// Docs 1 and 4 match both terms; they must outrank docs 2 (music only).
		if !(hits[0].Doc == 1 || hits[0].Doc == 4) {
			t.Fatalf("scoring %v: top hit %v", scoring, hits[0])
		}
		if !contains(hits, 2) {
			t.Fatalf("scoring %v: disjunctive search missed doc 2: %v", scoring, docsOf(hits))
		}
		if contains(hits, 5) {
			t.Fatalf("scoring %v: unrelated doc 5 matched", scoring)
		}
	}
}

func TestSearchRankingOrder(t *testing.T) {
	ix := seedIndex()
	hits := ix.Search("compiler optimization", 10, BM25)
	if len(hits) != 1 || hits[0].Doc != 3 {
		t.Fatalf("hits = %v", hits)
	}
	// Scores descending.
	hits = ix.Search("music", 10, BM25)
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatalf("scores not descending: %v", hits)
		}
	}
}

func TestSearchAll(t *testing.T) {
	ix := seedIndex()
	hits := ix.SearchAll("classical music", 10, BM25)
	if len(hits) != 2 {
		t.Fatalf("AND search got %v", docsOf(hits))
	}
	for _, h := range hits {
		if h.Doc != 1 && h.Doc != 4 {
			t.Fatalf("AND search matched doc %d", h.Doc)
		}
	}
	if hits := ix.SearchAll("classical saxophone", 10, BM25); len(hits) != 0 {
		t.Fatalf("impossible AND matched %v", docsOf(hits))
	}
	if hits := ix.SearchAll("nonexistentterm music", 10, BM25); hits != nil {
		t.Fatalf("AND with unseen term returned %v", docsOf(hits))
	}
}

func TestTopKLimit(t *testing.T) {
	ix := seedIndex()
	hits := ix.Search("music", 2, TFIDF)
	if len(hits) != 2 {
		t.Fatalf("k=2 got %d hits", len(hits))
	}
}

func TestEmptyAndStopwordQueries(t *testing.T) {
	ix := seedIndex()
	if hits := ix.Search("", 5, BM25); hits != nil {
		t.Fatal("empty query matched")
	}
	if hits := ix.Search("the and of", 5, BM25); hits != nil {
		t.Fatal("stopword query matched")
	}
	if hits := ix.Search("music", 0, BM25); hits != nil {
		t.Fatal("k=0 returned hits")
	}
}

func TestReAddReplaces(t *testing.T) {
	ix := seedIndex()
	ix.Add(2, "cooking recipes pasta")
	if hits := ix.Search("jazz", 5, BM25); len(hits) != 0 {
		t.Fatalf("old content still searchable: %v", docsOf(hits))
	}
	hits := ix.Search("pasta", 5, BM25)
	if len(hits) != 1 || hits[0].Doc != 2 {
		t.Fatalf("new content not searchable: %v", hits)
	}
	if ix.Docs() != 5 {
		t.Fatalf("Docs = %d, want 5", ix.Docs())
	}
}

func TestDeleteAndVacuum(t *testing.T) {
	ix := seedIndex()
	ix.Delete(1)
	if hits := ix.Search("beethoven", 5, BM25); len(hits) != 0 {
		t.Fatalf("deleted doc matched: %v", docsOf(hits))
	}
	if ix.Docs() != 4 {
		t.Fatalf("Docs = %d", ix.Docs())
	}
	preTerms := ix.Terms()
	ix.Vacuum()
	if ix.Terms() >= preTerms {
		t.Fatalf("Vacuum did not drop orphaned terms: %d -> %d", preTerms, ix.Terms())
	}
	if hits := ix.Search("classical", 5, BM25); len(hits) != 1 || hits[0].Doc != 4 {
		t.Fatalf("post-vacuum search: %v", docsOf(hits))
	}
	// Deleting a missing doc is harmless.
	ix.Delete(999)
}

func TestDF(t *testing.T) {
	ix := seedIndex()
	if df := ix.DF("music"); df != 3 {
		t.Fatalf("DF(music) = %d, want 3", df)
	}
	if df := ix.DF("unseen"); df != 0 {
		t.Fatalf("DF(unseen) = %d", df)
	}
	ix.Delete(2)
	if df := ix.DF("music"); df != 2 {
		t.Fatalf("DF(music) after delete = %d, want 2", df)
	}
}

func TestStemmedMatching(t *testing.T) {
	ix := New(nil)
	ix.Add(1, "optimizing compilers")
	hits := ix.Search("compiler optimization", 5, BM25)
	if len(hits) != 1 {
		t.Fatalf("stemmed match failed: %v", hits)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := kvstore.Open(dir, kvstore.Options{Sync: kvstore.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	ix := seedIndex()
	ix.Delete(5) // deleted docs must not survive the round trip
	if err := ix.Save(store, "idx"); err != nil {
		t.Fatalf("Save: %v", err)
	}
	ix2, err := Load(store, "idx", nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if ix2.Docs() != 4 {
		t.Fatalf("loaded Docs = %d, want 4", ix2.Docs())
	}
	for _, q := range []string{"classical music", "jazz", "compiler"} {
		a := docsOf(ix.Search(q, 10, BM25))
		b := docsOf(ix2.Search(q, 10, BM25))
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("query %q: loaded index differs: %v vs %v", q, a, b)
		}
	}
	if hits := ix2.Search("database", 5, BM25); len(hits) != 0 {
		t.Fatal("deleted doc resurrected by Save/Load")
	}
}

func TestLargeIndexConsistency(t *testing.T) {
	ix := New(nil)
	rng := rand.New(rand.NewSource(11))
	vocab := []string{"music", "jazz", "classical", "compiler", "database", "travel", "cycling", "news", "crawler", "hypertext"}
	docTerms := make(map[int64]map[string]bool)
	for d := int64(0); d < 500; d++ {
		var content string
		terms := map[string]bool{}
		for i := 0; i < 5+rng.Intn(20); i++ {
			w := vocab[rng.Intn(len(vocab))]
			content += w + " "
			terms[w] = true
		}
		ix.Add(d, content)
		docTerms[d] = terms
	}
	// Every doc containing "jazz" must be returned with a large enough k.
	hits := ix.Search("jazz", 1000, BM25)
	got := map[int64]bool{}
	for _, h := range hits {
		got[h.Doc] = true
	}
	for d, terms := range docTerms {
		if terms["jazz"] != got[d] {
			t.Fatalf("doc %d: in-index=%v returned=%v", d, terms["jazz"], got[d])
		}
	}
}

func BenchmarkIndexAdd(b *testing.B) {
	ix := New(nil)
	doc := "memex archives community browsing trails mining topical themes hierarchical classification clustering hypertext"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Add(int64(i), doc)
	}
}

func BenchmarkSearchBM25(b *testing.B) {
	ix := New(nil)
	rng := rand.New(rand.NewSource(5))
	vocab := make([]string, 200)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("term%c%c", 'a'+i%26, 'a'+(i/26)%26)
	}
	for d := int64(0); d < 5000; d++ {
		var content string
		for i := 0; i < 30; i++ {
			content += vocab[rng.Intn(len(vocab))] + " "
		}
		ix.Add(d, content)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search("termaa termbb termcc", 10, BM25)
	}
}
