package core

import (
	"fmt"
	"testing"
)

func ck(epoch uint64, page int64) cacheKey {
	return cacheKey{epoch: epoch, page: page, kind: kindIn}
}

func TestRecordCacheHitMissAccounting(t *testing.T) {
	c := newRecordCache(1 << 20)
	if _, ok := c.get(ck(1, 1)); ok {
		t.Fatal("hit on empty cache")
	}
	c.put(ck(1, 1), []int64{7}, 8)
	if v, ok := c.get(ck(1, 1)); !ok {
		t.Fatal("miss after put")
	} else if ids := v.([]int64); len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("cached value = %v", ids)
	}
	// Different epoch, page or kind each miss independently.
	if _, ok := c.get(ck(2, 1)); ok {
		t.Fatal("epoch leaked across keys")
	}
	if _, ok := c.get(ck(1, 2)); ok {
		t.Fatal("page leaked across keys")
	}
	if _, ok := c.get(cacheKey{epoch: 1, page: 1, kind: kindOut}); ok {
		t.Fatal("kind leaked across keys")
	}
	st := c.stats()
	if st.Hits != 1 || st.Misses != 4 {
		t.Fatalf("hits/misses = %d/%d, want 1/4", st.Hits, st.Misses)
	}
	if st.Entries != 1 || st.Bytes != 8+entryOverhead || st.MaxBytes != 1<<20 {
		t.Fatalf("entries/bytes/max = %d/%d/%d", st.Entries, st.Bytes, st.MaxBytes)
	}
}

func TestRecordCacheNegativeCaching(t *testing.T) {
	c := newRecordCache(1 << 20)
	// A typed nil ("no record at this epoch") is a cacheable value: the
	// second lookup of an unknown page must hit, not fall through.
	var none []int64
	c.put(ck(3, 9), none, 0)
	v, ok := c.get(ck(3, 9))
	if !ok {
		t.Fatal("cached negative entry missed")
	}
	if ids := v.([]int64); ids != nil {
		t.Fatalf("negative entry = %v, want nil", ids)
	}
}

func TestRecordCacheLRUEviction(t *testing.T) {
	// Room for exactly two entries of size 4+entryOverhead.
	c := newRecordCache(2 * (4 + entryOverhead))
	c.put(ck(1, 1), []int64{1}, 4)
	c.put(ck(1, 2), []int64{2}, 4)
	// Touch page 1 so page 2 is the cold end.
	if _, ok := c.get(ck(1, 1)); !ok {
		t.Fatal("warm entry missing")
	}
	c.put(ck(1, 3), []int64{3}, 4)
	if _, ok := c.get(ck(1, 2)); ok {
		t.Fatal("cold entry survived over-budget insert")
	}
	if _, ok := c.get(ck(1, 1)); !ok {
		t.Fatal("recently-used entry evicted before cold one")
	}
	if _, ok := c.get(ck(1, 3)); !ok {
		t.Fatal("newest entry evicted")
	}
	st := c.stats()
	if st.EvictedLRU != 1 || st.EvictedFloor != 0 {
		t.Fatalf("evictions = %d LRU / %d floor, want 1/0", st.EvictedLRU, st.EvictedFloor)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("size %d exceeds bound %d", st.Bytes, st.MaxBytes)
	}
}

func TestRecordCacheDuplicatePutKeepsIncumbent(t *testing.T) {
	c := newRecordCache(1 << 20)
	first := []int64{1, 2}
	c.put(ck(1, 1), first, 16)
	c.put(ck(1, 1), []int64{1, 2}, 16)
	v, _ := c.get(ck(1, 1))
	if &v.([]int64)[0] != &first[0] {
		t.Fatal("duplicate put replaced the incumbent value")
	}
	if st := c.stats(); st.Entries != 1 || st.Bytes != 16+entryOverhead {
		t.Fatalf("duplicate put double-charged: %d entries, %d bytes", st.Entries, st.Bytes)
	}
}

func TestRecordCacheEvictBelowFloor(t *testing.T) {
	c := newRecordCache(1 << 20)
	for epoch := uint64(1); epoch <= 5; epoch++ {
		c.put(ck(epoch, int64(epoch)), []int64{int64(epoch)}, 8)
	}
	if n := c.evictBelow(4); n != 3 {
		t.Fatalf("evictBelow dropped %d entries, want 3", n)
	}
	for epoch := uint64(1); epoch <= 3; epoch++ {
		if _, ok := c.get(ck(epoch, int64(epoch))); ok {
			t.Fatalf("epoch %d survived below the pin floor", epoch)
		}
	}
	for epoch := uint64(4); epoch <= 5; epoch++ {
		if _, ok := c.get(ck(epoch, int64(epoch))); !ok {
			t.Fatalf("epoch %d at/above the floor was dropped", epoch)
		}
	}
	st := c.stats()
	if st.EvictedFloor != 3 || st.EvictedLRU != 0 {
		t.Fatalf("evictions = %d floor / %d LRU, want 3/0", st.EvictedFloor, st.EvictedLRU)
	}
	if st.Entries != 2 || st.Bytes != 2*(8+entryOverhead) {
		t.Fatalf("post-evict entries/bytes = %d/%d", st.Entries, st.Bytes)
	}
}

// TestRecordCacheWhaleBypassesAdmission is the giant-single-record
// regression test: before the per-entry size cap, one huge decoded hub
// page was admitted by evicting the entire working set behind it. The
// whale must bounce off the cache and leave the hot entries untouched.
func TestRecordCacheWhaleBypassesAdmission(t *testing.T) {
	const max = 1 << 20 // 1 MiB budget → per-entry cap is oversizeFloor (64 KiB)
	c := newRecordCache(max)
	for page := int64(1); page <= 10; page++ {
		c.put(ck(1, page), []int64{page}, 64)
	}
	// A whale bigger than the per-entry cap but smaller than the whole
	// budget: plain LRU admission would have flushed most of the working
	// set to fit it.
	c.put(ck(1, 999), make([]int64, 1<<15), 512<<10)
	if _, ok := c.get(ck(1, 999)); ok {
		t.Fatal("whale record was admitted to the cache")
	}
	for page := int64(1); page <= 10; page++ {
		if _, ok := c.get(ck(1, page)); !ok {
			t.Fatalf("working-set entry %d flushed by whale admission", page)
		}
	}
	st := c.stats()
	if st.SkippedOversize != 1 {
		t.Fatalf("SkippedOversize = %d, want 1", st.SkippedOversize)
	}
	if st.EvictedLRU != 0 {
		t.Fatalf("whale caused %d LRU evictions, want 0", st.EvictedLRU)
	}
	if st.Entries != 10 {
		t.Fatalf("entries = %d, want 10", st.Entries)
	}
}

func TestRecordCacheMaxEntrySize(t *testing.T) {
	cases := []struct {
		max, want int64
	}{
		{256 << 10, oversizeFloor},        // small budget: floor wins (max/8 = 32 KiB)
		{32 << 20, (32 << 20) / 8},        // default budget: max/8 = 4 MiB
		{8 * oversizeFloor, oversizeFloor}, // boundary: exactly the floor
	}
	for _, tc := range cases {
		if got := maxEntrySize(tc.max); got != tc.want {
			t.Errorf("maxEntrySize(%d) = %d, want %d", tc.max, got, tc.want)
		}
	}
}

func TestRecordCacheDisabled(t *testing.T) {
	if c := newRecordCache(0); c != nil {
		t.Fatal("zero budget built a cache (caller defaults, not the cache)")
	}
	if c := newRecordCache(-1); c != nil {
		t.Fatal("negative budget built a cache")
	}
}

func TestAdaptiveRinThreshold(t *testing.T) {
	cases := []struct {
		base, lifetime, want int
	}{
		{8, 0, 8},    // cold page: full base threshold
		{8, 63, 8},   // just under the first churn tier
		{8, 64, 4},   // 8×base: half
		{8, 255, 4},  // still in the half tier
		{8, 256, 2},  // 32×base: quarter
		{8, 10000, 2},
		{4, 32, 2},   // 8×4=32: half of 4
		{4, 128, 2},  // quarter of 4 floors at 2
		{2, 1000, 2}, // floor never exceeds base
		{1, 0, 1},    // caller's base of 1 (Close, tests) wins over the floor
		{1, 1000, 1},
		{0, 0, 1}, // degenerate base clamps to 1
	}
	for _, tc := range cases {
		if got := adaptiveRinThreshold(tc.base, tc.lifetime); got != tc.want {
			t.Errorf("adaptiveRinThreshold(%d, %d) = %d, want %d", tc.base, tc.lifetime, got, tc.want)
		}
	}
}

func TestStartSeqCodecRoundtrip(t *testing.T) {
	ids := []int64{3, 1, 4, 1, 5}
	for _, start := range []int{0, 1, 7, 1000} {
		blob := encodeIDSetStart(ids, start)
		got, s, ok := decodeIDSetStart(blob)
		if !ok || s != start {
			t.Fatalf("start %d: decoded start %d ok=%v", start, s, ok)
		}
		want, _ := decodeIDSet(encodeIDSet(ids))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("start %d: ids %v, want %v", start, got, want)
		}
		// The plain decoder must read the same id set regardless of the
		// suffix (old readers on new records).
		if plain, ok := decodeIDSet(blob); !ok || fmt.Sprint(plain) != fmt.Sprint(want) {
			t.Fatalf("start %d: plain decode %v ok=%v", start, plain, ok)
		}
	}
	// startSeq 0 must encode byte-identically to the legacy format.
	if a, b := fmt.Sprint(encodeIDSetStart(ids, 0)), fmt.Sprint(encodeIDSet(ids)); a != b {
		t.Fatalf("zero start not byte-identical to legacy: %s vs %s", a, b)
	}
	// A legacy suffix-free record decodes with start 0.
	if _, s, ok := decodeIDSetStart(encodeIDSet(ids)); !ok || s != 0 {
		t.Fatalf("legacy record: start %d ok=%v, want 0 true", s, ok)
	}
	// Trailing garbage that is not a valid whole-suffix uvarint is
	// rejected, not misread as a start seq.
	blob := append(encodeIDSet(ids), 0xff, 0xff, 0xff)
	if _, s, ok := decodeIDSetStart(blob); ok {
		t.Fatalf("garbage suffix decoded as start %d", s)
	}
}
