package core
