package core

import (
	"sort"
	"time"

	"memex/internal/rdbms"
)

// UsageSlice is one topic's share of a user's browsing (§1: "How is my ISP
// bill divided into access for work, travel, news, hobby and
// entertainment?").
type UsageSlice struct {
	Folder string
	Visits int
	// Time is the estimated dwell time: gaps between consecutive visits
	// within a session, attributed to the earlier page, capped at 30m.
	Time time.Duration
	// Share is the fraction of the user's attributed time.
	Share float64
}

// UsageBreakdown attributes the user's visits to their folder topics via
// the trained classifier (unclassifiable pages land in "/unfiled") and
// returns slices in descending time share.
func (e *Engine) UsageBreakdown(user int64, since time.Time) []UsageSlice {
	e.mu.RLock()
	model := e.models[user]
	e.mu.RUnlock()

	type rec struct {
		page int64
		at   time.Time
	}
	var visits []rec
	// The since bound is pushed into the query as a predicate (and the
	// user index drives), instead of scanning the user's whole history
	// and filtering here.
	windowQuery(e.visits, user, since, time.Time{}).Each(func(r rdbms.Row) bool {
		visits = append(visits, rec{r.MustInt("page"), r.MustTime("time")})
		return true
	})
	if len(visits) == 0 {
		return nil
	}
	sort.Slice(visits, func(i, j int) bool { return visits[i].at.Before(visits[j].at) })

	// One pinned snapshot serves the whole pass: every visit is attributed
	// against the same consistent view of the derived term stats, no
	// matter how much the ingest path publishes while we classify.
	view := e.DerivedSnapshot()
	defer view.Release()

	folderOf := func(page int64) string {
		// Explicit placement wins over classifier guesses.
		e.mu.RLock()
		if tree := e.trees[user]; tree != nil {
			if f := tree.FolderOfPage(page); f != nil {
				e.mu.RUnlock()
				return f.Path()
			}
		}
		e.mu.RUnlock()
		if model != nil {
			if tf := view.TermCounts(page); tf != nil {
				folder, conf := model.Classify(tf)
				if conf >= 0.4 {
					return folder
				}
			}
		}
		return "/unfiled"
	}

	const dwellCap = 30 * time.Minute
	const defaultDwell = 30 * time.Second
	agg := map[string]*UsageSlice{}
	var total time.Duration
	for i, v := range visits {
		dwell := defaultDwell
		if i+1 < len(visits) {
			gap := visits[i+1].at.Sub(v.at)
			if gap > 0 && gap <= dwellCap {
				dwell = gap
			}
		}
		folder := folderOf(v.page)
		s := agg[folder]
		if s == nil {
			s = &UsageSlice{Folder: folder}
			agg[folder] = s
		}
		s.Visits++
		s.Time += dwell
		total += dwell
	}
	out := make([]UsageSlice, 0, len(agg))
	for _, s := range agg {
		if total > 0 {
			s.Share = float64(s.Time) / float64(total)
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Folder < out[j].Folder
	})
	return out
}
