package core

import (
	"fmt"
	"io"
	"time"

	"memex/internal/classify"
	"memex/internal/events"
	"memex/internal/folders"
	"memex/internal/rdbms"
	"memex/internal/text"
)

// RegisterUser creates (or refreshes) a user record.
func (e *Engine) RegisterUser(id int64, name string) error {
	if err := e.usersTbl.Upsert(rdbms.Row{
		"id":   rdbms.Int(id),
		"name": rdbms.String(name),
	}); err != nil {
		return err
	}
	e.mu.Lock()
	e.treeLocked(id)
	e.mu.Unlock()
	return nil
}

// RecordVisit is the guaranteed-immediate foreground path for a page-view
// event: the visit row is written, visibility updated, and the heavy
// analysis (fetch, index, classify) is queued for the background demons.
// Privacy Off means the event is acknowledged and discarded.
func (e *Engine) RecordVisit(user int64, url, referrer string, at time.Time, privacy events.Privacy) error {
	if privacy == events.Off {
		return nil // user chose not to archive
	}
	if at.IsZero() {
		at = e.cfg.Now()
	}
	pageID, err := e.ensurePage(url)
	if err != nil {
		return err
	}
	var refID int64
	if referrer != "" {
		if refID, err = e.ensurePage(referrer); err != nil {
			return err
		}
	}
	vid, err := e.visits.NextID()
	if err != nil {
		return err
	}
	if err := e.visits.Insert(rdbms.Row{
		"id":      rdbms.Int(vid),
		"user":    rdbms.Int(user),
		"page":    rdbms.Int(pageID),
		"ref":     rdbms.Int(refID),
		"time":    rdbms.Time(at),
		"privacy": rdbms.Int(int64(privacy)),
	}); err != nil {
		return err
	}
	e.mu.Lock()
	if e.seenBy[pageID] == nil {
		e.seenBy[pageID] = map[int64]bool{}
	}
	e.seenBy[pageID][user] = true
	if privacy == events.Community {
		e.community[pageID] = true
	}
	e.mu.Unlock()
	if refID != 0 {
		// The referrer→page transition is link-graph evidence like any
		// fetched out-link: publish it as adjacency-record deltas (one
		// epoch, no-op when the edge is already known) so trail mining
		// still sees it after a restart.
		e.links.publish(refID, []int64{pageID}, nil)
	}
	e.stats.VisitsLogged.Add(1)
	e.pushed.Add(1)
	e.queue.Push(events.Event{
		Kind: events.VisitEvent, User: user, URL: url,
		Referrer: referrer, Time: at, Privacy: privacy,
	})
	return nil
}

// AddBookmark files url into the user's folder (foreground path). The
// placement is a supervised training example for the user's classifier.
func (e *Engine) AddBookmark(user int64, url, folder string, at time.Time) error {
	if at.IsZero() {
		at = e.cfg.Now()
	}
	pageID, err := e.ensurePage(url)
	if err != nil {
		return err
	}
	bid, err := e.bookmarks.NextID()
	if err != nil {
		return err
	}
	if err := e.bookmarks.Insert(rdbms.Row{
		"id":     rdbms.Int(bid),
		"user":   rdbms.Int(user),
		"page":   rdbms.Int(pageID),
		"folder": rdbms.String(folder),
		"time":   rdbms.Time(at),
	}); err != nil {
		return err
	}
	e.mu.Lock()
	e.treeLocked(user).Add(folder, folders.Entry{
		Page: pageID, URL: url, Title: e.titleOf[pageID], Added: at,
	})
	e.mu.Unlock()
	e.stats.BookmarksLogged.Add(1)
	// Ensure the page is fetched/indexed so training has text.
	e.pushed.Add(1)
	e.queue.Push(events.Event{
		Kind: events.BookmarkEvent, User: user, URL: url,
		Folder: folder, Time: at, Privacy: events.Community,
	})
	return nil
}

// CorrectPlacement moves a page to the right folder (the cut/paste
// reinforcement of Figure 1) and counts as a fresh training signal.
func (e *Engine) CorrectPlacement(user int64, url, folder string) error {
	e.mu.Lock()
	pageID, ok := e.pageIDByURLLocked(url)
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("core: unknown page %q", url)
	}
	tree := e.treeLocked(user)
	err := tree.MovePage(pageID, folder)
	if err != nil {
		// Not filed yet: treat as a fresh placement.
		tree.Add(folder, folders.Entry{Page: pageID, URL: url, Title: e.titleOf[pageID], Added: e.cfg.Now()})
		err = nil
	}
	e.mu.Unlock()
	bid, idErr := e.bookmarks.NextID()
	if idErr != nil {
		return idErr
	}
	if insErr := e.bookmarks.Insert(rdbms.Row{
		"id":     rdbms.Int(bid),
		"user":   rdbms.Int(user),
		"page":   rdbms.Int(pageID),
		"folder": rdbms.String(folder),
		"time":   rdbms.Time(e.cfg.Now()),
	}); insErr != nil {
		return insErr
	}
	return err
}

// ImportBookmarks ingests a Netscape bookmark file for the user.
func (e *Engine) ImportBookmarks(user int64, r io.Reader) (int, error) {
	tree, err := folders.ImportNetscape(r)
	if err != nil {
		return 0, err
	}
	n := 0
	var walkErr error
	tree.Walk(func(f *folders.Folder) {
		for _, entry := range f.Entries {
			if walkErr != nil {
				return
			}
			path := f.Path()
			if err := e.AddBookmark(user, entry.URL, path, entry.Added); err != nil {
				walkErr = err
				return
			}
			n++
		}
	})
	return n, walkErr
}

// ExportBookmarks writes the user's folder tree in Netscape format.
func (e *Engine) ExportBookmarks(user int64, w io.Writer) error {
	e.mu.RLock()
	tree := e.trees[user]
	e.mu.RUnlock()
	if tree == nil {
		tree = folders.NewTree()
	}
	return folders.ExportNetscape(tree, w)
}

// ensurePage returns the stable page id for url, creating the row if new.
func (e *Engine) ensurePage(url string) (int64, error) {
	e.mu.RLock()
	if id, ok := e.pageIDByURLLocked(url); ok {
		e.mu.RUnlock()
		return id, nil
	}
	e.mu.RUnlock()

	// Slow path: check the index, insert when truly absent.
	row, ok, err := e.pages.Select().Where(rdbms.Eq("url", rdbms.String(url))).First()
	if err != nil {
		return 0, err
	}
	if ok {
		id := row.MustInt("id")
		e.mu.Lock()
		e.urlOf[id] = url
		e.idByURL[url] = id
		e.mu.Unlock()
		return id, nil
	}
	// Serialise the insert race on a fresh URL: re-check under the lock.
	e.mu.Lock()
	if id, ok := e.idByURL[url]; ok {
		e.mu.Unlock()
		return id, nil
	}
	id, err := e.pages.NextID()
	if err != nil {
		e.mu.Unlock()
		return 0, err
	}
	if err := e.pages.Insert(rdbms.Row{
		"id":      rdbms.Int(id),
		"url":     rdbms.String(url),
		"title":   rdbms.String(""),
		"fetched": rdbms.Bool(false),
	}); err != nil {
		e.mu.Unlock()
		return 0, err
	}
	e.urlOf[id] = url
	e.idByURL[url] = id
	e.mu.Unlock()
	return id, nil
}

// pageIDByURLLocked consults the in-memory reverse map (mu held, either mode).
func (e *Engine) pageIDByURLLocked(url string) (int64, bool) {
	id, ok := e.idByURL[url]
	return id, ok
}

// analyzerLoop is the background demon body: it drains the event queue and
// performs fetch → index → graph → classify for each event.
func (e *Engine) analyzerLoop(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		ev, ok := e.queue.Pop()
		if !ok {
			return
		}
		e.processOne(ev)
	}
}

// processOne wraps process with panic-safe accounting so a failure in one
// event can neither wedge DrainBackground nor kill the demon supervisor's
// restart accounting.
func (e *Engine) processOne(ev events.Event) {
	e.inflight.Add(1)
	defer func() {
		e.inflight.Add(-1)
		e.processed.Add(1)
	}()
	e.process(ev)
}

// process performs the per-event background analysis.
func (e *Engine) process(ev events.Event) {
	pageID, err := e.ensurePage(ev.URL)
	if err != nil {
		return
	}
	tf := e.fetchAndIndex(pageID, ev.URL)
	if ev.Kind == events.VisitEvent {
		e.classifyForUser(ev.User, pageID, tf)
	}
}

// fetchAndIndex resolves content once per page, indexes it, and publishes
// term stats plus out-link adjacency through the version store as one
// batch. It returns the freshly computed term counts when this call
// performed the fetch, nil otherwise (already fetched, or content
// unavailable). The "already fetched" fast path is a lock-free
// version-store read — the hot event loop never touches e.mu just to
// skip a done page.
func (e *Engine) fetchAndIndex(pageID int64, url string) map[string]int {
	if e.derivedPublished(pageID) {
		return nil
	}
	return e.fetchAndIndexSlow(pageID, url)
}

// fetchAndIndexSlow is the publish half of the fetch path. Callers have
// already decided the page looks unfetched; the claim set arbitrates
// races authoritatively. It returns the page's term counts, nil when
// content was unavailable. By the time it returns, the page's lnk/
// adjacency record — and the authority graph — hold its full out-link
// union (the claim winner publishes synchronously).
func (e *Engine) fetchAndIndexSlow(pageID int64, url string) map[string]int {
	content, ok := e.cfg.Source.Lookup(url)
	if !ok {
		return nil
	}
	tf := text.TermCounts(content.Title + " " + content.Text)
	vec := text.VectorFromCounts(e.dict, tf)

	// Claim the page under the metadata lock before any side effects: two
	// workers can race here on the same URL (and the snapshot fast path
	// above can miss a publish still below the watermark), so only the
	// claim winner may publish, count the doc in the corpus, or index it
	// (a double AddDoc would permanently skew every DF/IDF weight).
	e.mu.Lock()
	if e.fetched[pageID] {
		e.mu.Unlock()
		// Lost the claim: the winner owns the tf publish, but may still
		// be resolving link URLs ahead of its own adjacency publish.
		// Publish the out-links this call already holds — idempotent and
		// serialized with the winner under the link lock, so whichever
		// side lands last leaves the full union — because our caller may
		// read the authority's adjacency the moment we return.
		e.links.publish(pageID, e.resolveLinks(content.Links), nil)
		return tf
	}
	e.fetched[pageID] = true
	e.titleOf[pageID] = content.Title
	e.mu.Unlock()
	e.stats.PagesFetched.Add(1)

	// The corpus must count the doc before its vector becomes visible to
	// snapshot readers, or a TFIDF pass could weight the page against DF
	// stats that don't include it yet.
	e.corp.AddDoc(vec)

	// Resolve out-link URLs to stable page ids first (seen-but-unfetched
	// targets get their pages-table row here — the durable half of the
	// crawl frontier), then publish the page's derived state as one batch:
	// the tf/ term record, the lnk/ adjacency record, and the rin/ delta
	// of every target. Consumers see all of it or none of it, from memory
	// while hot, from the kvstore cold tier once GC folds it, and again
	// after a restart recovers the fold.
	e.links.publish(pageID, e.resolveLinks(content.Links), encodeCounts(tf))

	e.idx.AddCounts(pageID, tf)
	e.stats.PagesIndexed.Add(1)
	e.pages.Update(rdbms.Int(pageID), func(r rdbms.Row) rdbms.Row {
		r["title"] = rdbms.String(content.Title)
		r["fetched"] = rdbms.Bool(true)
		return r
	})
	return tf
}

// resolveLinks maps out-link URLs to stable page ids, creating rows for
// URLs never seen before (the durable half of the crawl frontier).
func (e *Engine) resolveLinks(urls []string) []int64 {
	links := make([]int64, 0, len(urls))
	for _, l := range urls {
		if lid, err := e.ensurePage(l); err == nil {
			links = append(links, lid)
		}
	}
	return links
}

// classifyForUser places the page into the user's folder space as a guess
// ('?' in the Figure 1 UI) when the user has a trained classifier. tf is
// the page's term counts when the caller just fetched it; for pages
// fetched earlier the counts come from a pinned snapshot of the version
// store.
func (e *Engine) classifyForUser(user, pageID int64, tf map[string]int) {
	e.mu.RLock()
	model := e.models[user]
	url := e.urlOf[pageID]
	title := e.titleOf[pageID]
	e.mu.RUnlock()
	if model == nil {
		return
	}
	if tf == nil {
		view := e.DerivedSnapshot()
		tf = view.TermCounts(pageID)
		view.Release()
	}
	if tf == nil {
		return
	}
	folder, conf := model.Classify(tf)
	if conf < 0.4 {
		return // too uncertain to bother the user with a guess
	}
	e.stats.ClassifierRuns.Add(1)
	e.mu.Lock()
	e.treeLocked(user).Add(folder, folders.Entry{
		Page: pageID, URL: url, Title: title,
		Added: e.cfg.Now(), Guessed: true,
	})
	e.mu.Unlock()
}

// RetrainClassifiers rebuilds each user's naive Bayes model from their
// current (non-guessed) folder placements. Users need at least two folders
// with content to get a model. One pinned snapshot supplies every training
// example's term counts, so all users train against the same consistent
// epoch no matter how much the fetch path publishes meanwhile.
func (e *Engine) RetrainClassifiers() {
	e.mu.RLock()
	users := make([]int64, 0, len(e.trees))
	for u := range e.trees {
		users = append(users, u)
	}
	e.mu.RUnlock()

	view := e.DerivedSnapshot()
	defer view.Release()

	type example struct {
		path string
		page int64
	}
	for _, u := range users {
		// Collect (folder, page) pairs under the metadata lock, then
		// resolve term counts from the snapshot with no lock held.
		var examples []example
		e.mu.RLock()
		tree := e.trees[u]
		if tree == nil {
			e.mu.RUnlock()
			continue
		}
		tree.Walk(func(f *folders.Folder) {
			if f.Parent == nil {
				return
			}
			path := f.Path()
			for _, entry := range f.Entries {
				if entry.Guessed {
					continue
				}
				examples = append(examples, example{path, entry.Page})
			}
		})
		e.mu.RUnlock()

		trainer := classify.NewTrainer(e.dict)
		perClass := map[string]bool{}
		for _, ex := range examples {
			if tf := view.TermCounts(ex.page); tf != nil {
				trainer.AddCounts(ex.path, tf)
				perClass[ex.path] = true
			}
		}
		if len(perClass) < 2 {
			continue
		}
		model, err := trainer.Train(classify.Options{MaxFeatures: 4000})
		if err != nil {
			continue
		}
		e.mu.Lock()
		e.models[u] = model
		e.mu.Unlock()
	}
}
