package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"memex/internal/events"
	"memex/internal/text"
)

func TestCountsCodecRoundTrip(t *testing.T) {
	cases := []map[string]int{
		nil,
		{},
		{"a": 1},
		{"term": 3, "другой": 7, "": 12, "long-term-with-dashes": 1 << 30},
	}
	for _, tf := range cases {
		got := decodeCounts(encodeCounts(tf))
		if len(tf) == 0 {
			if len(got) != 0 {
				t.Fatalf("roundtrip(%v) = %v", tf, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, tf) {
			t.Fatalf("roundtrip(%v) = %v", tf, got)
		}
	}
	if decodeCounts([]byte{0xff}) != nil {
		t.Fatal("corrupt counts decoded")
	}
	if decodeCounts([]byte{2, 200, 1}) != nil {
		t.Fatal("truncated counts decoded")
	}
}

// TestCountsDecodeBoundsAllocation: a corrupt record whose header claims
// ~2^60 entries must decode to nil instead of sizing a map for it — the
// count-vs-payload bound decodeIDSet already enforced, now applied to
// term counts too (a single flipped cold-tier byte is enough to produce
// such a header).
func TestCountsDecodeBoundsAllocation(t *testing.T) {
	huge := binary.AppendUvarint(nil, 1<<60)
	if decodeCounts(huge) != nil {
		t.Fatal("decoded a 2^60-entry claim")
	}
	// Same header followed by a plausible-looking byte or two.
	if decodeCounts(append(huge, 1, 'a')) != nil {
		t.Fatal("decoded an impossible count with payload")
	}
	// The bound must not reject genuine small records whose count equals
	// the remaining payload exactly (one empty term, count 0 = 2 bytes).
	if tf := decodeCounts([]byte{1, 0, 7}); tf == nil || tf[""] != 7 {
		t.Fatalf("rejected minimal valid record: %v", tf)
	}
}

// TestCountsEncodeDeterministic: equal count maps must encode to
// byte-identical blobs regardless of map iteration order — the
// record-level half of the determinism guarantee (identical archives
// produce identical cold tiers; re-publishing unchanged counts cannot
// churn the store with spurious rewrites).
func TestCountsEncodeDeterministic(t *testing.T) {
	tf := map[string]int{}
	for i := 0; i < 200; i++ {
		tf[fmt.Sprintf("term-%03d", i)] = i + 1
	}
	// A second map with the same content, built in reverse.
	tf2 := map[string]int{}
	for i := 199; i >= 0; i-- {
		tf2[fmt.Sprintf("term-%03d", i)] = i + 1
	}
	want := encodeCounts(tf)
	for i := 0; i < 20; i++ {
		if got := encodeCounts(tf); !bytes.Equal(got, want) {
			t.Fatal("same map encoded differently across calls")
		}
		if got := encodeCounts(tf2); !bytes.Equal(got, want) {
			t.Fatal("equal maps encoded differently")
		}
	}
	if !reflect.DeepEqual(decodeCounts(want), tf) {
		t.Fatal("sorted encoding broke the round trip")
	}
}

// TestVectorDerivedFromCounts: the term vector is not stored — it is a
// pure function of the term-count record and the shared dictionary
// (which is what makes every persisted derived record process-portable).
// The derived vector must match what the fetch path computes directly.
func TestVectorDerivedFromCounts(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	p := c.Page(c.LeafPages[c.Leaves()[0].ID][1])
	if err := e.RecordVisit(1, p.URL, "", tBase, events.Community); err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()

	view := e.DerivedSnapshot()
	defer view.Release()
	id := e.idByURL[p.URL]
	got, ok := view.Vector(id)
	if !ok {
		t.Fatal("no derived vector for fetched page")
	}
	want := text.VectorFromCounts(e.dict, text.TermCounts(p.Title+" "+p.Text))
	if !reflect.DeepEqual(got.IDs, want.IDs) || !reflect.DeepEqual(got.Weights, want.Weights) {
		t.Fatal("derived vector diverges from fetch-path computation")
	}
	// And it memoizes: a second read returns the identical value.
	again, _ := view.Vector(id)
	if !reflect.DeepEqual(again, got) {
		t.Fatal("memoized vector changed between reads")
	}
}

// TestDerivedViewConsistency: a pinned view must keep serving the state
// it was acquired at — pages fetched afterwards are invisible to
// snapshot-backed reads but reachable through fresh views.
func TestDerivedViewConsistency(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	pages := c.LeafPages[c.Leaves()[0].ID]

	p0 := c.Page(pages[0])
	if err := e.RecordVisit(1, p0.URL, "", tBase, events.Community); err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()

	view := e.DerivedSnapshot()
	defer view.Release()
	id0 := e.idByURL[p0.URL]
	if tf := view.TermCounts(id0); len(tf) == 0 {
		t.Fatal("view missing fetched page's term counts")
	}
	if _, ok := view.Vector(id0); !ok {
		t.Fatal("view missing fetched page's vector")
	}

	// Fetch a second page after the view was pinned.
	p1 := c.Page(pages[1])
	if err := e.RecordVisit(1, p1.URL, "", tBase.Add(time.Minute), events.Community); err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()
	id1 := e.idByURL[p1.URL]

	// The pinned view must not see the later page — repeatable reads:
	// a page fetched mid-pass stays invisible for the whole pass instead
	// of flipping from unclassifiable to classifiable between two reads.
	if _, ok := view.sn.Get(tfKey(id1)); ok {
		t.Fatal("pinned view's snapshot observed a later publish")
	}
	if tf := view.TermCounts(id1); tf != nil {
		t.Fatal("pinned view resolved a post-snapshot page")
	}
	if _, ok := view.Vector(id1); ok {
		t.Fatal("pinned view resolved a post-snapshot vector")
	}

	fresh := e.DerivedSnapshot()
	defer fresh.Release()
	if _, ok := fresh.sn.Get(tfKey(id1)); !ok {
		t.Fatal("fresh view missing the second page")
	}
	if fresh.Epoch() <= view.Epoch() {
		t.Fatalf("epochs did not advance: %d then %d", view.Epoch(), fresh.Epoch())
	}
}

// TestDerivedPublishMatchesSource: the version store is the single home
// of derived page data now, so the published records must decode to
// exactly the term counts and vector the fetch path computes from the
// source content. (Before the live pageTF/pageVec maps were retired this
// compared against those; the source recomputation is the same oracle
// without resurrecting a second copy.)
func TestDerivedPublishMatchesSource(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	pages := c.LeafPages[c.Leaves()[0].ID][:5]
	for i, pid := range pages {
		p := c.Page(pid)
		if err := e.RecordVisit(1, p.URL, "", tBase.Add(time.Duration(i)*time.Minute), events.Community); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()

	view := e.DerivedSnapshot()
	defer view.Release()
	checked := 0
	for _, pid := range pages {
		p := c.Page(pid)
		e.mu.RLock()
		id, ok := e.idByURL[p.URL]
		e.mu.RUnlock()
		if !ok {
			t.Fatalf("page %q never registered", p.URL)
		}
		wantTF := text.TermCounts(p.Title + " " + p.Text)
		if got := view.TermCounts(id); !reflect.DeepEqual(got, wantTF) {
			t.Fatalf("page %d: snapshot tf diverges from source content", id)
		}
		// The dict already holds every term from the fetch, so the same
		// ids come back deterministically.
		wantVec := text.VectorFromCounts(e.dict, wantTF)
		gotVec, ok := view.Vector(id)
		if !ok || !reflect.DeepEqual(gotVec.IDs, wantVec.IDs) {
			t.Fatalf("page %d: snapshot vector diverges from source content", id)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no fetched pages")
	}
}

// TestStatusReportsVersionStore: the engine surfaces version-store
// health (watermark advancing with fetches, GC accounting) in Status.
func TestStatusReportsVersionStore(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	for i, pid := range c.LeafPages[c.Leaves()[0].ID][:4] {
		p := c.Page(pid)
		if err := e.RecordVisit(1, p.URL, "", tBase.Add(time.Duration(i)*time.Minute), events.Community); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	st := e.Status()
	if st.Version.Watermark == 0 {
		t.Fatal("version watermark did not advance with fetches")
	}
	if st.Version.Entries == 0 {
		t.Fatal("version store holds no derived entries")
	}
	e.vs.GC()
	st = e.Status()
	if st.Version.Layers != 1 {
		t.Fatalf("Layers after GC = %d, want 1", st.Version.Layers)
	}
}

// TestUsageAndProfileUnderLiveIngest drives the §1 read paths (usage
// breakdown, profiles) while ingest keeps publishing from the analyzer
// demons — the consumer side of E9 inside the real engine. It must never
// race (run with -race) and the snapshot-backed reads must keep working
// throughout.
func TestUsageAndProfileUnderLiveIngest(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	leaves := c.Leaves()
	warm := c.LeafPages[leaves[0].ID]
	for i := 0; i < 6; i++ {
		p := c.Page(warm[i])
		if err := e.RecordVisit(1, p.URL, "", tBase.Add(time.Duration(i)*time.Minute), events.Community); err != nil {
			t.Fatal(err)
		}
		if err := e.AddBookmark(1, p.URL, "/topic-a", tBase.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		p := c.Page(c.LeafPages[leaves[1].ID][i])
		if err := e.AddBookmark(1, p.URL, "/topic-b", tBase.Add(time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	e.RetrainClassifiers()
	e.RebuildThemes()

	// Keep ingest busy in the background while querying.
	done := make(chan struct{})
	go func() {
		defer close(done)
		at := tBase.Add(2 * time.Hour)
		n := 0
		for _, leaf := range leaves {
			for _, pid := range c.LeafPages[leaf.ID] {
				e.RecordVisit(1, c.Page(pid).URL, "", at.Add(time.Duration(n)*time.Second), events.Community)
				n++
			}
		}
	}()
	for i := 0; i < 20; i++ {
		if slices := e.UsageBreakdown(1, time.Time{}); len(slices) == 0 {
			t.Fatal("UsageBreakdown empty during ingest")
		}
		if p := e.Profile(1); p == nil {
			t.Fatal("Profile nil during ingest")
		}
	}
	<-done
	e.DrainBackground()

	slices := e.UsageBreakdown(1, time.Time{})
	total := 0.0
	for _, s := range slices {
		total += s.Share
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("usage shares sum to %f", total)
	}
}

// TestSnapshotConsistencyUnderLoad is the regression test for retiring
// the live pageTF/pageVec maps: with the version store as the single
// home of derived page data, theme rebuilds and profile computations run
// concurrently with live ingest, and every pinned view must (a) never
// observe a torn tf/vec pair — both records publish as one batch — and
// (b) give repeatable reads for the lifetime of the view. Run with
// -race (CI does).
func TestSnapshotConsistencyUnderLoad(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	leaves := c.Leaves()

	// Warm up two folders (classifier + theme input) and a few visits
	// (profile visibility) so every analyzer pass has stable input before
	// the concurrent phase begins.
	for i := 0; i < 6; i++ {
		p := c.Page(c.LeafPages[leaves[0].ID][i])
		if err := e.AddBookmark(1, p.URL, "/topic-a", tBase.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
		if err := e.RecordVisit(1, p.URL, "", tBase.Add(time.Duration(i)*time.Minute), events.Community); err != nil {
			t.Fatal(err)
		}
		q := c.Page(c.LeafPages[leaves[1].ID][i])
		if err := e.AddBookmark(1, q.URL, "/topic-b", tBase.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	e.RetrainClassifiers()
	e.RebuildThemes()

	// Register ids for every page we will ingest, so the checkers can
	// probe pages before, during, and after their fetch publishes.
	var ids []int64
	var urls []string
	for _, leaf := range leaves[:4] {
		for _, pid := range c.LeafPages[leaf.ID] {
			url := c.Page(pid).URL
			id, err := e.ensurePage(url)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			urls = append(urls, url)
		}
	}

	stop := make(chan struct{})
	errCh := make(chan error, 8)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	var wg sync.WaitGroup

	// Live ingest: visit (and thereby fetch/publish) every page.
	ingestDone := make(chan struct{})
	go func() {
		defer close(ingestDone)
		at := tBase.Add(2 * time.Hour)
		for i, url := range urls {
			e.RecordVisit(1, url, "", at.Add(time.Duration(i)*time.Second), events.Community)
		}
	}()

	// Analyzer passes that rebuild themes and profiles mid-ingest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if st := e.RebuildThemes(); st.Themes == 0 {
				report(fmt.Errorf("RebuildThemes lost all themes mid-ingest"))
				return
			}
			if p := e.Profile(1); p == nil {
				report(fmt.Errorf("Profile nil mid-ingest"))
				return
			}
		}
	}()

	// Snapshot checkers: repeatable raw reads, and the derived accessors
	// (TermCounts and the dictionary-derived Vector) must agree with the
	// raw record — a page is either fully visible to a view or fully
	// absent, never half-derived.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				view := e.DerivedSnapshot()
				for _, id := range ids {
					rawTF, okTF := view.sn.Get(tfKey(id))
					rawTF2, okTF2 := view.sn.Get(tfKey(id))
					if okTF != okTF2 || !bytes.Equal(rawTF, rawTF2) {
						report(fmt.Errorf("page %d: non-repeatable read within pinned view at epoch %d",
							id, view.Epoch()))
					}
					if (view.TermCounts(id) != nil) != okTF {
						report(fmt.Errorf("page %d: TermCounts disagrees with snapshot at epoch %d", id, view.Epoch()))
					}
					if _, okVec := view.Vector(id); okVec != okTF {
						report(fmt.Errorf("page %d: derived vector disagrees with term counts at epoch %d (tf=%v vec=%v)",
							id, view.Epoch(), okTF, okVec))
					}
				}
				view.Release()
			}
		}()
	}

	// Let the checkers overlap the whole ingest, then wind down.
	<-ingestDone
	e.DrainBackground()
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// After quiescence every ingested page's derived pair is visible.
	view := e.DerivedSnapshot()
	defer view.Release()
	for _, id := range ids {
		if view.TermCounts(id) == nil {
			t.Fatalf("page %d: derived stats missing after ingest", id)
		}
		if _, ok := view.Vector(id); !ok {
			t.Fatalf("page %d: vector missing after ingest", id)
		}
	}
}
