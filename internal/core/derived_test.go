package core

import (
	"math"
	"reflect"
	"testing"
	"time"

	"memex/internal/events"
	"memex/internal/text"
)

func TestCountsCodecRoundTrip(t *testing.T) {
	cases := []map[string]int{
		nil,
		{},
		{"a": 1},
		{"term": 3, "другой": 7, "": 12, "long-term-with-dashes": 1 << 30},
	}
	for _, tf := range cases {
		got := decodeCounts(encodeCounts(tf))
		if len(tf) == 0 {
			if len(got) != 0 {
				t.Fatalf("roundtrip(%v) = %v", tf, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, tf) {
			t.Fatalf("roundtrip(%v) = %v", tf, got)
		}
	}
	if decodeCounts([]byte{0xff}) != nil {
		t.Fatal("corrupt counts decoded")
	}
	if decodeCounts([]byte{2, 200, 1}) != nil {
		t.Fatal("truncated counts decoded")
	}
}

func TestVectorCodecRoundTrip(t *testing.T) {
	cases := []text.Vector{
		{},
		{IDs: []int32{0}, Weights: []float64{1.5}},
		{IDs: []int32{2, 7, 7000, 1 << 28}, Weights: []float64{0.25, -3, math.Pi, 1e-9}},
	}
	for _, v := range cases {
		got := decodeVector(encodeVector(v))
		if len(got.IDs) != len(v.IDs) {
			t.Fatalf("roundtrip len = %d, want %d", len(got.IDs), len(v.IDs))
		}
		for i := range v.IDs {
			if got.IDs[i] != v.IDs[i] || got.Weights[i] != v.Weights[i] {
				t.Fatalf("roundtrip(%v) = %v", v, got)
			}
		}
	}
	if got := decodeVector([]byte{1, 3}); len(got.IDs) != 0 {
		t.Fatal("truncated vector decoded")
	}
}

// TestDerivedViewConsistency: a pinned view must keep serving the state
// it was acquired at — pages fetched afterwards are invisible to
// snapshot-backed reads but reachable through fresh views.
func TestDerivedViewConsistency(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	pages := c.LeafPages[c.Leaves()[0].ID]

	p0 := c.Page(pages[0])
	if err := e.RecordVisit(1, p0.URL, "", tBase, events.Community); err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()

	view := e.DerivedSnapshot()
	defer view.Release()
	id0 := e.idByURL[p0.URL]
	if tf := view.TermCounts(id0); len(tf) == 0 {
		t.Fatal("view missing fetched page's term counts")
	}
	if _, ok := view.Vector(id0); !ok {
		t.Fatal("view missing fetched page's vector")
	}

	// Fetch a second page after the view was pinned.
	p1 := c.Page(pages[1])
	if err := e.RecordVisit(1, p1.URL, "", tBase.Add(time.Minute), events.Community); err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()
	id1 := e.idByURL[p1.URL]

	// The pinned view must not see the later page — repeatable reads:
	// a page fetched mid-pass stays invisible for the whole pass instead
	// of flipping from unclassifiable to classifiable between two reads.
	if _, ok := view.sn.Get(tfKey(id1)); ok {
		t.Fatal("pinned view's snapshot observed a later publish")
	}
	if tf := view.TermCounts(id1); tf != nil {
		t.Fatal("pinned view resolved a post-snapshot page")
	}
	if _, ok := view.Vector(id1); ok {
		t.Fatal("pinned view resolved a post-snapshot vector")
	}

	fresh := e.DerivedSnapshot()
	defer fresh.Release()
	if _, ok := fresh.sn.Get(tfKey(id1)); !ok {
		t.Fatal("fresh view missing the second page")
	}
	if fresh.Epoch() <= view.Epoch() {
		t.Fatalf("epochs did not advance: %d then %d", view.Epoch(), fresh.Epoch())
	}
}

// TestDerivedPublishMatchesLiveMaps: the snapshot-published term counts
// and vectors must decode to exactly what the engine's live maps hold.
func TestDerivedPublishMatchesLiveMaps(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	for i, pid := range c.LeafPages[c.Leaves()[0].ID][:5] {
		p := c.Page(pid)
		if err := e.RecordVisit(1, p.URL, "", tBase.Add(time.Duration(i)*time.Minute), events.Community); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()

	view := e.DerivedSnapshot()
	defer view.Release()
	e.mu.RLock()
	livePages := make([]int64, 0, len(e.pageTF))
	for id := range e.pageTF {
		livePages = append(livePages, id)
	}
	e.mu.RUnlock()
	if len(livePages) == 0 {
		t.Fatal("no fetched pages")
	}
	for _, id := range livePages {
		e.mu.RLock()
		liveTF := e.pageTF[id]
		liveVec := e.pageVec[id]
		e.mu.RUnlock()
		if got := view.TermCounts(id); !reflect.DeepEqual(got, liveTF) {
			t.Fatalf("page %d: snapshot tf diverges from live map", id)
		}
		gotVec, ok := view.Vector(id)
		if !ok || !reflect.DeepEqual(gotVec.IDs, liveVec.IDs) {
			t.Fatalf("page %d: snapshot vector diverges from live map", id)
		}
	}
}

// TestStatusReportsVersionStore: the engine surfaces version-store
// health (watermark advancing with fetches, GC accounting) in Status.
func TestStatusReportsVersionStore(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	for i, pid := range c.LeafPages[c.Leaves()[0].ID][:4] {
		p := c.Page(pid)
		if err := e.RecordVisit(1, p.URL, "", tBase.Add(time.Duration(i)*time.Minute), events.Community); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	st := e.Status()
	if st.Version.Watermark == 0 {
		t.Fatal("version watermark did not advance with fetches")
	}
	if st.Version.Entries == 0 {
		t.Fatal("version store holds no derived entries")
	}
	e.vs.GC()
	st = e.Status()
	if st.Version.Layers != 1 {
		t.Fatalf("Layers after GC = %d, want 1", st.Version.Layers)
	}
}

// TestUsageAndProfileUnderLiveIngest drives the §1 read paths (usage
// breakdown, profiles) while ingest keeps publishing from the analyzer
// demons — the consumer side of E9 inside the real engine. It must never
// race (run with -race) and the snapshot-backed reads must keep working
// throughout.
func TestUsageAndProfileUnderLiveIngest(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	leaves := c.Leaves()
	warm := c.LeafPages[leaves[0].ID]
	for i := 0; i < 6; i++ {
		p := c.Page(warm[i])
		if err := e.RecordVisit(1, p.URL, "", tBase.Add(time.Duration(i)*time.Minute), events.Community); err != nil {
			t.Fatal(err)
		}
		if err := e.AddBookmark(1, p.URL, "/topic-a", tBase.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		p := c.Page(c.LeafPages[leaves[1].ID][i])
		if err := e.AddBookmark(1, p.URL, "/topic-b", tBase.Add(time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	e.DrainBackground()
	e.RetrainClassifiers()
	e.RebuildThemes()

	// Keep ingest busy in the background while querying.
	done := make(chan struct{})
	go func() {
		defer close(done)
		at := tBase.Add(2 * time.Hour)
		n := 0
		for _, leaf := range leaves {
			for _, pid := range c.LeafPages[leaf.ID] {
				e.RecordVisit(1, c.Page(pid).URL, "", at.Add(time.Duration(n)*time.Second), events.Community)
				n++
			}
		}
	}()
	for i := 0; i < 20; i++ {
		if slices := e.UsageBreakdown(1, time.Time{}); len(slices) == 0 {
			t.Fatal("UsageBreakdown empty during ingest")
		}
		if p := e.Profile(1); p == nil {
			t.Fatal("Profile nil during ingest")
		}
	}
	<-done
	e.DrainBackground()

	slices := e.UsageBreakdown(1, time.Time{})
	total := 0.0
	for _, s := range slices {
		total += s.Share
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("usage shares sum to %f", total)
	}
}
