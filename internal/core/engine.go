// Package core assembles every Memex subsystem into the server engine of
// Figure 3: the RDBMS holds page/link/user/topic metadata, the kvstore
// holds term-level statistics, the version store coordinates the single
// producer (the fetch/index path) with its consumers (classifier and theme
// demons), the event queue separates the guaranteed-immediate foreground
// path from asynchronous analysis, and the demon pool keeps the background
// mining running and restartable.
//
// # Derived page state lives only in the version store
//
// A page's derived data — its term-count record (tf/), from which term
// vectors are derived on demand, and its link-adjacency records (lnk/
// out-links, rin/ in-links) — has exactly one home: the sharded
// epoch-layer store in internal/version, published by the fetch path as
// one batch per page (terms and links land in the same epoch, so a
// snapshot can never see a page's text without its place in the link
// graph), held in RAM while hot and folded to the engine's kvstore
// ("vc/" keyspace) by the version-gc demon, so the archive grows on disk
// and survives restarts (Open replays the recovered records back into
// the dictionary, corpus stats, inverted index and link-graph authority,
// and the fetch path skips recovered pages instead of re-crawling).
// There is no live map shadowing it. Every derived-data reader pins a
// DerivedView snapshot for its whole pass and is therefore
// snapshot-consistent:
//
//   - theme rebuilds (RebuildThemes) and user profiles (Profile,
//     Recommend) read vectors from one pinned epoch;
//   - usage breakdown, trail replay, and classifier guesses read term
//     counts the same way;
//   - trail popularity (HITS), recommend's link-proximity boost and
//     Discover's crawl frontier decode lnk/rin adjacency from the same
//     pinned view as their term-stat reads (graph.AdjacencySource);
//   - classifier retraining trains every user against a single epoch;
//   - even ingest's own "already fetched?" fast path is a lock-free
//     snapshot read, with the small e.fetched claim set (under e.mu)
//     arbitrating publish races authoritatively.
//
// The only in-memory link structure is the producer-side authority in
// links.go: a graph rebuilt from recovered records at Open, consulted
// and updated under one lock so each published adjacency record is the
// union of everything published before it. Read passes never touch it.
//
// e.mu consequently guards page-metadata bookkeeping only — folder
// trees, models, the taxonomy pointer, url/title/visibility maps, and
// the claim set — and is never held across derived-data decoding,
// clustering, or training work.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"memex/internal/classify"
	"memex/internal/demon"
	"memex/internal/events"
	"memex/internal/folders"
	"memex/internal/kvstore"
	"memex/internal/rdbms"
	"memex/internal/text"
	"memex/internal/textindex"
	"memex/internal/themes"
	"memex/internal/version"
)

// Content is a resolved web page: what the fetch demon obtains for a URL.
type Content struct {
	URL   string
	Title string
	Text  string
	Links []string
}

// PageSource resolves URLs to content. Production Memex fetches the live
// Web; this reproduction plugs in the synthetic webcorpus (DESIGN.md S17).
type PageSource interface {
	Lookup(url string) (Content, bool)
}

// Config tunes the engine.
type Config struct {
	// Dir is the storage directory (required).
	Dir string
	// Source resolves page content (required).
	Source PageSource
	// KV configures the backing kvstore.
	KV kvstore.Options
	// QueueSize bounds the background event queue (default 4096).
	QueueSize int
	// Workers is the number of analyzer demons (default 2).
	Workers int
	// ThemeInterval rebuilds the community taxonomy periodically
	// (0 = only on demand via RebuildThemes).
	ThemeInterval time.Duration
	// TrainInterval retrains per-user classifiers periodically
	// (0 = only on demand via RetrainClassifiers).
	TrainInterval time.Duration
	// VersionGCInterval compacts superseded version-store layers off the
	// hot path (default 2s; negative disables the demon).
	VersionGCInterval time.Duration
	// DecodedCacheBytes bounds the shared decoded-record cache that sits
	// between DerivedView and the version store (cache.go): 0 takes the
	// default (32 MiB), negative disables caching. Sizing guidance: the
	// cache holds decoded tf maps, adjacency slices and term vectors, so
	// a working set of N hot pages costs very roughly N × (page term
	// count × 40 B); at the default a second mining pass over ~100k
	// modest pages stays fully warm.
	DecodedCacheBytes int64
	// Now injects a clock for tests (default time.Now).
	Now func() time.Time
}

// defaultDecodedCacheBytes is the decoded-record cache budget when the
// config leaves it zero.
const defaultDecodedCacheBytes = 32 << 20

// Engine is an embedded Memex server core.
type Engine struct {
	cfg   Config
	db    *rdbms.DB
	kv    *kvstore.Store
	vs    *version.Store
	dict  *text.Dict
	corp  *text.Corpus
	idx   *textindex.Index
	// links is the link-graph producer: every edge write publishes
	// lnk/rin adjacency records through the version store before touching
	// the in-memory authority graph (see links.go). Read passes never use
	// it directly — they pin a DerivedView, whose Out/In/Has decode the
	// records at one epoch.
	links *linkIndex
	// cache is the shared decoded-record cache (cache.go): every
	// DerivedView of this engine consults it before decoding a tf/, lnk/
	// or rin* record, so repeated passes over an unchanged epoch pay
	// decode cost once. nil when DecodedCacheBytes < 0.
	cache *recordCache
	queue *events.Queue
	pool  *demon.Pool

	pages     *rdbms.Table
	visits    *rdbms.Table
	bookmarks *rdbms.Table
	usersTbl  *rdbms.Table

	// mu guards page-metadata bookkeeping only: folder trees, models, the
	// taxonomy pointer, url/title maps, visibility sets, and the fetch
	// claim set. Derived page data (term counts, vectors) lives solely in
	// the version store and is read through pinned DerivedView snapshots,
	// never under this lock.
	mu      sync.RWMutex
	trees   map[int64]*folders.Tree   // per-user folder space
	models  map[int64]*classify.Bayes // per-user folder classifier
	tax     *themes.Taxonomy
	urlOf   map[int64]string
	idByURL map[string]int64
	titleOf map[int64]string
	// fetched is the fetch path's claim set: the page's derived stats
	// have been (or are being) published, or were recovered from the cold
	// tier at open. It arbitrates the two-workers-one-URL race under the
	// full lock, and serves as derivedPublished's first, disk-free answer
	// for "is this page fetched?".
	fetched map[int64]bool
	// visibility: users who visited each page; community flag.
	seenBy    map[int64]map[int64]bool
	community map[int64]bool

	// pushed/processed (plus the queue's drop counter) account for
	// background work precisely, so DrainBackground cannot return while an
	// event is between Pop and completion.
	pushed    atomic.Int64
	processed atomic.Int64
	inflight  atomic.Int64
	stats     Counters
	closed    bool
}

// Counters reports engine activity.
type Counters struct {
	VisitsLogged    atomic.Int64
	BookmarksLogged atomic.Int64
	PagesFetched    atomic.Int64
	PagesIndexed    atomic.Int64
	EventsDropped   atomic.Uint64
	ClassifierRuns  atomic.Int64
	ThemeRebuilds   atomic.Int64
}

// Open builds the engine over the given directory.
func Open(cfg Config) (*Engine, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("core: Config.Dir required")
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("core: Config.Source required")
	}
	if cfg.QueueSize == 0 {
		cfg.QueueSize = 4096
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.VersionGCInterval == 0 {
		cfg.VersionGCInterval = 2 * time.Second
	}
	if cfg.DecodedCacheBytes == 0 {
		cfg.DecodedCacheBytes = defaultDecodedCacheBytes
	}
	kv, err := kvstore.Open(cfg.Dir, cfg.KV)
	if err != nil {
		return nil, err
	}
	db, err := rdbms.NewOn(kv)
	if err != nil {
		kv.Close()
		return nil, err
	}
	// The version store shares the engine's kvstore: GC folds cold derived
	// records into the "vc/" keyspace (beside the RDBMS's "tbl/"/"cat/"
	// keyspaces) and recovers them here on reopen, so derived page state
	// survives restarts on bounded memory.
	vs, err := version.Open(kv, "vc/", version.Options{})
	if err != nil {
		kv.Close()
		return nil, err
	}
	e := &Engine{
		cfg:       cfg,
		db:        db,
		kv:        kv,
		vs:        vs,
		dict:      text.NewDict(),
		corp:      text.NewCorpus(),
		links:     newLinkIndex(vs),
		cache:     newRecordCache(cfg.DecodedCacheBytes),
		queue:     events.NewQueue(cfg.QueueSize),
		pool:      demon.NewPool(),
		trees:     map[int64]*folders.Tree{},
		models:    map[int64]*classify.Bayes{},
		fetched:   map[int64]bool{},
		urlOf:     map[int64]string{},
		idByURL:   map[string]int64{},
		titleOf:   map[int64]string{},
		seenBy:    map[int64]map[int64]bool{},
		community: map[int64]bool{},
	}
	e.idx = textindex.New(e.dict)
	if err := e.createTables(); err != nil {
		kv.Close()
		return nil, err
	}
	if err := e.reload(); err != nil {
		kv.Close()
		return nil, err
	}
	// Replay recovered derived records into the in-memory text machinery
	// (dictionary, corpus DF, inverted index) so queries work immediately
	// after a restart and the fetch path skips every recovered page.
	e.reloadDerived()
	e.startDemons()
	return e, nil
}

func (e *Engine) createTables() error {
	var err error
	e.pages, err = e.db.EnsureTable(rdbms.Schema{
		Name: "pages",
		Columns: []rdbms.Column{
			{Name: "id", Type: rdbms.TInt},
			{Name: "url", Type: rdbms.TString},
			{Name: "title", Type: rdbms.TString},
			{Name: "fetched", Type: rdbms.TBool},
		},
		Key:     "id",
		Indexes: []string{"url"},
	})
	if err != nil {
		return err
	}
	e.visits, err = e.db.EnsureTable(rdbms.Schema{
		Name: "visits",
		Columns: []rdbms.Column{
			{Name: "id", Type: rdbms.TInt},
			{Name: "user", Type: rdbms.TInt},
			{Name: "page", Type: rdbms.TInt},
			{Name: "ref", Type: rdbms.TInt},
			{Name: "time", Type: rdbms.TTime},
			{Name: "privacy", Type: rdbms.TInt},
		},
		Key:     "id",
		Indexes: []string{"user", "time"},
	})
	if err != nil {
		return err
	}
	e.bookmarks, err = e.db.EnsureTable(rdbms.Schema{
		Name: "bookmarks",
		Columns: []rdbms.Column{
			{Name: "id", Type: rdbms.TInt},
			{Name: "user", Type: rdbms.TInt},
			{Name: "page", Type: rdbms.TInt},
			{Name: "folder", Type: rdbms.TString},
			{Name: "time", Type: rdbms.TTime},
		},
		Key:     "id",
		Indexes: []string{"user"},
	})
	if err != nil {
		return err
	}
	e.usersTbl, err = e.db.EnsureTable(rdbms.Schema{
		Name: "users",
		Columns: []rdbms.Column{
			{Name: "id", Type: rdbms.TInt},
			{Name: "name", Type: rdbms.TString},
		},
		Key: "id",
	})
	return err
}

// reload rebuilds in-memory state (folder trees, page metadata, visibility)
// from the persistent tables after a restart.
func (e *Engine) reload() error {
	// Page metadata.
	err := e.pages.Select().Each(func(r rdbms.Row) bool {
		id := r.MustInt("id")
		url := r.MustString("url")
		e.urlOf[id] = url
		e.idByURL[url] = id
		e.titleOf[id] = r.MustString("title")
		return true
	})
	if err != nil {
		return err
	}
	// Folder trees from bookmarks.
	err = e.bookmarks.Select().Each(func(r rdbms.Row) bool {
		user := r.MustInt("user")
		page := r.MustInt("page")
		tree := e.treeLocked(user)
		tree.Add(r.MustString("folder"), folders.Entry{
			Page:  page,
			URL:   e.urlOf[page],
			Title: e.titleOf[page],
			Added: r.MustTime("time"),
		})
		return true
	})
	if err != nil {
		return err
	}
	// Visibility from visits.
	return e.visits.Select().Each(func(r rdbms.Row) bool {
		page := r.MustInt("page")
		user := r.MustInt("user")
		if e.seenBy[page] == nil {
			e.seenBy[page] = map[int64]bool{}
		}
		e.seenBy[page][user] = true
		if events.Privacy(r.MustInt("privacy")) == events.Community {
			e.community[page] = true
		}
		return true
	})
}

func (e *Engine) startDemons() {
	for w := 0; w < e.cfg.Workers; w++ {
		e.pool.Add(&demon.Func{
			TaskName: fmt.Sprintf("analyzer-%d", w),
			Body:     e.analyzerLoop,
		})
	}
	if e.cfg.ThemeInterval > 0 {
		e.pool.Add(&demon.Periodic{
			TaskName: "themes",
			Interval: e.cfg.ThemeInterval,
			Tick:     func() { e.RebuildThemes() },
		})
	}
	if e.cfg.TrainInterval > 0 {
		e.pool.Add(&demon.Periodic{
			TaskName: "trainer",
			Interval: e.cfg.TrainInterval,
			Tick:     func() { e.RetrainClassifiers() },
		})
	}
	if e.cfg.VersionGCInterval > 0 {
		// Compaction of superseded version-store layers runs as its own
		// demon so neither the publish path nor snapshot readers pay it.
		// In-link chunk consolidation runs first: folding each hub page's
		// accumulated rinD/ delta chunks into its base record (plus
		// tombstones) right before GC means the fold writes one
		// consolidated record to the cold tier and reclaims the chunk
		// records, keeping read-side merge chains and reopen scans short.
		e.pool.Add(&demon.Periodic{
			TaskName: "version-gc",
			Interval: e.cfg.VersionGCInterval,
			Tick: func() {
				e.links.consolidate(rinConsolidateThreshold)
				e.vs.GC()
				// Published epochs are immutable, so the decoded-record
				// cache never needs write invalidation — but once the pin
				// floor moves past an epoch no live or future view can ask
				// for it again, so its entries are reclaimed here.
				if e.cache != nil {
					e.cache.evictBelow(e.vs.PinFloor())
				}
			},
		})
	}
	e.pool.Start()
}

// treeLocked returns (creating) the user's folder tree. Caller must hold
// e.mu or be in single-threaded setup.
func (e *Engine) treeLocked(user int64) *folders.Tree {
	t := e.trees[user]
	if t == nil {
		t = folders.NewTree()
		e.trees[user] = t
	}
	return t
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	Users        int
	Pages        int
	PagesIndexed int
	// PagesFetched counts pages this process fetched from the source; a
	// restarted server serving recovered derived state keeps it at zero
	// until a genuinely new page arrives (the fetch path skips recovered
	// pages instead of re-crawling).
	PagesFetched  int64
	Visits        int64
	Bookmarks     int64
	QueueDepth    int
	EventsDropped uint64
	Themes        int
	DiskBytes     int64
	DemonRestarts map[string]int
	// GraphNodes/GraphEdges size the recovered+live link graph (pages
	// known to the hyperlink structure and directed edges between them).
	// After a restart they are nonzero before any fetch: the adjacency
	// came back from the version store's recovered lnk/ records.
	GraphNodes int
	GraphEdges int
	// Version reports the derived-data version store: watermark, layer
	// count, pinned snapshots, and cumulative GC work.
	Version version.Stats
	// Cache reports the shared decoded-record cache: hit/miss counters
	// (cross-view reuse), eviction counts split by cause, and the
	// approximate decoded footprint against its bound. All zero when the
	// cache is disabled.
	Cache CacheStats
}

// Status reports engine state.
func (e *Engine) Status() Stats {
	e.mu.RLock()
	users := len(e.trees)
	themesN := 0
	if e.tax != nil {
		themesN = len(e.tax.Themes)
	}
	pages := len(e.urlOf)
	e.mu.RUnlock()
	nodes, edges := e.links.Counts()
	var cs CacheStats
	if e.cache != nil {
		cs = e.cache.stats()
	}
	return Stats{
		Cache:         cs,
		GraphNodes:    nodes,
		GraphEdges:    edges,
		Users:         users,
		Pages:         pages,
		PagesIndexed:  e.idx.Docs(),
		PagesFetched:  e.stats.PagesFetched.Load(),
		Visits:        e.stats.VisitsLogged.Load(),
		Bookmarks:     e.stats.BookmarksLogged.Load(),
		QueueDepth:    e.queue.Len(),
		EventsDropped: e.queue.Dropped(),
		Themes:        themesN,
		DiskBytes:     e.kv.DiskBytes(),
		DemonRestarts: e.pool.Restarts(),
		Version:       e.vs.StoreStats(),
	}
}

// Pressure is the engine's cheap backpressure signal set, read by the
// HTTP layer's admission control on every write request. Unlike Status
// (which walks every shard chain), each field costs one queue-mutex
// acquisition or a lock-free atomic load, so polling it per-request is
// free.
type Pressure struct {
	// QueueDepth/QueueCap describe the background event queue. The queue
	// itself never blocks producers — it sheds the *oldest* event under
	// overflow — so a rising depth is the earliest sign that ingest is
	// outrunning the analyzers and data is about to be dropped silently.
	QueueDepth int
	QueueCap   int
	// FoldLag is the published watermark minus the durable fold
	// watermark: how many epochs of derived state a crash would lose, and
	// a proxy for how far the GC/fold demon has fallen behind publishes.
	FoldLag uint64
}

// Pressure returns the current backpressure signals.
func (e *Engine) Pressure() Pressure {
	p := Pressure{
		QueueDepth: e.queue.Len(),
		QueueCap:   e.queue.Cap(),
	}
	wm, cold := e.vs.Watermark(), e.vs.ColdWatermark()
	if wm > cold {
		p.FoldLag = wm - cold
	}
	return p
}

// DrainBackground blocks until the background queue is empty and all
// in-flight analysis has finished (tests and benchmarks).
func (e *Engine) DrainBackground() {
	for {
		done := e.processed.Load() + int64(e.queue.Dropped())
		if done >= e.pushed.Load() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close stops demons and releases storage. The version store folds its
// remaining in-memory tier to the cold keyspace first (demons are already
// stopped, so nothing pins a snapshot or publishes concurrently), which
// is what makes a graceful restart lose zero derived epochs; only then
// does the backing kvstore close.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.queue.Close()
	e.pool.Stop()
	// Consolidate long in-link chunk chains before the final fold so the
	// archive reopens from short chains (chains under the threshold stay
	// chunked — cheaper than rewriting every base at every shutdown, and
	// the next life's reads merge them identically).
	e.links.consolidate(rinConsolidateThreshold)
	if err := e.vs.Close(); err != nil {
		e.kv.Close()
		return err
	}
	return e.kv.Close()
}
