package core

import (
	"math/rand"
	"slices"
	"testing"
	"time"

	"memex/internal/events"
	"memex/internal/kvstore"
	"memex/internal/text"
	"memex/internal/version"
	"memex/internal/webcorpus"
)

func TestIDSetCodecRoundtrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{},
		{1},
		{42, 7, 42, 7, 9000000000},
		{1, 2, 3, 4, 5},
	}
	want := [][]int64{
		{},
		{},
		{1},
		{7, 42, 9000000000},
		{1, 2, 3, 4, 5},
	}
	for i, in := range cases {
		got, ok := decodeIDSet(encodeIDSet(in))
		if !ok {
			t.Fatalf("case %d: decode failed", i)
		}
		if got == nil {
			t.Fatalf("case %d: decoded nil — callers can't tell known-empty from unknown", i)
		}
		if !slices.Equal(got, want[i]) {
			t.Fatalf("case %d: roundtrip %v, want %v", i, got, want[i])
		}
	}
	if _, ok := decodeIDSet(nil); ok {
		t.Fatal("decoded empty blob")
	}
	// Truncated payload: claims 3 ids, carries 1.
	blob := encodeIDSet([]int64{1, 2, 3})
	if _, ok := decodeIDSet(blob[:2]); ok {
		t.Fatal("decoded truncated blob")
	}
}

// TestLinkPublishViewsAndIdempotence drives the two edge producers — the
// visit referrer path and the fetch out-link path — and checks that a
// pinned view serves both adjacency directions from the published
// records, and that re-publishing a known edge burns no epoch.
func TestLinkPublishViewsAndIdempotence(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	var pages []*webcorpus.Page
	for _, pid := range c.LeafPages[c.Leaves()[0].ID] {
		if p := c.Page(pid); !p.Front {
			pages = append(pages, p)
		}
	}
	ref, dst := pages[0], pages[1]
	if err := e.RecordVisit(1, ref.URL, "", tBase, events.Community); err != nil {
		t.Fatal(err)
	}
	if err := e.RecordVisit(1, dst.URL, ref.URL, tBase.Add(time.Minute), events.Community); err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()

	e.mu.RLock()
	refID, dstID := e.idByURL[ref.URL], e.idByURL[dst.URL]
	e.mu.RUnlock()

	view := e.DerivedSnapshot()
	defer view.Release()
	if !view.Has(refID) || !view.Has(dstID) {
		t.Fatal("pages missing from the pinned link view")
	}
	if !slices.Contains(view.Out(refID), dstID) {
		t.Fatalf("lnk/%d record lacks referrer edge to %d: %v", refID, dstID, view.Out(refID))
	}
	if !slices.Contains(view.In(dstID), refID) {
		t.Fatalf("rin/%d record lacks reverse edge from %d: %v", dstID, refID, view.In(dstID))
	}
	// The fetch path archived ref's content links too: the record is the
	// union of content out-links and the referral edge, sorted.
	outs := view.Out(refID)
	if !slices.IsSorted(outs) {
		t.Fatalf("adjacency record not sorted: %v", outs)
	}
	if len(outs) < 1+0 { // referral edge at minimum
		t.Fatalf("out record too small: %v", outs)
	}

	// Re-publishing a known edge must not open an epoch (idempotence: a
	// hot revisit loop cannot churn the version store).
	wm := e.vs.Watermark()
	e.links.publish(refID, []int64{dstID}, nil)
	if got := e.vs.Watermark(); got != wm {
		t.Fatalf("idempotent publish advanced watermark %d→%d", wm, got)
	}
	// The view pinned before is immutable regardless.
	if !slices.Equal(view.Out(refID), outs) {
		t.Fatal("pinned view changed under publish")
	}
}

// TestLinkGraphSurvivesRestart is the core-level half of the tentpole
// contract: adjacency published in one life — including the frontier of
// seen-but-unfetched link targets — is rebuilt from recovered records in
// the next, with no network fetches and identical pinned-view reads.
func TestLinkGraphSurvivesRestart(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 5, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 20})
	dir := t.TempDir()
	open := func() *Engine {
		e, err := Open(Config{
			Dir:    dir,
			Source: corpusSource{c},
			KV:     kvstore.Options{Sync: kvstore.SyncNever},
		})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		return e
	}

	e1 := open()
	e1.RegisterUser(1, "alice")
	leaf := c.Leaves()[0]
	for i, pid := range c.LeafPages[leaf.ID][:6] {
		p := c.Page(pid)
		if err := e1.RecordVisit(1, p.URL, "", tBase.Add(time.Duration(i)*time.Minute), events.Community); err != nil {
			t.Fatal(err)
		}
	}
	e1.DrainBackground()

	st1 := e1.Status()
	if st1.GraphEdges == 0 || st1.GraphNodes == 0 {
		t.Fatalf("no link graph accumulated: %+v", st1)
	}
	// Snapshot one fetched page's adjacency and the frontier: graph nodes
	// the fetch path has not archived (no tf/ record, only link evidence).
	view1 := e1.DerivedSnapshot()
	e1.mu.RLock()
	fetched := make(map[int64]bool, len(e1.fetched))
	for p := range e1.fetched {
		fetched[p] = true
	}
	probe := e1.idByURL[c.Page(c.LeafPages[leaf.ID][0]).URL]
	e1.mu.RUnlock()
	out1 := slices.Clone(view1.Out(probe))
	in1 := slices.Clone(view1.In(probe))
	var frontier1 []int64
	for _, p := range out1 {
		if !fetched[p] {
			frontier1 = append(frontier1, p)
		}
	}
	view1.Release()
	if len(frontier1) == 0 {
		t.Skip("probe page's links all archived; frontier not exercised by this seed")
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := open()
	defer e2.Close()
	st2 := e2.Status()
	if st2.GraphNodes != st1.GraphNodes || st2.GraphEdges != st1.GraphEdges {
		t.Fatalf("restart lost graph: %d/%d nodes, %d/%d edges",
			st2.GraphNodes, st1.GraphNodes, st2.GraphEdges, st1.GraphEdges)
	}
	if st2.PagesFetched != 0 {
		t.Fatalf("restart re-fetched %d pages", st2.PagesFetched)
	}
	view2 := e2.DerivedSnapshot()
	defer view2.Release()
	if !slices.Equal(view2.Out(probe), out1) || !slices.Equal(view2.In(probe), in1) {
		t.Fatalf("adjacency diverged after restart: out %v→%v in %v→%v",
			out1, view2.Out(probe), in1, view2.In(probe))
	}
	// Every frontier target is still a known graph node with a URL, so a
	// crawl can propose and resolve it without re-fetching its referrer.
	e2.mu.RLock()
	for _, p := range frontier1 {
		if e2.urlOf[p] == "" {
			t.Fatalf("frontier page %d lost its URL across restart", p)
		}
		if e2.fetched[p] {
			t.Fatalf("frontier page %d spuriously marked fetched", p)
		}
	}
	e2.mu.RUnlock()
	for _, p := range frontier1 {
		if !view2.Has(p) {
			t.Fatalf("frontier page %d missing from recovered link view", p)
		}
	}
}

// testView builds a DerivedView over a bare version store — the pinned
// read face the chunk tests drive without a full engine.
func testView(vs *version.Store) *DerivedView {
	return &DerivedView{
		sn:   vs.Acquire(),
		dict: text.NewDict(),
		tf:   map[int64]map[string]int{},
		vec:  map[int64]text.Vector{},
		out:  map[int64][]int64{},
		in:   map[int64][]int64{},
	}
}

// TestRinChunkScheme drives the chunked in-link records end to end on a
// bare store: the first in-link creates the base record, every later one
// appends a delta chunk, the pinned view merges base+chunks, and
// consolidation folds the generation back into one base (tombstoning the
// chunks) without changing what any view reads — while views pinned
// before the consolidation keep the chunked shape.
func TestRinChunkScheme(t *testing.T) {
	vs := version.NewStore()
	li := newLinkIndex(vs)
	hub := int64(100)
	for src := int64(1); src <= 5; src++ {
		li.publish(src, []int64{hub}, nil)
	}

	view := testView(vs)
	defer view.Release()
	want := []int64{1, 2, 3, 4, 5}
	if got := view.In(hub); !slices.Equal(got, want) {
		t.Fatalf("merged In = %v, want %v", got, want)
	}
	// Record shapes: base from the first edge, one chunk per later edge.
	if raw, ok := view.sn.Get(rinKey(hub)); !ok {
		t.Fatal("no base rin/ record after first in-link")
	} else if ids, _ := decodeIDSet(raw); !slices.Equal(ids, []int64{1}) {
		t.Fatalf("base record = %v, want [1]", ids)
	}
	for seq := 0; seq < 4; seq++ {
		raw, ok := view.sn.Get(rinChunkKey(hub, seq))
		if !ok {
			t.Fatalf("missing chunk seq %d", seq)
		}
		if ids, _ := decodeIDSet(raw); len(ids) != 1 || ids[0] != int64(seq+2) {
			t.Fatalf("chunk %d = %v, want [%d]", seq, ids, seq+2)
		}
	}
	if _, ok := view.sn.Get(rinChunkKey(hub, 4)); ok {
		t.Fatal("phantom chunk past the generation")
	}
	if got := li.pendingChunks(); got != 4 {
		t.Fatalf("pendingChunks = %d, want 4", got)
	}

	// Consolidate: one base, no live chunks, identical merged reads.
	if n := li.consolidate(1); n != 1 {
		t.Fatalf("consolidate folded %d pages, want 1", n)
	}
	after := testView(vs)
	defer after.Release()
	if got := after.In(hub); !slices.Equal(got, want) {
		t.Fatalf("In after consolidation = %v, want %v", got, want)
	}
	if raw, ok := after.sn.Get(rinKey(hub)); !ok {
		t.Fatal("no base record after consolidation")
	} else if ids, _ := decodeIDSet(raw); !slices.Equal(ids, want) {
		t.Fatalf("consolidated base = %v, want %v", ids, want)
	} else if _, start, ok := decodeIDSetStart(raw); !ok || start != 4 {
		t.Fatalf("consolidated base startSeq = %d (ok=%v), want 4", start, ok)
	}
	if _, ok := after.sn.Get(rinChunkKey(hub, 0)); ok {
		t.Fatal("chunk survived consolidation")
	}
	if got := li.pendingChunks(); got != 0 {
		t.Fatalf("pendingChunks after consolidation = %d, want 0", got)
	}
	// The view pinned before consolidation still sees the chunked shape.
	if _, ok := view.sn.Get(rinChunkKey(hub, 0)); !ok {
		t.Fatal("pre-consolidation view lost its chunks")
	}

	// Chunk seqs are monotone per page: the next generation continues at
	// seq 4 (where the folded one left off) and merges on top of the base,
	// whose persisted startSeq tells readers where live chunks begin.
	li.publish(6, []int64{hub}, nil)
	gen2 := testView(vs)
	defer gen2.Release()
	if got := gen2.In(hub); !slices.Equal(got, []int64{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("In after new generation = %v", got)
	}
	if _, ok := gen2.sn.Get(rinChunkKey(hub, 0)); ok {
		t.Fatal("new generation reused a folded chunk seq")
	}
	if raw, ok := gen2.sn.Get(rinChunkKey(hub, 4)); !ok {
		t.Fatal("new generation's first chunk not at seq 4")
	} else if ids, _ := decodeIDSet(raw); !slices.Equal(ids, []int64{6}) {
		t.Fatalf("new generation chunk = %v, want [6]", ids)
	}
}

// TestRinChunkMergeMatchesAuthority is the property check: for a random
// edge stream, the pinned view's merged base+chunk in-adjacency must
// equal the producer-side authority graph's, for every target, with and
// without interleaved consolidation.
func TestRinChunkMergeMatchesAuthority(t *testing.T) {
	vs := version.NewStore()
	li := newLinkIndex(vs)
	rng := rand.New(rand.NewSource(42))
	const pages = 20
	for i := 0; i < 400; i++ {
		from := int64(rng.Intn(pages))
		to := int64(rng.Intn(pages))
		li.publish(from, []int64{to}, nil)
		if i%97 == 0 {
			li.consolidate(2)
		}
	}
	view := testView(vs)
	defer view.Release()
	for p := int64(0); p < pages; p++ {
		want := li.g.In(p)
		slices.Sort(want)
		got := view.In(p)
		if len(want) == 0 {
			// Never linked-to: the view may know it (empty) or not (nil).
			if len(got) != 0 {
				t.Fatalf("page %d: view has in-links %v, authority none", p, got)
			}
			continue
		}
		if !slices.Equal(got, want) {
			t.Fatalf("page %d: view In = %v, authority %v", p, got, want)
		}
	}
}

// TestRinMixedArchiveDecode crafts records the way three different
// "generations" of the codebase would have written them — a pre-chunk
// full rin/ record, delta chunks on top of it, and a chunk-only page with
// no base — plus a corrupt chunk in the middle of a chain, and checks the
// merge handles all of them.
func TestRinMixedArchiveDecode(t *testing.T) {
	vs := version.NewStore()

	b := vs.Begin()
	// Page 7: legacy full record, as PR-4 code wrote it.
	b.Put(rinKey(7), encodeIDSet([]int64{1, 2, 3}))
	// Page 8: chunks with no base (defensive: the writer never produces
	// this, but the reader must not depend on that).
	b.Put(rinChunkKey(8, 0), encodeIDSet([]int64{5}))
	b.Put(rinChunkKey(8, 1), encodeIDSet([]int64{4}))
	if err := b.Publish(); err != nil {
		t.Fatal(err)
	}
	// Page 7 gains post-migration chunks — seq 1 corrupt.
	b2 := vs.Begin()
	b2.Put(rinChunkKey(7, 0), encodeIDSet([]int64{9}))       //memexvet:ignore epochbatch this batch models a later epoch: post-migration chunks legitimately arrive after the legacy record
	b2.Put(rinChunkKey(7, 1), []byte{0xff})                  //memexvet:ignore epochbatch same staged migration scenario: the corrupt chunk under test
	b2.Put(rinChunkKey(7, 2), encodeIDSet([]int64{2, 11}))   //memexvet:ignore epochbatch same staged migration scenario: the chunk past the corruption
	if err := b2.Publish(); err != nil {
		t.Fatal(err)
	}

	view := testView(vs)
	defer view.Release()
	if got := view.In(7); !slices.Equal(got, []int64{1, 2, 3, 9, 11}) {
		t.Fatalf("mixed base+chunks In = %v, want [1 2 3 9 11]", got)
	}
	if got := view.In(8); !slices.Equal(got, []int64{4, 5}) {
		t.Fatalf("chunk-only In = %v, want [4 5]", got)
	}
	if !view.Has(8) {
		t.Fatal("chunk-only page not Has()")
	}
	// Unknown page stays nil.
	if got := view.In(99); got != nil {
		t.Fatalf("unknown page In = %v, want nil", got)
	}
}

// TestLinkRestartChunkedArchive closes an engine while delta chunks are
// still live (chains under the consolidation threshold survive shutdown
// chunked), reopens it, and proves the next life resumes each page's
// chunk seq past the recovered generation: a new in-link must append,
// not overwrite — an overwrite would shadow a recovered chunk's edge out
// of every later view.
func TestLinkRestartChunkedArchive(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 7, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 20})
	dir := t.TempDir()
	open := func() *Engine {
		e, err := Open(Config{
			Dir:    dir,
			Source: corpusSource{c},
			KV:     kvstore.Options{Sync: kvstore.SyncNever},
			// Keep the GC demon from consolidating mid-test.
			VersionGCInterval: -1,
		})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		return e
	}

	e1 := open()
	e1.RegisterUser(1, "alice")
	for i, pid := range c.LeafPages[c.Leaves()[0].ID][:8] {
		p := c.Page(pid)
		if err := e1.RecordVisit(1, p.URL, "", tBase.Add(time.Duration(i)*time.Minute), events.Community); err != nil {
			t.Fatal(err)
		}
	}
	e1.DrainBackground()

	// Pick a target that will still hold live chunks after Close (Close
	// consolidates only chains at or past the threshold).
	e1.links.mu.Lock()
	var target int64
	var nChunks int
	for p, n := range e1.links.chunks {
		if n >= 1 && n < rinConsolidateThreshold && n > nChunks {
			target, nChunks = p, n
		}
	}
	e1.links.mu.Unlock()
	if nChunks == 0 {
		t.Skip("corpus seed produced no under-threshold chunk chains")
	}
	view1 := e1.DerivedSnapshot()
	in1 := slices.Clone(view1.In(target))
	view1.Release()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := open()
	defer e2.Close()
	if got := e2.Status().PagesFetched; got != 0 {
		t.Fatalf("restart re-fetched %d pages", got)
	}
	view2 := e2.DerivedSnapshot()
	if got := view2.In(target); !slices.Equal(got, in1) {
		t.Fatalf("recovered In = %v, want %v", got, in1)
	}
	view2.Release()
	// The recovered seq counters must sit above the live chunks.
	e2.links.mu.Lock()
	resumed := e2.links.chunks[target]
	e2.links.mu.Unlock()
	if resumed != nChunks {
		t.Fatalf("chunk seq resumed at %d, want %d", resumed, nChunks)
	}

	// Append a new in-link in the second life: the union must grow by
	// exactly the new source — losing any element means the new chunk
	// overwrote a recovered one.
	const newSrc = int64(1 << 40)
	e2.links.publish(newSrc, []int64{target}, nil)
	view3 := e2.DerivedSnapshot()
	defer view3.Release()
	want := append(slices.Clone(in1), newSrc)
	slices.Sort(want)
	if got := view3.In(target); !slices.Equal(got, want) {
		t.Fatalf("In after second-life append = %v, want %v", got, want)
	}
}

// TestLinkRestartPreChunkArchive reopens an archive shaped exactly like
// one written before delta chunks existed — every page's in-links in one
// full rin/ record, zero chunks (produced by consolidating everything
// down before close) — and checks the second life recovers it with zero
// fetches, reads identical adjacency, and starts chunking on top of the
// legacy bases.
func TestLinkRestartPreChunkArchive(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 9, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 20})
	dir := t.TempDir()
	open := func() *Engine {
		e, err := Open(Config{
			Dir:               dir,
			Source:            corpusSource{c},
			KV:                kvstore.Options{Sync: kvstore.SyncNever},
			VersionGCInterval: -1,
		})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		return e
	}

	e1 := open()
	e1.RegisterUser(1, "alice")
	for i, pid := range c.LeafPages[c.Leaves()[0].ID][:8] {
		p := c.Page(pid)
		if err := e1.RecordVisit(1, p.URL, "", tBase.Add(time.Duration(i)*time.Minute), events.Community); err != nil {
			t.Fatal(err)
		}
	}
	e1.DrainBackground()
	// Flatten every chunk chain into its base: the archive on disk now
	// holds only full rin/ records, indistinguishable from a pre-chunk
	// writer's output.
	e1.links.consolidate(1)
	if got := e1.links.pendingChunks(); got != 0 {
		t.Fatalf("%d chunks survived full consolidation", got)
	}
	st1 := e1.Status()
	view1 := e1.DerivedSnapshot()
	type probe struct {
		page int64
		in   []int64
	}
	var probes []probe
	e1.mu.RLock()
	for p := range e1.fetched {
		probes = append(probes, probe{p, slices.Clone(view1.In(p))})
	}
	e1.mu.RUnlock()
	view1.Release()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := open()
	defer e2.Close()
	st2 := e2.Status()
	if st2.PagesFetched != 0 {
		t.Fatalf("second life fetched %d pages from a full-record archive", st2.PagesFetched)
	}
	if st2.GraphNodes != st1.GraphNodes || st2.GraphEdges != st1.GraphEdges {
		t.Fatalf("restart lost graph: %d/%d nodes, %d/%d edges",
			st2.GraphNodes, st1.GraphNodes, st2.GraphEdges, st1.GraphEdges)
	}
	if got := e2.links.pendingChunks(); got != 0 {
		t.Fatalf("phantom chunk counters (%d) recovered from a chunk-free archive", got)
	}
	view2 := e2.DerivedSnapshot()
	defer view2.Release()
	for _, pr := range probes {
		if got := view2.In(pr.page); !slices.Equal(got, pr.in) {
			t.Fatalf("page %d: In diverged across restart: %v, want %v", pr.page, got, pr.in)
		}
	}

	// New edges on top of a recovered base start a chunk generation at the
	// base's persisted startSeq (0 for a truly legacy suffix-free record,
	// the folded-chunk count for one written by consolidation — seqs are
	// monotone per page and never reused).
	var hub int64
	var hubIn []int64
	for _, pr := range probes {
		if len(pr.in) > 0 {
			hub, hubIn = pr.page, pr.in
			break
		}
	}
	if hubIn == nil {
		t.Fatal("no page with in-links to probe")
	}
	var wantSeq int
	view2b := e2.DerivedSnapshot()
	if raw, ok := view2b.sn.Get(rinKey(hub)); ok {
		if _, s, ok := decodeIDSetStart(raw); ok {
			wantSeq = s
		}
	}
	view2b.Release()
	const newSrc = int64(1 << 40)
	e2.links.publish(newSrc, []int64{hub}, nil)
	view3 := e2.DerivedSnapshot()
	defer view3.Release()
	if raw, ok := view3.sn.Get(rinChunkKey(hub, wantSeq)); !ok {
		t.Fatalf("new edge on recovered base did not start a chunk generation at seq %d", wantSeq)
	} else if ids, _ := decodeIDSet(raw); !slices.Equal(ids, []int64{newSrc}) {
		t.Fatalf("first chunk = %v, want [%d]", ids, newSrc)
	}
	want := append(slices.Clone(hubIn), newSrc)
	slices.Sort(want)
	if got := view3.In(hub); !slices.Equal(got, want) {
		t.Fatalf("legacy-base merge = %v, want %v", got, want)
	}
}
