package core

import (
	"slices"
	"testing"
	"time"

	"memex/internal/events"
	"memex/internal/kvstore"
	"memex/internal/webcorpus"
)

func TestIDSetCodecRoundtrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{},
		{1},
		{42, 7, 42, 7, 9000000000},
		{1, 2, 3, 4, 5},
	}
	want := [][]int64{
		{},
		{},
		{1},
		{7, 42, 9000000000},
		{1, 2, 3, 4, 5},
	}
	for i, in := range cases {
		got, ok := decodeIDSet(encodeIDSet(in))
		if !ok {
			t.Fatalf("case %d: decode failed", i)
		}
		if got == nil {
			t.Fatalf("case %d: decoded nil — callers can't tell known-empty from unknown", i)
		}
		if !slices.Equal(got, want[i]) {
			t.Fatalf("case %d: roundtrip %v, want %v", i, got, want[i])
		}
	}
	if _, ok := decodeIDSet(nil); ok {
		t.Fatal("decoded empty blob")
	}
	// Truncated payload: claims 3 ids, carries 1.
	blob := encodeIDSet([]int64{1, 2, 3})
	if _, ok := decodeIDSet(blob[:2]); ok {
		t.Fatal("decoded truncated blob")
	}
}

// TestLinkPublishViewsAndIdempotence drives the two edge producers — the
// visit referrer path and the fetch out-link path — and checks that a
// pinned view serves both adjacency directions from the published
// records, and that re-publishing a known edge burns no epoch.
func TestLinkPublishViewsAndIdempotence(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	var pages []*webcorpus.Page
	for _, pid := range c.LeafPages[c.Leaves()[0].ID] {
		if p := c.Page(pid); !p.Front {
			pages = append(pages, p)
		}
	}
	ref, dst := pages[0], pages[1]
	if err := e.RecordVisit(1, ref.URL, "", tBase, events.Community); err != nil {
		t.Fatal(err)
	}
	if err := e.RecordVisit(1, dst.URL, ref.URL, tBase.Add(time.Minute), events.Community); err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()

	e.mu.RLock()
	refID, dstID := e.idByURL[ref.URL], e.idByURL[dst.URL]
	e.mu.RUnlock()

	view := e.DerivedSnapshot()
	defer view.Release()
	if !view.Has(refID) || !view.Has(dstID) {
		t.Fatal("pages missing from the pinned link view")
	}
	if !slices.Contains(view.Out(refID), dstID) {
		t.Fatalf("lnk/%d record lacks referrer edge to %d: %v", refID, dstID, view.Out(refID))
	}
	if !slices.Contains(view.In(dstID), refID) {
		t.Fatalf("rin/%d record lacks reverse edge from %d: %v", dstID, refID, view.In(dstID))
	}
	// The fetch path archived ref's content links too: the record is the
	// union of content out-links and the referral edge, sorted.
	outs := view.Out(refID)
	if !slices.IsSorted(outs) {
		t.Fatalf("adjacency record not sorted: %v", outs)
	}
	if len(outs) < 1+0 { // referral edge at minimum
		t.Fatalf("out record too small: %v", outs)
	}

	// Re-publishing a known edge must not open an epoch (idempotence: a
	// hot revisit loop cannot churn the version store).
	wm := e.vs.Watermark()
	e.links.publish(refID, []int64{dstID}, nil)
	if got := e.vs.Watermark(); got != wm {
		t.Fatalf("idempotent publish advanced watermark %d→%d", wm, got)
	}
	// The view pinned before is immutable regardless.
	if !slices.Equal(view.Out(refID), outs) {
		t.Fatal("pinned view changed under publish")
	}
}

// TestLinkGraphSurvivesRestart is the core-level half of the tentpole
// contract: adjacency published in one life — including the frontier of
// seen-but-unfetched link targets — is rebuilt from recovered records in
// the next, with no network fetches and identical pinned-view reads.
func TestLinkGraphSurvivesRestart(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 5, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 20})
	dir := t.TempDir()
	open := func() *Engine {
		e, err := Open(Config{
			Dir:    dir,
			Source: corpusSource{c},
			KV:     kvstore.Options{Sync: kvstore.SyncNever},
		})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		return e
	}

	e1 := open()
	e1.RegisterUser(1, "alice")
	leaf := c.Leaves()[0]
	for i, pid := range c.LeafPages[leaf.ID][:6] {
		p := c.Page(pid)
		if err := e1.RecordVisit(1, p.URL, "", tBase.Add(time.Duration(i)*time.Minute), events.Community); err != nil {
			t.Fatal(err)
		}
	}
	e1.DrainBackground()

	st1 := e1.Status()
	if st1.GraphEdges == 0 || st1.GraphNodes == 0 {
		t.Fatalf("no link graph accumulated: %+v", st1)
	}
	// Snapshot one fetched page's adjacency and the frontier: graph nodes
	// the fetch path has not archived (no tf/ record, only link evidence).
	view1 := e1.DerivedSnapshot()
	e1.mu.RLock()
	fetched := make(map[int64]bool, len(e1.fetched))
	for p := range e1.fetched {
		fetched[p] = true
	}
	probe := e1.idByURL[c.Page(c.LeafPages[leaf.ID][0]).URL]
	e1.mu.RUnlock()
	out1 := slices.Clone(view1.Out(probe))
	in1 := slices.Clone(view1.In(probe))
	var frontier1 []int64
	for _, p := range out1 {
		if !fetched[p] {
			frontier1 = append(frontier1, p)
		}
	}
	view1.Release()
	if len(frontier1) == 0 {
		t.Skip("probe page's links all archived; frontier not exercised by this seed")
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := open()
	defer e2.Close()
	st2 := e2.Status()
	if st2.GraphNodes != st1.GraphNodes || st2.GraphEdges != st1.GraphEdges {
		t.Fatalf("restart lost graph: %d/%d nodes, %d/%d edges",
			st2.GraphNodes, st1.GraphNodes, st2.GraphEdges, st1.GraphEdges)
	}
	if st2.PagesFetched != 0 {
		t.Fatalf("restart re-fetched %d pages", st2.PagesFetched)
	}
	view2 := e2.DerivedSnapshot()
	defer view2.Release()
	if !slices.Equal(view2.Out(probe), out1) || !slices.Equal(view2.In(probe), in1) {
		t.Fatalf("adjacency diverged after restart: out %v→%v in %v→%v",
			out1, view2.Out(probe), in1, view2.In(probe))
	}
	// Every frontier target is still a known graph node with a URL, so a
	// crawl can propose and resolve it without re-fetching its referrer.
	e2.mu.RLock()
	for _, p := range frontier1 {
		if e2.urlOf[p] == "" {
			t.Fatalf("frontier page %d lost its URL across restart", p)
		}
		if e2.fetched[p] {
			t.Fatalf("frontier page %d spuriously marked fetched", p)
		}
	}
	e2.mu.RUnlock()
	for _, p := range frontier1 {
		if !view2.Has(p) {
			t.Fatalf("frontier page %d missing from recovered link view", p)
		}
	}
}
