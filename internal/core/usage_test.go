package core

import (
	"testing"
	"time"

	"memex/internal/events"
)

func TestUsageBreakdown(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	leaves := c.Leaves()

	// Train two folders.
	n := 0
	for _, pid := range c.LeafPages[leaves[0].ID] {
		if p := c.Page(pid); !p.Front && n < 5 {
			e.AddBookmark(1, p.URL, "/Work", tBase)
			n++
		}
	}
	n = 0
	for _, pid := range c.LeafPages[leaves[2].ID] {
		if p := c.Page(pid); !p.Front && n < 5 {
			e.AddBookmark(1, p.URL, "/Hobby", tBase)
			n++
		}
	}
	e.DrainBackground()
	e.RetrainClassifiers()

	// Surf: long dwells on work pages, short on hobby.
	at := tBase.Add(time.Hour)
	for i, pid := range c.LeafPages[leaves[0].ID][:4] {
		_ = i
		e.RecordVisit(1, c.Page(pid).URL, "", at, events.Community)
		at = at.Add(10 * time.Minute)
	}
	for _, pid := range c.LeafPages[leaves[2].ID][:4] {
		e.RecordVisit(1, c.Page(pid).URL, "", at, events.Community)
		at = at.Add(time.Minute)
	}
	e.DrainBackground()

	slices := e.UsageBreakdown(1, time.Time{})
	if len(slices) == 0 {
		t.Fatal("no usage slices")
	}
	shares := map[string]float64{}
	visits := 0
	var total float64
	for _, s := range slices {
		shares[s.Folder] = s.Share
		visits += s.Visits
		total += s.Share
	}
	if visits != 8 {
		t.Fatalf("visits accounted = %d, want 8", visits)
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %v", total)
	}
	if shares["/Work"] <= shares["/Hobby"] {
		t.Fatalf("work share %.2f not above hobby %.2f despite 10x dwell",
			shares["/Work"], shares["/Hobby"])
	}

	// Since filter excludes earlier visits.
	recent := e.UsageBreakdown(1, at.Add(-3*time.Minute))
	rv := 0
	for _, s := range recent {
		rv += s.Visits
	}
	if rv >= visits {
		t.Fatalf("since filter did not reduce visits: %d", rv)
	}

	// Unknown user → nil.
	if got := e.UsageBreakdown(99, time.Time{}); got != nil {
		t.Fatalf("usage for unknown user: %v", got)
	}
}
