package core

import (
	"encoding/binary"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"memex/internal/graph"
	"memex/internal/version"
)

// This file makes the hyperlink graph a first-class versioned derived
// record, owned by the version store exactly like the term-count record:
//
//	lnk/<page>        the page's full out-link adjacency (sorted page ids)
//	rin/<page>        the page's base in-link record (sorted page ids)
//	rinD/<page>/<seq> one append-only in-link delta chunk (sorted page ids)
//
// # Why in-links are chunked
//
// Out-adjacency is cheap to keep as one record: a page's out-links arrive
// together (its fetch) and rarely grow afterwards. In-links are the
// opposite — a popular hub page accumulates them one at a time, from every
// other page that links to it, forever. Rewriting the full rin/ record per
// new edge costs O(in-degree) bytes per edge — O(in-degree²) cumulative
// churn through the version store and cold tier, concentrated on exactly
// the authority pages HITS-style trail mining cares about most. So the
// write path appends instead: a target's first-ever in-link creates the
// base rin/ record, and every in-link after that publishes a tiny
// rinD/<page>/<seq> delta chunk holding only the batch's new sources —
// O(new edges) bytes per publish, flat in in-degree
// (BenchmarkInLinkWriteAmplification keeps this honest).
//
// # Chunk-chain invariants
//
//   - Chunk seqs are monotone per page — never reused — and dense within
//     one "generation": seqs are allocated under linkMu in epoch order,
//     and a snapshot's watermark only advances over contiguously
//     completed epochs, so any pinned view sees a dense run starting at
//     its base record's start-seq. Readers probe from that start until
//     the first miss, capped by the producer's live counter (the
//     chunk-window hint DerivedView.In uses): the counter never resets,
//     so it is always a valid upper bound for every pinned view, and a
//     fully consolidated page probes zero chunks — no guaranteed final
//     probe miss, no cold-tier fallthrough scan.
//   - Consolidation (linkIndex.consolidate, driven by the engine's
//     version-gc demon and by Close) folds a page's chunks back into one
//     base record: a single batch puts the merged rin/ record — with the
//     next generation's start-seq (== the current counter) appended as a
//     trailing uvarint — and tombstones the closed generation's chunks.
//     The batch is atomic in the store, so no view can see the base
//     without the tombstones; GC then folds the tombstones through to
//     the cold tier, where they reclaim the disk chunks — chains stay
//     short and reopen stays cheap. Per-page thresholds are adaptive
//     (adaptiveRinThreshold): the monotone counter doubles as a lifetime
//     churn metric, so hub pages — the ones whose chains grow fastest —
//     consolidate earlier than cold pages.
//   - Backward compatibility: an archive written before chunking existed
//     holds only full rin/ records, which are exactly a base with zero
//     chunks and a zero start-seq (the trailing uvarint is omitted when
//     zero, so first-edge bases still encode byte-identically to legacy
//     records) — DerivedView.In merges base + chunks, so pre-chunk,
//     mixed, and fully chunked archives all decode through the same
//     path.
//
// Every edge write — a fetch's discovered out-links, a visit's
// referrer→page transition — goes through linkIndex.publish, which stages
// the updated lnk/ record of the source page plus one in-link record
// (base or delta chunk) per newly linked target into one version-store
// batch (the fetch path adds the page's tf/ record to the same batch, so
// a snapshot can never see a page's terms without its links). GC folds
// the records to the cold tier with everything else, so the link graph
// survives restarts: reloadDerived replays the recovered lnk/ records
// into the in-memory authority graph at Open — and resumes each page's
// chunk seq counter above its recovered chunks, so a restarted server
// appends instead of overwriting — which is what lets Discover resume its
// crawl frontier without re-fetching anything.
//
// Reads never touch the authority graph: analysis passes pin a
// DerivedView and decode lnk/rin/rinD records at one frozen epoch (the
// graph.AdjacencySource implementation in derived.go). The authority
// graph exists for the producer side only: publish needs the current
// adjacency to compute the next record (a read-modify-write), and the
// single linkMu below makes those RMWs atomic, so every published record
// is the union of all edges published before it.

// lnkKey names a page's out-adjacency record in the version store.
func lnkKey(page int64) string { return "lnk/" + strconv.FormatInt(page, 10) }

// rinKey names a page's base reverse (in-link) adjacency record.
func rinKey(page int64) string { return "rin/" + strconv.FormatInt(page, 10) }

// rinChunkKey names one in-link delta chunk of a page.
func rinChunkKey(page int64, seq int) string {
	return "rinD/" + strconv.FormatInt(page, 10) + "/" + strconv.Itoa(seq)
}

// pageOfLnkKey is the inverse of lnkKey (ok=false for foreign keys).
func pageOfLnkKey(key string) (int64, bool) {
	if !strings.HasPrefix(key, "lnk/") {
		return 0, false
	}
	id, err := strconv.ParseInt(key[4:], 10, 64)
	return id, err == nil
}

// pageOfRinKey is the inverse of rinKey (ok=false for foreign keys,
// including rinD/ chunk keys, whose prefix does not match).
func pageOfRinKey(key string) (int64, bool) {
	if !strings.HasPrefix(key, "rin/") {
		return 0, false
	}
	id, err := strconv.ParseInt(key[4:], 10, 64)
	return id, err == nil
}

// pageOfRinChunkKey is the inverse of rinChunkKey (ok=false for foreign
// keys, including plain rin/ base records).
func pageOfRinChunkKey(key string) (page int64, seq int, ok bool) {
	rest, found := strings.CutPrefix(key, "rinD/")
	if !found {
		return 0, 0, false
	}
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return 0, 0, false
	}
	page, err := strconv.ParseInt(rest[:slash], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	seq, err = strconv.Atoi(rest[slash+1:])
	if err != nil || seq < 0 {
		return 0, 0, false
	}
	return page, seq, true
}

// rinConsolidateThreshold is the base chunk-chain length at which the
// periodic consolidation pass (and Close) folds a page's chunks into its
// base record. It bounds both the read-side merge (In probes at most
// this many chunks plus the base between GC ticks, modulo publishes
// since the last tick) and the amortized write cost: one O(in-degree)
// base rewrite per threshold new edges. Per page the effective value is
// adaptiveRinThreshold of this.
const rinConsolidateThreshold = 8

// adaptiveRinThreshold is the per-page effective consolidation
// threshold. lifetime is the page's monotone chunk-allocation counter —
// chunks are never renumbered, so it measures cumulative in-link churn
// directly. Hub pages that have already burned through several
// generations consolidate at shorter chains (half the base past 8×, a
// quarter past 32×), shrinking exactly the chunk chains the read-side
// merge, the skip index and the record cache would otherwise have to
// cover; cold pages keep the full base threshold so one-off in-links
// don't trigger O(in-degree) rewrites. The floor of 2 keeps a hub from
// degenerating into a rewrite per edge — except when the caller's base
// is itself lower (Close and tests consolidate at 1).
func adaptiveRinThreshold(base, lifetime int) int {
	if base < 1 {
		base = 1
	}
	t := base
	switch {
	case lifetime >= 32*base:
		t = base / 4
	case lifetime >= 8*base:
		t = base / 2
	}
	if t < 2 {
		t = 2
	}
	if t > base {
		t = base
	}
	return t
}

// linkIndex is the engine's link-graph producer: the in-memory authority
// adjacency (a graph.Graph rebuilt from recovered records at Open) plus
// the mutex that serialises adjacency read-modify-writes against the
// version store. Publishing under one lock guarantees the epoch order of
// lnk/rin records matches their union order, so last-writer-wins in the
// store always yields the full accumulated adjacency — and guarantees the
// dense-seq invariant for delta chunks.
type linkIndex struct {
	vs *version.Store
	mu sync.Mutex
	g  *graph.Graph
	// chunks is each page's next chunk seq to allocate — monotone for the
	// page's whole lifetime (seqs are never reused), which is what makes
	// it a valid probe-window upper bound for every pinned view
	// (chunkNext). start is where the page's current generation begins:
	// live seqs are exactly [start, chunks) — dense, because both advance
	// in epoch order under mu. Consolidation moves start up to chunks and
	// persists it in the new base record. Both guarded by mu.
	chunks map[int64]int
	start  map[int64]int
	// rinBytes accumulates the payload bytes of every published in-link
	// record (base, chunk, or consolidation rewrite) — the write-
	// amplification metric BenchmarkInLinkWriteAmplification reports.
	rinBytes atomic.Int64
}

func newLinkIndex(vs *version.Store) *linkIndex {
	return &linkIndex{vs: vs, g: graph.New(), chunks: map[int64]int{}, start: map[int64]int{}}
}

// rinPut is one staged in-link record: the base record of a target's
// first in-link, or a delta chunk for a target that already has some.
// start is the generation start-seq a base record persists (always 0 for
// delta chunks and for a genuinely fresh page, where it encodes to the
// legacy byte shape).
type rinPut struct {
	key   string
	ids   []int64
	start int
}

// publish records the edges from→targets: any edge not yet in the
// authority graph is staged as an updated lnk/ record for from plus one
// in-link record per new target — the base rin/ record when this is the
// target's first in-link, a rinD/ delta chunk holding just the new source
// otherwise — and published as one batch. tfBlob, when non-nil, is the
// page's term-count record riding in the same batch (the fetch path),
// making term and link state snapshot-atomic per page; a tf-carrying call
// always publishes (even with zero links) so "archived" implies
// "adjacency known" for every snapshot that sees the page.
//
// Only epoch allocation, the adjacency-union reads, seq allocation and
// the authority application run under the lock. That ordering makes
// record content monotone in epoch order — a publisher that allocates a
// later epoch has already observed every earlier publisher's edges and
// chunk seqs — so the expensive half (encoding the records, freezing and
// installing the batch) runs outside the lock and concurrent fetch
// workers publish in parallel; last-writer-wins in the store then always
// yields the full union, even when batches reach Publish out of epoch
// order.
func (li *linkIndex) publish(from int64, targets []int64, tfBlob []byte) {
	b, outs, rins := li.stage(from, targets, tfBlob != nil)
	if b == nil {
		return // nothing new: no epoch, no record churn
	}
	// The deferred Abort is a no-op after Publish but completes the epoch
	// if encoding panics — a leaked epoch would stall the watermark
	// forever under the contiguity rule. (On that panic path the
	// authority is ahead of the records until the next consolidation
	// re-unions the target; edges are never lost in-process, only
	// un-persisted.)
	defer b.Abort()
	if tfBlob != nil {
		b.Put(tfKey(from), tfBlob)
	}
	b.Put(lnkKey(from), encodeIDSet(outs))
	for _, r := range rins {
		blob := encodeIDSetStart(r.ids, r.start)
		li.rinBytes.Add(int64(len(blob)))
		b.Put(r.key, blob)
	}
	b.Publish()
}

// stage is publish's locked half: dedupe the new edges, allocate the
// epoch, capture the post-union out-adjacency, route each fresh target to
// its in-link record (base for a first in-link, a freshly allocated delta
// chunk otherwise), and apply the edges to the authority. A panic
// anywhere inside still releases the lock and completes the epoch (both
// deferred), so a wedged worker cannot stall every future publish or the
// watermark. Returns a nil batch when there is nothing to publish.
func (li *linkIndex) stage(from int64, targets []int64, force bool) (b *version.Batch, outs []int64, rins []rinPut) {
	li.mu.Lock()
	defer li.mu.Unlock()
	seen := map[int64]bool{}
	var fresh []int64
	for _, t := range targets {
		if t == from || seen[t] || li.g.HasEdge(from, t) {
			continue
		}
		seen[t] = true
		fresh = append(fresh, t)
	}
	if !force && len(fresh) == 0 {
		return nil, nil, nil
	}
	b = li.vs.BeginSized(2 + len(fresh))
	committed := false
	defer func() {
		if !committed {
			b.Abort()
			b = nil
		}
	}()
	outs = append(li.g.Out(from), fresh...)
	rins = make([]rinPut, len(fresh))
	for i, t := range fresh {
		if li.g.InDegree(t) == 0 {
			// First in-link ever: the base record is born with it, keeping
			// the invariant that any page with chunks also has a base —
			// and a page whose in-degree stays 1 (the common case in a
			// long-tailed link graph) never grows a chunk chain at all.
			// The persisted start is normally 0 here; carrying the live
			// value keeps the record honest even if a recovered archive
			// ever presents chunks for a page whose lnk/ side was lost.
			rins[i] = rinPut{key: rinKey(t), ids: []int64{from}, start: li.start[t]}
			continue
		}
		seq := li.chunks[t]
		li.chunks[t] = seq + 1
		rins[i] = rinPut{key: rinChunkKey(t, seq), ids: []int64{from}}
	}
	li.g.ApplyOut(from, fresh)
	committed = true
	return b, outs, rins
}

// consolidate folds every page whose live chunk window has reached its
// adaptive threshold (threshold is the base; hub pages fold earlier —
// see adaptiveRinThreshold) back into a single base record: one batch
// per page puts the merged rin/ record (the authority's full
// in-adjacency — which also re-unions any edge a panicked publish failed
// to persist — tagged with the next generation's start-seq) and
// tombstones the closed generation's chunks; the next generation
// continues the monotone seq counter. The engine's version-gc demon runs
// it ahead of each GC so the subsequent fold writes one consolidated
// record to the cold tier and the tombstones reclaim the disk chunks;
// Close runs it so reopen starts from short chains. Returns the number
// of pages consolidated.
//
// Like publish, only the cheap half runs under the lock, and each page
// is its own batch so the lock is held for one O(in-degree) adjacency
// capture at a time — publishers interleave between pages rather than
// stalling behind one capture of every hub's full in-list (the
// lock-across-bulk-work shape PageRank just shed). The capture must stay
// under the lock, though: read after unlock it could absorb an edge
// whose chunk publishes at a later epoch, and a view pinned between the
// two would see the edge in the in-record but not in its source's lnk/
// record — a torn pair the one-batch-per-edge-write design exists to
// prevent. Epoch order makes the counter reset safe: any chunk staged
// for the same page after the lock drops gets a later epoch than the
// consolidation batch, so its seq-0 record shadows the tombstone rather
// than the other way round.
func (li *linkIndex) consolidate(threshold int) int {
	if threshold < 1 {
		threshold = 1
	}
	li.mu.Lock()
	var targets []int64
	for t, n := range li.chunks {
		if n-li.start[t] >= adaptiveRinThreshold(threshold, n) {
			targets = append(targets, t)
		}
	}
	li.mu.Unlock()
	if len(targets) == 0 {
		return 0
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	done := 0
	for _, t := range targets {
		if li.consolidateOne(t, threshold) {
			done++
		}
	}
	return done
}

// consolidateOne folds one page's live chunk window into its base record
// (see consolidate). The new base carries start-seq == the page's
// current counter, and the window's chunks [start, count) are
// tombstoned; the counter itself never moves backwards, so pinned views
// keep valid probe bounds. Publishing can in principle panic (batch
// misuse, allocation failure mid-encode); the deferred recovery rolls
// the generation start back — the un-tombstoned chunks are still live
// and must stay inside the probe window — and, because the restored
// window still clears the threshold, the next GC tick retries the fold
// immediately.
func (li *linkIndex) consolidateOne(t int64, threshold int) bool {
	li.mu.Lock()
	count := li.chunks[t]
	s0 := li.start[t]
	if count-s0 < adaptiveRinThreshold(threshold, count) {
		// Lost a race with another consolidation pass (e.g. Close vs the
		// GC demon's final tick): nothing left to fold here.
		li.mu.Unlock()
		return false
	}
	merged := li.g.In(t)
	li.start[t] = count
	b := li.vs.BeginSized(1 + count - s0)
	li.mu.Unlock()

	committed := false
	defer func() {
		if committed {
			return
		}
		b.Abort() // completes the epoch so the watermark cannot stall
		li.mu.Lock()
		if li.start[t] == count {
			li.start[t] = s0
		}
		li.mu.Unlock()
	}()
	blob := encodeIDSetStart(merged, count)
	li.rinBytes.Add(int64(len(blob)))
	b.Put(rinKey(t), blob)
	for seq := s0; seq < count; seq++ {
		b.Delete(rinChunkKey(t, seq))
	}
	b.Publish()
	committed = true
	return true
}

// applyRecovered replays one recovered lnk/ record into the authority
// graph (Open's reload path; records already exist, nothing publishes).
func (li *linkIndex) applyRecovered(from int64, outs []int64) {
	li.g.ApplyOut(from, outs)
}

// resumeChunks installs the recovered per-page chunk state (Open's
// reload path): nextSeq maps page → one past its highest live chunk seq,
// and starts maps page → the start-seq its recovered base record
// carries. The counter resumes past both — seqs are monotone across
// lives, so the next delta appends after the recovered generation
// instead of overwriting it — and the generation start resumes so the
// next consolidation tombstones exactly the live window.
func (li *linkIndex) resumeChunks(nextSeq, starts map[int64]int) {
	li.mu.Lock()
	defer li.mu.Unlock()
	for page, n := range nextSeq {
		if n > li.chunks[page] {
			li.chunks[page] = n
		}
	}
	for page, s := range starts {
		if s > li.start[page] {
			li.start[page] = s
		}
		if s > li.chunks[page] {
			li.chunks[page] = s
		}
	}
}

// chunkNext returns one past the highest chunk seq ever allocated for
// the page. The counter is monotone for the page's lifetime, so the
// value is a valid upper probe bound for any pinned view, no matter when
// it was pinned — the chunk-window hint DerivedView.In uses to stop its
// merge at the last live chunk instead of paying a guaranteed probe
// miss.
func (li *linkIndex) chunkNext(page int64) int {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.chunks[page]
}

// pendingChunks reports the number of live delta chunks across all pages
// (observability and tests): the sum of the per-page [start, next)
// windows.
func (li *linkIndex) pendingChunks() int {
	li.mu.Lock()
	defer li.mu.Unlock()
	n := 0
	for page, c := range li.chunks {
		n += c - li.start[page]
	}
	return n
}

// Out returns the authority graph's current out-adjacency — the live
// fallback for pages published after a pass pinned its view.
func (li *linkIndex) Out(page int64) []int64 { return li.g.Out(page) }

// Counts reports authority graph size for Status.
func (li *linkIndex) Counts() (nodes, edges int) {
	return li.g.NodeCount(), li.g.EdgeCount()
}

// --- adjacency codec ---
//
// Adjacency records store a sorted id set, delta-encoded: uvarint(n),
// then per id uvarint(id - previous). Like the term-count codec, nothing
// in the blob is process-local, so records written by one life of the
// server decode in the next. Base records and delta chunks share the
// codec; a chunk is simply a small set.

// encodeIDSet canonicalises ids (sort, dedupe — canonIDs in derived.go,
// shared with the read-side chunk merge) and serialises them.
func encodeIDSet(ids []int64) []byte {
	set := canonIDs(append([]int64(nil), ids...))
	buf := make([]byte, 0, binary.MaxVarintLen64*(len(set)+1))
	buf = binary.AppendUvarint(buf, uint64(len(set)))
	prev := int64(0)
	for _, id := range set {
		buf = binary.AppendUvarint(buf, uint64(id-prev))
		prev = id
	}
	return buf
}

// decodeIDSet is the inverse of encodeIDSet (nil, false on corrupt input;
// an empty set decodes to a non-nil empty slice so callers can tell
// "known, no links" from "unknown"). Trailing bytes after the set are
// ignored — which is what lets base rin/ records carry a start-seq
// suffix newer code reads and older code never noticed.
func decodeIDSet(b []byte) ([]int64, bool) {
	ids, _, ok := decodeIDSetRest(b)
	return ids, ok
}

// decodeIDSetRest decodes the id set and returns whatever bytes follow
// it.
func decodeIDSetRest(b []byte) ([]int64, []byte, bool) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, nil, false
	}
	b = b[w:]
	// Every id costs at least one byte, so a count exceeding the payload
	// is corruption — reject it before sizing the slice (a huge bogus
	// count would otherwise panic in make instead of failing gracefully).
	if n > uint64(len(b)) {
		return nil, nil, false
	}
	ids := make([]int64, 0, n)
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		d, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, nil, false
		}
		b = b[w:]
		prev += int64(d)
		ids = append(ids, prev)
	}
	return ids, b, true
}

// encodeIDSetStart is encodeIDSet plus the generation start-seq appended
// as a trailing uvarint. A zero start is omitted, so fresh-page base
// records (and every delta chunk, which always passes 0) stay
// byte-identical to the legacy encoding — old archives and new readers
// meet in the middle.
func encodeIDSetStart(ids []int64, startSeq int) []byte {
	buf := encodeIDSet(ids)
	if startSeq > 0 {
		buf = binary.AppendUvarint(buf, uint64(startSeq))
	}
	return buf
}

// decodeIDSetStart decodes a base rin/ record: the id set plus its
// generation start-seq (0 when the suffix is absent — legacy records and
// fresh-page bases). A malformed suffix fails the whole record, like any
// other corruption.
func decodeIDSetStart(b []byte) ([]int64, int, bool) {
	ids, rest, ok := decodeIDSetRest(b)
	if !ok {
		return nil, 0, false
	}
	if len(rest) == 0 {
		return ids, 0, true
	}
	s, w := binary.Uvarint(rest)
	if w <= 0 || w != len(rest) || s > 1<<31 {
		return nil, 0, false
	}
	return ids, int(s), true
}
