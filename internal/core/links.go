package core

import (
	"encoding/binary"
	"sort"
	"strconv"
	"strings"
	"sync"

	"memex/internal/graph"
	"memex/internal/version"
)

// This file makes the hyperlink graph a first-class versioned derived
// record, owned by the version store exactly like the term-count record:
//
//	lnk/<page>  the page's full out-link adjacency (sorted page ids)
//	rin/<page>  the page's full in-link adjacency (sorted page ids)
//
// Every edge write — a fetch's discovered out-links, a visit's
// referrer→page transition — goes through linkIndex.publish, which stages
// the updated lnk/ record of the source page plus the updated rin/ record
// of every newly linked target into one version-store batch (the fetch
// path adds the page's tf/ record to the same batch, so a snapshot can
// never see a page's terms without its links). GC folds the records to
// the cold tier with everything else, so the link graph survives
// restarts: reloadDerived replays the recovered lnk/ records into the
// in-memory authority graph at Open, which is what lets Discover resume
// its crawl frontier — every seen-but-unfetched URL is a recovered graph
// node whose row the pages table kept — without re-fetching anything.
//
// Reads never touch the authority graph: analysis passes pin a
// DerivedView and decode lnk/rin records at one frozen epoch (the
// graph.AdjacencySource implementation in derived.go). The authority
// graph exists for the producer side only: publish needs the current
// adjacency to compute the next record (a read-modify-write), and the
// single linkMu below makes those RMWs atomic, so every published record
// is the union of all edges published before it.

// lnkKey names a page's out-adjacency record in the version store.
func lnkKey(page int64) string { return "lnk/" + strconv.FormatInt(page, 10) }

// rinKey names a page's reverse (in-link) adjacency record.
func rinKey(page int64) string { return "rin/" + strconv.FormatInt(page, 10) }

// pageOfLnkKey is the inverse of lnkKey (ok=false for foreign keys).
func pageOfLnkKey(key string) (int64, bool) {
	if !strings.HasPrefix(key, "lnk/") {
		return 0, false
	}
	id, err := strconv.ParseInt(key[4:], 10, 64)
	return id, err == nil
}

// linkIndex is the engine's link-graph producer: the in-memory authority
// adjacency (a graph.Graph rebuilt from recovered records at Open) plus
// the mutex that serialises adjacency read-modify-writes against the
// version store. Publishing under one lock guarantees the epoch order of
// lnk/rin records matches their union order, so last-writer-wins in the
// store always yields the full accumulated adjacency.
type linkIndex struct {
	vs *version.Store
	mu sync.Mutex
	g  *graph.Graph
}

func newLinkIndex(vs *version.Store) *linkIndex {
	return &linkIndex{vs: vs, g: graph.New()}
}

// publish records the edges from→targets: any edge not yet in the
// authority graph is staged as an updated lnk/ record for from plus an
// updated rin/ record per new target and published as one batch. tfBlob,
// when non-nil, is the page's term-count record riding in the same batch
// (the fetch path), making term and link state snapshot-atomic per page;
// a tf-carrying call always publishes (even with zero links) so
// "archived" implies "adjacency known" for every snapshot that sees the
// page.
//
// Only epoch allocation, the adjacency-union reads and the authority
// application run under the lock. That ordering makes record content
// monotone in epoch order — a publisher that allocates a later epoch has
// already observed every earlier publisher's edges — so the expensive
// half (encoding the records, freezing and installing the batch) runs
// outside the lock and concurrent fetch workers publish in parallel;
// last-writer-wins in the store then always yields the full union, even
// when batches reach Publish out of epoch order.
func (li *linkIndex) publish(from int64, targets []int64, tfBlob []byte) {
	b, outs, fresh, ins := li.stage(from, targets, tfBlob != nil)
	if b == nil {
		return // nothing new: no epoch, no record churn
	}
	// The deferred Abort is a no-op after Publish but completes the epoch
	// if encoding panics — a leaked epoch would stall the watermark
	// forever under the contiguity rule. (On that panic path the
	// authority is ahead of the records until a later publish re-unions
	// the page; edges are never lost in-process, only un-persisted.)
	defer b.Abort()
	if tfBlob != nil {
		b.Put(tfKey(from), tfBlob)
	}
	b.Put(lnkKey(from), encodeIDSet(outs))
	for i, t := range fresh {
		b.Put(rinKey(t), encodeIDSet(ins[i]))
	}
	b.Publish()
}

// stage is publish's locked half: dedupe the new edges, allocate the
// epoch, capture the post-union adjacency slices, and apply the edges to
// the authority. A panic anywhere inside still releases the lock and
// completes the epoch (both deferred), so a wedged worker cannot stall
// every future publish or the watermark. Returns a nil batch when there
// is nothing to publish.
func (li *linkIndex) stage(from int64, targets []int64, force bool) (b *version.Batch, outs, fresh []int64, ins [][]int64) {
	li.mu.Lock()
	defer li.mu.Unlock()
	seen := map[int64]bool{}
	for _, t := range targets {
		if t == from || seen[t] || li.g.HasEdge(from, t) {
			continue
		}
		seen[t] = true
		fresh = append(fresh, t)
	}
	if !force && len(fresh) == 0 {
		return nil, nil, nil, nil
	}
	b = li.vs.BeginSized(2 + len(fresh))
	committed := false
	defer func() {
		if !committed {
			b.Abort()
			b = nil
		}
	}()
	outs = append(li.g.Out(from), fresh...)
	ins = make([][]int64, len(fresh))
	for i, t := range fresh {
		ins[i] = append(li.g.In(t), from)
	}
	li.g.ApplyOut(from, fresh)
	committed = true
	return b, outs, fresh, ins
}

// applyRecovered replays one recovered lnk/ record into the authority
// graph (Open's reload path; records already exist, nothing publishes).
func (li *linkIndex) applyRecovered(from int64, outs []int64) {
	li.g.ApplyOut(from, outs)
}

// Out returns the authority graph's current out-adjacency — the live
// fallback for pages published after a pass pinned its view.
func (li *linkIndex) Out(page int64) []int64 { return li.g.Out(page) }

// Counts reports authority graph size for Status.
func (li *linkIndex) Counts() (nodes, edges int) {
	return li.g.NodeCount(), li.g.EdgeCount()
}

// --- adjacency codec ---
//
// Adjacency records store a sorted id set, delta-encoded: uvarint(n),
// then per id uvarint(id - previous). Like the term-count codec, nothing
// in the blob is process-local, so records written by one life of the
// server decode in the next.

// encodeIDSet canonicalises ids (sort, dedupe) and serialises them.
func encodeIDSet(ids []int64) []byte {
	set := append([]int64(nil), ids...)
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	n := 0
	for i, id := range set {
		if i > 0 && id == set[n-1] {
			continue
		}
		set[n] = id
		n++
	}
	set = set[:n]
	buf := make([]byte, 0, binary.MaxVarintLen64*(len(set)+1))
	buf = binary.AppendUvarint(buf, uint64(len(set)))
	prev := int64(0)
	for _, id := range set {
		buf = binary.AppendUvarint(buf, uint64(id-prev))
		prev = id
	}
	return buf
}

// decodeIDSet is the inverse of encodeIDSet (nil, false on corrupt input;
// an empty set decodes to a non-nil empty slice so callers can tell
// "known, no links" from "unknown").
func decodeIDSet(b []byte) ([]int64, bool) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, false
	}
	b = b[w:]
	// Every id costs at least one byte, so a count exceeding the payload
	// is corruption — reject it before sizing the slice (a huge bogus
	// count would otherwise panic in make instead of failing gracefully).
	if n > uint64(len(b)) {
		return nil, false
	}
	ids := make([]int64, 0, n)
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		d, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, false
		}
		b = b[w:]
		prev += int64(d)
		ids = append(ids, prev)
	}
	return ids, true
}
