package core

import (
	"encoding/binary"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"memex/internal/graph"
	"memex/internal/version"
)

// This file makes the hyperlink graph a first-class versioned derived
// record, owned by the version store exactly like the term-count record:
//
//	lnk/<page>        the page's full out-link adjacency (sorted page ids)
//	rin/<page>        the page's base in-link record (sorted page ids)
//	rinD/<page>/<seq> one append-only in-link delta chunk (sorted page ids)
//
// # Why in-links are chunked
//
// Out-adjacency is cheap to keep as one record: a page's out-links arrive
// together (its fetch) and rarely grow afterwards. In-links are the
// opposite — a popular hub page accumulates them one at a time, from every
// other page that links to it, forever. Rewriting the full rin/ record per
// new edge costs O(in-degree) bytes per edge — O(in-degree²) cumulative
// churn through the version store and cold tier, concentrated on exactly
// the authority pages HITS-style trail mining cares about most. So the
// write path appends instead: a target's first-ever in-link creates the
// base rin/ record, and every in-link after that publishes a tiny
// rinD/<page>/<seq> delta chunk holding only the batch's new sources —
// O(new edges) bytes per publish, flat in in-degree
// (BenchmarkInLinkWriteAmplification keeps this honest).
//
// # Chunk-chain invariants
//
//   - Within one "generation" the live chunk seqs for a page are dense
//     from 0: seqs are allocated under linkMu, and a snapshot's watermark
//     only advances over contiguously completed epochs, so any pinned view
//     sees a dense prefix. Readers therefore probe seq 0,1,2,… until the
//     first miss — no chunk-count metadata record is needed.
//   - Consolidation (linkIndex.consolidate, driven by the engine's
//     version-gc demon and by Close) folds a page's chunks back into one
//     base record: a single batch puts the merged rin/ record, tombstones
//     every chunk of the generation, and resets the seq counter, starting
//     the next generation at seq 0. The batch is atomic in the store, so
//     no view can see the base without the tombstones; GC then folds the
//     tombstones through to the cold tier, where they reclaim the disk
//     chunks — chains stay short and reopen stays cheap.
//   - Backward compatibility: an archive written before chunking existed
//     holds only full rin/ records, which are exactly a base with zero
//     chunks — DerivedView.In merges base + chunks, so pre-chunk, mixed,
//     and fully chunked archives all decode through the same path.
//
// Every edge write — a fetch's discovered out-links, a visit's
// referrer→page transition — goes through linkIndex.publish, which stages
// the updated lnk/ record of the source page plus one in-link record
// (base or delta chunk) per newly linked target into one version-store
// batch (the fetch path adds the page's tf/ record to the same batch, so
// a snapshot can never see a page's terms without its links). GC folds
// the records to the cold tier with everything else, so the link graph
// survives restarts: reloadDerived replays the recovered lnk/ records
// into the in-memory authority graph at Open — and resumes each page's
// chunk seq counter above its recovered chunks, so a restarted server
// appends instead of overwriting — which is what lets Discover resume its
// crawl frontier without re-fetching anything.
//
// Reads never touch the authority graph: analysis passes pin a
// DerivedView and decode lnk/rin/rinD records at one frozen epoch (the
// graph.AdjacencySource implementation in derived.go). The authority
// graph exists for the producer side only: publish needs the current
// adjacency to compute the next record (a read-modify-write), and the
// single linkMu below makes those RMWs atomic, so every published record
// is the union of all edges published before it.

// lnkKey names a page's out-adjacency record in the version store.
func lnkKey(page int64) string { return "lnk/" + strconv.FormatInt(page, 10) }

// rinKey names a page's base reverse (in-link) adjacency record.
func rinKey(page int64) string { return "rin/" + strconv.FormatInt(page, 10) }

// rinChunkKey names one in-link delta chunk of a page.
func rinChunkKey(page int64, seq int) string {
	return "rinD/" + strconv.FormatInt(page, 10) + "/" + strconv.Itoa(seq)
}

// pageOfLnkKey is the inverse of lnkKey (ok=false for foreign keys).
func pageOfLnkKey(key string) (int64, bool) {
	if !strings.HasPrefix(key, "lnk/") {
		return 0, false
	}
	id, err := strconv.ParseInt(key[4:], 10, 64)
	return id, err == nil
}

// pageOfRinChunkKey is the inverse of rinChunkKey (ok=false for foreign
// keys, including plain rin/ base records).
func pageOfRinChunkKey(key string) (page int64, seq int, ok bool) {
	rest, found := strings.CutPrefix(key, "rinD/")
	if !found {
		return 0, 0, false
	}
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return 0, 0, false
	}
	page, err := strconv.ParseInt(rest[:slash], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	seq, err = strconv.Atoi(rest[slash+1:])
	if err != nil || seq < 0 {
		return 0, 0, false
	}
	return page, seq, true
}

// rinConsolidateThreshold is the chunk-chain length at which the periodic
// consolidation pass (and Close) folds a page's chunks into its base
// record. It bounds both the read-side merge (In probes at most this many
// chunks plus the base between GC ticks, modulo publishes since the last
// tick) and the amortized write cost: one O(in-degree) base rewrite per
// threshold new edges.
const rinConsolidateThreshold = 8

// linkIndex is the engine's link-graph producer: the in-memory authority
// adjacency (a graph.Graph rebuilt from recovered records at Open) plus
// the mutex that serialises adjacency read-modify-writes against the
// version store. Publishing under one lock guarantees the epoch order of
// lnk/rin records matches their union order, so last-writer-wins in the
// store always yields the full accumulated adjacency — and guarantees the
// dense-seq invariant for delta chunks.
type linkIndex struct {
	vs *version.Store
	mu sync.Mutex
	g  *graph.Graph
	// chunks counts each page's live delta chunks (== the next seq to
	// allocate: live seqs are dense from 0 within a generation). Guarded
	// by mu; consolidation resets entries to start the next generation.
	chunks map[int64]int
	// rinBytes accumulates the payload bytes of every published in-link
	// record (base, chunk, or consolidation rewrite) — the write-
	// amplification metric BenchmarkInLinkWriteAmplification reports.
	rinBytes atomic.Int64
}

func newLinkIndex(vs *version.Store) *linkIndex {
	return &linkIndex{vs: vs, g: graph.New(), chunks: map[int64]int{}}
}

// rinPut is one staged in-link record: the base record of a target's
// first in-link, or a delta chunk for a target that already has some.
type rinPut struct {
	key string
	ids []int64
}

// publish records the edges from→targets: any edge not yet in the
// authority graph is staged as an updated lnk/ record for from plus one
// in-link record per new target — the base rin/ record when this is the
// target's first in-link, a rinD/ delta chunk holding just the new source
// otherwise — and published as one batch. tfBlob, when non-nil, is the
// page's term-count record riding in the same batch (the fetch path),
// making term and link state snapshot-atomic per page; a tf-carrying call
// always publishes (even with zero links) so "archived" implies
// "adjacency known" for every snapshot that sees the page.
//
// Only epoch allocation, the adjacency-union reads, seq allocation and
// the authority application run under the lock. That ordering makes
// record content monotone in epoch order — a publisher that allocates a
// later epoch has already observed every earlier publisher's edges and
// chunk seqs — so the expensive half (encoding the records, freezing and
// installing the batch) runs outside the lock and concurrent fetch
// workers publish in parallel; last-writer-wins in the store then always
// yields the full union, even when batches reach Publish out of epoch
// order.
func (li *linkIndex) publish(from int64, targets []int64, tfBlob []byte) {
	b, outs, rins := li.stage(from, targets, tfBlob != nil)
	if b == nil {
		return // nothing new: no epoch, no record churn
	}
	// The deferred Abort is a no-op after Publish but completes the epoch
	// if encoding panics — a leaked epoch would stall the watermark
	// forever under the contiguity rule. (On that panic path the
	// authority is ahead of the records until the next consolidation
	// re-unions the target; edges are never lost in-process, only
	// un-persisted.)
	defer b.Abort()
	if tfBlob != nil {
		b.Put(tfKey(from), tfBlob)
	}
	b.Put(lnkKey(from), encodeIDSet(outs))
	for _, r := range rins {
		blob := encodeIDSet(r.ids)
		li.rinBytes.Add(int64(len(blob)))
		b.Put(r.key, blob)
	}
	b.Publish()
}

// stage is publish's locked half: dedupe the new edges, allocate the
// epoch, capture the post-union out-adjacency, route each fresh target to
// its in-link record (base for a first in-link, a freshly allocated delta
// chunk otherwise), and apply the edges to the authority. A panic
// anywhere inside still releases the lock and completes the epoch (both
// deferred), so a wedged worker cannot stall every future publish or the
// watermark. Returns a nil batch when there is nothing to publish.
func (li *linkIndex) stage(from int64, targets []int64, force bool) (b *version.Batch, outs []int64, rins []rinPut) {
	li.mu.Lock()
	defer li.mu.Unlock()
	seen := map[int64]bool{}
	var fresh []int64
	for _, t := range targets {
		if t == from || seen[t] || li.g.HasEdge(from, t) {
			continue
		}
		seen[t] = true
		fresh = append(fresh, t)
	}
	if !force && len(fresh) == 0 {
		return nil, nil, nil
	}
	b = li.vs.BeginSized(2 + len(fresh))
	committed := false
	defer func() {
		if !committed {
			b.Abort()
			b = nil
		}
	}()
	outs = append(li.g.Out(from), fresh...)
	rins = make([]rinPut, len(fresh))
	for i, t := range fresh {
		if li.g.InDegree(t) == 0 {
			// First in-link ever: the base record is born with it, keeping
			// the invariant that any page with chunks also has a base —
			// and a page whose in-degree stays 1 (the common case in a
			// long-tailed link graph) never grows a chunk chain at all.
			rins[i] = rinPut{key: rinKey(t), ids: []int64{from}}
			continue
		}
		seq := li.chunks[t]
		li.chunks[t] = seq + 1
		rins[i] = rinPut{key: rinChunkKey(t, seq), ids: []int64{from}}
	}
	li.g.ApplyOut(from, fresh)
	committed = true
	return b, outs, rins
}

// consolidate folds every page whose chunk chain has reached threshold
// back into a single base record: one batch per page puts the merged
// rin/ record (the authority's full in-adjacency — which also re-unions
// any edge a panicked publish failed to persist) and tombstones the
// generation's chunks, and the page's next chunk generation starts at
// seq 0. The engine's version-gc demon runs it ahead of each GC so the
// subsequent fold writes one consolidated record to the cold tier and
// the tombstones reclaim the disk chunks; Close runs it so reopen starts
// from short chains. Returns the number of pages consolidated.
//
// Like publish, only the cheap half runs under the lock, and each page
// is its own batch so the lock is held for one O(in-degree) adjacency
// capture at a time — publishers interleave between pages rather than
// stalling behind one capture of every hub's full in-list (the
// lock-across-bulk-work shape PageRank just shed). The capture must stay
// under the lock, though: read after unlock it could absorb an edge
// whose chunk publishes at a later epoch, and a view pinned between the
// two would see the edge in the in-record but not in its source's lnk/
// record — a torn pair the one-batch-per-edge-write design exists to
// prevent. Epoch order makes the counter reset safe: any chunk staged
// for the same page after the lock drops gets a later epoch than the
// consolidation batch, so its seq-0 record shadows the tombstone rather
// than the other way round.
func (li *linkIndex) consolidate(threshold int) int {
	if threshold < 1 {
		threshold = 1
	}
	li.mu.Lock()
	var targets []int64
	for t, n := range li.chunks {
		if n >= threshold {
			targets = append(targets, t)
		}
	}
	li.mu.Unlock()
	if len(targets) == 0 {
		return 0
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	done := 0
	for _, t := range targets {
		if li.consolidateOne(t, threshold) {
			done++
		}
	}
	return done
}

// consolidateOne folds one page's chunk generation into its base record
// (see consolidate). Publishing can in principle panic (batch misuse,
// allocation failure mid-encode); the deferred recovery restores the
// page's chunk counter so the generation resumes where it left off — a
// restarted generation's next chunk would shadow the old seq-0 chunk's
// edge out of every later view — and, because the restored count still
// clears the threshold, the next GC tick retries the fold immediately.
func (li *linkIndex) consolidateOne(t int64, threshold int) bool {
	li.mu.Lock()
	count := li.chunks[t]
	if count < threshold {
		// Lost a race with another consolidation pass (e.g. Close vs the
		// GC demon's final tick): nothing left to fold here.
		li.mu.Unlock()
		return false
	}
	merged := li.g.In(t)
	delete(li.chunks, t)
	b := li.vs.BeginSized(1 + count)
	li.mu.Unlock()

	committed := false
	defer func() {
		if committed {
			return
		}
		b.Abort() // completes the epoch so the watermark cannot stall
		li.mu.Lock()
		if count > li.chunks[t] {
			li.chunks[t] = count
		}
		li.mu.Unlock()
	}()
	blob := encodeIDSet(merged)
	li.rinBytes.Add(int64(len(blob)))
	b.Put(rinKey(t), blob)
	for seq := 0; seq < count; seq++ {
		b.Delete(rinChunkKey(t, seq))
	}
	b.Publish()
	committed = true
	return true
}

// applyRecovered replays one recovered lnk/ record into the authority
// graph (Open's reload path; records already exist, nothing publishes).
func (li *linkIndex) applyRecovered(from int64, outs []int64) {
	li.g.ApplyOut(from, outs)
}

// resumeChunks installs the recovered per-page chunk counts (Open's
// reload path): nextSeq maps page → one past its highest live chunk seq,
// so the next delta appends after the recovered generation instead of
// overwriting it.
func (li *linkIndex) resumeChunks(nextSeq map[int64]int) {
	li.mu.Lock()
	defer li.mu.Unlock()
	for page, n := range nextSeq {
		if n > li.chunks[page] {
			li.chunks[page] = n
		}
	}
}

// pendingChunks reports the number of live delta chunks across all pages
// (observability and tests).
func (li *linkIndex) pendingChunks() int {
	li.mu.Lock()
	defer li.mu.Unlock()
	n := 0
	for _, c := range li.chunks {
		n += c
	}
	return n
}

// Out returns the authority graph's current out-adjacency — the live
// fallback for pages published after a pass pinned its view.
func (li *linkIndex) Out(page int64) []int64 { return li.g.Out(page) }

// Counts reports authority graph size for Status.
func (li *linkIndex) Counts() (nodes, edges int) {
	return li.g.NodeCount(), li.g.EdgeCount()
}

// --- adjacency codec ---
//
// Adjacency records store a sorted id set, delta-encoded: uvarint(n),
// then per id uvarint(id - previous). Like the term-count codec, nothing
// in the blob is process-local, so records written by one life of the
// server decode in the next. Base records and delta chunks share the
// codec; a chunk is simply a small set.

// encodeIDSet canonicalises ids (sort, dedupe — canonIDs in derived.go,
// shared with the read-side chunk merge) and serialises them.
func encodeIDSet(ids []int64) []byte {
	set := canonIDs(append([]int64(nil), ids...))
	buf := make([]byte, 0, binary.MaxVarintLen64*(len(set)+1))
	buf = binary.AppendUvarint(buf, uint64(len(set)))
	prev := int64(0)
	for _, id := range set {
		buf = binary.AppendUvarint(buf, uint64(id-prev))
		prev = id
	}
	return buf
}

// decodeIDSet is the inverse of encodeIDSet (nil, false on corrupt input;
// an empty set decodes to a non-nil empty slice so callers can tell
// "known, no links" from "unknown").
func decodeIDSet(b []byte) ([]int64, bool) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, false
	}
	b = b[w:]
	// Every id costs at least one byte, so a count exceeding the payload
	// is corruption — reject it before sizing the slice (a huge bogus
	// count would otherwise panic in make instead of failing gracefully).
	if n > uint64(len(b)) {
		return nil, false
	}
	ids := make([]int64, 0, n)
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		d, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, false
		}
		b = b[w:]
		prev += int64(d)
		ids = append(ids, prev)
	}
	return ids, true
}
