package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"memex/internal/events"
	"memex/internal/kvstore"
	"memex/internal/webcorpus"
)

// corpusSource adapts the synthetic web to the engine's PageSource.
type corpusSource struct {
	c *webcorpus.Corpus
}

func (s corpusSource) Lookup(url string) (Content, bool) {
	id, ok := s.c.ByURL[url]
	if !ok {
		return Content{}, false
	}
	p := s.c.Page(id)
	links := make([]string, 0, len(p.Links))
	for _, l := range p.Links {
		links = append(links, s.c.Page(l).URL)
	}
	return Content{URL: p.URL, Title: p.Title, Text: p.Text, Links: links}, true
}

func testWorld(t testing.TB) (*webcorpus.Corpus, *Engine) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 5, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 20})
	e, err := Open(Config{
		Dir:    t.TempDir(),
		Source: corpusSource{c},
		KV:     kvstore.Options{Sync: kvstore.SyncNever},
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return c, e
}

var tBase = time.Date(2000, 5, 20, 9, 0, 0, 0, time.UTC)

func TestVisitIngestAndSearch(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	// Visit several pages of one leaf topic.
	leaf := c.Leaves()[0]
	for i, pid := range c.LeafPages[leaf.ID][:8] {
		p := c.Page(pid)
		if err := e.RecordVisit(1, p.URL, "", tBase.Add(time.Duration(i)*time.Minute), events.Community); err != nil {
			t.Fatalf("RecordVisit: %v", err)
		}
	}
	e.DrainBackground()

	st := e.Status()
	if st.Visits != 8 {
		t.Fatalf("Visits = %d", st.Visits)
	}
	if st.PagesIndexed < 8 {
		t.Fatalf("PagesIndexed = %d", st.PagesIndexed)
	}

	// Search for the leaf's vocabulary.
	top := c.Topics[leaf.Parent]
	query := fmt.Sprintf("%s_%s01 %s_%s02", top.Name, leaf.Name, top.Name, leaf.Name)
	hits := e.Search(1, query, 5)
	if len(hits) == 0 {
		t.Fatalf("no hits for %q", query)
	}
	for _, h := range hits {
		if h.URL == "" || h.Title == "" {
			t.Fatalf("hit missing metadata: %+v", h)
		}
	}
}

func TestPrivacyModes(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	e.RegisterUser(2, "bob")
	// Use content pages only: front pages carry too little text to query.
	var pages []int64
	for _, pid := range c.LeafPages[c.Leaves()[0].ID] {
		if !c.Page(pid).Front {
			pages = append(pages, pid)
		}
	}
	if len(pages) < 3 {
		t.Skip("not enough content pages")
	}

	// Off: nothing recorded.
	e.RecordVisit(1, c.Page(pages[0]).URL, "", tBase, events.Off)
	// Private: recorded, visible to owner only.
	e.RecordVisit(1, c.Page(pages[1]).URL, "", tBase, events.Private)
	// Community: visible to everyone.
	e.RecordVisit(1, c.Page(pages[2]).URL, "", tBase, events.Community)
	e.DrainBackground()

	if st := e.Status(); st.Visits != 2 {
		t.Fatalf("Visits = %d, want 2 (Off discarded)", st.Visits)
	}

	queryFor := func(pid int64) string {
		words := strings.Fields(c.Page(pid).Text)
		// Use the page's own topical words as the query.
		var topical []string
		for _, w := range words {
			if strings.Contains(w, "_") {
				topical = append(topical, w)
			}
			if len(topical) == 4 {
				break
			}
		}
		return strings.Join(topical, " ")
	}

	// Bob must see the community page but not alice's private page.
	seen := func(user, pid int64) bool {
		for _, h := range e.Search(user, queryFor(pid), 50) {
			if h.ID == e.idByURL[c.Page(pid).URL] {
				return true
			}
		}
		return false
	}
	if !seen(2, pages[2]) {
		t.Fatal("community page invisible to another user")
	}
	if seen(2, pages[1]) {
		t.Fatal("private page leaked to another user")
	}
	if !seen(1, pages[1]) {
		t.Fatal("private page invisible to its owner")
	}
}

func TestBookmarkTrainClassifyGuess(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	leaves := c.Leaves()
	lA, lB := leaves[0], leaves[1]
	// Bookmark several content pages of two topics into two folders.
	filed := 0
	for _, pid := range c.LeafPages[lA.ID] {
		if p := c.Page(pid); !p.Front && filed < 6 {
			e.AddBookmark(1, p.URL, "/TopicA", tBase)
			filed++
		}
	}
	filed = 0
	for _, pid := range c.LeafPages[lB.ID] {
		if p := c.Page(pid); !p.Front && filed < 6 {
			e.AddBookmark(1, p.URL, "/TopicB", tBase)
			filed++
		}
	}
	e.DrainBackground()
	e.RetrainClassifiers()

	// A new visit to an unbookmarked content page of topic A should be
	// guessed into /TopicA.
	var target *webcorpus.Page
	for _, pid := range c.LeafPages[lA.ID] {
		p := c.Page(pid)
		if !p.Front {
			target = p // last content page; bookmarked ones are also fine to skip
		}
	}
	if target == nil {
		t.Skip("no content page available")
	}
	e.RecordVisit(1, target.URL, "", tBase.Add(time.Hour), events.Community)
	e.DrainBackground()

	e.mu.RLock()
	tree := e.trees[1]
	pid := e.idByURL[target.URL]
	f := tree.FolderOfPage(pid)
	e.mu.RUnlock()
	if f == nil {
		t.Fatal("visited page not filed by classifier")
	}
	if f.Path() != "/TopicA" {
		t.Fatalf("guessed folder = %q, want /TopicA", f.Path())
	}
}

func TestImportExportRoundTrip(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	p1 := c.Page(c.LeafPages[c.Leaves()[0].ID][0])
	p2 := c.Page(c.LeafPages[c.Leaves()[1].ID][0])
	src := fmt.Sprintf(`<!DOCTYPE NETSCAPE-Bookmark-file-1>
<DL><p>
    <DT><H3>Imported</H3>
    <DL><p>
        <DT><A HREF="%s" ADD_DATE="958800000">One</A>
        <DT><A HREF="%s" ADD_DATE="958800001">Two</A>
    </DL><p>
</DL><p>`, p1.URL, p2.URL)
	n, err := e.ImportBookmarks(1, strings.NewReader(src))
	if err != nil || n != 2 {
		t.Fatalf("Import: n=%d err=%v", n, err)
	}
	e.DrainBackground()

	var buf bytes.Buffer
	if err := e.ExportBookmarks(1, &buf); err != nil {
		t.Fatalf("Export: %v", err)
	}
	if !strings.Contains(buf.String(), p1.URL) || !strings.Contains(buf.String(), "Imported") {
		t.Fatal("export missing imported content")
	}
}

func TestTrailsReplay(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	leaf := c.Leaves()[0]
	// Bookmark-train two folders so the classifier exists.
	other := c.Leaves()[1]
	n := 0
	for _, pid := range c.LeafPages[leaf.ID] {
		if p := c.Page(pid); !p.Front && n < 5 {
			e.AddBookmark(1, p.URL, "/Music", tBase)
			n++
		}
	}
	n = 0
	for _, pid := range c.LeafPages[other.ID] {
		if p := c.Page(pid); !p.Front && n < 5 {
			e.AddBookmark(1, p.URL, "/Other", tBase)
			n++
		}
	}
	e.DrainBackground()
	e.RetrainClassifiers()

	// Surf a trail within the leaf topic, with referrers.
	ids := c.LeafPages[leaf.ID]
	var prev string
	at := tBase.Add(2 * time.Hour)
	for i := 0; i < 6; i++ {
		p := c.Page(ids[i])
		e.RecordVisit(1, p.URL, prev, at, events.Community)
		prev = p.URL
		at = at.Add(time.Minute)
	}
	// And an off-topic detour.
	off := c.Page(c.LeafPages[other.ID][7])
	e.RecordVisit(1, off.URL, "", at, events.Community)
	e.DrainBackground()

	ctx := e.Trails(1, "/Music", 10)
	if len(ctx.Pages) == 0 {
		t.Fatal("trail replay empty")
	}
	for _, p := range ctx.Pages {
		if p.ID == e.idByURL[off.URL] {
			t.Fatal("off-topic page leaked into /Music trail")
		}
	}
	if len(ctx.Edges) == 0 {
		t.Fatal("trail has no transitions")
	}
}

func TestThemesAndRecommend(t *testing.T) {
	c, e := testWorld(t)
	// Three users: 1 and 2 share a topic; 3 differs.
	leaves := c.Leaves()
	interests := map[int64]int{1: leaves[0].ID, 2: leaves[0].ID, 3: leaves[2].ID}
	for u := int64(1); u <= 3; u++ {
		e.RegisterUser(u, fmt.Sprintf("user%d", u))
		n := 0
		for _, pid := range c.LeafPages[interests[u]] {
			p := c.Page(pid)
			if p.Front {
				continue
			}
			e.AddBookmark(u, p.URL, "/stuff", tBase)
			e.RecordVisit(u, p.URL, "", tBase.Add(time.Duration(n)*time.Minute), events.Community)
			n++
			if n == 8 {
				break
			}
		}
	}
	// User 2 visits extra pages user 1 hasn't seen.
	extra := 0
	for _, pid := range c.LeafPages[interests[2]] {
		p := c.Page(pid)
		if !p.Front {
			continue
		}
		e.RecordVisit(2, p.URL, "", tBase.Add(time.Hour), events.Community)
		extra++
		if extra == 3 {
			break
		}
	}
	e.DrainBackground()

	st := e.RebuildThemes()
	if st.Themes == 0 {
		t.Fatal("no themes discovered")
	}
	if got := e.Themes(); len(got) != st.Themes {
		t.Fatalf("Themes() = %d, stats = %d", len(got), st.Themes)
	}

	p := e.Profile(1)
	if p == nil || len(p.Weights) == 0 {
		t.Fatal("no profile for user 1")
	}

	recs := e.Recommend(1, 5, true)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	// Everything recommended must be unseen by user 1 and community-visible.
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, r := range recs {
		if e.seenBy[r.ID][1] {
			t.Fatalf("recommended a page user 1 already saw: %d", r.ID)
		}
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 6, TopTopics: 2, SubPerTopic: 2, PagesPerLeaf: 10})
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir, Source: corpusSource{c}, KV: kvstore.Options{Sync: kvstore.SyncAlways}})
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterUser(1, "alice")
	p := c.Page(1)
	e.RecordVisit(1, p.URL, "", tBase, events.Community)
	e.AddBookmark(1, p.URL, "/Saved", tBase)
	e.DrainBackground()
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	e2, err := Open(Config{Dir: dir, Source: corpusSource{c}})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer e2.Close()
	st := e2.Status()
	if st.Bookmarks != 0 && st.Visits != 0 {
		// Counters are runtime counters; persistent state is what matters:
	}
	e2.mu.RLock()
	tree := e2.trees[1]
	e2.mu.RUnlock()
	if tree == nil || tree.Count() != 1 {
		t.Fatal("bookmark tree lost across restart")
	}
	if tree.FolderOfPage(e2.idByURL[p.URL]) == nil {
		t.Fatal("bookmark page lost")
	}
}

func TestDiscoverResources(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	leaves := c.Leaves()
	n := 0
	for _, pid := range c.LeafPages[leaves[0].ID] {
		if p := c.Page(pid); !p.Front && n < 6 {
			e.AddBookmark(1, p.URL, "/Focus", tBase)
			n++
		}
	}
	n = 0
	for _, pid := range c.LeafPages[leaves[1].ID] {
		if p := c.Page(pid); !p.Front && n < 6 {
			e.AddBookmark(1, p.URL, "/Else", tBase)
			n++
		}
	}
	e.DrainBackground()
	e.RetrainClassifiers()

	found := e.Discover(1, "/Focus", 60, 5)
	if len(found) == 0 {
		t.Fatal("Discover returned nothing")
	}
	// Discovered pages should hit the focus topic far above the corpus
	// base rate (1 leaf of 6 ≈ 17%).
	on := 0
	for _, f := range found {
		if id, ok := c.ByURL[f.URL]; ok && c.Page(id).Topic == leaves[0].ID {
			on++
		}
	}
	if frac := float64(on) / float64(len(found)); frac < 0.35 {
		t.Fatalf("discovery on-topic fraction %.2f (%d/%d) below 2x base rate", frac, on, len(found))
	}
}

func TestEngineConfigValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open without Dir accepted")
	}
	if _, err := Open(Config{Dir: t.TempDir()}); err == nil {
		t.Fatal("Open without Source accepted")
	}
}
