package core

import (
	"math"
	"sort"
	"strings"
	"time"

	"memex/internal/crawler"
	"memex/internal/events"
	"memex/internal/folders"
	"memex/internal/profile"
	"memex/internal/rdbms"
	"memex/internal/recommend"
	"memex/internal/text"
	"memex/internal/textindex"
	"memex/internal/themes"
	"memex/internal/trails"
)

// PageInfo is page metadata returned by queries.
type PageInfo struct {
	ID    int64
	URL   string
	Title string
	Score float64
}

// Search runs ranked full-text retrieval over pages the user may see:
// their own archive plus all community-visible pages. Scope widens to the
// whole archive when user is 0 (an administrative/community query).
func (e *Engine) Search(user int64, query string, k int) []PageInfo {
	hits := e.idx.Search(query, k*4+16, textindex.BM25)
	out := make([]PageInfo, 0, k)
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, h := range hits {
		if user != 0 && !e.community[h.Doc] && !e.seenBy[h.Doc][user] {
			continue
		}
		out = append(out, PageInfo{
			ID: h.Doc, URL: e.urlOf[h.Doc], Title: e.titleOf[h.Doc], Score: h.Score,
		})
		if len(out) == k {
			break
		}
	}
	return out
}

// SearchWhen answers the paper's time-scoped recall question ("what was
// the URL I visited about six months back regarding X?"): ranked search
// restricted to pages the user visited within [from, to). Zero bounds are
// open-ended.
func (e *Engine) SearchWhen(user int64, query string, k int, from, to time.Time) []PageInfo {
	// Pages the user visited in the window, via the visits table's user
	// index with the time bound pushed down as a predicate — the scan
	// touches only this user's rows, never the whole visits table, no
	// matter how long the archive history grows.
	window := map[int64]bool{}
	windowQuery(e.visits, user, from, to).Each(func(r rdbms.Row) bool {
		window[r.MustInt("page")] = true
		return true
	})
	if len(window) == 0 {
		return nil
	}
	hits := e.idx.Search(query, k*8+32, textindex.BM25)
	out := make([]PageInfo, 0, k)
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, h := range hits {
		if !window[h.Doc] {
			continue
		}
		out = append(out, PageInfo{ID: h.Doc, URL: e.urlOf[h.Doc], Title: e.titleOf[h.Doc], Score: h.Score})
		if len(out) == k {
			break
		}
	}
	return out
}

// windowQuery builds the index-driven visits query for one user and a
// half-open [from, to) time window (zero bounds open-ended). The user
// equality index always drives — at the many-user scale the ROADMAP
// targets, one user's history is far more selective than a time window
// shared by every user — and the time bound is pushed down as a residual
// predicate, so the scan touches only the user's index rows and never
// falls back to a full table scan. (A compound (user, time) index would
// bound it by the intersection; see ROADMAP.)
func windowQuery(visits *rdbms.Table, user int64, from, to time.Time) *rdbms.Query {
	q := visits.Select().Where(rdbms.Eq("user", rdbms.Int(user)))
	switch {
	case !from.IsZero() && !to.IsZero():
		return q.Where(rdbms.Between("time", rdbms.Time(from), rdbms.Time(to)))
	case !from.IsZero():
		return q.Where(rdbms.Ge("time", rdbms.Time(from)))
	case !to.IsZero():
		return q.Where(rdbms.Lt("time", rdbms.Time(to)))
	default:
		return q
	}
}

// visitRows loads visits as trail events, filtered to what `user` may see
// (their own visits plus community-public visits when includeCommunity).
func (e *Engine) visitRows(user int64, includeCommunity bool) []trails.Visit {
	var out []trails.Visit
	e.visits.Select().OrderBy("time", false).Each(func(r rdbms.Row) bool {
		vUser := r.MustInt("user")
		priv := events.Privacy(r.MustInt("privacy"))
		if vUser != user {
			if !includeCommunity || priv != events.Community {
				return true
			}
		}
		out = append(out, trails.Visit{
			User:     vUser,
			Page:     r.MustInt("page"),
			Referrer: r.MustInt("ref"),
			Time:     r.MustTime("time"),
		})
		return true
	})
	return out
}

// TrailContext is the replayed topical browsing context of Figure 2.
type TrailContext struct {
	Folder string
	Pages  []PageInfo
	// Edges are transitions between pages, strongest first.
	Edges [][2]int64
	// Popular are authoritative pages in or near the community trail graph
	// for this topic.
	Popular []PageInfo
}

// Trails replays the user's (and the community's) recent browsing context
// for one of the user's folders: pages most likely to belong to the folder
// per the user's classifier, assembled into a trail graph.
func (e *Engine) Trails(user int64, folder string, k int) TrailContext {
	e.mu.RLock()
	model := e.models[user]
	e.mu.RUnlock()

	// The whole replay classifies pages against one pinned snapshot of
	// the derived term stats, so a concurrent fetch can't flip a page's
	// topic mid-replay.
	view := e.DerivedSnapshot()
	defer view.Release()

	topicFilter := func(page int64) bool {
		if model == nil {
			// Untrained: fall back to the user's explicit folder content.
			e.mu.RLock()
			defer e.mu.RUnlock()
			t := e.trees[user]
			if t == nil {
				return false
			}
			of := t.FolderOfPage(page)
			return of != nil && strings.HasPrefix(of.Path()+"/", folder+"/")
		}
		tf := view.TermCounts(page)
		if tf == nil {
			return false
		}
		got, _ := model.Classify(tf)
		return got == folder || strings.HasPrefix(got+"/", folder+"/")
	}

	visits := e.visitRows(user, true)
	tg := trails.Replay(visits, trails.Filter{Topic: topicFilter}, 0, e.cfg.Now(), 0)

	ctx := TrailContext{Folder: folder, Edges: tg.Transitions()}
	// Resolve graph ranking before touching metadata, then decorate both
	// page lists under a single read lock — the per-element lock churn
	// here used to cost one RLock/RUnlock round trip per popular page.
	// The popularity ranking reads the same pinned view as the topic
	// classification: HITS runs over the lnk/rin adjacency records at the
	// view's epoch, so a concurrent fetch can't warp the neighbourhood
	// mid-ranking, and a restarted server ranks from recovered records.
	top := tg.Top(k)
	popular := trails.Popular(tg, view, k)
	e.mu.RLock()
	for _, p := range top {
		ctx.Pages = append(ctx.Pages, PageInfo{
			ID: p, URL: e.urlOf[p], Title: e.titleOf[p], Score: tg.Weight[p],
		})
	}
	for _, p := range popular {
		ctx.Popular = append(ctx.Popular, PageInfo{ID: p, URL: e.urlOf[p], Title: e.titleOf[p]})
	}
	e.mu.RUnlock()
	return ctx
}

// RebuildThemes consolidates all users' folders into the community
// taxonomy (Figure 4) and returns its statistics. Only pages with fetched
// text contribute (the demons fetch bookmarked pages eagerly). The theme
// inputs come from one pinned snapshot of the derived vectors, so the
// whole clustering pass sees a consistent epoch; the metadata lock is
// held only long enough to skeletonise the folder trees.
func (e *Engine) RebuildThemes() themes.Stats {
	view := e.DerivedSnapshot()
	defer view.Release()

	type folderSkel struct {
		user  int64
		path  string
		pages []int64
	}
	var skels []folderSkel
	e.mu.RLock()
	//memexvet:ignore lockiter skeletonising under the lock IS the snapshot step: folder trees mutate in place, and the walk is bounded by users' folders, not the archive
	for user, tree := range e.trees {
		tree.Walk(func(f *folders.Folder) {
			if f.Parent == nil || len(f.Entries) == 0 {
				return
			}
			sk := folderSkel{user: user, path: f.Path()}
			for _, entry := range f.Entries {
				if entry.Guessed {
					continue
				}
				sk.pages = append(sk.pages, entry.Page)
			}
			if len(sk.pages) > 0 {
				skels = append(skels, sk)
			}
		})
	}
	e.mu.RUnlock()
	// Clustering is seeded but order-sensitive; feeding it in map
	// iteration order made every rebuild a slightly different taxonomy.
	// Sorting pins the input, so identical archives — including one
	// recovered from the cold tier after a restart — rebuild identical
	// themes (and identical downstream profiles/recommendations).
	sort.Slice(skels, func(i, j int) bool {
		if skels[i].user != skels[j].user {
			return skels[i].user < skels[j].user
		}
		return skels[i].path < skels[j].path
	})

	// TF-IDF weighting and clustering run with no lock held at all.
	var ufs []themes.UserFolder
	for _, sk := range skels {
		uf := themes.UserFolder{User: sk.user, Path: sk.path}
		for _, page := range sk.pages {
			raw, ok := view.Vector(page)
			if !ok {
				continue
			}
			uf.Docs = append(uf.Docs, themes.DocVec{ID: page, Vec: e.corp.TFIDF(raw)})
		}
		if len(uf.Docs) > 0 {
			ufs = append(ufs, uf)
		}
	}

	tax := themes.Discover(ufs, e.dict, themes.Options{Seed: 1})
	e.mu.Lock()
	e.tax = tax
	e.mu.Unlock()
	e.stats.ThemeRebuilds.Add(1)
	return tax.Stats()
}

// ThemeInfo summarises one community theme for clients.
type ThemeInfo struct {
	ID        int
	Parent    int
	Label     string
	Signature []string
	Docs      int
	Users     int
}

// Themes lists the current community taxonomy (empty before the first
// rebuild).
func (e *Engine) Themes() []ThemeInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.tax == nil {
		return nil
	}
	out := make([]ThemeInfo, 0, len(e.tax.Themes))
	for i := range e.tax.Themes {
		th := &e.tax.Themes[i]
		out = append(out, ThemeInfo{
			ID: th.ID, Parent: th.Parent, Label: th.Label,
			Signature: th.Signature, Docs: len(th.Docs), Users: len(th.Contributors),
		})
	}
	return out
}

// Profile returns the user's interest weights over the community taxonomy
// (nil before themes exist or for unknown users).
func (e *Engine) Profile(user int64) *profile.Profile {
	e.mu.RLock()
	tax := e.tax
	e.mu.RUnlock()
	if tax == nil {
		return nil
	}
	docs := e.userDocs(user)
	if len(docs) == 0 {
		return nil
	}
	p := profile.Build(user, docs, tax)
	return &p
}

// userDocs gathers TF-IDF vectors of the user's visited, fetched pages.
// The vectors come from one pinned version-store snapshot, so the profile
// is computed over a consistent view even while ingest publishes.
func (e *Engine) userDocs(user int64) []themes.DocVec {
	view := e.DerivedSnapshot()
	defer view.Release()
	return e.userDocsInView(user, view)
}

// userDocsInView is userDocs against a caller-pinned view, letting one
// snapshot serve several users' profile computations (Recommend).
func (e *Engine) userDocsInView(user int64, view *DerivedView) []themes.DocVec {
	pageSet := map[int64]bool{}
	e.mu.RLock()
	for page, by := range e.seenBy {
		if by[user] {
			pageSet[page] = true
		}
	}
	e.mu.RUnlock()
	// Deterministic page order: profile weights are float accumulations,
	// and downstream ranking must not depend on map iteration order.
	pages := make([]int64, 0, len(pageSet))
	for page := range pageSet {
		pages = append(pages, page)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	var docs []themes.DocVec
	for _, page := range pages {
		if raw, ok := view.Vector(page); ok {
			docs = append(docs, themes.DocVec{ID: page, Vec: e.corp.TFIDF(raw)})
		}
	}
	return docs
}

// Recommend suggests up to k community pages for the user via theme-profile
// peer similarity (method ByProfile) or the URL-overlap baseline.
func (e *Engine) Recommend(user int64, k int, byProfile bool) []PageInfo {
	e.mu.RLock()
	tax := e.tax
	users := make([]int64, 0, len(e.trees))
	for u := range e.trees {
		users = append(users, u)
	}
	e.mu.RUnlock()
	if tax == nil {
		return nil
	}

	// All peers' profiles are built from the same pinned snapshot so the
	// similarity comparison is apples-to-apples even under live ingest.
	view := e.DerivedSnapshot()
	defer view.Release()
	profiles := map[int64]profile.Profile{}
	visited := map[int64]map[int64]bool{}
	for _, u := range users {
		docs := e.userDocsInView(u, view)
		if len(docs) == 0 {
			continue
		}
		profiles[u] = profile.Build(u, docs, tax)
		set := map[int64]bool{}
		e.mu.RLock()
		for page, by := range e.seenBy {
			// Only community-visible pages are candidates from peers.
			if by[u] && (u == user || e.community[page]) {
				set[page] = true
			}
		}
		e.mu.RUnlock()
		visited[u] = set
	}
	eng := recommend.NewEngine(profiles, visited)
	// Link-proximity signal: a candidate page a hop away from something
	// the user already surfed (either direction, at the view's epoch)
	// outranks an unconnected candidate with the same peer mass — the
	// trail-mining intuition that nearby pages extend the user's own
	// paths. Reading the same pinned view keeps the boost consistent with
	// the profiles and reproducible from recovered records.
	mine := visited[user]
	boost := map[int64]float64{}
	scanned := map[int64]bool{}
	for u, set := range visited {
		if u == user || len(mine) == 0 {
			// No history ⇒ no page can be near it; skip the record
			// decodes rather than compute a guaranteed-empty boost.
			continue
		}
		for p := range set {
			if mine[p] || scanned[p] {
				continue
			}
			scanned[p] = true
			near := 0
			for _, q := range view.Out(p) {
				if mine[q] {
					near++
				}
			}
			for _, q := range view.In(p) {
				if mine[q] {
					near++
				}
			}
			if near > 0 {
				boost[p] = 1 + math.Log1p(float64(near))
			}
		}
	}
	eng.SetPageScores(boost)
	method := recommend.ByProfile
	if !byProfile {
		method = recommend.ByURLOverlap
	}
	recs := eng.Recommend(user, method, 10, k)
	out := make([]PageInfo, 0, len(recs))
	e.mu.RLock()
	for _, p := range recs {
		out = append(out, PageInfo{ID: p, URL: e.urlOf[p], Title: e.titleOf[p]})
	}
	e.mu.RUnlock()
	return out
}

// Discover runs a focused crawl for one of the user's folders and returns
// fresh authoritative resources for it (the resource-discovery demon's
// on-demand form). Budget bounds fetches.
func (e *Engine) Discover(user int64, folder string, budget, k int) []PageInfo {
	e.mu.RLock()
	model := e.models[user]
	tree := e.trees[user]
	e.mu.RUnlock()
	if model == nil || tree == nil {
		return nil
	}
	// Seeds: the folder's own pages.
	var seeds []int64
	for _, entry := range tree.Entries(folder) {
		seeds = append(seeds, entry.Page)
	}
	if len(seeds) == 0 {
		return nil
	}
	ci := model.ClassIndex(folder)
	if ci < 0 {
		return nil
	}
	rel := func(fr crawler.FetchResult) float64 {
		// Posterior mass of the target folder per the user's model. The
		// counts are either the page's recovered tf/ record or freshly
		// tokenized content — byte-identical by construction, so the
		// frontier priorities (and hence the crawl) don't depend on which
		// tier served the page.
		counts := fr.Counts
		if counts == nil {
			counts = textTermCounts(fr.Text)
		}
		post := model.Posteriors(counts)
		return post[ci]
	}
	// One pinned view covers the whole crawl: every "already archived"
	// check — and every archived page's term counts and out-links — reads
	// the same epoch, so a concurrent fetch demon can't flip a page's
	// status mid-crawl. The crawl is single-goroutine, matching the
	// view's contract.
	view := e.DerivedSnapshot()
	defer view.Release()
	fetcher := &engineFetcher{e: e, view: view}
	res := crawler.Crawl(fetcher, rel, seeds, crawler.Options{
		Budget: budget, Focused: true, Threshold: 0.5,
	})
	// Discovery ranks by link mass. Pages archived before the pin read
	// their adjacency record from the view; pages this very crawl fetched
	// published after the pin, so they fall back to the live authority.
	outLinks := func(p int64) []int64 {
		if outs, ok := view.OutKnown(p); ok {
			return outs
		}
		return e.links.Out(p)
	}
	top := crawler.Discovery(res, outLinks, k)
	out := make([]PageInfo, 0, len(top))
	e.mu.RLock()
	for _, p := range top {
		out = append(out, PageInfo{ID: p, URL: e.urlOf[p], Title: e.titleOf[p], Score: res.Scores[p]})
	}
	e.mu.RUnlock()
	return out
}

// engineFetcher adapts the engine's archive + PageSource to the crawler's
// Fetcher interface. view is the crawl's pinned DerivedView: pages whose
// derived records are visible in it are served entirely from the version
// store — term counts from tf/, adjacency from lnk/ — with zero network
// fetches, which is what lets a restarted server re-propose its whole
// pre-crash frontier without touching the source. Only genuinely new
// pages hit the PageSource and go through the normal fetch/publish path.
type engineFetcher struct {
	e    *Engine
	view *DerivedView
}

// Fetch implements crawler.Fetcher. New pages are indexed through the
// normal fetch path (as the paper's discovery demons do), so discovered
// resources are immediately searchable and carry metadata. Links are
// returned in sorted id order from both tiers, keeping the frontier —
// and therefore the crawl — identical no matter which tier serves a page.
func (f *engineFetcher) Fetch(page int64) (crawler.FetchResult, bool) {
	e := f.e
	if tf := f.view.TermCounts(page); tf != nil {
		return crawler.FetchResult{Page: page, Counts: tf, Links: f.view.Out(page)}, true
	}
	// Archived after the view's pin (a concurrent visit or crawl): the
	// page is invisible at this crawl's epoch, and re-fetching it from
	// the source would only lose the claim race after paying for network
	// and tokenize work. Skip it; the next crawl's view will serve it.
	if e.derivedPublished(page) {
		return crawler.FetchResult{}, false
	}
	e.mu.RLock()
	url := e.urlOf[page]
	e.mu.RUnlock()
	if url == "" {
		return crawler.FetchResult{}, false
	}
	tf := e.fetchAndIndexSlow(page, url)
	if tf == nil {
		return crawler.FetchResult{}, false
	}
	// Read the page's links from the authority, not from the raw content:
	// the published lnk/ record is the union of content out-links and any
	// earlier visit-referrer edges, which is exactly what a future life
	// serving this page from the archive will see — the frontier must not
	// depend on which tier served the page. (fetchAndIndexSlow guarantees
	// the authority holds at least the content links by the time it
	// returns, on both sides of the claim race.)
	sorted := e.links.Out(page)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return crawler.FetchResult{Page: page, Counts: tf, Links: sorted}, true
}

// textTermCounts converts raw content into the classifier's term counts.
func textTermCounts(s string) map[string]int {
	return text.TermCounts(s)
}
