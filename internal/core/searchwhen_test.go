package core

import (
	"strings"
	"testing"
	"time"

	"memex/internal/events"
	"memex/internal/rdbms"
)

// TestSearchWhen covers the §1 recall question: finding a page by topic
// terms restricted to when the user visited it.
func TestSearchWhen(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")

	var content []int64
	for _, pid := range c.LeafPages[c.Leaves()[0].ID] {
		if !c.Page(pid).Front {
			content = append(content, pid)
		}
	}
	early := tBase                          // "six months back"
	late := tBase.Add(180 * 24 * time.Hour) // recently
	e.RecordVisit(1, c.Page(content[0]).URL, "", early, events.Community)
	e.RecordVisit(1, c.Page(content[1]).URL, "", late, events.Community)
	e.DrainBackground()

	// A query matching both pages' topical vocabulary.
	var q []string
	for _, w := range strings.Fields(c.Page(content[0]).Text) {
		if strings.Contains(w, "_") {
			q = append(q, w)
			if len(q) == 3 {
				break
			}
		}
	}
	query := strings.Join(q, " ")

	// Unscoped: both periods reachable.
	all := e.SearchWhen(1, query, 10, time.Time{}, time.Time{})
	if len(all) == 0 {
		t.Fatal("unscoped SearchWhen found nothing")
	}
	// Scoped to the early window: only the old visit.
	old := e.SearchWhen(1, query, 10, early.Add(-time.Hour), early.Add(time.Hour))
	for _, h := range old {
		if h.ID == e.idByURL[c.Page(content[1]).URL] {
			t.Fatal("late visit leaked into early window")
		}
	}
	if len(old) == 0 {
		t.Fatal("early window found nothing")
	}
	// Scoped to a window with no visits.
	if got := e.SearchWhen(1, query, 10, late.Add(time.Hour), time.Time{}); len(got) != 0 {
		t.Fatalf("empty window returned %v", got)
	}
	// Other users see nothing in this user's windows.
	if got := e.SearchWhen(2, query, 10, time.Time{}, time.Time{}); len(got) != 0 {
		t.Fatalf("wrong user got %v", got)
	}
}

// TestWindowQueryPlans pins the access path behind time-scoped recall:
// every window shape drives off the visits table's user index (one
// user's history is far more selective than a time window shared across
// all users) with the time bound pushed down as a predicate — never a
// full table scan.
func TestWindowQueryPlans(t *testing.T) {
	_, e := testWorld(t)
	from := tBase
	to := tBase.Add(time.Hour)
	cases := []struct {
		name     string
		from, to time.Time
		want     string
	}{
		{"bounded", from, to, "user"},
		{"from-only", from, time.Time{}, "user"},
		{"to-only", time.Time{}, to, "user"},
		{"unbounded", time.Time{}, time.Time{}, "user"},
	}
	for _, c := range cases {
		plan := windowQuery(e.visits, 1, c.from, c.to).Explain()
		if plan.Access != "index" || plan.Column != c.want {
			t.Fatalf("%s: plan %+v, want index on %q", c.name, plan, c.want)
		}
	}
}

// TestWindowQueryRows: the index-driven window query returns exactly the
// rows the old scan-and-filter did.
func TestWindowQueryRows(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")
	pages := c.LeafPages[c.Leaves()[0].ID]
	times := []time.Time{tBase, tBase.Add(time.Hour), tBase.Add(48 * time.Hour)}
	for i, at := range times {
		if err := e.RecordVisit(1, c.Page(pages[i]).URL, "", at, events.Community); err != nil {
			t.Fatal(err)
		}
	}
	// A second user's visits must never leak into the window.
	e.RegisterUser(2, "bob")
	if err := e.RecordVisit(2, c.Page(pages[3]).URL, "", tBase.Add(time.Minute), events.Community); err != nil {
		t.Fatal(err)
	}
	e.DrainBackground()

	count := func(from, to time.Time) int {
		n := 0
		windowQuery(e.visits, 1, from, to).Each(func(r rdbms.Row) bool {
			if r.MustInt("user") != 1 {
				t.Fatalf("window leaked user %d", r.MustInt("user"))
			}
			n++
			return true
		})
		return n
	}
	if got := count(time.Time{}, time.Time{}); got != 3 {
		t.Fatalf("unbounded = %d, want 3", got)
	}
	if got := count(tBase.Add(30*time.Minute), tBase.Add(2*time.Hour)); got != 1 {
		t.Fatalf("bounded = %d, want 1", got)
	}
	if got := count(tBase.Add(time.Minute), time.Time{}); got != 2 {
		t.Fatalf("from-only = %d, want 2", got)
	}
	if got := count(time.Time{}, tBase.Add(time.Minute)); got != 1 {
		t.Fatalf("to-only = %d, want 1", got)
	}
}
