package core

import (
	"strings"
	"testing"
	"time"

	"memex/internal/events"
)

// TestSearchWhen covers the §1 recall question: finding a page by topic
// terms restricted to when the user visited it.
func TestSearchWhen(t *testing.T) {
	c, e := testWorld(t)
	e.RegisterUser(1, "alice")

	var content []int64
	for _, pid := range c.LeafPages[c.Leaves()[0].ID] {
		if !c.Page(pid).Front {
			content = append(content, pid)
		}
	}
	early := tBase                          // "six months back"
	late := tBase.Add(180 * 24 * time.Hour) // recently
	e.RecordVisit(1, c.Page(content[0]).URL, "", early, events.Community)
	e.RecordVisit(1, c.Page(content[1]).URL, "", late, events.Community)
	e.DrainBackground()

	// A query matching both pages' topical vocabulary.
	var q []string
	for _, w := range strings.Fields(c.Page(content[0]).Text) {
		if strings.Contains(w, "_") {
			q = append(q, w)
			if len(q) == 3 {
				break
			}
		}
	}
	query := strings.Join(q, " ")

	// Unscoped: both periods reachable.
	all := e.SearchWhen(1, query, 10, time.Time{}, time.Time{})
	if len(all) == 0 {
		t.Fatal("unscoped SearchWhen found nothing")
	}
	// Scoped to the early window: only the old visit.
	old := e.SearchWhen(1, query, 10, early.Add(-time.Hour), early.Add(time.Hour))
	for _, h := range old {
		if h.ID == e.idByURL[c.Page(content[1]).URL] {
			t.Fatal("late visit leaked into early window")
		}
	}
	if len(old) == 0 {
		t.Fatal("early window found nothing")
	}
	// Scoped to a window with no visits.
	if got := e.SearchWhen(1, query, 10, late.Add(time.Hour), time.Time{}); len(got) != 0 {
		t.Fatalf("empty window returned %v", got)
	}
	// Other users see nothing in this user's windows.
	if got := e.SearchWhen(2, query, 10, time.Time{}, time.Time{}); len(got) != 0 {
		t.Fatalf("wrong user got %v", got)
	}
}
