package core

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"slices"
	"testing"
)

// Corrupt-input fuzzing for the derived-record codecs. Both decoders face
// bytes read back from the cold tier, where a crash, a torn write or bit
// rot can hand them anything; the invariants under fuzz are (a) never
// panic, (b) never allocate beyond the payload's own size — a decoded
// count is bounded by the input length, so a flipped header byte cannot
// demand a 2^60-entry structure — and (c) whatever decodes successfully
// survives a re-encode/decode round trip unchanged.

func FuzzDecodeCounts(f *testing.F) {
	f.Add(encodeCounts(map[string]int{"a": 1, "bb": 2}))
	f.Add(encodeCounts(map[string]int{}))
	f.Add([]byte{})
	f.Add([]byte{0xff})
	// Header claiming ~2^60 entries: the allocation-bound regression seed.
	f.Add(binary.AppendUvarint(nil, 1<<60))
	f.Add(append(binary.AppendUvarint(nil, 1<<60), 1, 'a', 1))
	// Truncated frames: count says 2, payload carries half an entry.
	f.Add([]byte{2, 1, 'a'})
	f.Add([]byte{2, 200, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		tf := decodeCounts(data)
		if tf == nil {
			return
		}
		if len(tf) > len(data) {
			t.Fatalf("decoded %d entries from %d bytes", len(tf), len(data))
		}
		again := decodeCounts(encodeCounts(tf))
		if !reflect.DeepEqual(again, tf) {
			t.Fatalf("round trip diverged: %v → %v", tf, again)
		}
	})
}

func FuzzDecodeIDSet(f *testing.F) {
	f.Add(encodeIDSet([]int64{1, 5, 9000000000}))
	f.Add(encodeIDSet(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add(binary.AppendUvarint(nil, 1<<60))
	f.Add([]byte{3, 1}) // count 3, payload 1
	f.Fuzz(func(t *testing.T, data []byte) {
		ids, ok := decodeIDSet(data)
		if !ok {
			if ids != nil {
				t.Fatal("failed decode returned non-nil ids")
			}
			return
		}
		if ids == nil {
			t.Fatal("successful decode returned nil — breaks the known-empty contract")
		}
		if len(ids) > len(data) {
			t.Fatalf("decoded %d ids from %d bytes", len(ids), len(data))
		}
		// Re-encoding canonicalises (sort+dedupe); decoding that must be
		// stable: a second round trip reproduces it byte for byte.
		canon := encodeIDSet(ids)
		ids2, ok2 := decodeIDSet(canon)
		if !ok2 {
			t.Fatal("canonical re-encode failed to decode")
		}
		if !slices.IsSorted(ids2) {
			t.Fatalf("canonical decode not sorted: %v", ids2)
		}
		if !bytes.Equal(encodeIDSet(ids2), canon) {
			t.Fatal("canonical encoding not a fixed point")
		}
	})
}
