package core

import (
	"fmt"
	"testing"
	"time"

	"memex/internal/events"
	"memex/internal/kvstore"
	"memex/internal/webcorpus"
)

// benchEngine builds a quiesced engine with a seeded archive and the
// given decoded-record cache budget.
func benchEngine(b *testing.B, cacheBytes int64) *Engine {
	b.Helper()
	c := webcorpus.Generate(webcorpus.Config{Seed: 21, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 16})
	e, err := Open(Config{
		Dir:               b.TempDir(),
		Source:            corpusSource{c},
		KV:                kvstore.Options{Sync: kvstore.SyncNever},
		VersionGCInterval: -1,
		DecodedCacheBytes: cacheBytes,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	e.RegisterUser(1, "alice")
	n := 0
	for _, leaf := range c.Leaves() {
		for _, pid := range c.LeafPages[leaf.ID][:10] {
			p := c.Page(pid)
			if err := e.RecordVisit(1, p.URL, "", tBase.Add(time.Duration(n)*time.Minute), events.Community); err != nil {
				b.Fatal(err)
			}
			n++
		}
	}
	e.DrainBackground()
	return e
}

// miningPass is the repeated-read workload the cache exists for: a
// themes rebuild plus a HITS-flavoured adjacency sweep plus a
// recommendation — all reading the same epoch's records.
func miningPass(e *Engine, pages []int64) {
	e.RebuildThemes()
	v := e.DerivedSnapshot()
	for _, p := range pages {
		v.Out(p)
		v.In(p)
		v.Vector(p)
	}
	v.Release()
	e.Recommend(1, 5, true)
}

// BenchmarkMiningPassColdVsWarm measures the tentpole's headline: the
// same themes+HITS+recommend pass with the shared cache disabled (every
// pass re-decodes every record) and enabled (passes after the first
// serve decoded values). Reported decodes/op is the cache-miss count
// per pass — the warm case should sit near zero.
func BenchmarkMiningPassColdVsWarm(b *testing.B) {
	b.Run("uncached", func(b *testing.B) {
		e := benchEngine(b, -1)
		pages := fetchedPages(e)
		miningPass(e, pages) // warm the OS/page side, no cache to warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			miningPass(e, pages)
		}
	})
	b.Run("cached", func(b *testing.B) {
		e := benchEngine(b, 64<<20)
		pages := fetchedPages(e)
		miningPass(e, pages) // cold pass: populate the cache
		m0 := e.cache.stats().Misses
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			miningPass(e, pages)
		}
		b.StopTimer()
		st := e.cache.stats()
		b.ReportMetric(float64(st.Misses-m0)/float64(b.N), "decodes/op")
		if total := st.Hits + st.Misses; total > 0 {
			b.ReportMetric(float64(st.Hits)/float64(total), "hit-ratio")
		}
	})
}

// BenchmarkCacheHitRatioSweep sweeps the cache budget from starved to
// ample over the same repeated pass, reporting the achieved hit ratio —
// the sizing curve behind Config.DecodedCacheBytes' guidance.
func BenchmarkCacheHitRatioSweep(b *testing.B) {
	for _, budget := range []int64{16 << 10, 64 << 10, 256 << 10, 4 << 20} {
		b.Run(fmt.Sprintf("budget=%dKiB", budget>>10), func(b *testing.B) {
			e := benchEngine(b, budget)
			pages := fetchedPages(e)
			miningPass(e, pages)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				miningPass(e, pages)
			}
			b.StopTimer()
			st := e.cache.stats()
			if total := st.Hits + st.Misses; total > 0 {
				b.ReportMetric(float64(st.Hits)/float64(total), "hit-ratio")
			}
			b.ReportMetric(float64(st.EvictedLRU), "evictions")
		})
	}
}
