package core

import (
	"sync"
	"sync/atomic"

	"memex/internal/text"
)

// This file is the engine's shared decoded-record cache: the layer
// between DerivedView and Snapshot.Get that keeps decode cost from
// scaling with the number of passes instead of the number of pages.
//
// Per-view memoization (the maps inside DerivedView) dies with the view,
// so before this cache a themes rebuild, a Trails HITS pass and a
// Recommend call over the same epoch each re-decoded every tf/, lnk/ and
// rin* record from scratch. The cache is keyed by (epoch, page, kind):
// published epochs are immutable — no publish, GC round or cold fold
// ever rewrites a record under an installed state — so a decoded value
// can never go stale. Invalidation is therefore evict-only: entries
// leave under LRU memory pressure, or when their epoch falls below the
// version store's pin floor (no live view can ever ask for them again;
// the version-gc demon drives that sweep).
//
// Cached values (term-count maps, adjacency slices, term vectors) are
// shared across views and goroutines and MUST be treated as immutable by
// every reader — the same contract DerivedView's own memos already
// carry.

// cacheKind distinguishes the decoded-record families sharing the cache.
type cacheKind uint8

const (
	kindTF cacheKind = iota + 1
	kindOut
	kindIn
	kindVec
)

// cacheKey identifies one decoded record: the pinned epoch it was read
// at, the page, and which of the page's records it is.
type cacheKey struct {
	epoch uint64
	page  int64
	kind  cacheKind
}

// cacheEntry is an intrusive LRU node. val holds the decoded value
// (map[string]int, []int64 or text.Vector — possibly a typed nil, which
// caches "no record at this epoch" so repeated lookups of unknown pages
// skip the store too).
type cacheEntry struct {
	key        cacheKey
	val        any
	size       int64
	prev, next *cacheEntry
}

// CacheStats is the cache's observability surface, published through
// engine Stats and /api/status.
type CacheStats struct {
	// Hits and Misses count lookups (a view consults its own memo first,
	// so these measure cross-view reuse, exactly the repeated-pass cost
	// the cache exists to collapse).
	Hits   uint64
	Misses uint64
	// EvictedLRU counts entries dropped for memory pressure; EvictedFloor
	// counts entries dropped because their epoch fell below the pin
	// floor.
	EvictedLRU   uint64
	EvictedFloor uint64
	// SkippedOversize counts values refused admission because one entry
	// would have claimed more than its fair share of the budget (see
	// oversizeDivisor) — each is a whale record served uncached rather
	// than allowed to flush the working set.
	SkippedOversize uint64
	// Bytes/MaxBytes are the approximate decoded footprint and its bound;
	// Entries is the live entry count.
	Bytes    int64
	MaxBytes int64
	Entries  int
}

// recordCache is a size-bounded LRU of decoded derived records, shared
// by every DerivedView of one engine. All methods are safe for
// concurrent use.
type recordCache struct {
	hits   atomic.Uint64
	misses atomic.Uint64

	mu      sync.Mutex
	max     int64
	size    int64
	entries map[cacheKey]*cacheEntry
	// head/tail delimit the intrusive recency list: head.next is the most
	// recently used entry, tail.prev the eviction candidate.
	head, tail      cacheEntry
	evictedLRU      uint64
	evictedFloor    uint64
	skippedOversize uint64
}

// entryOverhead is the approximate per-entry bookkeeping cost charged on
// top of each value's own size (map slot, LRU node, key).
const entryOverhead = 96

// oversizeDivisor caps any single entry at max/oversizeDivisor bytes.
// Without the cap one giant decoded record — a hub page with tens of
// thousands of terms or in-links — evicts the entire hot working set on
// admission, trading thousands of future hits for one; such whales are
// served uncached instead (their decode cost is paid per pass, but the
// working set survives). oversizeFloor keeps entries below 64 KiB always
// admissible: at any budget where flushing is a real hazard they are
// harmless, and tiny (test-sized) budgets keep plain LRU semantics.
const (
	oversizeDivisor = 8
	oversizeFloor   = 64 << 10
)

// maxEntrySize returns the per-entry admission cap for budget max.
func maxEntrySize(max int64) int64 {
	if lim := max / oversizeDivisor; lim > oversizeFloor {
		return lim
	}
	return oversizeFloor
}

// newRecordCache builds a cache bounded at maxBytes of approximate
// decoded footprint (maxBytes <= 0 disables caching; callers get nil).
func newRecordCache(maxBytes int64) *recordCache {
	if maxBytes <= 0 {
		return nil
	}
	c := &recordCache{max: maxBytes, entries: make(map[cacheKey]*cacheEntry)}
	c.head.next = &c.tail
	c.tail.prev = &c.head
	return c
}

func (c *recordCache) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *recordCache) pushFront(e *cacheEntry) {
	e.prev = &c.head
	e.next = c.head.next
	e.next.prev = e
	c.head.next = e
}

// get returns the cached decoded value for k. The second result
// distinguishes a miss from a cached typed nil ("no record at this
// epoch").
func (c *recordCache) get(k cacheKey) (any, bool) {
	c.mu.Lock()
	e, ok := c.entries[k]
	if ok {
		c.unlink(e)
		c.pushFront(e)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e.val, true
}

// put admits a freshly decoded value, evicting from the cold end until
// the size bound holds again. Values larger than max/oversizeDivisor are
// refused outright — admitting one would flush the whole working set for
// a single entry. A concurrent duplicate insert keeps the incumbent (the
// values are equal by construction — same immutable record, same
// decoder).
func (c *recordCache) put(k cacheKey, val any, size int64) {
	size += entryOverhead
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > maxEntrySize(c.max) {
		c.skippedOversize++
		return
	}
	if _, ok := c.entries[k]; ok {
		return
	}
	e := &cacheEntry{key: k, val: val, size: size}
	c.entries[k] = e
	c.pushFront(e)
	c.size += size
	for c.size > c.max && c.tail.prev != &c.head {
		victim := c.tail.prev
		c.unlink(victim)
		delete(c.entries, victim.key)
		c.size -= victim.size
		c.evictedLRU++
	}
}

// evictBelow drops every entry whose epoch is below floor — the version
// store's pin floor, below which no live or future view can pin. Driven
// by the engine's version-gc demon after each GC/fold round.
func (c *recordCache) evictBelow(floor uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for e := c.head.next; e != &c.tail; {
		next := e.next
		if e.key.epoch < floor {
			c.unlink(e)
			delete(c.entries, e.key)
			c.size -= e.size
			c.evictedFloor++
			n++
		}
		e = next
	}
	return n
}

// stats returns a point-in-time snapshot of the counters.
func (c *recordCache) stats() CacheStats {
	st := CacheStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
	}
	c.mu.Lock()
	st.EvictedLRU = c.evictedLRU
	st.EvictedFloor = c.evictedFloor
	st.SkippedOversize = c.skippedOversize
	st.Bytes = c.size
	st.MaxBytes = c.max
	st.Entries = len(c.entries)
	c.mu.Unlock()
	return st
}

// --- approximate value sizing ---
//
// The bound is a decoded-footprint budget, not an exact accounting; the
// estimates below charge the dominant terms (string bytes, slice
// backing arrays, map slots).

func sizeofCounts(tf map[string]int) int64 {
	n := int64(48)
	for term := range tf {
		n += int64(len(term)) + 32
	}
	return n
}

func sizeofIDs(ids []int64) int64 {
	return 24 + 8*int64(len(ids))
}

func sizeofVec(v text.Vector) int64 {
	return 48 + 12*int64(len(v.IDs))
}
