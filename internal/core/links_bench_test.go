package core

import (
	"fmt"
	"testing"

	"memex/internal/version"
)

// BenchmarkInLinkWriteAmplification is the tentpole's proof: the bytes
// (and time) one new in-link costs at publish must be bounded by the
// delta-chunk size — flat as the target's in-degree grows 10× — where the
// pre-chunk scheme re-encoded the target's entire rin/ record per edge,
// making the same metric linear in in-degree. The fullrecord sub-
// benchmarks reproduce that old scheme as the baseline; compare the
// rin-bytes/op metric across the indegree pairs.
func BenchmarkInLinkWriteAmplification(b *testing.B) {
	hub := int64(1 << 40)
	for _, d := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("chunked/indegree=%d", d), func(b *testing.B) {
			vs := version.NewStore()
			li := newLinkIndex(vs)
			for i := 0; i < d; i++ {
				li.publish(int64(i+1), []int64{hub}, nil)
			}
			// Steady state: the accumulated in-degree sits in one
			// consolidated base, as it would after a GC tick.
			li.consolidate(1)
			start := li.rinBytes.Load()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				li.publish(int64(d+i+1), []int64{hub}, nil)
			}
			b.StopTimer()
			b.ReportMetric(float64(li.rinBytes.Load()-start)/float64(b.N), "rin-bytes/op")
		})
		b.Run(fmt.Sprintf("fullrecord/indegree=%d", d), func(b *testing.B) {
			// The pre-chunk write path, reproduced: every new in-link
			// re-encodes and republishes the target's full record.
			vs := version.NewStore()
			ins := make([]int64, d)
			for i := range ins {
				ins[i] = int64(i + 1)
			}
			var rinBytes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ins = append(ins, int64(d+i+1))
				bt := vs.BeginSized(1)
				blob := encodeIDSet(ins)
				rinBytes += int64(len(blob))
				bt.Put(rinKey(hub), blob)
				bt.Publish()
			}
			b.StopTimer()
			b.ReportMetric(float64(rinBytes)/float64(b.N), "rin-bytes/op")
		})
	}
}

// BenchmarkRinChunkMerge prices the read side of the chunk scheme: a
// fresh view's In() probes and merges base + chunk records, so the cost
// grows with the live chain length — which consolidation bounds at the
// threshold between GC ticks. chunks=0 is the pure-base (pre-chunk
// archive) floor.
func BenchmarkRinChunkMerge(b *testing.B) {
	for _, chunks := range []int{0, 8, 64} {
		b.Run(fmt.Sprintf("chunks=%d", chunks), func(b *testing.B) {
			vs := version.NewStore()
			li := newLinkIndex(vs)
			hub := int64(1 << 40) // outside the source-id range: no self-loop
			for i := 0; i <= chunks; i++ {
				li.publish(int64(i+1), []int64{hub}, nil)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				view := testView(vs)
				if got := view.In(hub); len(got) != chunks+1 {
					b.Fatalf("merge lost edges: got %d, want %d", len(got), chunks+1)
				}
				view.Release()
			}
		})
	}
}

// BenchmarkRinConsolidate prices one consolidation round: merging a hub's
// chunk chain back into its base record (the amortized cost the GC demon
// pays so publishes stay O(chunk)).
func BenchmarkRinConsolidate(b *testing.B) {
	for _, d := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("indegree=%d", d), func(b *testing.B) {
			hub := int64(1 << 40)
			b.StopTimer()
			for i := 0; i < b.N; i++ {
				vs := version.NewStore()
				li := newLinkIndex(vs)
				for j := 0; j < d; j++ {
					li.publish(int64(j+1), []int64{hub}, nil)
				}
				b.StartTimer()
				if n := li.consolidate(1); n != 1 {
					b.Fatalf("consolidated %d pages, want 1", n)
				}
				b.StopTimer()
			}
		})
	}
}
