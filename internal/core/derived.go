package core

import (
	"encoding/binary"
	"sort"
	"strconv"
	"strings"

	"memex/internal/text"
	"memex/internal/version"
)

// This file is the engine's bridge to the version store (§3): the fetch
// path publishes each page's derived term counts as one batch, and the
// analyzer-facing read paths (usage breakdown, profiles, themes, trail
// classification) consume them through pinned snapshots. Demons therefore
// analyze a consistent archive-wide view — every page's stats
// all-or-nothing, repeatable across the whole pass — while ingest keeps
// publishing without ever blocking them.
//
// The derived records are the term-count record (tf/) and the adjacency
// records (lnk/, rin/ — see links.go); a page's term vector is a pure
// function of its counts and the engine dictionary, so DerivedView
// derives (and memoizes) vectors instead of storing a second blob. That
// also makes every persisted record process-portable — dict ids are
// assigned per process, so a stored vector blob would go stale across a
// restart, while term strings and page ids never do. On reopen the
// engine replays the recovered records through reloadDerived to rebuild
// the dictionary, corpus statistics, inverted index and link graph, and
// the fetch path skips every recovered page instead of re-crawling it.

// tfKey names a page's derived term-count record in the version store.
func tfKey(page int64) string { return "tf/" + strconv.FormatInt(page, 10) }

// pageOfTFKey is the inverse of tfKey (ok=false for foreign keys).
func pageOfTFKey(key string) (int64, bool) {
	if !strings.HasPrefix(key, "tf/") {
		return 0, false
	}
	id, err := strconv.ParseInt(key[3:], 10, 64)
	return id, err == nil
}

// reloadDerived rebuilds the in-memory text machinery — dictionary ids,
// corpus document frequencies, the inverted index — the fetch claim set,
// and the link-graph authority from the derived records the version
// store recovered from its cold tier, so a restarted server answers
// search/profile/theme/trail queries, resumes Discover's crawl frontier,
// and never re-crawls a page whose derived state survived. Recovered
// lnk/ records rebuild both adjacency directions (every reverse edge is
// the inversion of some out-edge, so rin/ records need no replay — they
// exist for pinned-view reads). Recovered rinD/ delta chunks and rin/
// base records feed the per-page seq counters and generation starts:
// chunk seqs are monotone per page, so the next life must resume both
// the counter (past every live chunk and the base's start-seq) and the
// start (so consolidation tombstones only the live window) — an
// overwritten chunk would shadow the old one's edge out of every later
// view. Runs during Open, single-threaded, before any demon starts.
func (e *Engine) reloadDerived() int {
	view := e.DerivedSnapshot()
	defer view.Release()
	n := 0
	chunkSeq := map[int64]int{}
	starts := map[int64]int{}
	view.sn.Range(func(key string, raw []byte) bool {
		if page, ok := pageOfLnkKey(key); ok {
			if outs, ok := decodeIDSet(raw); ok {
				e.links.applyRecovered(page, outs)
			}
			return true
		}
		if page, ok := pageOfRinKey(key); ok {
			if _, s, ok := decodeIDSetStart(raw); ok && s > 0 {
				starts[page] = s
			}
			return true
		}
		if page, seq, ok := pageOfRinChunkKey(key); ok {
			if seq+1 > chunkSeq[page] {
				chunkSeq[page] = seq + 1
			}
			return true
		}
		page, ok := pageOfTFKey(key)
		if !ok {
			return true
		}
		tf := decodeCounts(raw)
		if tf == nil {
			return true
		}
		// Same order as the fetch path: corpus before index visibility.
		e.corp.AddDoc(text.VectorFromCounts(e.dict, tf))
		e.idx.AddCounts(page, tf)
		e.fetched[page] = true
		n++
		return true
	})
	e.links.resumeChunks(chunkSeq, starts)
	return n
}

// derivedPublished reports whether the page's derived stats are (or are
// being) archived — the reader-facing "already fetched" check. The claim
// set answers first: it covers every page this process fetched or
// recovered, costs one brief RLock, and — now that GC folds derived
// records to disk — spares the common skip case a kvstore read (a
// chain-missed snapshot Get falls through to the cold tier). Pages
// beyond the claim set (not seen by this process) fall back to the
// snapshot check, whose cold fallthrough is exactly the read that makes
// a restarted server skip re-crawling. A publish still in flight can
// read as false; callers that go on to fetch must let the claim set
// arbitrate under e.mu.
func (e *Engine) derivedPublished(pageID int64) bool {
	e.mu.RLock()
	claimed := e.fetched[pageID]
	e.mu.RUnlock()
	if claimed {
		return true
	}
	sn := e.vs.Acquire()
	_, ok := sn.Get(tfKey(pageID))
	sn.Release()
	return ok
}

// DerivedView is a consistent read view over the engine's published
// derived data, pinned at one version-store epoch. Reads are lock-free
// and repeatable for the lifetime of the view: a page fetched after the
// view was pinned stays invisible to it (its TermCounts stay nil for the
// whole pass), exactly like a page that was never fetched.
//
// The view is also the pinned face of the link graph: Out, In and Has
// decode the page's adjacency records at the view's epoch — lnk/ for
// out-links, and for in-links the base rin/ record merged with its
// rinD/ delta chunks (see links.go for the chunk scheme) — satisfying
// graph.AdjacencySource, so trail ranking, link-proximity recommendation
// and crawl-frontier checks all read the same frozen graph their
// term-stat reads come from.
//
// Decoded records are memoized per view — a usage or replay pass reads
// the same few pages many times — so a DerivedView is for a single
// goroutine, like the passes that hold one.
//
// Between the per-view memo and the store sits the engine's shared
// decoded-record cache (cache.go), keyed by (epoch, page, kind): the
// second pass over an unchanged epoch — or a concurrent pass over the
// same one — reuses decoded values instead of re-walking chains and
// re-decoding blobs. Published epochs are immutable, so the cache is
// never invalidated in place, only evicted (LRU pressure, or the epoch
// falling below the pin floor). Everything that comes out of the memo
// or the cache is shared: callers must treat returned maps, slices and
// vectors as read-only.
type DerivedView struct {
	sn    *version.Snapshot
	dict  *text.Dict
	cache *recordCache // shared decoded-record cache; nil = uncached
	hints *linkIndex   // live chunk-window bound for In; nil = probe to miss
	tf    map[int64]map[string]int
	vec   map[int64]text.Vector
	out   map[int64][]int64
	in    map[int64][]int64
}

// DerivedSnapshot pins the current derived-data epoch.
func (e *Engine) DerivedSnapshot() *DerivedView {
	return &DerivedView{
		sn:    e.vs.Acquire(),
		dict:  e.dict,
		cache: e.cache,
		hints: e.links,
		tf:    map[int64]map[string]int{},
		vec:   map[int64]text.Vector{},
		out:   map[int64][]int64{},
		in:    map[int64][]int64{},
	}
}

// Epoch returns the pinned version-store epoch.
func (v *DerivedView) Epoch() uint64 { return v.sn.Epoch() }

// Release unpins the view, letting the version store compact past it.
func (v *DerivedView) Release() { v.sn.Release() }

// TermCounts returns the page's term counts as of the view's epoch (nil
// when the page had no fetched text as of the pin). The result is shared
// through the record cache: treat it as read-only.
func (v *DerivedView) TermCounts(page int64) map[string]int {
	if tf, ok := v.tf[page]; ok {
		return tf
	}
	ck := cacheKey{epoch: v.sn.Epoch(), page: page, kind: kindTF}
	if v.cache != nil {
		if val, ok := v.cache.get(ck); ok {
			tf := val.(map[string]int)
			v.tf[page] = tf
			return tf
		}
	}
	var tf map[string]int
	if raw, ok := v.sn.Get(tfKey(page)); ok {
		tf = decodeCounts(raw)
	}
	v.tf[page] = tf
	if v.cache != nil {
		v.cache.put(ck, tf, sizeofCounts(tf))
	}
	return tf
}

// adj decodes one adjacency record through a memo map and the shared
// cache. Memo and cache both store nil for "no record at this epoch" and
// a non-nil (possibly empty) slice for a known page, mirroring
// decodeIDSet's contract.
func (v *DerivedView) adj(memo map[int64][]int64, kind cacheKind, key string, page int64) []int64 {
	if ids, ok := memo[page]; ok {
		return ids
	}
	ck := cacheKey{epoch: v.sn.Epoch(), page: page, kind: kind}
	if v.cache != nil {
		if val, ok := v.cache.get(ck); ok {
			ids := val.([]int64)
			memo[page] = ids
			return ids
		}
	}
	var ids []int64
	if raw, ok := v.sn.Get(key); ok {
		if dec, ok := decodeIDSet(raw); ok {
			ids = dec
		}
	}
	memo[page] = ids
	if v.cache != nil {
		v.cache.put(ck, ids, sizeofIDs(ids))
	}
	return ids
}

// Out returns the page's out-link adjacency as of the view's epoch (nil
// when the page has no lnk/ record; callers must not mutate the slice).
// Out implements part of graph.AdjacencySource.
func (v *DerivedView) Out(page int64) []int64 {
	return v.adj(v.out, kindOut, lnkKey(page), page)
}

// OutKnown is Out plus whether the page has an adjacency record at all —
// distinguishing "archived with zero out-links" from "unknown page".
func (v *DerivedView) OutKnown(page int64) ([]int64, bool) {
	ids := v.Out(page)
	return ids, ids != nil
}

// In returns the page's in-link adjacency as of the view's epoch: the
// base rin/ record merged with every rinD/ delta chunk, canonicalised
// (sorted, deduped) and memoized. Chunk seqs are monotone per page and
// dense within a generation, the base record carries the generation's
// first live seq (its trailing start-seq — zero for legacy and
// first-edge records), and the watermark only advances contiguously, so
// probing from that start until the first miss sees exactly the chunks
// published at or below the pinned epoch — including across a
// consolidation, whose batch replaces the chunks with tombstones and
// the new base atomically.
//
// The probe window's upper bound comes from the producer's live chunk
// counter (v.hints): seqs are never reused, so the counter is always at
// or past one-past the view's last visible chunk. A fully consolidated
// page therefore probes nothing at all — start == bound — where the old
// scheme paid a guaranteed final probe miss that fell through the
// chains to a cold-tier scan on every single In() call. Without hints
// (bare test views), the probe walks to the first miss as before.
//
// A page with neither base nor decodable chunks stays nil (unknown),
// preserving the nil-vs-empty contract of graph.AdjacencySource. In
// implements part of graph.AdjacencySource.
func (v *DerivedView) In(page int64) []int64 {
	if ids, ok := v.in[page]; ok {
		return ids
	}
	ck := cacheKey{epoch: v.sn.Epoch(), page: page, kind: kindIn}
	if v.cache != nil {
		if val, ok := v.cache.get(ck); ok {
			ids := val.([]int64)
			v.in[page] = ids
			return ids
		}
	}
	var ids []int64
	known := false
	start := 0
	if raw, ok := v.sn.Get(rinKey(page)); ok {
		if dec, s, ok := decodeIDSetStart(raw); ok {
			ids, known, start = dec, true, s
		}
	}
	bound := -1 // no hint: probe to the first miss
	if v.hints != nil {
		bound = v.hints.chunkNext(page)
	}
	for seq := start; bound < 0 || seq < bound; seq++ {
		raw, ok := v.sn.Get(rinChunkKey(page, seq))
		if !ok {
			break
		}
		// A corrupt chunk is skipped but does not stop the probe: the
		// chunks behind it are independent deltas, still worth merging.
		if dec, ok := decodeIDSet(raw); ok {
			ids = append(ids, dec...)
			known = true
		}
	}
	if known {
		ids = canonIDs(ids)
	}
	v.in[page] = ids
	if v.cache != nil {
		v.cache.put(ck, ids, sizeofIDs(ids))
	}
	return ids
}

// canonIDs sorts and dedupes ids in place, returning a non-nil slice even
// for empty input (the "known, no links" shape).
func canonIDs(ids []int64) []int64 {
	if ids == nil {
		return []int64{}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	n := 0
	for i, id := range ids {
		if i > 0 && id == ids[n-1] {
			continue
		}
		ids[n] = id
		n++
	}
	return ids[:n]
}

// Has reports whether the page is known to the link graph at the view's
// epoch: it has published out-links (even an empty set) or something
// links to it. Has implements part of graph.AdjacencySource.
func (v *DerivedView) Has(page int64) bool {
	return v.Out(page) != nil || v.In(page) != nil
}

// Vector returns the page's raw term vector as of the view's epoch,
// derived from the term-count record (weights are the counts, ids come
// from the shared dictionary — identical to what the fetch path computed,
// and valid across restarts because the record stores terms, not ids).
func (v *DerivedView) Vector(page int64) (text.Vector, bool) {
	if vec, ok := v.vec[page]; ok {
		return vec, len(vec.IDs) > 0
	}
	ck := cacheKey{epoch: v.sn.Epoch(), page: page, kind: kindVec}
	if v.cache != nil {
		if val, ok := v.cache.get(ck); ok {
			vec := val.(text.Vector)
			v.vec[page] = vec
			return vec, len(vec.IDs) > 0
		}
	}
	var vec text.Vector
	if tf := v.TermCounts(page); tf != nil {
		vec = text.VectorFromCounts(v.dict, tf)
	}
	v.vec[page] = vec
	if v.cache != nil {
		v.cache.put(ck, vec, sizeofVec(vec))
	}
	return vec, len(vec.IDs) > 0
}

// --- codec ---
//
// Derived records are stored as compact binary blobs: uvarint-framed
// term strings with counts. No reflection, no allocation beyond the
// result, and nothing process-local — the blob must stay decodable by a
// future process reading it back from the cold tier.

// encodeCounts serializes term counts as uvarint(n) then per term
// uvarint(len), bytes, uvarint(count) — terms in sorted order, so equal
// count maps always encode to byte-identical blobs. Map-order iteration
// here would break the record-level determinism the restart tests pin
// (two lives encoding the same counts must produce the same bytes) and
// churn the cold tier with spurious rewrites of unchanged records.
func encodeCounts(tf map[string]int) []byte {
	terms := make([]string, 0, len(tf))
	size := binary.MaxVarintLen64
	for term := range tf {
		terms = append(terms, term)
		size += len(term) + 2*binary.MaxVarintLen64
	}
	sort.Strings(terms)
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(tf)))
	for _, term := range terms {
		buf = binary.AppendUvarint(buf, uint64(len(term)))
		buf = append(buf, term...)
		buf = binary.AppendUvarint(buf, uint64(tf[term]))
	}
	return buf
}

// decodeCounts is the inverse of encodeCounts (nil on corrupt input).
func decodeCounts(b []byte) map[string]int {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil
	}
	b = b[w:]
	// Every term entry costs at least two bytes (length uvarint + count
	// uvarint), so a count exceeding the payload is corruption — reject
	// it before sizing the map, the same bound decodeIDSet enforces. A
	// corrupt cold-tier record could otherwise demand a ~2^60-entry
	// allocation and OOM the process instead of degrading to "unknown".
	if n > uint64(len(b)) {
		return nil
	}
	tf := make(map[string]int, n)
	for i := uint64(0); i < n; i++ {
		l, w := binary.Uvarint(b)
		if w <= 0 || uint64(len(b)-w) < l {
			return nil
		}
		term := string(b[w : w+int(l)])
		b = b[w+int(l):]
		c, w := binary.Uvarint(b)
		if w <= 0 {
			return nil
		}
		b = b[w:]
		tf[term] = int(c)
	}
	return tf
}
