package core

import (
	"encoding/binary"
	"strconv"
	"strings"

	"memex/internal/text"
	"memex/internal/version"
)

// This file is the engine's bridge to the version store (§3): the fetch
// path publishes each page's derived term counts as one batch, and the
// analyzer-facing read paths (usage breakdown, profiles, themes, trail
// classification) consume them through pinned snapshots. Demons therefore
// analyze a consistent archive-wide view — every page's stats
// all-or-nothing, repeatable across the whole pass — while ingest keeps
// publishing without ever blocking them.
//
// The term-count record is the only derived record: a page's term vector
// is a pure function of its counts and the engine dictionary, so
// DerivedView derives (and memoizes) vectors instead of storing a second
// blob. That also makes every persisted record process-portable — dict
// ids are assigned per process, so a stored vector blob would go stale
// across a restart, while term strings never do. On reopen the engine
// replays the recovered records through reloadDerived to rebuild the
// dictionary, corpus statistics and inverted index, and the fetch path
// skips every recovered page instead of re-crawling it.

// tfKey names a page's derived term-count record in the version store.
func tfKey(page int64) string { return "tf/" + strconv.FormatInt(page, 10) }

// pageOfTFKey is the inverse of tfKey (ok=false for foreign keys).
func pageOfTFKey(key string) (int64, bool) {
	if !strings.HasPrefix(key, "tf/") {
		return 0, false
	}
	id, err := strconv.ParseInt(key[3:], 10, 64)
	return id, err == nil
}

// publishDerived stages and publishes one page's derived data (the
// producer side of the loosely-consistent versioning). The deferred Abort
// is a no-op on success but completes the epoch if staging panics — a
// leaked epoch would stall the watermark forever under the contiguity
// rule.
func (e *Engine) publishDerived(pageID int64, tf map[string]int) {
	b := e.vs.BeginSized(1)
	defer b.Abort()
	b.Put(tfKey(pageID), encodeCounts(tf))
	b.Publish()
}

// reloadDerived rebuilds the in-memory text machinery — dictionary ids,
// corpus document frequencies, the inverted index — and the fetch claim
// set from the derived records the version store recovered from its cold
// tier, so a restarted server answers search/profile/theme queries and
// never re-crawls a page whose derived state survived. Runs during Open,
// single-threaded, before any demon starts.
func (e *Engine) reloadDerived() int {
	view := e.DerivedSnapshot()
	defer view.Release()
	n := 0
	view.sn.Range(func(key string, raw []byte) bool {
		page, ok := pageOfTFKey(key)
		if !ok {
			return true
		}
		tf := decodeCounts(raw)
		if tf == nil {
			return true
		}
		// Same order as the fetch path: corpus before index visibility.
		e.corp.AddDoc(text.VectorFromCounts(e.dict, tf))
		e.idx.AddCounts(page, tf)
		e.fetched[page] = true
		n++
		return true
	})
	return n
}

// derivedPublished reports whether the page's derived stats are (or are
// being) archived — the reader-facing "already fetched" check. The claim
// set answers first: it covers every page this process fetched or
// recovered, costs one brief RLock, and — now that GC folds derived
// records to disk — spares the common skip case a kvstore read (a
// chain-missed snapshot Get falls through to the cold tier). Pages
// beyond the claim set (not seen by this process) fall back to the
// snapshot check, whose cold fallthrough is exactly the read that makes
// a restarted server skip re-crawling. A publish still in flight can
// read as false; callers that go on to fetch must let the claim set
// arbitrate under e.mu.
func (e *Engine) derivedPublished(pageID int64) bool {
	e.mu.RLock()
	claimed := e.fetched[pageID]
	e.mu.RUnlock()
	if claimed {
		return true
	}
	sn := e.vs.Acquire()
	_, ok := sn.Get(tfKey(pageID))
	sn.Release()
	return ok
}

// DerivedView is a consistent read view over the engine's published
// derived data, pinned at one version-store epoch. Reads are lock-free
// and repeatable for the lifetime of the view: a page fetched after the
// view was pinned stays invisible to it (its TermCounts stay nil for the
// whole pass), exactly like a page that was never fetched.
//
// Decoded records are memoized per view — a usage or replay pass reads
// the same few pages many times — so a DerivedView is for a single
// goroutine, like the passes that hold one.
type DerivedView struct {
	sn   *version.Snapshot
	dict *text.Dict
	tf   map[int64]map[string]int
	vec  map[int64]text.Vector
}

// DerivedSnapshot pins the current derived-data epoch.
func (e *Engine) DerivedSnapshot() *DerivedView {
	return &DerivedView{
		sn:   e.vs.Acquire(),
		dict: e.dict,
		tf:   map[int64]map[string]int{},
		vec:  map[int64]text.Vector{},
	}
}

// Epoch returns the pinned version-store epoch.
func (v *DerivedView) Epoch() uint64 { return v.sn.Epoch() }

// Release unpins the view, letting the version store compact past it.
func (v *DerivedView) Release() { v.sn.Release() }

// TermCounts returns the page's term counts as of the view's epoch (nil
// when the page had no fetched text as of the pin).
func (v *DerivedView) TermCounts(page int64) map[string]int {
	if tf, ok := v.tf[page]; ok {
		return tf
	}
	var tf map[string]int
	if raw, ok := v.sn.Get(tfKey(page)); ok {
		tf = decodeCounts(raw)
	}
	v.tf[page] = tf
	return tf
}

// Vector returns the page's raw term vector as of the view's epoch,
// derived from the term-count record (weights are the counts, ids come
// from the shared dictionary — identical to what the fetch path computed,
// and valid across restarts because the record stores terms, not ids).
func (v *DerivedView) Vector(page int64) (text.Vector, bool) {
	if vec, ok := v.vec[page]; ok {
		return vec, len(vec.IDs) > 0
	}
	var vec text.Vector
	if tf := v.TermCounts(page); tf != nil {
		vec = text.VectorFromCounts(v.dict, tf)
	}
	v.vec[page] = vec
	return vec, len(vec.IDs) > 0
}

// --- codec ---
//
// Derived records are stored as compact binary blobs: uvarint-framed
// term strings with counts. No reflection, no allocation beyond the
// result, and nothing process-local — the blob must stay decodable by a
// future process reading it back from the cold tier.

// encodeCounts serializes term counts as uvarint(n) then per term
// uvarint(len), bytes, uvarint(count).
func encodeCounts(tf map[string]int) []byte {
	size := binary.MaxVarintLen64
	for term := range tf {
		size += len(term) + 2*binary.MaxVarintLen64
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(tf)))
	for term, n := range tf {
		buf = binary.AppendUvarint(buf, uint64(len(term)))
		buf = append(buf, term...)
		buf = binary.AppendUvarint(buf, uint64(n))
	}
	return buf
}

// decodeCounts is the inverse of encodeCounts (nil on corrupt input).
func decodeCounts(b []byte) map[string]int {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil
	}
	b = b[w:]
	tf := make(map[string]int, n)
	for i := uint64(0); i < n; i++ {
		l, w := binary.Uvarint(b)
		if w <= 0 || uint64(len(b)-w) < l {
			return nil
		}
		term := string(b[w : w+int(l)])
		b = b[w+int(l):]
		c, w := binary.Uvarint(b)
		if w <= 0 {
			return nil
		}
		b = b[w:]
		tf[term] = int(c)
	}
	return tf
}
