package core

import (
	"encoding/binary"
	"math"
	"strconv"

	"memex/internal/text"
	"memex/internal/version"
)

// This file is the engine's bridge to the version store (§3): the fetch
// path publishes each page's derived data (term counts, raw term vector)
// as one atomic batch, and the analyzer-facing read paths (usage
// breakdown, profiles, trail classification) consume them through pinned
// snapshots. Demons therefore analyze a consistent archive-wide view —
// every page's stats all-or-nothing, repeatable across the whole pass —
// while ingest keeps publishing without ever blocking them.

// tfKey/vecKey name a page's derived records in the version store.
func tfKey(page int64) string  { return "tf/" + strconv.FormatInt(page, 10) }
func vecKey(page int64) string { return "vec/" + strconv.FormatInt(page, 10) }

// publishDerived stages and publishes one page's derived data as a single
// batch (the producer side of the loosely-consistent versioning; consumers
// see both records or neither — the version store's cross-shard atomic
// commit covers both keys even when they hash to different shards). The
// deferred Abort is a no-op on success but completes the epoch if staging
// panics — a leaked epoch would stall the watermark forever under the
// contiguity rule.
func (e *Engine) publishDerived(pageID int64, tf map[string]int, vec text.Vector) {
	b := e.vs.BeginSized(2)
	defer b.Abort()
	b.Put(tfKey(pageID), encodeCounts(tf))
	b.Put(vecKey(pageID), encodeVector(vec))
	b.Publish()
}

// derivedPublished reports whether the page's derived stats are visible
// in the version store — the reader-facing "already fetched" check. It
// is lock-free (one snapshot pin plus one shard-chain walk), so hot
// paths use it instead of taking e.mu. A publish still below the
// watermark can read as false; callers that go on to fetch must let the
// claim set (e.fetched) arbitrate.
func (e *Engine) derivedPublished(pageID int64) bool {
	sn := e.vs.Acquire()
	_, ok := sn.Get(tfKey(pageID))
	sn.Release()
	return ok
}

// DerivedView is a consistent read view over the engine's published
// derived data, pinned at one version-store epoch. Reads are lock-free
// and repeatable for the lifetime of the view: a page fetched after the
// view was pinned stays invisible to it (its TermCounts stay nil for the
// whole pass), exactly like a page that was never fetched.
//
// Decoded records are memoized per view — a usage or replay pass reads
// the same few pages many times — so a DerivedView is for a single
// goroutine, like the passes that hold one.
type DerivedView struct {
	sn  *version.Snapshot
	tf  map[int64]map[string]int
	vec map[int64]text.Vector
}

// DerivedSnapshot pins the current derived-data epoch.
func (e *Engine) DerivedSnapshot() *DerivedView {
	return &DerivedView{
		sn:  e.vs.Acquire(),
		tf:  map[int64]map[string]int{},
		vec: map[int64]text.Vector{},
	}
}

// Epoch returns the pinned version-store epoch.
func (v *DerivedView) Epoch() uint64 { return v.sn.Epoch() }

// Release unpins the view, letting the version store compact past it.
func (v *DerivedView) Release() { v.sn.Release() }

// TermCounts returns the page's term counts as of the view's epoch (nil
// when the page had no fetched text as of the pin).
func (v *DerivedView) TermCounts(page int64) map[string]int {
	if tf, ok := v.tf[page]; ok {
		return tf
	}
	var tf map[string]int
	if raw, ok := v.sn.Get(tfKey(page)); ok {
		tf = decodeCounts(raw)
	}
	v.tf[page] = tf
	return tf
}

// Vector returns the page's raw term vector as of the view's epoch.
func (v *DerivedView) Vector(page int64) (text.Vector, bool) {
	if vec, ok := v.vec[page]; ok {
		return vec, len(vec.IDs) > 0
	}
	var vec text.Vector
	if raw, ok := v.sn.Get(vecKey(page)); ok {
		vec = decodeVector(raw)
	}
	v.vec[page] = vec
	return vec, len(vec.IDs) > 0
}

// --- codecs ---
//
// Derived records are stored as compact binary blobs: uvarint-framed
// strings for term counts, delta-coded ids plus raw float64 bits for
// vectors. No reflection, no allocation beyond the result.

// encodeCounts serializes term counts as uvarint(n) then per term
// uvarint(len), bytes, uvarint(count).
func encodeCounts(tf map[string]int) []byte {
	size := binary.MaxVarintLen64
	for term := range tf {
		size += len(term) + 2*binary.MaxVarintLen64
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(tf)))
	for term, n := range tf {
		buf = binary.AppendUvarint(buf, uint64(len(term)))
		buf = append(buf, term...)
		buf = binary.AppendUvarint(buf, uint64(n))
	}
	return buf
}

// decodeCounts is the inverse of encodeCounts (nil on corrupt input).
func decodeCounts(b []byte) map[string]int {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil
	}
	b = b[w:]
	tf := make(map[string]int, n)
	for i := uint64(0); i < n; i++ {
		l, w := binary.Uvarint(b)
		if w <= 0 || uint64(len(b)-w) < l {
			return nil
		}
		term := string(b[w : w+int(l)])
		b = b[w+int(l):]
		c, w := binary.Uvarint(b)
		if w <= 0 {
			return nil
		}
		b = b[w:]
		tf[term] = int(c)
	}
	return tf
}

// encodeVector serializes a sparse vector as uvarint(n) then delta-coded
// uvarint ids (the ids are sorted ascending) followed by float64 weights.
func encodeVector(v text.Vector) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+len(v.IDs)*(binary.MaxVarintLen32+8))
	buf = binary.AppendUvarint(buf, uint64(len(v.IDs)))
	prev := int32(0)
	for _, id := range v.IDs {
		buf = binary.AppendUvarint(buf, uint64(id-prev))
		prev = id
	}
	for _, w := range v.Weights {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w))
	}
	return buf
}

// decodeVector is the inverse of encodeVector (zero vector on corrupt
// input).
func decodeVector(b []byte) text.Vector {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return text.Vector{}
	}
	b = b[w:]
	v := text.Vector{IDs: make([]int32, 0, n), Weights: make([]float64, 0, n)}
	prev := int32(0)
	for i := uint64(0); i < n; i++ {
		d, w := binary.Uvarint(b)
		if w <= 0 {
			return text.Vector{}
		}
		b = b[w:]
		prev += int32(d)
		v.IDs = append(v.IDs, prev)
	}
	if uint64(len(b)) < 8*n {
		return text.Vector{}
	}
	for i := uint64(0); i < n; i++ {
		v.Weights = append(v.Weights, math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return v
}
