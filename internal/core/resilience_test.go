package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"memex/internal/events"
	"memex/internal/kvstore"
	"memex/internal/webcorpus"
)

// panickySource wraps a corpus source and panics on every k-th lookup —
// the class of failure §3 demands the server shrug off ("recovers from
// network and programming errors quickly, even if it has to discard a few
// client events"). The counter is atomic: the engine's analyzer workers
// call Lookup concurrently.
type panickySource struct {
	inner corpusSource
	every int64
	n     atomic.Int64
}

func (s *panickySource) Lookup(url string) (Content, bool) {
	n := s.n.Add(1)
	if s.every > 0 && n%s.every == 0 {
		panic(fmt.Sprintf("synthetic fetch crash on lookup %d", n))
	}
	return s.inner.Lookup(url)
}

func TestEngineSurvivesPanickingSource(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 15, TopTopics: 2, SubPerTopic: 2, PagesPerLeaf: 20})
	e, err := Open(Config{
		Dir:     t.TempDir(),
		Source:  &panickySource{inner: corpusSource{c}, every: 5},
		KV:      kvstore.Options{Sync: kvstore.SyncNever},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.pool.Logger = func(string, ...any) {} // silence expected restarts
	e.RegisterUser(1, "alice")

	for i, pid := range c.LeafPages[c.Leaves()[0].ID] {
		p := c.Page(pid)
		if err := e.RecordVisit(1, p.URL, "", tBase.Add(time.Duration(i)*time.Minute), events.Community); err != nil {
			t.Fatalf("RecordVisit: %v", err)
		}
	}
	// DrainBackground must terminate even though some events crashed
	// mid-processing (accounting is panic-safe).
	done := make(chan struct{})
	go func() {
		e.DrainBackground()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("DrainBackground wedged after demon panics")
	}

	// The engine must still work: most pages indexed, search alive.
	st := e.Status()
	if st.PagesIndexed == 0 {
		t.Fatal("nothing indexed despite most lookups succeeding")
	}
	if len(e.pool.Restarts()) == 0 {
		t.Fatal("expected demon restarts to be recorded")
	}
	// New events still flow end to end.
	p := c.Page(c.LeafPages[c.Leaves()[1].ID][0])
	if err := e.RecordVisit(1, p.URL, "", tBase.Add(time.Hour), events.Community); err != nil {
		t.Fatalf("post-crash RecordVisit: %v", err)
	}
	e.DrainBackground()
}

// TestQueueSheddingUnderOverload verifies the §3 behaviour: with a tiny
// queue and slow demons, a burst sheds oldest events rather than blocking
// the foreground, and the engine reports it.
func TestQueueSheddingUnderOverload(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 16, TopTopics: 2, SubPerTopic: 2, PagesPerLeaf: 30})
	slow := &slowSource{inner: corpusSource{c}, delay: 3 * time.Millisecond}
	e, err := Open(Config{
		Dir:       t.TempDir(),
		Source:    slow,
		KV:        kvstore.Options{Sync: kvstore.SyncNever},
		Workers:   1,
		QueueSize: 16, // deliberately tiny
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.RegisterUser(1, "alice")

	start := time.Now()
	n := 0
	for _, p := range c.Pages {
		if err := e.RecordVisit(1, p.URL, "", tBase, events.Community); err != nil {
			t.Fatalf("RecordVisit: %v", err)
		}
		n++
	}
	foreground := time.Since(start)
	// The foreground path must not have been throttled to demon speed: at
	// 3ms per fetch, processing n events inline would take n*3ms.
	if foreground > time.Duration(n)*time.Millisecond {
		t.Fatalf("foreground burst took %v for %d events: queue is blocking", foreground, n)
	}
	e.DrainBackground()
	if e.Status().EventsDropped == 0 {
		t.Fatal("expected overload to shed events")
	}
}

type slowSource struct {
	inner corpusSource
	delay time.Duration
}

func (s *slowSource) Lookup(url string) (Content, bool) {
	time.Sleep(s.delay)
	return s.inner.Lookup(url)
}
