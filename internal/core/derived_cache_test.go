package core

import (
	"maps"
	"slices"
	"sync"
	"testing"
	"time"

	"memex/internal/events"
	"memex/internal/kvstore"
	"memex/internal/text"
	"memex/internal/webcorpus"
)

// uncachedTwin wraps the same pinned snapshot in a view with no shared
// cache and no chunk-window hint: the ground-truth read path (probe to
// the first miss, decode every blob). Only the original view may
// Release.
func uncachedTwin(v *DerivedView) *DerivedView {
	return &DerivedView{
		sn:   v.sn,
		dict: v.dict,
		tf:   map[int64]map[string]int{},
		vec:  map[int64]text.Vector{},
		out:  map[int64][]int64{},
		in:   map[int64][]int64{},
	}
}

// fetchedPages snapshots the engine's claim set (the pages with derived
// records to read).
func fetchedPages(e *Engine) []int64 {
	e.mu.RLock()
	pages := make([]int64, 0, len(e.fetched))
	for p := range e.fetched {
		pages = append(pages, p)
	}
	e.mu.RUnlock()
	slices.Sort(pages)
	return pages
}

func seedEngine(t testing.TB, e *Engine, c *webcorpus.Corpus, visits int) {
	t.Helper()
	e.RegisterUser(1, "alice")
	n := 0
	for _, leaf := range c.Leaves() {
		for _, pid := range c.LeafPages[leaf.ID] {
			if n >= visits {
				break
			}
			p := c.Page(pid)
			if err := e.RecordVisit(1, p.URL, "", tBase.Add(time.Duration(n)*time.Minute), events.Community); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	e.DrainBackground()
}

// TestCachedReadsMatchUncached pins one snapshot and reads every derived
// record through three paths — the shared cache cold (first view), the
// ground-truth uncached/unhinted twin, and the cache warm (second view
// at the same epoch) — and requires identical results from all three.
func TestCachedReadsMatchUncached(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 11, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 12})
	e, err := Open(Config{
		Dir:               t.TempDir(),
		Source:            corpusSource{c},
		KV:                kvstore.Options{Sync: kvstore.SyncNever},
		VersionGCInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	seedEngine(t, e, c, 20)

	v := e.DerivedSnapshot()
	defer v.Release()
	if v.cache == nil || v.hints == nil {
		t.Fatal("engine view lacks the shared cache or the chunk hint")
	}
	truth := uncachedTwin(v)
	warm := &DerivedView{
		sn: v.sn, dict: v.dict, cache: v.cache, hints: v.hints,
		tf:  map[int64]map[string]int{},
		vec: map[int64]text.Vector{},
		out: map[int64][]int64{},
		in:  map[int64][]int64{},
	}
	pages := fetchedPages(e)
	if len(pages) == 0 {
		t.Fatal("no fetched pages")
	}
	for _, view := range []*DerivedView{v, warm} {
		for _, p := range pages {
			if got, want := view.TermCounts(p), truth.TermCounts(p); !maps.Equal(got, want) {
				t.Fatalf("page %d: cached TermCounts diverged", p)
			}
			if got, want := view.Out(p), truth.Out(p); !slices.Equal(got, want) {
				t.Fatalf("page %d: cached Out = %v, want %v", p, got, want)
			}
			if got, want := view.In(p), truth.In(p); !slices.Equal(got, want) {
				t.Fatalf("page %d: cached In = %v, want %v", p, got, want)
			}
			gv, gok := view.Vector(p)
			wv, wok := truth.Vector(p)
			if gok != wok || !slices.Equal(gv.IDs, wv.IDs) {
				t.Fatalf("page %d: cached Vector diverged", p)
			}
		}
	}
	st := e.cache.stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("cache accounting dead: %+v", st)
	}
}

// TestSecondPassDecodeCollapse is the tentpole's headline property as a
// counter assertion: a second full read pass over an unchanged epoch
// must do at least 5× less decode work (cache misses are decodes; the
// second pass should be nearly all hits).
func TestSecondPassDecodeCollapse(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 12, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 12})
	e, err := Open(Config{
		Dir:               t.TempDir(),
		Source:            corpusSource{c},
		KV:                kvstore.Options{Sync: kvstore.SyncNever},
		VersionGCInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	seedEngine(t, e, c, 24)

	pages := fetchedPages(e)
	pass := func() {
		v := e.DerivedSnapshot()
		defer v.Release()
		for _, p := range pages {
			v.TermCounts(p)
			v.Out(p)
			v.In(p)
			v.Vector(p)
		}
	}
	m0 := e.cache.stats().Misses
	pass()
	m1 := e.cache.stats().Misses
	pass()
	m2 := e.cache.stats().Misses
	cold, warmMisses := m1-m0, m2-m1
	if cold == 0 {
		t.Fatal("first pass decoded nothing")
	}
	if warmMisses*5 > cold {
		t.Fatalf("second pass did %d decodes vs %d cold — less than the 5× collapse", warmMisses, cold)
	}
}

// TestConsolidatedInZeroColdFallthrough pins the chunk-window hint's
// payoff: after consolidation and a full fold to the cold tier, In() on
// a consolidated page does zero cold-tier fallthrough probes (the old
// probe-to-miss scheme paid one guaranteed cold miss per call — the
// unhinted twin still does, which the second half asserts).
func TestConsolidatedInZeroColdFallthrough(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 13, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 12})
	e, err := Open(Config{
		Dir:               t.TempDir(),
		Source:            corpusSource{c},
		KV:                kvstore.Options{Sync: kvstore.SyncNever},
		VersionGCInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	seedEngine(t, e, c, 20)

	// Find the pages that actually have in-link bases.
	pre := e.DerivedSnapshot()
	var linked []int64
	for _, p := range fetchedPages(e) {
		if pre.In(p) != nil {
			linked = append(linked, p)
		}
	}
	pre.Release()
	if len(linked) == 0 {
		t.Fatal("no pages with in-links")
	}

	e.links.consolidate(1)
	if got := e.links.pendingChunks(); got != 0 {
		t.Fatalf("%d live chunks after full consolidation", got)
	}
	// Fold everything to the cold tier so every probe that misses the
	// in-memory chains would fall through to disk.
	for i := 0; i < 3; i++ {
		e.vs.GC()
	}

	coldStats := func() (reads, misses uint64) {
		cs := e.vs.StoreStats().Cold
		if cs == nil {
			t.Fatal("engine store has no cold tier")
		}
		return cs.Reads, cs.ReadMisses
	}
	v := e.DerivedSnapshot()
	defer v.Release()
	_, miss0 := coldStats()
	for _, p := range linked {
		if v.In(p) == nil {
			t.Fatalf("page %d lost its in-links after consolidation", p)
		}
	}
	_, miss1 := coldStats()
	if miss1 != miss0 {
		t.Fatalf("hinted In() paid %d cold-tier fallthrough misses, want 0", miss1-miss0)
	}

	// The ground-truth twin (no hint) probes one seq past the window per
	// page and pays the cold miss every time.
	truth := uncachedTwin(v)
	for _, p := range linked {
		truth.In(p)
	}
	_, miss2 := coldStats()
	if int(miss2-miss1) < len(linked) {
		t.Fatalf("unhinted twin paid %d cold misses over %d pages — the hint isn't measuring anything", miss2-miss1, len(linked))
	}
}

// TestCacheEvictionRespectsPinFloor drives the evict-only invalidation
// contract: entries at a pinned epoch survive a floor sweep (the pin
// floor cannot pass a live pin), keep serving the pinned view, and are
// reclaimed only once the pin is gone and the floor moves past them.
func TestCacheEvictionRespectsPinFloor(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 14, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 12})
	e, err := Open(Config{
		Dir:               t.TempDir(),
		Source:            corpusSource{c},
		KV:                kvstore.Options{Sync: kvstore.SyncNever},
		VersionGCInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	seedEngine(t, e, c, 12)

	v := e.DerivedSnapshot()
	pages := fetchedPages(e)
	want := map[int64][]int64{}
	for _, p := range pages {
		want[p] = slices.Clone(v.In(p))
	}
	epoch := v.Epoch()

	// Publish past the pinned epoch, then sweep at the pin floor: the
	// pinned epoch's entries must survive (floor ≤ pinned epoch).
	seedEngine(t, e, c, 24)
	e.cache.evictBelow(e.vs.PinFloor())
	h0 := e.cache.stats().Hits
	warm := &DerivedView{
		sn: v.sn, dict: v.dict, cache: v.cache, hints: v.hints,
		tf:  map[int64]map[string]int{},
		vec: map[int64]text.Vector{},
		out: map[int64][]int64{},
		in:  map[int64][]int64{},
	}
	for _, p := range pages {
		if got := warm.In(p); !slices.Equal(got, want[p]) {
			t.Fatalf("page %d: post-sweep cached In = %v, want %v", p, got, want[p])
		}
	}
	if h1 := e.cache.stats().Hits; h1 == h0 {
		t.Fatal("pinned epoch's entries were swept below the pin floor")
	}

	// Release the pin; the floor moves past the epoch and the sweep may
	// now reclaim it.
	v.Release()
	if floor := e.vs.PinFloor(); floor <= epoch {
		t.Fatalf("pin floor %d did not pass released epoch %d", floor, epoch)
	}
	ef0 := e.cache.stats().EvictedFloor
	e.cache.evictBelow(e.vs.PinFloor())
	if ef1 := e.cache.stats().EvictedFloor; ef1 == ef0 {
		t.Fatal("sweep reclaimed nothing after the pin released")
	}
	if _, ok := e.cache.get(cacheKey{epoch: epoch, page: pages[0], kind: kindIn}); ok {
		t.Fatal("released epoch's entry survived the floor sweep")
	}
}

// TestDerivedCacheConcurrentMiningAndIngest is the -race exercise: theme
// rebuilds, recommendation and raw cached read passes run against live
// ingest, the GC/fold/consolidation demon and explicit pin-floor cache
// sweeps, with every cached read checked against the uncached
// ground-truth twin on the same pinned snapshot.
func TestDerivedCacheConcurrentMiningAndIngest(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 15, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 16})
	e, err := Open(Config{
		Dir:               t.TempDir(),
		Source:            corpusSource{c},
		KV:                kvstore.Options{Sync: kvstore.SyncNever},
		VersionGCInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	seedEngine(t, e, c, 16)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Ingest: keep publishing new epochs under the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 16
		for _, leaf := range c.Leaves() {
			for _, pid := range c.LeafPages[leaf.ID] {
				select {
				case <-stop:
					return
				default:
				}
				p := c.Page(pid)
				if err := e.RecordVisit(1, p.URL, "", tBase.Add(time.Duration(n)*time.Minute), events.Community); err != nil {
					t.Errorf("RecordVisit: %v", err)
					return
				}
				n++
			}
		}
	}()

	// Sweeper: race the pin-floor eviction against the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.cache.evictBelow(e.vs.PinFloor())
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Readers: cached view vs ground-truth twin on one pinned snapshot,
	// plus within-view repeatability.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := e.DerivedSnapshot()
				truth := uncachedTwin(v)
				pages := fetchedPages(e)
				if len(pages) > 24 {
					pages = pages[:24]
				}
				for _, p := range pages {
					if got, want := v.In(p), truth.In(p); !slices.Equal(got, want) {
						t.Errorf("page %d: cached In %v != uncached %v at epoch %d", p, got, want, v.Epoch())
					}
					if got, want := v.TermCounts(p), truth.TermCounts(p); !maps.Equal(got, want) {
						t.Errorf("page %d: cached TermCounts diverged at epoch %d", p, v.Epoch())
					}
					if first, again := v.Out(p), v.Out(p); !slices.Equal(first, again) {
						t.Errorf("page %d: Out not repeatable within one view", p)
					}
				}
				v.Release()
			}
		}()
	}

	// Miners: the real read passes the cache exists for.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.RebuildThemes()
				e.Recommend(1, 5, true)
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
