// Package webcorpus generates the synthetic Web that stands in for the
// live Web of the paper's deployment (substitution S17 in DESIGN.md).
//
// The generator builds a two-level topic taxonomy; each leaf topic owns a
// vocabulary, each page samples terms from a mixture of its topic's
// vocabulary, its parent's, and a shared Zipf background. A tunable
// fraction of pages are sparse "front pages" — the paper's observation
// that people bookmark graphics-heavy front pages with little text is the
// reason text-only classification collapses to ~40% (experiment E1).
// Links are predominantly intra-topic with tunable cross-topic noise,
// preserving the link locality that the enhanced classifier and the
// focused crawler exploit.
package webcorpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config tunes corpus generation. Zero values take the documented defaults.
type Config struct {
	Seed          int64
	TopTopics     int     // first-level topics (default 8)
	SubPerTopic   int     // leaves per top topic (default 6)
	PagesPerLeaf  int     // pages per leaf topic (default 40)
	VocabPerLeaf  int     // topic-specific terms per leaf (default 40)
	VocabPerTop   int     // terms shared within a top topic (default 30)
	SharedVocab   int     // global background vocabulary (default 400)
	FrontPageFrac float64 // fraction of sparse front pages (default 0.35)
	ContentWords  int     // mean words on a content page (default 120)
	FrontWords    int     // mean words on a front page (default 12)
	// FrontTopicMix is the probability that a front-page word is topical
	// rather than boilerplate (default 0.15). The paper's observation that
	// bookmarked front pages carry "less text and more graphics" is the
	// reason text-only classification collapses; lower values make the E1
	// regime harsher.
	FrontTopicMix float64
	LinksPerPage  int     // mean out-links (default 6)
	IntraLeafProb float64 // link stays in the same leaf (default 0.55)
	IntraTopProb  float64 // else link stays in the same top topic (default 0.30)
	TopicMix      float64 // fraction of content words drawn from leaf vocab (default 0.45)
	ParentMix     float64 // fraction from the top-topic vocab (default 0.20)
}

func (c *Config) defaults() {
	if c.TopTopics == 0 {
		c.TopTopics = 8
	}
	if c.SubPerTopic == 0 {
		c.SubPerTopic = 6
	}
	if c.PagesPerLeaf == 0 {
		c.PagesPerLeaf = 40
	}
	if c.VocabPerLeaf == 0 {
		c.VocabPerLeaf = 40
	}
	if c.VocabPerTop == 0 {
		c.VocabPerTop = 30
	}
	if c.SharedVocab == 0 {
		c.SharedVocab = 400
	}
	if c.FrontPageFrac == 0 {
		c.FrontPageFrac = 0.35
	}
	if c.ContentWords == 0 {
		c.ContentWords = 120
	}
	if c.FrontWords == 0 {
		c.FrontWords = 12
	}
	if c.LinksPerPage == 0 {
		c.LinksPerPage = 6
	}
	if c.IntraLeafProb == 0 {
		c.IntraLeafProb = 0.55
	}
	if c.IntraTopProb == 0 {
		c.IntraTopProb = 0.30
	}
	if c.TopicMix == 0 {
		c.TopicMix = 0.45
	}
	if c.ParentMix == 0 {
		c.ParentMix = 0.20
	}
	if c.FrontTopicMix == 0 {
		c.FrontTopicMix = 0.15
	}
}

// Topic is one node of the generated taxonomy. Top-level topics have
// Parent == -1.
type Topic struct {
	ID     int
	Parent int
	Name   string
	Path   string
	Leaf   bool
	Vocab  []string
}

// Page is one synthetic web page.
type Page struct {
	ID    int64
	URL   string
	Title string
	Text  string
	Topic int // leaf topic id
	Front bool
	Links []int64
}

// Corpus is the generated Web.
type Corpus struct {
	Cfg    Config
	Topics []Topic // topics[0..TopTopics) are top-level, rest leaves
	Pages  []Page
	ByURL  map[string]int64
	// LeafPages maps leaf topic id → page ids.
	LeafPages map[int][]int64
}

// Some thematic name stems so generated topics read naturally.
var topNames = []string{
	"arts", "science", "sports", "computing", "travel", "cooking",
	"finance", "health", "history", "gaming", "gardening", "photography",
}

var subNames = []string{
	"classical", "modern", "theory", "practice", "europe", "asia",
	"beginner", "advanced", "equipment", "events", "research", "reviews",
}

// Generate builds a corpus deterministically from cfg.Seed.
func Generate(cfg Config) *Corpus {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{
		Cfg:       cfg,
		ByURL:     map[string]int64{},
		LeafPages: map[int][]int64{},
	}

	// Shared background vocabulary with Zipfian draw order.
	shared := make([]string, cfg.SharedVocab)
	for i := range shared {
		shared[i] = fmt.Sprintf("word%03d", i)
	}
	// Front-page boilerplate (drawn heavily on front pages).
	boiler := []string{
		"welcome", "homepage", "links", "contact", "about", "news",
		"updated", "new", "index", "main", "info", "email", "guestbook",
	}

	// Topic tree.
	for t := 0; t < cfg.TopTopics; t++ {
		name := topNames[t%len(topNames)]
		if t >= len(topNames) {
			name = fmt.Sprintf("%s%d", name, t/len(topNames))
		}
		vocab := make([]string, cfg.VocabPerTop)
		for i := range vocab {
			vocab[i] = fmt.Sprintf("%s_gen%02d", name, i)
		}
		c.Topics = append(c.Topics, Topic{
			ID: t, Parent: -1, Name: name, Path: "/" + name, Vocab: vocab,
		})
	}
	for t := 0; t < cfg.TopTopics; t++ {
		top := &c.Topics[t]
		for s := 0; s < cfg.SubPerTopic; s++ {
			name := subNames[s%len(subNames)]
			if s >= len(subNames) {
				name = fmt.Sprintf("%s%d", name, s/len(subNames))
			}
			id := len(c.Topics)
			vocab := make([]string, cfg.VocabPerLeaf)
			for i := range vocab {
				vocab[i] = fmt.Sprintf("%s_%s%02d", top.Name, name, i)
			}
			c.Topics = append(c.Topics, Topic{
				ID: id, Parent: t, Name: name,
				Path: top.Path + "/" + name, Leaf: true, Vocab: vocab,
			})
		}
	}

	// Pages.
	for _, topic := range c.Topics {
		if !topic.Leaf {
			continue
		}
		parent := c.Topics[topic.Parent]
		for p := 0; p < cfg.PagesPerLeaf; p++ {
			id := int64(len(c.Pages) + 1)
			front := rng.Float64() < cfg.FrontPageFrac
			var words []string
			if front {
				n := cfg.FrontWords/2 + rng.Intn(cfg.FrontWords)
				for i := 0; i < n; i++ {
					r := rng.Float64()
					switch {
					case r < cfg.FrontTopicMix:
						// faint topical whisper
						words = append(words, topic.Vocab[zipf(rng, len(topic.Vocab))])
					case r < cfg.FrontTopicMix+0.55:
						words = append(words, boiler[rng.Intn(len(boiler))])
					default:
						words = append(words, shared[zipf(rng, len(shared))])
					}
				}
			} else {
				n := cfg.ContentWords/2 + rng.Intn(cfg.ContentWords)
				for i := 0; i < n; i++ {
					r := rng.Float64()
					switch {
					case r < cfg.TopicMix:
						words = append(words, topic.Vocab[zipf(rng, len(topic.Vocab))])
					case r < cfg.TopicMix+cfg.ParentMix:
						words = append(words, parent.Vocab[zipf(rng, len(parent.Vocab))])
					default:
						words = append(words, shared[zipf(rng, len(shared))])
					}
				}
			}
			url := fmt.Sprintf("http://www%s.example.org/%s/p%d.html", parent.Name, topic.Name, p)
			title := fmt.Sprintf("%s %s page %d", parent.Name, topic.Name, p)
			pg := Page{
				ID: id, URL: url, Title: title,
				Text:  strings.Join(words, " "),
				Topic: topic.ID, Front: front,
			}
			c.Pages = append(c.Pages, pg)
			c.ByURL[url] = id
			c.LeafPages[topic.ID] = append(c.LeafPages[topic.ID], id)
		}
	}

	// Links.
	for i := range c.Pages {
		pg := &c.Pages[i]
		leaf := c.Topics[pg.Topic]
		n := 1 + rng.Intn(cfg.LinksPerPage*2-1) // mean ≈ LinksPerPage
		seen := map[int64]bool{pg.ID: true}
		for l := 0; l < n; l++ {
			var target int64
			r := rng.Float64()
			switch {
			case r < cfg.IntraLeafProb:
				ids := c.LeafPages[pg.Topic]
				target = ids[rng.Intn(len(ids))]
			case r < cfg.IntraLeafProb+cfg.IntraTopProb:
				// Same top topic, any leaf.
				sib := cfg.TopTopics + leaf.Parent*cfg.SubPerTopic + rng.Intn(cfg.SubPerTopic)
				ids := c.LeafPages[sib]
				target = ids[rng.Intn(len(ids))]
			default:
				target = c.Pages[rng.Intn(len(c.Pages))].ID
			}
			if !seen[target] {
				seen[target] = true
				pg.Links = append(pg.Links, target)
			}
		}
	}
	return c
}

// zipf draws an index in [0,n) with probability ∝ 1/(i+1): a light Zipf
// distribution adequate for term frequency realism.
func zipf(rng *rand.Rand, n int) int {
	// Inverse-CDF on harmonic weights would need precomputation; a simple
	// rejection-free trick: draw u^2 to skew toward 0.
	u := rng.Float64()
	return int(u * u * float64(n))
}

// Page returns the page with the given id (ids are 1-based and dense).
func (c *Corpus) Page(id int64) *Page {
	if id < 1 || int(id) > len(c.Pages) {
		return nil
	}
	return &c.Pages[id-1]
}

// Leaves returns all leaf topics.
func (c *Corpus) Leaves() []Topic {
	var out []Topic
	for _, t := range c.Topics {
		if t.Leaf {
			out = append(out, t)
		}
	}
	return out
}

// TopicPath returns the path of topic id ("" when out of range).
func (c *Corpus) TopicPath(id int) string {
	if id < 0 || id >= len(c.Topics) {
		return ""
	}
	return c.Topics[id].Path
}

// OnTopic reports whether page id belongs to leaf topic (or any leaf under
// a top-level topic) t.
func (c *Corpus) OnTopic(pageID int64, topicID int) bool {
	pg := c.Page(pageID)
	if pg == nil || topicID < 0 || topicID >= len(c.Topics) {
		return false
	}
	if pg.Topic == topicID {
		return true
	}
	return c.Topics[pg.Topic].Parent == topicID
}
