package webcorpus

import (
	"strings"
	"testing"

	"memex/internal/text"
)

func small() Config {
	return Config{Seed: 42, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 10}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(small())
	b := Generate(small())
	if len(a.Pages) != len(b.Pages) {
		t.Fatalf("page counts differ: %d vs %d", len(a.Pages), len(b.Pages))
	}
	for i := range a.Pages {
		if a.Pages[i].Text != b.Pages[i].Text || a.Pages[i].URL != b.Pages[i].URL {
			t.Fatalf("page %d differs across runs", i)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	c := Generate(small())
	if got := len(c.Topics); got != 3+3*2 {
		t.Fatalf("topics = %d", got)
	}
	if got := len(c.Pages); got != 3*2*10 {
		t.Fatalf("pages = %d", got)
	}
	leaves := c.Leaves()
	if len(leaves) != 6 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	for _, l := range leaves {
		if !strings.HasPrefix(l.Path, "/") || strings.Count(l.Path, "/") != 2 {
			t.Fatalf("leaf path %q malformed", l.Path)
		}
		if len(c.LeafPages[l.ID]) != 10 {
			t.Fatalf("leaf %d has %d pages", l.ID, len(c.LeafPages[l.ID]))
		}
	}
	// URL lookup round-trips.
	for _, p := range c.Pages {
		if c.ByURL[p.URL] != p.ID {
			t.Fatalf("ByURL broken for %s", p.URL)
		}
	}
	if c.Page(0) != nil || c.Page(int64(len(c.Pages)+1)) != nil {
		t.Fatal("out-of-range Page not nil")
	}
	if c.Page(1).ID != 1 {
		t.Fatal("Page(1) wrong")
	}
}

func TestFrontPagesAreSparse(t *testing.T) {
	c := Generate(Config{Seed: 7, TopTopics: 2, SubPerTopic: 2, PagesPerLeaf: 60})
	var frontLen, contentLen, nFront, nContent int
	for _, p := range c.Pages {
		words := len(strings.Fields(p.Text))
		if p.Front {
			frontLen += words
			nFront++
		} else {
			contentLen += words
			nContent++
		}
	}
	if nFront == 0 || nContent == 0 {
		t.Fatalf("front/content split degenerate: %d/%d", nFront, nContent)
	}
	avgFront := float64(frontLen) / float64(nFront)
	avgContent := float64(contentLen) / float64(nContent)
	if avgFront*3 > avgContent {
		t.Fatalf("front pages not sparse: front=%.1f content=%.1f", avgFront, avgContent)
	}
}

func TestLinkLocality(t *testing.T) {
	c := Generate(Config{Seed: 11, TopTopics: 4, SubPerTopic: 3, PagesPerLeaf: 30})
	sameLeaf, sameTop, total := 0, 0, 0
	for _, p := range c.Pages {
		for _, l := range p.Links {
			q := c.Page(l)
			total++
			if q.Topic == p.Topic {
				sameLeaf++
			} else if c.Topics[q.Topic].Parent == c.Topics[p.Topic].Parent {
				sameTop++
			}
		}
	}
	if total == 0 {
		t.Fatal("no links generated")
	}
	leafFrac := float64(sameLeaf) / float64(total)
	if leafFrac < 0.4 {
		t.Fatalf("intra-leaf link fraction %.2f too low", leafFrac)
	}
	if leafFrac > 0.95 {
		t.Fatalf("intra-leaf link fraction %.2f leaves no noise", leafFrac)
	}
	_ = sameTop
}

func TestTopicalVocabularySeparates(t *testing.T) {
	c := Generate(Config{Seed: 13, TopTopics: 2, SubPerTopic: 2, PagesPerLeaf: 20})
	d := text.NewDict()
	// TF-IDF centroids per leaf topic over content pages — the weighting the
	// mining modules actually use; raw TF is dominated by the shared Zipf
	// background (by design, like stopwords on the real Web).
	corpus := text.NewCorpus()
	raw := map[int64]text.Vector{}
	for _, p := range c.Pages {
		v := text.VectorFromText(d, p.Text)
		raw[p.ID] = v
		corpus.AddDoc(v)
	}
	cent := map[int]text.Vector{}
	for _, l := range c.Leaves() {
		var vecs []text.Vector
		for _, pid := range c.LeafPages[l.ID] {
			if c.Page(pid).Front {
				continue
			}
			vecs = append(vecs, corpus.TFIDF(raw[pid]))
		}
		cent[l.ID] = text.Centroid(vecs)
	}
	// Separation property that matters downstream: a content page is closer
	// to its own topic centroid than to any other topic's centroid, for the
	// overwhelming majority of pages (nearest-centroid accuracy).
	correct, total := 0, 0
	for _, p := range c.Pages {
		if p.Front {
			continue
		}
		total++
		v := corpus.TFIDF(raw[p.ID])
		best, bestSim := -1, -1.0
		for _, l := range c.Leaves() {
			if s := text.Cosine(v, cent[l.ID]); s > bestSim {
				best, bestSim = l.ID, s
			}
		}
		if best == p.Topic {
			correct++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Fatalf("nearest-centroid accuracy %.2f, want >= 0.9", acc)
	}
}

func TestOnTopic(t *testing.T) {
	c := Generate(small())
	p := c.Pages[0]
	if !c.OnTopic(p.ID, p.Topic) {
		t.Fatal("page not on its own topic")
	}
	parent := c.Topics[p.Topic].Parent
	if !c.OnTopic(p.ID, parent) {
		t.Fatal("page not on its parent topic")
	}
	if c.OnTopic(p.ID, 9999) || c.OnTopic(9999, p.Topic) {
		t.Fatal("OnTopic accepted out-of-range args")
	}
}

func TestNoSelfLinks(t *testing.T) {
	c := Generate(small())
	for _, p := range c.Pages {
		seen := map[int64]bool{}
		for _, l := range p.Links {
			if l == p.ID {
				t.Fatalf("page %d links to itself", p.ID)
			}
			if seen[l] {
				t.Fatalf("page %d has duplicate link to %d", p.ID, l)
			}
			seen[l] = true
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := Config{Seed: 1}
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}
