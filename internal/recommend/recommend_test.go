package recommend

import (
	"fmt"
	"math/rand"
	"testing"

	"memex/internal/profile"
	"memex/internal/text"
	"memex/internal/themes"
)

// community builds: two interest groups (topics 0 and 1); group members
// visit mostly their topic's pages. Pages 0xx belong to topic 0, 1xx to
// topic 1. Each user visits a random subset, so URL overlap within a group
// is low even though interests align — the regime where profile similarity
// shines.
func community(t testing.TB, users, pagesPerTopic, visitsPerUser int) (*Engine, map[int64]int) {
	d := text.NewDict()
	rng := rand.New(rand.NewSource(31))

	pageTopic := map[int64]int{}
	pageVec := map[int64]text.Vector{}
	for topic := 0; topic < 2; topic++ {
		for p := 0; p < pagesPerTopic; p++ {
			id := int64(topic*1000 + p)
			tf := map[string]int{}
			for w := 0; w < 15; w++ {
				tf[fmt.Sprintf("g%dword%d", topic, rng.Intn(12))]++
			}
			pageTopic[id] = topic
			pageVec[id] = text.VectorFromCounts(d, tf).Normalize()
		}
	}

	// Taxonomy from a few seed folders.
	var ufs []themes.UserFolder
	for u := 1; u <= 4; u++ {
		for topic := 0; topic < 2; topic++ {
			uf := themes.UserFolder{User: int64(u), Path: fmt.Sprintf("/g%d", topic)}
			for p := 0; p < 6; p++ {
				id := int64(topic*1000 + p)
				uf.Docs = append(uf.Docs, themes.DocVec{ID: id, Vec: pageVec[id]})
			}
			ufs = append(ufs, uf)
		}
	}
	tax := themes.Discover(ufs, d, themes.Options{Seed: 32})

	userTopic := map[int64]int{}
	profiles := map[int64]profile.Profile{}
	visited := map[int64]map[int64]bool{}
	for u := 1; u <= users; u++ {
		topic := (u - 1) % 2
		userTopic[int64(u)] = topic
		vs := map[int64]bool{}
		var docs []themes.DocVec
		for len(vs) < visitsPerUser {
			id := int64(topic*1000 + rng.Intn(pagesPerTopic))
			if !vs[id] {
				vs[id] = true
				docs = append(docs, themes.DocVec{ID: id, Vec: pageVec[id]})
			}
		}
		visited[int64(u)] = vs
		profiles[int64(u)] = profile.Build(int64(u), docs, tax)
	}
	return NewEngine(profiles, visited), userTopic
}

func TestPeersByProfileFindInterestGroup(t *testing.T) {
	e, userTopic := community(t, 20, 200, 15)
	peers := e.Peers(1, ByProfile, 5)
	if len(peers) != 5 {
		t.Fatalf("peers = %d", len(peers))
	}
	for _, p := range peers {
		if userTopic[p.User] != userTopic[1] {
			t.Fatalf("profile peer %d from wrong interest group", p.User)
		}
	}
}

func TestProfileBeatsURLOverlapAtPeerRanking(t *testing.T) {
	// With sparse visits over a large page pool, URL overlap within the
	// interest group is mostly zero, so Jaccard cannot separate groups.
	e, userTopic := community(t, 30, 400, 10)
	agreeProfile, agreeURL, n := 0, 0, 0
	for u := int64(1); u <= 30; u++ {
		pp := e.Peers(u, ByProfile, 3)
		pu := e.Peers(u, ByURLOverlap, 3)
		for _, p := range pp {
			if userTopic[p.User] == userTopic[u] {
				agreeProfile++
			}
		}
		for _, p := range pu {
			if userTopic[p.User] == userTopic[u] {
				agreeURL++
			}
		}
		n += 3
	}
	pAcc := float64(agreeProfile) / float64(n)
	uAcc := float64(agreeURL) / float64(n)
	t.Logf("peer accuracy: profile=%.3f url=%.3f", pAcc, uAcc)
	if pAcc <= uAcc {
		t.Fatalf("profile peer ranking (%.3f) not better than URL overlap (%.3f)", pAcc, uAcc)
	}
	if pAcc < 0.95 {
		t.Fatalf("profile peer accuracy %.3f too low", pAcc)
	}
}

func TestRecommendExcludesSeenAndStaysOnTopic(t *testing.T) {
	e, userTopic := community(t, 20, 200, 15)
	rec := e.Recommend(1, ByProfile, 5, 10)
	if len(rec) == 0 {
		t.Fatal("no recommendations")
	}
	for _, r := range rec {
		if e.visited[1][r] {
			t.Fatalf("recommended already-seen page %d", r)
		}
		topic := 0
		if r >= 1000 {
			topic = 1
		}
		if topic != userTopic[1] {
			t.Fatalf("recommended off-interest page %d", r)
		}
	}
}

func TestRecommendUnknownUser(t *testing.T) {
	e, _ := community(t, 5, 50, 5)
	if rec := e.Recommend(999, ByProfile, 3, 5); len(rec) != 0 {
		t.Fatalf("recommendations for unknown user: %v", rec)
	}
}

func TestPageScoresBias(t *testing.T) {
	e, _ := community(t, 10, 100, 10)
	base := e.Recommend(1, ByProfile, 5, 1)
	if len(base) != 1 {
		t.Fatal("no baseline recommendation")
	}
	// Boost a different unseen page massively; it must take over the top slot.
	var target int64 = -1
	all := e.Recommend(1, ByProfile, 5, 50)
	for _, p := range all {
		if p != base[0] {
			target = p
			break
		}
	}
	if target < 0 {
		t.Skip("only one candidate page")
	}
	e.SetPageScores(map[int64]float64{target: 1000})
	boosted := e.Recommend(1, ByProfile, 5, 1)
	if boosted[0] != target {
		t.Fatalf("page score did not bias ranking: got %d want %d", boosted[0], target)
	}
}

func TestPrecisionRecall(t *testing.T) {
	rel := map[int64]bool{1: true, 2: true, 3: true, 4: true}
	rec := []int64{1, 2, 99}
	if p := PrecisionAtK(rec, rel); p < 0.66 || p > 0.67 {
		t.Fatalf("precision = %v", p)
	}
	if r := RecallAtK(rec, rel); r != 0.5 {
		t.Fatalf("recall = %v", r)
	}
	if PrecisionAtK(nil, rel) != 0 || RecallAtK(rec, nil) != 0 {
		t.Fatal("empty-input metrics not 0")
	}
}

func BenchmarkRecommend(b *testing.B) {
	e, _ := community(b, 50, 500, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Recommend(int64(i%50+1), ByProfile, 10, 10)
	}
}
