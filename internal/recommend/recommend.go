// Package recommend implements Memex's collaborative recommendation over
// theme profiles (§4, [10]): rank peers by profile similarity, then
// recommend pages the nearest peers valued that the target user has not
// seen. The URL-overlap peer ranking is retained as the baseline that
// experiment E7 compares against.
package recommend

import (
	"sort"

	"memex/internal/profile"
)

// PeerScore is one candidate peer with a similarity score.
type PeerScore struct {
	User  int64
	Score float64
}

// Method selects how peers are ranked.
type Method int

const (
	// ByProfile ranks peers by theme-profile cosine (the Memex way).
	ByProfile Method = iota
	// ByURLOverlap ranks peers by Jaccard overlap of visited URL sets
	// (the baseline the paper dismisses).
	ByURLOverlap
)

// Engine holds the community state needed for recommendations.
type Engine struct {
	profiles map[int64]profile.Profile
	visited  map[int64]map[int64]bool // user → page set
	// pageScore lets callers weight candidate pages (e.g. by community
	// visit counts); nil means uniform.
	pageScore map[int64]float64
}

// NewEngine builds an engine from per-user profiles and visit sets.
func NewEngine(profiles map[int64]profile.Profile, visited map[int64]map[int64]bool) *Engine {
	return &Engine{profiles: profiles, visited: visited}
}

// SetPageScores installs optional global page weights.
func (e *Engine) SetPageScores(s map[int64]float64) { e.pageScore = s }

// Peers ranks all other users by similarity to user under the method.
func (e *Engine) Peers(user int64, method Method, k int) []PeerScore {
	var out []PeerScore
	switch method {
	case ByURLOverlap:
		mine := e.visited[user]
		for other, pages := range e.visited {
			if other == user {
				continue
			}
			out = append(out, PeerScore{other, profile.URLJaccard(mine, pages)})
		}
	default:
		mine, ok := e.profiles[user]
		if !ok {
			return nil
		}
		for other, p := range e.profiles {
			if other == user {
				continue
			}
			out = append(out, PeerScore{other, profile.Similarity(mine, p)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].User < out[j].User
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Recommend returns up to k pages for user: pages visited by the nPeers
// most similar peers, unseen by the user, scored by peer-similarity-
// weighted visit mass (times the optional page weight).
func (e *Engine) Recommend(user int64, method Method, nPeers, k int) []int64 {
	peers := e.Peers(user, method, nPeers)
	mine := e.visited[user]
	mass := map[int64]float64{}
	for _, ps := range peers {
		if ps.Score <= 0 {
			continue
		}
		for page := range e.visited[ps.User] {
			if mine[page] {
				continue
			}
			w := ps.Score
			if e.pageScore != nil {
				if pw, ok := e.pageScore[page]; ok {
					w *= pw
				}
			}
			mass[page] += w
		}
	}
	ids := make([]int64, 0, len(mass))
	for id := range mass {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if mass[ids[i]] != mass[ids[j]] {
			return mass[ids[i]] > mass[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if k > 0 && k < len(ids) {
		ids = ids[:k]
	}
	return ids
}

// PrecisionAtK evaluates recommendations against a held-out relevant set:
// |rec ∩ relevant| / |rec|.
func PrecisionAtK(rec []int64, relevant map[int64]bool) float64 {
	if len(rec) == 0 {
		return 0
	}
	hit := 0
	for _, r := range rec {
		if relevant[r] {
			hit++
		}
	}
	return float64(hit) / float64(len(rec))
}

// RecallAtK evaluates coverage of the held-out set.
func RecallAtK(rec []int64, relevant map[int64]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	hit := 0
	for _, r := range rec {
		if relevant[r] {
			hit++
		}
	}
	return float64(hit) / float64(len(relevant))
}
