package client_test

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memex/internal/client"
	"memex/internal/core"
	"memex/internal/kvstore"
	"memex/internal/server"
	"memex/internal/webcorpus"
)

// corpusSource adapts the synthetic web to the engine's PageSource.
type corpusSource struct {
	c *webcorpus.Corpus
}

func (s corpusSource) Lookup(url string) (core.Content, bool) {
	id, ok := s.c.ByURL[url]
	if !ok {
		return core.Content{}, false
	}
	p := s.c.Page(id)
	links := make([]string, 0, len(p.Links))
	for _, l := range p.Links {
		links = append(links, s.c.Page(l).URL)
	}
	return core.Content{URL: p.URL, Title: p.Title, Text: p.Text, Links: links}, true
}

func newTestServer(t *testing.T) (*webcorpus.Corpus, *core.Engine, *client.Client) {
	t.Helper()
	c := webcorpus.Generate(webcorpus.Config{Seed: 9, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 15})
	e, err := core.Open(core.Config{
		Dir:    t.TempDir(),
		Source: corpusSource{c},
		KV:     kvstore.Options{Sync: kvstore.SyncNever},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(e))
	t.Cleanup(func() {
		ts.Close()
		e.Close()
	})
	return c, e, client.New(ts.URL)
}

var tBase = time.Date(2000, 5, 21, 10, 0, 0, 0, time.UTC)

func TestEndToEndVisitSearch(t *testing.T) {
	c, e, cl := newTestServer(t)
	if err := cl.Register(1, "alice"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	leaf := c.Leaves()[0]
	var visited int
	for _, pid := range c.LeafPages[leaf.ID] {
		p := c.Page(pid)
		if p.Front {
			continue
		}
		if err := cl.Visit(1, p.URL, "", tBase, "community"); err != nil {
			t.Fatalf("Visit: %v", err)
		}
		visited++
		if visited == 6 {
			break
		}
	}
	e.DrainBackground()

	top := c.Topics[leaf.Parent]
	hits, err := cl.Search(1, top.Name+"_"+leaf.Name+"01", 5)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits over HTTP")
	}

	st, err := cl.Status()
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Visits != int64(visited) {
		t.Fatalf("Status.Visits = %d, want %d", st.Visits, visited)
	}
	// The version store's per-shard breakdown must survive the HTTP
	// round trip: operators watch shard skew and chain depth from here.
	if len(st.Version.Shards) == 0 {
		t.Fatal("Status.Version.Shards empty over HTTP")
	}
	sum := 0
	for _, sh := range st.Version.Shards {
		sum += sh.Entries
	}
	if sum != st.Version.Entries || st.Version.Watermark == 0 {
		t.Fatalf("per-shard stats inconsistent over HTTP: sum=%d entries=%d watermark=%d",
			sum, st.Version.Entries, st.Version.Watermark)
	}
}

func TestEndToEndBookmarkThemesRecommend(t *testing.T) {
	c, e, cl := newTestServer(t)
	leaves := c.Leaves()
	for u := int64(1); u <= 3; u++ {
		cl.Register(u, "user")
		leaf := leaves[0]
		if u == 3 {
			leaf = leaves[3]
		}
		n := 0
		for _, pid := range c.LeafPages[leaf.ID] {
			p := c.Page(pid)
			if p.Front {
				continue
			}
			cl.Bookmark(u, p.URL, "/interest", tBase)
			cl.Visit(u, p.URL, "", tBase.Add(time.Duration(n)*time.Minute), "community")
			n++
			if n == 6 {
				break
			}
		}
	}
	e.DrainBackground()

	st, err := cl.RebuildThemes()
	if err != nil {
		t.Fatalf("RebuildThemes: %v", err)
	}
	if st.Themes == 0 {
		t.Fatal("no themes")
	}
	ths, err := cl.Themes()
	if err != nil || len(ths) == 0 {
		t.Fatalf("Themes: %v (%d)", err, len(ths))
	}
	weights, err := cl.Profile(1)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if len(weights) == 0 {
		t.Fatal("empty profile over HTTP")
	}
	recs, err := cl.Recommend(1, 5, "")
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	_ = recs // may be empty if peers saw nothing new; API must not error
}

func TestEndToEndImportExport(t *testing.T) {
	c, _, cl := newTestServer(t)
	cl.Register(1, "alice")
	p := c.Page(c.LeafPages[c.Leaves()[0].ID][0])
	src := `<!DOCTYPE NETSCAPE-Bookmark-file-1>
<DL><p>
    <DT><H3>Research</H3>
    <DL><p>
        <DT><A HREF="` + p.URL + `" ADD_DATE="958800000">Seed</A>
    </DL><p>
</DL><p>`
	n, err := cl.ImportBookmarks(1, strings.NewReader(src))
	if err != nil || n != 1 {
		t.Fatalf("Import: n=%d err=%v", n, err)
	}
	out, err := cl.ExportBookmarks(1)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	if !strings.Contains(out, p.URL) || !strings.Contains(out, "Research") {
		t.Fatal("export incomplete")
	}
}

func TestValidationErrors(t *testing.T) {
	_, _, cl := newTestServer(t)
	if err := cl.Register(0, ""); err == nil {
		t.Fatal("bad register accepted")
	}
	if err := cl.Visit(0, "", "", tBase, ""); err == nil {
		t.Fatal("bad visit accepted")
	}
	if err := cl.Bookmark(1, "", "", tBase); err == nil {
		t.Fatal("bad bookmark accepted")
	}
	if _, err := cl.Search(1, "", 5); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := cl.Trails(0, "", 5); err == nil {
		t.Fatal("bad trails request accepted")
	}
	if err := cl.Correct(1, "http://never-seen.example/", "/x"); err == nil {
		t.Fatal("correct on unknown page accepted")
	}
}

func TestPrivacyOverHTTP(t *testing.T) {
	c, e, cl := newTestServer(t)
	cl.Register(1, "alice")
	cl.Register(2, "bob")
	var content []*webcorpus.Page
	for _, pid := range c.LeafPages[c.Leaves()[0].ID] {
		if p := c.Page(pid); !p.Front {
			content = append(content, p)
		}
	}
	cl.Visit(1, content[0].URL, "", tBase, "private")
	cl.Visit(1, content[1].URL, "", tBase, "off")
	e.DrainBackground()

	st, _ := cl.Status()
	if st.Visits != 1 {
		t.Fatalf("Visits = %d: off-mode visit recorded", st.Visits)
	}
	// Bob cannot find alice's private page.
	words := strings.Fields(content[0].Text)
	var q []string
	for _, w := range words {
		if strings.Contains(w, "_") {
			q = append(q, w)
			if len(q) == 3 {
				break
			}
		}
	}
	hits, _ := cl.Search(2, strings.Join(q, " "), 20)
	for _, h := range hits {
		if h.URL == content[0].URL {
			t.Fatal("private page visible to another user over HTTP")
		}
	}
}
