package client_test

import (
	"errors"
	"net/http/httptest"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"memex/internal/client"
	"memex/internal/core"
	"memex/internal/kvstore"
	"memex/internal/server"
	"memex/internal/webcorpus"
)

// corpusSource adapts the synthetic web to the engine's PageSource.
type corpusSource struct {
	c *webcorpus.Corpus
}

func (s corpusSource) Lookup(url string) (core.Content, bool) {
	id, ok := s.c.ByURL[url]
	if !ok {
		return core.Content{}, false
	}
	p := s.c.Page(id)
	links := make([]string, 0, len(p.Links))
	for _, l := range p.Links {
		links = append(links, s.c.Page(l).URL)
	}
	return core.Content{URL: p.URL, Title: p.Title, Text: p.Text, Links: links}, true
}

func newTestServer(t *testing.T) (*webcorpus.Corpus, *core.Engine, *client.Client) {
	t.Helper()
	c := webcorpus.Generate(webcorpus.Config{Seed: 9, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 15})
	e, err := core.Open(core.Config{
		Dir:    t.TempDir(),
		Source: corpusSource{c},
		KV:     kvstore.Options{Sync: kvstore.SyncNever},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(e))
	t.Cleanup(func() {
		ts.Close()
		e.Close()
	})
	return c, e, client.New(ts.URL)
}

var tBase = time.Date(2000, 5, 21, 10, 0, 0, 0, time.UTC)

func TestEndToEndVisitSearch(t *testing.T) {
	c, e, cl := newTestServer(t)
	if err := cl.Register(1, "alice"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	leaf := c.Leaves()[0]
	var visited int
	for _, pid := range c.LeafPages[leaf.ID] {
		p := c.Page(pid)
		if p.Front {
			continue
		}
		if err := cl.Visit(1, p.URL, "", tBase, "community"); err != nil {
			t.Fatalf("Visit: %v", err)
		}
		visited++
		if visited == 6 {
			break
		}
	}
	e.DrainBackground()

	top := c.Topics[leaf.Parent]
	hits, err := cl.Search(1, top.Name+"_"+leaf.Name+"01", 5)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits over HTTP")
	}

	st, err := cl.Status()
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Visits != int64(visited) {
		t.Fatalf("Status.Visits = %d, want %d", st.Visits, visited)
	}
	// The version store's per-shard breakdown must survive the HTTP
	// round trip: operators watch shard skew and chain depth from here.
	if len(st.Version.Shards) == 0 {
		t.Fatal("Status.Version.Shards empty over HTTP")
	}
	sum := 0
	for _, sh := range st.Version.Shards {
		sum += sh.Entries
	}
	if sum != st.Version.Entries || st.Version.Watermark == 0 {
		t.Fatalf("per-shard stats inconsistent over HTTP: sum=%d entries=%d watermark=%d",
			sum, st.Version.Entries, st.Version.Watermark)
	}
}

func TestEndToEndBookmarkThemesRecommend(t *testing.T) {
	c, e, cl := newTestServer(t)
	leaves := c.Leaves()
	for u := int64(1); u <= 3; u++ {
		cl.Register(u, "user")
		leaf := leaves[0]
		if u == 3 {
			leaf = leaves[3]
		}
		n := 0
		for _, pid := range c.LeafPages[leaf.ID] {
			p := c.Page(pid)
			if p.Front {
				continue
			}
			cl.Bookmark(u, p.URL, "/interest", tBase)
			cl.Visit(u, p.URL, "", tBase.Add(time.Duration(n)*time.Minute), "community")
			n++
			if n == 6 {
				break
			}
		}
	}
	e.DrainBackground()

	st, err := cl.RebuildThemes()
	if err != nil {
		t.Fatalf("RebuildThemes: %v", err)
	}
	if st.Themes == 0 {
		t.Fatal("no themes")
	}
	ths, err := cl.Themes()
	if err != nil || len(ths) == 0 {
		t.Fatalf("Themes: %v (%d)", err, len(ths))
	}
	weights, err := cl.Profile(1)
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	if len(weights) == 0 {
		t.Fatal("empty profile over HTTP")
	}
	recs, err := cl.Recommend(1, 5, "")
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	_ = recs // may be empty if peers saw nothing new; API must not error
}

// countingSource wraps a PageSource and counts every Lookup — the e2e
// definition of "network fetch".
type countingSource struct {
	inner   core.PageSource
	lookups *atomic.Int64
}

func (s countingSource) Lookup(url string) (core.Content, bool) {
	s.lookups.Add(1)
	return s.inner.Lookup(url)
}

// TestEndToEndRestartRecoversDerivedState is the ISSUE 3+4 e2e restart
// test: ingest pages, stop memexd's engine, restart it on the same data
// directory, and assert that search/themes/recommend/trails/discover
// answers all match the pre-restart snapshots, that /api/status reports
// cold-tier records and the recovered link graph, and that the entire
// second life — including a full Discover crawl over the recovered
// frontier and re-visits of archived pages — performs zero network
// fetches: every answer comes from the version store's recovered
// records, not from re-crawling.
func TestEndToEndRestartRecoversDerivedState(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 9, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 15})
	dir := t.TempDir()
	var lookups atomic.Int64
	open := func() (*core.Engine, *httptest.Server, *client.Client) {
		e, err := core.Open(core.Config{
			Dir:    dir,
			Source: countingSource{corpusSource{c}, &lookups},
			KV:     kvstore.Options{Sync: kvstore.SyncNever},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(server.New(e))
		return e, ts, client.New(ts.URL)
	}

	// --- first life: ingest and snapshot the mining answers ---
	e1, ts1, cl1 := open()
	leaves := c.Leaves()
	var visited []string
	for u := int64(1); u <= 3; u++ {
		cl1.Register(u, "user")
		leaf, other := leaves[0], leaves[3]
		if u == 3 {
			leaf, other = leaves[3], leaves[0]
		}
		n := 0
		for _, pid := range c.LeafPages[leaf.ID] {
			p := c.Page(pid)
			if p.Front {
				continue
			}
			cl1.Bookmark(u, p.URL, "/interest", tBase)
			cl1.Visit(u, p.URL, "", tBase.Add(time.Duration(n)*time.Minute), "community")
			if u == 1 {
				visited = append(visited, p.URL)
			}
			n++
			if n == 6 {
				break
			}
		}
		// A second folder gives every user a trainable (≥2-class)
		// classifier, which Trails and Discover need.
		m := 0
		for _, pid := range c.LeafPages[other.ID] {
			p := c.Page(pid)
			if p.Front {
				continue
			}
			cl1.Bookmark(u, p.URL, "/other", tBase)
			m++
			if m == 3 {
				break
			}
		}
	}
	e1.DrainBackground()

	// Discover expands the archive (each crawl fetches new frontier
	// pages), which grows the corpus the classifier trains over — so
	// iterate retrain→discover until a whole crawl is served from the
	// archive alone. That fixpoint is the reproducible reference state:
	// the second life recovers exactly this archive and must propose the
	// identical frontier without a single fetch.
	e1.RetrainClassifiers()
	var discoverPre []core.PageInfo
	converged := false
	for round := 0; round < 8; round++ {
		before := lookups.Load()
		var err error
		discoverPre, err = cl1.Discover(1, "/interest", 200, 8)
		if err != nil {
			t.Fatalf("Discover pre-restart: %v", err)
		}
		e1.DrainBackground()
		if lookups.Load() == before {
			converged = true
			break
		}
		e1.RetrainClassifiers()
	}
	if !converged {
		t.Fatal("Discover never converged to a zero-fetch crawl")
	}
	if len(discoverPre) == 0 {
		t.Fatal("Discover proposed nothing pre-restart")
	}

	themesPre, err := cl1.RebuildThemes()
	if err != nil || themesPre.Themes == 0 {
		t.Fatalf("RebuildThemes pre-restart: %v (%d themes)", err, themesPre.Themes)
	}
	query := c.Topics[leaves[0].Parent].Name + "_" + leaves[0].Name + "01"
	searchPre, err := cl1.Search(1, query, 5)
	if err != nil || len(searchPre) == 0 {
		t.Fatalf("Search pre-restart: %v (%d hits)", err, len(searchPre))
	}
	recsPre, err := cl1.Recommend(1, 5, "")
	if err != nil {
		t.Fatalf("Recommend pre-restart: %v", err)
	}
	trailsPre, err := cl1.Trails(1, "/interest", 10)
	if err != nil {
		t.Fatalf("Trails pre-restart: %v", err)
	}
	stPre, err := cl1.Status()
	if err != nil {
		t.Fatal(err)
	}
	if stPre.GraphNodes == 0 || stPre.GraphEdges == 0 {
		t.Fatalf("no link graph over HTTP pre-restart: %+v", stPre)
	}
	ts1.Close()
	if err := e1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// --- second life: same data dir, fresh process state ---
	atRestart := lookups.Load()
	e2, ts2, cl2 := open()
	defer func() {
		ts2.Close()
		e2.Close()
	}()
	stPost, err := cl2.Status()
	if err != nil {
		t.Fatal(err)
	}
	if stPost.Version.Cold == nil || stPost.Version.Cold.Records == 0 {
		t.Fatal("/api/status reports no cold-tier records after restart")
	}
	// Shutdown may append one more epoch after the pre-restart status
	// snapshot (Close consolidates long in-link chunk chains into their
	// base records before the final fold), so the recovered watermark can
	// sit above the observed one — but never below it: below would mean
	// published epochs were lost across the restart.
	if stPost.Version.Watermark < stPre.Version.Watermark {
		t.Fatalf("restart lost epochs: watermark %d, want >= %d", stPost.Version.Watermark, stPre.Version.Watermark)
	}
	if stPost.PagesIndexed != stPre.PagesIndexed {
		t.Fatalf("index rebuilt with %d docs, want %d", stPost.PagesIndexed, stPre.PagesIndexed)
	}
	// The link graph came back from the recovered lnk/ records: same
	// shape, before any fetch or visit in this life.
	if stPost.GraphNodes != stPre.GraphNodes || stPost.GraphEdges != stPre.GraphEdges {
		t.Fatalf("restart lost link graph: %d/%d nodes, %d/%d edges",
			stPost.GraphNodes, stPre.GraphNodes, stPost.GraphEdges, stPre.GraphEdges)
	}

	// Search answers must match: the inverted index was rebuilt from the
	// recovered term-count records, not from re-fetching.
	searchPost, err := cl2.Search(1, query, 5)
	if err != nil {
		t.Fatalf("Search post-restart: %v", err)
	}
	if got, want := hitURLs(searchPost), hitURLs(searchPre); !slices.Equal(got, want) {
		t.Fatalf("search diverged after restart: %v, want %v", got, want)
	}

	// Themes and recommendations are recomputed from recovered vectors
	// (and, for recommend's link-proximity boost, recovered adjacency)
	// and must land where they did before the restart.
	themesPost, err := cl2.RebuildThemes()
	if err != nil || themesPost.Themes != themesPre.Themes {
		t.Fatalf("themes after restart: %v (%d, want %d)", err, themesPost.Themes, themesPre.Themes)
	}
	recsPost, err := cl2.Recommend(1, 5, "")
	if err != nil {
		t.Fatalf("Recommend post-restart: %v", err)
	}
	if got, want := hitURLs(recsPost), hitURLs(recsPre); !slices.Equal(got, want) {
		t.Fatalf("recommendations diverged after restart: %v, want %v", got, want)
	}

	// Trails and Discover read the recovered link records through pinned
	// views; with the retrained (deterministic) classifier they must
	// reproduce the pre-restart context and frontier exactly.
	e2.RetrainClassifiers()
	trailsPost, err := cl2.Trails(1, "/interest", 10)
	if err != nil {
		t.Fatalf("Trails post-restart: %v", err)
	}
	if got, want := hitURLs(trailsPost.Pages), hitURLs(trailsPre.Pages); !slices.Equal(got, want) {
		t.Fatalf("trail pages diverged after restart: %v, want %v", got, want)
	}
	if got, want := hitURLs(trailsPost.Popular), hitURLs(trailsPre.Popular); !slices.Equal(got, want) {
		t.Fatalf("trail popular set diverged after restart: %v, want %v", got, want)
	}
	discoverPost, err := cl2.Discover(1, "/interest", 200, 8)
	if err != nil {
		t.Fatalf("Discover post-restart: %v", err)
	}
	if got, want := hitURLs(discoverPost), hitURLs(discoverPre); !slices.Equal(got, want) {
		t.Fatalf("discover frontier diverged after restart: %v, want %v", got, want)
	}

	// Re-visiting already-archived pages must not re-crawl: the fetch
	// path's "already published" check now reads the recovered cold tier.
	for i, url := range visited {
		if err := cl2.Visit(1, url, "", tBase.Add(time.Duration(24+i)*time.Hour), "community"); err != nil {
			t.Fatal(err)
		}
	}
	e2.DrainBackground()
	stAfter, err := cl2.Status()
	if err != nil {
		t.Fatal(err)
	}
	if stAfter.PagesFetched != 0 {
		t.Fatalf("restarted server re-fetched %d already-archived pages", stAfter.PagesFetched)
	}
	// The hard guarantee behind all of the above: the entire second life —
	// status, search, themes, recommend, trails, a full Discover crawl,
	// and the re-visits — touched the page source zero times.
	if n := lookups.Load() - atRestart; n != 0 {
		t.Fatalf("second life performed %d network fetches; want 0", n)
	}
}

// hitURLs projects any result slice with URL fields to its URL set.
func hitURLs(hits []core.PageInfo) []string {
	urls := make([]string, 0, len(hits))
	for _, h := range hits {
		urls = append(urls, h.URL)
	}
	sort.Strings(urls)
	return urls
}

func TestEndToEndImportExport(t *testing.T) {
	c, _, cl := newTestServer(t)
	cl.Register(1, "alice")
	p := c.Page(c.LeafPages[c.Leaves()[0].ID][0])
	src := `<!DOCTYPE NETSCAPE-Bookmark-file-1>
<DL><p>
    <DT><H3>Research</H3>
    <DL><p>
        <DT><A HREF="` + p.URL + `" ADD_DATE="958800000">Seed</A>
    </DL><p>
</DL><p>`
	n, err := cl.ImportBookmarks(1, strings.NewReader(src))
	if err != nil || n != 1 {
		t.Fatalf("Import: n=%d err=%v", n, err)
	}
	out, err := cl.ExportBookmarks(1)
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	if !strings.Contains(out, p.URL) || !strings.Contains(out, "Research") {
		t.Fatal("export incomplete")
	}
}

func TestValidationErrors(t *testing.T) {
	_, _, cl := newTestServer(t)
	if err := cl.Register(0, ""); err == nil {
		t.Fatal("bad register accepted")
	}
	if err := cl.Visit(0, "", "", tBase, ""); err == nil {
		t.Fatal("bad visit accepted")
	}
	if err := cl.Bookmark(1, "", "", tBase); err == nil {
		t.Fatal("bad bookmark accepted")
	}
	if _, err := cl.Search(1, "", 5); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := cl.Trails(0, "", 5); err == nil {
		t.Fatal("bad trails request accepted")
	}
	if err := cl.Correct(1, "http://never-seen.example/", "/x"); err == nil {
		t.Fatal("correct on unknown page accepted")
	}
}

// TestEndToEndMetricsObserveTraffic drives real API traffic and asserts
// the /metrics scrape moves with it: per-endpoint request counters and
// latency histogram samples, plus the engine gauges, all over HTTP.
func TestEndToEndMetricsObserveTraffic(t *testing.T) {
	c, e, cl := newTestServer(t)
	if err := cl.Register(1, "alice"); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, pid := range c.LeafPages[c.Leaves()[0].ID] {
		p := c.Page(pid)
		if p.Front {
			continue
		}
		if err := cl.Visit(1, p.URL, "", tBase, "community"); err != nil {
			t.Fatal(err)
		}
		n++
		if n == 5 {
			break
		}
	}
	e.DrainBackground()
	if _, err := cl.Status(); err != nil {
		t.Fatal(err)
	}

	body, err := cl.Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, want := range []string{
		`memex_http_requests_total{endpoint="POST /api/event"} 5`,
		`memex_http_request_duration_seconds_count{endpoint="POST /api/event"} 5`,
		`memex_http_request_duration_seconds_bucket{endpoint="POST /api/event",le="+Inf"} 5`,
		`memex_http_requests_total{endpoint="POST /api/user"} 1`,
		"memex_engine_visits_total 5",
		"memex_engine_queue_depth 0",
		"memex_version_watermark",
		"memex_cache_hit_ratio",
		"memex_http_in_flight",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics scrape missing %q", want)
		}
	}
}

// gatedSource blocks every Lookup until the gate closes, so the
// background analyzers wedge and the event queue backs up on demand.
type gatedSource struct {
	inner core.PageSource
	gate  chan struct{}
}

func (s gatedSource) Lookup(url string) (core.Content, bool) {
	<-s.gate
	return s.inner.Lookup(url)
}

// TestEndToEndShedUnderSaturatingBurst is the acceptance test for
// admission control: with the analyzers wedged, a saturating burst of
// ingest must be answered with early 503s once the publish pipeline's
// queue crosses the shed threshold — not queued unboundedly and then
// dropped silently.
func TestEndToEndShedUnderSaturatingBurst(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 9, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 15})
	gate := make(chan struct{})
	e, err := core.Open(core.Config{
		Dir:       t.TempDir(),
		Source:    gatedSource{corpusSource{c}, gate},
		KV:        kvstore.Options{Sync: kvstore.SyncNever},
		QueueSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewWith(e, server.Config{ShedQueueFraction: 0.5}))
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	t.Cleanup(func() {
		release()
		ts.Close()
		e.Close()
	})
	cl := client.New(ts.URL)
	if err := cl.Register(1, "alice"); err != nil {
		t.Fatal(err)
	}

	// Saturating burst: the two analyzer workers are wedged in Lookup, so
	// every accepted event stays queued; depth crosses 0.5×16 = 8 and the
	// server must start refusing.
	var accepted, shed int
	var pages []*webcorpus.Page
	for _, pid := range c.LeafPages[c.Leaves()[0].ID] {
		pages = append(pages, c.Page(pid))
	}
	for i := 0; i < 40; i++ {
		p := pages[i%len(pages)]
		err := cl.Visit(1, p.URL, "", tBase.Add(time.Duration(i)*time.Second), "community")
		switch {
		case err == nil:
			accepted++
		case strings.Contains(err.Error(), "(503)"):
			shed++
		default:
			t.Fatalf("visit %d: unexpected error %v", i, err)
		}
	}
	if shed == 0 {
		t.Fatalf("saturating burst never shed: %d accepted, queue unbounded", accepted)
	}
	if accepted == 0 {
		t.Fatal("admission shed everything, including the under-threshold prefix")
	}

	// The shed burst is visible to operators: reason-labelled rejection
	// counters and dropped-event accounting come back over /metrics even
	// while the pipeline is still wedged.
	body, err := cl.Metrics()
	if err != nil {
		t.Fatalf("Metrics during overload: %v", err)
	}
	if !strings.Contains(body, `memex_http_rejected_total{endpoint="POST /api/event",reason="queue"} `+strconv.Itoa(shed)) {
		t.Fatalf("queue rejections (%d) not counted in scrape", shed)
	}

	// Unwedge and drain: the accepted prefix completes, nothing was lost
	// to the queue's silent drop-oldest path.
	release()
	e.DrainBackground()
	st, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsDropped != 0 {
		t.Fatalf("%d events silently dropped despite shedding", st.EventsDropped)
	}
	if st.Visits != int64(accepted) {
		t.Fatalf("Visits = %d, want the %d accepted", st.Visits, accepted)
	}
}

// TestEndToEndRateLimit429 exercises the per-client token bucket over
// HTTP: a burst beyond the bucket answers 429 with Retry-After while an
// ops scrape stays reachable.
func TestEndToEndRateLimit429(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 9, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 15})
	e, err := core.Open(core.Config{
		Dir:    t.TempDir(),
		Source: corpusSource{c},
		KV:     kvstore.Options{Sync: kvstore.SyncNever},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.NewWith(e, server.Config{RatePerSec: 0.001, Burst: 3}))
	t.Cleanup(func() {
		ts.Close()
		e.Close()
	})
	cl := client.New(ts.URL)

	var ok, limited int
	for i := 0; i < 10; i++ {
		_, err := cl.Themes()
		switch {
		case err == nil:
			ok++
		case strings.Contains(err.Error(), "(429)"):
			limited++
			// The typed error is the load harness's shed/lost oracle: it
			// must carry the status code and the Retry-After hint, not
			// just a matchable string.
			var ae *client.APIError
			if !errors.As(err, &ae) {
				t.Fatalf("429 is not an *APIError: %v", err)
			}
			if ae.Status != 429 || ae.RetryAfter == "" {
				t.Fatalf("APIError{Status: %d, RetryAfter: %q}, want 429 with a hint", ae.Status, ae.RetryAfter)
			}
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if ok != 3 || limited != 7 {
		t.Fatalf("ok/limited = %d/%d, want 3/7 (burst then dry)", ok, limited)
	}
	if _, err := cl.Metrics(); err != nil {
		t.Fatalf("ops endpoint throttled with the client: %v", err)
	}
}

func TestPrivacyOverHTTP(t *testing.T) {
	c, e, cl := newTestServer(t)
	cl.Register(1, "alice")
	cl.Register(2, "bob")
	var content []*webcorpus.Page
	for _, pid := range c.LeafPages[c.Leaves()[0].ID] {
		if p := c.Page(pid); !p.Front {
			content = append(content, p)
		}
	}
	cl.Visit(1, content[0].URL, "", tBase, "private")
	cl.Visit(1, content[1].URL, "", tBase, "off")
	e.DrainBackground()

	st, _ := cl.Status()
	if st.Visits != 1 {
		t.Fatalf("Visits = %d: off-mode visit recorded", st.Visits)
	}
	// Bob cannot find alice's private page.
	words := strings.Fields(content[0].Text)
	var q []string
	for _, w := range words {
		if strings.Contains(w, "_") {
			q = append(q, w)
			if len(q) == 3 {
				break
			}
		}
	}
	hits, _ := cl.Search(2, strings.Join(q, " "), 20)
	for _, h := range hits {
		if h.URL == content[0].URL {
			t.Fatal("private page visible to another user over HTTP")
		}
	}
}
