// Package client is the Go stand-in for the paper's browser applet: a thin
// typed wrapper over the server's HTTP/JSON API. Everything tunnels over
// plain HTTP (the paper's answer to firewalls and proxy restrictions).
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"memex/internal/core"
	"memex/internal/server"
	"memex/internal/themes"
)

// Client talks to one Memex server.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base (e.g. "http://localhost:8600").
func New(base string) *Client {
	return &Client{base: base, hc: &http.Client{Timeout: 30 * time.Second}}
}

// WithHTTPClient substitutes the transport (tests, custom timeouts).
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.hc = hc
	return c
}

func (c *Client) postJSON(path string, body any, out any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResp(resp, out)
}

func (c *Client) get(path string, q url.Values, out any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := c.hc.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeResp(resp, out)
}

// APIError is a non-2xx answer from the server, carrying the status
// code and the Retry-After header so callers (the load harness, retry
// loops) can tell a polite admission shed — 429/503 with a backoff
// hint — from a genuinely failed request without string-matching the
// message.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// RetryAfter is the Retry-After header, "" when absent. Admission
	// rejections always carry it; its absence on a 429/503 is an SLO
	// violation the load harness counts.
	RetryAfter string
	// Msg is the server's error-envelope message, "" when undecodable.
	Msg string
}

// Error preserves the historical formats ("memex: <msg> (<code>)" /
// "memex: HTTP <code>") that tests and tools already match on.
func (e *APIError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("memex: %s (%d)", e.Msg, e.Status)
	}
	return fmt.Sprintf("memex: HTTP %d", e.Status)
}

func decodeResp(resp *http.Response, out any) error {
	if resp.StatusCode != http.StatusOK {
		ae := &APIError{Status: resp.StatusCode, RetryAfter: resp.Header.Get("Retry-After")}
		var e server.ErrBody
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			ae.Msg = e.Error
		}
		return ae
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Register creates the user account.
func (c *Client) Register(id int64, name string) error {
	return c.postJSON("/api/user", server.UserReq{ID: id, Name: name}, nil)
}

// Visit reports a page view. privacy is "off", "private" or "community".
// The user id rides the query string as well as the body: the server's
// per-client rate limiter keys on the `user` param, and a write that
// only names its user in the JSON would be throttled by remote host —
// one NAT gateway's worth of users sharing a single bucket.
func (c *Client) Visit(user int64, pageURL, referrer string, at time.Time, privacy string) error {
	return c.postJSON(fmt.Sprintf("/api/event?user=%d", user), server.EventReq{
		User: user, URL: pageURL, Referrer: referrer, Time: at, Privacy: privacy,
	}, nil)
}

// Bookmark files a page into a folder.
func (c *Client) Bookmark(user int64, pageURL, folder string, at time.Time) error {
	return c.postJSON(fmt.Sprintf("/api/bookmark?user=%d", user), server.BookmarkReq{
		User: user, URL: pageURL, Folder: folder, Time: at,
	}, nil)
}

// Correct fixes a classifier guess (the folder-tab cut/paste).
func (c *Client) Correct(user int64, pageURL, folder string) error {
	return c.postJSON("/api/correct", server.CorrectReq{User: user, URL: pageURL, Folder: folder}, nil)
}

// ImportBookmarks uploads a Netscape bookmark file.
func (c *Client) ImportBookmarks(user int64, r io.Reader) (int, error) {
	resp, err := c.hc.Post(fmt.Sprintf("%s/api/folders/import?user=%d", c.base, user), "text/html", r)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out map[string]int
	if err := decodeResp(resp, &out); err != nil {
		return 0, err
	}
	return out["imported"], nil
}

// ExportBookmarks downloads the user's folder tree as Netscape HTML.
func (c *Client) ExportBookmarks(user int64) (string, error) {
	resp, err := c.hc.Get(fmt.Sprintf("%s/api/folders/export?user=%d", c.base, user))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("memex: HTTP %d", resp.StatusCode)
	}
	blob, err := io.ReadAll(resp.Body)
	return string(blob), err
}

// Search runs ranked full-text search.
func (c *Client) Search(user int64, query string, k int) ([]core.PageInfo, error) {
	var out []core.PageInfo
	err := c.get("/api/search", url.Values{
		"user": {strconv.FormatInt(user, 10)},
		"q":    {query},
		"k":    {strconv.Itoa(k)},
	}, &out)
	return out, err
}

// Trails replays the topical browsing context for a folder.
func (c *Client) Trails(user int64, folder string, k int) (core.TrailContext, error) {
	var out core.TrailContext
	err := c.get("/api/trails", url.Values{
		"user":   {strconv.FormatInt(user, 10)},
		"folder": {folder},
		"k":      {strconv.Itoa(k)},
	}, &out)
	return out, err
}

// Themes lists the community taxonomy.
func (c *Client) Themes() ([]core.ThemeInfo, error) {
	var out []core.ThemeInfo
	err := c.get("/api/themes", nil, &out)
	return out, err
}

// RebuildThemes triggers taxonomy consolidation and returns its stats.
func (c *Client) RebuildThemes() (themes.Stats, error) {
	var out themes.Stats
	resp, err := c.hc.Post(c.base+"/api/themes/rebuild", "application/json", nil)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	err = decodeResp(resp, &out)
	return out, err
}

// Recommend fetches collaborative recommendations; method "profile" (default)
// or "url" for the overlap baseline.
func (c *Client) Recommend(user int64, k int, method string) ([]core.PageInfo, error) {
	q := url.Values{
		"user": {strconv.FormatInt(user, 10)},
		"k":    {strconv.Itoa(k)},
	}
	if method != "" {
		q.Set("method", method)
	}
	var out []core.PageInfo
	err := c.get("/api/recommend", q, &out)
	return out, err
}

// Discover runs focused resource discovery for a folder.
func (c *Client) Discover(user int64, folder string, budget, k int) ([]core.PageInfo, error) {
	var out []core.PageInfo
	err := c.get("/api/discover", url.Values{
		"user":   {strconv.FormatInt(user, 10)},
		"folder": {folder},
		"budget": {strconv.Itoa(budget)},
		"k":      {strconv.Itoa(k)},
	}, &out)
	return out, err
}

// Profile fetches the user's theme-weight profile.
func (c *Client) Profile(user int64) (map[int]float64, error) {
	var out struct {
		User    int64           `json:"user"`
		Weights map[int]float64 `json:"weights"`
	}
	err := c.get("/api/profile", url.Values{"user": {strconv.FormatInt(user, 10)}}, &out)
	return out.Weights, err
}

// Usage fetches the user's browsing-time breakdown by topic folder (§1's
// "how is my ISP bill divided" question).
func (c *Client) Usage(user int64, since time.Time) ([]core.UsageSlice, error) {
	q := url.Values{"user": {strconv.FormatInt(user, 10)}}
	if !since.IsZero() {
		q.Set("since", since.Format(time.RFC3339))
	}
	var out []core.UsageSlice
	err := c.get("/api/usage", q, &out)
	return out, err
}

// Status fetches server statistics.
func (c *Client) Status() (core.Stats, error) {
	var out core.Stats
	err := c.get("/api/status", nil, &out)
	return out, err
}

// Metrics fetches the server's Prometheus text-format metrics page
// (per-endpoint latency histograms, admission-control shed counters,
// engine gauges) raw — scraping tools and tests parse it themselves.
func (c *Client) Metrics() (string, error) {
	resp, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("memex: HTTP %d", resp.StatusCode)
	}
	blob, err := io.ReadAll(resp.Body)
	return string(blob), err
}
