package classify

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func trainBasic(t *testing.T, opts Options) *Bayes {
	t.Helper()
	tr := NewTrainer(nil)
	music := []string{
		"symphony orchestra violin concerto classical composer",
		"opera soprano aria composer orchestra",
		"piano sonata classical violin chamber",
	}
	cooking := []string{
		"recipe pasta sauce garlic olive oil",
		"baking bread flour yeast oven recipe",
		"soup stock vegetables simmer recipe",
	}
	travel := []string{
		"flight hotel itinerary beach island visa",
		"train backpacking hostel mountains trail visa",
		"airline luggage passport hotel booking",
	}
	for _, d := range music {
		tr.Add("music", d)
	}
	for _, d := range cooking {
		tr.Add("cooking", d)
	}
	for _, d := range travel {
		tr.Add("travel", d)
	}
	m, err := tr.Train(opts)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m
}

func TestBayesBasic(t *testing.T) {
	m := trainBasic(t, Options{})
	cases := map[string]string{
		"violin concerto performed by the orchestra": "music",
		"a recipe with garlic and olive oil":         "cooking",
		"book a hotel and flight for the island":     "travel",
	}
	for doc, want := range cases {
		got, conf := m.ClassifyText(doc)
		if got != want {
			t.Errorf("ClassifyText(%q) = %q (conf %.3f), want %q", doc, got, conf, want)
		}
		if conf <= 1.0/3 {
			t.Errorf("confidence %v not above uniform", conf)
		}
	}
}

func TestPosteriorsSumToOne(t *testing.T) {
	m := trainBasic(t, Options{})
	post := m.Posteriors(map[string]int{"violin": 2, "recipe": 1})
	var sum float64
	for _, p := range post {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("posteriors sum to %v", sum)
	}
}

func TestTrainNeedsTwoClasses(t *testing.T) {
	tr := NewTrainer(nil)
	tr.Add("only", "some text here")
	if _, err := tr.Train(Options{}); err == nil {
		t.Fatal("training with one class accepted")
	}
}

func TestUnknownTermsIgnored(t *testing.T) {
	m := trainBasic(t, Options{})
	class, _ := m.Classify(map[string]int{"zzzzunseen": 5, "violin": 1})
	if class != "music" {
		t.Fatalf("unseen terms changed prediction: %q", class)
	}
}

func TestFeatureSelectionKeepsAccuracy(t *testing.T) {
	full := trainBasic(t, Options{})
	sel := trainBasic(t, Options{MaxFeatures: 10})
	if sel.FeatureCount() == 0 || sel.FeatureCount() > 10 {
		t.Fatalf("FeatureCount = %d", sel.FeatureCount())
	}
	for _, doc := range []string{
		"violin concerto orchestra",
		"recipe garlic sauce",
		"hotel flight visa",
	} {
		cf, _ := full.ClassifyText(doc)
		cs, _ := sel.ClassifyText(doc)
		if cf != cs {
			t.Errorf("feature selection changed %q: %q vs %q", doc, cf, cs)
		}
	}
}

func TestClassIndex(t *testing.T) {
	m := trainBasic(t, Options{})
	if m.ClassIndex("music") < 0 || m.ClassIndex("absent") != -1 {
		t.Fatal("ClassIndex wrong")
	}
}

// synthCorpus builds a two-topic hypertext corpus where text alone is weak
// (front pages share most vocabulary) but links and folders carry signal.
func synthCorpus(rng *rand.Rand, n int) (docs []Doc, truth map[int64]string) {
	truth = map[int64]string{}
	shared := []string{"home", "welcome", "links", "index", "contact", "about"}
	topicTerms := map[string][]string{
		"A": {"alpha", "anchor", "argon"},
		"B": {"beta", "birch", "boron"},
	}
	classes := []string{"A", "B"}
	for i := 0; i < n; i++ {
		class := classes[i%2]
		tf := map[string]int{}
		// Mostly shared boilerplate…
		for j := 0; j < 8; j++ {
			tf[shared[rng.Intn(len(shared))]]++
		}
		// …a whisper of topical text.
		if rng.Float64() < 0.4 {
			terms := topicTerms[class]
			tf[terms[rng.Intn(len(terms))]]++
		}
		d := Doc{ID: int64(i), TF: tf}
		truth[d.ID] = class
		docs = append(docs, d)
	}
	// Links: mostly intra-class.
	for i := range docs {
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			sameClass := truth[docs[i].ID] == truth[docs[j].ID]
			if sameClass || rng.Float64() < 0.15 {
				docs[i].Neighbors = append(docs[i].Neighbors, docs[j].ID)
			}
		}
	}
	// Folders: pure per class.
	for i := range docs {
		if rng.Float64() < 0.5 {
			docs[i].Folder = "folder-" + truth[docs[i].ID]
		}
	}
	return docs, truth
}

func TestHypertextBeatsTextOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	docs, truth := synthCorpus(rng, 400)

	// Label 30% for training; classify the rest.
	tr := NewTrainer(nil)
	test := make([]Doc, 0, len(docs))
	testTruth := map[int64]string{}
	for i := range docs {
		if i%10 < 3 {
			docs[i].Label = truth[docs[i].ID]
			tr.AddCounts(docs[i].Label, docs[i].TF)
		} else {
			testTruth[docs[i].ID] = truth[docs[i].ID]
		}
		test = append(test, docs[i])
	}
	model, err := tr.Train(Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Text-only.
	textPred := map[int64]string{}
	for i := range test {
		if test[i].Label != "" {
			continue
		}
		c, _ := model.Classify(test[i].TF)
		textPred[test[i].ID] = c
	}
	textAcc := Accuracy(textPred, testTruth)

	// Full hypertext model.
	ht := NewHypertext(model, HypertextOptions{})
	fullPred := ht.ClassifyGraph(test)
	fullAcc := Accuracy(fullPred, testTruth)

	t.Logf("text-only=%.3f full=%.3f", textAcc, fullAcc)
	if fullAcc <= textAcc {
		t.Fatalf("hypertext model (%.3f) did not beat text-only (%.3f)", fullAcc, textAcc)
	}
	if fullAcc < 0.75 {
		t.Fatalf("full model accuracy %.3f below expected band", fullAcc)
	}
}

func TestAblationsOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	docs, truth := synthCorpus(rng, 400)
	tr := NewTrainer(nil)
	test := make([]Doc, 0, len(docs))
	testTruth := map[int64]string{}
	for i := range docs {
		if i%10 < 3 {
			docs[i].Label = truth[docs[i].ID]
			tr.AddCounts(docs[i].Label, docs[i].TF)
		} else {
			testTruth[docs[i].ID] = truth[docs[i].ID]
		}
		test = append(test, docs[i])
	}
	model, _ := tr.Train(Options{})

	run := func(opts HypertextOptions) float64 {
		ht := NewHypertext(model, opts)
		return Accuracy(ht.ClassifyGraph(test), testTruth)
	}
	textOnly := run(HypertextOptions{DisableLinks: true, DisableFolders: true})
	full := run(HypertextOptions{})
	if full <= textOnly {
		t.Fatalf("full (%v) <= textOnly (%v)", full, textOnly)
	}
}

func TestLabelledDocsClamped(t *testing.T) {
	m := trainBasic(t, Options{})
	ht := NewHypertext(m, HypertextOptions{})
	docs := []Doc{
		{ID: 1, Label: "travel", TF: map[string]int{"violin": 10}}, // label wins over text
		{ID: 2, TF: map[string]int{"violin": 3}, Neighbors: []int64{1}},
	}
	pred := ht.ClassifyGraph(docs)
	if pred[1] != "travel" {
		t.Fatalf("labelled doc reassigned to %q", pred[1])
	}
}

func TestAccuracyEdgeCases(t *testing.T) {
	if Accuracy(nil, nil) != 0 {
		t.Fatal("Accuracy(nil,nil) != 0")
	}
	truth := map[int64]string{1: "a", 2: "b"}
	if got := Accuracy(map[int64]string{1: "a"}, truth); got != 0.5 {
		t.Fatalf("Accuracy = %v", got)
	}
}

func BenchmarkClassify(b *testing.B) {
	tr := NewTrainer(nil)
	rng := rand.New(rand.NewSource(1))
	for c := 0; c < 20; c++ {
		for d := 0; d < 30; d++ {
			tf := map[string]int{}
			for w := 0; w < 50; w++ {
				tf[fmt.Sprintf("w%d_%d", c, rng.Intn(100))]++
			}
			tr.AddCounts(fmt.Sprintf("class%d", c), tf)
		}
	}
	m, _ := tr.Train(Options{MaxFeatures: 500})
	doc := map[string]int{}
	for w := 0; w < 30; w++ {
		doc[fmt.Sprintf("w5_%d", w)]++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Classify(doc)
	}
}
