package classify

import (
	"math"
)

// Doc is one node in the hypertext corpus handed to the combined
// classifier: its term counts, its link neighbourhood, the folder other
// surfers filed it under (if any), and its known label (empty for the
// documents to classify).
type Doc struct {
	ID        int64
	TF        map[string]int
	Neighbors []int64
	Folder    string
	Label     string
}

// HypertextOptions tunes the combined model.
type HypertextOptions struct {
	// LinkWeight λ_L scales hyperlink neighbour evidence (default 2.0;
	// ablation A3 sweeps this).
	LinkWeight float64
	// FolderWeight λ_F scales folder co-placement evidence (default 1.5).
	FolderWeight float64
	// Iterations bounds the relaxation-labelling rounds (default 8).
	Iterations int
	// Smoothing for folder priors (default 0.5).
	Smoothing float64
	// DisableLinks / DisableFolders turn off one evidence source; used by
	// the E1 ablations (text+link, text+folder, full).
	DisableLinks   bool
	DisableFolders bool
}

func (o *HypertextOptions) defaults() {
	if o.LinkWeight == 0 {
		o.LinkWeight = 2.0
	}
	if o.FolderWeight == 0 {
		o.FolderWeight = 1.5
	}
	if o.Iterations == 0 {
		o.Iterations = 8
	}
	if o.Smoothing == 0 {
		o.Smoothing = 0.5
	}
}

// Hypertext combines a trained text model with link and folder evidence.
type Hypertext struct {
	Text *Bayes
	Opts HypertextOptions
	// folderPrior[folder][classIdx] = log P(c|f), built from labelled docs.
	folderPrior map[string][]float64
}

// NewHypertext wraps a trained text model.
func NewHypertext(text *Bayes, opts HypertextOptions) *Hypertext {
	opts.defaults()
	return &Hypertext{Text: text, Opts: opts}
}

// ClassifyGraph labels every unlabelled document in docs using relaxation
// labelling: class distributions are initialized from the text model (and
// clamped for labelled documents), then iteratively updated so that each
// document's distribution is consistent with its neighbours' distributions
// and its folder's label profile. Returns doc id → predicted class.
func (h *Hypertext) ClassifyGraph(docs []Doc) map[int64]string {
	nC := len(h.Text.Classes)
	byID := make(map[int64]int, len(docs))
	for i := range docs {
		byID[docs[i].ID] = i
	}

	// Folder priors from labelled docs.
	h.folderPrior = map[string][]float64{}
	if !h.Opts.DisableFolders {
		counts := map[string][]float64{}
		for i := range docs {
			d := &docs[i]
			if d.Label == "" || d.Folder == "" {
				continue
			}
			ci := h.Text.ClassIndex(d.Label)
			if ci < 0 {
				continue
			}
			cs := counts[d.Folder]
			if cs == nil {
				cs = make([]float64, nC)
				counts[d.Folder] = cs
			}
			cs[ci]++
		}
		for f, cs := range counts {
			lp := make([]float64, nC)
			var total float64
			for _, c := range cs {
				total += c
			}
			for ci := range cs {
				lp[ci] = math.Log((cs[ci] + h.Opts.Smoothing) / (total + h.Opts.Smoothing*float64(nC)))
			}
			h.folderPrior[f] = lp
		}
	}

	// Base text scores (log) per doc; labelled docs get a clamped
	// distribution.
	base := make([][]float64, len(docs))
	dist := make([][]float64, len(docs))
	for i := range docs {
		d := &docs[i]
		if d.Label != "" {
			ci := h.Text.ClassIndex(d.Label)
			p := make([]float64, nC)
			for j := range p {
				p[j] = 1e-6
			}
			if ci >= 0 {
				p[ci] = 1
			}
			dist[i] = normalize(p)
			continue
		}
		logs := h.Text.LogScores(d.TF)
		if !h.Opts.DisableFolders && d.Folder != "" {
			if fp, ok := h.folderPrior[d.Folder]; ok {
				for ci := range logs {
					logs[ci] += h.Opts.FolderWeight * fp[ci]
				}
			}
		}
		base[i] = logs
		dist[i] = softmax(logs)
	}

	// Relaxation labelling.
	if !h.Opts.DisableLinks {
		for it := 0; it < h.Opts.Iterations; it++ {
			next := make([][]float64, len(docs))
			changed := false
			for i := range docs {
				d := &docs[i]
				if d.Label != "" {
					next[i] = dist[i]
					continue
				}
				logs := append([]float64(nil), base[i]...)
				for _, nb := range d.Neighbors {
					j, ok := byID[nb]
					if !ok {
						continue
					}
					for ci := range logs {
						// log of neighbour's belief, floored to avoid -inf.
						logs[ci] += h.Opts.LinkWeight * math.Log(dist[j][ci]+1e-9)
					}
				}
				nd := softmax(logs)
				next[i] = nd
				if !changed {
					for ci := range nd {
						if math.Abs(nd[ci]-dist[i][ci]) > 1e-4 {
							changed = true
							break
						}
					}
				}
			}
			dist = next
			if !changed {
				break
			}
		}
	}

	out := make(map[int64]string, len(docs))
	for i := range docs {
		d := &docs[i]
		if d.Label != "" {
			out[d.ID] = d.Label
			continue
		}
		best := 0
		for ci, p := range dist[i] {
			if p > dist[i][best] {
				best = ci
			}
		}
		out[d.ID] = h.Text.Classes[best]
	}
	return out
}

func normalize(p []float64) []float64 {
	var s float64
	for _, v := range p {
		s += v
	}
	if s == 0 {
		for i := range p {
			p[i] = 1 / float64(len(p))
		}
		return p
	}
	for i := range p {
		p[i] /= s
	}
	return p
}

// Accuracy computes the fraction of docs in truth whose predicted label
// matches; docs missing from pred count as wrong.
func Accuracy(pred map[int64]string, truth map[int64]string) float64 {
	if len(truth) == 0 {
		return 0
	}
	correct := 0
	for id, want := range truth {
		if pred[id] == want {
			correct++
		}
	}
	return float64(correct) / float64(len(truth))
}
