// Package classify implements Memex's two document classifiers:
//
//   - Bayes: the multinomial naive Bayes text classifier of Chakrabarti et
//     al. (VLDB Journal 1998) with Fisher-index feature selection — the
//     paper's "text-only learner" baseline, which achieves roughly 40%
//     accuracy on sparse bookmarked front pages.
//   - Hypertext: the new Memex model combining text likelihood with
//     hyperlink neighbour evidence (iterative relaxation labelling) and
//     folder co-placement priors, lifting accuracy to roughly 80%
//     (experiment E1 regenerates this comparison).
package classify

import (
	"fmt"
	"math"
	"sort"

	"memex/internal/text"
)

// Trainer accumulates labelled documents for naive Bayes training.
type Trainer struct {
	dict    *text.Dict
	classes map[string]*classAcc
}

type classAcc struct {
	docs       int
	termCounts map[int32]int
	totalTerms int
}

// NewTrainer returns an empty trainer over the shared dictionary (nil for a
// private one).
func NewTrainer(dict *text.Dict) *Trainer {
	if dict == nil {
		dict = text.NewDict()
	}
	return &Trainer{dict: dict, classes: map[string]*classAcc{}}
}

// Add records one labelled document given as raw text.
func (tr *Trainer) Add(class, content string) {
	tr.AddCounts(class, text.TermCounts(content))
}

// AddCounts records one labelled document given as term counts.
func (tr *Trainer) AddCounts(class string, tf map[string]int) {
	acc := tr.classes[class]
	if acc == nil {
		acc = &classAcc{termCounts: map[int32]int{}}
		tr.classes[class] = acc
	}
	acc.docs++
	for term, n := range tf {
		id := tr.dict.ID(term)
		acc.termCounts[id] += n
		acc.totalTerms += n
	}
}

// Options tunes training.
type Options struct {
	// MaxFeatures keeps only the top-k terms by Fisher discriminant score;
	// 0 keeps the whole vocabulary.
	MaxFeatures int
	// Smoothing is the Laplace/Lidstone constant (default 0.1).
	Smoothing float64
}

// Bayes is a trained multinomial naive Bayes model.
type Bayes struct {
	dict     *text.Dict
	Classes  []string
	classIdx map[string]int
	logPrior []float64
	// termLog[c] maps selected term id → log P(t|c); absent terms use
	// defaultLog[c].
	termLog    []map[int32]float64
	defaultLog []float64
	features   map[int32]bool // nil when no selection
}

// Train builds the model from the accumulated documents.
func (tr *Trainer) Train(opts Options) (*Bayes, error) {
	if len(tr.classes) < 2 {
		return nil, fmt.Errorf("classify: need at least 2 classes, have %d", len(tr.classes))
	}
	if opts.Smoothing <= 0 {
		opts.Smoothing = 0.1
	}
	classes := make([]string, 0, len(tr.classes))
	for c := range tr.classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)

	var features map[int32]bool
	if opts.MaxFeatures > 0 {
		features = tr.selectFeatures(classes, opts.MaxFeatures)
	}

	m := &Bayes{
		dict:       tr.dict,
		Classes:    classes,
		classIdx:   map[string]int{},
		logPrior:   make([]float64, len(classes)),
		termLog:    make([]map[int32]float64, len(classes)),
		defaultLog: make([]float64, len(classes)),
		features:   features,
	}
	totalDocs := 0
	for _, acc := range tr.classes {
		totalDocs += acc.docs
	}
	vocabSize := tr.dict.Size()
	for ci, c := range classes {
		m.classIdx[c] = ci
		acc := tr.classes[c]
		m.logPrior[ci] = math.Log(float64(acc.docs) / float64(totalDocs))
		tl := make(map[int32]float64, len(acc.termCounts))
		denom := float64(acc.totalTerms) + opts.Smoothing*float64(vocabSize)
		for id, n := range acc.termCounts {
			if features != nil && !features[id] {
				continue
			}
			tl[id] = math.Log((float64(n) + opts.Smoothing) / denom)
		}
		m.termLog[ci] = tl
		m.defaultLog[ci] = math.Log(opts.Smoothing / denom)
	}
	return m, nil
}

// selectFeatures ranks terms by the Fisher discriminant: the ratio of
// between-class variance of the term's per-class rate to its within-class
// spread, as in the TAPER system the paper builds on.
func (tr *Trainer) selectFeatures(classes []string, k int) map[int32]bool {
	type scored struct {
		id    int32
		term  string
		score float64
	}
	rates := make([]map[int32]float64, len(classes))
	for i, c := range classes {
		acc := tr.classes[c]
		r := make(map[int32]float64, len(acc.termCounts))
		if acc.totalTerms > 0 {
			for id, n := range acc.termCounts {
				r[id] = float64(n) / float64(acc.totalTerms)
			}
		}
		rates[i] = r
	}
	ids := map[int32]bool{}
	for _, r := range rates {
		for id := range r {
			ids[id] = true
		}
	}
	var all []scored
	for id := range ids {
		var mean float64
		for _, r := range rates {
			mean += r[id]
		}
		mean /= float64(len(rates))
		var between, within float64
		for _, r := range rates {
			d := r[id] - mean
			between += d * d
			// Multinomial rate variance proxy: p(1-p).
			within += r[id] * (1 - r[id])
		}
		if within < 1e-12 {
			within = 1e-12
		}
		all = append(all, scored{id, tr.dict.Term(id), between / within})
	}
	// Ties break on the term string, not the id: dictionary ids are
	// assigned in process-local order, so an id tiebreak would select a
	// different feature set after a restart replays the archive in a
	// different order, and two lives of the same server must train
	// identical models from identical archives. (Terms are resolved once
	// above — the comparator must not take the dict lock O(n log n) times.)
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].term < all[j].term
	})
	if k > len(all) {
		k = len(all)
	}
	out := make(map[int32]bool, k)
	for _, s := range all[:k] {
		out[s.id] = true
	}
	return out
}

// LogScores returns per-class unnormalized log posteriors for the document.
// Terms are accumulated in sorted order so the float sums — and therefore
// every downstream posterior, classification and crawl-frontier priority —
// are a pure function of (model, document), not of map iteration order.
func (m *Bayes) LogScores(tf map[string]int) []float64 {
	terms := make([]string, 0, len(tf))
	for term := range tf {
		terms = append(terms, term)
	}
	sort.Strings(terms)
	scores := append([]float64(nil), m.logPrior...)
	for _, term := range terms {
		id, ok := m.dict.Lookup(term)
		if !ok {
			continue
		}
		if m.features != nil && !m.features[id] {
			continue
		}
		n := tf[term]
		for ci := range scores {
			lp, ok := m.termLog[ci][id]
			if !ok {
				lp = m.defaultLog[ci]
			}
			scores[ci] += float64(n) * lp
		}
	}
	return scores
}

// Posteriors returns normalized class probabilities for the document.
func (m *Bayes) Posteriors(tf map[string]int) []float64 {
	return softmax(m.LogScores(tf))
}

// Classify returns the most probable class and its posterior probability.
func (m *Bayes) Classify(tf map[string]int) (string, float64) {
	post := m.Posteriors(tf)
	best := 0
	for i, p := range post {
		if p > post[best] {
			best = i
		}
	}
	return m.Classes[best], post[best]
}

// ClassifyText is Classify over raw text.
func (m *Bayes) ClassifyText(content string) (string, float64) {
	return m.Classify(text.TermCounts(content))
}

// ClassIndex returns the dense index of a class label, or -1.
func (m *Bayes) ClassIndex(class string) int {
	if i, ok := m.classIdx[class]; ok {
		return i
	}
	return -1
}

// FeatureCount reports the number of selected features (0 = all).
func (m *Bayes) FeatureCount() int { return len(m.features) }

// softmax converts log scores to a probability distribution, guarding
// against underflow by subtracting the max.
func softmax(logs []float64) []float64 {
	max := math.Inf(-1)
	for _, l := range logs {
		if l > max {
			max = l
		}
	}
	out := make([]float64, len(logs))
	var sum float64
	for i, l := range logs {
		out[i] = math.Exp(l - max)
		sum += out[i]
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
