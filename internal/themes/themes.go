// Package themes implements Memex's central mining contribution (Figure 4):
// discovering a topic taxonomy tailored to a specific community from the
// document-folder associations of its users.
//
// Users organise overlapping interests under idiosyncratic folder trees.
// The consolidation algorithm:
//
//  1. represents every user folder as the TF-IDF centroid of its documents;
//  2. COARSENS by agglomeratively merging folder centroids whose cosine
//     similarity exceeds MergeSim — "capture common factors in people's
//     interests when they can" — so ten users' /music folders become one
//     community theme;
//  3. REFINES by splitting any theme whose document population is large
//     and internally dispersed — "refining topics where needed" — so a hot
//     theme the community is deeply invested in gains sub-themes;
//  4. labels each theme from contributors' folder names and the strongest
//     centroid terms.
//
// The result is a Taxonomy of themes with document assignments and
// per-user contribution maps; profiles over this taxonomy feed
// collaborative recommendation (package recommend, experiment E7), and the
// community-fit comparison against a fixed universal taxonomy is
// experiment E4.
package themes

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"memex/internal/cluster"
	"memex/internal/text"
)

// DocVec is one document with its (unit-normalized, typically TF-IDF) vector.
type DocVec struct {
	ID  int64
	Vec text.Vector
}

// UserFolder is one user's folder with the documents it holds.
type UserFolder struct {
	User int64
	Path string
	Docs []DocVec
}

// Options tunes discovery. Zero values take the documented defaults.
type Options struct {
	// MergeSim is the cosine threshold above which folders coalesce into a
	// theme (default 0.5; DESIGN.md §4.5).
	MergeSim float64
	// SplitDispersion triggers refinement when a theme's dispersion
	// (1 − mean member-to-centroid cosine) exceeds it (default 0.3: a tight
	// single-topic theme sits near 0.1; an orthogonal two-topic mixture
	// near 0.4).
	SplitDispersion float64
	// MinSplitDocs is the minimum population for refinement (default 40).
	MinSplitDocs int
	// MaxDepth bounds recursive refinement (default 2 levels of children).
	MaxDepth int
	// Seed drives the split initialisation.
	Seed int64
	// SignatureTerms is the digest length per theme (default 8).
	SignatureTerms int
}

func (o *Options) defaults() {
	if o.MergeSim == 0 {
		o.MergeSim = 0.5
	}
	if o.SplitDispersion == 0 {
		o.SplitDispersion = 0.3
	}
	if o.MinSplitDocs == 0 {
		o.MinSplitDocs = 40
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 2
	}
	if o.SignatureTerms == 0 {
		o.SignatureTerms = 8
	}
}

// Theme is one node of the community taxonomy.
type Theme struct {
	ID       int
	Parent   int // -1 for roots
	Children []int
	Label    string
	// Signature holds the strongest centroid terms.
	Signature []string
	Centroid  text.Vector
	// Docs are the documents assigned to this theme (for inner themes,
	// docs not claimed by any child).
	Docs []int64
	// Contributors maps user id → the folder paths merged into this theme.
	Contributors map[int64][]string
}

// Size returns the number of docs in the theme subtree.
func (t *Taxonomy) Size(id int) int {
	th := &t.Themes[id]
	n := len(th.Docs)
	for _, c := range th.Children {
		n += t.Size(c)
	}
	return n
}

// Taxonomy is the discovered community topic structure.
type Taxonomy struct {
	Themes []Theme
	Roots  []int
	// DocTheme maps document id → owning theme id.
	DocTheme map[int64]int
}

// Discover runs the consolidation over all users' folders.
func Discover(userFolders []UserFolder, dict *text.Dict, opts Options) *Taxonomy {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	tax := &Taxonomy{DocTheme: map[int64]int{}}

	// 1. Folder centroids.
	type folderInfo struct {
		uf       UserFolder
		centroid text.Vector
	}
	infos := make([]folderInfo, 0, len(userFolders))
	items := make([]cluster.Item, 0, len(userFolders))
	for _, uf := range userFolders {
		if len(uf.Docs) == 0 {
			continue
		}
		vecs := make([]text.Vector, len(uf.Docs))
		for i, d := range uf.Docs {
			vecs[i] = d.Vec
		}
		cen := text.Centroid(vecs).Normalize()
		items = append(items, cluster.Item{ID: int64(len(infos)), Vec: cen})
		infos = append(infos, folderInfo{uf: uf, centroid: cen})
	}
	if len(infos) == 0 {
		return tax
	}

	// 2. Coarsen: merge folder centroids above MergeSim.
	merged := cluster.HAC(items, 1, opts.MergeSim)

	for _, cl := range merged {
		id := len(tax.Themes)
		th := Theme{
			ID:           id,
			Parent:       -1,
			Contributors: map[int64][]string{},
		}
		var docs []DocVec
		nameCount := map[string]int{}
		for _, it := range cl.Items {
			info := infos[it.ID]
			th.Contributors[info.uf.User] = append(th.Contributors[info.uf.User], info.uf.Path)
			docs = append(docs, info.uf.Docs...)
			nameCount[baseName(info.uf.Path)]++
		}
		th.Label = majorityName(nameCount)
		vecs := make([]text.Vector, len(docs))
		for i, d := range docs {
			vecs[i] = d.Vec
		}
		th.Centroid = text.Centroid(vecs).Normalize()
		th.Signature = topTerms(dict, th.Centroid, opts.SignatureTerms)
		for _, d := range docs {
			th.Docs = append(th.Docs, d.ID)
			tax.DocTheme[d.ID] = id
		}
		tax.Themes = append(tax.Themes, th)
		tax.Roots = append(tax.Roots, id)

		// 3. Refine recursively.
		tax.refine(id, docs, dict, opts, rng, 1)
	}
	sort.Slice(tax.Roots, func(i, j int) bool {
		return tax.Size(tax.Roots[i]) > tax.Size(tax.Roots[j])
	})
	return tax
}

// refine splits theme id when its population is large and dispersed,
// attaching children and moving documents down.
func (tax *Taxonomy) refine(id int, docs []DocVec, dict *text.Dict, opts Options, rng *rand.Rand, depth int) {
	if depth > opts.MaxDepth || len(docs) < opts.MinSplitDocs {
		return
	}
	items := make([]cluster.Item, len(docs))
	byID := make(map[int64]DocVec, len(docs))
	for i, d := range docs {
		items[i] = cluster.Item{ID: d.ID, Vec: d.Vec}
		byID[d.ID] = d
	}
	parent := &tax.Themes[id]
	probe := &cluster.Cluster{Items: items, Centroid: parent.Centroid}
	if probe.Dispersion() <= opts.SplitDispersion {
		return
	}
	parts := cluster.KMeans2(items, rng, 12)
	if parts == nil {
		return
	}
	// Reject degenerate splits (one side tiny).
	minSide := len(docs) / 10
	if minSide < 3 {
		minSide = 3
	}
	if parts[0].Size() < minSide || parts[1].Size() < minSide {
		return
	}
	parent.Docs = nil // children own the docs now
	for _, part := range parts {
		cid := len(tax.Themes)
		child := Theme{
			ID:           cid,
			Parent:       id,
			Contributors: map[int64][]string{},
			Centroid:     part.Centroid.Normalize(),
		}
		child.Signature = topTerms(dict, child.Centroid, opts.SignatureTerms)
		var childDocs []DocVec
		for _, it := range part.Items {
			child.Docs = append(child.Docs, it.ID)
			tax.DocTheme[it.ID] = cid
			childDocs = append(childDocs, byID[it.ID])
		}
		if len(child.Signature) > 0 {
			child.Label = tax.Themes[id].Label + "/" + child.Signature[0]
		} else {
			child.Label = fmt.Sprintf("%s/%d", tax.Themes[id].Label, cid)
		}
		tax.Themes = append(tax.Themes, child)
		tax.Themes[id].Children = append(tax.Themes[id].Children, cid)
		tax.refine(cid, childDocs, dict, opts, rng, depth+1)
	}
}

// Assign returns the best theme for a new document vector: the theme
// (leaf-first) whose centroid is most similar. ok=false for an empty
// taxonomy.
func (tax *Taxonomy) Assign(v text.Vector) (int, bool) {
	best, bestSim := -1, -1.0
	for i := range tax.Themes {
		th := &tax.Themes[i]
		if len(th.Children) > 0 {
			continue // prefer leaves; inner themes are summaries
		}
		if s := text.Cosine(v, th.Centroid); s > bestSim {
			best, bestSim = i, s
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Fit measures how well the taxonomy describes a document set: the mean
// cosine between each document and its assigned theme centroid (higher is
// better). Used by experiment E4 against the universal-taxonomy baseline.
func (tax *Taxonomy) Fit(docs []DocVec) float64 {
	if len(docs) == 0 {
		return 0
	}
	var sum float64
	for _, d := range docs {
		id, ok := tax.Assign(d.Vec)
		if !ok {
			continue
		}
		sum += text.Cosine(d.Vec, tax.Themes[id].Centroid)
	}
	return sum / float64(len(docs))
}

// Leaves returns ids of leaf themes.
func (tax *Taxonomy) Leaves() []int {
	var out []int
	for i := range tax.Themes {
		if len(tax.Themes[i].Children) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Stats summarises the taxonomy for reporting.
type Stats struct {
	Themes   int
	Roots    int
	Leaves   int
	MaxDepth int
	Refined  int // themes that gained children
	MergedIn int // folders consolidated
}

// Stats computes summary statistics.
func (tax *Taxonomy) Stats() Stats {
	st := Stats{Themes: len(tax.Themes), Roots: len(tax.Roots)}
	for i := range tax.Themes {
		if len(tax.Themes[i].Children) == 0 {
			st.Leaves++
		} else {
			st.Refined++
		}
		for uid := range tax.Themes[i].Contributors {
			st.MergedIn += len(tax.Themes[i].Contributors[uid])
		}
	}
	var depth func(id, d int) int
	depth = func(id, d int) int {
		max := d
		for _, c := range tax.Themes[id].Children {
			if dd := depth(c, d+1); dd > max {
				max = dd
			}
		}
		return max
	}
	for _, r := range tax.Roots {
		if d := depth(r, 1); d > st.MaxDepth {
			st.MaxDepth = d
		}
	}
	return st
}

func baseName(path string) string {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	if len(parts) == 0 {
		return path
	}
	name := parts[len(parts)-1]
	name = strings.TrimPrefix(name, "my-")
	return name
}

func majorityName(counts map[string]int) string {
	best, bestN := "", -1
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if counts[n] > bestN {
			best, bestN = n, counts[n]
		}
	}
	return best
}

func topTerms(dict *text.Dict, v text.Vector, k int) []string {
	ids, _ := v.Top(k)
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if t := dict.Term(id); t != "" {
			out = append(out, t)
		}
	}
	return out
}
