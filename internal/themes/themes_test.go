package themes

import (
	"fmt"
	"math/rand"
	"testing"

	"memex/internal/text"
)

// buildFolders fabricates a community: nUsers users, each with folders over
// some of nTopics topics. Topic t's docs use vocabulary "t<t>term<i>".
// Users name folders idiosyncratically; docsPerFolder docs each.
func buildFolders(rng *rand.Rand, d *text.Dict, nUsers, nTopics, docsPerFolder int) ([]UserFolder, map[int64]int) {
	var out []UserFolder
	docTopic := map[int64]int{}
	nextDoc := int64(1)
	for u := 1; u <= nUsers; u++ {
		// Each user covers 2 topics.
		t1 := rng.Intn(nTopics)
		t2 := (t1 + 1 + rng.Intn(nTopics-1)) % nTopics
		for _, topic := range []int{t1, t2} {
			name := fmt.Sprintf("/u%d-topic%d", u, topic)
			if u%2 == 0 {
				name = fmt.Sprintf("/stuff/topic%d", topic)
			}
			uf := UserFolder{User: int64(u), Path: name}
			for k := 0; k < docsPerFolder; k++ {
				tf := map[string]int{}
				for w := 0; w < 20; w++ {
					tf[fmt.Sprintf("t%dterm%d", topic, rng.Intn(15))]++
				}
				v := text.VectorFromCounts(d, tf).Normalize()
				uf.Docs = append(uf.Docs, DocVec{ID: nextDoc, Vec: v})
				docTopic[nextDoc] = topic
				nextDoc++
			}
			out = append(out, uf)
		}
	}
	return out, docTopic
}

func TestDiscoverCoarsensAcrossUsers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := text.NewDict()
	ufs, docTopic := buildFolders(rng, d, 12, 4, 6)
	tax := Discover(ufs, d, Options{Seed: 2})

	// Folders about the same topic from different users must merge: the
	// number of roots should be close to the number of topics, far below
	// the number of folders.
	if len(tax.Roots) > 8 {
		t.Fatalf("too little coarsening: %d roots from %d folders", len(tax.Roots), len(ufs))
	}
	if len(tax.Roots) < 2 {
		t.Fatalf("over-coarsened: %d roots", len(tax.Roots))
	}
	// Theme purity: docs in one theme should share a ground-truth topic.
	for _, th := range tax.Themes {
		if len(th.Docs) == 0 {
			continue
		}
		counts := map[int]int{}
		for _, id := range th.Docs {
			counts[docTopic[id]]++
		}
		best, total := 0, 0
		for _, n := range counts {
			total += n
			if n > best {
				best = n
			}
		}
		if p := float64(best) / float64(total); p < 0.9 {
			t.Fatalf("theme %d purity %.2f", th.ID, p)
		}
	}
	// Multi-user contribution.
	multi := false
	for _, r := range tax.Roots {
		if len(tax.Themes[r].Contributors) > 1 {
			multi = true
		}
	}
	if !multi {
		t.Fatal("no theme has contributions from multiple users")
	}
}

func TestDiscoverRefinesDispersedThemes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := text.NewDict()
	// One mega-folder per user mixing two distinct sub-vocabularies: the
	// merged theme is dispersed and must split.
	var ufs []UserFolder
	nextDoc := int64(1)
	for u := 1; u <= 6; u++ {
		uf := UserFolder{User: int64(u), Path: "/music"}
		for k := 0; k < 20; k++ {
			sub := k % 2
			tf := map[string]int{}
			for w := 0; w < 20; w++ {
				tf[fmt.Sprintf("sub%dword%d", sub, rng.Intn(12))]++
			}
			uf.Docs = append(uf.Docs, DocVec{ID: nextDoc, Vec: text.VectorFromCounts(d, tf).Normalize()})
			nextDoc++
		}
		ufs = append(ufs, uf)
	}
	tax := Discover(ufs, d, Options{Seed: 4, MinSplitDocs: 30})
	st := tax.Stats()
	if st.Refined == 0 {
		t.Fatalf("dispersed theme not refined: %+v", st)
	}
	// The split children should separate the sub-vocabularies.
	var kids []int
	for _, th := range tax.Themes {
		if th.Parent >= 0 {
			kids = append(kids, th.ID)
		}
	}
	if len(kids) < 2 {
		t.Fatalf("children = %v", kids)
	}
}

func TestTightThemeNotRefined(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := text.NewDict()
	var ufs []UserFolder
	nextDoc := int64(1)
	for u := 1; u <= 4; u++ {
		uf := UserFolder{User: int64(u), Path: "/cooking"}
		for k := 0; k < 25; k++ {
			tf := map[string]int{}
			for w := 0; w < 20; w++ {
				tf[fmt.Sprintf("cookword%d", rng.Intn(10))]++
			}
			uf.Docs = append(uf.Docs, DocVec{ID: nextDoc, Vec: text.VectorFromCounts(d, tf).Normalize()})
			nextDoc++
		}
		ufs = append(ufs, uf)
	}
	tax := Discover(ufs, d, Options{Seed: 6})
	if st := tax.Stats(); st.Refined != 0 {
		t.Fatalf("tight theme was refined: %+v", st)
	}
}

func TestAssignAndFit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := text.NewDict()
	ufs, docTopic := buildFolders(rng, d, 10, 3, 8)
	tax := Discover(ufs, d, Options{Seed: 8})

	// A fresh doc from topic 0 vocabulary must land in a theme whose docs
	// are predominantly topic 0.
	tf := map[string]int{}
	for w := 0; w < 20; w++ {
		tf[fmt.Sprintf("t0term%d", rng.Intn(15))]++
	}
	v := text.VectorFromCounts(d, tf).Normalize()
	id, ok := tax.Assign(v)
	if !ok {
		t.Fatal("Assign failed")
	}
	counts := map[int]int{}
	for _, doc := range tax.Themes[id].Docs {
		counts[docTopic[doc]]++
	}
	if counts[0] == 0 {
		t.Fatalf("assigned theme %d has no topic-0 docs: %v", id, counts)
	}

	var all []DocVec
	for _, uf := range ufs {
		all = append(all, uf.Docs...)
	}
	fit := tax.Fit(all)
	if fit < 0.5 {
		t.Fatalf("Fit = %v", fit)
	}
	if tax.Fit(nil) != 0 {
		t.Fatal("Fit(nil) != 0")
	}
}

func TestEmptyInputs(t *testing.T) {
	d := text.NewDict()
	tax := Discover(nil, d, Options{})
	if len(tax.Themes) != 0 {
		t.Fatal("themes from nothing")
	}
	if _, ok := tax.Assign(text.Vector{}); ok {
		t.Fatal("Assign on empty taxonomy returned ok")
	}
	// Folders with no docs are skipped.
	tax = Discover([]UserFolder{{User: 1, Path: "/empty"}}, d, Options{})
	if len(tax.Themes) != 0 {
		t.Fatal("empty folder produced a theme")
	}
}

func TestLabelsAndSignatures(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := text.NewDict()
	var ufs []UserFolder
	nextDoc := int64(1)
	// Three users agree on the name "cycling"; one calls it "bikes".
	for u := 1; u <= 4; u++ {
		name := "/cycling"
		if u == 4 {
			name = "/bikes"
		}
		uf := UserFolder{User: int64(u), Path: name}
		for k := 0; k < 5; k++ {
			tf := map[string]int{}
			for w := 0; w < 15; w++ {
				tf[fmt.Sprintf("cycleword%d", rng.Intn(8))]++
			}
			uf.Docs = append(uf.Docs, DocVec{ID: nextDoc, Vec: text.VectorFromCounts(d, tf).Normalize()})
			nextDoc++
		}
		ufs = append(ufs, uf)
	}
	tax := Discover(ufs, d, Options{Seed: 10})
	if len(tax.Roots) != 1 {
		t.Fatalf("roots = %d", len(tax.Roots))
	}
	th := tax.Themes[tax.Roots[0]]
	if th.Label != "cycling" {
		t.Fatalf("Label = %q, want majority name", th.Label)
	}
	if len(th.Signature) == 0 {
		t.Fatal("no signature terms")
	}
	found := false
	for _, s := range th.Signature {
		if s == "cycleword0" || s == "cycleword1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("signature %v missing topical terms", th.Signature)
	}
}

func TestStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := text.NewDict()
	ufs, _ := buildFolders(rng, d, 8, 3, 6)
	tax := Discover(ufs, d, Options{Seed: 12})
	st := tax.Stats()
	if st.Themes == 0 || st.Leaves == 0 || st.MaxDepth < 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.MergedIn != len(ufs) {
		t.Fatalf("MergedIn = %d, want %d", st.MergedIn, len(ufs))
	}
}

func BenchmarkDiscover(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	d := text.NewDict()
	ufs, _ := buildFolders(rng, d, 40, 8, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Discover(ufs, d, Options{Seed: 14})
	}
}
