package sim

import (
	"testing"
	"time"

	"memex/internal/webcorpus"
)

func tinyWorld(t *testing.T) (*webcorpus.Corpus, *Trace) {
	t.Helper()
	c := webcorpus.Generate(webcorpus.Config{Seed: 1, TopTopics: 3, SubPerTopic: 2, PagesPerLeaf: 15})
	tr := Simulate(c, Config{Seed: 2, Users: 10, Days: 5})
	return c, tr
}

func TestSimulateDeterministic(t *testing.T) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 1, TopTopics: 2, SubPerTopic: 2, PagesPerLeaf: 10})
	a := Simulate(c, Config{Seed: 7, Users: 5, Days: 3})
	b := Simulate(c, Config{Seed: 7, Users: 5, Days: 3})
	if len(a.Visits) != len(b.Visits) || len(a.Bookmarks) != len(b.Bookmarks) {
		t.Fatalf("traces differ: %d/%d visits, %d/%d bookmarks",
			len(a.Visits), len(b.Visits), len(a.Bookmarks), len(b.Bookmarks))
	}
	for i := range a.Visits {
		if a.Visits[i] != b.Visits[i] {
			t.Fatalf("visit %d differs", i)
		}
	}
}

func TestTraceShape(t *testing.T) {
	c, tr := tinyWorld(t)
	if len(tr.Users) != 10 {
		t.Fatalf("users = %d", len(tr.Users))
	}
	if len(tr.Visits) == 0 {
		t.Fatal("no visits simulated")
	}
	if len(tr.Bookmarks) == 0 {
		t.Fatal("no bookmarks simulated")
	}
	// Visits time-ordered.
	for i := 1; i < len(tr.Visits); i++ {
		if tr.Visits[i].Time.Before(tr.Visits[i-1].Time) {
			t.Fatal("visits not time-ordered")
		}
	}
	// All page ids valid.
	for _, v := range tr.Visits {
		if c.Page(v.Page) == nil {
			t.Fatalf("visit references unknown page %d", v.Page)
		}
	}
}

func TestInterestsNormalized(t *testing.T) {
	_, tr := tinyWorld(t)
	for _, u := range tr.Users {
		var sum float64
		for _, w := range u.Interests {
			sum += w
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("user %d interests sum to %v", u.ID, sum)
		}
		if len(u.FolderOf) != len(u.Interests) {
			t.Fatalf("user %d folder map incomplete", u.ID)
		}
	}
}

func TestVisitsRespectInterests(t *testing.T) {
	c, tr := tinyWorld(t)
	// The majority of a user's visited pages should fall in topics they are
	// interested in (walks can drift off-topic via links).
	for _, u := range tr.Users {
		visits := tr.VisitsOf(u.ID)
		if len(visits) < 10 {
			continue
		}
		on := 0
		for _, v := range visits {
			if _, ok := u.Interests[c.Page(v.Page).Topic]; ok {
				on++
			}
		}
		frac := float64(on) / float64(len(visits))
		if frac < 0.5 {
			t.Fatalf("user %d only %.2f of visits on interest topics", u.ID, frac)
		}
	}
}

func TestBookmarksLandInOwnersFolders(t *testing.T) {
	c, tr := tinyWorld(t)
	for _, b := range tr.Bookmarks {
		u := tr.UserByID(b.User)
		if u == nil {
			t.Fatalf("bookmark by unknown user %d", b.User)
		}
		want, ok := u.FolderOf[c.Page(b.Page).Topic]
		if !ok {
			t.Fatalf("bookmark for topic outside user %d interests", b.User)
		}
		if b.Folder != want {
			t.Fatalf("bookmark folder %q, want %q", b.Folder, want)
		}
	}
}

func TestCoarseAndFineUsersExist(t *testing.T) {
	_, tr := tinyWorld(t)
	var coarse, fine int
	for _, u := range tr.Users {
		if u.Coarse {
			coarse++
		} else {
			fine++
		}
	}
	if coarse == 0 || fine == 0 {
		t.Fatalf("granularity mix degenerate: %d coarse, %d fine", coarse, fine)
	}
}

func TestReferrerChains(t *testing.T) {
	c, tr := tinyWorld(t)
	// When a visit has a referrer, the referrer page must link to it.
	checked := 0
	for _, v := range tr.Visits {
		if v.Referrer == 0 {
			continue
		}
		ref := c.Page(v.Referrer)
		found := false
		for _, l := range ref.Links {
			if l == v.Page {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("visit %d→%d has no corresponding link", v.Referrer, v.Page)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no link-following visits simulated")
	}
}

func TestEraTimestamps(t *testing.T) {
	_, tr := tinyWorld(t)
	lo := time.Date(2000, 5, 15, 0, 0, 0, 0, time.UTC)
	hi := lo.Add(40 * 24 * time.Hour)
	for _, v := range tr.Visits {
		if v.Time.Before(lo) || v.Time.After(hi) {
			t.Fatalf("visit time %v outside simulated window", v.Time)
		}
	}
}

func BenchmarkSimulate(b *testing.B) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 1})
	cfg := Config{Seed: 2, Users: 50, Days: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(c, cfg)
	}
}
