// Package sim generates the browsing volunteers the paper had and we do
// not: a population of surfers with skewed topical interests who random-walk
// the synthetic Web in time-stamped sessions, bookmarking some pages into
// per-user folder trees. Users differ in folder granularity — some file
// everything under one coarse folder per top-level topic, others keep a
// folder per leaf topic with idiosyncratic names — which is exactly the
// diversity Memex's theme discovery must reconcile (Figure 4, experiment E4).
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"memex/internal/webcorpus"
)

// Config tunes the simulation. Zero values take documented defaults.
type Config struct {
	Seed             int64
	Users            int     // default 50
	Days             int     // simulated period (default 30)
	SessionsPerDay   float64 // mean sessions per user per day (default 1.5)
	VisitsPerSession int     // mean page visits per session (default 8)
	InterestTopics   int     // leaf topics a user cares about (default 4)
	// CommunityFocus skews interests: with this probability a user's topics
	// come from the community's few hot topics (default 0.6).
	CommunityFocus float64
	HotTopics      int     // number of community hot topics (default 4)
	BookmarkProb   float64 // chance a visited page is bookmarked (default 0.12)
	CoarseUserFrac float64 // users with one folder per top topic (default 0.4)
	FollowProb     float64 // continue walk via link vs jump (default 0.7)
	// Start is the first simulated instant (defaults to 2000-05-15 09:00 UTC,
	// the paper's era).
	Start time.Time
}

func (c *Config) defaults() {
	if c.Users == 0 {
		c.Users = 50
	}
	if c.Days == 0 {
		c.Days = 30
	}
	if c.SessionsPerDay == 0 {
		c.SessionsPerDay = 1.5
	}
	if c.VisitsPerSession == 0 {
		c.VisitsPerSession = 8
	}
	if c.InterestTopics == 0 {
		c.InterestTopics = 4
	}
	if c.CommunityFocus == 0 {
		c.CommunityFocus = 0.6
	}
	if c.HotTopics == 0 {
		c.HotTopics = 4
	}
	if c.BookmarkProb == 0 {
		c.BookmarkProb = 0.12
	}
	if c.CoarseUserFrac == 0 {
		c.CoarseUserFrac = 0.4
	}
	if c.FollowProb == 0 {
		c.FollowProb = 0.7
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2000, 5, 15, 9, 0, 0, 0, time.UTC)
	}
}

// User is one simulated surfer.
type User struct {
	ID   int64
	Name string
	// Interests maps leaf topic id → weight (sums to 1).
	Interests map[int]float64
	// Coarse users file bookmarks under top-level topic folders.
	Coarse bool
	// FolderOf maps leaf topic id → the folder path this user files that
	// topic's bookmarks under.
	FolderOf map[int]string
}

// Visit is one page view event.
type Visit struct {
	User     int64
	Page     int64
	Referrer int64 // 0 when the session started fresh
	Time     time.Time
	Topic    int // ground-truth leaf topic of the *intent* of the session
}

// Bookmark is a deliberate filing of a page into a folder.
type Bookmark struct {
	User   int64
	Page   int64
	Folder string
	Time   time.Time
}

// Trace is the simulated browsing history of the whole community.
type Trace struct {
	Cfg       Config
	Users     []User
	Visits    []Visit // time-ordered
	Bookmarks []Bookmark
}

// Simulate runs the surfer population over the corpus.
func Simulate(c *webcorpus.Corpus, cfg Config) *Trace {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Cfg: cfg}

	leaves := c.Leaves()
	// Community hot topics: the first HotTopics leaves of a shuffled order.
	hot := rng.Perm(len(leaves))[:min(cfg.HotTopics, len(leaves))]

	for u := 0; u < cfg.Users; u++ {
		user := User{
			ID:        int64(u + 1),
			Name:      fmt.Sprintf("user%02d", u+1),
			Interests: map[int]float64{},
			Coarse:    rng.Float64() < cfg.CoarseUserFrac,
			FolderOf:  map[int]string{},
		}
		// Pick interest topics: hot with prob CommunityFocus, else uniform.
		for len(user.Interests) < min(cfg.InterestTopics, len(leaves)) {
			var leaf webcorpus.Topic
			if rng.Float64() < cfg.CommunityFocus {
				leaf = leaves[hot[rng.Intn(len(hot))]]
			} else {
				leaf = leaves[rng.Intn(len(leaves))]
			}
			if _, ok := user.Interests[leaf.ID]; !ok {
				user.Interests[leaf.ID] = 0.5 + rng.Float64()
			}
		}
		normalizeInterests(user.Interests)
		// Folder layout: coarse users group by top topic; fine users get a
		// folder per leaf, with a personal naming quirk.
		for tid := range user.Interests {
			leaf := c.Topics[tid]
			top := c.Topics[leaf.Parent]
			if user.Coarse {
				user.FolderOf[tid] = fmt.Sprintf("/%s", top.Name)
			} else {
				user.FolderOf[tid] = fmt.Sprintf("/%s/my-%s", top.Name, leaf.Name)
			}
		}
		tr.Users = append(tr.Users, user)
	}

	// Sessions: Poisson-ish arrival per user per day.
	for day := 0; day < cfg.Days; day++ {
		for ui := range tr.Users {
			user := &tr.Users[ui]
			nSessions := poisson(rng, cfg.SessionsPerDay)
			for s := 0; s < nSessions; s++ {
				start := cfg.Start.
					Add(time.Duration(day) * 24 * time.Hour).
					Add(time.Duration(rng.Intn(14*3600)) * time.Second)
				simulateSession(c, cfg, rng, tr, user, start)
			}
		}
	}
	sort.SliceStable(tr.Visits, func(i, j int) bool { return tr.Visits[i].Time.Before(tr.Visits[j].Time) })
	sort.SliceStable(tr.Bookmarks, func(i, j int) bool { return tr.Bookmarks[i].Time.Before(tr.Bookmarks[j].Time) })
	return tr
}

// simulateSession walks the link graph from a topical entry page.
func simulateSession(c *webcorpus.Corpus, cfg Config, rng *rand.Rand, tr *Trace, user *User, start time.Time) {
	topic := samplTopic(rng, user.Interests)
	pages := c.LeafPages[topic]
	if len(pages) == 0 {
		return
	}
	cur := pages[rng.Intn(len(pages))]
	var ref int64
	now := start
	n := 1 + poisson(rng, float64(cfg.VisitsPerSession))
	for v := 0; v < n; v++ {
		tr.Visits = append(tr.Visits, Visit{
			User: user.ID, Page: cur, Referrer: ref, Time: now, Topic: topic,
		})
		if rng.Float64() < cfg.BookmarkProb {
			if folder, ok := user.FolderOf[c.Page(cur).Topic]; ok {
				tr.Bookmarks = append(tr.Bookmarks, Bookmark{
					User: user.ID, Page: cur, Folder: folder, Time: now,
				})
			}
		}
		// Next hop: follow an on-topic link when possible, else jump back
		// to the topic's pages.
		next := int64(0)
		if rng.Float64() < cfg.FollowProb {
			links := c.Page(cur).Links
			// Prefer links staying on topic (surfers follow anchors that
			// look relevant).
			var onTopic []int64
			for _, l := range links {
				if c.Page(l).Topic == topic {
					onTopic = append(onTopic, l)
				}
			}
			if len(onTopic) > 0 && rng.Float64() < 0.8 {
				next = onTopic[rng.Intn(len(onTopic))]
			} else if len(links) > 0 {
				next = links[rng.Intn(len(links))]
			}
		}
		if next == 0 {
			next = pages[rng.Intn(len(pages))]
			ref = 0
		} else {
			ref = cur
		}
		cur = next
		now = now.Add(time.Duration(20+rng.Intn(160)) * time.Second)
	}
}

// samplTopic draws a topic id proportional to interest weight.
func samplTopic(rng *rand.Rand, interests map[int]float64) int {
	ids := make([]int, 0, len(interests))
	for id := range interests {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	r := rng.Float64()
	var acc float64
	for _, id := range ids {
		acc += interests[id]
		if r <= acc {
			return id
		}
	}
	return ids[len(ids)-1]
}

func normalizeInterests(m map[int]float64) {
	var sum float64
	for _, v := range m {
		sum += v
	}
	if sum == 0 {
		return
	}
	for k := range m {
		m[k] /= sum
	}
}

// poisson draws a Poisson variate with mean lambda (Knuth's method; fine
// for small lambda).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// User lookup helpers.

// UserByID returns the user with the given id, or nil.
func (tr *Trace) UserByID(id int64) *User {
	for i := range tr.Users {
		if tr.Users[i].ID == id {
			return &tr.Users[i]
		}
	}
	return nil
}

// VisitsOf returns the time-ordered visits of one user.
func (tr *Trace) VisitsOf(user int64) []Visit {
	var out []Visit
	for _, v := range tr.Visits {
		if v.User == user {
			out = append(out, v)
		}
	}
	return out
}

// BookmarksOf returns the bookmarks of one user.
func (tr *Trace) BookmarksOf(user int64) []Bookmark {
	var out []Bookmark
	for _, b := range tr.Bookmarks {
		if b.User == user {
			out = append(out, b)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
