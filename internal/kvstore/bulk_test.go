package kvstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPutBatchChunkedAndDeleteBatch(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever})
	var pairs []KV
	for i := 0; i < 1000; i++ {
		pairs = append(pairs, KV{
			Key:   []byte(fmt.Sprintf("bulk-%04d", i)),
			Value: []byte(fmt.Sprintf("val-%04d", i)),
		})
	}
	if err := s.PutBatchChunked(pairs, 64); err != nil {
		t.Fatalf("PutBatchChunked: %v", err)
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", s.Len())
	}
	var dead [][]byte
	for i := 0; i < 1000; i += 2 {
		dead = append(dead, []byte(fmt.Sprintf("bulk-%04d", i)))
	}
	dead = append(dead, []byte("never-existed")) // absent keys are fine
	if err := s.DeleteBatchChunked(dead, 100); err != nil {
		t.Fatalf("DeleteBatchChunked: %v", err)
	}
	if s.Len() != 500 {
		t.Fatalf("Len after deletes = %d, want 500", s.Len())
	}
	for i := 0; i < 1000; i++ {
		_, ok, err := s.Get([]byte(fmt.Sprintf("bulk-%04d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if ok != (i%2 == 1) {
			t.Fatalf("key %d present=%v after batch delete", i, ok)
		}
	}
}

func TestReadViewDelegates(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever})
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("b"), []byte("2"))
	v := s.ReadView()
	if got, ok, _ := v.Get([]byte("a")); !ok || string(got) != "1" {
		t.Fatalf("view Get = %q,%v", got, ok)
	}
	if v.Len() != 2 {
		t.Fatalf("view Len = %d", v.Len())
	}
	n := 0
	v.ScanPrefix([]byte(""), func(k, _ []byte) bool { n++; return true })
	if n != 2 {
		t.Fatalf("view scan saw %d keys", n)
	}
}

// BenchmarkGetDuringBulkWrite is the regression guard for chunked fold
// writes: a reader's Get latency while a bulk load runs must stay bounded
// by one chunk's critical section, not by the whole batch. Compare the
// monolithic and chunked sub-benchmarks — the version store's cold fold
// uses the chunked path for exactly this reason.
func BenchmarkGetDuringBulkWrite(b *testing.B) {
	const batch = 8192
	mkPairs := func(round int) []KV {
		pairs := make([]KV, batch)
		for i := range pairs {
			pairs[i] = KV{
				Key:   []byte(fmt.Sprintf("w-%d-%05d", round, i%2048)),
				Value: []byte("some-bulk-value-payload"),
			}
		}
		return pairs
	}
	for _, mode := range []string{"monolithic", "chunked"} {
		b.Run(mode, func(b *testing.B) {
			s := openTemp(b, Options{Sync: SyncNever})
			s.Put([]byte("probe"), []byte("v"))
			stop := make(chan struct{})
			var wg sync.WaitGroup
			var rounds atomic.Int64
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; ; r++ {
					select {
					case <-stop:
						return
					default:
					}
					pairs := mkPairs(r)
					if mode == "monolithic" {
						s.PutBatch(pairs)
					} else {
						s.PutBatchChunked(pairs, DefaultWriteChunk)
					}
					rounds.Add(1)
				}
			}()
			// Let the writer get going so reads genuinely contend.
			time.Sleep(5 * time.Millisecond)
			var worst time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, ok, err := s.Get([]byte("probe")); !ok || err != nil {
					b.Fatalf("probe read failed: %v %v", ok, err)
				}
				if d := time.Since(t0); d > worst {
					worst = d
				}
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			b.ReportMetric(float64(worst.Microseconds()), "worst-us")
			b.ReportMetric(float64(rounds.Load()), "write-rounds")
		})
	}
}
