package kvstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// SyncPolicy controls WAL durability on commit.
type SyncPolicy int

const (
	// SyncAlways fsyncs the WAL on every commit (safest, slowest).
	SyncAlways SyncPolicy = iota
	// SyncGroup flushes buffers on commit but fsyncs only at checkpoints.
	// A crash may lose the most recent commits but never corrupts the tree.
	SyncGroup
	// SyncNever leaves flushing to checkpoints entirely (for bulk loads and
	// benchmarks; crash durability limited to the last checkpoint).
	SyncNever
)

// Options configures a Store.
type Options struct {
	// CacheSize is the buffer-pool capacity in pages (default DefaultCacheSize).
	CacheSize int
	// Sync selects the WAL durability policy (default SyncAlways).
	Sync SyncPolicy
	// CheckpointEvery triggers an automatic checkpoint after this many
	// committed operations (default 65536; 0 disables auto checkpoints).
	CheckpointEvery int
}

// Store is a persistent ordered key-value store: a single-file B+tree with a
// write-ahead log. All operations are safe for concurrent use; writes are
// serialised, reads proceed concurrently.
type Store struct {
	mu       sync.RWMutex
	pager    *Pager
	tree     btree
	wal      *wal
	opts     Options
	count    uint64 // live keys
	ckptLSN  uint64 // LSN covered by the last checkpoint
	sinceCkp int
	dir      string
	closed   bool
}

// Open opens (creating if necessary) a store rooted at dir. The directory
// holds two files: data.db (pages) and wal.log. Pending WAL records are
// replayed before Open returns.
func Open(dir string, opts Options) (*Store, error) {
	if opts.CacheSize == 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = 65536
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: mkdir: %w", err)
	}
	pager, err := newPager(filepath.Join(dir, "data.db"), opts.CacheSize)
	if err != nil {
		return nil, err
	}
	s := &Store{pager: pager, opts: opts, dir: dir}
	s.tree.pg = pager
	count, lsn, err := s.tree.loadMeta()
	if err != nil {
		pager.close()
		return nil, err
	}
	s.count = count
	s.ckptLSN = lsn

	// Recover: replay WAL records newer than the checkpoint.
	walPath := filepath.Join(dir, "wal.log")
	maxLSN, err := replayWAL(walPath, lsn, func(r walRecord) error {
		switch r.op {
		case walPut:
			added, err := s.tree.put(r.key, r.val)
			if added {
				s.count++
			}
			return err
		case walDelete:
			removed, err := s.tree.delete(r.key)
			if removed {
				s.count--
			}
			return err
		}
		return nil
	})
	if err != nil {
		pager.close()
		return nil, fmt.Errorf("kvstore: recovery: %w", err)
	}
	s.wal, err = openWAL(walPath)
	if err != nil {
		pager.close()
		return nil, err
	}
	s.wal.lsn = maxLSN
	if maxLSN > lsn {
		// Recovery applied records; checkpoint so they aren't replayed again.
		if err := s.checkpointLocked(); err != nil {
			s.wal.close()
			pager.close()
			return nil, err
		}
	}
	return s, nil
}

// Put stores key→value, replacing any existing value.
func (s *Store) Put(key, value []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("kvstore: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("kvstore: store closed")
	}
	if err := s.wal.append(walPut, key, value); err != nil {
		return err
	}
	if err := s.commitWAL(); err != nil {
		return err
	}
	added, err := s.tree.put(key, value)
	if err != nil {
		return err
	}
	if added {
		s.count++
	}
	return s.maybeCheckpoint(1)
}

// PutBatch applies many puts under one WAL commit (group commit).
func (s *Store) PutBatch(pairs []KV) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("kvstore: store closed")
	}
	for _, kv := range pairs {
		if len(kv.Key) == 0 {
			return fmt.Errorf("kvstore: empty key in batch")
		}
		if err := s.wal.append(walPut, kv.Key, kv.Value); err != nil {
			return err
		}
	}
	if err := s.commitWAL(); err != nil {
		return err
	}
	for _, kv := range pairs {
		added, err := s.tree.put(kv.Key, kv.Value)
		if err != nil {
			return err
		}
		if added {
			s.count++
		}
	}
	return s.maybeCheckpoint(len(pairs))
}

// KV is one key-value pair for batch operations.
type KV struct {
	Key   []byte
	Value []byte
}

// DefaultWriteChunk is the batch size PutBatchChunked and DeleteBatchChunked
// use when the caller passes chunk <= 0: large enough to amortize the WAL
// commit, small enough that readers waiting on the write lock see a bounded
// pause instead of stalling for the whole bulk operation.
const DefaultWriteChunk = 128

// PutBatchChunked applies pairs in chunks of at most chunk puts, releasing
// the store write lock between chunks so concurrent readers interleave with
// a long bulk load (e.g. a version-store cold fold) instead of stalling
// behind it. Each chunk is one WAL group commit; a crash mid-way leaves a
// prefix of the chunks durable, so callers needing all-or-nothing semantics
// must layer their own watermark on top (the version store does).
func (s *Store) PutBatchChunked(pairs []KV, chunk int) error {
	if chunk <= 0 {
		chunk = DefaultWriteChunk
	}
	for len(pairs) > 0 {
		n := chunk
		if n > len(pairs) {
			n = len(pairs)
		}
		if err := s.PutBatch(pairs[:n]); err != nil {
			return err
		}
		pairs = pairs[n:]
	}
	return nil
}

// DeleteBatch removes many keys under one WAL commit (group commit).
// Absent keys are not an error.
func (s *Store) DeleteBatch(keys [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("kvstore: store closed")
	}
	for _, k := range keys {
		if err := s.wal.append(walDelete, k, nil); err != nil {
			return err
		}
	}
	if err := s.commitWAL(); err != nil {
		return err
	}
	for _, k := range keys {
		removed, err := s.tree.delete(k)
		if err != nil {
			return err
		}
		if removed {
			s.count--
		}
	}
	return s.maybeCheckpoint(len(keys))
}

// DeleteBatchChunked is DeleteBatch with the same bounded-pause chunking as
// PutBatchChunked.
func (s *Store) DeleteBatchChunked(keys [][]byte, chunk int) error {
	if chunk <= 0 {
		chunk = DefaultWriteChunk
	}
	for len(keys) > 0 {
		n := chunk
		if n > len(keys) {
			n = len(keys)
		}
		if err := s.DeleteBatch(keys[:n]); err != nil {
			return err
		}
		keys = keys[n:]
	}
	return nil
}

// Get returns a copy of the value for key, or ok=false.
func (s *Store) Get(key []byte) (value []byte, ok bool, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, fmt.Errorf("kvstore: store closed")
	}
	return s.tree.get(key)
}

// Delete removes key; it is not an error if the key is absent.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("kvstore: store closed")
	}
	if err := s.wal.append(walDelete, key, nil); err != nil {
		return err
	}
	if err := s.commitWAL(); err != nil {
		return err
	}
	removed, err := s.tree.delete(key)
	if err != nil {
		return err
	}
	if removed {
		s.count--
	}
	return s.maybeCheckpoint(1)
}

func (s *Store) commitWAL() error {
	if err := s.wal.append(walCommit, nil, nil); err != nil {
		return err
	}
	switch s.opts.Sync {
	case SyncAlways:
		return s.wal.sync()
	case SyncGroup:
		return s.wal.flush()
	default:
		return nil
	}
}

func (s *Store) maybeCheckpoint(nops int) error {
	s.sinceCkp += nops
	if s.opts.CheckpointEvery > 0 && s.sinceCkp >= s.opts.CheckpointEvery {
		return s.checkpointLocked()
	}
	return nil
}

// Checkpoint flushes all dirty pages, persists metadata, and truncates the
// WAL. After a checkpoint, recovery starts from the flushed tree image.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("kvstore: store closed")
	}
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	s.ckptLSN = s.wal.lsn
	if err := s.tree.saveMeta(s.count, s.ckptLSN); err != nil {
		return err
	}
	if err := s.pager.flush(); err != nil {
		return err
	}
	if err := s.wal.truncate(); err != nil {
		return err
	}
	s.sinceCkp = 0
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int(s.count)
}

// Stats returns buffer-pool counters plus key count.
func (s *Store) Stats() Stats {
	st := s.pager.stats()
	return st
}

// DiskBytes reports the size of the data file plus WAL on disk.
func (s *Store) DiskBytes() int64 {
	var total int64
	for _, name := range []string{"data.db", "wal.log"} {
		if fi, err := os.Stat(filepath.Join(s.dir, name)); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// Close checkpoints and releases all resources.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.checkpointLocked(); err != nil {
		s.wal.close()
		s.pager.close()
		return err
	}
	if err := s.wal.close(); err != nil {
		s.pager.close()
		return err
	}
	return s.pager.close()
}

// Scan calls fn for every key in [start, end) in order. A nil start begins
// at the first key; a nil end scans to the last. fn returning false stops
// the scan. The key/value slices passed to fn are copies.
func (s *Store) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return fmt.Errorf("kvstore: store closed")
	}
	var id pageID
	var slot int
	var err error
	if start == nil {
		id, err = s.tree.leftmostLeaf()
		slot = 0
	} else {
		id, slot, err = s.tree.seekLeaf(start)
	}
	if err != nil {
		return err
	}
	//memexvet:ignore lockiter the read lock IS the scan's consistency contract: the B+tree has no versioned state to snapshot, and writers (fold, checkpoints) are background-paced
	for id != nilPage {
		p, err := s.tree.pg.get(id)
		if err != nil {
			return err
		}
		nk := p.nkeys()
		for ; slot < nk; slot++ {
			k := p.leafKey(slot)
			if end != nil && bytes.Compare(k, end) >= 0 {
				s.tree.pg.unpin(p)
				return nil
			}
			kc := append([]byte(nil), k...)
			vc := append([]byte(nil), p.leafVal(slot)...)
			if !fn(kc, vc) {
				s.tree.pg.unpin(p)
				return nil
			}
		}
		next := p.right()
		s.tree.pg.unpin(p)
		id = next
		slot = 0
	}
	return nil
}

// ScanPrefix scans all keys beginning with prefix.
func (s *Store) ScanPrefix(prefix []byte, fn func(key, value []byte) bool) error {
	end := prefixEnd(prefix)
	return s.Scan(prefix, end, fn)
}

// MaxKV is the largest key+value size one tree entry can hold. Callers
// storing bigger blobs must split them across entries (the version store's
// cold tier chunks records into parts for exactly this reason).
const MaxKV = maxPayload

// ReadView is a read-only handle over a store: the subset of the API that
// can never mutate the tree, handed to reader subsystems (the version
// store's cold-tier fallthrough) so a misrouted write is a compile error
// rather than a latent corruption. Reads through a view take the same
// shared lock as Store reads — they run concurrently with each other and
// interleave with chunked bulk writes.
type ReadView struct {
	s *Store
}

// ReadView returns the store's read-only handle.
func (s *Store) ReadView() *ReadView { return &ReadView{s: s} }

// Get returns a copy of the value for key, or ok=false.
func (v *ReadView) Get(key []byte) ([]byte, bool, error) { return v.s.Get(key) }

// Scan calls fn for every key in [start, end) in order (see Store.Scan).
func (v *ReadView) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	return v.s.Scan(start, end, fn)
}

// ScanPrefix scans all keys beginning with prefix.
func (v *ReadView) ScanPrefix(prefix []byte, fn func(key, value []byte) bool) error {
	return v.s.ScanPrefix(prefix, fn)
}

// Len returns the number of live keys.
func (v *ReadView) Len() int { return v.s.Len() }

// prefixEnd returns the smallest key greater than every key with the given
// prefix, or nil if no such key exists (prefix is all 0xff).
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] < 0xff {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
