package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// btree implements the on-page B+tree. All methods assume the caller holds
// the store's write lock (mutations) or read lock (lookups).
type btree struct {
	pg   *Pager
	root pageID
}

// metaRoot/metaFree/metaLSN offsets within the meta page payload.
const (
	metaMagicOff = 16
	metaRootOff  = 24
	metaFreeOff  = 28
	metaLSNOff   = 32
	metaCountOff = 40
	metaMagic    = 0x4d454d4558 // "MEMEX"
)

func (t *btree) loadMeta() (count uint64, lsn uint64, err error) {
	meta, err := t.pg.get(0)
	if err != nil {
		return 0, 0, err
	}
	defer t.pg.unpin(meta)
	magic := binary.LittleEndian.Uint64(meta.buf[metaMagicOff:])
	if magic != 0 && magic != metaMagic {
		return 0, 0, fmt.Errorf("kvstore: bad magic %#x", magic)
	}
	t.root = pageID(binary.LittleEndian.Uint32(meta.buf[metaRootOff:]))
	t.pg.freeHead = pageID(binary.LittleEndian.Uint32(meta.buf[metaFreeOff:]))
	lsn = binary.LittleEndian.Uint64(meta.buf[metaLSNOff:])
	count = binary.LittleEndian.Uint64(meta.buf[metaCountOff:])
	return count, lsn, nil
}

func (t *btree) saveMeta(count, lsn uint64) error {
	meta, err := t.pg.get(0)
	if err != nil {
		return err
	}
	defer t.pg.unpin(meta)
	binary.LittleEndian.PutUint64(meta.buf[metaMagicOff:], metaMagic)
	binary.LittleEndian.PutUint32(meta.buf[metaRootOff:], uint32(t.root))
	binary.LittleEndian.PutUint32(meta.buf[metaFreeOff:], uint32(t.pg.freeHead))
	binary.LittleEndian.PutUint64(meta.buf[metaLSNOff:], lsn)
	binary.LittleEndian.PutUint64(meta.buf[metaCountOff:], count)
	meta.dirty = true
	return nil
}

// leafSearch returns the slot index of the first key >= k, and whether an
// exact match was found.
func leafSearch(p *page, k []byte) (int, bool) {
	lo, hi := 0, p.nkeys()
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(p.leafKey(mid), k) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

// intSearch returns the child page to descend into for key k.
// Internal page invariant: next() holds keys < intKey(0); intChild(i) holds
// keys in [intKey(i), intKey(i+1)).
func intSearch(p *page, k []byte) pageID {
	lo, hi := 0, p.nkeys()
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(p.intKey(mid), k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return p.next()
	}
	return p.intChild(lo - 1)
}

// get returns the value for k, or nil/false.
func (t *btree) get(k []byte) ([]byte, bool, error) {
	if t.root == nilPage {
		return nil, false, nil
	}
	id := t.root
	for {
		p, err := t.pg.get(id)
		if err != nil {
			return nil, false, err
		}
		switch p.kind {
		case pageLeaf:
			i, ok := leafSearch(p, k)
			if !ok {
				t.pg.unpin(p)
				return nil, false, nil
			}
			v := append([]byte(nil), p.leafVal(i)...)
			t.pg.unpin(p)
			return v, true, nil
		case pageInternal:
			next := intSearch(p, k)
			t.pg.unpin(p)
			id = next
		default:
			t.pg.unpin(p)
			return nil, false, fmt.Errorf("kvstore: corrupt page %d kind %d", id, p.kind)
		}
	}
}

// put inserts or replaces k→v. Returns true if a new key was added.
func (t *btree) put(k, v []byte) (bool, error) {
	if len(k)+len(v) > maxPayload {
		return false, errValueTooLarge
	}
	if t.root == nilPage {
		leaf, err := t.pg.allocate(pageLeaf)
		if err != nil {
			return false, err
		}
		leaf.insertLeafCell(0, k, v)
		t.root = leaf.id
		t.pg.unpin(leaf)
		return true, nil
	}
	added, split, sepKey, sepChild, err := t.insert(t.root, k, v)
	if err != nil {
		return false, err
	}
	if split {
		// Grow a new root.
		newRoot, err := t.pg.allocate(pageInternal)
		if err != nil {
			return false, err
		}
		newRoot.setNext(t.root)
		newRoot.insertIntCell(0, sepKey, sepChild)
		t.root = newRoot.id
		t.pg.unpin(newRoot)
	}
	return added, nil
}

// insert recursively descends from page id. On child split it returns
// (split=true, separator key, new right sibling id) for the parent to absorb.
func (t *btree) insert(id pageID, k, v []byte) (added, split bool, sepKey []byte, sepChild pageID, err error) {
	p, err := t.pg.get(id)
	if err != nil {
		return false, false, nil, 0, err
	}
	defer t.pg.unpin(p)

	if p.kind == pageLeaf {
		i, ok := leafSearch(p, k)
		replaced := false
		if ok {
			// Replace: remove the old cell, then insert as if fresh so an
			// enlarged value can trigger a split instead of overflowing.
			p.removeCell(i)
			replaced = true
		}
		need := 6 + len(k) + len(v)
		if p.freeSpace() < need && p.liveBytes()+need+slotSize <= PageSize {
			p.compact()
		}
		if p.freeSpace() >= need {
			p.insertLeafCell(i, k, v)
			return !replaced, false, nil, 0, nil
		}
		// Split, redistributing cells INCLUDING the incoming one so both
		// halves are guaranteed to fit (cells are capped at maxPayload).
		rightP, sep, err := t.splitLeafInsert(p, i, k, v)
		if err != nil {
			return false, false, nil, 0, err
		}
		rid := rightP.id
		t.pg.unpin(rightP)
		return !replaced, true, sep, rid, nil
	}

	// Internal page: descend.
	child := intSearch(p, k)
	added, csplit, cSep, cChild, err := t.insert(child, k, v)
	if err != nil {
		return false, false, nil, 0, err
	}
	if !csplit {
		return added, false, nil, 0, nil
	}
	// Absorb child's separator.
	pos, _ := t.intInsertPos(p, cSep)
	need := 6 + len(cSep)
	if p.freeSpace() < need && p.liveBytes()+need+slotSize <= PageSize {
		p.compact()
	}
	if p.freeSpace() >= need {
		p.insertIntCell(pos, cSep, cChild)
		return added, false, nil, 0, nil
	}
	// Split internal page, redistributing separators including the new one.
	rightP, mid, err := t.splitInternalInsert(p, pos, cSep, cChild)
	if err != nil {
		return false, false, nil, 0, err
	}
	rid := rightP.id
	t.pg.unpin(rightP)
	return added, true, mid, rid, nil
}

// intInsertPos returns the slot where a separator key should be inserted.
func (t *btree) intInsertPos(p *page, k []byte) (int, bool) {
	lo, hi := 0, p.nkeys()
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(p.intKey(mid), k) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

// leafCell is a staged cell used during splits.
type leafCell struct {
	key, val []byte
}

// splitLeafInsert splits leaf p with the new cell (k,v) at slot position
// pos logically included, redistributing by bytes so both halves fit.
// Returns the pinned right sibling and the promoted separator (the right
// page's first key).
func (t *btree) splitLeafInsert(p *page, pos int, k, v []byte) (*page, []byte, error) {
	nk := p.nkeys()
	cells := make([]leafCell, 0, nk+1)
	total := 0
	for i := 0; i < nk; i++ {
		if i == pos {
			cells = append(cells, leafCell{k, v})
			total += 6 + len(k) + len(v) + slotSize
		}
		key := append([]byte(nil), p.leafKey(i)...)
		val := append([]byte(nil), p.leafVal(i)...)
		cells = append(cells, leafCell{key, val})
		total += 6 + len(key) + len(val) + slotSize
	}
	if pos == nk {
		cells = append(cells, leafCell{k, v})
		total += 6 + len(k) + len(v) + slotSize
	}

	right, err := t.pg.allocate(pageLeaf)
	if err != nil {
		return nil, nil, err
	}
	// Greedy byte-balanced cut point: left takes cells until >= half.
	cut, acc := 0, 0
	for cut = 0; cut < len(cells)-1; cut++ {
		c := cells[cut]
		acc += 6 + len(c.key) + len(c.val) + slotSize
		if acc >= total/2 {
			cut++
			break
		}
	}
	if cut == 0 {
		cut = 1
	}
	// Rebuild left in place.
	oldRight := p.right()
	p.init(p.id, pageLeaf)
	for i := 0; i < cut; i++ {
		p.insertLeafCell(p.nkeys(), cells[i].key, cells[i].val)
	}
	for i := cut; i < len(cells); i++ {
		right.insertLeafCell(right.nkeys(), cells[i].key, cells[i].val)
	}
	right.setRight(oldRight)
	p.setRight(right.id)
	p.dirty = true
	right.dirty = true
	sep := append([]byte(nil), right.leafKey(0)...)
	return right, sep, nil
}

// intCell is a staged separator used during internal splits.
type intCell struct {
	key   []byte
	child pageID
}

// splitInternalInsert splits internal page p with the new separator at
// slot pos included, promoting the byte-balanced median. The promoted
// key's child becomes the right sibling's leftmost pointer.
func (t *btree) splitInternalInsert(p *page, pos int, k []byte, child pageID) (*page, []byte, error) {
	nk := p.nkeys()
	cells := make([]intCell, 0, nk+1)
	total := 0
	for i := 0; i < nk; i++ {
		if i == pos {
			cells = append(cells, intCell{k, child})
			total += 6 + len(k) + slotSize
		}
		key := append([]byte(nil), p.intKey(i)...)
		cells = append(cells, intCell{key, p.intChild(i)})
		total += 6 + len(key) + slotSize
	}
	if pos == nk {
		cells = append(cells, intCell{k, child})
		total += 6 + len(k) + slotSize
	}

	right, err := t.pg.allocate(pageInternal)
	if err != nil {
		return nil, nil, err
	}
	// Median index by bytes; must leave at least one cell on each side.
	mid, acc := 0, 0
	for mid = 0; mid < len(cells)-2; mid++ {
		acc += 6 + len(cells[mid].key) + slotSize
		if acc >= total/2 {
			break
		}
	}
	if mid == 0 {
		mid = 1
	}
	promoted := append([]byte(nil), cells[mid].key...)

	leftmost := p.next()
	p.init(p.id, pageInternal)
	p.setNext(leftmost)
	for i := 0; i < mid; i++ {
		p.insertIntCell(p.nkeys(), cells[i].key, cells[i].child)
	}
	right.setNext(cells[mid].child)
	for i := mid + 1; i < len(cells); i++ {
		right.insertIntCell(right.nkeys(), cells[i].key, cells[i].child)
	}
	p.dirty = true
	right.dirty = true
	return right, promoted, nil
}

// delete removes k. Leaves may become under-full; we do not rebalance
// (documented in DESIGN.md §4.1), matching Berkeley DB's behaviour under
// random deletes. Empty leaves are unlinked lazily by scans.
func (t *btree) delete(k []byte) (bool, error) {
	if t.root == nilPage {
		return false, nil
	}
	id := t.root
	for {
		p, err := t.pg.get(id)
		if err != nil {
			return false, err
		}
		switch p.kind {
		case pageLeaf:
			i, ok := leafSearch(p, k)
			if !ok {
				t.pg.unpin(p)
				return false, nil
			}
			p.removeCell(i)
			t.pg.unpin(p)
			return true, nil
		case pageInternal:
			next := intSearch(p, k)
			t.pg.unpin(p)
			id = next
		default:
			t.pg.unpin(p)
			return false, fmt.Errorf("kvstore: corrupt page %d", id)
		}
	}
}

// leftmostLeaf returns the id of the leftmost leaf, or nilPage when empty.
func (t *btree) leftmostLeaf() (pageID, error) {
	if t.root == nilPage {
		return nilPage, nil
	}
	id := t.root
	for {
		p, err := t.pg.get(id)
		if err != nil {
			return nilPage, err
		}
		if p.kind == pageLeaf {
			t.pg.unpin(p)
			return id, nil
		}
		next := p.next()
		t.pg.unpin(p)
		id = next
	}
}

// seekLeaf returns the leaf that would contain k and the slot of the first
// key >= k within it (the slot may equal nkeys, meaning "next leaf").
func (t *btree) seekLeaf(k []byte) (pageID, int, error) {
	if t.root == nilPage {
		return nilPage, 0, nil
	}
	id := t.root
	for {
		p, err := t.pg.get(id)
		if err != nil {
			return nilPage, 0, err
		}
		if p.kind == pageLeaf {
			i, _ := leafSearch(p, k)
			t.pg.unpin(p)
			return id, i, nil
		}
		next := intSearch(p, k)
		t.pg.unpin(p)
		id = next
	}
}
