package kvstore

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// Pager manages the page file and an LRU buffer pool. Page 0 is the meta
// page; tree pages start at 1. Freed pages are chained through a free list
// rooted in the meta page.
type Pager struct {
	mu       sync.Mutex
	f        *os.File
	npages   pageID // pages allocated (including meta)
	cache    map[pageID]*lruEntry
	lru      *lruEntry // most-recently used; doubly-linked ring sentinel
	capacity int
	freeHead pageID // head of free-page chain

	// stats
	hits, misses, evictions uint64
}

type lruEntry struct {
	p          *page
	prev, next *lruEntry
	pinned     int
}

// DefaultCacheSize is the default number of pages held in the buffer pool
// (4096 pages = 16 MiB).
const DefaultCacheSize = 4096

var errValueTooLarge = errors.New("kvstore: key+value exceeds page capacity")

// ErrTooLarge reports whether err indicates an oversized key/value pair.
func ErrTooLarge(err error) bool { return errors.Is(err, errValueTooLarge) }

func newPager(path string, cacheSize int) (*Pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open page file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if cacheSize <= 8 {
		cacheSize = 8
	}
	sentinel := &lruEntry{}
	sentinel.prev, sentinel.next = sentinel, sentinel
	pg := &Pager{
		f:        f,
		npages:   pageID(st.Size() / PageSize),
		cache:    make(map[pageID]*lruEntry, cacheSize),
		lru:      sentinel,
		capacity: cacheSize,
	}
	if pg.npages == 0 {
		// Fresh file: materialise the meta page.
		meta, err := pg.allocate(pageMeta)
		if err != nil {
			f.Close()
			return nil, err
		}
		pg.unpin(meta)
	}
	return pg, nil
}

// allocate returns a pinned, zeroed page of the given kind, reusing the free
// list when possible.
func (pg *Pager) allocate(kind byte) (*page, error) {
	pg.mu.Lock()
	var id pageID
	if pg.freeHead != nilPage {
		id = pg.freeHead
		pg.mu.Unlock()
		p, err := pg.get(id)
		if err != nil {
			return nil, err
		}
		pg.mu.Lock()
		pg.freeHead = p.next()
		pg.mu.Unlock()
		p.init(id, kind)
		p.dirty = true
		return p, nil
	}
	id = pg.npages
	pg.npages++
	pg.mu.Unlock()

	p := &page{}
	p.init(id, kind)
	p.dirty = true
	pg.mu.Lock()
	if err := pg.insertLocked(p, true); err != nil {
		pg.mu.Unlock()
		return nil, err
	}
	pg.mu.Unlock()
	return p, nil
}

// free returns a page to the free list.
func (pg *Pager) free(p *page) {
	pg.mu.Lock()
	p.init(p.id, pageFree)
	p.setNext(pg.freeHead)
	p.dirty = true
	pg.freeHead = p.id
	pg.mu.Unlock()
}

// get returns a pinned page. Callers must unpin.
func (pg *Pager) get(id pageID) (*page, error) {
	pg.mu.Lock()
	if e, ok := pg.cache[id]; ok {
		pg.hits++
		e.pinned++
		pg.moveFront(e)
		pg.mu.Unlock()
		return e.p, nil
	}
	pg.misses++
	pg.mu.Unlock()

	p := &page{}
	if _, err := pg.f.ReadAt(p.buf[:], int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("kvstore: read page %d: %w", id, err)
	}
	p.id = id
	p.kind = p.buf[0]

	pg.mu.Lock()
	defer pg.mu.Unlock()
	if e, ok := pg.cache[id]; ok { // raced: another reader loaded it
		e.pinned++
		pg.moveFront(e)
		return e.p, nil
	}
	if err := pg.insertLocked(p, true); err != nil {
		return nil, err
	}
	return p, nil
}

func (pg *Pager) unpin(p *page) {
	pg.mu.Lock()
	if e, ok := pg.cache[p.id]; ok && e.pinned > 0 {
		e.pinned--
	}
	pg.mu.Unlock()
}

// insertLocked adds a page to the cache, evicting if needed. Lock held.
func (pg *Pager) insertLocked(p *page, pin bool) error {
	for len(pg.cache) >= pg.capacity {
		victim := pg.lru.prev
		for victim != pg.lru && victim.pinned > 0 {
			victim = victim.prev
		}
		if victim == pg.lru {
			break // everything pinned; allow overflow rather than deadlock
		}
		if victim.p.dirty {
			if err := pg.writePageLocked(victim.p); err != nil {
				return err
			}
		}
		pg.evictions++
		pg.detach(victim)
		delete(pg.cache, victim.p.id)
	}
	e := &lruEntry{p: p}
	if pin {
		e.pinned = 1
	}
	pg.cache[p.id] = e
	pg.attachFront(e)
	return nil
}

func (pg *Pager) detach(e *lruEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (pg *Pager) attachFront(e *lruEntry) {
	e.next = pg.lru.next
	e.prev = pg.lru
	pg.lru.next.prev = e
	pg.lru.next = e
}

func (pg *Pager) moveFront(e *lruEntry) {
	pg.detach(e)
	pg.attachFront(e)
}

func (pg *Pager) writePageLocked(p *page) error {
	if _, err := pg.f.WriteAt(p.buf[:], int64(p.id)*PageSize); err != nil {
		return fmt.Errorf("kvstore: write page %d: %w", p.id, err)
	}
	p.dirty = false
	return nil
}

// flush writes all dirty pages and syncs the file.
func (pg *Pager) flush() error {
	pg.mu.Lock()
	for _, e := range pg.cache {
		if e.p.dirty {
			if err := pg.writePageLocked(e.p); err != nil {
				pg.mu.Unlock()
				return err
			}
		}
	}
	pg.mu.Unlock()
	return pg.f.Sync()
}

func (pg *Pager) close() error {
	if err := pg.flush(); err != nil {
		pg.f.Close()
		return err
	}
	return pg.f.Close()
}

// Stats reports buffer-pool effectiveness counters.
type Stats struct {
	Pages     int
	CacheSize int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

func (pg *Pager) stats() Stats {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	return Stats{
		Pages:     int(pg.npages),
		CacheSize: len(pg.cache),
		Hits:      pg.hits,
		Misses:    pg.misses,
		Evictions: pg.evictions,
	}
}
