// Package kvstore implements a lightweight, persistent, ordered key-value
// store in the spirit of Berkeley DB: a single-file page-based B+tree with a
// buffer pool, a redo-only write-ahead log, and cursor-based range scans.
//
// Memex uses kvstore for fine-grained term-level statistics (postings,
// per-topic term counts, document vectors) where storing one row per term
// in the relational engine would have overwhelming space and time overheads
// (reproduced as experiment E5).
//
// Concurrency model: single writer, many readers, guarded by an RWMutex.
// Durability: committed batches are redo-logged; recovery replays the WAL
// onto the last checkpointed tree image.
package kvstore

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the fixed on-disk page size. All tree nodes occupy exactly one
// page. Keys and values must fit in a page with headers; larger values are
// rejected (Memex stores packed term statistics, which are small).
const PageSize = 4096

// Page kinds.
const (
	pageMeta = iota // page 0: store metadata
	pageLeaf
	pageInternal
	pageFree
)

const (
	pageHeaderSize = 16 // kind(1) pad(1) nkeys(2) next(4) right(4) pad(4)
	slotSize       = 4  // offset(2) length(2) — length covers key+value
	// maxPayload caps key+value size per cell. Keeping cells at no more
	// than a quarter page guarantees that a byte-balanced split (which
	// redistributes cells *including* the incoming one) always leaves both
	// halves within page capacity.
	maxPayload = (PageSize - pageHeaderSize) / 4
)

// pageID identifies a page by index within the store file.
type pageID uint32

const nilPage pageID = 0 // page 0 is the meta page, never a tree node

// page is the in-memory image of one on-disk page. Cell layout is a slotted
// page: a slot directory grows from the header while cell bodies grow from
// the end of the page.
//
// Leaf cell body:     klen(2) vlen(4) key val
// Internal cell body: klen(2) child(4) key        (child holds keys >= key)
// Internal pages additionally store a leftmost child pointer in hdr.next.
type page struct {
	id    pageID
	kind  byte
	dirty bool
	buf   [PageSize]byte
}

func (p *page) nkeys() int     { return int(binary.LittleEndian.Uint16(p.buf[2:4])) }
func (p *page) setNKeys(n int) { binary.LittleEndian.PutUint16(p.buf[2:4], uint16(n)) }
func (p *page) next() pageID   { return pageID(binary.LittleEndian.Uint32(p.buf[4:8])) }
func (p *page) setNext(n pageID) {
	binary.LittleEndian.PutUint32(p.buf[4:8], uint32(n))
}

// right is the right-sibling pointer for leaves (scan chaining).
func (p *page) right() pageID { return pageID(binary.LittleEndian.Uint32(p.buf[8:12])) }
func (p *page) setRight(n pageID) {
	binary.LittleEndian.PutUint32(p.buf[8:12], uint32(n))
}

func (p *page) init(id pageID, kind byte) {
	p.id = id
	p.kind = kind
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.buf[0] = kind
	p.setFreeEnd(PageSize)
}

// freeEnd is the offset where the cell body area begins (bodies are packed
// toward the end of the page). Stored in bytes 12:14.
func (p *page) freeEnd() int { return int(binary.LittleEndian.Uint16(p.buf[12:14])) }
func (p *page) setFreeEnd(v int) {
	binary.LittleEndian.PutUint16(p.buf[12:14], uint16(v))
}

func (p *page) slotOffset(i int) int {
	return int(binary.LittleEndian.Uint16(p.buf[pageHeaderSize+i*slotSize:]))
}

func (p *page) slotLen(i int) int {
	return int(binary.LittleEndian.Uint16(p.buf[pageHeaderSize+i*slotSize+2:]))
}

func (p *page) setSlot(i, off, ln int) {
	binary.LittleEndian.PutUint16(p.buf[pageHeaderSize+i*slotSize:], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[pageHeaderSize+i*slotSize+2:], uint16(ln))
}

// freeSpace returns bytes available for one more cell (slot + body).
func (p *page) freeSpace() int {
	return p.freeEnd() - (pageHeaderSize + p.nkeys()*slotSize) - slotSize
}

// leafKey returns the key of cell i on a leaf page. The returned slice
// aliases the page buffer and must not be retained across writes.
func (p *page) leafKey(i int) []byte {
	off := p.slotOffset(i)
	klen := int(binary.LittleEndian.Uint16(p.buf[off:]))
	return p.buf[off+6 : off+6+klen]
}

// leafVal returns the value of cell i on a leaf page (aliases the buffer).
func (p *page) leafVal(i int) []byte {
	off := p.slotOffset(i)
	klen := int(binary.LittleEndian.Uint16(p.buf[off:]))
	vlen := int(binary.LittleEndian.Uint32(p.buf[off+2:]))
	return p.buf[off+6+klen : off+6+klen+vlen]
}

// intKey returns the separator key of cell i on an internal page.
func (p *page) intKey(i int) []byte {
	off := p.slotOffset(i)
	klen := int(binary.LittleEndian.Uint16(p.buf[off:]))
	return p.buf[off+6 : off+6+klen]
}

// intChild returns the child pointer of cell i on an internal page.
func (p *page) intChild(i int) pageID {
	off := p.slotOffset(i)
	return pageID(binary.LittleEndian.Uint32(p.buf[off+2:]))
}

func (p *page) setIntChild(i int, c pageID) {
	off := p.slotOffset(i)
	binary.LittleEndian.PutUint32(p.buf[off+2:], uint32(c))
	p.dirty = true
}

// insertLeafCell inserts key/val at slot position pos, shifting later slots.
// The caller must have verified free space.
func (p *page) insertLeafCell(pos int, key, val []byte) {
	body := 6 + len(key) + len(val)
	off := p.freeEnd() - body
	binary.LittleEndian.PutUint16(p.buf[off:], uint16(len(key)))
	binary.LittleEndian.PutUint32(p.buf[off+2:], uint32(len(val)))
	copy(p.buf[off+6:], key)
	copy(p.buf[off+6+len(key):], val)
	p.setFreeEnd(off)
	p.shiftSlots(pos, 1)
	p.setSlot(pos, off, body)
	p.setNKeys(p.nkeys() + 1)
	p.dirty = true
}

// insertIntCell inserts separator key with child pointer at slot pos.
func (p *page) insertIntCell(pos int, key []byte, child pageID) {
	body := 6 + len(key)
	off := p.freeEnd() - body
	binary.LittleEndian.PutUint16(p.buf[off:], uint16(len(key)))
	binary.LittleEndian.PutUint32(p.buf[off+2:], uint32(child))
	copy(p.buf[off+6:], key)
	p.setFreeEnd(off)
	p.shiftSlots(pos, 1)
	p.setSlot(pos, off, body)
	p.setNKeys(p.nkeys() + 1)
	p.dirty = true
}

// shiftSlots moves slot entries [pos, nkeys) by delta slot positions.
func (p *page) shiftSlots(pos, delta int) {
	n := p.nkeys()
	start := pageHeaderSize + pos*slotSize
	end := pageHeaderSize + n*slotSize
	if delta > 0 {
		copy(p.buf[start+delta*slotSize:end+delta*slotSize], p.buf[start:end])
	} else {
		copy(p.buf[start+delta*slotSize:], p.buf[start:end])
	}
}

// removeCell deletes slot i. Body space is reclaimed only by compact.
func (p *page) removeCell(i int) {
	p.shiftSlots(i+1, -1)
	p.setNKeys(p.nkeys() - 1)
	p.dirty = true
}

// compact rewrites the page, squeezing out dead cell bodies. Needed when
// freeSpace is low but live payload would still fit.
func (p *page) compact() {
	var tmp page
	tmp.init(p.id, p.kind)
	tmp.setNext(p.next())
	tmp.setRight(p.right())
	n := p.nkeys()
	for i := 0; i < n; i++ {
		off := p.slotOffset(i)
		ln := p.slotLen(i)
		noff := tmp.freeEnd() - ln
		copy(tmp.buf[noff:], p.buf[off:off+ln])
		tmp.setFreeEnd(noff)
		tmp.setSlot(i, noff, ln)
		tmp.setNKeys(i + 1)
	}
	copy(p.buf[:], tmp.buf[:])
	p.dirty = true
}

// liveBytes returns the total bytes of live slot bodies plus directory.
func (p *page) liveBytes() int {
	total := pageHeaderSize + p.nkeys()*slotSize
	for i := 0; i < n(p); i++ {
		total += p.slotLen(i)
	}
	return total
}

func n(p *page) int { return p.nkeys() }

func (p *page) String() string {
	return fmt.Sprintf("page{id=%d kind=%d nkeys=%d free=%d}", p.id, p.kind, p.nkeys(), p.freeSpace())
}
