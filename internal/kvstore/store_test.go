package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func openTemp(t testing.TB, opts Options) *Store {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever})
	if err := s.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, ok, err := s.Get([]byte("hello"))
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if string(v) != "world" {
		t.Fatalf("got %q, want %q", v, "world")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestGetMissing(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever})
	_, ok, err := s.Get([]byte("absent"))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if ok {
		t.Fatal("found a key that was never inserted")
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever})
	if err := s.Put(nil, []byte("v")); err == nil {
		t.Fatal("Put with empty key should fail")
	}
}

func TestOverwrite(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever})
	key := []byte("k")
	for i := 0; i < 10; i++ {
		val := []byte(fmt.Sprintf("value-%d", i))
		if err := s.Put(key, val); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	v, ok, _ := s.Get(key)
	if !ok || string(v) != "value-9" {
		t.Fatalf("got %q ok=%v, want value-9", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after overwrites, want 1", s.Len())
	}
}

func TestDelete(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever})
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("b"), []byte("2"))
	if err := s.Delete([]byte("a")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok, _ := s.Get([]byte("a")); ok {
		t.Fatal("deleted key still present")
	}
	if _, ok, _ := s.Get([]byte("b")); !ok {
		t.Fatal("unrelated key lost after delete")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	// Deleting a missing key is not an error.
	if err := s.Delete([]byte("zzz")); err != nil {
		t.Fatalf("Delete missing: %v", err)
	}
}

func TestValueTooLarge(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever})
	big := make([]byte, PageSize)
	err := s.Put([]byte("k"), big)
	if err == nil || !ErrTooLarge(err) {
		t.Fatalf("want errValueTooLarge, got %v", err)
	}
}

func TestManyKeysSplitAndOrder(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever, CacheSize: 64})
	const n = 5000
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(n)
	for _, i := range perm {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v := []byte(fmt.Sprintf("val-%06d", i))
		if err := s.Put(k, v); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	// All retrievable.
	for i := 0; i < n; i += 97 {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v, ok, err := s.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get %s: ok=%v err=%v", k, ok, err)
		}
		want := fmt.Sprintf("val-%06d", i)
		if string(v) != want {
			t.Fatalf("Get %s = %q, want %q", k, v, want)
		}
	}
	// Scan returns strictly increasing keys, all n of them.
	var prev []byte
	count := 0
	err := s.Scan(nil, nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order: %q then %q", prev, k)
		}
		prev = k
		count++
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if count != n {
		t.Fatalf("scan visited %d keys, want %d", count, n)
	}
}

func TestScanRange(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever})
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)})
	}
	var got []string
	s.Scan([]byte("k010"), []byte("k020"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 10 || got[0] != "k010" || got[9] != "k019" {
		t.Fatalf("range scan got %v", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever})
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), nil)
	}
	count := 0
	s.Scan(nil, nil, func(k, v []byte) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d, want 5", count)
	}
}

func TestScanPrefix(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever})
	s.Put([]byte("a/1"), nil)
	s.Put([]byte("a/2"), nil)
	s.Put([]byte("b/1"), nil)
	var got []string
	s.ScanPrefix([]byte("a/"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 2 || got[0] != "a/1" || got[1] != "a/2" {
		t.Fatalf("prefix scan got %v", got)
	}
}

func TestPrefixEnd(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte("abc"), []byte("abd")},
		{[]byte{0x01, 0xff}, []byte{0x02}},
		{[]byte{0xff, 0xff}, nil},
	}
	for _, c := range cases {
		got := prefixEnd(c.in)
		if !bytes.Equal(got, c.want) {
			t.Errorf("prefixEnd(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("val%04d", i)))
	}
	s.Delete([]byte("key0100"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 499 {
		t.Fatalf("Len after reopen = %d, want 499", s2.Len())
	}
	v, ok, _ := s2.Get([]byte("key0042"))
	if !ok || string(v) != "val0042" {
		t.Fatalf("key0042 after reopen: %q ok=%v", v, ok)
	}
	if _, ok, _ := s2.Get([]byte("key0100")); ok {
		t.Fatal("deleted key resurrected after reopen")
	}
}

// TestCrashRecoveryFromWAL simulates a crash: write with SyncAlways, then
// reopen without calling Close (no checkpoint). The WAL alone must rebuild
// the committed state.
func TestCrashRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncAlways, CheckpointEvery: 1 << 30})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 200; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	s.Delete([]byte("k007"))
	// Simulate crash: flush nothing, just drop the handles.
	s.wal.w.Flush()
	s.wal.f.Close()
	s.pager.f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 199 {
		t.Fatalf("recovered Len = %d, want 199", s2.Len())
	}
	v, ok, _ := s2.Get([]byte("k150"))
	if !ok || string(v) != "v150" {
		t.Fatalf("recovered k150 = %q ok=%v", v, ok)
	}
	if _, ok, _ := s2.Get([]byte("k007")); ok {
		t.Fatal("recovered deleted key")
	}
}

// TestTornWALTail appends garbage to the WAL and verifies recovery stops at
// the torn record without failing.
func TestTornWALTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{Sync: SyncAlways, CheckpointEvery: 1 << 30})
	s.Put([]byte("good"), []byte("1"))
	s.wal.w.Flush()
	s.wal.f.Close()
	s.pager.f.Close()

	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x09, 0x17, 0x33}) // torn partial record
	f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s2.Close()
	if _, ok, _ := s2.Get([]byte("good")); !ok {
		t.Fatal("committed key lost")
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{Sync: SyncAlways, CheckpointEvery: 1 << 30})
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	fi, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("wal size after checkpoint = %d, want 0", fi.Size())
	}
	v, ok, _ := s.Get([]byte("k42"))
	if !ok || string(v) != "v" {
		t.Fatal("data lost after checkpoint")
	}
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s2.Len())
	}
}

func TestBatchPut(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncGroup})
	batch := make([]KV, 100)
	for i := range batch {
		batch[i] = KV{Key: []byte(fmt.Sprintf("b%03d", i)), Value: []byte("x")}
	}
	if err := s.PutBatch(batch); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
}

func TestConcurrentReadersOneWriter(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever})
	for i := 0; i < 1000; i++ {
		s.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%04d", i)))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(1000)
				k := []byte(fmt.Sprintf("k%04d", i))
				v, ok, err := s.Get(k)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if ok && !bytes.HasPrefix(v, []byte("v")) {
					t.Errorf("corrupt value %q for %q", v, k)
					return
				}
			}
		}(int64(r))
	}
	for i := 1000; i < 2000; i++ {
		s.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%04d", i)))
	}
	close(stop)
	wg.Wait()
}

// TestPropertyMatchesMapModel drives random operations against the store and
// an in-memory map, then verifies full agreement including scan order.
func TestPropertyMatchesMapModel(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever, CacheSize: 32})
	model := map[string]string{}
	rng := rand.New(rand.NewSource(42))
	for op := 0; op < 20000; op++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(500))
		switch rng.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("val-%d", rng.Int63())
			if err := s.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("Put: %v", err)
			}
			model[k] = v
		case 2:
			if err := s.Delete([]byte(k)); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			delete(model, k)
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", s.Len(), len(model))
	}
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	err := s.Scan(nil, nil, func(k, v []byte) bool {
		if i >= len(keys) {
			t.Fatalf("scan produced extra key %q", k)
		}
		if string(k) != keys[i] {
			t.Fatalf("scan key %d = %q, want %q", i, k, keys[i])
		}
		if string(v) != model[keys[i]] {
			t.Fatalf("scan value for %q = %q, want %q", k, v, model[keys[i]])
		}
		i++
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if i != len(keys) {
		t.Fatalf("scan stopped at %d of %d", i, len(keys))
	}
}

// TestQuickPutGet is a testing/quick property: any put is immediately gettable.
func TestQuickPutGet(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever})
	f := func(k [8]byte, v []byte) bool {
		key := append([]byte("q/"), k[:]...)
		if len(v) > 1024 {
			v = v[:1024]
		}
		if err := s.Put(key, v); err != nil {
			return false
		}
		got, ok, err := s.Get(key)
		return err == nil && ok && bytes.Equal(got, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeValuesNearLimit(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever})
	v := make([]byte, maxPayload-10)
	for i := range v {
		v[i] = byte(i)
	}
	if err := s.Put([]byte("big"), v); err != nil {
		t.Fatalf("Put near-limit value: %v", err)
	}
	got, ok, _ := s.Get([]byte("big"))
	if !ok || !bytes.Equal(got, v) {
		t.Fatal("large value corrupted")
	}
}

func TestStatsCounters(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever, CacheSize: 16})
	for i := 0; i < 3000; i++ {
		s.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v"))
	}
	st := s.Stats()
	if st.Pages < 2 {
		t.Fatalf("Pages = %d, want >= 2", st.Pages)
	}
	if st.Hits == 0 {
		t.Fatal("expected cache hits")
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions with tiny cache")
	}
}

func BenchmarkPut(b *testing.B) {
	dir := b.TempDir()
	s, _ := Open(dir, Options{Sync: SyncNever})
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put([]byte(fmt.Sprintf("bench-%09d", i)), []byte("payload-payload"))
	}
}

func BenchmarkGet(b *testing.B) {
	dir := b.TempDir()
	s, _ := Open(dir, Options{Sync: SyncNever})
	defer s.Close()
	const n = 100000
	for i := 0; i < n; i++ {
		s.Put([]byte(fmt.Sprintf("bench-%09d", i)), []byte("payload"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get([]byte(fmt.Sprintf("bench-%09d", i%n)))
	}
}
