package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// wal is a redo-only write-ahead log. Records:
//
//	lsn(8) op(1) klen(4) vlen(4) key val crc(4)
//
// op: 1 = put, 2 = delete, 3 = commit (klen/vlen zero).
// On recovery, records after the checkpoint LSN are replayed in order;
// a torn tail (bad CRC / short read) truncates the log at that point.
// Group commit: Sync() batches are controlled by the store's SyncPolicy.
type wal struct {
	f   *os.File
	w   *bufio.Writer
	lsn uint64
}

const (
	walPut    = 1
	walDelete = 2
	walCommit = 3
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open wal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

func (w *wal) append(op byte, key, val []byte) error {
	w.lsn++
	var hdr [17]byte
	binary.LittleEndian.PutUint64(hdr[0:], w.lsn)
	hdr[8] = op
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[13:], uint32(len(val)))
	crc := crc32.New(crcTable)
	crc.Write(hdr[:])
	crc.Write(key)
	crc.Write(val)
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(key); err != nil {
		return err
	}
	if _, err := w.w.Write(val); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	_, err := w.w.Write(sum[:])
	return err
}

func (w *wal) sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *wal) flush() error { return w.w.Flush() }

// truncate resets the log after a checkpoint has made its contents redundant.
func (w *wal) truncate() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.w.Reset(w.f)
	return nil
}

func (w *wal) close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// walRecord is one decoded log record.
type walRecord struct {
	lsn uint64
	op  byte
	key []byte
	val []byte
}

// replay streams records with lsn > afterLSN to fn, stopping cleanly at a
// torn tail. Returns the highest LSN seen.
func replayWAL(path string, afterLSN uint64, fn func(walRecord) error) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return afterLSN, nil
		}
		return afterLSN, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	maxLSN := afterLSN
	for {
		var hdr [17]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return maxLSN, nil // clean EOF or torn header: stop
		}
		lsn := binary.LittleEndian.Uint64(hdr[0:])
		op := hdr[8]
		klen := binary.LittleEndian.Uint32(hdr[9:])
		vlen := binary.LittleEndian.Uint32(hdr[13:])
		if klen > PageSize || vlen > PageSize || op == 0 || op > walCommit {
			return maxLSN, nil // corrupt tail
		}
		buf := make([]byte, int(klen)+int(vlen)+4)
		if _, err := io.ReadFull(r, buf); err != nil {
			return maxLSN, nil
		}
		crc := crc32.New(crcTable)
		crc.Write(hdr[:])
		crc.Write(buf[:klen+vlen])
		if crc.Sum32() != binary.LittleEndian.Uint32(buf[klen+vlen:]) {
			return maxLSN, nil // torn record
		}
		if lsn > maxLSN {
			maxLSN = lsn
		}
		if lsn <= afterLSN {
			continue // already checkpointed
		}
		rec := walRecord{lsn: lsn, op: op, key: buf[:klen], val: buf[klen : klen+vlen]}
		if err := fn(rec); err != nil {
			return maxLSN, err
		}
	}
}
