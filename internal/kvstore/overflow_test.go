package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestReplaceWithLargerValueOnFullPage is the regression test for the
// production deadlock found during integration: replacing a key with a
// larger value on a page with no free space must split, not overflow.
func TestReplaceWithLargerValueOnFullPage(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever})
	// Fill a leaf to the brim with medium cells.
	val := make([]byte, 120)
	for i := 0; i < 30; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%04d", i)), val); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	// Now grow every value to near the payload cap, forcing repeated
	// replace-splits.
	big := make([]byte, maxPayload-32)
	for i := range big {
		big[i] = byte(i)
	}
	for i := 0; i < 30; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%04d", i)), big); err != nil {
			t.Fatalf("grow %d: %v", i, err)
		}
	}
	if s.Len() != 30 {
		t.Fatalf("Len = %d, want 30", s.Len())
	}
	for i := 0; i < 30; i++ {
		v, ok, err := s.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil || !ok || !bytes.Equal(v, big) {
			t.Fatalf("key %d corrupted after grow: ok=%v err=%v", i, ok, err)
		}
	}
}

// TestRandomSizeChurn hammers the tree with random-size puts, overwrites
// and deletes; any page-arithmetic slip panics, and the final state must
// match a map model.
func TestRandomSizeChurn(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever, CacheSize: 32})
	model := map[string][]byte{}
	rng := rand.New(rand.NewSource(99))
	for op := 0; op < 8000; op++ {
		k := fmt.Sprintf("churn-%03d", rng.Intn(300))
		switch rng.Intn(4) {
		case 0, 1, 2:
			n := rng.Intn(maxPayload - 20)
			v := make([]byte, n)
			rng.Read(v)
			if err := s.Put([]byte(k), v); err != nil {
				t.Fatalf("Put size %d: %v", n, err)
			}
			model[k] = v
		case 3:
			if err := s.Delete([]byte(k)); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			delete(model, k)
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", s.Len(), len(model))
	}
	for k, want := range model {
		got, ok, err := s.Get([]byte(k))
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("key %s: ok=%v err=%v len=%d want %d", k, ok, err, len(got), len(want))
		}
	}
}

// TestLongKeysSplitInternalPages drives enough long keys to force internal
// page splits with large separators.
func TestLongKeysSplitInternalPages(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever, CacheSize: 64})
	longKey := func(i int) []byte {
		return []byte(fmt.Sprintf("%0500d", i)) // 500-byte keys
	}
	const n = 2000
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, i := range perm {
		if err := s.Put(longKey(i), []byte("v")); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d", s.Len())
	}
	// Order preserved.
	prev := -1
	s.Scan(nil, nil, func(k, v []byte) bool {
		var i int
		fmt.Sscanf(string(k), "%d", &i)
		if i <= prev {
			t.Fatalf("order violated: %d after %d", i, prev)
		}
		prev = i
		return true
	})
}

// TestPayloadCapEnforced verifies the documented cap.
func TestPayloadCapEnforced(t *testing.T) {
	s := openTemp(t, Options{Sync: SyncNever})
	k := []byte("k")
	if err := s.Put(k, make([]byte, maxPayload-len(k))); err != nil {
		t.Fatalf("at-cap put failed: %v", err)
	}
	if err := s.Put(k, make([]byte, maxPayload)); err == nil || !ErrTooLarge(err) {
		t.Fatalf("over-cap put: %v", err)
	}
}
