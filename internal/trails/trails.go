// Package trails implements the trail tab of Figure 2: segmenting surf
// streams into sessions, building per-session trail graphs, and replaying
// the recent hypertext context around a topic — "what trails was I
// following when I was last surfing about classical music?" — for one user
// or for the whole community. Popular pages in or near the community trail
// graph are surfaced via HITS authority scores over the trail
// neighbourhood.
package trails

import (
	"math"
	"sort"
	"time"

	"memex/internal/graph"
)

// Visit is one page-view event (mirrors the server's event log rows).
type Visit struct {
	User     int64
	Page     int64
	Referrer int64
	Time     time.Time
}

// Session is a maximal run of one user's visits with no gap exceeding the
// segmentation threshold.
type Session struct {
	User   int64
	Start  time.Time
	End    time.Time
	Visits []Visit
}

// DefaultGap is the classic 30-minute session-segmentation threshold.
const DefaultGap = 30 * time.Minute

// Segment splits time-ordered visits into per-user sessions using the gap
// threshold (gap <= 0 takes DefaultGap). Input visits may interleave users.
func Segment(visits []Visit, gap time.Duration) []Session {
	if gap <= 0 {
		gap = DefaultGap
	}
	open := map[int64]*Session{}
	var done []Session
	for _, v := range visits {
		s := open[v.User]
		if s != nil && v.Time.Sub(s.End) > gap {
			done = append(done, *s)
			s = nil
		}
		if s == nil {
			s = &Session{User: v.User, Start: v.Time}
			open[v.User] = s
		}
		s.Visits = append(s.Visits, v)
		s.End = v.Time
	}
	for _, s := range open {
		done = append(done, *s)
	}
	sort.Slice(done, func(i, j int) bool {
		if !done[i].Start.Equal(done[j].Start) {
			return done[i].Start.Before(done[j].Start)
		}
		return done[i].User < done[j].User
	})
	return done
}

// TrailGraph is the replayable context of a set of sessions: the visited
// pages with the transitions taken between them.
type TrailGraph struct {
	// Nodes are page ids ordered by descending weight.
	Nodes []int64
	// Edges are (from, to) transitions with traversal counts.
	Edges map[[2]int64]int
	// Weight scores each node by recency-decayed visit mass.
	Weight map[int64]float64
	// LastVisit records the most recent visit time per page.
	LastVisit map[int64]time.Time
}

// Build assembles a trail graph from sessions. Weights decay exponentially
// with age relative to `now` using halfLife (<=0 takes 7 days).
func Build(sessions []Session, now time.Time, halfLife time.Duration) *TrailGraph {
	if halfLife <= 0 {
		halfLife = 7 * 24 * time.Hour
	}
	tg := &TrailGraph{
		Edges:     map[[2]int64]int{},
		Weight:    map[int64]float64{},
		LastVisit: map[int64]time.Time{},
	}
	for _, s := range sessions {
		var prev int64
		for _, v := range s.Visits {
			age := now.Sub(v.Time)
			if age < 0 {
				age = 0
			}
			decay := halfLifeDecay(age, halfLife)
			tg.Weight[v.Page] += decay
			if v.Time.After(tg.LastVisit[v.Page]) {
				tg.LastVisit[v.Page] = v.Time
			}
			from := v.Referrer
			if from == 0 {
				from = prev
			}
			if from != 0 && from != v.Page {
				tg.Edges[[2]int64{from, v.Page}]++
			}
			prev = v.Page
		}
	}
	tg.Nodes = make([]int64, 0, len(tg.Weight))
	for p := range tg.Weight {
		tg.Nodes = append(tg.Nodes, p)
	}
	sort.Slice(tg.Nodes, func(i, j int) bool {
		wi, wj := tg.Weight[tg.Nodes[i]], tg.Weight[tg.Nodes[j]]
		if wi != wj {
			return wi > wj
		}
		return tg.Nodes[i] < tg.Nodes[j]
	})
	return tg
}

func halfLifeDecay(age, halfLife time.Duration) float64 {
	return math.Exp2(-float64(age) / float64(halfLife))
}

// Filter describes which visits make it into a replayed context.
type Filter struct {
	// User restricts to one user's trails (0 = whole community).
	User int64
	// Topic, when non-nil, keeps only visits whose page passes the
	// predicate (the classifier's topic test in the full system).
	Topic func(page int64) bool
	// Since drops visits before this instant (zero = no limit).
	Since time.Time
}

// Replay builds the trail graph for a topical context: visits are filtered
// by user, time window and topic predicate, re-segmented, and assembled
// into a recency-weighted trail graph. This recreates "the Web
// neighbourhood I was surfing the last time I was looking for X".
func Replay(visits []Visit, f Filter, gap time.Duration, now time.Time, halfLife time.Duration) *TrailGraph {
	var kept []Visit
	for _, v := range visits {
		if f.User != 0 && v.User != f.User {
			continue
		}
		if !f.Since.IsZero() && v.Time.Before(f.Since) {
			continue
		}
		if f.Topic != nil && !f.Topic(v.Page) {
			continue
		}
		kept = append(kept, v)
	}
	return Build(Segment(kept, gap), now, halfLife)
}

// Popular returns the k most authoritative pages in or near the trail
// graph: the trail nodes are expanded radius-1 into the web graph behind
// g, HITS runs on the induced subgraph, and authorities are returned in
// descending order. This answers "are there popular sites related to my
// experience that appeared recently?". g is any adjacency source — the
// engine passes a snapshot-pinned view over its versioned link records,
// so the whole ranking reads one frozen epoch of the link graph.
func Popular(tg *TrailGraph, g graph.AdjacencySource, k int) []int64 {
	if len(tg.Nodes) == 0 {
		return nil
	}
	neighborhood := graph.ExpandFrom(g, tg.Nodes, 1, 4*len(tg.Nodes)+64)
	if len(neighborhood) == 0 {
		// Trail pages unknown to the web graph: fall back to trail weight.
		if k > len(tg.Nodes) {
			k = len(tg.Nodes)
		}
		return append([]int64(nil), tg.Nodes[:k]...)
	}
	_, auths := graph.HITSOver(g, neighborhood, 20)
	return auths.Top(k)
}

// Transitions returns the trail edges sorted by descending traversal count.
func (tg *TrailGraph) Transitions() [][2]int64 {
	out := make([][2]int64, 0, len(tg.Edges))
	for e := range tg.Edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := tg.Edges[out[i]], tg.Edges[out[j]]
		if ci != cj {
			return ci > cj
		}
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Top returns the k heaviest context pages.
func (tg *TrailGraph) Top(k int) []int64 {
	if k > len(tg.Nodes) {
		k = len(tg.Nodes)
	}
	return append([]int64(nil), tg.Nodes[:k]...)
}
