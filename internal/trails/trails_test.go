package trails

import (
	"testing"
	"time"

	"memex/internal/graph"
)

var t0 = time.Date(2000, 5, 20, 10, 0, 0, 0, time.UTC)

func v(user, page, ref int64, offset time.Duration) Visit {
	return Visit{User: user, Page: page, Referrer: ref, Time: t0.Add(offset)}
}

func TestSegmentByGap(t *testing.T) {
	visits := []Visit{
		v(1, 10, 0, 0),
		v(1, 11, 10, time.Minute),
		v(1, 12, 11, 2*time.Minute),
		// 45-minute silence: new session.
		v(1, 20, 0, 47*time.Minute),
		v(1, 21, 20, 48*time.Minute),
	}
	sessions := Segment(visits, 30*time.Minute)
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d", len(sessions))
	}
	if len(sessions[0].Visits) != 3 || len(sessions[1].Visits) != 2 {
		t.Fatalf("session sizes: %d, %d", len(sessions[0].Visits), len(sessions[1].Visits))
	}
	if sessions[0].End.Sub(sessions[0].Start) != 2*time.Minute {
		t.Fatalf("session span wrong")
	}
}

func TestSegmentInterleavedUsers(t *testing.T) {
	visits := []Visit{
		v(1, 10, 0, 0),
		v(2, 50, 0, time.Second),
		v(1, 11, 10, time.Minute),
		v(2, 51, 50, time.Minute+time.Second),
	}
	sessions := Segment(visits, 0)
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d", len(sessions))
	}
	for _, s := range sessions {
		for _, vv := range s.Visits {
			if vv.User != s.User {
				t.Fatal("session mixes users")
			}
		}
	}
}

func TestSegmentEmpty(t *testing.T) {
	if got := Segment(nil, 0); len(got) != 0 {
		t.Fatalf("Segment(nil) = %v", got)
	}
}

func TestBuildWeightsAndEdges(t *testing.T) {
	sessions := Segment([]Visit{
		v(1, 10, 0, 0),
		v(1, 11, 10, time.Minute),
		v(1, 10, 11, 2*time.Minute), // revisit: weight accumulates
	}, 0)
	now := t0.Add(time.Hour)
	tg := Build(sessions, now, 7*24*time.Hour)
	if len(tg.Nodes) != 2 {
		t.Fatalf("nodes = %v", tg.Nodes)
	}
	if tg.Nodes[0] != 10 {
		t.Fatalf("heaviest node = %d, want 10 (visited twice)", tg.Nodes[0])
	}
	if tg.Edges[[2]int64{10, 11}] != 1 || tg.Edges[[2]int64{11, 10}] != 1 {
		t.Fatalf("edges = %v", tg.Edges)
	}
	if !tg.LastVisit[10].Equal(t0.Add(2 * time.Minute)) {
		t.Fatal("LastVisit wrong")
	}
}

func TestRecencyDecay(t *testing.T) {
	// Same page visited once long ago vs page visited once now.
	old := Visit{User: 1, Page: 1, Time: t0}
	recent := Visit{User: 1, Page: 2, Time: t0.Add(14 * 24 * time.Hour)}
	tg := Build(Segment([]Visit{old, recent}, 0), t0.Add(14*24*time.Hour), 7*24*time.Hour)
	if tg.Weight[2] <= tg.Weight[1] {
		t.Fatalf("no recency decay: old=%v recent=%v", tg.Weight[1], tg.Weight[2])
	}
	// Two half-lives → weight ≈ 1/4.
	if tg.Weight[1] > 0.3 || tg.Weight[1] < 0.2 {
		t.Fatalf("decay off: %v", tg.Weight[1])
	}
}

func TestFallbackEdgesWithoutReferrer(t *testing.T) {
	// No referrers: consecutive session visits still chain.
	tg := Build(Segment([]Visit{
		v(1, 10, 0, 0),
		{User: 1, Page: 11, Time: t0.Add(time.Minute)},
	}, 0), t0.Add(time.Hour), 0)
	if tg.Edges[[2]int64{10, 11}] != 1 {
		t.Fatalf("fallback edge missing: %v", tg.Edges)
	}
}

func TestReplayTopicFilter(t *testing.T) {
	onTopic := map[int64]bool{10: true, 11: true}
	visits := []Visit{
		v(1, 10, 0, 0),
		v(1, 99, 10, time.Minute), // off topic
		v(1, 11, 99, 2*time.Minute),
		v(2, 10, 0, time.Minute), // another community member
		v(2, 55, 10, 2*time.Minute),
	}
	// Single user.
	tg := Replay(visits, Filter{User: 1, Topic: func(p int64) bool { return onTopic[p] }}, 0, t0.Add(time.Hour), 0)
	if len(tg.Nodes) != 2 {
		t.Fatalf("nodes = %v", tg.Nodes)
	}
	if _, ok := tg.Weight[99]; ok {
		t.Fatal("off-topic page leaked into replay")
	}
	// Whole community.
	tg = Replay(visits, Filter{Topic: func(p int64) bool { return onTopic[p] }}, 0, t0.Add(time.Hour), 0)
	if tg.Weight[10] <= tg.Weight[11] {
		t.Fatal("community weight not accumulated across users")
	}
	// Since filter.
	tg = Replay(visits, Filter{Since: t0.Add(90 * time.Second)}, 0, t0.Add(time.Hour), 0)
	for _, n := range tg.Nodes {
		if n == 10 && tg.LastVisit[10].Before(t0.Add(90*time.Second)) {
			t.Fatal("Since filter leaked old visits")
		}
	}
}

func TestPopularUsesLinkStructure(t *testing.T) {
	// Trail covers 1,2,3. The web graph has a popular page 100 linked from
	// all trail pages (radius-1 neighbour), which HITS must surface.
	g := graph.New()
	for _, p := range []int64{1, 2, 3} {
		g.AddEdge(p, 100)
	}
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	tg := Build(Segment([]Visit{
		v(1, 1, 0, 0), v(1, 2, 1, time.Minute), v(1, 3, 2, 2*time.Minute),
	}, 0), t0.Add(time.Hour), 0)
	top := Popular(tg, g, 2)
	if len(top) == 0 || top[0] != 100 {
		t.Fatalf("Popular = %v, want 100 first", top)
	}
}

func TestPopularFallbackWithoutGraph(t *testing.T) {
	g := graph.New() // trail pages unknown to the graph
	tg := Build(Segment([]Visit{v(1, 7, 0, 0), v(1, 8, 7, time.Minute)}, 0), t0.Add(time.Hour), 0)
	top := Popular(tg, g, 5)
	if len(top) != 2 {
		t.Fatalf("fallback Popular = %v", top)
	}
	if Popular(&TrailGraph{}, g, 3) != nil {
		t.Fatal("Popular on empty trail not nil")
	}
}

func TestTransitionsSorted(t *testing.T) {
	tg := Build(Segment([]Visit{
		v(1, 1, 0, 0), v(1, 2, 1, time.Second),
		v(1, 1, 2, 2*time.Second), v(1, 2, 1, 3*time.Second),
		v(1, 3, 2, 4*time.Second),
	}, 0), t0.Add(time.Hour), 0)
	trans := tg.Transitions()
	if len(trans) == 0 {
		t.Fatal("no transitions")
	}
	if trans[0] != [2]int64{1, 2} || tg.Edges[trans[0]] != 2 {
		t.Fatalf("Transitions[0] = %v (count %d)", trans[0], tg.Edges[trans[0]])
	}
}

func TestTop(t *testing.T) {
	tg := Build(Segment([]Visit{v(1, 1, 0, 0), v(1, 2, 1, time.Second)}, 0), t0.Add(time.Hour), 0)
	if got := tg.Top(1); len(got) != 1 {
		t.Fatalf("Top(1) = %v", got)
	}
	if got := tg.Top(10); len(got) != 2 {
		t.Fatalf("Top(10) = %v", got)
	}
}

func BenchmarkReplay(b *testing.B) {
	var visits []Visit
	for i := 0; i < 20000; i++ {
		visits = append(visits, Visit{
			User: int64(i%50 + 1),
			Page: int64(i % 2000),
			Time: t0.Add(time.Duration(i) * 20 * time.Second),
		})
	}
	topic := func(p int64) bool { return p%5 == 0 }
	now := t0.Add(120 * time.Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Replay(visits, Filter{Topic: topic}, 0, now, 0)
	}
}
