package rdbms

import (
	"fmt"

	"memex/internal/kvstore"
)

// Insert adds a row. It fails if a row with the same primary key exists.
func (t *Table) Insert(r Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	pk, err := t.pkOf(r)
	if err != nil {
		return err
	}
	key := t.rowKey(pk)
	if _, ok, err := t.db.kv.Get(key); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("rdbms: %s: duplicate key %s", t.schema.Name, pk)
	}
	return t.writeRow(key, pk, r, nil)
}

// Upsert inserts or replaces the row with the same primary key.
func (t *Table) Upsert(r Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	pk, err := t.pkOf(r)
	if err != nil {
		return err
	}
	key := t.rowKey(pk)
	old, ok, err := t.db.kv.Get(key)
	if err != nil {
		return err
	}
	var oldRow Row
	if ok {
		oldRow, err = decodeRow(&t.schema, old)
		if err != nil {
			return err
		}
	}
	return t.writeRow(key, pk, r, oldRow)
}

// Update applies fn to the row with primary key pk and writes the result.
// Returns ok=false if the row does not exist.
func (t *Table) Update(pk Value, fn func(Row) Row) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := t.rowKey(pk)
	old, ok, err := t.db.kv.Get(key)
	if err != nil || !ok {
		return false, err
	}
	oldRow, err := decodeRow(&t.schema, old)
	if err != nil {
		return false, err
	}
	newRow := fn(cloneRow(oldRow))
	newPK, err := t.pkOf(newRow)
	if err != nil {
		return false, err
	}
	if !newPK.Equal(pk) {
		return false, fmt.Errorf("rdbms: %s: Update may not change the primary key", t.schema.Name)
	}
	return true, t.writeRow(key, pk, newRow, oldRow)
}

// writeRow encodes and stores r at key, maintaining secondary indexes.
// oldRow, when non-nil, is the row being replaced (its index entries are
// removed first). All kvstore mutations for one row go in a single batch so
// that WAL recovery cannot observe a row without its index entries.
func (t *Table) writeRow(key []byte, pk Value, r Row, oldRow Row) error {
	blob, err := encodeRow(&t.schema, r, make([]byte, 0, 256))
	if err != nil {
		return err
	}
	// Remove stale index entries.
	if oldRow != nil {
		for _, idxCol := range t.schema.Indexes {
			ci := t.schema.colIndex(idxCol)
			oldVal := oldRow[idxCol]
			newVal := r[idxCol]
			if !oldVal.Equal(newVal) {
				if err := t.db.kv.Delete(t.idxKey(ci, oldVal, pk)); err != nil {
					return err
				}
			}
		}
	}
	pkEnc := encodeOrdered(pk, nil)
	batch := make([]kvstore.KV, 0, 1+len(t.schema.Indexes))
	batch = append(batch, kvstore.KV{Key: key, Value: blob})
	for _, idxCol := range t.schema.Indexes {
		ci := t.schema.colIndex(idxCol)
		// The index entry's value carries the PK encoding so lookups need
		// no key parsing.
		batch = append(batch, kvstore.KV{Key: t.idxKey(ci, r[idxCol], pk), Value: pkEnc})
	}
	return t.db.kv.PutBatch(batch)
}

// Get fetches the row with primary key pk.
func (t *Table) Get(pk Value) (Row, bool, error) {
	blob, ok, err := t.db.kv.Get(t.rowKey(pk))
	if err != nil || !ok {
		return nil, false, err
	}
	r, err := decodeRow(&t.schema, blob)
	if err != nil {
		return nil, false, err
	}
	return r, true, nil
}

// Delete removes the row with primary key pk (no error when absent).
func (t *Table) Delete(pk Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := t.rowKey(pk)
	blob, ok, err := t.db.kv.Get(key)
	if err != nil || !ok {
		return err
	}
	r, err := decodeRow(&t.schema, blob)
	if err != nil {
		return err
	}
	for _, idxCol := range t.schema.Indexes {
		ci := t.schema.colIndex(idxCol)
		if err := t.db.kv.Delete(t.idxKey(ci, r[idxCol], pk)); err != nil {
			return err
		}
	}
	return t.db.kv.Delete(key)
}

// Count returns the number of rows (by scanning; tables are metadata-sized).
func (t *Table) Count() (int, error) {
	n := 0
	err := t.db.kv.ScanPrefix(t.rowPrefix(), func(k, v []byte) bool {
		n++
		return true
	})
	return n, err
}

func (t *Table) pkOf(r Row) (Value, error) {
	pk, ok := r[t.schema.Key]
	if !ok {
		return Value{}, fmt.Errorf("rdbms: %s: row missing key column %q", t.schema.Name, t.schema.Key)
	}
	want := t.schema.Columns[t.keyIdx].Type
	if pk.Type != want {
		return Value{}, fmt.Errorf("rdbms: %s: key type %s, want %s", t.schema.Name, pk.Type, want)
	}
	return pk, nil
}

func cloneRow(r Row) Row {
	c := make(Row, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}
