package rdbms

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"

	"memex/internal/kvstore"
)

// Keyspace layout inside the backing kvstore:
//
//	cat/<table>                → JSON schema (catalog)
//	seq/<table>                → next auto-increment id (8 bytes LE)
//	tbl/<tid>/<pk-ordered>     → encoded row
//	idx/<tid>/<col#>/<val-ordered><pk-ordered> → pk-ordered (covering the PK)
//
// <tid> is a stable 4-byte table id assigned at CreateTable.

// DB is the relational engine: a catalog of tables over one kvstore.
type DB struct {
	mu     sync.RWMutex
	kv     *kvstore.Store
	ownKV  bool
	tables map[string]*Table
	nextID uint32
}

// Table is a handle to one table.
type Table struct {
	db     *DB
	id     uint32
	schema Schema
	keyIdx int
	mu     sync.Mutex // serialises multi-key mutations for this table
}

type catalogEntry struct {
	ID     uint32 `json:"id"`
	Schema Schema `json:"schema"`
}

// Open opens a database stored under dir.
func Open(dir string, kvOpts kvstore.Options) (*DB, error) {
	kv, err := kvstore.Open(dir, kvOpts)
	if err != nil {
		return nil, err
	}
	db, err := NewOn(kv)
	if err != nil {
		kv.Close()
		return nil, err
	}
	db.ownKV = true
	return db, nil
}

// NewOn builds a DB over an existing kvstore (shared with other subsystems).
func NewOn(kv *kvstore.Store) (*DB, error) {
	db := &DB{kv: kv, tables: map[string]*Table{}}
	// Load catalog.
	err := kv.ScanPrefix([]byte("cat/"), func(k, v []byte) bool {
		var ent catalogEntry
		if err := json.Unmarshal(v, &ent); err != nil {
			return true // skip corrupt entries; CreateTable will fail loudly
		}
		t := &Table{db: db, id: ent.ID, schema: ent.Schema}
		t.keyIdx = ent.Schema.colIndex(ent.Schema.Key)
		db.tables[ent.Schema.Name] = t
		if ent.ID >= db.nextID {
			db.nextID = ent.ID + 1
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// Close closes the database (and the kvstore if owned).
func (db *DB) Close() error {
	if db.ownKV {
		return db.kv.Close()
	}
	return nil
}

// KV exposes the backing store (used by Stats and by tests).
func (db *DB) KV() *kvstore.Store { return db.kv }

// CreateTable registers a new table. It is an error if the name exists.
func (db *DB) CreateTable(s Schema) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[s.Name]; ok {
		return nil, fmt.Errorf("rdbms: table %q already exists", s.Name)
	}
	ent := catalogEntry{ID: db.nextID, Schema: s}
	db.nextID++
	blob, err := json.Marshal(ent)
	if err != nil {
		return nil, err
	}
	if err := db.kv.Put([]byte("cat/"+s.Name), blob); err != nil {
		return nil, err
	}
	t := &Table{db: db, id: ent.ID, schema: s, keyIdx: s.colIndex(s.Key)}
	db.tables[s.Name] = t
	return t, nil
}

// Table returns a handle to an existing table, or an error.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("rdbms: no such table %q", name)
	}
	return t, nil
}

// EnsureTable returns the named table, creating it with schema s when absent.
func (db *DB) EnsureTable(s Schema) (*Table, error) {
	db.mu.RLock()
	t, ok := db.tables[s.Name]
	db.mu.RUnlock()
	if ok {
		return t, nil
	}
	return db.CreateTable(s)
}

// DropTable removes a table and all its rows and index entries.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	t, ok := db.tables[name]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("rdbms: no such table %q", name)
	}
	delete(db.tables, name)
	db.mu.Unlock()

	var doomed [][]byte
	collect := func(k, v []byte) bool {
		doomed = append(doomed, k)
		return true
	}
	db.kv.ScanPrefix(t.rowPrefix(), collect)
	db.kv.ScanPrefix(t.idxPrefixAll(), collect)
	for _, k := range doomed {
		if err := db.kv.Delete(k); err != nil {
			return err
		}
	}
	if err := db.kv.Delete([]byte("cat/" + name)); err != nil {
		return err
	}
	return db.kv.Delete([]byte("seq/" + name))
}

// Tables lists table names in the catalog.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	return names
}

// NextID returns an auto-incrementing int64 for the table, persisted so ids
// survive restarts. Useful for synthetic primary keys.
func (t *Table) NextID() (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := []byte("seq/" + t.schema.Name)
	var next int64 = 1
	if v, ok, err := t.db.kv.Get(key); err != nil {
		return 0, err
	} else if ok {
		next = int64(binary.LittleEndian.Uint64(v)) + 1
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(next))
	if err := t.db.kv.Put(key, buf[:]); err != nil {
		return 0, err
	}
	return next, nil
}

func (t *Table) rowPrefix() []byte {
	p := make([]byte, 0, 16)
	p = append(p, "tbl/"...)
	p = binary.BigEndian.AppendUint32(p, t.id)
	p = append(p, '/')
	return p
}

func (t *Table) rowKey(pk Value) []byte {
	return encodeOrdered(pk, t.rowPrefix())
}

func (t *Table) idxPrefixAll() []byte {
	p := make([]byte, 0, 16)
	p = append(p, "idx/"...)
	p = binary.BigEndian.AppendUint32(p, t.id)
	p = append(p, '/')
	return p
}

func (t *Table) idxPrefix(col int) []byte {
	p := t.idxPrefixAll()
	p = binary.BigEndian.AppendUint16(p, uint16(col))
	p = append(p, '/')
	return p
}

func (t *Table) idxKey(col int, val, pk Value) []byte {
	p := encodeOrdered(val, t.idxPrefix(col))
	return encodeOrdered(pk, p)
}

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema { return t.schema }
