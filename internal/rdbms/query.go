package rdbms

import (
	"bytes"
	"sort"
)

// Pred is a predicate over one column. Combine with Query.Where (conjunction).
type Pred struct {
	Col string
	Op  Op
	Val Value
	// Hi is the upper bound for OpBetween.
	Hi Value
}

// Op enumerates predicate operators.
type Op int

const (
	OpEq Op = iota + 1
	OpLt
	OpLe
	OpGt
	OpGe
	OpNe
	OpBetween // Val <= col < Hi
)

// Eq builds an equality predicate.
func Eq(col string, v Value) Pred { return Pred{Col: col, Op: OpEq, Val: v} }

// Gt / Ge / Lt / Le / Ne build comparison predicates.
func Gt(col string, v Value) Pred { return Pred{Col: col, Op: OpGt, Val: v} }
func Ge(col string, v Value) Pred { return Pred{Col: col, Op: OpGe, Val: v} }
func Lt(col string, v Value) Pred { return Pred{Col: col, Op: OpLt, Val: v} }
func Le(col string, v Value) Pred { return Pred{Col: col, Op: OpLe, Val: v} }
func Ne(col string, v Value) Pred { return Pred{Col: col, Op: OpNe, Val: v} }

// Between builds a half-open range predicate lo <= col < hi.
func Between(col string, lo, hi Value) Pred {
	return Pred{Col: col, Op: OpBetween, Val: lo, Hi: hi}
}

func (p Pred) eval(r Row) bool {
	v, ok := r[p.Col]
	if !ok {
		return false
	}
	switch p.Op {
	case OpEq:
		return v.Equal(p.Val)
	case OpNe:
		return !v.Equal(p.Val)
	case OpLt:
		return v.Less(p.Val)
	case OpLe:
		return v.Less(p.Val) || v.Equal(p.Val)
	case OpGt:
		return p.Val.Less(v)
	case OpGe:
		return p.Val.Less(v) || p.Val.Equal(v)
	case OpBetween:
		geLo := p.Val.Less(v) || p.Val.Equal(v)
		ltHi := v.Less(p.Hi)
		return geLo && ltHi
	}
	return false
}

// Query is a fluent select over one table. The planner uses a secondary
// index for the first indexable predicate (equality or range on an indexed
// or primary-key column); remaining predicates are applied as filters.
type Query struct {
	t       *Table
	preds   []Pred
	limit   int
	orderBy string
	desc    bool
}

// Select starts a query on the table.
func (t *Table) Select() *Query { return &Query{t: t, limit: -1} }

// Where adds a predicate (conjunctive).
func (q *Query) Where(p Pred) *Query { q.preds = append(q.preds, p); return q }

// Limit caps the number of rows returned (applied after ordering).
func (q *Query) Limit(n int) *Query { q.limit = n; return q }

// OrderBy sorts results by the given column ascending (desc=false).
func (q *Query) OrderBy(col string, desc bool) *Query {
	q.orderBy = col
	q.desc = desc
	return q
}

// Plan describes how a query will execute (exposed for tests and E5).
type Plan struct {
	// Access is "pk", "index" or "scan".
	Access string
	// Column is the access column for pk/index plans.
	Column string
}

// plan selects the access path: a primary-key point/range, a secondary
// index point/range, or a full scan.
func (q *Query) plan() (Plan, *Pred) {
	for i := range q.preds {
		p := &q.preds[i]
		if !indexableOp(p.Op) {
			continue
		}
		if p.Col == q.t.schema.Key {
			return Plan{Access: "pk", Column: p.Col}, p
		}
	}
	for i := range q.preds {
		p := &q.preds[i]
		if !indexableOp(p.Op) {
			continue
		}
		for _, idx := range q.t.schema.Indexes {
			if p.Col == idx {
				return Plan{Access: "index", Column: p.Col}, p
			}
		}
	}
	return Plan{Access: "scan"}, nil
}

// Explain returns the plan chosen for this query.
func (q *Query) Explain() Plan {
	p, _ := q.plan()
	return p
}

func indexableOp(op Op) bool {
	switch op {
	case OpEq, OpLt, OpLe, OpGt, OpGe, OpBetween:
		return true
	}
	return false
}

// Rows executes the query and returns all matching rows.
func (q *Query) Rows() ([]Row, error) {
	var out []Row
	err := q.Each(func(r Row) bool {
		out = append(out, r)
		return true
	})
	return out, err
}

// First returns the first matching row, with ok=false when none match.
func (q *Query) First() (Row, bool, error) {
	var row Row
	found := false
	err := q.Each(func(r Row) bool {
		row = r
		found = true
		return false
	})
	return row, found, err
}

// Count executes the query and returns the number of matches.
func (q *Query) Count() (int, error) {
	n := 0
	err := q.Each(func(Row) bool { n++; return true })
	return n, err
}

// Each streams matching rows to fn; fn returning false stops iteration.
// When OrderBy is set, rows are buffered and sorted first.
func (q *Query) Each(fn func(Row) bool) error {
	if q.orderBy != "" {
		rows, err := q.collect()
		if err != nil {
			return err
		}
		col := q.orderBy
		sort.SliceStable(rows, func(i, j int) bool {
			if q.desc {
				return rows[j][col].Less(rows[i][col])
			}
			return rows[i][col].Less(rows[j][col])
		})
		if q.limit >= 0 && len(rows) > q.limit {
			rows = rows[:q.limit]
		}
		for _, r := range rows {
			if !fn(r) {
				return nil
			}
		}
		return nil
	}
	n := 0
	return q.each(func(r Row) bool {
		if q.limit >= 0 && n >= q.limit {
			return false
		}
		n++
		return fn(r)
	})
}

func (q *Query) collect() ([]Row, error) {
	var rows []Row
	err := q.each(func(r Row) bool {
		rows = append(rows, r)
		return true
	})
	return rows, err
}

// each is the unordered, unlimited row stream.
func (q *Query) each(fn func(Row) bool) error {
	plan, driver := q.plan()
	filter := func(r Row) bool {
		for i := range q.preds {
			p := &q.preds[i]
			if driver != nil && p == driver && p.Op != OpNe {
				// The driving predicate is enforced by the scan bounds for
				// Eq/Between; for open ranges bounds are one-sided, so
				// re-check to be safe (cheap).
				if !p.eval(r) {
					return false
				}
				continue
			}
			if !p.eval(r) {
				return false
			}
		}
		return true
	}

	switch plan.Access {
	case "pk":
		lo, hi := q.t.pkBounds(driver)
		return q.t.db.kv.Scan(lo, hi, func(k, v []byte) bool {
			r, err := decodeRow(&q.t.schema, v)
			if err != nil {
				return true
			}
			if !filter(r) {
				return true
			}
			return fn(r)
		})
	case "index":
		ci := q.t.schema.colIndex(plan.Column)
		lo, hi := q.t.idxBounds(ci, driver)
		// Collect PK encodings from the index, then fetch rows.
		var pks [][]byte
		prefix := q.t.idxPrefix(ci)
		err := q.t.db.kv.Scan(lo, hi, func(k, v []byte) bool {
			if !bytes.HasPrefix(k, prefix) {
				return false
			}
			pks = append(pks, v)
			return true
		})
		if err != nil {
			return err
		}
		for _, pkEnc := range pks {
			r, ok, err := q.t.rowByPKEnc(pkEnc)
			if err != nil {
				return err
			}
			if !ok || !filter(r) {
				continue
			}
			if !fn(r) {
				return nil
			}
		}
		return nil
	default:
		return q.t.db.kv.ScanPrefix(q.t.rowPrefix(), func(k, v []byte) bool {
			r, err := decodeRow(&q.t.schema, v)
			if err != nil {
				return true
			}
			if !filter(r) {
				return true
			}
			return fn(r)
		})
	}
}

// pkBounds converts the driving predicate into a [lo,hi) byte range over the
// table's row keyspace.
func (t *Table) pkBounds(p *Pred) (lo, hi []byte) {
	prefix := t.rowPrefix()
	switch p.Op {
	case OpEq:
		lo = encodeOrdered(p.Val, append([]byte(nil), prefix...))
		hi = append(append([]byte(nil), lo...), 0x00)
	case OpGe, OpGt:
		lo = encodeOrdered(p.Val, append([]byte(nil), prefix...))
		if p.Op == OpGt {
			lo = append(lo, 0xff)
		}
		hi = prefixEnd(prefix)
	case OpLt, OpLe:
		lo = append([]byte(nil), prefix...)
		hi = encodeOrdered(p.Val, append([]byte(nil), prefix...))
		if p.Op == OpLe {
			hi = append(hi, 0x00)
		}
	case OpBetween:
		lo = encodeOrdered(p.Val, append([]byte(nil), prefix...))
		hi = encodeOrdered(p.Hi, append([]byte(nil), prefix...))
	default:
		lo = append([]byte(nil), prefix...)
		hi = prefixEnd(prefix)
	}
	return lo, hi
}

// idxBounds converts the driving predicate into a range over index keys.
func (t *Table) idxBounds(ci int, p *Pred) (lo, hi []byte) {
	prefix := t.idxPrefix(ci)
	switch p.Op {
	case OpEq:
		lo = encodeOrdered(p.Val, append([]byte(nil), prefix...))
		hi = prefixEnd(lo)
	case OpGe, OpGt:
		lo = encodeOrdered(p.Val, append([]byte(nil), prefix...))
		if p.Op == OpGt {
			lo = prefixEnd(lo)
		}
		hi = prefixEnd(prefix)
	case OpLt, OpLe:
		lo = append([]byte(nil), prefix...)
		hi = encodeOrdered(p.Val, append([]byte(nil), prefix...))
		if p.Op == OpLe {
			hi = prefixEnd(hi)
		}
	case OpBetween:
		lo = encodeOrdered(p.Val, append([]byte(nil), prefix...))
		hi = encodeOrdered(p.Hi, append([]byte(nil), prefix...))
	default:
		lo = append([]byte(nil), prefix...)
		hi = prefixEnd(prefix)
	}
	return lo, hi
}

// rowByPKEnc resolves an index entry's stored PK encoding back to its row.
func (t *Table) rowByPKEnc(pkEnc []byte) (Row, bool, error) {
	rowKey := append(append([]byte(nil), t.rowPrefix()...), pkEnc...)
	blob, ok, err := t.db.kv.Get(rowKey)
	if err != nil || !ok {
		return nil, false, err
	}
	r, err := decodeRow(&t.schema, blob)
	if err != nil {
		return nil, false, err
	}
	return r, true, nil
}

func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] < 0xff {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
