package rdbms

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"memex/internal/kvstore"
)

func openDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), kvstore.Options{Sync: kvstore.SyncNever})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func pagesSchema() Schema {
	return Schema{
		Name: "pages",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "url", Type: TString},
			{Name: "title", Type: TString},
			{Name: "fetched", Type: TTime},
			{Name: "score", Type: TFloat},
			{Name: "public", Type: TBool},
		},
		Key:     "id",
		Indexes: []string{"url", "score"},
	}
}

func TestSchemaValidate(t *testing.T) {
	s := pagesSchema()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	bad := []Schema{
		{Name: "", Columns: []Column{{Name: "a", Type: TInt}}, Key: "a"},
		{Name: "x", Key: "a"},
		{Name: "x", Columns: []Column{{Name: "a", Type: TInt}, {Name: "a", Type: TInt}}, Key: "a"},
		{Name: "x", Columns: []Column{{Name: "a", Type: TInt}}, Key: "missing"},
		{Name: "x", Columns: []Column{{Name: "a", Type: TFloat}}, Key: "a"}, // float key
		{Name: "x", Columns: []Column{{Name: "a", Type: TInt}}, Key: "a", Indexes: []string{"zz"}},
		{Name: "x", Columns: []Column{{Name: "a", Type: TInt}, {Name: "b", Type: TBytes}}, Key: "a", Indexes: []string{"b"}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d accepted", i)
		}
	}
}

func samplePage(id int64) Row {
	return Row{
		"id":      Int(id),
		"url":     String(fmt.Sprintf("http://example.com/p%d", id)),
		"title":   String(fmt.Sprintf("Page %d", id)),
		"fetched": Time(time.Unix(1000000+id, 0).UTC()),
		"score":   Float(float64(id) / 10),
		"public":  Bool(id%2 == 0),
	}
}

func TestInsertGet(t *testing.T) {
	db := openDB(t)
	tbl, err := db.CreateTable(pagesSchema())
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if err := tbl.Insert(samplePage(1)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	r, ok, err := tbl.Get(Int(1))
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if r.MustString("url") != "http://example.com/p1" {
		t.Fatalf("url = %q", r.MustString("url"))
	}
	if r.MustFloat("score") != 0.1 {
		t.Fatalf("score = %v", r.MustFloat("score"))
	}
	if !r.MustTime("fetched").Equal(time.Unix(1000001, 0)) {
		t.Fatalf("fetched = %v", r.MustTime("fetched"))
	}
}

func TestInsertDuplicateFails(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable(pagesSchema())
	tbl.Insert(samplePage(1))
	if err := tbl.Insert(samplePage(1)); err == nil {
		t.Fatal("duplicate insert accepted")
	}
}

func TestUpsertAndUpdate(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable(pagesSchema())
	tbl.Insert(samplePage(1))
	p := samplePage(1)
	p["title"] = String("Renamed")
	if err := tbl.Upsert(p); err != nil {
		t.Fatalf("Upsert: %v", err)
	}
	r, _, _ := tbl.Get(Int(1))
	if r.MustString("title") != "Renamed" {
		t.Fatalf("title = %q", r.MustString("title"))
	}

	ok, err := tbl.Update(Int(1), func(r Row) Row {
		r["score"] = Float(9.9)
		return r
	})
	if err != nil || !ok {
		t.Fatalf("Update: ok=%v err=%v", ok, err)
	}
	r, _, _ = tbl.Get(Int(1))
	if r.MustFloat("score") != 9.9 {
		t.Fatalf("score = %v", r.MustFloat("score"))
	}

	// Update of a missing row reports ok=false.
	ok, err = tbl.Update(Int(99), func(r Row) Row { return r })
	if err != nil || ok {
		t.Fatalf("Update missing: ok=%v err=%v", ok, err)
	}

	// Changing the PK inside Update is rejected.
	_, err = tbl.Update(Int(1), func(r Row) Row {
		r["id"] = Int(2)
		return r
	})
	if err == nil {
		t.Fatal("PK mutation in Update accepted")
	}
}

func TestDeleteMaintainsIndexes(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable(pagesSchema())
	for i := int64(1); i <= 10; i++ {
		tbl.Insert(samplePage(i))
	}
	if err := tbl.Delete(Int(5)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	rows, err := tbl.Select().Where(Eq("url", String("http://example.com/p5"))).Rows()
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(rows) != 0 {
		t.Fatalf("index still returns deleted row: %v", rows)
	}
	n, _ := tbl.Count()
	if n != 9 {
		t.Fatalf("Count = %d, want 9", n)
	}
}

func TestQueryPlanSelection(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable(pagesSchema())
	cases := []struct {
		q    *Query
		want string
	}{
		{tbl.Select().Where(Eq("id", Int(3))), "pk"},
		{tbl.Select().Where(Between("id", Int(1), Int(5))), "pk"},
		{tbl.Select().Where(Eq("url", String("x"))), "index"},
		{tbl.Select().Where(Ge("score", Float(0.5))), "index"},
		{tbl.Select().Where(Eq("title", String("x"))), "scan"},
		{tbl.Select().Where(Ne("id", Int(3))), "scan"},
		{tbl.Select(), "scan"},
		// PK predicate preferred over secondary index.
		{tbl.Select().Where(Eq("url", String("x"))).Where(Eq("id", Int(1))), "pk"},
	}
	for i, c := range cases {
		if got := c.q.Explain().Access; got != c.want {
			t.Errorf("case %d: plan = %q, want %q", i, got, c.want)
		}
	}
}

func TestQueryResultsAllPlans(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable(pagesSchema())
	for i := int64(0); i < 50; i++ {
		if err := tbl.Insert(samplePage(i)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	// PK equality.
	rows, _ := tbl.Select().Where(Eq("id", Int(7))).Rows()
	if len(rows) != 1 || rows[0].MustInt("id") != 7 {
		t.Fatalf("pk eq got %v", rows)
	}
	// PK range.
	rows, _ = tbl.Select().Where(Between("id", Int(10), Int(15))).Rows()
	if len(rows) != 5 {
		t.Fatalf("pk between got %d rows", len(rows))
	}
	// Secondary index equality.
	rows, _ = tbl.Select().Where(Eq("url", String("http://example.com/p33"))).Rows()
	if len(rows) != 1 || rows[0].MustInt("id") != 33 {
		t.Fatalf("index eq got %v", rows)
	}
	// Secondary index range: score >= 4.0 means id >= 40.
	rows, _ = tbl.Select().Where(Ge("score", Float(4.0))).Rows()
	if len(rows) != 10 {
		t.Fatalf("index ge got %d rows", len(rows))
	}
	// Full scan with filter.
	rows, _ = tbl.Select().Where(Eq("public", Bool(true))).Rows()
	if len(rows) != 25 {
		t.Fatalf("scan filter got %d rows", len(rows))
	}
	// Conjunction: index drives, filter applies.
	rows, _ = tbl.Select().
		Where(Ge("score", Float(4.0))).
		Where(Eq("public", Bool(true))).
		Rows()
	if len(rows) != 5 {
		t.Fatalf("conjunction got %d rows", len(rows))
	}
}

func TestQueryOrderLimit(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable(pagesSchema())
	perm := rand.New(rand.NewSource(1)).Perm(30)
	for _, i := range perm {
		tbl.Insert(samplePage(int64(i)))
	}
	rows, err := tbl.Select().OrderBy("score", true).Limit(3).Rows()
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("limit got %d rows", len(rows))
	}
	if rows[0].MustInt("id") != 29 || rows[2].MustInt("id") != 27 {
		t.Fatalf("order desc got ids %d,%d,%d", rows[0].MustInt("id"), rows[1].MustInt("id"), rows[2].MustInt("id"))
	}
	// Ascending PK scan order is the natural B+tree order.
	var ids []int64
	tbl.Select().Each(func(r Row) bool {
		ids = append(ids, r.MustInt("id"))
		return true
	})
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Fatal("full scan not in PK order")
	}
}

func TestNegativeIntKeysSortCorrectly(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable(Schema{
		Name:    "neg",
		Columns: []Column{{Name: "k", Type: TInt}, {Name: "v", Type: TString}},
		Key:     "k",
	})
	for _, k := range []int64{5, -3, 0, -100, 42} {
		tbl.Insert(Row{"k": Int(k), "v": String("x")})
	}
	var got []int64
	tbl.Select().Each(func(r Row) bool {
		got = append(got, r.MustInt("k"))
		return true
	})
	want := []int64{-100, -3, 0, 5, 42}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order got %v, want %v", got, want)
		}
	}
	rows, _ := tbl.Select().Where(Lt("k", Int(0))).Rows()
	if len(rows) != 2 {
		t.Fatalf("negative range got %d rows", len(rows))
	}
}

func TestStringPrimaryKey(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable(Schema{
		Name:    "users",
		Columns: []Column{{Name: "name", Type: TString}, {Name: "age", Type: TInt}},
		Key:     "name",
		Indexes: []string{"age"},
	})
	for _, n := range []string{"carol", "alice", "bob"} {
		tbl.Insert(Row{"name": String(n), "age": Int(int64(len(n)))})
	}
	r, ok, _ := tbl.Get(String("bob"))
	if !ok || r.MustInt("age") != 3 {
		t.Fatalf("get bob: %v ok=%v", r, ok)
	}
	rows, _ := tbl.Select().Where(Eq("age", Int(5))).Rows()
	if len(rows) != 2 {
		t.Fatalf("age index got %d rows, want 2 (alice, carol)", len(rows))
	}
}

func TestPersistenceAndCatalogReload(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, kvstore.Options{Sync: kvstore.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable(pagesSchema())
	for i := int64(0); i < 20; i++ {
		tbl.Insert(samplePage(i))
	}
	db.Close()

	db2, err := Open(dir, kvstore.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	tbl2, err := db2.Table("pages")
	if err != nil {
		t.Fatalf("catalog lost: %v", err)
	}
	n, _ := tbl2.Count()
	if n != 20 {
		t.Fatalf("Count after reopen = %d", n)
	}
	rows, _ := tbl2.Select().Where(Eq("url", String("http://example.com/p7"))).Rows()
	if len(rows) != 1 {
		t.Fatal("secondary index lost after reopen")
	}
}

func TestDropTable(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable(pagesSchema())
	for i := int64(0); i < 5; i++ {
		tbl.Insert(samplePage(i))
	}
	if err := db.DropTable("pages"); err != nil {
		t.Fatalf("DropTable: %v", err)
	}
	if _, err := db.Table("pages"); err == nil {
		t.Fatal("dropped table still in catalog")
	}
	// Recreate under the same name; must start empty.
	tbl2, err := db.CreateTable(pagesSchema())
	if err != nil {
		t.Fatalf("recreate: %v", err)
	}
	n, _ := tbl2.Count()
	if n != 0 {
		t.Fatalf("recreated table has %d rows", n)
	}
}

func TestNextID(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable(pagesSchema())
	a, _ := tbl.NextID()
	b, _ := tbl.NextID()
	if a != 1 || b != 2 {
		t.Fatalf("NextID sequence: %d, %d", a, b)
	}
}

func TestRowCodecRoundTripQuick(t *testing.T) {
	s := pagesSchema()
	f := func(id int64, url, title string, sec int32, score float64, pub bool) bool {
		r := Row{
			"id":      Int(id),
			"url":     String(url),
			"title":   String(title),
			"fetched": Time(time.Unix(int64(sec), 0).UTC()),
			"score":   Float(score),
			"public":  Bool(pub),
		}
		blob, err := encodeRow(&s, r, nil)
		if err != nil {
			return false
		}
		got, err := decodeRow(&s, blob)
		if err != nil {
			return false
		}
		for k, v := range r {
			if !got[k].Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestOrderedEncodingMonotone: byte order of encodeOrdered must match
// Value.Less across random values of every indexable type.
func TestOrderedEncodingMonotone(t *testing.T) {
	check := func(a, b Value) bool {
		ea := encodeOrdered(a, nil)
		eb := encodeOrdered(b, nil)
		cmp := string(ea) < string(eb)
		return cmp == a.Less(b) || a.Equal(b)
	}
	if err := quick.Check(func(a, b int64) bool {
		return check(Int(a), Int(b))
	}, nil); err != nil {
		t.Errorf("int: %v", err)
	}
	if err := quick.Check(func(a, b float64) bool {
		return check(Float(a), Float(b))
	}, nil); err != nil {
		t.Errorf("float: %v", err)
	}
	if err := quick.Check(func(a, b string) bool {
		return check(String(a), String(b))
	}, nil); err != nil {
		t.Errorf("string: %v", err)
	}
	// Embedded zero bytes exercise the escape path.
	if !check(String("ab"), String("ab\x00")) {
		t.Error("string escape: ab vs ab\\x00 misordered")
	}
	if !check(String("a\x00b"), String("a\x00c")) {
		t.Error("string escape: a\\x00b vs a\\x00c misordered")
	}
}

func TestTypeMismatchRejected(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable(pagesSchema())
	r := samplePage(1)
	r["score"] = String("not a float")
	if err := tbl.Insert(r); err == nil {
		t.Fatal("type mismatch accepted")
	}
	delete(r, "score")
	if err := tbl.Insert(r); err == nil {
		t.Fatal("missing column accepted")
	}
}

func TestEnsureTable(t *testing.T) {
	db := openDB(t)
	t1, err := db.EnsureTable(pagesSchema())
	if err != nil {
		t.Fatal(err)
	}
	t2, err := db.EnsureTable(pagesSchema())
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("EnsureTable created a second table")
	}
}

func BenchmarkInsertIndexed(b *testing.B) {
	db, _ := Open(b.TempDir(), kvstore.Options{Sync: kvstore.SyncNever})
	defer db.Close()
	tbl, _ := db.CreateTable(pagesSchema())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Insert(samplePage(int64(i)))
	}
}

func BenchmarkPointLookup(b *testing.B) {
	db, _ := Open(b.TempDir(), kvstore.Options{Sync: kvstore.SyncNever})
	defer db.Close()
	tbl, _ := db.CreateTable(pagesSchema())
	const n = 10000
	for i := 0; i < n; i++ {
		tbl.Insert(samplePage(int64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Get(Int(int64(i % n)))
	}
}
