// Package rdbms implements a minimal relational engine in the role the
// Memex paper assigns to Oracle/DB2: metadata about pages, links, users and
// topics. Tables have typed columns, a primary key, and optional secondary
// indexes; rows are stored in an underlying kvstore B+tree, so everything is
// persistent and ordered.
//
// The engine deliberately stops short of SQL: Memex's servlets issue
// programmatic point lookups, index scans, and predicate filters, which is
// what this package provides. Experiment E5 contrasts this engine against
// the kvstore for term-granularity statistics, reproducing the paper's
// "overwhelming space and time overheads" claim.
package rdbms

import (
	"fmt"
	"time"
)

// ColType enumerates supported column types.
type ColType int

const (
	TInt ColType = iota + 1
	TFloat
	TString
	TBytes
	TBool
	TTime
)

func (t ColType) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "STRING"
	case TBytes:
		return "BYTES"
	case TBool:
		return "BOOL"
	case TTime:
		return "TIME"
	}
	return fmt.Sprintf("ColType(%d)", int(t))
}

// Column describes one column of a table.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table: ordered columns, the primary-key column, and
// declared secondary indexes.
type Schema struct {
	Name    string
	Columns []Column
	// Key is the name of the primary-key column. It must be TInt or TString.
	Key string
	// Indexes lists columns with secondary indexes.
	Indexes []string
}

// colIndex returns the position of column name, or -1.
func (s *Schema) colIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural sanity of the schema.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("rdbms: schema has no name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("rdbms: table %s has no columns", s.Name)
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("rdbms: table %s has an unnamed column", s.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("rdbms: table %s: duplicate column %q", s.Name, c.Name)
		}
		if c.Type < TInt || c.Type > TTime {
			return fmt.Errorf("rdbms: table %s column %s: bad type", s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	ki := s.colIndex(s.Key)
	if ki < 0 {
		return fmt.Errorf("rdbms: table %s: key column %q not found", s.Name, s.Key)
	}
	if kt := s.Columns[ki].Type; kt != TInt && kt != TString {
		return fmt.Errorf("rdbms: table %s: key column %q must be INT or STRING, got %s", s.Name, s.Key, kt)
	}
	for _, idx := range s.Indexes {
		ii := s.colIndex(idx)
		if ii < 0 {
			return fmt.Errorf("rdbms: table %s: indexed column %q not found", s.Name, idx)
		}
		if it := s.Columns[ii].Type; it == TBytes {
			return fmt.Errorf("rdbms: table %s: cannot index BYTES column %q", s.Name, idx)
		}
	}
	return nil
}

// Value is a dynamically typed cell value. Exactly one arm is meaningful,
// selected by Type.
type Value struct {
	Type  ColType
	Int   int64
	Float float64
	Str   string
	Bytes []byte
	Bool  bool
	Time  time.Time
}

// Convenience constructors.

func Int(v int64) Value      { return Value{Type: TInt, Int: v} }
func Float(v float64) Value  { return Value{Type: TFloat, Float: v} }
func String(v string) Value  { return Value{Type: TString, Str: v} }
func Bytes(v []byte) Value   { return Value{Type: TBytes, Bytes: v} }
func Bool(v bool) Value      { return Value{Type: TBool, Bool: v} }
func Time(v time.Time) Value { return Value{Type: TTime, Time: v} }

// Equal reports deep equality of two values of the same type.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type {
		return false
	}
	switch v.Type {
	case TInt:
		return v.Int == o.Int
	case TFloat:
		return v.Float == o.Float
	case TString:
		return v.Str == o.Str
	case TBytes:
		return string(v.Bytes) == string(o.Bytes)
	case TBool:
		return v.Bool == o.Bool
	case TTime:
		return v.Time.Equal(o.Time)
	}
	return false
}

// Less orders two values of the same comparable type.
func (v Value) Less(o Value) bool {
	switch v.Type {
	case TInt:
		return v.Int < o.Int
	case TFloat:
		return v.Float < o.Float
	case TString:
		return v.Str < o.Str
	case TBool:
		return !v.Bool && o.Bool
	case TTime:
		return v.Time.Before(o.Time)
	}
	return false
}

func (v Value) String() string {
	switch v.Type {
	case TInt:
		return fmt.Sprintf("%d", v.Int)
	case TFloat:
		return fmt.Sprintf("%g", v.Float)
	case TString:
		return v.Str
	case TBytes:
		return fmt.Sprintf("%x", v.Bytes)
	case TBool:
		return fmt.Sprintf("%t", v.Bool)
	case TTime:
		return v.Time.Format(time.RFC3339)
	}
	return "<nil>"
}

// Row maps column names to values.
type Row map[string]Value

// Get returns the named cell, with ok=false for absent columns.
func (r Row) Get(col string) (Value, bool) {
	v, ok := r[col]
	return v, ok
}

// MustInt returns the int64 in column col, or 0.
func (r Row) MustInt(col string) int64 { return r[col].Int }

// MustString returns the string in column col, or "".
func (r Row) MustString(col string) string { return r[col].Str }

// MustFloat returns the float64 in column col, or 0.
func (r Row) MustFloat(col string) float64 { return r[col].Float }

// MustTime returns the time in column col.
func (r Row) MustTime(col string) time.Time { return r[col].Time }

// MustBool returns the bool in column col.
func (r Row) MustBool(col string) bool { return r[col].Bool }
