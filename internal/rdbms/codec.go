package rdbms

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Row codec: rows are stored as a sequence of typed cells in schema column
// order. Cell wire format: type(1) payload. Integers and times use fixed
// 8-byte little-endian; strings/bytes are length-prefixed (uvarint).
//
// Index-key codec: values are encoded order-preservingly so that byte
// comparison in the B+tree matches Value.Less. Ints/floats/times are offset
// to unsigned big-endian; strings are terminated with 0x00 0x01 escaping.

func encodeRow(s *Schema, r Row, buf []byte) ([]byte, error) {
	for _, c := range s.Columns {
		v, ok := r[c.Name]
		if !ok {
			return nil, fmt.Errorf("rdbms: row missing column %q", c.Name)
		}
		if v.Type != c.Type {
			return nil, fmt.Errorf("rdbms: column %q: value type %s, schema wants %s", c.Name, v.Type, c.Type)
		}
		buf = append(buf, byte(c.Type))
		switch c.Type {
		case TInt:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Int))
		case TFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float))
		case TString:
			buf = binary.AppendUvarint(buf, uint64(len(v.Str)))
			buf = append(buf, v.Str...)
		case TBytes:
			buf = binary.AppendUvarint(buf, uint64(len(v.Bytes)))
			buf = append(buf, v.Bytes...)
		case TBool:
			if v.Bool {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		case TTime:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Time.UnixNano()))
		}
	}
	return buf, nil
}

func decodeRow(s *Schema, data []byte) (Row, error) {
	r := make(Row, len(s.Columns))
	off := 0
	for _, c := range s.Columns {
		if off >= len(data) {
			return nil, fmt.Errorf("rdbms: truncated row for table %s at column %s", s.Name, c.Name)
		}
		if ColType(data[off]) != c.Type {
			return nil, fmt.Errorf("rdbms: row/schema type mismatch at column %s", c.Name)
		}
		off++
		switch c.Type {
		case TInt:
			if off+8 > len(data) {
				return nil, errTruncated(s, c)
			}
			r[c.Name] = Int(int64(binary.LittleEndian.Uint64(data[off:])))
			off += 8
		case TFloat:
			if off+8 > len(data) {
				return nil, errTruncated(s, c)
			}
			r[c.Name] = Float(math.Float64frombits(binary.LittleEndian.Uint64(data[off:])))
			off += 8
		case TString:
			n, w := binary.Uvarint(data[off:])
			if w <= 0 || off+w+int(n) > len(data) {
				return nil, errTruncated(s, c)
			}
			off += w
			r[c.Name] = String(string(data[off : off+int(n)]))
			off += int(n)
		case TBytes:
			n, w := binary.Uvarint(data[off:])
			if w <= 0 || off+w+int(n) > len(data) {
				return nil, errTruncated(s, c)
			}
			off += w
			r[c.Name] = Bytes(append([]byte(nil), data[off:off+int(n)]...))
			off += int(n)
		case TBool:
			r[c.Name] = Bool(data[off] != 0)
			off++
		case TTime:
			if off+8 > len(data) {
				return nil, errTruncated(s, c)
			}
			r[c.Name] = Time(time.Unix(0, int64(binary.LittleEndian.Uint64(data[off:]))).UTC())
			off += 8
		}
	}
	return r, nil
}

func errTruncated(s *Schema, c Column) error {
	return fmt.Errorf("rdbms: truncated row for %s.%s", s.Name, c.Name)
}

// encodeOrdered appends an order-preserving encoding of v: byte-wise
// comparison of encodings matches Value.Less, across all values of one type.
func encodeOrdered(v Value, buf []byte) []byte {
	switch v.Type {
	case TInt:
		// Flip sign bit so negative numbers sort before positives.
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Int)^(1<<63))
	case TFloat:
		bits := math.Float64bits(v.Float)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative floats: invert all
		} else {
			bits |= 1 << 63 // positive: set sign
		}
		buf = binary.BigEndian.AppendUint64(buf, bits)
	case TString:
		// Escape 0x00 as 0x00 0xff, terminate with 0x00 0x01 so prefixes
		// sort before extensions.
		for i := 0; i < len(v.Str); i++ {
			b := v.Str[i]
			buf = append(buf, b)
			if b == 0x00 {
				buf = append(buf, 0xff)
			}
		}
		buf = append(buf, 0x00, 0x01)
	case TBool:
		if v.Bool {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case TTime:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Time.UnixNano())^(1<<63))
	case TBytes:
		// Not indexable (Schema.Validate rejects), but keep codec total.
		for _, b := range v.Bytes {
			buf = append(buf, b)
			if b == 0x00 {
				buf = append(buf, 0xff)
			}
		}
		buf = append(buf, 0x00, 0x01)
	}
	return buf
}
