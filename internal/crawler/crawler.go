// Package crawler implements the resource-discovery demons of §4: a
// focused crawler (Chakrabarti, van den Berg, Dom 1999) that expands from
// community seed pages and prioritises its frontier by the topical
// relevance of the parent page — against an unfocused breadth-first
// baseline. Experiment E6 reproduces the harvest-rate comparison.
//
// The crawler fetches from a Fetcher abstraction; in this reproduction the
// Fetcher serves the synthetic webcorpus (substitution S17), preserving
// the behaviour that matters: relevance-skewed link frontiers.
package crawler

import (
	"container/heap"
	"sort"
)

// FetchResult is one fetched page: its content and out-links. Content
// arrives either as raw text (a live or synthetic web fetch) or as
// pre-computed term counts (a page served from the archive's versioned
// derived records, where the raw text was never persisted) — whichever
// the Fetcher has cheapest.
type FetchResult struct {
	Page int64
	// Text is the page's raw content; empty when Counts is set.
	Text string
	// Counts is the page's term-count record; nil when Text is set.
	Counts map[string]int
	Links  []int64
}

// Fetcher retrieves pages by id. Implementations may simulate latency.
type Fetcher interface {
	Fetch(page int64) (FetchResult, bool)
}

// Relevance scores a fetched page for the crawl topic in [0,1]; the
// focused crawler typically wraps the Memex classifier's posterior for
// the target topic. Scorers must handle whichever content form (Text or
// Counts) their Fetcher produces.
type Relevance func(fr FetchResult) float64

// Result summarises a crawl.
type Result struct {
	// Fetched lists pages in fetch order.
	Fetched []int64
	// Relevant[i] is the on-topic judgement of Fetched[i] (by the scorer,
	// thresholded) — used for harvest-rate curves.
	Relevant []bool
	// Scores maps page → relevance score.
	Scores map[int64]float64
}

// HarvestCurve returns the cumulative fraction of relevant pages after
// each fetch: the paper's harvest-rate plot.
func (r *Result) HarvestCurve() []float64 {
	out := make([]float64, len(r.Fetched))
	rel := 0
	for i := range r.Fetched {
		if r.Relevant[i] {
			rel++
		}
		out[i] = float64(rel) / float64(i+1)
	}
	return out
}

// HarvestRate returns the final fraction of fetched pages that were
// relevant.
func (r *Result) HarvestRate() float64 {
	if len(r.Fetched) == 0 {
		return 0
	}
	rel := 0
	for _, b := range r.Relevant {
		if b {
			rel++
		}
	}
	return float64(rel) / float64(len(r.Fetched))
}

// Options configures a crawl.
type Options struct {
	// Budget is the number of pages to fetch.
	Budget int
	// Threshold is the relevance score above which a page counts as
	// on-topic (default 0.5).
	Threshold float64
	// Focused selects frontier prioritisation by parent relevance; false
	// gives the FIFO breadth-first baseline.
	Focused bool
}

// Crawl runs from the seed pages. Seeds are always fetched first (in
// order); their own relevance still counts toward the harvest rate.
func Crawl(f Fetcher, rel Relevance, seeds []int64, opts Options) *Result {
	if opts.Budget <= 0 {
		opts.Budget = 100
	}
	if opts.Threshold == 0 {
		opts.Threshold = 0.5
	}
	res := &Result{Scores: map[int64]float64{}}
	visited := map[int64]bool{}

	// Frontier: max-heap on priority for focused, FIFO for BFS.
	pq := &frontier{focused: opts.Focused}
	heap.Init(pq)
	seq := 0
	for _, s := range seeds {
		heap.Push(pq, frontierItem{page: s, priority: 1, order: seq})
		seq++
	}

	for pq.Len() > 0 && len(res.Fetched) < opts.Budget {
		it := heap.Pop(pq).(frontierItem)
		if visited[it.page] {
			continue
		}
		visited[it.page] = true
		fr, ok := f.Fetch(it.page)
		if !ok {
			continue
		}
		score := rel(fr)
		res.Fetched = append(res.Fetched, it.page)
		res.Relevant = append(res.Relevant, score >= opts.Threshold)
		res.Scores[it.page] = score
		for _, l := range fr.Links {
			if visited[l] {
				continue
			}
			heap.Push(pq, frontierItem{page: l, priority: score, order: seq})
			seq++
		}
	}
	return res
}

type frontierItem struct {
	page     int64
	priority float64
	order    int
}

type frontier struct {
	items   []frontierItem
	focused bool
}

func (f frontier) Len() int { return len(f.items) }
func (f frontier) Less(i, j int) bool {
	a, b := f.items[i], f.items[j]
	if f.focused && a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.order < b.order // FIFO tiebreak / BFS order
}
func (f frontier) Swap(i, j int) { f.items[i], f.items[j] = f.items[j], f.items[i] }
func (f *frontier) Push(x any)   { f.items = append(f.items, x.(frontierItem)) }
func (f *frontier) Pop() any {
	old := f.items
	n := len(old)
	x := old[n-1]
	f.items = old[:n-1]
	return x
}

// Discovery ranks the crawled neighbourhood for a topic: pages are scored
// by relevance-weighted in-link mass among fetched pages (a light
// authority measure that needs no full HITS run), returning the top k new
// resources. This is what the resource-discovery demon publishes per theme.
func Discovery(res *Result, outLinks func(page int64) []int64, k int) []int64 {
	mass := map[int64]float64{}
	for _, p := range res.Fetched {
		ps := res.Scores[p]
		for _, l := range outLinks(p) {
			if s, ok := res.Scores[l]; ok {
				mass[l] += ps * s
			}
		}
	}
	ids := make([]int64, 0, len(mass))
	for id := range mass {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if mass[ids[i]] != mass[ids[j]] {
			return mass[ids[i]] > mass[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if k < len(ids) {
		ids = ids[:k]
	}
	return ids
}
