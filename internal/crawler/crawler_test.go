package crawler

import (
	"strings"
	"testing"

	"memex/internal/webcorpus"
)

// corpusFetcher serves the synthetic web.
type corpusFetcher struct {
	c *webcorpus.Corpus
}

func (f corpusFetcher) Fetch(page int64) (FetchResult, bool) {
	p := f.c.Page(page)
	if p == nil {
		return FetchResult{}, false
	}
	return FetchResult{Page: page, Text: p.Text, Links: p.Links}, true
}

// topicRelevance scores by the fraction of words carrying the target
// topic's vocabulary prefix — a stand-in for the classifier posterior.
func topicRelevance(c *webcorpus.Corpus, leafID int) Relevance {
	leaf := c.Topics[leafID]
	top := c.Topics[leaf.Parent]
	prefix := top.Name + "_" + leaf.Name
	return func(fr FetchResult) float64 {
		words := strings.Fields(fr.Text)
		if len(words) == 0 {
			return 0
		}
		hits := 0
		for _, w := range words {
			if strings.HasPrefix(w, prefix) {
				hits++
			}
		}
		// Content pages draw ~45% of words from leaf vocab; scale so that
		// on-topic content pages clear 0.5 comfortably.
		s := 2.5 * float64(hits) / float64(len(words))
		if s > 1 {
			s = 1
		}
		return s
	}
}

func world(t *testing.T) (*webcorpus.Corpus, Fetcher, int) {
	t.Helper()
	// The on-topic pool (PagesPerLeaf) must comfortably exceed the crawl
	// budget or both strategies saturate at pool/budget; link locality is
	// turned down so an unfocused frontier dilutes within a few hops, as on
	// the open Web.
	c := webcorpus.Generate(webcorpus.Config{
		Seed: 21, TopTopics: 6, SubPerTopic: 4, PagesPerLeaf: 100,
		IntraLeafProb: 0.35, IntraTopProb: 0.25,
	})
	leaf := c.Leaves()[0].ID
	return c, corpusFetcher{c}, leaf
}

func seedsFor(c *webcorpus.Corpus, leaf int, n int) []int64 {
	ids := c.LeafPages[leaf]
	if n > len(ids) {
		n = len(ids)
	}
	return append([]int64(nil), ids[:n]...)
}

func TestFocusedBeatsBFS(t *testing.T) {
	c, f, leaf := world(t)
	rel := topicRelevance(c, leaf)
	seeds := seedsFor(c, leaf, 3)

	focused := Crawl(f, rel, seeds, Options{Budget: 100, Focused: true})
	bfs := Crawl(f, rel, seeds, Options{Budget: 100, Focused: false})

	hf, hb := focused.HarvestRate(), bfs.HarvestRate()
	t.Logf("harvest focused=%.3f bfs=%.3f", hf, hb)
	if hf < 1.25*hb {
		t.Fatalf("focused (%.3f) lacks a clear margin over BFS (%.3f)", hf, hb)
	}
}

func TestCrawlRespectsBudget(t *testing.T) {
	c, f, leaf := world(t)
	rel := topicRelevance(c, leaf)
	res := Crawl(f, rel, seedsFor(c, leaf, 2), Options{Budget: 50, Focused: true})
	if len(res.Fetched) != 50 {
		t.Fatalf("fetched %d, budget 50", len(res.Fetched))
	}
	// No page fetched twice.
	seen := map[int64]bool{}
	for _, p := range res.Fetched {
		if seen[p] {
			t.Fatalf("page %d fetched twice", p)
		}
		seen[p] = true
	}
}

func TestCrawlSeedsFirst(t *testing.T) {
	c, f, leaf := world(t)
	rel := topicRelevance(c, leaf)
	seeds := seedsFor(c, leaf, 3)
	res := Crawl(f, rel, seeds, Options{Budget: 10, Focused: true})
	for i, s := range seeds {
		if res.Fetched[i] != s {
			t.Fatalf("seed %d fetched at position ≠ %d: %v", s, i, res.Fetched[:3])
		}
	}
}

func TestHarvestCurveMonotoneBounds(t *testing.T) {
	c, f, leaf := world(t)
	rel := topicRelevance(c, leaf)
	res := Crawl(f, rel, seedsFor(c, leaf, 2), Options{Budget: 100, Focused: true})
	curve := res.HarvestCurve()
	if len(curve) != len(res.Fetched) {
		t.Fatal("curve length mismatch")
	}
	for _, v := range curve {
		if v < 0 || v > 1 {
			t.Fatalf("curve value %v out of bounds", v)
		}
	}
}

func TestUnknownSeedSkipped(t *testing.T) {
	c, f, leaf := world(t)
	rel := topicRelevance(c, leaf)
	res := Crawl(f, rel, []int64{999999}, Options{Budget: 10, Focused: true})
	if len(res.Fetched) != 0 {
		t.Fatalf("fetched %v from unknown seed", res.Fetched)
	}
	if res.HarvestRate() != 0 {
		t.Fatal("harvest of empty crawl not 0")
	}
	_ = c
}

func TestDiscoveryRanksLinkedRelevantPages(t *testing.T) {
	c, f, leaf := world(t)
	rel := topicRelevance(c, leaf)
	res := Crawl(f, rel, seedsFor(c, leaf, 3), Options{Budget: 200, Focused: true})
	out := func(p int64) []int64 {
		if pg := c.Page(p); pg != nil {
			return pg.Links
		}
		return nil
	}
	top := Discovery(res, out, 10)
	if len(top) == 0 {
		t.Fatal("Discovery returned nothing")
	}
	// Discovered resources should be mostly on-topic.
	on := 0
	for _, p := range top {
		if c.Page(p).Topic == leaf {
			on++
		}
	}
	if on < len(top)*6/10 {
		t.Fatalf("only %d/%d discovered resources on topic", on, len(top))
	}
}

func BenchmarkFocusedCrawl(b *testing.B) {
	c := webcorpus.Generate(webcorpus.Config{Seed: 22})
	leaf := c.Leaves()[0].ID
	f := corpusFetcher{c}
	rel := topicRelevance(c, leaf)
	seeds := c.LeafPages[leaf][:3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Crawl(f, rel, seeds, Options{Budget: 500, Focused: true})
	}
}
