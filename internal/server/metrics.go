package server

// This file is the server's observability surface: stdlib-only,
// allocation-free-on-the-hot-path per-endpoint metrics rendered in
// Prometheus text exposition format by GET /metrics. Nothing here takes
// a lock on the request path — every counter is an atomic, and the
// endpoint registry is frozen at construction (New registers every
// route before the handler is reachable), so recording a sample is a
// handful of atomic adds.
//
// In-process histograms are also what makes single-run benchmark deltas
// on shared CI hardware meaningful: a p99 shift shows up in the bucket
// counts of the run itself rather than requiring a quiet machine.

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram's fixed upper bounds: log-spaced
// (×2) from 100µs to ~13s, which brackets everything from an in-memory
// status read to a worst-case mining-pass-sized request. A fixed global
// layout keeps bucket math branch-free and lets dashboards aggregate
// across endpoints without bucket alignment games.
var latencyBuckets = func() [18]time.Duration {
	var b [18]time.Duration
	d := 100 * time.Microsecond
	for i := range b {
		b[i] = d
		d *= 2
	}
	return b
}()

// histogram is a fixed-bucket latency histogram safe for concurrent
// writers: one atomic counter per bucket (the last slot is +Inf), plus
// total count and a nanosecond sum for the Prometheus _count/_sum pair.
type histogram struct {
	buckets  [len(latencyBuckets) + 1]atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Int64
}

// observe records one sample.
func (h *histogram) observe(d time.Duration) {
	i := 0
	for i < len(latencyBuckets) && d > latencyBuckets[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Rejection reasons for the per-endpoint shed counters; values double
// as the Prometheus `reason` label.
const (
	rejectRate     = "rate"
	rejectInFlight = "inflight"
	rejectQueue    = "queue"
	rejectFoldLag  = "foldlag"
)

// endpointMetrics holds one route's counters. All fields are atomics;
// the struct is shared by every request to the route.
type endpointMetrics struct {
	name     string // the mux pattern, e.g. "POST /api/event"
	requests atomic.Uint64
	err4xx   atomic.Uint64
	err5xx   atomic.Uint64
	// rejected counts admission-control refusals by reason, a subset of
	// err4xx/err5xx kept separate so shedding is visible at a glance.
	rejected map[string]*atomic.Uint64
	latency  histogram
}

func newEndpointMetrics(name string) *endpointMetrics {
	em := &endpointMetrics{name: name, rejected: map[string]*atomic.Uint64{}}
	for _, reason := range []string{rejectRate, rejectInFlight, rejectQueue, rejectFoldLag} {
		em.rejected[reason] = &atomic.Uint64{}
	}
	return em
}

// observe records a completed (or rejected) request's status and
// latency.
func (em *endpointMetrics) observe(code int, d time.Duration) {
	switch {
	case code >= 500:
		em.err5xx.Add(1)
	case code >= 400:
		em.err4xx.Add(1)
	}
	em.latency.observe(d)
}

// metricsSet is the server-wide registry: one endpointMetrics per
// route plus the global in-flight gauge. endpoints is written only
// during New (before the handler serves) and read-only afterwards, so
// request-path and render-path access takes no lock.
type metricsSet struct {
	endpoints map[string]*endpointMetrics
	inFlight  atomic.Int64
}

func newMetricsSet() *metricsSet {
	return &metricsSet{endpoints: map[string]*endpointMetrics{}}
}

// register creates (once) the metrics slot for a route. Must only be
// called during construction.
func (m *metricsSet) register(name string) *endpointMetrics {
	em := newEndpointMetrics(name)
	m.endpoints[name] = em
	return em
}

// --- Prometheus text rendering ---

// fmtFloat renders a float the way Prometheus expects (shortest
// round-trip representation).
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func promHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sortedEndpoints returns the registry's rows in stable name order so
// consecutive scrapes (and tests) see identical layouts.
func (m *metricsSet) sortedEndpoints() []*endpointMetrics {
	out := make([]*endpointMetrics, 0, len(m.endpoints))
	for _, em := range m.endpoints {
		out = append(out, em)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// writeHTTPMetrics renders the per-endpoint request/error/rejection
// counters and latency histograms.
func (m *metricsSet) writeHTTPMetrics(w io.Writer) {
	eps := m.sortedEndpoints()

	promHeader(w, "memex_http_requests_total", "Requests received, by endpoint (rejections included).", "counter")
	for _, em := range eps {
		fmt.Fprintf(w, "memex_http_requests_total{endpoint=%q} %d\n", em.name, em.requests.Load())
	}

	promHeader(w, "memex_http_errors_total", "Responses with 4xx/5xx status, by endpoint and class.", "counter")
	for _, em := range eps {
		fmt.Fprintf(w, "memex_http_errors_total{endpoint=%q,class=\"4xx\"} %d\n", em.name, em.err4xx.Load())
		fmt.Fprintf(w, "memex_http_errors_total{endpoint=%q,class=\"5xx\"} %d\n", em.name, em.err5xx.Load())
	}

	promHeader(w, "memex_http_rejected_total", "Requests refused by admission control, by endpoint and reason.", "counter")
	for _, em := range eps {
		for _, reason := range []string{rejectRate, rejectInFlight, rejectQueue, rejectFoldLag} {
			fmt.Fprintf(w, "memex_http_rejected_total{endpoint=%q,reason=%q} %d\n", em.name, reason, em.rejected[reason].Load())
		}
	}

	promHeader(w, "memex_http_in_flight", "Requests currently being served.", "gauge")
	fmt.Fprintf(w, "memex_http_in_flight %d\n", m.inFlight.Load())

	promHeader(w, "memex_http_request_duration_seconds", "Request latency, by endpoint.", "histogram")
	for _, em := range eps {
		var cum uint64
		for i, bound := range latencyBuckets {
			cum += em.latency.buckets[i].Load()
			fmt.Fprintf(w, "memex_http_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				em.name, fmtFloat(bound.Seconds()), cum)
		}
		cum += em.latency.buckets[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "memex_http_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", em.name, cum)
		fmt.Fprintf(w, "memex_http_request_duration_seconds_sum{endpoint=%q} %s\n",
			em.name, fmtFloat(float64(em.latency.sumNanos.Load())/1e9))
		fmt.Fprintf(w, "memex_http_request_duration_seconds_count{endpoint=%q} %d\n",
			em.name, em.latency.count.Load())
	}
}

// handleMetrics serves GET /metrics: the HTTP-layer metrics above plus
// gauges wired from the engine's own counter snapshot (queue depth,
// fold/GC activity, cache hit ratio, pin count), so one scrape shows
// both how the server is answering and why it might stop.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeHTTPMetrics(w)

	st := s.engine.Status()
	g := func(name, help string, v float64) {
		promHeader(w, name, help, "gauge")
		fmt.Fprintf(w, "%s %s\n", name, fmtFloat(v))
	}
	c := func(name, help string, v float64) {
		promHeader(w, name, help, "counter")
		fmt.Fprintf(w, "%s %s\n", name, fmtFloat(v))
	}

	// Ingest / publish pipeline.
	g("memex_engine_queue_depth", "Background event queue depth.", float64(st.QueueDepth))
	g("memex_engine_queue_capacity", "Background event queue capacity.", float64(s.engine.Pressure().QueueCap))
	c("memex_engine_events_dropped_total", "Events shed by the queue's drop-oldest overflow.", float64(st.EventsDropped))
	c("memex_engine_visits_total", "Visits logged.", float64(st.Visits))
	c("memex_engine_bookmarks_total", "Bookmarks logged.", float64(st.Bookmarks))
	c("memex_engine_pages_fetched_total", "Pages fetched from the source by this process.", float64(st.PagesFetched))
	g("memex_engine_pages_indexed", "Pages in the inverted index.", float64(st.PagesIndexed))
	g("memex_engine_users", "Registered users.", float64(st.Users))

	// Version store: watermark, pins, GC and fold activity.
	g("memex_version_watermark", "Highest contiguously published epoch.", float64(st.Version.Watermark))
	g("memex_version_layers", "Deepest shard chain (worst-case read walk).", float64(st.Version.Layers))
	g("memex_version_entries", "Total version count across shards.", float64(st.Version.Entries))
	g("memex_version_pinned", "Snapshots currently pinning a state.", float64(st.Version.Pinned))
	g("memex_version_pending_epochs", "Published epochs awaiting watermark coverage.", float64(st.Version.PendingEpochs))
	c("memex_version_gc_reclaimed_total", "Versions compacted away by GC.", float64(st.Version.GCReclaimed))
	if cold := st.Version.Cold; cold != nil {
		g("memex_version_fold_lag_epochs", "Published watermark minus durable fold watermark.",
			float64(st.Version.Watermark-min(st.Version.Watermark, cold.Watermark)))
		g("memex_version_cold_records", "Record versions on disk.", float64(cold.Records))
		c("memex_version_folds_total", "Completed fold rounds.", float64(cold.Folds))
		c("memex_version_cold_reads_total", "Snapshot gets that fell through to disk.", float64(cold.Reads))
	}

	// Decoded-record cache.
	cache := st.Cache
	c("memex_cache_hits_total", "Decoded-record cache hits (cross-view reuse).", float64(cache.Hits))
	c("memex_cache_misses_total", "Decoded-record cache misses.", float64(cache.Misses))
	promHeader(w, "memex_cache_evicted_total", "Cache entries evicted, by cause (lru = memory pressure, floor = below pin floor).", "counter")
	fmt.Fprintf(w, "memex_cache_evicted_total{cause=\"lru\"} %d\n", cache.EvictedLRU)
	fmt.Fprintf(w, "memex_cache_evicted_total{cause=\"floor\"} %d\n", cache.EvictedFloor)
	c("memex_cache_skipped_oversize_total", "Whale records refused cache admission.", float64(cache.SkippedOversize))
	g("memex_cache_bytes", "Approximate decoded cache footprint.", float64(cache.Bytes))
	g("memex_cache_max_bytes", "Decoded cache budget.", float64(cache.MaxBytes))
	if total := cache.Hits + cache.Misses; total > 0 {
		g("memex_cache_hit_ratio", "Cache hits over lookups.", float64(cache.Hits)/float64(total))
	} else {
		g("memex_cache_hit_ratio", "Cache hits over lookups.", 0)
	}

	g("memex_disk_bytes", "Backing kvstore size on disk.", float64(st.DiskBytes))
	g("memex_graph_nodes", "Pages known to the link graph.", float64(st.GraphNodes))
	g("memex_graph_edges", "Directed edges in the link graph.", float64(st.GraphEdges))
}
