// Package server exposes the Memex engine over HTTP as the paper's
// servlets do (§2-3): all client/server interaction tunnels over plain
// HTTP with JSON bodies so that firewalls, proxies and ISP restrictions
// never block the applet. UI-triggered endpoints (event logging, folder
// edits) do only foreground work and return immediately; mining results
// are served from the demons' published state.
//
// # Observability and admission control
//
// Every route is wrapped in a middleware chain (middleware.go,
// metrics.go). GET /metrics serves Prometheus text format with zero
// module dependencies:
//
//   - memex_http_requests_total{endpoint}, memex_http_errors_total
//     {endpoint,class}, memex_http_rejected_total{endpoint,reason},
//     memex_http_in_flight, and per-endpoint latency histograms
//     memex_http_request_duration_seconds{endpoint} with fixed
//     log-spaced buckets (100µs ×2 … ~13s);
//   - engine gauges wired from core.Stats: memex_engine_queue_depth /
//     _capacity / events_dropped_total, memex_version_watermark /
//     _pinned / _fold_lag_epochs / gc_reclaimed_total,
//     memex_cache_hit_ratio / _bytes / evicted_total{cause}, and the
//     link-graph/disk gauges.
//
// Admission control is configured through Config (all knobs default
// off): RatePerSec+Burst run a per-client token bucket (keyed by the
// `user` param, else remote host) answering 429; MaxInFlight caps
// global concurrency with 503; ShedQueueFraction and ShedFoldLag shed
// write endpoints with 503 while the background event queue or the
// fold watermark lag say the publish pipeline is backed up. /metrics
// and /api/status are exempt so operators can always see in.
//
// Routing gotcha: the mux below registers method-qualified patterns
// ("POST /api/user", "GET /api/search", ...), which require the enhanced
// net/http ServeMux shipped in Go 1.22 — and the enhancement is gated on
// the *module's* `go` directive, not just the toolchain. If go.mod ever
// drops below `go 1.22`, these strings silently become literal paths,
// every endpoint 404s, and the internal/client e2e tests all fail while
// this package still compiles cleanly. Keep the directive at 1.22+.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"memex/internal/core"
	"memex/internal/events"
)

// Server wraps an engine with the HTTP API.
type Server struct {
	engine  *core.Engine
	mux     *http.ServeMux
	cfg     Config
	metrics *metricsSet
	// limiter is nil when rate limiting is disabled.
	limiter *limiter
	// pressure supplies the backpressure signals consulted before write
	// endpoints run; indirect so shed tests can inject a synthetic load.
	pressure func() core.Pressure
	// drain estimates the event queue's drain rate from the pressure
	// samples the write path takes anyway, feeding the adaptive
	// Retry-After hint on shed responses.
	drain drainEstimator
}

// New builds the handler set over an engine with default middleware
// settings: full /metrics observability, no admission limits.
func New(e *core.Engine) *Server {
	return NewWith(e, Config{})
}

// NewWith builds the handler set with explicit observability and
// admission-control settings.
func NewWith(e *core.Engine, cfg Config) *Server {
	s := &Server{
		engine:   e,
		mux:      http.NewServeMux(),
		cfg:      cfg.withDefaults(),
		metrics:  newMetricsSet(),
		pressure: e.Pressure,
	}
	if s.cfg.RatePerSec > 0 {
		s.limiter = newLimiter(s.cfg.RatePerSec, s.cfg.Burst, s.cfg.Now)
	}
	s.handle("POST /api/user", writeRoute, s.handleUser)
	s.handle("POST /api/event", writeRoute, s.handleEvent)
	s.handle("POST /api/bookmark", writeRoute, s.handleBookmark)
	s.handle("POST /api/correct", writeRoute, s.handleCorrect)
	s.handle("POST /api/folders/import", writeRoute, s.handleImport)
	s.handle("GET /api/folders/export", readRoute, s.handleExport)
	s.handle("GET /api/search", readRoute, s.handleSearch)
	s.handle("GET /api/trails", readRoute, s.handleTrails)
	s.handle("GET /api/themes", readRoute, s.handleThemes)
	s.handle("POST /api/themes/rebuild", writeRoute, s.handleRebuild)
	s.handle("GET /api/recommend", readRoute, s.handleRecommend)
	s.handle("GET /api/discover", readRoute, s.handleDiscover)
	s.handle("GET /api/profile", readRoute, s.handleProfile)
	s.handle("GET /api/usage", readRoute, s.handleUsage)
	s.handle("GET /api/status", opsRoute, s.handleStatus)
	s.handle("GET /metrics", opsRoute, s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// --- request/response DTOs (shared with the client package) ---

// UserReq registers a user.
type UserReq struct {
	ID   int64  `json:"id"`
	Name string `json:"name"`
}

// EventReq is one page-view event from the client tap.
type EventReq struct {
	User     int64     `json:"user"`
	URL      string    `json:"url"`
	Referrer string    `json:"referrer,omitempty"`
	Time     time.Time `json:"time"`
	// Privacy is "off", "private" or "community" (default community).
	Privacy string `json:"privacy,omitempty"`
}

// BookmarkReq files a page into a folder.
type BookmarkReq struct {
	User   int64     `json:"user"`
	URL    string    `json:"url"`
	Folder string    `json:"folder"`
	Time   time.Time `json:"time"`
}

// CorrectReq fixes a classifier guess (cut/paste in the folder tab).
type CorrectReq struct {
	User   int64  `json:"user"`
	URL    string `json:"url"`
	Folder string `json:"folder"`
}

// OK is the generic success envelope.
type OK struct {
	OK bool `json:"ok"`
}

// ErrBody is the generic error envelope.
type ErrBody struct {
	Error string `json:"error"`
}

func parsePrivacy(s string) events.Privacy {
	switch s {
	case "off":
		return events.Off
	case "private":
		return events.Private
	default:
		return events.Community
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrBody{Error: err.Error()})
}

func decode[T any](r *http.Request) (T, error) {
	var v T
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return v, fmt.Errorf("bad request body: %w", err)
	}
	return v, nil
}

// qint64 parses an integer query param. A missing param yields (0, nil);
// a malformed one yields an error, which handlers surface as a 400
// distinct from "param required" — `?user=abc` must not silently become
// user 0 and then masquerade as a missing parameter.
func qint64(r *http.Request, name string) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s", name)
	}
	return v, nil
}

// requireUser parses the mandatory user param, writing the appropriate
// 400 ("bad user" for malformed, "user required" for absent) and
// returning ok=false when the handler should stop.
func requireUser(w http.ResponseWriter, r *http.Request) (int64, bool) {
	user, err := qint64(r, "user")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return 0, false
	}
	if user == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("user required"))
		return 0, false
	}
	return user, true
}

func qint(r *http.Request, name string, def int) int {
	v, err := strconv.Atoi(r.URL.Query().Get(name))
	if err != nil || v <= 0 {
		return def
	}
	return v
}

// --- handlers ---

func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	req, err := decode[UserReq](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.ID == 0 || req.Name == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("id and name required"))
		return
	}
	if err := s.engine.RegisterUser(req.ID, req.Name); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, OK{true})
}

func (s *Server) handleEvent(w http.ResponseWriter, r *http.Request) {
	req, err := decode[EventReq](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.User == 0 || req.URL == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("user and url required"))
		return
	}
	if err := s.engine.RecordVisit(req.User, req.URL, req.Referrer, req.Time, parsePrivacy(req.Privacy)); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, OK{true})
}

func (s *Server) handleBookmark(w http.ResponseWriter, r *http.Request) {
	req, err := decode[BookmarkReq](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.User == 0 || req.URL == "" || req.Folder == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("user, url and folder required"))
		return
	}
	if err := s.engine.AddBookmark(req.User, req.URL, req.Folder, req.Time); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, OK{true})
}

func (s *Server) handleCorrect(w http.ResponseWriter, r *http.Request) {
	req, err := decode[CorrectReq](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.engine.CorrectPlacement(req.User, req.URL, req.Folder); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, OK{true})
}

func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	user, ok := requireUser(w, r)
	if !ok {
		return
	}
	n, err := s.engine.ImportBookmarks(user, r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"imported": n})
}

// handleExport renders the tree to a buffer before any header is
// written: streaming straight to the ResponseWriter committed a 200
// before ExportBookmarks could fail, leaving clients a truncated
// bookmark file and no error signal. An engine failure is now a 500.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	user, ok := requireUser(w, r)
	if !ok {
		return
	}
	var buf bytes.Buffer
	if err := s.engine.ExportBookmarks(user, &buf); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(buf.Bytes())
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("q required"))
		return
	}
	// user is optional for search (anonymous queries see only community
	// pages) but must still parse when present.
	user, err := qint64(r, "user")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	hits := s.engine.Search(user, q, qint(r, "k", 10))
	writeJSON(w, http.StatusOK, hits)
}

func (s *Server) handleTrails(w http.ResponseWriter, r *http.Request) {
	user, ok := requireUser(w, r)
	if !ok {
		return
	}
	folder := r.URL.Query().Get("folder")
	if folder == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("folder required"))
		return
	}
	ctx := s.engine.Trails(user, folder, qint(r, "k", 20))
	writeJSON(w, http.StatusOK, ctx)
}

func (s *Server) handleThemes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Themes())
}

func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	st := s.engine.RebuildThemes()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	user, ok := requireUser(w, r)
	if !ok {
		return
	}
	byProfile := r.URL.Query().Get("method") != "url"
	writeJSON(w, http.StatusOK, s.engine.Recommend(user, qint(r, "k", 10), byProfile))
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	user, ok := requireUser(w, r)
	if !ok {
		return
	}
	folder := r.URL.Query().Get("folder")
	if folder == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("folder required"))
		return
	}
	out := s.engine.Discover(user, folder, qint(r, "budget", 200), qint(r, "k", 10))
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	user, ok := requireUser(w, r)
	if !ok {
		return
	}
	p := s.engine.Profile(user)
	if p == nil {
		writeJSON(w, http.StatusOK, map[string]any{"user": user, "weights": map[int]float64{}})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"user": p.User, "weights": p.Weights})
}

// handleUsage rejects a malformed `since` instead of silently falling
// back to the all-time breakdown — quietly wrong data is worse than a
// 400 the client can fix.
func (s *Server) handleUsage(w http.ResponseWriter, r *http.Request) {
	user, ok := requireUser(w, r)
	if !ok {
		return
	}
	var since time.Time
	if v := r.URL.Query().Get("since"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad since: want RFC3339"))
			return
		}
		since = t
	}
	writeJSON(w, http.StatusOK, s.engine.UsageBreakdown(user, since))
}

// handleStatus serves the engine's full counter snapshot (core.Stats) as
// JSON. Beside the page/user/queue counters this includes two nested
// observability blocks: Version (the derived-data version store —
// watermark, layers, pins, GC and cold-tier activity, including the
// fold generation and whether the last open skipped the recovery scan)
// and Cache (the shared decoded-record cache — Hits/Misses measure
// cross-pass reuse, EvictedLRU/EvictedFloor split evictions by cause,
// Bytes/MaxBytes/Entries size the decoded footprint against its bound).
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Status())
}
