// Package server exposes the Memex engine over HTTP as the paper's
// servlets do (§2-3): all client/server interaction tunnels over plain
// HTTP with JSON bodies so that firewalls, proxies and ISP restrictions
// never block the applet. UI-triggered endpoints (event logging, folder
// edits) do only foreground work and return immediately; mining results
// are served from the demons' published state.
//
// Routing gotcha: the mux below registers method-qualified patterns
// ("POST /api/user", "GET /api/search", ...), which require the enhanced
// net/http ServeMux shipped in Go 1.22 — and the enhancement is gated on
// the *module's* `go` directive, not just the toolchain. If go.mod ever
// drops below `go 1.22`, these strings silently become literal paths,
// every endpoint 404s, and the internal/client e2e tests all fail while
// this package still compiles cleanly. Keep the directive at 1.22+.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"memex/internal/core"
	"memex/internal/events"
)

// Server wraps an engine with the HTTP API.
type Server struct {
	engine *core.Engine
	mux    *http.ServeMux
}

// New builds the handler set over an engine.
func New(e *core.Engine) *Server {
	s := &Server{engine: e, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /api/user", s.handleUser)
	s.mux.HandleFunc("POST /api/event", s.handleEvent)
	s.mux.HandleFunc("POST /api/bookmark", s.handleBookmark)
	s.mux.HandleFunc("POST /api/correct", s.handleCorrect)
	s.mux.HandleFunc("POST /api/folders/import", s.handleImport)
	s.mux.HandleFunc("GET /api/folders/export", s.handleExport)
	s.mux.HandleFunc("GET /api/search", s.handleSearch)
	s.mux.HandleFunc("GET /api/trails", s.handleTrails)
	s.mux.HandleFunc("GET /api/themes", s.handleThemes)
	s.mux.HandleFunc("POST /api/themes/rebuild", s.handleRebuild)
	s.mux.HandleFunc("GET /api/recommend", s.handleRecommend)
	s.mux.HandleFunc("GET /api/discover", s.handleDiscover)
	s.mux.HandleFunc("GET /api/profile", s.handleProfile)
	s.mux.HandleFunc("GET /api/usage", s.handleUsage)
	s.mux.HandleFunc("GET /api/status", s.handleStatus)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// --- request/response DTOs (shared with the client package) ---

// UserReq registers a user.
type UserReq struct {
	ID   int64  `json:"id"`
	Name string `json:"name"`
}

// EventReq is one page-view event from the client tap.
type EventReq struct {
	User     int64     `json:"user"`
	URL      string    `json:"url"`
	Referrer string    `json:"referrer,omitempty"`
	Time     time.Time `json:"time"`
	// Privacy is "off", "private" or "community" (default community).
	Privacy string `json:"privacy,omitempty"`
}

// BookmarkReq files a page into a folder.
type BookmarkReq struct {
	User   int64     `json:"user"`
	URL    string    `json:"url"`
	Folder string    `json:"folder"`
	Time   time.Time `json:"time"`
}

// CorrectReq fixes a classifier guess (cut/paste in the folder tab).
type CorrectReq struct {
	User   int64  `json:"user"`
	URL    string `json:"url"`
	Folder string `json:"folder"`
}

// OK is the generic success envelope.
type OK struct {
	OK bool `json:"ok"`
}

// ErrBody is the generic error envelope.
type ErrBody struct {
	Error string `json:"error"`
}

func parsePrivacy(s string) events.Privacy {
	switch s {
	case "off":
		return events.Off
	case "private":
		return events.Private
	default:
		return events.Community
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrBody{Error: err.Error()})
}

func decode[T any](r *http.Request) (T, error) {
	var v T
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return v, fmt.Errorf("bad request body: %w", err)
	}
	return v, nil
}

func qint64(r *http.Request, name string) int64 {
	v, _ := strconv.ParseInt(r.URL.Query().Get(name), 10, 64)
	return v
}

func qint(r *http.Request, name string, def int) int {
	v, err := strconv.Atoi(r.URL.Query().Get(name))
	if err != nil || v <= 0 {
		return def
	}
	return v
}

// --- handlers ---

func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	req, err := decode[UserReq](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.ID == 0 || req.Name == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("id and name required"))
		return
	}
	if err := s.engine.RegisterUser(req.ID, req.Name); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, OK{true})
}

func (s *Server) handleEvent(w http.ResponseWriter, r *http.Request) {
	req, err := decode[EventReq](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.User == 0 || req.URL == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("user and url required"))
		return
	}
	if err := s.engine.RecordVisit(req.User, req.URL, req.Referrer, req.Time, parsePrivacy(req.Privacy)); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, OK{true})
}

func (s *Server) handleBookmark(w http.ResponseWriter, r *http.Request) {
	req, err := decode[BookmarkReq](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.User == 0 || req.URL == "" || req.Folder == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("user, url and folder required"))
		return
	}
	if err := s.engine.AddBookmark(req.User, req.URL, req.Folder, req.Time); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, OK{true})
}

func (s *Server) handleCorrect(w http.ResponseWriter, r *http.Request) {
	req, err := decode[CorrectReq](r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.engine.CorrectPlacement(req.User, req.URL, req.Folder); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, OK{true})
}

func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	user := qint64(r, "user")
	if user == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("user required"))
		return
	}
	n, err := s.engine.ImportBookmarks(user, r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"imported": n})
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	user := qint64(r, "user")
	if user == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("user required"))
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	s.engine.ExportBookmarks(user, w)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("q required"))
		return
	}
	hits := s.engine.Search(qint64(r, "user"), q, qint(r, "k", 10))
	writeJSON(w, http.StatusOK, hits)
}

func (s *Server) handleTrails(w http.ResponseWriter, r *http.Request) {
	user := qint64(r, "user")
	folder := r.URL.Query().Get("folder")
	if user == 0 || folder == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("user and folder required"))
		return
	}
	ctx := s.engine.Trails(user, folder, qint(r, "k", 20))
	writeJSON(w, http.StatusOK, ctx)
}

func (s *Server) handleThemes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Themes())
}

func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	st := s.engine.RebuildThemes()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	user := qint64(r, "user")
	if user == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("user required"))
		return
	}
	byProfile := r.URL.Query().Get("method") != "url"
	writeJSON(w, http.StatusOK, s.engine.Recommend(user, qint(r, "k", 10), byProfile))
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	user := qint64(r, "user")
	folder := r.URL.Query().Get("folder")
	if user == 0 || folder == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("user and folder required"))
		return
	}
	out := s.engine.Discover(user, folder, qint(r, "budget", 200), qint(r, "k", 10))
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	user := qint64(r, "user")
	if user == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("user required"))
		return
	}
	p := s.engine.Profile(user)
	if p == nil {
		writeJSON(w, http.StatusOK, map[string]any{"user": user, "weights": map[int]float64{}})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"user": p.User, "weights": p.Weights})
}

func (s *Server) handleUsage(w http.ResponseWriter, r *http.Request) {
	user := qint64(r, "user")
	if user == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("user required"))
		return
	}
	var since time.Time
	if v := r.URL.Query().Get("since"); v != "" {
		if t, err := time.Parse(time.RFC3339, v); err == nil {
			since = t
		}
	}
	writeJSON(w, http.StatusOK, s.engine.UsageBreakdown(user, since))
}

// handleStatus serves the engine's full counter snapshot (core.Stats) as
// JSON. Beside the page/user/queue counters this includes two nested
// observability blocks: Version (the derived-data version store —
// watermark, layers, pins, GC and cold-tier activity, including the
// fold generation and whether the last open skipped the recovery scan)
// and Cache (the shared decoded-record cache — Hits/Misses measure
// cross-pass reuse, EvictedLRU/EvictedFloor split evictions by cause,
// Bytes/MaxBytes/Entries size the decoded footprint against its bound).
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Status())
}
