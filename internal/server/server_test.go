package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"memex/internal/core"
	"memex/internal/kvstore"
)

// stubSource resolves every URL to a tiny page: enough for the ingest
// pipeline to run end to end without a corpus.
type stubSource struct{}

func (stubSource) Lookup(url string) (core.Content, bool) {
	return core.Content{URL: url, Title: "t", Text: "alpha beta gamma"}, true
}

func newTestEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.Open(core.Config{
		Dir:    t.TempDir(),
		Source: stubSource{},
		KV:     kvstore.Options{Sync: kvstore.SyncNever},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestBadParamsReturn400 is the regression table for the silent-parse
// bugs: a malformed user must say "bad user" (not masquerade as
// missing), a missing one must say "user required", and a malformed
// since must be refused instead of quietly widening to all time.
func TestBadParamsReturn400(t *testing.T) {
	ts := httptest.NewServer(New(newTestEngine(t)))
	defer ts.Close()

	cases := []struct {
		name    string
		method  string
		path    string
		wantErr string
	}{
		{"search bad user", "GET", "/api/search?q=x&user=abc", "bad user"},
		{"usage bad user", "GET", "/api/usage?user=abc", "bad user"},
		{"usage missing user", "GET", "/api/usage", "user required"},
		{"usage bad since", "GET", "/api/usage?user=1&since=yesterday", "bad since"},
		{"export bad user", "GET", "/api/folders/export?user=abc", "bad user"},
		{"export missing user", "GET", "/api/folders/export", "user required"},
		{"import bad user", "POST", "/api/folders/import?user=abc", "bad user"},
		{"recommend bad user", "GET", "/api/recommend?user=abc", "bad user"},
		{"profile bad user", "GET", "/api/profile?user=abc", "bad user"},
		{"trails bad user", "GET", "/api/trails?user=abc&folder=f", "bad user"},
		{"trails missing folder", "GET", "/api/trails?user=1", "folder required"},
		{"discover bad user", "GET", "/api/discover?user=abc&folder=f", "bad user"},
		{"discover missing folder", "GET", "/api/discover?user=1", "folder required"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tc.wantErr) {
				t.Fatalf("body = %s, want error containing %q", body, tc.wantErr)
			}
		})
	}
}

// TestMalformedUserDistinctFromMissing pins the exact distinction the
// qint64 fix exists for: ?user=abc used to parse to 0 and return the
// misleading "user required".
func TestMalformedUserDistinctFromMissing(t *testing.T) {
	ts := httptest.NewServer(New(newTestEngine(t)))
	defer ts.Close()
	get := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	malformed := get("/api/profile?user=abc")
	missing := get("/api/profile")
	if !strings.Contains(malformed, "bad user") || strings.Contains(malformed, "required") {
		t.Fatalf("malformed user body = %s", malformed)
	}
	if !strings.Contains(missing, "user required") {
		t.Fatalf("missing user body = %s", missing)
	}
}

func TestRateLimitAnswers429(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2000, 0)}
	srv := NewWith(newTestEngine(t), Config{RatePerSec: 0.001, Burst: 2, Now: clk.now})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var ok200, got429 int
	for i := 0; i < 6; i++ {
		resp, err := http.Get(ts.URL + "/api/themes?user=7")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			got429++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if ok200 != 2 || got429 != 4 {
		t.Fatalf("200/429 = %d/%d, want 2/4 (burst then dry)", ok200, got429)
	}
	// A different user (different bucket) still gets in.
	resp, err := http.Get(ts.URL + "/api/themes?user=8")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("independent client got %d", resp.StatusCode)
	}
	// The ops endpoints stay reachable for the throttled client.
	for _, path := range []string{"/metrics?user=7", "/api/status?user=7"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ops endpoint %s throttled: %d", path, resp.StatusCode)
		}
	}
	// The refusals are visible in the shed counters.
	body := fetchMetrics(t, ts.URL)
	if !strings.Contains(body, `memex_http_rejected_total{endpoint="GET /api/themes",reason="rate"} 4`) {
		t.Fatalf("rate rejections not counted:\n%s", grepMetrics(body, "rejected"))
	}
}

func TestInFlightCapAnswers503(t *testing.T) {
	srv := NewWith(newTestEngine(t), Config{MaxInFlight: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Simulate one request already being served; the next must bounce.
	srv.metrics.inFlight.Add(1)
	resp, err := http.Get(ts.URL + "/api/themes")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 at capacity", resp.StatusCode)
	}
	// Ops endpoints are exempt: a saturated server must still answer its
	// operators.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics refused at capacity: %d", resp.StatusCode)
	}
	srv.metrics.inFlight.Add(-1)
	resp, err = http.Get(ts.URL + "/api/themes")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d after capacity freed, want 200", resp.StatusCode)
	}
}

func TestWriteShedOnSyntheticPressure(t *testing.T) {
	srv := NewWith(newTestEngine(t), Config{ShedQueueFraction: 0.9})
	// Inject a synthetic backed-up pipeline; reads must pass, writes 503.
	srv.pressure = func() core.Pressure {
		return core.Pressure{QueueDepth: 95, QueueCap: 100}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/api/event", "application/json",
		strings.NewReader(`{"user":1,"url":"http://x/"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write under pressure: status %d body %s, want 503", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "overloaded") {
		t.Fatalf("shed body = %s", body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response without Retry-After")
	}
	// Reads are not shed by pipeline pressure.
	resp, err = http.Get(ts.URL + "/api/themes")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read shed under write pressure: %d", resp.StatusCode)
	}
}

// TestMetricsEndpointMovesWithTraffic drives real requests through the
// chain and checks the scrape reflects them.
func TestMetricsEndpointMovesWithTraffic(t *testing.T) {
	e := newTestEngine(t)
	ts := httptest.NewServer(New(e))
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/api/event", "application/json",
			strings.NewReader(fmt.Sprintf(`{"user":1,"url":"http://page%d/"}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// One 4xx for the error counter.
	resp, err := http.Get(ts.URL + "/api/profile?user=abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	e.DrainBackground()

	body := fetchMetrics(t, ts.URL)
	for _, want := range []string{
		`memex_http_requests_total{endpoint="POST /api/event"} 3`,
		`memex_http_request_duration_seconds_count{endpoint="POST /api/event"} 3`,
		`memex_http_errors_total{endpoint="GET /api/profile",class="4xx"} 1`,
		"memex_engine_visits_total 3",
		"memex_engine_queue_depth",
		"memex_version_watermark",
		"memex_cache_hit_ratio",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestMetricsConcurrentWithIngest hammers /metrics while events ingest;
// run under -race (CI's race job covers this package) it proves the
// scrape path takes no lock the request path misses.
func TestMetricsConcurrentWithIngest(t *testing.T) {
	e := newTestEngine(t)
	ts := httptest.NewServer(New(e))
	defer ts.Close()

	const (
		scrapers = 4
		writers  = 4
		perG     = 25
	)
	var wg sync.WaitGroup
	for g := 0; g < scrapers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp, err := http.Post(ts.URL+"/api/event", "application/json",
					strings.NewReader(fmt.Sprintf(`{"user":%d,"url":"http://w%d/p%d"}`, g+1, g, i)))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	e.DrainBackground()

	body := fetchMetrics(t, ts.URL)
	want := fmt.Sprintf(`memex_http_requests_total{endpoint="POST /api/event"} %d`, writers*perG)
	if !strings.Contains(body, want) {
		t.Fatalf("lost samples under concurrency: want %q in\n%s", want, grepMetrics(body, "requests_total"))
	}
}

func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// grepMetrics filters a scrape to lines containing substr for readable
// failure messages.
func grepMetrics(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
