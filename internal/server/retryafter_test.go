package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memex/internal/core"
)

// TestDrainEstimator pins the hint math on a fake clock: unseeded runs
// answer the 1s floor, a measured drain rate turns into
// ceil(excess/rate), a growing queue pins to the 60s ceiling, and
// same-instant samples never divide by zero.
func TestDrainEstimator(t *testing.T) {
	t0 := time.Unix(5000, 0)
	var d drainEstimator

	if got := d.retryAfter(100, 50); got != 1 {
		t.Fatalf("unseeded hint = %d, want 1", got)
	}

	d.observe(1000, t0)
	if got := d.retryAfter(1000, 500); got != 1 {
		t.Fatalf("one-sample hint = %d, want 1 (no rate yet)", got)
	}

	// 1000 → 900 over 1s: rate seeds at 100/s; 400 excess drains in 4s.
	d.observe(900, t0.Add(1*time.Second))
	if got := d.retryAfter(900, 500); got != 4 {
		t.Fatalf("seeded hint = %d, want 4", got)
	}

	// Same-instant burst arrival: skipped, rate unchanged.
	d.observe(1, t0.Add(1*time.Second))
	if got := d.retryAfter(900, 500); got != 4 {
		t.Fatalf("same-instant sample moved the rate: hint %d, want 4", got)
	}

	// 900 → 880 over 1s: instant 20/s, EWMA (20+100)/2 = 60/s.
	d.observe(880, t0.Add(2*time.Second))
	if got := d.retryAfter(880, 820); got != 1 {
		t.Fatalf("small-excess hint = %d, want 1 (ceil(60/60))", got)
	}

	// Queue reverses and grows: the rate goes negative and the hint pins
	// to the ceiling — "come back in 1s" while climbing is a retry storm.
	d.observe(2000, t0.Add(3*time.Second))
	if got := d.retryAfter(2000, 500); got != maxRetryAfterSec {
		t.Fatalf("growing-queue hint = %d, want %d", got, maxRetryAfterSec)
	}

	// At or under the threshold there is nothing to wait for.
	if got := d.retryAfter(400, 500); got != 1 {
		t.Fatalf("under-threshold hint = %d, want 1", got)
	}

	// A glacial drain clamps to the ceiling instead of quoting hours.
	var slow drainEstimator
	slow.observe(10000, t0)
	slow.observe(9999, t0.Add(1*time.Second))
	if got := slow.retryAfter(9999, 100); got != maxRetryAfterSec {
		t.Fatalf("glacial-drain hint = %d, want %d", got, maxRetryAfterSec)
	}
}

// TestAdaptiveRetryAfterOverHTTP drives shed writes through the full
// middleware chain on a fake clock and a synthetic pressure sequence,
// asserting the Retry-After header tracks the observed drain rate
// instead of the old constant "1".
func TestAdaptiveRetryAfterOverHTTP(t *testing.T) {
	clk := &fakeClock{t: time.Unix(3000, 0)}
	srv := NewWith(newTestEngine(t), Config{ShedQueueFraction: 0.5, Now: clk.now})

	depths := []int{90, 80, 78, 95}
	var call int
	srv.pressure = func() core.Pressure {
		p := core.Pressure{QueueDepth: depths[call], QueueCap: 100}
		call++
		return p
	}

	ts := httptest.NewServer(srv)
	defer ts.Close()

	// target = 0.5×100 = 50; every depth above sheds. Expected hints:
	// first sample unseeded → "1"; 90→80 over 1s seeds 10/s, excess 30
	// → "3"; 80→78 gives EWMA (2+10)/2 = 6/s, excess 28 → "5"; then the
	// queue grows → ceiling.
	want := []string{"1", "3", "5", "60"}
	for i, w := range want {
		resp, err := http.Post(ts.URL+"/api/event", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 503", i, resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != w {
			t.Fatalf("request %d: Retry-After %q, want %q", i, got, w)
		}
		clk.advance(1 * time.Second)
	}

	// Non-pressure rejections keep the flat 1s floor: the drain
	// estimator knows nothing about token buckets.
	clk2 := &fakeClock{t: time.Unix(4000, 0)}
	srv2 := NewWith(newTestEngine(t), Config{RatePerSec: 0.001, Burst: 1, Now: clk2.now})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts2.URL + "/api/themes?user=9")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if i == 1 {
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("status %d, want 429", resp.StatusCode)
			}
			if got := resp.Header.Get("Retry-After"); got != "1" {
				t.Fatalf("rate-limit Retry-After %q, want \"1\"", got)
			}
		}
	}
}
