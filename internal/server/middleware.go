package server

// This file is the admission-control half of the middleware chain: the
// paper's servlet tier is supposed to absorb event taps from every
// browsing user, but real archive traffic is dominated by bursty robot
// crawls that look nothing like human sessions — an undefended
// /api/event path queues unboundedly and then sheds data silently
// (the event queue drops its *oldest* entry on overflow). The chain
// refuses excess work early and loudly instead:
//
//  1. a per-client token bucket (keyed by the user id param when
//     present, else the remote address) turns a crawler's burst into
//     429s while humans sail through;
//  2. a global in-flight cap bounds concurrent request work regardless
//     of who sends it (503);
//  3. write endpoints are shed with 503 when the engine's backpressure
//     signals — background queue depth, fold watermark lag — cross
//     their configured thresholds, so the publish pipeline degrades by
//     refusing new ingest rather than by dropping archived events.
//
// Ops endpoints (/metrics, /api/status) bypass all three: an operator
// must be able to see a melting server.

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"memex/internal/core"
)

// Config tunes the server's observability and admission-control
// middleware. The zero value disables every limiter (pure
// observability — exactly the pre-admission behavior), so existing
// embedders opt in knob by knob.
type Config struct {
	// RatePerSec is the per-client steady-state request rate; 0 disables
	// rate limiting. Clients are keyed by the `user` query parameter when
	// present, else by remote host.
	RatePerSec float64
	// Burst is the token-bucket depth (instantaneous excursion above
	// RatePerSec). 0 takes max(8, 2×RatePerSec).
	Burst int
	// MaxInFlight caps concurrently served requests across all clients;
	// 0 disables the cap. Ops endpoints are exempt.
	MaxInFlight int
	// ShedQueueFraction sheds write endpoints when the background event
	// queue is at least this full (e.g. 0.9); 0 disables queue shedding.
	ShedQueueFraction float64
	// ShedFoldLag sheds write endpoints when the published watermark runs
	// more than this many epochs ahead of the durable fold watermark;
	// 0 disables fold-lag shedding.
	ShedFoldLag uint64
	// Now injects the middleware clock (limiter refill, latency
	// measurement) for tests. Default time.Now.
	Now func() time.Time
}

// withDefaults fills the derived defaults without mutating the caller's
// copy semantics (Config is passed by value).
func (c Config) withDefaults() Config {
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.RatePerSec > 0 && c.Burst <= 0 {
		c.Burst = int(2 * c.RatePerSec)
		if c.Burst < 8 {
			c.Burst = 8
		}
	}
	return c
}

// routeClass picks which admission checks a route is subject to.
type routeClass int

const (
	// readRoute: rate limit and in-flight cap, never pressure-shed
	// (reads don't feed the publish pipeline).
	readRoute routeClass = iota
	// writeRoute: everything, including backpressure shedding.
	writeRoute
	// opsRoute: observability endpoints, exempt from all admission.
	opsRoute
)

// --- token-bucket limiter ---

// limiterMaxClients bounds the bucket map; at the cap, fully refilled
// (idle) buckets are swept before admitting a new client key.
const limiterMaxClients = 1 << 16

type bucket struct {
	tokens float64
	last   time.Time
}

// limiter is a per-client token bucket map. One mutex guards the map;
// each allow() is O(1), and the sweep is a single non-blocking pass.
type limiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

func newLimiter(rate float64, burst int, now func() time.Time) *limiter {
	return &limiter{rate: rate, burst: float64(burst), now: now, buckets: map[string]*bucket{}}
}

// allow spends one token from key's bucket, refilling first by elapsed
// wall time. A brand-new client starts with a full bucket.
func (l *limiter) allow(key string) bool {
	t := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= limiterMaxClients {
			l.sweepLocked(t)
		}
		b = &bucket{tokens: l.burst, last: t}
		l.buckets[key] = b
	} else if dt := t.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
		b.last = t
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// sweepLocked drops buckets that have refilled to full — clients idle
// long enough that forgetting them is indistinguishable from keeping
// them. Caller holds l.mu.
func (l *limiter) sweepLocked(t time.Time) {
	for k, b := range l.buckets {
		if math.Min(l.burst, b.tokens+t.Sub(b.last).Seconds()*l.rate) >= l.burst {
			delete(l.buckets, k)
		}
	}
}

// clientKey identifies the requester for rate limiting: the user id
// param when the endpoint carries one (one browsing user = one bucket,
// however many NATed addresses they arrive from), else the remote host.
func clientKey(r *http.Request) string {
	if u := r.URL.Query().Get("user"); u != "" {
		return "u:" + u
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// --- adaptive Retry-After ---

// Retry-After clamps: never below 1s (the old constant, and the floor
// HTTP date-less hints make sense at), never above 60s (past a minute
// the estimate is noise and a well-behaved client should just poll).
const (
	minRetryAfterSec = 1
	maxRetryAfterSec = 60
)

// drainEstimator turns successive Pressure samples into an event-queue
// drain-rate estimate, so a shed response can tell the client *when*
// the queue is likely to be back under its admission threshold instead
// of the flat "1" that made every robot in a fleet retry in lockstep
// one second later. Every write request observes the queue depth it
// just read (admitted or shed — rejected traffic is exactly when the
// estimate matters), and the rate is an EWMA of depth deltas per
// second, positive while draining.
type drainEstimator struct {
	mu        sync.Mutex
	valid     bool
	lastT     time.Time
	lastDepth int
	// rate is the smoothed drain rate in events/sec; negative while the
	// queue is growing.
	rate float64
	// seeded flips after the first rate sample (the EWMA needs a base).
	seeded bool
}

// observe feeds one (depth, now) sample. Same-instant samples (burst
// arrivals inside one clock tick) are skipped rather than dividing by
// zero or spiking the rate.
func (d *drainEstimator) observe(depth int, t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.valid {
		d.valid, d.lastT, d.lastDepth = true, t, depth
		return
	}
	dt := t.Sub(d.lastT).Seconds()
	if dt <= 0 {
		return
	}
	inst := float64(d.lastDepth-depth) / dt
	if !d.seeded {
		d.rate, d.seeded = inst, true
	} else {
		d.rate = 0.5*inst + 0.5*d.rate
	}
	d.lastT, d.lastDepth = t, depth
}

// retryAfter estimates the seconds until a queue at depth drains to
// target (the admission threshold), clamped to [1s, 60s]. With no rate
// estimate yet the old constant 1 stands; a non-draining (growing)
// queue pins to the max — telling a client to come back in a second
// while the queue climbs is how retry storms start.
func (d *drainEstimator) retryAfter(depth, target int) int {
	d.mu.Lock()
	rate, seeded := d.rate, d.seeded
	d.mu.Unlock()
	excess := depth - target
	if excess <= 0 {
		return minRetryAfterSec
	}
	if !seeded {
		return minRetryAfterSec
	}
	if rate <= 0 {
		return maxRetryAfterSec
	}
	secs := int(math.Ceil(float64(excess) / rate))
	if secs < minRetryAfterSec {
		return minRetryAfterSec
	}
	if secs > maxRetryAfterSec {
		return maxRetryAfterSec
	}
	return secs
}

// shedTarget is the queue depth below which writes are admitted again —
// the re-entry point a shed client should aim its retry at.
func shedTarget(p core.Pressure, cfg Config) int {
	if cfg.ShedQueueFraction <= 0 || p.QueueCap <= 0 {
		return 0
	}
	return int(cfg.ShedQueueFraction * float64(p.QueueCap))
}

// shedReason decides whether a write request should be refused under
// the current backpressure signals; "" admits. Pure function of its
// inputs so the thresholds are unit-testable.
func shedReason(p core.Pressure, cfg Config) string {
	if cfg.ShedQueueFraction > 0 && p.QueueCap > 0 &&
		float64(p.QueueDepth) >= cfg.ShedQueueFraction*float64(p.QueueCap) {
		return rejectQueue
	}
	if cfg.ShedFoldLag > 0 && p.FoldLag > cfg.ShedFoldLag {
		return rejectFoldLag
	}
	return ""
}

// statusRecorder captures the status code a handler writes so the
// middleware can classify the response after the fact.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// handle registers pattern on the mux wrapped in the full middleware
// chain: admission first (cheap, before any handler work), then
// instrumentation of whatever ran.
func (s *Server) handle(pattern string, class routeClass, h http.HandlerFunc) {
	em := s.metrics.register(pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := s.cfg.Now()
		em.requests.Add(1)
		n := s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)

		if class != opsRoute {
			if s.limiter != nil && !s.limiter.allow(clientKey(r)) {
				s.reject(w, em, rejectRate, http.StatusTooManyRequests, minRetryAfterSec,
					fmt.Errorf("rate limit exceeded"), start)
				return
			}
			if s.cfg.MaxInFlight > 0 && n > int64(s.cfg.MaxInFlight) {
				s.reject(w, em, rejectInFlight, http.StatusServiceUnavailable, minRetryAfterSec,
					fmt.Errorf("server at capacity (%d requests in flight)", s.cfg.MaxInFlight), start)
				return
			}
			if class == writeRoute {
				p := s.pressure()
				s.drain.observe(p.QueueDepth, start)
				if reason := shedReason(p, s.cfg); reason != "" {
					// Queue sheds get the drain-rate hint; fold-lag sheds
					// reuse it when the queue is also backed up (the common
					// correlated case) and fall back to the 1s floor when
					// only the fold is behind — the queue estimator knows
					// nothing about fold progress.
					retry := s.drain.retryAfter(p.QueueDepth, shedTarget(p, s.cfg))
					s.reject(w, em, reason, http.StatusServiceUnavailable, retry,
						fmt.Errorf("overloaded (%s): retry later", reason), start)
					return
				}
			}
		}

		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(sr, r)
		em.observe(sr.code, s.cfg.Now().Sub(start))
	})
}

// reject refuses a request with the admission-control envelope: the
// refusal is counted per reason, classified like any other response,
// and carries Retry-After so well-behaved clients back off —
// drain-rate-derived for pressure sheds, the 1s floor otherwise.
func (s *Server) reject(w http.ResponseWriter, em *endpointMetrics, reason string, code, retryAfterSec int, err error, start time.Time) {
	em.rejected[reason].Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
	writeErr(w, code, err)
	em.observe(code, s.cfg.Now().Sub(start))
}
