package server

import (
	"strings"
	"testing"
	"time"

	"memex/internal/core"
)

func TestHistogramBucketMath(t *testing.T) {
	var h histogram
	cases := []struct {
		d    time.Duration
		want int // bucket index
	}{
		{50 * time.Microsecond, 0},  // under the first bound
		{100 * time.Microsecond, 0}, // exactly the first bound (le is inclusive)
		{101 * time.Microsecond, 1}, // just over
		{150 * time.Microsecond, 1}, // inside the second bucket
		{1 * time.Millisecond, 4},   // 100µs ×2⁴ = 1.6ms bound covers 1ms... check below
		{10 * time.Second, 17},      // near the top bound (13.1072s)
		{1 * time.Minute, 18},       // +Inf overflow
	}
	for _, tc := range cases {
		h.observe(tc.d)
	}
	// Independently derive the expected index for each case.
	for _, tc := range cases {
		want := 0
		for want < len(latencyBuckets) && tc.d > latencyBuckets[want] {
			want++
		}
		if want != tc.want {
			t.Fatalf("test table self-check: %v expects bucket %d, table says %d", tc.d, want, tc.want)
		}
	}
	counts := map[int]uint64{}
	for _, tc := range cases {
		counts[tc.want]++
	}
	for i := range h.buckets {
		if got := h.buckets[i].Load(); got != counts[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got, counts[i])
		}
	}
	if h.count.Load() != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.count.Load(), len(cases))
	}
	var wantSum int64
	for _, tc := range cases {
		wantSum += int64(tc.d)
	}
	if h.sumNanos.Load() != wantSum {
		t.Fatalf("sum = %dns, want %dns", h.sumNanos.Load(), wantSum)
	}
}

func TestHistogramBucketBoundsAreLogSpaced(t *testing.T) {
	if latencyBuckets[0] != 100*time.Microsecond {
		t.Fatalf("first bound = %v, want 100µs", latencyBuckets[0])
	}
	for i := 1; i < len(latencyBuckets); i++ {
		if latencyBuckets[i] != 2*latencyBuckets[i-1] {
			t.Fatalf("bounds not ×2 log-spaced at %d: %v after %v", i, latencyBuckets[i], latencyBuckets[i-1])
		}
	}
}

// TestHistogramRenderCumulative checks the Prometheus rendering: bucket
// lines must be cumulative and end with +Inf == _count.
func TestHistogramRenderCumulative(t *testing.T) {
	m := newMetricsSet()
	em := m.register("GET /x")
	em.latency.observe(50 * time.Microsecond)  // bucket 0
	em.latency.observe(150 * time.Microsecond) // bucket 1
	em.latency.observe(time.Minute)            // +Inf
	var sb strings.Builder
	m.writeHTTPMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		`memex_http_request_duration_seconds_bucket{endpoint="GET /x",le="0.0001"} 1`,
		`memex_http_request_duration_seconds_bucket{endpoint="GET /x",le="0.0002"} 2`,
		`memex_http_request_duration_seconds_bucket{endpoint="GET /x",le="13.1072"} 2`,
		`memex_http_request_duration_seconds_bucket{endpoint="GET /x",le="+Inf"} 3`,
		`memex_http_request_duration_seconds_count{endpoint="GET /x"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered metrics missing %q", want)
		}
	}
}

// fakeClock is a manually advanced time source for limiter tests.
type fakeClock struct {
	t time.Time
}

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func TestLimiterRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := newLimiter(1, 2, clk.now) // 1 token/s, burst 2

	// Fresh client starts with a full bucket: burst of 2, then dry.
	if !l.allow("a") || !l.allow("a") {
		t.Fatal("burst tokens refused")
	}
	if l.allow("a") {
		t.Fatal("empty bucket granted a token")
	}
	// Half a second refills half a token: still dry.
	clk.advance(500 * time.Millisecond)
	if l.allow("a") {
		t.Fatal("half-refilled bucket granted a token")
	}
	// Another 600ms crosses one whole token.
	clk.advance(600 * time.Millisecond)
	if !l.allow("a") {
		t.Fatal("refilled token refused")
	}
	if l.allow("a") {
		t.Fatal("second token granted after one second of refill")
	}
	// A long idle period refills to burst, never beyond.
	clk.advance(time.Hour)
	if !l.allow("a") || !l.allow("a") {
		t.Fatal("burst tokens refused after idle")
	}
	if l.allow("a") {
		t.Fatal("bucket refilled beyond burst")
	}
	// Other clients have independent buckets.
	if !l.allow("b") {
		t.Fatal("independent client throttled")
	}
}

func TestLimiterSweepDropsIdleClients(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := newLimiter(1, 1, clk.now)
	if !l.allow("idle") {
		t.Fatal("first token refused")
	}
	// After a full refill the idle bucket is forgettable.
	clk.advance(10 * time.Second)
	l.sweepLocked(clk.now())
	if len(l.buckets) != 0 {
		t.Fatalf("sweep kept %d idle buckets", len(l.buckets))
	}
	// A still-draining bucket survives the sweep.
	if !l.allow("busy") {
		t.Fatal("token refused")
	}
	l.sweepLocked(clk.now())
	if len(l.buckets) != 1 {
		t.Fatalf("sweep dropped a non-refilled bucket (%d left)", len(l.buckets))
	}
}

func TestShedReason(t *testing.T) {
	cases := []struct {
		name string
		p    core.Pressure
		cfg  Config
		want string
	}{
		{"all disabled", core.Pressure{QueueDepth: 100, QueueCap: 100, FoldLag: 1e6}, Config{}, ""},
		{"queue under threshold", core.Pressure{QueueDepth: 89, QueueCap: 100}, Config{ShedQueueFraction: 0.9}, ""},
		{"queue at threshold", core.Pressure{QueueDepth: 90, QueueCap: 100}, Config{ShedQueueFraction: 0.9}, rejectQueue},
		{"queue full", core.Pressure{QueueDepth: 100, QueueCap: 100}, Config{ShedQueueFraction: 0.9}, rejectQueue},
		{"fold lag under", core.Pressure{FoldLag: 64}, Config{ShedFoldLag: 64}, ""},
		{"fold lag over", core.Pressure{FoldLag: 65}, Config{ShedFoldLag: 64}, rejectFoldLag},
		{"queue wins over lag", core.Pressure{QueueDepth: 10, QueueCap: 10, FoldLag: 100}, Config{ShedQueueFraction: 0.5, ShedFoldLag: 1}, rejectQueue},
	}
	for _, tc := range cases {
		if got := shedReason(tc.p, tc.cfg); got != tc.want {
			t.Errorf("%s: shedReason = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Now == nil {
		t.Fatal("Now not defaulted")
	}
	if c.Burst != 0 {
		t.Fatalf("Burst defaulted to %d with rate limiting off", c.Burst)
	}
	c = Config{RatePerSec: 2}.withDefaults()
	if c.Burst != 8 {
		t.Fatalf("Burst = %d, want floor of 8", c.Burst)
	}
	c = Config{RatePerSec: 100}.withDefaults()
	if c.Burst != 200 {
		t.Fatalf("Burst = %d, want 2×rate", c.Burst)
	}
	c = Config{RatePerSec: 100, Burst: 5}.withDefaults()
	if c.Burst != 5 {
		t.Fatalf("explicit Burst overridden to %d", c.Burst)
	}
}
