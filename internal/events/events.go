// Package events defines the client→server event stream of Figure 3 and
// the bounded queue that separates the foreground path (UI events must be
// acknowledged immediately) from the background demons (which may lag and,
// under overload, shed work rather than block the user — §3: "the server
// recovers … even if it has to discard a few client events").
package events

import (
	"sync"
	"time"
)

// Privacy is the per-event archiving mode the user selects in the client.
type Privacy int

const (
	// Off means the event must not be archived at all.
	Off Privacy = iota
	// Private archives for the user's own recall only.
	Private
	// Community archives for community-level mining.
	Community
)

func (p Privacy) String() string {
	switch p {
	case Off:
		return "off"
	case Private:
		return "private"
	case Community:
		return "community"
	}
	return "unknown"
}

// Kind discriminates event types.
type Kind int

const (
	// VisitEvent is a page view reported by the client tap.
	VisitEvent Kind = iota + 1
	// BookmarkEvent is a deliberate filing of a page into a folder.
	BookmarkEvent
	// FolderEvent is a folder-structure edit (create/move/correct).
	FolderEvent
)

// Event is one client action.
type Event struct {
	Kind     Kind
	User     int64
	URL      string
	Referrer string
	Folder   string
	Time     time.Time
	Privacy  Privacy
	// Correct marks FolderEvents that fix a classifier guess.
	Correct bool
}

// Queue is a bounded MPSC event queue with drop-oldest overflow semantics:
// producers never block (the foreground ack path stays fast) and the
// oldest unprocessed event is shed under overload.
type Queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buf     []Event
	cap     int
	dropped uint64
	closed  bool
}

// NewQueue returns a queue holding at most capacity events (min 16).
func NewQueue(capacity int) *Queue {
	if capacity < 16 {
		capacity = 16
	}
	q := &Queue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues without blocking; under overflow the oldest event is
// dropped and counted.
func (q *Queue) Push(e Event) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	if len(q.buf) >= q.cap {
		copy(q.buf, q.buf[1:])
		q.buf = q.buf[:len(q.buf)-1]
		q.dropped++
	}
	q.buf = append(q.buf, e)
	q.mu.Unlock()
	q.cond.Signal()
}

// Pop dequeues the next event, blocking until one is available or the
// queue closes (ok=false).
func (q *Queue) Pop() (Event, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.buf) == 0 {
		return Event{}, false
	}
	e := q.buf[0]
	copy(q.buf, q.buf[1:])
	q.buf = q.buf[:len(q.buf)-1]
	return e, true
}

// TryPop dequeues without blocking.
func (q *Queue) TryPop() (Event, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) == 0 {
		return Event{}, false
	}
	e := q.buf[0]
	copy(q.buf, q.buf[1:])
	q.buf = q.buf[:len(q.buf)-1]
	return e, true
}

// Len returns the number of queued events.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// Cap returns the queue's capacity (after the constructor's minimum
// clamp), so depth/capacity ratios computed by admission control match
// the bound Push actually enforces.
func (q *Queue) Cap() int {
	return q.cap
}

// Dropped returns the number of events shed under overload.
func (q *Queue) Dropped() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

// Close wakes all blocked consumers; subsequent pushes are ignored.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
