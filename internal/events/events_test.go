package events

import (
	"sync"
	"testing"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(16)
	for i := 0; i < 5; i++ {
		q.Push(Event{User: int64(i)})
	}
	for i := 0; i < 5; i++ {
		e, ok := q.TryPop()
		if !ok || e.User != int64(i) {
			t.Fatalf("pop %d: %v ok=%v", i, e.User, ok)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestQueueDropOldest(t *testing.T) {
	q := NewQueue(16)
	for i := 0; i < 20; i++ {
		q.Push(Event{User: int64(i)})
	}
	if q.Len() != 16 {
		t.Fatalf("Len = %d", q.Len())
	}
	if q.Dropped() != 4 {
		t.Fatalf("Dropped = %d", q.Dropped())
	}
	e, _ := q.TryPop()
	if e.User != 4 {
		t.Fatalf("oldest surviving event = %d, want 4", e.User)
	}
}

func TestQueueBlockingPop(t *testing.T) {
	q := NewQueue(16)
	done := make(chan Event, 1)
	go func() {
		e, ok := q.Pop()
		if ok {
			done <- e
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push(Event{User: 7})
	select {
	case e := <-done:
		if e.User != 7 {
			t.Fatalf("got %d", e.User)
		}
	case <-time.After(time.Second):
		t.Fatal("Pop never woke")
	}
}

func TestQueueCloseWakesConsumers(t *testing.T) {
	q := NewQueue(16)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := q.Pop(); ok {
				t.Error("Pop returned ok after close")
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	q.Close()
	wg.Wait()
	// Push after close is ignored.
	q.Push(Event{})
	if q.Len() != 0 {
		t.Fatal("push after close stored an event")
	}
}

func TestQueueConcurrentProducers(t *testing.T) {
	q := NewQueue(10000)
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 100; i++ {
				q.Push(Event{User: base*1000 + i})
			}
		}(int64(p))
	}
	wg.Wait()
	if q.Len() != 800 {
		t.Fatalf("Len = %d, want 800", q.Len())
	}
}

func TestPrivacyString(t *testing.T) {
	if Off.String() != "off" || Private.String() != "private" || Community.String() != "community" {
		t.Fatal("Privacy strings wrong")
	}
	if Privacy(99).String() != "unknown" {
		t.Fatal("unknown privacy string wrong")
	}
}
