package text

import (
	"math"
	"sort"
	"sync"
)

// Dict interns term strings to dense int32 ids, shared across all mining
// modules so that vectors from different subsystems are comparable.
// Safe for concurrent use.
type Dict struct {
	mu    sync.RWMutex
	ids   map[string]int32
	terms []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]int32)}
}

// ID interns term and returns its id.
func (d *Dict) ID(term string) int32 {
	d.mu.RLock()
	id, ok := d.ids[term]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[term]; ok {
		return id
	}
	id = int32(len(d.terms))
	d.ids[term] = id
	d.terms = append(d.terms, term)
	return id
}

// Lookup returns the id for term without interning; ok=false when unseen.
func (d *Dict) Lookup(term string) (int32, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[term]
	return id, ok
}

// Term returns the string for id (empty when out of range).
func (d *Dict) Term(id int32) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || int(id) >= len(d.terms) {
		return ""
	}
	return d.terms[id]
}

// Size returns the number of interned terms.
func (d *Dict) Size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// Vector is a sparse term vector: parallel sorted-by-id slices.
type Vector struct {
	IDs     []int32
	Weights []float64
}

// VectorFromCounts builds a raw term-frequency vector, interning terms.
func VectorFromCounts(d *Dict, tf map[string]int) Vector {
	v := Vector{
		IDs:     make([]int32, 0, len(tf)),
		Weights: make([]float64, 0, len(tf)),
	}
	for term, n := range tf {
		v.IDs = append(v.IDs, d.ID(term))
		v.Weights = append(v.Weights, float64(n))
	}
	v.sortByID()
	return v
}

// VectorFromText is shorthand for VectorFromCounts(d, TermCounts(s)).
func VectorFromText(d *Dict, s string) Vector {
	return VectorFromCounts(d, TermCounts(s))
}

func (v *Vector) sortByID() {
	sort.Sort(byID{v})
}

type byID struct{ v *Vector }

func (s byID) Len() int           { return len(s.v.IDs) }
func (s byID) Less(i, j int) bool { return s.v.IDs[i] < s.v.IDs[j] }
func (s byID) Swap(i, j int) {
	s.v.IDs[i], s.v.IDs[j] = s.v.IDs[j], s.v.IDs[i]
	s.v.Weights[i], s.v.Weights[j] = s.v.Weights[j], s.v.Weights[i]
}

// Len returns the number of nonzero components.
func (v Vector) Len() int { return len(v.IDs) }

// Norm returns the Euclidean norm.
func (v Vector) Norm() float64 {
	var s float64
	for _, w := range v.Weights {
		s += w * w
	}
	return math.Sqrt(s)
}

// Dot returns the dot product of two vectors (both sorted by id).
func Dot(a, b Vector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] < b.IDs[j]:
			i++
		case a.IDs[i] > b.IDs[j]:
			j++
		default:
			s += a.Weights[i] * b.Weights[j]
			i++
			j++
		}
	}
	return s
}

// Cosine returns the cosine similarity in [0,1] for nonnegative vectors;
// zero when either vector is empty.
func Cosine(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Scale multiplies all weights by f in place and returns v.
func (v Vector) Scale(f float64) Vector {
	for i := range v.Weights {
		v.Weights[i] *= f
	}
	return v
}

// Normalize scales v to unit norm in place (no-op for the zero vector).
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Add returns a + b as a new vector.
func Add(a, b Vector) Vector {
	out := Vector{
		IDs:     make([]int32, 0, len(a.IDs)+len(b.IDs)),
		Weights: make([]float64, 0, len(a.IDs)+len(b.IDs)),
	}
	i, j := 0, 0
	for i < len(a.IDs) || j < len(b.IDs) {
		switch {
		case j >= len(b.IDs) || (i < len(a.IDs) && a.IDs[i] < b.IDs[j]):
			out.IDs = append(out.IDs, a.IDs[i])
			out.Weights = append(out.Weights, a.Weights[i])
			i++
		case i >= len(a.IDs) || b.IDs[j] < a.IDs[i]:
			out.IDs = append(out.IDs, b.IDs[j])
			out.Weights = append(out.Weights, b.Weights[j])
			j++
		default:
			out.IDs = append(out.IDs, a.IDs[i])
			out.Weights = append(out.Weights, a.Weights[i]+b.Weights[j])
			i++
			j++
		}
	}
	return out
}

// Centroid returns the mean of the given vectors (empty input → zero vector).
func Centroid(vs []Vector) Vector {
	if len(vs) == 0 {
		return Vector{}
	}
	acc := vs[0]
	for _, v := range vs[1:] {
		acc = Add(acc, v)
	}
	return acc.Scale(1 / float64(len(vs)))
}

// Top returns the k heaviest components as (id, weight) pairs, descending.
func (v Vector) Top(k int) ([]int32, []float64) {
	type comp struct {
		id int32
		w  float64
	}
	cs := make([]comp, len(v.IDs))
	for i := range v.IDs {
		cs[i] = comp{v.IDs[i], v.Weights[i]}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].w > cs[j].w })
	if k > len(cs) {
		k = len(cs)
	}
	ids := make([]int32, k)
	ws := make([]float64, k)
	for i := 0; i < k; i++ {
		ids[i], ws[i] = cs[i].id, cs[i].w
	}
	return ids, ws
}

// Corpus aggregates document frequencies so callers can TF-IDF-weight
// vectors consistently. Safe for concurrent use.
type Corpus struct {
	mu   sync.RWMutex
	df   map[int32]int
	docs int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{df: make(map[int32]int)}
}

// AddDoc records one document's terms for DF accounting.
func (c *Corpus) AddDoc(v Vector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs++
	for _, id := range v.IDs {
		c.df[id]++
	}
}

// Docs returns the number of documents added.
func (c *Corpus) Docs() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.docs
}

// DF returns the document frequency of term id.
func (c *Corpus) DF(id int32) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.df[id]
}

// IDF returns the smoothed inverse document frequency of term id.
func (c *Corpus) IDF(id int32) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return math.Log(float64(1+c.docs) / float64(1+c.df[id]))
}

// TFIDF returns a copy of v with weights tf·idf, unit-normalized.
func (c *Corpus) TFIDF(v Vector) Vector {
	out := Vector{
		IDs:     append([]int32(nil), v.IDs...),
		Weights: make([]float64, len(v.Weights)),
	}
	c.mu.RLock()
	for i, id := range v.IDs {
		tf := 1 + math.Log(v.Weights[i])
		idf := math.Log(float64(1+c.docs) / float64(1+c.df[id]))
		out.Weights[i] = tf * idf
	}
	c.mu.RUnlock()
	return out.Normalize()
}
