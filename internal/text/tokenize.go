// Package text provides the term-level machinery that every Memex mining
// module shares: tokenization, stopword filtering, Porter stemming, a
// term dictionary that interns strings to dense ids, and sparse TF/TF-IDF
// document vectors with cosine operations.
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits raw page text into lowercase word tokens. Tokens are
// maximal runs of letters/digits; pure numbers shorter than 2 runes and
// single letters are dropped (they carry no topical signal).
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	runes := 0
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := b.String()
		n := runes
		b.Reset()
		runes = 0
		if n < 2 {
			return
		}
		tokens = append(tokens, tok)
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
			runes++
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// stopwords is the standard short English stop list (SMART subset). Stop
// words are removed before stemming.
var stopwords = map[string]bool{}

func init() {
	for _, w := range strings.Fields(`a about above after again against all am an and any are as at
be because been before being below between both but by can cannot could did do does doing down
during each few for from further had has have having he her here hers herself him himself his how
i if in into is it its itself just me more most my myself no nor not now of off on once only or
other our ours ourselves out over own same she should so some such than that the their theirs them
themselves then there these they this those through to too under until up very was we were what
when where which while who whom why will with would you your yours yourself yourselves
www http https com org net html htm page home click here site web`) {
		stopwords[w] = true
	}
}

// IsStopword reports whether tok is on the stop list.
func IsStopword(tok string) bool { return stopwords[tok] }

// Terms tokenizes, removes stopwords, and stems. This is the canonical
// text→terms path used by the indexer, classifier, and clusterer.
func Terms(s string) []string {
	toks := Tokenize(s)
	out := toks[:0]
	for _, t := range toks {
		if stopwords[t] {
			continue
		}
		st := Stem(t)
		if len(st) < 2 || stopwords[st] {
			continue
		}
		out = append(out, st)
	}
	return out
}

// TermCounts returns the term-frequency map of the text.
func TermCounts(s string) map[string]int {
	tf := map[string]int{}
	for _, t := range Terms(s) {
		tf[t]++
	}
	return tf
}
