package text

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"B+tree-based KV store", []string{"tree", "based", "kv", "store"}},
		{"", nil},
		{"a b c", nil}, // single letters dropped
		{"Ω≈ç√ mixed ASCII", []string{"ω", "mixed", "ascii"}[1:]},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStopwords(t *testing.T) {
	if !IsStopword("the") || !IsStopword("www") {
		t.Fatal("basic stopwords missing")
	}
	if IsStopword("music") {
		t.Fatal("'music' wrongly stopworded")
	}
}

// TestPorterVectors checks classic examples from Porter's paper.
func TestPorterVectors(t *testing.T) {
	cases := map[string]string{
		"caresses":     "caress",
		"ponies":       "poni",
		"ties":         "ti",
		"caress":       "caress",
		"cats":         "cat",
		"feed":         "feed",
		"agreed":       "agre",
		"plastered":    "plaster",
		"bled":         "bled",
		"motoring":     "motor",
		"sing":         "sing",
		"conflated":    "conflat",
		"troubled":     "troubl",
		"sized":        "size",
		"hopping":      "hop",
		"tanned":       "tan",
		"falling":      "fall",
		"hissing":      "hiss",
		"fizzed":       "fizz",
		"failing":      "fail",
		"filing":       "file",
		"happy":        "happi",
		"sky":          "sky",
		"relational":   "relat",
		"conditional":  "condit",
		"rational":     "ration",
		"valenci":      "valenc",
		"digitizer":    "digit",
		"operator":     "oper",
		"feudalism":    "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"callousness":  "callous",
		"formaliti":    "formal",
		"sensitiviti":  "sensit",
		"sensibiliti":  "sensibl",
		"triplicate":   "triplic",
		"formative":    "form",
		"formalize":    "formal",
		"electriciti":  "electr",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"gyroscopic":   "gyroscop",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"homologou":    "homolog",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemIdempotentOnShortWords(t *testing.T) {
	for _, w := range []string{"a", "go", "C3", "naïve"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestTerms(t *testing.T) {
	got := Terms("The conditional operators were related to the formalized music trails")
	want := []string{"condit", "oper", "relat", "formal", "music", "trail"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.ID("alpha")
	b := d.ID("beta")
	if a == b {
		t.Fatal("distinct terms got the same id")
	}
	if d.ID("alpha") != a {
		t.Fatal("re-interning changed the id")
	}
	if d.Term(a) != "alpha" {
		t.Fatalf("Term(%d) = %q", a, d.Term(a))
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Fatal("Lookup invented a term")
	}
	if d.Size() != 2 {
		t.Fatalf("Size = %d", d.Size())
	}
}

func TestVectorOps(t *testing.T) {
	d := NewDict()
	v1 := VectorFromCounts(d, map[string]int{"music": 2, "classic": 1})
	v2 := VectorFromCounts(d, map[string]int{"music": 1, "jazz": 3})
	if got := Dot(v1, v2); got != 2 {
		t.Fatalf("Dot = %v, want 2", got)
	}
	cos := Cosine(v1, v1)
	if math.Abs(cos-1) > 1e-12 {
		t.Fatalf("self-cosine = %v", cos)
	}
	if c := Cosine(v1, Vector{}); c != 0 {
		t.Fatalf("cosine with empty = %v", c)
	}
	sum := Add(v1, v2)
	if sum.Len() != 3 {
		t.Fatalf("Add produced %d components", sum.Len())
	}
	if got := Dot(sum, sum); got < Dot(v1, v1) {
		t.Fatal("Add lost mass")
	}
	n := v1.Normalize().Norm()
	if math.Abs(n-1) > 1e-12 {
		t.Fatalf("Normalize → norm %v", n)
	}
}

func TestCentroid(t *testing.T) {
	d := NewDict()
	v1 := VectorFromCounts(d, map[string]int{"x": 2})
	v2 := VectorFromCounts(d, map[string]int{"x": 4})
	c := Centroid([]Vector{v1, v2})
	if c.Len() != 1 || math.Abs(c.Weights[0]-3) > 1e-12 {
		t.Fatalf("Centroid = %v", c)
	}
	if Centroid(nil).Len() != 0 {
		t.Fatal("Centroid(nil) not empty")
	}
}

func TestTop(t *testing.T) {
	d := NewDict()
	v := VectorFromCounts(d, map[string]int{"a1": 5, "b2": 1, "c3": 9})
	ids, ws := v.Top(2)
	if len(ids) != 2 || ws[0] != 9 || ws[1] != 5 {
		t.Fatalf("Top = %v %v", ids, ws)
	}
	ids, _ = v.Top(10)
	if len(ids) != 3 {
		t.Fatalf("Top overflow = %d ids", len(ids))
	}
}

func TestCorpusTFIDF(t *testing.T) {
	d := NewDict()
	c := NewCorpus()
	common := VectorFromCounts(d, map[string]int{"common": 1, "rare": 1})
	for i := 0; i < 9; i++ {
		c.AddDoc(VectorFromCounts(d, map[string]int{"common": 1}))
	}
	c.AddDoc(common)
	if c.Docs() != 10 {
		t.Fatalf("Docs = %d", c.Docs())
	}
	commonID, _ := d.Lookup("common")
	rareID, _ := d.Lookup("rare")
	if c.DF(commonID) != 10 || c.DF(rareID) != 1 {
		t.Fatalf("DF: common=%d rare=%d", c.DF(commonID), c.DF(rareID))
	}
	if c.IDF(rareID) <= c.IDF(commonID) {
		t.Fatal("rare term does not get higher IDF")
	}
	w := c.TFIDF(common)
	// rare component must outweigh common.
	var cw, rw float64
	for i, id := range w.IDs {
		if id == commonID {
			cw = w.Weights[i]
		}
		if id == rareID {
			rw = w.Weights[i]
		}
	}
	if rw <= cw {
		t.Fatalf("TFIDF: rare %v <= common %v", rw, cw)
	}
	if math.Abs(w.Norm()-1) > 1e-9 {
		t.Fatalf("TFIDF not normalized: %v", w.Norm())
	}
}

// Property: cosine is symmetric and bounded.
func TestQuickCosine(t *testing.T) {
	d := NewDict()
	f := func(a, b map[string]int) bool {
		// Keep counts positive.
		ca := map[string]int{}
		for k, v := range a {
			if v != 0 && len(k) > 0 {
				ca[k] = abs(v)%100 + 1
			}
		}
		cb := map[string]int{}
		for k, v := range b {
			if v != 0 && len(k) > 0 {
				cb[k] = abs(v)%100 + 1
			}
		}
		va := VectorFromCounts(d, ca)
		vb := VectorFromCounts(d, cb)
		c1 := Cosine(va, vb)
		c2 := Cosine(vb, va)
		return math.Abs(c1-c2) < 1e-9 && c1 >= 0 && c1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Vector ids remain sorted after construction and Add.
func TestQuickVectorSorted(t *testing.T) {
	d := NewDict()
	f := func(a, b map[string]int) bool {
		va := VectorFromCounts(d, clean(a))
		vb := VectorFromCounts(d, clean(b))
		return sortedIDs(va) && sortedIDs(Add(va, vb))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func clean(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		if k != "" {
			out[k] = abs(v)%10 + 1
		}
	}
	return out
}

func sortedIDs(v Vector) bool {
	for i := 1; i < len(v.IDs); i++ {
		if v.IDs[i-1] >= v.IDs[i] {
			return false
		}
	}
	return true
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkTerms(b *testing.B) {
	doc := "The Memex system archives community browsing trails and mines them for topical themes using hierarchical classification and clustering algorithms over hypertext."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Terms(doc)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"relational", "formalize", "troubles", "authorities", "recommendation"}
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
