package graph

import (
	"math"
	"testing"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(1, 2) // duplicate ignored
	g.AddEdge(2, 3)
	g.AddEdge(5, 5) // self-loop dropped
	if g.EdgeCount() != 2 {
		t.Fatalf("EdgeCount = %d", g.EdgeCount())
	}
	if g.NodeCount() != 3 {
		t.Fatalf("NodeCount = %d", g.NodeCount())
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatal("edge direction wrong")
	}
	if out := g.Out(1); len(out) != 1 || out[0] != 2 {
		t.Fatalf("Out(1) = %v", out)
	}
	if in := g.In(3); len(in) != 1 || in[0] != 2 {
		t.Fatalf("In(3) = %v", in)
	}
}

func TestNeighborsUnion(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(3, 1)
	g.AddEdge(1, 3) // 3 in both directions: counted once
	nb := g.Neighbors(1)
	if len(nb) != 2 {
		t.Fatalf("Neighbors = %v", nb)
	}
}

func TestIsolatedNode(t *testing.T) {
	g := New()
	g.AddNode(42)
	if g.NodeCount() != 1 || g.EdgeCount() != 0 {
		t.Fatal("isolated node not stored")
	}
	if len(g.Neighbors(42)) != 0 {
		t.Fatal("isolated node has neighbours")
	}
}

func TestExpand(t *testing.T) {
	// Chain 1→2→3→4→5.
	g := New()
	for i := int64(1); i < 5; i++ {
		g.AddEdge(i, i+1)
	}
	r1 := g.Expand([]int64{3}, 1, 0)
	if len(r1) != 3 {
		t.Fatalf("radius-1 = %v", r1)
	}
	r2 := g.Expand([]int64{3}, 2, 0)
	if len(r2) != 5 {
		t.Fatalf("radius-2 = %v", r2)
	}
	capped := g.Expand([]int64{3}, 2, 4)
	if len(capped) != 4 {
		t.Fatalf("capped expand = %v", capped)
	}
	if got := g.Expand([]int64{99}, 1, 0); got != nil {
		t.Fatalf("expand from unknown seed = %v", got)
	}
}

func TestSubgraph(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	edges := g.Subgraph([]int64{1, 2, 3})
	if len(edges) != 2 {
		t.Fatalf("Subgraph edges = %v", edges)
	}
}

func TestHITSRanksAuthority(t *testing.T) {
	// Many hubs point at node 100; node 200 gets one link.
	g := New()
	for h := int64(1); h <= 5; h++ {
		g.AddEdge(h, 100)
	}
	g.AddEdge(1, 200)
	nodes := g.Nodes()
	hubs, auths := g.HITS(nodes, 20)
	if auths[100] <= auths[200] {
		t.Fatalf("auth(100)=%v <= auth(200)=%v", auths[100], auths[200])
	}
	// Node 1 links to both authorities: best hub.
	for h := int64(2); h <= 5; h++ {
		if hubs[1] < hubs[h] {
			t.Fatalf("hub(1)=%v < hub(%d)=%v", hubs[1], h, hubs[h])
		}
	}
	top := auths.Top(1)
	if len(top) != 1 || top[0] != 100 {
		t.Fatalf("Top = %v", top)
	}
}

func TestHITSRestrictedToSubgraph(t *testing.T) {
	g := New()
	for h := int64(1); h <= 5; h++ {
		g.AddEdge(h, 100)
	}
	// Outside the node set: a huge authority that must be ignored.
	for h := int64(50); h < 80; h++ {
		g.AddEdge(h, 999)
	}
	nodes := []int64{1, 2, 3, 4, 5, 100}
	_, auths := g.HITS(nodes, 10)
	if _, ok := auths[999]; ok {
		t.Fatal("HITS scored a node outside the subgraph")
	}
	if auths[100] == 0 {
		t.Fatal("in-subgraph authority got zero")
	}
}

func TestPageRankSums(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	g.AddEdge(4, 1) // 4 dangles into the cycle
	pr := g.PageRank(0.85, 50)
	var sum float64
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank mass = %v", sum)
	}
	if pr[1] <= pr[4] {
		t.Fatalf("linked-to node not ranked higher: pr(1)=%v pr(4)=%v", pr[1], pr[4])
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	g := New()
	if pr := g.PageRank(0.85, 10); len(pr) != 0 {
		t.Fatal("PageRank on empty graph returned scores")
	}
}

func TestScoresTopOrdering(t *testing.T) {
	s := Scores{1: 0.5, 2: 0.9, 3: 0.5}
	top := s.Top(3)
	if top[0] != 2 || top[1] != 1 || top[2] != 3 {
		t.Fatalf("Top = %v (ties must break by id)", top)
	}
	if got := s.Top(2); len(got) != 2 {
		t.Fatalf("Top(2) = %v", got)
	}
}

func BenchmarkPageRank(b *testing.B) {
	g := New()
	for i := int64(0); i < 2000; i++ {
		for j := 0; j < 5; j++ {
			g.AddEdge(i, (i*7+int64(j)*131)%2000)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PageRank(0.85, 20)
	}
}

func BenchmarkHITS(b *testing.B) {
	g := New()
	for i := int64(0); i < 500; i++ {
		for j := 0; j < 4; j++ {
			g.AddEdge(i, (i*13+int64(j)*37)%500)
		}
	}
	nodes := g.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HITS(nodes, 15)
	}
}

// TestPageRankConcurrentWithApplyOut: PageRank snapshots the adjacency
// and releases the graph lock before iterating, so concurrent ApplyOut
// (every ingest publish) neither blocks for the power loop's duration nor
// races its reads — ApplyOut grows adjacency slices with append, which
// can write in place, so a PageRank sharing (rather than copying) them
// would fail under -race. The scores must stay a valid distribution
// regardless of how much of the concurrent growth each run observed.
func TestPageRankConcurrentWithApplyOut(t *testing.T) {
	g := New()
	for i := int64(0); i < 200; i++ {
		g.AddEdge(i, (i+1)%200)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := int64(0); i < 200; i++ {
			g.ApplyOut(i, []int64{(i*7 + 3) % 200, i + 1000})
		}
	}()
	for i := 0; i < 20; i++ {
		pr := g.PageRank(0.85, 10)
		var sum float64
		for _, v := range pr {
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("run %d: PageRank mass = %f, want ~1", i, sum)
		}
	}
	<-done
}

func TestInDegree(t *testing.T) {
	g := New()
	if g.InDegree(9) != 0 {
		t.Fatal("unknown node has in-degree")
	}
	g.AddEdge(1, 9)
	g.AddEdge(2, 9)
	g.AddEdge(2, 9) // duplicate
	if got := g.InDegree(9); got != 2 {
		t.Fatalf("InDegree = %d, want 2", got)
	}
	if got := g.InDegree(1); got != 0 {
		t.Fatalf("source InDegree = %d, want 0", got)
	}
}
