// Package graph stores the hypertext graph Memex accumulates from surf
// trails: pages (nodes) and links (directed edges), with in/out adjacency,
// neighbourhood expansion, and the link-analysis primitives the mining
// demons use — HITS hubs/authorities over a focused subgraph (resource
// discovery) and PageRank (popularity near the community trail graph).
//
// # Adjacency sources and pinned views
//
// The analysis primitives are written against AdjacencySource, not the
// concrete Graph: any per-page adjacency provider — the mutable in-memory
// Graph here, or a snapshot-pinned view decoding versioned adjacency
// records (core.DerivedView, whose In lazily merges a page's base in-link
// record with its append-only delta chunks) — can feed neighbourhood
// expansion (ExpandFrom) and HITS (HITSOver). That is what lets the
// engine run a whole trail-replay or discovery pass against one frozen
// epoch of the link graph while ingest keeps publishing edges. The
// primitives read each page's adjacency a bounded number of times (HITS
// materialises the induced subgraph once; PageRank snapshots the whole
// adjacency before iterating), so a source that decodes records on demand
// is never re-decoded per iteration — and the Graph's lock is never held
// across an iteration loop.
package graph

import (
	"math"
	"sort"
	"sync"
)

// AdjacencySource is per-page directed adjacency: the read interface the
// link-analysis primitives consume. Has reports whether the page is known
// to the graph at all (a page can be known yet have no links). Returned
// slices must not be mutated by callers; implementations may return
// shared memoized slices.
type AdjacencySource interface {
	Out(page int64) []int64
	In(page int64) []int64
	Has(page int64) bool
}

// Graph is a directed graph over int64 node ids. Safe for concurrent use.
type Graph struct {
	mu  sync.RWMutex
	out map[int64][]int64
	in  map[int64][]int64
	// edge set for O(1) duplicate detection, key = (from<<32)^to packed.
	edges map[[2]int64]bool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		out:   make(map[int64][]int64),
		in:    make(map[int64][]int64),
		edges: make(map[[2]int64]bool),
	}
}

// AddNode ensures a node exists (isolated nodes are legal).
func (g *Graph) AddNode(id int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ensure(id)
}

func (g *Graph) ensure(id int64) {
	if _, ok := g.out[id]; !ok {
		g.out[id] = nil
		g.in[id] = nil
	}
}

// AddEdge inserts the directed edge from→to (idempotent; self-loops are
// dropped entirely — unlike ApplyOut, a pure self-loop creates no node).
func (g *Graph) AddEdge(from, to int64) {
	if from == to {
		return
	}
	g.ApplyOut(from, []int64{to})
}

// ApplyOut merges one page's out-adjacency delta into the graph: every
// edge from→each target is added idempotently and the node exists
// afterwards even when outs is empty. This is the incremental build step
// for graphs reconstructed from versioned adjacency records.
func (g *Graph) ApplyOut(from int64, outs []int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ensure(from)
	for _, to := range outs {
		if to == from {
			continue
		}
		key := [2]int64{from, to}
		if g.edges[key] {
			continue
		}
		g.edges[key] = true
		g.ensure(to)
		g.out[from] = append(g.out[from], to)
		g.in[to] = append(g.in[to], from)
	}
}

// HasEdge reports whether from→to exists.
func (g *Graph) HasEdge(from, to int64) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.edges[[2]int64{from, to}]
}

// Has reports whether the node is known to the graph.
func (g *Graph) Has(id int64) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.out[id]
	return ok
}

// Out returns a copy of the out-neighbours of id.
func (g *Graph) Out(id int64) []int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]int64(nil), g.out[id]...)
}

// In returns a copy of the in-neighbours of id.
func (g *Graph) In(id int64) []int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]int64(nil), g.in[id]...)
}

// InDegree returns the number of in-neighbours of id without copying the
// adjacency (the producer-side "does this page have any in-links yet"
// check on every staged edge).
func (g *Graph) InDegree(id int64) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.in[id])
}

// Neighbors returns the union of in- and out-neighbours.
func (g *Graph) Neighbors(id int64) []int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := map[int64]bool{}
	var out []int64
	for _, n := range g.out[id] {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, n := range g.in[id] {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Nodes returns all node ids (sorted, for determinism).
func (g *Graph) Nodes() []int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]int64, 0, len(g.out))
	for id := range g.out {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodeCount and EdgeCount report graph size.
func (g *Graph) NodeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.out)
}

func (g *Graph) EdgeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.edges)
}

// Expand returns the radius-r undirected neighbourhood of the seed set
// (including the seeds), capped at maxNodes (0 = unlimited). This is the
// "limited radius neighbourhood" expansion used for trail context graphs.
func (g *Graph) Expand(seeds []int64, radius, maxNodes int) []int64 {
	return ExpandFrom(g, seeds, radius, maxNodes)
}

// ExpandFrom is Expand over any adjacency source: seeds unknown to the
// source are dropped, then the undirected neighbourhood grows breadth-
// first (out-neighbours before in-neighbours, source order) until the
// radius or the node cap is reached. Against a pinned view the whole
// expansion reads one frozen epoch of the link graph.
func ExpandFrom(src AdjacencySource, seeds []int64, radius, maxNodes int) []int64 {
	seen := map[int64]bool{}
	frontier := make([]int64, 0, len(seeds))
	var out []int64
	for _, s := range seeds {
		if !src.Has(s) {
			continue
		}
		if !seen[s] {
			seen[s] = true
			frontier = append(frontier, s)
			out = append(out, s)
		}
	}
	for r := 0; r < radius; r++ {
		var next []int64
		for _, u := range frontier {
			for _, vs := range [][]int64{src.Out(u), src.In(u)} {
				for _, v := range vs {
					if seen[v] {
						continue
					}
					if maxNodes > 0 && len(out) >= maxNodes {
						return out
					}
					seen[v] = true
					next = append(next, v)
					out = append(out, v)
				}
			}
		}
		frontier = next
	}
	return out
}

// Subgraph returns the induced edge list among the given nodes.
func (g *Graph) Subgraph(nodes []int64) (edges [][2]int64) {
	in := map[int64]bool{}
	for _, n := range nodes {
		in[n] = true
	}
	// Capture the out-adjacency slice headers under the lock, then build
	// the edge list outside it. The headers stay valid off-lock: ApplyOut
	// only ever appends, so a captured header's [0:len) window is
	// immutable even if the backing array is grown concurrently.
	outs := make([][]int64, len(nodes))
	g.mu.RLock()
	for i, u := range nodes {
		outs[i] = g.out[u]
	}
	g.mu.RUnlock()
	for i, u := range nodes {
		for _, v := range outs[i] {
			if in[v] {
				edges = append(edges, [2]int64{u, v})
			}
		}
	}
	return edges
}

// Scores holds a node-score assignment from a link analysis run.
type Scores map[int64]float64

// Top returns the k highest-scoring nodes, descending (ties by id).
func (s Scores) Top(k int) []int64 {
	ids := make([]int64, 0, len(s))
	for id := range s {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if s[ids[i]] != s[ids[j]] {
			return s[ids[i]] > s[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if k < len(ids) {
		ids = ids[:k]
	}
	return ids
}

// HITS runs Kleinberg's algorithm on the subgraph induced by nodes for the
// given iterations, returning hub and authority scores (L2-normalized).
func (g *Graph) HITS(nodes []int64, iterations int) (hubs, auths Scores) {
	return HITSOver(g, nodes, iterations)
}

// HITSOver is HITS over any adjacency source. The induced subgraph is
// materialised once up front (one Out/In read per node), so the power
// iterations touch the source — which may be decoding versioned records —
// exactly |nodes| times regardless of the iteration count.
func HITSOver(src AdjacencySource, nodes []int64, iterations int) (hubs, auths Scores) {
	if iterations <= 0 {
		iterations = 20
	}
	in := map[int64]bool{}
	for _, n := range nodes {
		in[n] = true
	}
	outAdj := make(map[int64][]int64, len(nodes))
	inAdj := make(map[int64][]int64, len(nodes))
	for _, n := range nodes {
		for _, v := range src.Out(n) {
			if in[v] {
				outAdj[n] = append(outAdj[n], v)
			}
		}
		for _, u := range src.In(n) {
			if in[u] {
				inAdj[n] = append(inAdj[n], u)
			}
		}
	}
	hubs = make(Scores, len(nodes))
	auths = make(Scores, len(nodes))
	for _, n := range nodes {
		hubs[n] = 1
		auths[n] = 1
	}
	for it := 0; it < iterations; it++ {
		// auth = sum of hub scores of in-links.
		for _, n := range nodes {
			var s float64
			for _, u := range inAdj[n] {
				s += hubs[u]
			}
			auths[n] = s
		}
		normalizeScores(auths)
		for _, n := range nodes {
			var s float64
			for _, v := range outAdj[n] {
				s += auths[v]
			}
			hubs[n] = s
		}
		normalizeScores(hubs)
	}
	return hubs, auths
}

// PageRank runs the standard damped power iteration over the whole graph.
//
// The graph lock is held only long enough to snapshot the adjacency — one
// O(V+E) copy — not across the power loop: holding the RLock for the full
// run stalled every concurrent ApplyOut (i.e. every ingest publish) for
// ~30 iterations over the whole graph. The slices must be copied, not
// shared: ApplyOut grows them with append, which can write in place.
func (g *Graph) PageRank(damping float64, iterations int) Scores {
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if iterations <= 0 {
		iterations = 30
	}
	g.mu.RLock()
	n := len(g.out)
	if n == 0 {
		g.mu.RUnlock()
		return Scores{}
	}
	out := make(map[int64][]int64, n)
	for id, outs := range g.out {
		out[id] = append([]int64(nil), outs...)
	}
	g.mu.RUnlock()

	pr := make(Scores, n)
	for id := range out {
		pr[id] = 1 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		next := make(Scores, n)
		var dangling float64
		for id, outs := range out {
			if len(outs) == 0 {
				dangling += pr[id]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for id := range out {
			next[id] = base
		}
		for id, outs := range out {
			if len(outs) == 0 {
				continue
			}
			share := damping * pr[id] / float64(len(outs))
			for _, v := range outs {
				next[v] += share
			}
		}
		pr = next
	}
	return pr
}

func normalizeScores(s Scores) {
	var sum float64
	for _, v := range s {
		sum += v * v
	}
	if sum == 0 {
		return
	}
	norm := math.Sqrt(sum)
	for k := range s {
		s[k] /= norm
	}
}
