package load

import (
	"reflect"
	"strings"
	"testing"
)

// TestScheduleDeterministic is the harness's own determinism gate: the
// schedule must be a pure function of (scenario, seed) — same pair,
// byte-identical expansion; different seed, a different one.
func TestScheduleDeterministic(t *testing.T) {
	for _, name := range []string{"ci-small", "unit"} {
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		a, b := sc.Schedule(1), sc.Schedule(1)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different schedules", name)
		}
		var fa, fb strings.Builder
		FormatSchedule(&fa, a)
		FormatSchedule(&fb, b)
		if fa.String() != fb.String() {
			t.Fatalf("%s: same seed produced different printed schedules", name)
		}
		if reflect.DeepEqual(a, sc.Schedule(2)) {
			t.Fatalf("%s: seeds 1 and 2 produced identical schedules", name)
		}
	}
}

func TestScheduleShape(t *testing.T) {
	sc, _ := Lookup("ci-small")
	reqs := sc.Schedule(1)
	if len(reqs) == 0 {
		t.Fatal("empty schedule")
	}

	users := map[int64]bool{}
	for _, id := range sc.Users() {
		if users[id] {
			t.Fatalf("user id %d assigned twice", id)
		}
		if id == 0 {
			t.Fatal("user id 0 would trip the server's user-required validation")
		}
		users[id] = true
	}

	var visits, searches, statuses int
	robotPages := map[string][]int{}
	for i, r := range reqs {
		if r.At < 0 || r.At >= sc.Duration {
			t.Fatalf("request %d at %v outside [0, %v)", i, r.At, sc.Duration)
		}
		if i > 0 && reqs[i].At < reqs[i-1].At {
			t.Fatalf("schedule not sorted at %d", i)
		}
		switch r.Kind {
		case Visit:
			visits++
			if r.Page < 0 || r.Page >= sc.Pages {
				t.Fatalf("visit page %d outside universe of %d", r.Page, sc.Pages)
			}
			if r.Ref >= sc.Pages {
				t.Fatalf("visit ref %d outside universe", r.Ref)
			}
			if !users[r.User] {
				t.Fatalf("visit from unregistered user %d", r.User)
			}
			if strings.HasPrefix(r.Client, "robot-") {
				robotPages[r.Client] = append(robotPages[r.Client], r.Page)
			}
		case Search:
			searches++
			if r.Query < 0 || r.Query >= sc.Queries {
				t.Fatalf("search query %d outside universe of %d", r.Query, sc.Queries)
			}
		case StatusRead:
			statuses++
		default:
			t.Fatalf("request %d has unknown kind %v", i, r.Kind)
		}
	}
	if visits == 0 || searches == 0 || statuses == 0 {
		t.Fatalf("degenerate mix: %d visits, %d searches, %d status reads", visits, searches, statuses)
	}

	// Robots crawl sequentially: consecutive pages increment mod Pages —
	// the archive-robot access signature the scenario models.
	if len(robotPages) != sc.Robots {
		t.Fatalf("%d robots emitted visits, want %d", len(robotPages), sc.Robots)
	}
	for name, pages := range robotPages {
		for i := 1; i < len(pages); i++ {
			if pages[i] != (pages[i-1]+1)%sc.Pages {
				t.Fatalf("%s not sequential at %d: %d then %d", name, i, pages[i-1], pages[i])
			}
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Fatal("unknown scenario resolved")
	}
}
