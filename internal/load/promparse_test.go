package load

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memex/internal/client"
	"memex/internal/core"
	"memex/internal/kvstore"
	"memex/internal/server"
)

// TestQuantileEstimation is the table the SLO gate's math stands on:
// hand-built cumulative `le` series with known answers, covering exact
// bucket boundaries, empty histograms, single-bucket mass, and the
// +Inf clamp that keeps p999 finite.
func TestQuantileEstimation(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name    string
		buckets []Bucket
		q       float64
		want    float64
	}{
		{
			// Rank lands exactly on a bucket's cumulative count: the
			// estimate is exactly that bucket's upper bound, no
			// interpolation drift in either direction.
			name:    "exact boundary low",
			buckets: []Bucket{{0.1, 10}, {0.2, 20}, {0.4, 40}, {inf, 40}},
			q:       0.25,
			want:    0.1,
		},
		{
			name:    "exact boundary mid",
			buckets: []Bucket{{0.1, 10}, {0.2, 20}, {0.4, 40}, {inf, 40}},
			q:       0.5,
			want:    0.2,
		},
		{
			// Halfway through the last bucket's mass: linear
			// interpolation inside [0.2, 0.4].
			name:    "interpolated",
			buckets: []Bucket{{0.1, 10}, {0.2, 20}, {0.4, 40}, {inf, 40}},
			q:       0.75,
			want:    0.3,
		},
		{
			name:    "empty histogram",
			buckets: []Bucket{{0.1, 0}, {0.2, 0}, {inf, 0}},
			q:       0.99,
			want:    0,
		},
		{
			// All mass in one interior bucket: every quantile
			// interpolates inside it, from its lower to its upper bound.
			name:    "single bucket mass median",
			buckets: []Bucket{{0.1, 0}, {0.2, 30}, {inf, 30}},
			q:       0.5,
			want:    0.15,
		},
		{
			name:    "single bucket mass p999",
			buckets: []Bucket{{0.1, 0}, {0.2, 30}, {inf, 30}},
			q:       0.999,
			want:    0.1 + 0.1*(0.999*30)/30,
		},
		{
			// Mass beyond the last finite bound: the histogram cannot
			// resolve it, so the estimate clamps to the highest finite
			// bound instead of reporting +Inf (which would void every
			// budget comparison).
			name:    "p999 clamps at overflow bucket",
			buckets: []Bucket{{0.1, 5}, {0.2, 5}, {inf, 10}},
			q:       0.999,
			want:    0.2,
		},
		{
			name:    "all mass in overflow",
			buckets: []Bucket{{0.1, 0}, {0.2, 0}, {inf, 7}},
			q:       0.5,
			want:    0.2,
		},
		{
			// First bucket: interpolation starts from 0, not from some
			// phantom negative bound.
			name:    "first bucket from zero",
			buckets: []Bucket{{0.1, 10}, {0.2, 10}, {inf, 10}},
			q:       0.5,
			want:    0.05,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := Histogram{Buckets: tc.buckets}
			got := h.Quantile(tc.q)
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestQuantileMonotone(t *testing.T) {
	h := Histogram{Buckets: []Bucket{{0.001, 3}, {0.01, 40}, {0.1, 90}, {1, 99}, {math.Inf(1), 100}}}
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99, 0.999} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q=%v gave %v after %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramSub(t *testing.T) {
	inf := math.Inf(1)
	now := Histogram{Buckets: []Bucket{{0.1, 50}, {0.2, 90}, {inf, 100}}, Count: 100, Sum: 12}
	prev := Histogram{Buckets: []Bucket{{0.1, 40}, {0.2, 60}, {inf, 60}}, Count: 60, Sum: 8}
	d := now.Sub(prev)
	want := []Bucket{{0.1, 10}, {0.2, 30}, {inf, 40}}
	for i, b := range d.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
	if d.Count != 40 || d.Sum != 4 {
		t.Fatalf("count/sum delta = %v/%v, want 40/4", d.Count, d.Sum)
	}
	// A server restart mid-run (counters reset) clamps to zero rather
	// than reporting negative mass.
	d = prev.Sub(now)
	for _, b := range d.Buckets {
		if b.Cum != 0 {
			t.Fatalf("restart delta not clamped: %+v", b)
		}
	}
}

func TestParseMetricsBasics(t *testing.T) {
	text := `# HELP memex_http_requests_total Requests.
# TYPE memex_http_requests_total counter
memex_http_requests_total{endpoint="GET /api/status"} 7
memex_http_requests_total{endpoint="POST /api/event"} 3
memex_http_in_flight 2
memex_http_request_duration_seconds_bucket{endpoint="GET /api/status",le="0.0001"} 1
memex_http_request_duration_seconds_bucket{endpoint="GET /api/status",le="+Inf"} 7
memex_http_request_duration_seconds_sum{endpoint="GET /api/status"} 0.5
memex_http_request_duration_seconds_count{endpoint="GET /api/status"} 7
`
	s, err := ParseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Value("memex_http_requests_total", map[string]string{"endpoint": "GET /api/status"}); !ok || v != 7 {
		t.Fatalf("status requests = %v,%v", v, ok)
	}
	if v, ok := s.Value("memex_http_in_flight", nil); !ok || v != 2 {
		t.Fatalf("in_flight = %v,%v", v, ok)
	}
	eps := s.LabelValues("memex_http_requests_total", "endpoint")
	if len(eps) != 2 || eps[0] != "GET /api/status" || eps[1] != "POST /api/event" {
		t.Fatalf("endpoints = %v", eps)
	}
	h, ok := s.Histogram("memex_http_request_duration_seconds", map[string]string{"endpoint": "GET /api/status"})
	if !ok || len(h.Buckets) != 2 || h.Count != 7 || h.Sum != 0.5 {
		t.Fatalf("histogram = %+v ok=%v", h, ok)
	}
	if !math.IsInf(h.Buckets[1].LE, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", h.Buckets[1].LE)
	}

	if _, err := ParseMetrics(strings.NewReader("garbage without value\n")); err == nil {
		t.Fatal("malformed line parsed silently")
	}
}

type stubSource struct{}

func (stubSource) Lookup(url string) (core.Content, bool) {
	return core.Content{URL: url, Title: "t", Text: "alpha beta gamma delta"}, true
}

func newTestEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.Open(core.Config{
		Dir:    t.TempDir(),
		Source: stubSource{},
		KV:     kvstore.Options{Sync: kvstore.SyncNever},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestScrapeRoundTrip parses a real /metrics page fetched through
// client.Metrics() — the exact bytes the production collector reads —
// and checks the reconstructed histogram is coherent: cumulative,
// totals matching the request counter, quantiles ordered.
func TestScrapeRoundTrip(t *testing.T) {
	e := newTestEngine(t)
	ts := httptest.NewServer(server.New(e))
	defer ts.Close()
	cl := client.New(ts.URL)

	const statusReads = 5
	for i := 0; i < statusReads; i++ {
		if _, err := cl.Status(); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Visit(1, "http://x.example.org/", "", time.Now(), "community"); err != nil {
		t.Fatal(err)
	}

	text, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatalf("real scrape failed to parse: %v", err)
	}
	l := map[string]string{"endpoint": "GET /api/status"}
	h, ok := s.Histogram("memex_http_request_duration_seconds", l)
	if !ok {
		t.Fatal("no status histogram in scrape")
	}
	if h.Total() != statusReads || h.Count != statusReads {
		t.Fatalf("histogram total/count = %v/%v, want %d", h.Total(), h.Count, statusReads)
	}
	reqs, _ := s.Value("memex_http_requests_total", l)
	if reqs != statusReads {
		t.Fatalf("requests counter %v != %d", reqs, statusReads)
	}
	// The series must be cumulative (non-decreasing) with ascending
	// bounds — the property quantile interpolation assumes.
	for i := 1; i < len(h.Buckets); i++ {
		if h.Buckets[i].Cum < h.Buckets[i-1].Cum || h.Buckets[i].LE <= h.Buckets[i-1].LE {
			t.Fatalf("bucket %d not cumulative/ascending: %+v after %+v", i, h.Buckets[i], h.Buckets[i-1])
		}
	}
	p50, p99, p999 := h.Quantile(0.5), h.Quantile(0.99), h.Quantile(0.999)
	if p50 <= 0 || p50 > p99 || p99 > p999 {
		t.Fatalf("quantiles incoherent: p50=%v p99=%v p999=%v", p50, p99, p999)
	}
}
