package load

// Prometheus text-format parsing and histogram quantile estimation —
// the collector's half of the harness. The server's /metrics page is
// the single source of truth for latency: the harness never times
// requests client-side (that would fold its own scheduler jitter into
// the SLO), it reads the same cumulative `le` bucket series an
// operator's Prometheus would and interpolates quantiles from the
// run's bucket-count deltas.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed metric line: name, label set, value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Scrape is one parsed /metrics page.
type Scrape struct {
	Samples []Sample
}

// ParseMetrics parses a Prometheus text-format page. Comment and blank
// lines are skipped; a malformed sample line is an error (a truncated
// scrape must not silently read as a quiet server).
func ParseMetrics(r io.Reader) (*Scrape, error) {
	s := &Scrape{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, err
		}
		s.Samples = append(s.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseSample parses `name{k="v",...} value` (the label block optional).
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		rest = rest[i+1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return s, fmt.Errorf("load: malformed label in %q", line)
			}
			key := strings.TrimSpace(strings.TrimPrefix(rest[:eq], ","))
			val, n, err := scanQuoted(rest[eq+1:])
			if err != nil {
				return s, fmt.Errorf("load: %v in %q", err, line)
			}
			s.Labels[key] = val
			rest = rest[eq+1+n:]
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
		}
	} else if i := strings.IndexAny(rest, " \t"); i >= 0 {
		s.Name = rest[:i]
		rest = rest[i:]
	} else {
		return s, fmt.Errorf("load: no value in %q", line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("load: bad value in %q", line)
	}
	s.Value = v
	return s, nil
}

// scanQuoted reads a double-quoted label value with \" and \\ escapes,
// returning the value and how many input bytes it consumed.
func scanQuoted(in string) (string, int, error) {
	if !strings.HasPrefix(in, `"`) {
		return "", 0, fmt.Errorf("label value not quoted")
	}
	var b strings.Builder
	for i := 1; i < len(in); i++ {
		switch in[i] {
		case '\\':
			if i+1 >= len(in) {
				return "", 0, fmt.Errorf("truncated escape")
			}
			i++
			switch in[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(in[i])
			}
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(in[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// matches reports whether the sample carries every given label pair.
func (s Sample) matches(name string, labels map[string]string) bool {
	if s.Name != name {
		return false
	}
	for k, v := range labels {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// Value returns the first sample matching name and the given label
// subset; ok=false when absent.
func (s *Scrape) Value(name string, labels map[string]string) (float64, bool) {
	for _, sm := range s.Samples {
		if sm.matches(name, labels) {
			return sm.Value, true
		}
	}
	return 0, false
}

// LabelValues lists the distinct values of one label across a family,
// sorted — how the report discovers which endpoints saw traffic.
func (s *Scrape) LabelValues(name, label string) []string {
	seen := map[string]bool{}
	for _, sm := range s.Samples {
		if sm.Name == name {
			if v, ok := sm.Labels[label]; ok && !seen[v] {
				seen[v] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Bucket is one cumulative histogram bucket: the count of samples ≤ LE.
type Bucket struct {
	LE  float64 // upper bound in seconds; +Inf for the overflow bucket
	Cum float64 // cumulative count
}

// Histogram is one endpoint's latency histogram reconstructed from the
// scrape's `le` series.
type Histogram struct {
	Buckets []Bucket
	Count   float64
	Sum     float64
}

// Histogram extracts the histogram for family base (e.g.
// "memex_http_request_duration_seconds") restricted to the given label
// subset. Buckets come back sorted by bound; ok=false when the scrape
// has no such series.
func (s *Scrape) Histogram(base string, labels map[string]string) (Histogram, bool) {
	var h Histogram
	for _, sm := range s.Samples {
		switch sm.Name {
		case base + "_bucket":
			if !sm.matches(base+"_bucket", labels) {
				continue
			}
			le, err := parseLE(sm.Labels["le"])
			if err != nil {
				continue
			}
			h.Buckets = append(h.Buckets, Bucket{LE: le, Cum: sm.Value})
		case base + "_count":
			if sm.matches(base+"_count", labels) {
				h.Count = sm.Value
			}
		case base + "_sum":
			if sm.matches(base+"_sum", labels) {
				h.Sum = sm.Value
			}
		}
	}
	if len(h.Buckets) == 0 {
		return Histogram{}, false
	}
	sort.Slice(h.Buckets, func(i, j int) bool { return h.Buckets[i].LE < h.Buckets[j].LE })
	return h, true
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Sub returns the histogram of samples recorded after prev: bucket-wise
// cumulative-count difference. Counters only move forward, so a
// negative delta means the server restarted mid-run — clamped to zero
// rather than poisoning the quantiles with wraparound.
func (h Histogram) Sub(prev Histogram) Histogram {
	out := Histogram{
		Buckets: make([]Bucket, len(h.Buckets)),
		Count:   math.Max(0, h.Count-prev.Count),
		Sum:     math.Max(0, h.Sum-prev.Sum),
	}
	prevAt := map[float64]float64{}
	for _, b := range prev.Buckets {
		prevAt[b.LE] = b.Cum
	}
	for i, b := range h.Buckets {
		out.Buckets[i] = Bucket{LE: b.LE, Cum: math.Max(0, b.Cum-prevAt[b.LE])}
	}
	return out
}

// Quantile estimates the q-quantile (0 < q ≤ 1) in seconds from the
// cumulative bucket series, Prometheus-style: find the bucket the
// target rank lands in and interpolate linearly inside it. Mass in the
// +Inf overflow bucket clamps to the highest finite bound — the
// histogram genuinely cannot say more, and reporting +Inf would make
// every budget comparison meaningless. An empty histogram estimates 0;
// callers that care (the SLO gate does) must check Total themselves.
func (h Histogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := q * total
	prevLE, prevCum := 0.0, 0.0
	for _, b := range h.Buckets {
		if b.Cum >= rank {
			if math.IsInf(b.LE, 1) {
				return prevLE
			}
			in := b.Cum - prevCum
			if in <= 0 {
				return b.LE
			}
			return prevLE + (b.LE-prevLE)*(rank-prevCum)/in
		}
		if !math.IsInf(b.LE, 1) {
			prevLE = b.LE
		}
		prevCum = b.Cum
	}
	return prevLE
}

// Total is the sample count the bucket series accounts for (the last
// cumulative bucket; falls back to _count when buckets are absent).
func (h Histogram) Total() float64 {
	if n := len(h.Buckets); n > 0 {
		return h.Buckets[n-1].Cum
	}
	return h.Count
}
